# Empty dependencies file for test_hetero_layout.
# This may be replaced when dependencies are built.
