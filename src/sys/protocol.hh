/**
 * @file
 * Two-level directory-based MESI protocol messages (Table 2(a)).
 *
 * All requests and responses are modeled as network packets: control
 * messages are single-flit address packets; data messages carry a
 * 1024 b cache line (6 flits baseline / 8 flits HeteroNoC). The
 * directory lives at the home L2 bank and is blocking: one outstanding
 * transaction per block, conflicting requests queue at the directory.
 * Endpoints always consume arriving messages (see DESIGN.md §3 on
 * protocol-deadlock avoidance).
 */

#ifndef HNOC_SYS_PROTOCOL_HH
#define HNOC_SYS_PROTOCOL_HH

#include <cstdint>

#include "common/types.hh"

namespace hnoc
{

/** Coherence / memory message kinds. */
enum class MsgType : std::uint8_t
{
    // Core (L1) -> home directory.
    GetS,    ///< read miss
    GetX,    ///< write miss / upgrade
    PutM,    ///< dirty writeback (data)

    // Directory -> cores.
    DataS,   ///< shared data response (data)
    DataE,   ///< exclusive clean data response (data)
    DataM,   ///< exclusive data response after invalidations (data)
    UpgradeAck, ///< GetX grant when the requester already held S (1 flit)
    Inv,     ///< invalidate a sharer
    FwdGetS, ///< forward read to the owner
    FwdGetX, ///< forward write to the owner
    WbAck,   ///< writeback acknowledged

    // Cores -> directory.
    InvAck,  ///< invalidation acknowledged
    OwnerWb, ///< owner's data returned on a forward (data)

    // Directory <-> memory controller.
    MemRead, ///< L2 miss fetch
    MemWrite,///< L2 dirty eviction (data)
    MemData, ///< DRAM response (data)
};

/** @return true when the message carries a full cache line. */
constexpr bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::PutM:
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
      case MsgType::OwnerWb:
      case MsgType::MemWrite:
      case MsgType::MemData:
        return true;
      default:
        return false;
    }
}

/** One in-flight protocol message (the Packet's context payload). */
struct Msg
{
    MsgType type = MsgType::GetS;
    Addr block = 0;
    NodeId sender = INVALID_NODE;    ///< tile that sent this message
    NodeId requester = INVALID_NODE; ///< original requesting tile
    std::uint64_t reqId = 0;         ///< core-side request identifier
};

} // namespace hnoc

#endif // HNOC_SYS_PROTOCOL_HH
