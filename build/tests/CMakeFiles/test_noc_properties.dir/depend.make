# Empty dependencies file for test_noc_properties.
# This may be replaced when dependencies are built.
