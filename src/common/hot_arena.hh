/**
 * @file
 * One contiguous, huge-page-friendly backing region for per-cycle hot
 * state (§6g).
 *
 * The blocked step loop streams every component's hot state once per
 * cycle. When that state lives in thousands of small heap allocations
 * it is scattered across the address space: the stream costs one DTLB
 * entry per 4 KiB page it crosses, and big meshes (a 32x32 network's
 * hot state spans several megabytes) thrash the TLB long before they
 * exhaust cache bandwidth. The arena fixes both halves: components
 * carve their hot storage from one region laid out in block visit
 * order, and the region is 2 MiB-aligned and MADV_HUGEPAGE-advised so
 * the kernel can back it with huge pages (one TLB entry per 2 MiB).
 *
 * Carving is monotonic and permanent — there is no free(); the arena
 * is sized once from the components' declared needs and released as a
 * whole. Every alloc() is cache-line aligned by default, so packed
 * sections keep the alignment guarantees they had as standalone
 * allocations. Exhaustion (or a failed reservation) degrades
 * gracefully: alloc() returns nullptr and callers keep their
 * self-owned storage — placement is a pure performance property,
 * never a correctness one.
 */

#ifndef HNOC_COMMON_HOT_ARENA_HH
#define HNOC_COMMON_HOT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace hnoc
{

/** Monotonic bump allocator over one huge-page-aligned region. */
class HotArena
{
  public:
    static constexpr std::size_t kHugePage = 2u * 1024 * 1024;

    HotArena() = default;
    ~HotArena() { release(); }
    HotArena(const HotArena &) = delete;
    HotArena &operator=(const HotArena &) = delete;

    /** Reserve room for @p bytes (rounded up to whole huge pages) and
     *  advise huge-page backing. Drops any previous region. A failed
     *  reservation leaves the arena empty, which every alloc()
     *  reports as exhaustion. */
    void
    reserve(std::size_t bytes)
    {
        release();
        if (bytes == 0)
            return;
        size_ = (bytes + kHugePage - 1) / kHugePage * kHugePage;
        base_ = static_cast<std::byte *>(
            std::aligned_alloc(kHugePage, size_));
        if (base_ == nullptr) {
            size_ = 0;
            return;
        }
#if defined(__linux__)
        ::madvise(base_, size_, MADV_HUGEPAGE);
#endif
    }

    /** Carve @p bytes at @p align (power of two); nullptr when the
     *  arena is unreserved or the carve does not fit. */
    std::byte *
    alloc(std::size_t bytes, std::size_t align = 64)
    {
        if (base_ == nullptr)
            return nullptr;
        std::size_t off = (used_ + align - 1) & ~(align - 1);
        if (off + bytes > size_)
            return nullptr;
        used_ = off + bytes;
        return base_ + off;
    }

    std::size_t used() const { return used_; }
    std::size_t reservedBytes() const { return size_; }

  private:
    void
    release()
    {
        std::free(base_);
        base_ = nullptr;
        size_ = 0;
        used_ = 0;
    }

    std::byte *base_ = nullptr;
    std::size_t size_ = 0;
    std::size_t used_ = 0;
};

} // namespace hnoc

#endif // HNOC_COMMON_HOT_ARENA_HH
