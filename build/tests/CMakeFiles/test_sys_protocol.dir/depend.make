# Empty dependencies file for test_sys_protocol.
# This may be replaced when dependencies are built.
