# Empty dependencies file for test_sys_cache.
# This may be replaced when dependencies are built.
