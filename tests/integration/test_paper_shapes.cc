/**
 * @file
 * Integration tests pinning the paper-level result *shapes* this
 * reproduction commits to (see EXPERIMENTS.md for the full account,
 * including the documented deviations):
 *
 *  - Fig 1: mesh utilization is center-heavy under UR + X-Y.
 *  - Table 1 / Fig 7c/8b: +BL layouts cut network power; buffers and
 *    crossbar shrink the most; Diagonal+BL saves the most power.
 *  - Fig 9: nearest-neighbor traffic is the anomaly — HeteroNoC
 *    saturates earlier than baseline.
 *  - Fig 13: attaching memory controllers to big routers
 *    (Diagonal_heteroNoC) beats the diamond placement on a
 *    homogeneous network for round-trip latency.
 *  - Fig 14: table routing through big routers speeds up large-core
 *    traffic without starving the rest.
 */

#include <gtest/gtest.h>

#include "bench_util.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

SimPointOptions
fastOpts(double rate)
{
    SimPointOptions opts;
    opts.injectionRate = rate;
    opts.warmupCycles = 3000;
    opts.measureCycles = 8000;
    opts.drainCycles = 16000;
    return opts;
}

TEST(PaperShapes, Fig1CenterHeavyUtilization)
{
    auto res = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                           TrafficPattern::UniformRandom,
                           fastOpts(0.055));
    double center = (res.bufferUtilPct[27] + res.bufferUtilPct[28] +
                     res.bufferUtilPct[35] + res.bufferUtilPct[36]) / 4;
    double corner = (res.bufferUtilPct[0] + res.bufferUtilPct[7] +
                     res.bufferUtilPct[56] + res.bufferUtilPct[63]) / 4;
    EXPECT_GT(center, 1.5 * corner);
}

TEST(PaperShapes, BlLayoutsCutPowerAtEqualLoad)
{
    auto base = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                            TrafficPattern::UniformRandom,
                            fastOpts(0.03));
    for (LayoutKind kind : blLayouts()) {
        auto res = runOpenLoop(makeLayoutConfig(kind),
                               TrafficPattern::UniformRandom,
                               fastOpts(0.03));
        EXPECT_LT(res.networkPowerW, base.networkPowerW)
            << layoutName(kind);
        // Buffers must be the biggest absolute saving (Fig 8b).
        double buf_save = base.power.buffers - res.power.buffers;
        EXPECT_GT(buf_save, base.power.arbiters - res.power.arbiters)
            << layoutName(kind);
    }
}

TEST(PaperShapes, DiagonalBlSavesMostPower)
{
    double best = 1e18;
    LayoutKind best_kind = LayoutKind::Baseline;
    for (LayoutKind kind : blLayouts()) {
        auto res = runOpenLoop(makeLayoutConfig(kind),
                               TrafficPattern::UniformRandom,
                               fastOpts(0.05));
        if (res.networkPowerW < best) {
            best = res.networkPowerW;
            best_kind = kind;
        }
    }
    EXPECT_EQ(best_kind, LayoutKind::DiagonalBL);
}

TEST(PaperShapes, Fig9NearestNeighborAnomaly)
{
    // At a high NN load the baseline still flows while +BL saturates
    // (or at minimum suffers much higher latency).
    auto base = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                            TrafficPattern::NearestNeighbor,
                            fastOpts(0.11));
    auto het = runOpenLoop(makeLayoutConfig(LayoutKind::DiagonalBL),
                           TrafficPattern::NearestNeighbor,
                           fastOpts(0.11));
    EXPECT_GT(het.avgLatencyNs, base.avgLatencyNs);
}

TEST(PaperShapes, Fig13McOnBigRoutersBeatsDiamondOnSameNetwork)
{
    // The conservation-safe half of the Fig 13 claim: *given* the
    // HeteroNoC, attaching the controllers to the big routers
    // (diagonal placement) beats placing them on small routers
    // (diamond placement) — the big routers' 6 VCs and 2-lane local
    // channels absorb the MC hot-spot traffic.
    auto diamond_het = hnoc::bench::runClosedLoopMem(
        makeLayoutConfig(LayoutKind::DiagonalBL),
        mcTiles(McPlacement::Diamond, 8), 3);
    auto diagonal_het = hnoc::bench::runClosedLoopMem(
        makeLayoutConfig(LayoutKind::DiagonalBL),
        mcTiles(McPlacement::Diagonal, 8), 3);
    EXPECT_LT(diagonal_het.mean(), diamond_het.mean() * 1.02);
}

TEST(PaperShapes, Fig14TableRoutingSpeedsLargeCoreTraffic)
{
    // Measure corner-to-anywhere packet latency with and without
    // table routing on the Diagonal+BL network under background load.
    struct CornerLatency : NetworkClient
    {
        RunningStat cornerNs;
        void
        onPacketDelivered(Network &net, Packet &pkt, Cycle) override
        {
            if (pkt.tag == 7)
                cornerNs.add(static_cast<double>(pkt.networkLatency()) *
                             net.nsPerCycle());
        }
    };

    auto run = [](bool table) {
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
        if (table) {
            cfg.routing = RoutingMode::TableXY;
            cfg.tableRoutedNodes = {0, 7, 56, 63};
        }
        Network net(cfg);
        CornerLatency client;
        net.setClient(&client);
        Rng rng(31);
        for (Cycle t = 0; t < 12000; ++t) {
            for (NodeId n = 0; n < 64; ++n) {
                if (rng.uniform() < 0.025) {
                    auto dst = static_cast<NodeId>(rng.below(63));
                    if (dst >= n)
                        ++dst;
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                }
            }
            if (t % 5 == 0) {
                for (NodeId c : {0, 7, 56, 63}) {
                    auto dst = static_cast<NodeId>(
                        rng.below(64));
                    if (dst != c)
                        net.enqueuePacket(c, dst,
                                          cfg.dataPacketFlits(), 7);
                }
            }
            net.step();
        }
        return client.cornerNs.mean();
    };

    double xy = run(false);
    double table = run(true);
    // Table routing must not pessimize the large-core flows; the
    // paper reports an improvement.
    EXPECT_LT(table, xy * 1.05);
    EXPECT_GT(xy, 0.0);
}

} // namespace
} // namespace hnoc
