/**
 * @file
 * Deterministic pseudo-random number generation for reproducible runs.
 *
 * A small xoshiro256** implementation: every simulator component owns its
 * own Rng seeded from the experiment seed, so results replay exactly.
 */

#ifndef HNOC_COMMON_RNG_HH
#define HNOC_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace hnoc
{

/**
 * xoshiro256** pseudo-random generator with splitmix64 seeding.
 *
 * Deterministic, fast, and good enough statistically for traffic
 * generation and workload synthesis.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return a uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return true with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample a bounded Pareto-like heavy-tail duration (used by the
     * self-similar traffic source). @param alpha shape, @param min_v
     * minimum value, @param max_v truncation bound.
     */
    double
    pareto(double alpha, double min_v, double max_v)
    {
        double u = uniform();
        // Invert the truncated-Pareto CDF.
        double ha = 1.0 - u * (1.0 - std::pow(min_v / max_v, alpha));
        return min_v / std::pow(ha, 1.0 / alpha);
    }

    /** Sample a geometric inter-arrival gap with success probability p. */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        std::uint64_t n = 1;
        while (!chance(p) && n < (1ULL << 20))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hnoc

#endif // HNOC_COMMON_RNG_HH
