/**
 * @file
 * Network interface (NI): the attach point of a terminal node.
 *
 * Injection side: an unbounded source queue (the client regulates
 * admission), per-VC credit tracking against the router's local input
 * port, and one packet stream per VC (wormhole: flits of a packet stay
 * in order on one VC). Ejection side: an always-consuming sink that
 * immediately returns credits (the "consumption assumption").
 */

#ifndef HNOC_NOC_NETWORK_INTERFACE_HH
#define HNOC_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <vector>

#include "common/types.hh"
#include "noc/channel.hh"
#include "noc/flit.hh"
#include "power/router_power.hh"

namespace hnoc
{

class Network;

/** Terminal-node adapter between a client and its router. */
class NetworkInterface
{
  public:
    NetworkInterface(NodeId node, Network *net) : node_(node), net_(net) {}

    /** Wire the injection channel toward the router's local port.
     *  @param intra_pairing allow two same-packet flits per cycle on
     *  wide local channels (mirrors the in-network §3.2 pairing). */
    void
    connectInjection(Channel *chan, int router_vcs, int buffer_depth,
                     RouterActivity *link_activity, bool intra_pairing)
    {
        inj_ = chan;
        credits_.assign(static_cast<std::size_t>(router_vcs), buffer_depth);
        streams_.assign(static_cast<std::size_t>(router_vcs), Stream{});
        linkActivity_ = link_activity;
        intraPairing_ = intra_pairing;
    }

    /** Wire the ejection channel from the router's local port. */
    void connectEjection(Channel *chan) { ej_ = chan; }

    /** Queue a packet for injection. */
    void
    enqueue(Packet *pkt)
    {
        sourceQueue_.push_back(pkt);
    }

    /** Send up to lane-limit flits this cycle. */
    void stepInject(Cycle now);

    /** A credit returned by the router's local input port. */
    void
    receiveCredit(VcId vc)
    {
        ++credits_[static_cast<std::size_t>(vc)];
    }

    /** A flit delivered for ejection. Returns the completed packet
     *  (tail arrived) or nullptr. */
    Packet *receiveFlit(const Flit &flit, Cycle now);

    std::size_t sourceQueueDepth() const { return sourceQueue_.size(); }

    /** Credits held toward the router's local input VC @p vc
     *  (conservation audit). */
    int
    injectionCredits(VcId vc) const
    {
        return credits_[static_cast<std::size_t>(vc)];
    }

    NodeId node() const { return node_; }

  private:
    /** An in-progress packet transmission bound to one VC. */
    struct Stream
    {
        Packet *pkt = nullptr;
        int nextSeq = 0;
    };

    NodeId node_;
    Network *net_;
    Channel *inj_ = nullptr;
    Channel *ej_ = nullptr;
    std::vector<int> credits_;
    std::vector<Stream> streams_;
    std::deque<Packet *> sourceQueue_;
    unsigned rrVc_ = 0;
    RouterActivity *linkActivity_ = nullptr;
    bool intraPairing_ = true;
};

} // namespace hnoc

#endif // HNOC_NOC_NETWORK_INTERFACE_HH
