# Empty dependencies file for test_sys_coherence.
# This may be replaced when dependencies are built.
