#include "telemetry/blame.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "telemetry/json_writer.hh"

namespace hnoc
{

const char *
blameCauseName(BlameCause c)
{
    switch (c) {
    case BlameCause::SourceQueueing:
        return "source_queueing";
    case BlameCause::RoutePending:
        return "route_pending";
    case BlameCause::VaConflictLost:
        return "va_conflict_lost";
    case BlameCause::SaConflictLost:
        return "sa_conflict_lost";
    case BlameCause::CreditStarved:
        return "credit_starved";
    case BlameCause::EjectBackpressure:
        return "eject_backpressure";
    case BlameCause::LinkSerialization:
        return "link_serialization";
    case BlameCause::NumCauses:
        break;
    }
    return "?";
}

const char *
blameLinkClassName(BlameLinkClass c)
{
    switch (c) {
    case BlameLinkClass::None:
        return "none";
    case BlameLinkClass::Local:
        return "local";
    case BlameLinkClass::Narrow:
        return "narrow";
    case BlameLinkClass::Wide:
        return "wide";
    case BlameLinkClass::NumClasses:
        break;
    }
    return "?";
}

namespace
{

/** Sort key for the worst-packet leaderboard: latency desc, id asc. */
bool
worstBefore(const BlameCollector::WorstPacket &a,
            const BlameCollector::WorstPacket &b)
{
    if (a.latency != b.latency)
        return a.latency > b.latency;
    return a.id < b.id;
}

} // namespace

BlameCollector::BlameCollector(const Dims &dims) : dims_(dims)
{
    if (dims.routers <= 0 || dims.ports <= 0 || dims.gridCols <= 0)
        panic("BlameCollector: invalid dims %dx%d (grid cols %d)",
              dims.routers, dims.ports, dims.gridCols);
    routerBig_.assign(static_cast<std::size_t>(dims.routers), 0);
    portLinkClass_.assign(static_cast<std::size_t>(dims.routers) *
                              static_cast<std::size_t>(dims.ports),
                          BlameLinkClass::None);
    perRouterCause_.assign(static_cast<std::size_t>(dims.routers) *
                               kNumBlameCauses,
                           0);
    buckets_.resize(kLadderBuckets);
    worst_.reserve(kWorstN + 1);
}

BlameCollector::BlameCollector(const BlameCollector &other)
    : dims_(other.dims_), routerBig_(other.routerBig_),
      portLinkClass_(other.portLinkClass_),
      nodeRouter_(other.nodeRouter_), packets_(other.packets_),
      identityViolations_(other.identityViolations_),
      totalLatency_(other.totalLatency_),
      totalMinHead_(other.totalMinHead_),
      totalMinSer_(other.totalMinSer_), totalCause_(other.totalCause_),
      perRouterCause_(other.perRouterCause_),
      classCause_(other.classCause_), buckets_(other.buckets_),
      worst_(other.worst_)
{
}

void
BlameCollector::setRouterClass(RouterId r, bool big)
{
    routerBig_[static_cast<std::size_t>(r)] = big ? 1 : 0;
}

void
BlameCollector::setPortLinkClass(RouterId r, PortId p, BlameLinkClass cls)
{
    portLinkClass_[static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(dims_.ports) +
                   static_cast<std::size_t>(p)] = cls;
}

void
BlameCollector::setNodeRouter(NodeId n, RouterId r)
{
    if (nodeRouter_.size() <= static_cast<std::size_t>(n))
        nodeRouter_.resize(static_cast<std::size_t>(n) + 1, 0);
    nodeRouter_[static_cast<std::size_t>(n)] = r;
}

BlameLedger *
BlameCollector::acquire()
{
    if (free_.empty()) {
        slabs_.push_back(std::make_unique<BlameLedger>());
        return slabs_.back().get();
    }
    BlameLedger *l = free_.back();
    free_.pop_back();
    return l;
}

void
BlameCollector::release(BlameLedger *l)
{
    l->reset();
    free_.push_back(l);
}

std::size_t
BlameCollector::bucketOf(std::uint64_t latency) const
{
    constexpr std::uint64_t width = kLadderMax / kLadderBuckets;
    std::uint64_t b = latency / width;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(b, kLadderBuckets - 1));
}

void
BlameCollector::commit(PacketId id, NodeId src, NodeId dst,
                       Cycle createdAt, Cycle injectedAt, Cycle ejectedAt,
                       const BlameLedger &l)
{
    std::uint64_t latency = ejectedAt - createdAt;

    // Derive the two commit-time causes.
    std::array<std::uint64_t, kNumBlameCauses> cycles = l.cycles;
    std::uint64_t sq = injectedAt - createdAt;
    cycles[static_cast<std::size_t>(BlameCause::SourceQueueing)] += sq;

    std::uint64_t link_ser = 0;
    bool tail_ok = l.headEjectAt != CYCLE_NEVER &&
                   ejectedAt >= l.headEjectAt &&
                   ejectedAt - l.headEjectAt >= l.minSerCycles;
    if (tail_ok)
        link_ser = (ejectedAt - l.headEjectAt) - l.minSerCycles;
    cycles[static_cast<std::size_t>(BlameCause::LinkSerialization)] +=
        link_ser;

    // Exact accounting identity; a mismatch means a hook site missed
    // (or double-charged) a stall cycle — count it, never hide it.
    std::uint64_t sum = l.minHeadCycles + l.minSerCycles;
    for (std::uint64_t c : cycles)
        sum += c;
    if (!tail_ok || sum != latency)
        ++identityViolations_;

    // Heat-map / class attribution for the derived causes. The
    // in-network causes were already charged at their stall sites;
    // source queueing lands on the source's router, tail drag on the
    // destination's ejection funnel.
    if (sq > 0) {
        RouterId r = nodeRouter_[static_cast<std::size_t>(src)];
        charge(r, INVALID_PORT, BlameCause::SourceQueueing, sq);
    }
    if (link_ser > 0) {
        RouterId r = nodeRouter_[static_cast<std::size_t>(dst)];
        auto ci =
            static_cast<std::size_t>(BlameCause::LinkSerialization);
        perRouterCause_[static_cast<std::size_t>(r) * kNumBlameCauses +
                        ci] += link_ser;
        int rc = routerBig_[static_cast<std::size_t>(r)] ? 1 : 0;
        classCause_[static_cast<std::size_t>(
            rc * kNumBlameLinkClasses +
            static_cast<int>(BlameLinkClass::Local))][ci] += link_ser;
    }

    // Scalar aggregates (committed packets only).
    ++packets_;
    totalLatency_ += latency;
    totalMinHead_ += l.minHeadCycles;
    totalMinSer_ += l.minSerCycles;
    for (int c = 0; c < kNumBlameCauses; ++c)
        totalCause_[static_cast<std::size_t>(c)] +=
            cycles[static_cast<std::size_t>(c)];

    // Latency-bucket ladder.
    Bucket &b = buckets_[bucketOf(latency)];
    ++b.count;
    b.latency += latency;
    b.minHead += l.minHeadCycles;
    b.minSer += l.minSerCycles;
    for (int c = 0; c < kNumBlameCauses; ++c)
        b.cause[static_cast<std::size_t>(c)] +=
            cycles[static_cast<std::size_t>(c)];

    // Worst-packet leaderboard.
    if (worst_.size() < kWorstN || latency > worst_.back().latency ||
        (latency == worst_.back().latency && id < worst_.back().id)) {
        WorstPacket wp;
        wp.id = id;
        wp.src = src;
        wp.dst = dst;
        wp.latency = latency;
        wp.minHead = l.minHeadCycles;
        wp.minSer = l.minSerCycles;
        wp.cycles = cycles;
        worst_.insert(std::upper_bound(worst_.begin(), worst_.end(), wp,
                                       worstBefore),
                      wp);
        if (worst_.size() > kWorstN)
            worst_.pop_back();
    }
}

void
BlameCollector::merge(const BlameCollector &other)
{
    if (other.dims_.routers != dims_.routers ||
        other.dims_.ports != dims_.ports)
        panic("BlameCollector::merge: shape mismatch (%dx%d vs %dx%d)",
              dims_.routers, dims_.ports, other.dims_.routers,
              other.dims_.ports);
    packets_ += other.packets_;
    identityViolations_ += other.identityViolations_;
    totalLatency_ += other.totalLatency_;
    totalMinHead_ += other.totalMinHead_;
    totalMinSer_ += other.totalMinSer_;
    for (int c = 0; c < kNumBlameCauses; ++c)
        totalCause_[static_cast<std::size_t>(c)] +=
            other.totalCause_[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < perRouterCause_.size(); ++i)
        perRouterCause_[i] += other.perRouterCause_[i];
    for (std::size_t k = 0; k < classCause_.size(); ++k)
        for (int c = 0; c < kNumBlameCauses; ++c)
            classCause_[k][static_cast<std::size_t>(c)] +=
                other.classCause_[k][static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        Bucket &a = buckets_[i];
        const Bucket &b = other.buckets_[i];
        a.count += b.count;
        a.latency += b.latency;
        a.minHead += b.minHead;
        a.minSer += b.minSer;
        for (int c = 0; c < kNumBlameCauses; ++c)
            a.cause[static_cast<std::size_t>(c)] +=
                b.cause[static_cast<std::size_t>(c)];
    }
    worst_.insert(worst_.end(), other.worst_.begin(), other.worst_.end());
    std::stable_sort(worst_.begin(), worst_.end(), worstBefore);
    if (worst_.size() > kWorstN)
        worst_.resize(kWorstN);
}

std::uint64_t
BlameCollector::totalCause(BlameCause c) const
{
    return totalCause_[static_cast<std::size_t>(c)];
}

std::uint64_t
BlameCollector::footprintBytes() const
{
    std::uint64_t b = sizeof(*this);
    b += routerBig_.capacity() * sizeof(std::uint8_t);
    b += portLinkClass_.capacity() * sizeof(BlameLinkClass);
    b += nodeRouter_.capacity() * sizeof(RouterId);
    b += perRouterCause_.capacity() * sizeof(std::uint64_t);
    b += buckets_.capacity() * sizeof(Bucket);
    b += worst_.capacity() * sizeof(WorstPacket);
    b += slabs_.size() * (sizeof(BlameLedger) +
                          sizeof(std::unique_ptr<BlameLedger>));
    b += free_.capacity() * sizeof(BlameLedger *);
    return b;
}

std::vector<BlameCollector::Rung>
BlameCollector::ladder() const
{
    static constexpr double kPcts[] = {50.0, 90.0, 99.0, 99.9};
    std::vector<Rung> rungs;
    if (packets_ == 0)
        return rungs;
    constexpr std::uint64_t width = kLadderMax / kLadderBuckets;
    for (double pct : kPcts) {
        // Smallest bucket whose cumulative count reaches the rank.
        double rank = pct / 100.0 * static_cast<double>(packets_);
        std::uint64_t cum = 0;
        std::size_t first = kLadderBuckets - 1;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            cum += buckets_[i].count;
            if (static_cast<double>(cum) >= rank && buckets_[i].count) {
                first = i;
                break;
            }
        }
        Rung r;
        r.pct = pct;
        r.latency = first * width;
        Bucket tail;
        for (std::size_t i = first; i < buckets_.size(); ++i) {
            const Bucket &b = buckets_[i];
            tail.count += b.count;
            tail.latency += b.latency;
            tail.minHead += b.minHead;
            tail.minSer += b.minSer;
            for (int c = 0; c < kNumBlameCauses; ++c)
                tail.cause[static_cast<std::size_t>(c)] +=
                    b.cause[static_cast<std::size_t>(c)];
        }
        r.tailPackets = tail.count;
        if (tail.count > 0) {
            auto n = static_cast<double>(tail.count);
            r.meanLatency = static_cast<double>(tail.latency) / n;
            r.meanMinHead = static_cast<double>(tail.minHead) / n;
            r.meanMinSer = static_cast<double>(tail.minSer) / n;
            for (int c = 0; c < kNumBlameCauses; ++c)
                r.meanCause[static_cast<std::size_t>(c)] =
                    static_cast<double>(
                        tail.cause[static_cast<std::size_t>(c)]) /
                    n;
        }
        rungs.push_back(r);
    }
    return rungs;
}

void
BlameCollector::writeJson(JsonWriter &w) const
{
    double total = totalLatency_ > 0
                       ? static_cast<double>(totalLatency_)
                       : 1.0;
    double npkt = packets_ > 0 ? static_cast<double>(packets_) : 1.0;

    w.beginObject();
    w.keyValue("schema", "hnoc-latency-blame-v1");
    w.keyValue("packets", packets_);
    w.keyValue("identity_violations", identityViolations_);
    w.keyValue("total_latency_cycles", totalLatency_);
    w.keyValue("mean_latency_cycles",
               static_cast<double>(totalLatency_) / npkt);

    // Run-wide decomposition. Shares are of total measured latency, so
    // the cause rows plus the two min terms sum to 100% (modulo
    // identity violations, which are reported above).
    w.key("causes");
    w.beginObject();
    auto cause_row = [&](const char *name, std::uint64_t cyc) {
        w.key(name);
        w.beginObject();
        w.keyValue("cycles", cyc);
        w.keyValue("share_pct", 100.0 * static_cast<double>(cyc) / total);
        w.keyValue("per_packet", static_cast<double>(cyc) / npkt);
        w.endObject();
    };
    cause_row("min_head_latency", totalMinHead_);
    cause_row("min_serialization", totalMinSer_);
    for (int c = 0; c < kNumBlameCauses; ++c)
        cause_row(blameCauseName(static_cast<BlameCause>(c)),
                  totalCause_[static_cast<std::size_t>(c)]);
    w.endObject();

    // Percentile ladder: each rung decomposes the mean blame of the
    // packets at or above that latency percentile.
    w.key("percentiles");
    w.beginArray();
    for (const Rung &r : ladder()) {
        w.beginObject();
        w.keyValue("percentile", r.pct);
        w.keyValue("latency_cycles", r.latency);
        w.keyValue("tail_packets", r.tailPackets);
        w.keyValue("tail_mean_latency", r.meanLatency);
        w.key("tail_mean_blame");
        w.beginObject();
        w.keyValue("min_head_latency", r.meanMinHead);
        w.keyValue("min_serialization", r.meanMinSer);
        for (int c = 0; c < kNumBlameCauses; ++c)
            w.keyValue(blameCauseName(static_cast<BlameCause>(c)),
                       r.meanCause[static_cast<std::size_t>(c)]);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    // cause x router class x link class (the paper's big/small x
    // wide/narrow split). All-zero rows are skipped.
    w.key("classes");
    w.beginArray();
    for (int rc = 0; rc < 2; ++rc) {
        for (int lc = 0; lc < kNumBlameLinkClasses; ++lc) {
            const auto &row = classCause_[static_cast<std::size_t>(
                rc * kNumBlameLinkClasses + lc)];
            std::uint64_t row_total = 0;
            for (std::uint64_t v : row)
                row_total += v;
            if (row_total == 0)
                continue;
            w.beginObject();
            w.keyValue("router_class", rc ? "big" : "small");
            w.keyValue("link_class",
                       blameLinkClassName(
                           static_cast<BlameLinkClass>(lc)));
            w.keyValue("cycles", row_total);
            w.key("by_cause");
            w.beginObject();
            for (int c = 0; c < kNumBlameCauses; ++c)
                w.keyValue(blameCauseName(static_cast<BlameCause>(c)),
                           row[static_cast<std::size_t>(c)]);
            w.endObject();
            w.endObject();
        }
    }
    w.endArray();

    // Fig-1-style per-router blame heat maps (row-major on the router
    // grid). Unlike the scalar aggregates these include stall cycles
    // charged to packets still in flight at the end of the run.
    w.key("heatmap");
    w.beginObject();
    w.keyValue("grid_cols", dims_.gridCols);
    std::vector<std::uint64_t> row(
        static_cast<std::size_t>(dims_.routers));
    for (int r = 0; r < dims_.routers; ++r) {
        std::uint64_t t = 0;
        for (int c = 0; c < kNumBlameCauses; ++c)
            t += perRouterCause_[static_cast<std::size_t>(r) *
                                     kNumBlameCauses +
                                 static_cast<std::size_t>(c)];
        row[static_cast<std::size_t>(r)] = t;
    }
    w.keyArray("total", row);
    w.key("by_cause");
    w.beginObject();
    for (int c = 0; c < kNumBlameCauses; ++c) {
        for (int r = 0; r < dims_.routers; ++r)
            row[static_cast<std::size_t>(r)] =
                perRouterCause_[static_cast<std::size_t>(r) *
                                    kNumBlameCauses +
                                static_cast<std::size_t>(c)];
        w.keyArray(blameCauseName(static_cast<BlameCause>(c)), row);
    }
    w.endObject();
    w.endObject();

    w.key("worst_packets");
    w.beginArray();
    for (const WorstPacket &p : worst_) {
        w.beginObject();
        w.keyValue("id", p.id);
        w.keyValue("src", p.src);
        w.keyValue("dst", p.dst);
        w.keyValue("latency_cycles", p.latency);
        w.keyValue("min_head_latency", p.minHead);
        w.keyValue("min_serialization", p.minSer);
        w.key("blame");
        w.beginObject();
        for (int c = 0; c < kNumBlameCauses; ++c)
            w.keyValue(blameCauseName(static_cast<BlameCause>(c)),
                       p.cycles[static_cast<std::size_t>(c)]);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
BlameCollector::json() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

std::string
BlameCollector::table() const
{
    char buf[256];
    std::string out;
    double total = totalLatency_ > 0
                       ? static_cast<double>(totalLatency_)
                       : 1.0;
    double npkt = packets_ > 0 ? static_cast<double>(packets_) : 1.0;
    std::snprintf(buf, sizeof(buf),
                  "latency blame: %llu packets, mean %.2f cyc, "
                  "%llu identity violations\n",
                  static_cast<unsigned long long>(packets_),
                  static_cast<double>(totalLatency_) / npkt,
                  static_cast<unsigned long long>(identityViolations_));
    out += buf;

    out += "  cause                 cycles     share    per-pkt\n";
    auto cause_line = [&](const char *name, std::uint64_t cyc) {
        std::snprintf(buf, sizeof(buf), "  %-18s %10llu   %6.2f%%   %8.3f\n",
                      name, static_cast<unsigned long long>(cyc),
                      100.0 * static_cast<double>(cyc) / total,
                      static_cast<double>(cyc) / npkt);
        out += buf;
    };
    cause_line("min_head_latency", totalMinHead_);
    cause_line("min_serialization", totalMinSer_);
    for (int c = 0; c < kNumBlameCauses; ++c)
        cause_line(blameCauseName(static_cast<BlameCause>(c)),
                   totalCause_[static_cast<std::size_t>(c)]);

    out += "  percentile ladder (tail-mean blame decomposition):\n";
    for (const Rung &r : ladder()) {
        std::string top;
        // Name the dominant stall cause of the tail (min terms are
        // structural, not stalls, so they are excluded from "top").
        int best = -1;
        for (int c = 0; c < kNumBlameCauses; ++c)
            if (best < 0 ||
                r.meanCause[static_cast<std::size_t>(c)] >
                    r.meanCause[static_cast<std::size_t>(best)])
                best = c;
        std::snprintf(
            buf, sizeof(buf),
            "    p%-5g >= %4llu cyc (%llu pkts, mean %.1f): "
            "min %.1f+%.1f, top stall %s %.1f\n",
            r.pct, static_cast<unsigned long long>(r.latency),
            static_cast<unsigned long long>(r.tailPackets), r.meanLatency,
            r.meanMinHead, r.meanMinSer,
            blameCauseName(static_cast<BlameCause>(best)),
            r.meanCause[static_cast<std::size_t>(best)]);
        out += buf;
    }

    // Per-router heat maps: total blame plus the two most-charged
    // stall causes. Values are normalized to percent of the map's own
    // total so the fixed-width cell format stays readable at any run
    // length (the JSON report keeps the raw cycle counts).
    auto normalize = [](std::vector<double> &v) {
        double sum = 0.0;
        for (double x : v)
            sum += x;
        if (sum <= 0.0)
            return;
        for (double &x : v)
            x = 100.0 * x / sum;
    };
    std::vector<double> vals(static_cast<std::size_t>(dims_.routers));
    for (int r = 0; r < dims_.routers; ++r) {
        std::uint64_t t = 0;
        for (int c = 0; c < kNumBlameCauses; ++c)
            t += perRouterCause_[static_cast<std::size_t>(r) *
                                     kNumBlameCauses +
                                 static_cast<std::size_t>(c)];
        vals[static_cast<std::size_t>(r)] = static_cast<double>(t);
    }
    normalize(vals);
    out += formatHeatMap(vals, dims_.gridCols,
                         "blame heat map (all causes, % of total)");
    std::array<int, kNumBlameCauses> order;
    for (int c = 0; c < kNumBlameCauses; ++c)
        order[static_cast<std::size_t>(c)] = c;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return totalCause_[static_cast<std::size_t>(a)] >
               totalCause_[static_cast<std::size_t>(b)];
    });
    for (int k = 0; k < 2; ++k) {
        int c = order[static_cast<std::size_t>(k)];
        if (totalCause_[static_cast<std::size_t>(c)] == 0)
            break;
        for (int r = 0; r < dims_.routers; ++r)
            vals[static_cast<std::size_t>(r)] = static_cast<double>(
                perRouterCause_[static_cast<std::size_t>(r) *
                                    kNumBlameCauses +
                                static_cast<std::size_t>(c)]);
        normalize(vals);
        std::snprintf(buf, sizeof(buf), "blame heat map (%s, %% of total)",
                      blameCauseName(static_cast<BlameCause>(c)));
        out += formatHeatMap(vals, dims_.gridCols, buf);
    }
    return out;
}

} // namespace hnoc
