#include "noc/routing.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.hh"

namespace hnoc
{

using namespace mesh_ports;

std::unique_ptr<RoutingAlgorithm>
RoutingAlgorithm::create(const NetworkConfig &config, const Topology &topo)
{
    if (config.routing == RoutingMode::TableXY)
        return std::make_unique<TableXYRouting>(config, topo);

    switch (config.topology) {
      case TopologyType::Mesh:
      case TopologyType::ConcentratedMesh:
        if (config.routing == RoutingMode::YX)
            return std::make_unique<YXRouting>(config, topo);
        if (config.routing == RoutingMode::O1Turn)
            return std::make_unique<O1TurnRouting>(config, topo);
        return std::make_unique<XYRouting>(config, topo);
      case TopologyType::Torus:
        return std::make_unique<TorusXYRouting>(config, topo);
      case TopologyType::FlattenedButterfly:
        return std::make_unique<FlatFlyRouting>(config, topo);
    }
    panic("RoutingAlgorithm::create: unknown topology");
}

std::vector<RouterId>
RoutingAlgorithm::path(NodeId src, NodeId dst) const
{
    // Generic walk: repeatedly apply outputPort until the local port.
    std::vector<RouterId> routers;
    Packet probe;
    probe.src = src;
    probe.dst = dst;
    RouterId r = topo_.routerOfNode(src);
    routers.push_back(r);
    int guard = topo_.numRouters() * 4;
    while (--guard > 0) {
        PortId p = outputPort(r, probe);
        if (p >= topo_.numDirPorts())
            return routers; // reached the destination's local port
        const PortPeer &peer = topo_.peer(r, p);
        if (peer.router == INVALID_ROUTER)
            panic("routing walked off the topology at router %d", r);
        r = peer.router;
        routers.push_back(r);
    }
    panic("routing loop detected between nodes %d and %d", src, dst);
}

// ---------------------------------------------------------------- XY --

PortId
XYRouting::outputPort(RouterId r, const Packet &pkt) const
{
    RouterId dr = topo_.routerOfNode(pkt.dst);
    if (r == dr)
        return topo_.localPortOfNode(pkt.dst);
    Coord cur = topo_.routerCoord(r);
    Coord dst = topo_.routerCoord(dr);
    if (cur.x < dst.x)
        return EAST;
    if (cur.x > dst.x)
        return WEST;
    return cur.y < dst.y ? SOUTH : NORTH;
}

PortId
YXRouting::outputPort(RouterId r, const Packet &pkt) const
{
    RouterId dr = topo_.routerOfNode(pkt.dst);
    if (r == dr)
        return topo_.localPortOfNode(pkt.dst);
    Coord cur = topo_.routerCoord(r);
    Coord dst = topo_.routerCoord(dr);
    if (cur.y < dst.y)
        return SOUTH;
    if (cur.y > dst.y)
        return NORTH;
    return cur.x < dst.x ? EAST : WEST;
}

// ------------------------------------------------------------ O1TURN --

O1TurnRouting::O1TurnRouting(const NetworkConfig &config,
                             const Topology &topo)
    : RoutingAlgorithm(config, topo), xy_(config, topo),
      yx_(config, topo)
{
    int min_vcs = config.defaultVcs;
    for (RouterId r = 0; r < topo.numRouters(); ++r)
        min_vcs = std::min(min_vcs, config.vcsOf(r));
    if (min_vcs < 2)
        fatal("O1TURN requires >= 2 VCs per port for its two classes");
}

PortId
O1TurnRouting::outputPort(RouterId r, const Packet &pkt) const
{
    return pkt.yxRouted ? yx_.outputPort(r, pkt)
                        : xy_.outputPort(r, pkt);
}

void
O1TurnRouting::vcBounds(RouterId r, PortId out, const Packet &pkt,
                        int down_vcs, VcId &lo, VcId &hi) const
{
    (void)r;
    (void)out;
    int split = (down_vcs + 1) / 2;
    if (!pkt.yxRouted) {
        lo = 0;
        hi = split - 1;
    } else {
        lo = split;
        hi = down_vcs - 1;
    }
}

// ------------------------------------------------------------- Torus --

TorusXYRouting::TorusXYRouting(const NetworkConfig &config,
                               const Topology &topo)
    : RoutingAlgorithm(config, topo)
{
    int min_vcs = config.defaultVcs;
    for (RouterId r = 0; r < topo.numRouters(); ++r)
        min_vcs = std::min(min_vcs, config.vcsOf(r));
    if (min_vcs < 2)
        fatal("torus dateline routing requires >= 2 VCs per port");
}

int
TorusXYRouting::shortestDir(int from, int to, int k)
{
    int fwd = (to - from + k) % k; // hops going +
    int bwd = (from - to + k) % k; // hops going -
    return fwd <= bwd ? 1 : -1;
}

PortId
TorusXYRouting::outputPort(RouterId r, const Packet &pkt) const
{
    RouterId dr = topo_.routerOfNode(pkt.dst);
    if (r == dr)
        return topo_.localPortOfNode(pkt.dst);
    Coord cur = topo_.routerCoord(r);
    Coord dst = topo_.routerCoord(dr);
    if (cur.x != dst.x)
        return shortestDir(cur.x, dst.x, topo_.gridCols()) > 0 ? EAST
                                                               : WEST;
    return shortestDir(cur.y, dst.y, topo_.gridRows()) > 0 ? SOUTH : NORTH;
}

void
TorusXYRouting::vcBounds(RouterId r, PortId out, const Packet &pkt,
                         int down_vcs, VcId &lo, VcId &hi) const
{
    // Dateline scheme: packets that have crossed the wraparound edge in
    // the dimension they are currently traversing use the upper VC
    // class; others the lower class. Whether the wrap was crossed is
    // statically computable from (src, current) under deterministic
    // routing.
    (void)out;
    Coord cur = topo_.routerCoord(r);
    Coord src = topo_.routerCoord(topo_.routerOfNode(pkt.src));
    Coord dst = topo_.routerCoord(topo_.routerOfNode(pkt.dst));

    bool crossed;
    if (cur.x != dst.x) {
        int dir = shortestDir(src.x, dst.x, topo_.gridCols());
        crossed = dir > 0 ? cur.x < src.x : cur.x > src.x;
    } else {
        int dir = shortestDir(src.y, dst.y, topo_.gridRows());
        crossed = dir > 0 ? cur.y < src.y : cur.y > src.y;
    }

    int split = (down_vcs + 1) / 2; // lower class gets ceil(v/2)
    if (!crossed) {
        lo = 0;
        hi = split - 1;
    } else {
        lo = split;
        hi = down_vcs - 1;
    }
}

std::vector<RouterId>
TorusXYRouting::path(NodeId src, NodeId dst) const
{
    return RoutingAlgorithm::path(src, dst);
}

// ----------------------------------------------------------- FlatFly --

PortId
FlatFlyRouting::outputPort(RouterId r, const Packet &pkt) const
{
    RouterId dr = topo_.routerOfNode(pkt.dst);
    if (r == dr)
        return topo_.localPortOfNode(pkt.dst);
    Coord cur = topo_.routerCoord(r);
    Coord dst = topo_.routerCoord(dr);
    int cols = topo_.gridCols();
    if (cur.x != dst.x)
        return dst.x < cur.x ? dst.x : dst.x - 1; // row port
    return (cols - 1) + (dst.y < cur.y ? dst.y : dst.y - 1); // col port
}

std::vector<RouterId>
FlatFlyRouting::path(NodeId src, NodeId dst) const
{
    return RoutingAlgorithm::path(src, dst);
}

// ----------------------------------------------------------- TableXY --

TableXYRouting::TableXYRouting(const NetworkConfig &config,
                               const Topology &topo)
    : RoutingAlgorithm(config, topo), xy_(config, topo),
      isTableNode_(static_cast<std::size_t>(topo.numNodes()), false)
{
    for (NodeId n : config.tableRoutedNodes) {
        if (n < 0 || n >= topo.numNodes())
            fatal("tableRoutedNodes contains invalid node %d", n);
        isTableNode_[static_cast<std::size_t>(n)] = true;
    }
    buildTables();
}

bool
TableXYRouting::isTableNode(NodeId n) const
{
    return isTableNode_[static_cast<std::size_t>(n)];
}

void
TableXYRouting::buildTables()
{
    toward_.resize(static_cast<std::size_t>(topo_.numRouters()));
    for (RouterId d = 0; d < topo_.numRouters(); ++d)
        toward_[static_cast<std::size_t>(d)] = towardTree(d);
}

std::vector<PortId>
TableXYRouting::towardTree(RouterId dst_router) const
{
    // Dijkstra on the router graph toward dst_router. Entering a big
    // router (more VCs than the network minimum) costs less, which
    // biases paths through the big routers, producing the zig-zag
    // X-Y-X-Y paths of Fig 14(a).
    int n = topo_.numRouters();
    int min_vcs = config_.vcsOf(0);
    for (RouterId r = 1; r < n; ++r)
        min_vcs = std::min(min_vcs, config_.vcsOf(r));
    auto enter_cost = [&](RouterId r) {
        return config_.vcsOf(r) > min_vcs ? 0.55 : 1.0;
    };

    std::vector<double> dist(static_cast<std::size_t>(n),
                             std::numeric_limits<double>::infinity());
    std::vector<PortId> port(static_cast<std::size_t>(n), INVALID_PORT);
    using Item = std::pair<double, RouterId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[static_cast<std::size_t>(dst_router)] = 0.0;
    heap.emplace(0.0, dst_router);

    while (!heap.empty()) {
        auto [d, r] = heap.top();
        heap.pop();
        if (d > dist[static_cast<std::size_t>(r)])
            continue;
        // Relax incoming edges: a neighbor q reaching dst via r uses
        // the port at q that leads to r.
        for (PortId p = 0; p < topo_.numDirPorts(); ++p) {
            const PortPeer &peer = topo_.peer(r, p);
            if (peer.router == INVALID_ROUTER)
                continue;
            RouterId q = peer.router;
            double nd = d + enter_cost(r);
            if (nd < dist[static_cast<std::size_t>(q)] - 1e-12) {
                dist[static_cast<std::size_t>(q)] = nd;
                port[static_cast<std::size_t>(q)] = peer.port;
                heap.emplace(nd, q);
            }
        }
    }
    return port;
}

PortId
TableXYRouting::outputPort(RouterId r, const Packet &pkt) const
{
    if (!pkt.tableRouted || pkt.escaped)
        return xy_.outputPort(r, pkt);
    RouterId dr = topo_.routerOfNode(pkt.dst);
    if (r == dr)
        return topo_.localPortOfNode(pkt.dst);
    PortId p = toward_[static_cast<std::size_t>(dr)]
                      [static_cast<std::size_t>(r)];
    if (p == INVALID_PORT)
        return xy_.outputPort(r, pkt);
    return p;
}

PortId
TableXYRouting::escapePort(RouterId r, const Packet &pkt) const
{
    return xy_.outputPort(r, pkt);
}

void
TableXYRouting::vcBounds(RouterId r, PortId out, const Packet &pkt,
                         int down_vcs, VcId &lo, VcId &hi) const
{
    (void)r;
    (void)out;
    if (pkt.tableRouted && !pkt.escaped && down_vcs > 1) {
        // Keep VC 0 as the X-Y escape layer.
        lo = 1;
        hi = down_vcs - 1;
    } else {
        lo = 0;
        hi = down_vcs - 1;
    }
}

std::vector<RouterId>
TableXYRouting::path(NodeId src, NodeId dst) const
{
    std::vector<RouterId> routers;
    bool table = isTableNode(src) || isTableNode(dst);
    Packet probe;
    probe.src = src;
    probe.dst = dst;
    probe.tableRouted = table;
    RouterId r = topo_.routerOfNode(src);
    routers.push_back(r);
    int guard = topo_.numRouters() * 4;
    while (--guard > 0) {
        PortId p = outputPort(r, probe);
        if (p >= topo_.numDirPorts())
            return routers;
        r = topo_.peer(r, p).router;
        routers.push_back(r);
    }
    panic("table routing loop between nodes %d and %d", src, dst);
}

} // namespace hnoc
