file(REMOVE_RECURSE
  "CMakeFiles/flit_trace.dir/flit_trace.cpp.o"
  "CMakeFiles/flit_trace.dir/flit_trace.cpp.o.d"
  "flit_trace"
  "flit_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
