
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/config_io.cc" "src/noc/CMakeFiles/hnoc_noc.dir/config_io.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/config_io.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/noc/CMakeFiles/hnoc_noc.dir/network.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/network.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/noc/CMakeFiles/hnoc_noc.dir/network_interface.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/network_interface.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/noc/CMakeFiles/hnoc_noc.dir/router.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/router.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/noc/CMakeFiles/hnoc_noc.dir/routing.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/routing.cc.o.d"
  "/root/repo/src/noc/sim_harness.cc" "src/noc/CMakeFiles/hnoc_noc.dir/sim_harness.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/sim_harness.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/noc/CMakeFiles/hnoc_noc.dir/topology.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/topology.cc.o.d"
  "/root/repo/src/noc/traffic.cc" "src/noc/CMakeFiles/hnoc_noc.dir/traffic.cc.o" "gcc" "src/noc/CMakeFiles/hnoc_noc.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hnoc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
