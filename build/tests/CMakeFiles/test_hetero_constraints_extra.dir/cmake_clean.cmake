file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_constraints_extra.dir/heteronoc/test_constraints_extra.cc.o"
  "CMakeFiles/test_hetero_constraints_extra.dir/heteronoc/test_constraints_extra.cc.o.d"
  "test_hetero_constraints_extra"
  "test_hetero_constraints_extra.pdb"
  "test_hetero_constraints_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_constraints_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
