/**
 * @file
 * End-to-end smoke tests: packets traverse the baseline 8x8 mesh, are
 * delivered intact, and latency behaves sanely.
 */

#include <gtest/gtest.h>

#include "noc/network.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

NetworkConfig
baselineConfig()
{
    NetworkConfig cfg;
    cfg.name = "baseline";
    return cfg;
}

/** Client that records deliveries. */
class RecordingClient : public NetworkClient
{
  public:
    void
    onPacketDelivered(Network &, Packet &pkt, Cycle now) override
    {
        delivered.push_back({pkt.id, pkt.src, pkt.dst, pkt.createdAt,
                             pkt.injectedAt, now, pkt.hops});
    }

    struct Record
    {
        PacketId id;
        NodeId src, dst;
        Cycle created, injected, ejected;
        int hops;
    };
    std::vector<Record> delivered;
};

TEST(NocSmoke, SinglePacketCrossesMesh)
{
    Network net(baselineConfig());
    RecordingClient client;
    net.setClient(&client);

    net.enqueuePacket(0, 63, 6);
    net.run(200);

    ASSERT_EQ(client.delivered.size(), 1u);
    const auto &rec = client.delivered[0];
    EXPECT_EQ(rec.src, 0);
    EXPECT_EQ(rec.dst, 63);
    // XY path 0 -> 63 visits 8 routers in the row + 7 in the column.
    EXPECT_EQ(rec.hops, 15);
    // Contention-free latency: must match the analytic bound exactly.
    Cycle expect = net.minTransferCycles(0, 63, 6);
    EXPECT_EQ(rec.ejected - rec.injected, expect);
}

TEST(NocSmoke, MinTransferMatchesSimAcrossPairs)
{
    const std::pair<NodeId, NodeId> pairs[] = {
        {0, 1}, {0, 8}, {5, 58}, {63, 0}, {7, 56}, {27, 36}};
    for (auto [src, dst] : pairs) {
        Network net(baselineConfig());
        RecordingClient client;
        net.setClient(&client);
        net.enqueuePacket(src, dst, 6);
        net.run(300);
        ASSERT_EQ(client.delivered.size(), 1u)
            << "pair " << src << "->" << dst;
        EXPECT_EQ(client.delivered[0].ejected -
                      client.delivered[0].injected,
                  net.minTransferCycles(src, dst, 6))
            << "pair " << src << "->" << dst;
    }
}

TEST(NocSmoke, ManyPacketsAllDelivered)
{
    Network net(baselineConfig());
    RecordingClient client;
    net.setClient(&client);

    // Every node sends one packet to its bit-complement partner.
    for (NodeId n = 0; n < 64; ++n)
        net.enqueuePacket(n, 63 - n, 6);
    net.run(2000);

    EXPECT_EQ(client.delivered.size(), 64u);
    EXPECT_EQ(net.packetsInFlight(), 0u);
}

TEST(NocSmoke, OpenLoopLowLoadLatencySane)
{
    SimPointOptions opts;
    opts.injectionRate = 0.005;
    opts.warmupCycles = 2000;
    opts.measureCycles = 5000;
    opts.drainCycles = 5000;
    auto res = runOpenLoop(baselineConfig(), TrafficPattern::UniformRandom,
                           opts);
    EXPECT_FALSE(res.saturated);
    EXPECT_GT(res.trackedDelivered, 100u);
    // Zero-load-ish latency on an 8x8 mesh at 2.2 GHz: ~8-18 ns.
    EXPECT_GT(res.avgLatencyNs, 5.0);
    EXPECT_LT(res.avgLatencyNs, 25.0);
    // Accepted tracks offered at low load.
    EXPECT_NEAR(res.acceptedRate, res.offeredRate,
                0.2 * res.offeredRate);
    EXPECT_GT(res.networkPowerW, 0.0);
}

TEST(NocSmoke, LatencyMonotoneInLoad)
{
    SimPointOptions opts;
    opts.warmupCycles = 2000;
    opts.measureCycles = 6000;
    opts.drainCycles = 12000;
    auto curve = sweepLoad(baselineConfig(), TrafficPattern::UniformRandom,
                           {0.005, 0.02, 0.04}, opts);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_LE(curve[0].avgLatencyNs, curve[1].avgLatencyNs * 1.05);
    EXPECT_LE(curve[1].avgLatencyNs, curve[2].avgLatencyNs * 1.05);
}

} // namespace
} // namespace hnoc
