# Empty dependencies file for test_noc_config_io.
# This may be replaced when dependencies are built.
