# Empty compiler generated dependencies file for hnoc_cli.
# This may be replaced when dependencies are built.
