/**
 * @file
 * Set-associative cache arrays with per-line coherence state and LRU
 * replacement. Used for both the private L1s and the shared L2 banks
 * of Table 2(a).
 */

#ifndef HNOC_SYS_CACHE_HH
#define HNOC_SYS_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hnoc
{

/** MESI line states (L1) / presence states (L2 data array). */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/**
 * A set-associative array of coherence-tracked lines.
 * Pure state container: controllers decide what to do on evictions.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     * @param block_bytes line size
     */
    CacheArray(std::uint64_t size_bytes, int ways, int block_bytes);

    /** @return line state (Invalid if absent). */
    CacheState lookup(Addr addr) const;

    /** Update the state of a resident line; touch LRU. */
    void setState(Addr addr, CacheState state);

    /**
     * Install @p addr with @p state, evicting the LRU way if needed.
     * @param victim_addr out: evicted block address (valid lines only)
     * @param victim_state out: its state
     * @return true if a valid line was evicted
     */
    bool insert(Addr addr, CacheState state, Addr &victim_addr,
                CacheState &victim_state);

    /** Drop the line (invalidate) if present. */
    void invalidate(Addr addr);

    /** Mark as most-recently used. */
    void touch(Addr addr);

    int blockBytes() const { return blockBytes_; }

    /** @return block-aligned address. */
    Addr
    blockAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(blockBytes_ - 1);
    }

    /** @name Statistics */
    ///@{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    ///@}

    /** Simulator-memory footprint of the line array (tag/state/LRU
     *  metadata — no data payloads are simulated). */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(sizeof(*this)) +
               lines_.capacity() * sizeof(Line);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        CacheState state = CacheState::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr addr) const;

    int ways_;
    int blockBytes_;
    std::size_t numSets_;
    std::vector<Line> lines_; ///< numSets * ways
    std::uint64_t useClock_ = 0;
};

} // namespace hnoc

#endif // HNOC_SYS_CACHE_HH
