/**
 * @file
 * NetworkObserver tests: event completeness and path agreement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "heteronoc/layout.hh"
#include "noc/network.hh"

namespace hnoc
{
namespace
{

class CollectingObserver : public NetworkObserver
{
  public:
    void
    onPacketCreated(const Packet &, Cycle) override
    {
        ++created;
    }

    void
    onFlitArrive(RouterId router, PortId, const Flit &flit,
                 Cycle) override
    {
        ++arrivals;
        if (flit.isHead())
            headPath.push_back(router);
    }

    void
    onFlitDepart(RouterId, PortId, const Flit &, Cycle) override
    {
        ++departs;
    }

    void
    onPacketDelivered(const Packet &, Cycle) override
    {
        ++delivered;
    }

    int created = 0;
    int delivered = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t departs = 0;
    std::vector<RouterId> headPath;
};

TEST(Observer, SeesFullPacketLifecycle)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    Network net(cfg);
    CollectingObserver obs;
    net.setObserver(&obs);

    net.enqueuePacket(0, 63, 6);
    net.run(300);

    EXPECT_EQ(obs.created, 1);
    EXPECT_EQ(obs.delivered, 1);
    // 15 routers on the X-Y path, 6 flits each.
    EXPECT_EQ(obs.arrivals, 15u * 6u);
    EXPECT_EQ(obs.departs, 15u * 6u);
    // The head's router sequence equals the routing path.
    EXPECT_EQ(obs.headPath,
              std::vector<RouterId>(net.routing().path(0, 63)));
}

TEST(Observer, ArrivalsEqualDepartsAfterDrain)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    Network net(cfg);
    CollectingObserver obs;
    net.setObserver(&obs);
    for (NodeId n = 0; n < 64; ++n)
        net.enqueuePacket(n, 63 - n, cfg.dataPacketFlits());
    net.run(4000);
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_EQ(obs.arrivals, obs.departs);
    EXPECT_EQ(obs.created, 64);
    EXPECT_EQ(obs.delivered, 64);
}

TEST(Observer, ClearingStopsEvents)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    Network net(cfg);
    CollectingObserver obs;
    net.setObserver(&obs);
    net.enqueuePacket(0, 1, 6);
    net.run(100);
    auto arrivals = obs.arrivals;
    net.setObserver(nullptr);
    net.enqueuePacket(0, 1, 6);
    net.run(100);
    EXPECT_EQ(obs.arrivals, arrivals);
}

} // namespace
} // namespace hnoc
