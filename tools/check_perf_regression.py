#!/usr/bin/env python3
"""Compare one benchmark between two google-benchmark JSON files.

Used by CI to guard the telemetry hooks: the HNOC_TELEMETRY=ON build
(hooks compiled in, nothing attached) must not regress the network
hot loop versus the OFF build by more than the threshold.

    check_perf_regression.py baseline.json candidate.json \
        --benchmark BM_NetworkStepBaseline --max-regression-pct 2.0

Exit status: 0 within threshold, 1 regression, 2 usage/data error.
"""

import argparse
import json
import sys


def best_time(path, name):
    """Smallest real_time of `name` in a --benchmark_out JSON file.

    The minimum across repetitions is the standard low-noise estimate
    for a CPU-bound loop: noise only ever adds time.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    times = [
        b["real_time"]
        for b in doc.get("benchmarks", [])
        if b.get("run_name", b.get("name")) == name
        and b.get("run_type", "iteration") != "aggregate"
    ]
    if not times:
        sys.exit(f"error: no '{name}' runs in {path}")
    return min(times)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="benchmark JSON of the reference build")
    ap.add_argument("candidate", help="benchmark JSON of the build under test")
    ap.add_argument("--benchmark", default="BM_NetworkStepBaseline")
    ap.add_argument("--max-regression-pct", type=float, default=2.0)
    args = ap.parse_args()

    base = best_time(args.baseline, args.benchmark)
    cand = best_time(args.candidate, args.benchmark)
    delta_pct = (cand - base) / base * 100.0
    print(
        f"{args.benchmark}: baseline {base:.1f} ns, "
        f"candidate {cand:.1f} ns, delta {delta_pct:+.2f}% "
        f"(limit +{args.max_regression_pct:.2f}%)"
    )
    if delta_pct > args.max_regression_pct:
        print("FAIL: hot-path regression over threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
