/**
 * @file
 * Command-line front end to the simulator — the tool a downstream user
 * reaches for first.
 *
 *   hnoc_cli --layout Diagonal+BL --pattern uniform --rate 0.03
 *   hnoc_cli --layout Baseline --sweep 0.01:0.07:0.01 --csv out.csv
 *   hnoc_cli --topology torus --layout Center+BL --pattern transpose
 *   hnoc_cli --cmp TPC-C --layout Diagonal+BL --mc diamond
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/report.hh"
#include "heteronoc/layout.hh"
#include "noc/config_io.hh"
#include "noc/sim_harness.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"
#include "telemetry/trace.hh"

using namespace hnoc;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "hnoc_cli — HeteroNoC simulator front end\n\n"
        "network-only mode (default):\n"
        "  --layout L     Baseline | Center+B | Row2_5+B | Diagonal+B |\n"
        "                 Center+BL | Row2_5+BL | Diagonal+BL\n"
        "  --pattern P    uniform | neighbor | transpose | bitcomp | "
        "selfsim\n"
        "  --rate R       injection rate, packets/node/cycle\n"
        "  --sweep A:B:S  sweep rates from A to B step S\n"
        "  --topology T   mesh | torus\n"
        "  --routing R    xy | yx\n"
        "  --radix N      mesh radix (default 8)\n"
        "  --seed S       RNG seed\n"
        "  --csv FILE     also write results as CSV\n"
        "  --json FILE    write a unified JSON run report (per-router\n"
        "                 telemetry registry included per point)\n"
        "  --trace FILE   write a Chrome-trace JSON of every flit\n"
        "                 (open in chrome://tracing or Perfetto;\n"
        "                 single --rate only)\n"
        "  --flitlog FILE write the compact JSONL flit event log\n"
        "                 (single --rate only)\n"
        "  --config FILE  load a saved network configuration\n"
        "  --dump-config FILE  save the effective configuration\n"
        "  --adaptive[=T] adaptive windows (docs/EXPERIMENTS.md):\n"
        "                 detect warmup, stop measuring once the\n"
        "                 relative CI of mean latency is <= T\n"
        "                 (default 0.02), fast-abort saturated points;\n"
        "                 the fixed windows become ceilings\n"
        "  --sim-options FILE  load sim/window options saved with\n"
        "                 --dump-sim-options (overrides --adaptive)\n"
        "  --dump-sim-options FILE  save the effective sim options\n\n"
        "diagnostics:\n"
        "  --postmortem FILE  arm a forward-progress watchdog with a\n"
        "                 flight recorder; on a stall, dump an\n"
        "                 hnoc-postmortem-v1 JSON to FILE (inspect it\n"
        "                 with `hnoc_inspect postmortem FILE`)\n"
        "  --progress[=N] print a live progress line to stderr every N\n"
        "                 cycles (default 10000): cycle, delivered,\n"
        "                 in-flight, flits/sec, ETA\n"
        "  --audit[=N]    run the credit/buffer-conservation audit\n"
        "                 every N cycles (default 1000); abort with a\n"
        "                 diagnostic on the first violation\n"
        "  --watchdog=N   trip the forward-progress watchdog after N\n"
        "                 cycles without a delivery (default 50000\n"
        "                 when --postmortem is given)\n"
        "  --profile      attribute simulator wall clock per step phase\n"
        "                 and print per-component memory footprints;\n"
        "                 adds a `profile` section to the --json report\n"
        "                 (no-op in HNOC_TELEMETRY=OFF builds)\n"
        "  --blame        per-packet stall-cause blame attribution:\n"
        "                 print blame heat maps plus a percentile\n"
        "                 ladder decomposed by cause, and add a\n"
        "                 `latency_blame` section to the --json report\n"
        "                 (inspect with `hnoc_inspect blame FILE`;\n"
        "                 no-op in HNOC_TELEMETRY=OFF builds)\n\n"
        "full-system mode:\n"
        "  --cmp W        run workload W on the 64-tile CMP\n"
        "                 (SAP SPECjbb TPC-C SJAS frrt fsim vips canl\n"
        "                  ddup sclst libquantum)\n"
        "  --mc M         corners | diamond | diagonal\n");
    std::exit(code);
}

LayoutKind
parseLayout(const std::string &s)
{
    for (LayoutKind k : allLayouts())
        if (layoutName(k) == s)
            return k;
    fatal("unknown layout '%s' (try --help)", s.c_str());
}

TrafficPattern
parsePattern(const std::string &s)
{
    if (s == "uniform")
        return TrafficPattern::UniformRandom;
    if (s == "neighbor")
        return TrafficPattern::NearestNeighbor;
    if (s == "transpose")
        return TrafficPattern::Transpose;
    if (s == "bitcomp")
        return TrafficPattern::BitComplement;
    if (s == "selfsim")
        return TrafficPattern::SelfSimilar;
    fatal("unknown pattern '%s' (try --help)", s.c_str());
}

McPlacement
parseMc(const std::string &s)
{
    if (s == "corners")
        return McPlacement::Corners;
    if (s == "diamond")
        return McPlacement::Diamond;
    if (s == "diagonal")
        return McPlacement::Diagonal;
    fatal("unknown MC placement '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    LayoutKind layout = LayoutKind::Baseline;
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    std::vector<double> rates = {0.03};
    bool torus = false;
    bool yx = false;
    int radix = 8;
    std::uint64_t seed = 1;
    std::string csv_path;
    std::string json_path;
    std::string trace_path;
    std::string flitlog_path;
    std::string cmp_workload;
    std::string config_path;
    std::string dump_config_path;
    std::string sim_options_path;
    std::string dump_sim_options_path;
    std::string postmortem_path;
    bool adaptive = false;
    double ci_target = 0.02;
    Cycle progress_every = 0;
    Cycle audit_every = 0;
    Cycle watchdog_window = 0;
    bool profile = false;
    bool blame = false;
    McPlacement mc = McPlacement::Corners;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--layout")
            layout = parseLayout(next());
        else if (arg == "--pattern")
            pattern = parsePattern(next());
        else if (arg == "--rate")
            rates = {std::atof(next().c_str())};
        else if (arg == "--sweep") {
            double a;
            double b;
            double s;
            if (std::sscanf(next().c_str(), "%lf:%lf:%lf", &a, &b, &s) !=
                    3 || s <= 0.0)
                fatal("--sweep wants A:B:S");
            rates.clear();
            for (double r = a; r <= b + 1e-12; r += s)
                rates.push_back(r);
        } else if (arg == "--topology")
            torus = next() == "torus";
        else if (arg == "--routing")
            yx = next() == "yx";
        else if (arg == "--radix")
            radix = std::atoi(next().c_str());
        else if (arg == "--seed")
            seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--csv")
            csv_path = next();
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--trace")
            trace_path = next();
        else if (arg == "--flitlog")
            flitlog_path = next();
        else if (arg == "--config")
            config_path = next();
        else if (arg == "--dump-config")
            dump_config_path = next();
        else if (arg == "--adaptive")
            adaptive = true;
        else if (arg.rfind("--adaptive=", 0) == 0) {
            adaptive = true;
            ci_target = std::atof(arg.c_str() + 11);
            if (ci_target <= 0.0)
                fatal("--adaptive=T wants a positive CI target");
        } else if (arg == "--sim-options")
            sim_options_path = next();
        else if (arg == "--dump-sim-options")
            dump_sim_options_path = next();
        else if (arg == "--cmp")
            cmp_workload = next();
        else if (arg == "--mc")
            mc = parseMc(next());
        else if (arg == "--postmortem")
            postmortem_path = next();
        else if (arg == "--progress")
            progress_every = 10000;
        else if (arg.rfind("--progress=", 0) == 0)
            progress_every = std::strtoull(arg.c_str() + 11, nullptr, 10);
        else if (arg == "--audit")
            audit_every = 1000;
        else if (arg.rfind("--audit=", 0) == 0)
            audit_every = std::strtoull(arg.c_str() + 8, nullptr, 10);
        else if (arg.rfind("--watchdog=", 0) == 0)
            watchdog_window = std::strtoull(arg.c_str() + 11, nullptr, 10);
        else if (arg == "--profile")
            profile = true;
        else if (arg == "--blame")
            blame = true;
        else
            usage(1);
    }

    NetworkConfig cfg = makeLayoutConfig(layout, radix);
    if (torus)
        cfg.topology = TopologyType::Torus;
    if (yx)
        cfg.routing = RoutingMode::YX;
    if (!config_path.empty())
        cfg = loadConfig(config_path); // file overrides the flags
    if (!dump_config_path.empty() &&
        !saveConfig(cfg, dump_config_path))
        fatal("cannot write %s", dump_config_path.c_str());

    if (!cmp_workload.empty()) {
        CmpConfig cmp;
        cmp.mcPlacement = mc;
        cmp.seed = seed;
        CmpSystem sys(cfg, cmp);
        sys.assignWorkloadAll(workloadByName(cmp_workload));
        sys.warmCaches(40000);
        sys.run(3000);
        sys.resetStats();
        sys.run(15000);
        Table t({"metric", "value"});
        t.row({"workload", cmp_workload});
        t.row({"layout", cfg.name});
        t.row({"MC placement", mcPlacementName(mc)});
        t.row({"avg IPC", Table::num(sys.avgIpc(), 3)});
        t.row({"net latency (ns)",
               Table::num(sys.netLatency().totalNs.mean(), 1)});
        t.row({"round trip (core cyc)",
               Table::num(sys.roundTripCoreCycles().mean(), 0)});
        t.row({"network power (W)",
               Table::num(sys.networkPower().total(), 1)});
        std::fputs(t.text().c_str(), stdout);
        if (!csv_path.empty())
            t.writeCsv(csv_path);
        return 0;
    }

    bool tracing = !trace_path.empty() || !flitlog_path.empty();
    if (tracing && rates.size() != 1)
        fatal("--trace/--flitlog need a single --rate, not a sweep");

    SimPointOptions opts;
    if (adaptive) {
        opts.control.mode = SimControlMode::Adaptive;
        opts.control.ciTarget = ci_target;
    }
    if (!sim_options_path.empty()) {
        std::ifstream in(sim_options_path);
        if (!in)
            fatal("cannot open %s", sim_options_path.c_str());
        std::stringstream buf;
        buf << in.rdbuf();
        opts = simOptionsFromString(buf.str()); // overrides the flags
    }
    if (!dump_sim_options_path.empty()) {
        std::ofstream out(dump_sim_options_path);
        if (!out)
            fatal("cannot write %s", dump_sim_options_path.c_str());
        out << simOptionsToString(opts);
    }
    opts.seed = seed;
    opts.collectMetrics = !json_path.empty();
    opts.progressEvery = progress_every;
    opts.auditEvery = audit_every;
    opts.watchdogWindow = watchdog_window;
    opts.profile = profile;
    opts.collectBlame = blame;
    if (!postmortem_path.empty()) {
        opts.postmortemPath = postmortem_path;
        opts.flightRecorder = true;
        if (opts.watchdogWindow == 0)
            opts.watchdogWindow = 50000;
    }
    TraceObserver tracer;
    if (tracing)
        opts.observer = &tracer;

    std::vector<std::string> labels;
    std::vector<SimPointResult> results;
    Table t({"rate", "accepted", "latency(ns)", "queue(ns)",
             "block(ns)", "transfer(ns)", "power(W)", "combine",
             "saturated", "cycles", "stop"});
    for (double r : rates) {
        opts.injectionRate = r;
        SimPointResult res = runOpenLoop(cfg, pattern, opts);
        t.row({Table::num(r, 4), Table::num(res.acceptedRate, 4),
               Table::num(res.avgLatencyNs, 1),
               Table::num(res.avgQueuingNs, 1),
               Table::num(res.avgBlockingNs, 1),
               Table::num(res.avgTransferNs, 1),
               Table::num(res.networkPowerW, 1),
               Table::num(res.combineRate, 2),
               res.saturated ? "yes" : "no",
               std::to_string(res.simulatedCycles),
               stopReasonName(res.stopReason)});
        labels.push_back(cfg.name + "@" + Table::num(r, 4));
        if (res.watchdogTrips > 0)
            std::fprintf(stderr,
                         "rate %.4f: watchdog tripped %llu time(s)%s%s\n",
                         r,
                         static_cast<unsigned long long>(
                             res.watchdogTrips),
                         postmortem_path.empty() ? "" : ", postmortem: ",
                         postmortem_path.c_str());
        results.push_back(std::move(res));
    }
    std::printf("%s (%s, %s)\n", cfg.name.c_str(),
                trafficPatternName(pattern).c_str(),
                torus ? "torus" : "mesh");
    std::fputs(t.text().c_str(), stdout);
    if (!csv_path.empty())
        t.writeCsv(csv_path);
    if (profile) {
        if (auto prof = mergeProfiles(results)) {
            std::printf("\nself-profile (all points merged)\n%s",
                        prof->table().c_str());
            if (auto mem = maxMemoryAudit(results))
                std::printf("\n%s", mem->table().c_str());
        } else {
            std::fprintf(stderr,
                         "--profile: built with HNOC_TELEMETRY=OFF, "
                         "no profile collected\n");
        }
    }
    if (blame) {
        if (auto b = mergeBlame(results)) {
            std::printf("\nlatency blame (all points merged)\n%s",
                        b->table().c_str());
        } else {
            std::fprintf(stderr,
                         "--blame: built with HNOC_TELEMETRY=OFF, "
                         "no blame collected\n");
        }
    }
    if (!json_path.empty() &&
        writeRunReport(json_path, "hnoc_cli run", labels, results))
        std::printf("run report: %s\n", json_path.c_str());
    if (!trace_path.empty() && tracer.writeChromeTrace(trace_path))
        std::printf("chrome trace: %s (%llu events, %zu packets)\n",
                    trace_path.c_str(),
                    static_cast<unsigned long long>(tracer.eventCount()),
                    tracer.packets().size());
    if (!flitlog_path.empty() && tracer.writeFlitLog(flitlog_path))
        std::printf("flit log: %s\n", flitlog_path.c_str());
    return 0;
}
