# Empty compiler generated dependencies file for asymmetric_cmp.
# This may be replaced when dependencies are built.
