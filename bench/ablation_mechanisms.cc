/**
 * @file
 * Ablation study (beyond the paper): isolates which HeteroNoC
 * mechanisms help and which constraint binds.
 *
 *   Baseline            homogeneous 3VC/192b reference
 *   Diagonal+BL         the paper's design (faithful: 128/256b links)
 *   +BL no-pairing      intra-packet wide-link pairing disabled
 *   +BL wide-links      all links 256 b (relaxes the §2 bisection
 *                       budget by 33%): shows the big-router VC and
 *                       combining mechanisms win once the narrow-link
 *                       capacity constraint is lifted
 *   +B 6VC-center       buffer-only redistribution for contrast
 *
 * This experiment documents the root cause of the main reproduction
 * deviation (see EXPERIMENTS.md): under the stated resource budget the
 * narrow 128 b rows cap packet throughput below the baseline's, so the
 * paper's synthetic latency/throughput wins are not conservation-
 * consistent; with the budget relaxed the claimed shapes appear.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main()
{
    printHeader("Ablation", "which HeteroNoC mechanism does what");

    std::vector<std::pair<std::string, NetworkConfig>> configs;
    configs.emplace_back("Baseline",
                         makeLayoutConfig(LayoutKind::Baseline));
    configs.emplace_back("Diagonal+BL",
                         makeLayoutConfig(LayoutKind::DiagonalBL));
    {
        NetworkConfig c = makeLayoutConfig(LayoutKind::DiagonalBL);
        c.intraPacketPairing = false;
        configs.emplace_back("+BL no-pairing", c);
    }
    {
        NetworkConfig c = makeLayoutConfig(LayoutKind::DiagonalBL);
        c.linkWidthMode = LinkWidthMode::Uniform;
        c.uniformLinkBits = 256; // +33 % bisection wiring vs baseline
        configs.emplace_back("+BL wide-links", c);
    }
    configs.emplace_back("Diagonal+B",
                         makeLayoutConfig(LayoutKind::DiagonalB));

    const std::vector<double> rates = {0.01, 0.02, 0.03, 0.04, 0.05,
                                       0.06, 0.07, 0.08};
    SimPointOptions opts;
    opts.warmupCycles = 6000;
    opts.measureCycles = 15000;
    opts.drainCycles = 30000;

    std::printf("\nLatency (ns) across UR load (* = saturated):\n");
    std::printf("%-16s", "inj rate");
    for (double r : rates)
        std::printf("%8.3f", r);
    std::printf("%10s%10s\n", "sat pkt", "P@0.03 W");

    double base_sat = 0.0;
    for (auto &[name, cfg] : configs) {
        auto curve =
            sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts);
        double sat = saturationThroughput(curve);
        if (name == "Baseline")
            base_sat = sat;
        std::printf("%-16s", name.c_str());
        for (const auto &p : curve)
            std::printf("%7.1f%s", std::min(p.avgLatencyNs, 9999.0),
                        p.saturated ? "*" : " ");
        std::printf("%9.4f%10.1f\n", sat, curve[2].networkPowerW);
    }
    std::printf("\nbaseline saturation: %.4f pkt/node/cycle\n", base_sat);
    std::printf("Interpretation: '+BL wide-links' (relaxed link budget) "
                "restores the paper's\nhetero-wins shape; the faithful "
                "Diagonal+BL is capped by its narrow rows.\n");
    return 0;
}
