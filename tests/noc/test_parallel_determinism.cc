/**
 * @file
 * Parallel experiment engine determinism: sweepLoad / runBatch /
 * runMultiSeed must produce bit-identical SimPointResults to the
 * serial reference path regardless of thread count (1, 4, and an
 * HNOC_THREADS=1 env-sized pool).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/job_pool.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

SimPointOptions
quickOptions()
{
    SimPointOptions opts;
    opts.warmupCycles = 800;
    opts.measureCycles = 2000;
    opts.drainCycles = 4000;
    opts.seed = 17;
    return opts;
}

const std::vector<double> kRates = {0.01, 0.03, 0.05};

void
expectBitIdentical(const SimPointResult &a, const SimPointResult &b)
{
    EXPECT_EQ(a.offeredRate, b.offeredRate);
    EXPECT_EQ(a.acceptedRate, b.acceptedRate);
    EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
    EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs);
    EXPECT_EQ(a.avgQueuingNs, b.avgQueuingNs);
    EXPECT_EQ(a.avgBlockingNs, b.avgBlockingNs);
    EXPECT_EQ(a.avgTransferNs, b.avgTransferNs);
    EXPECT_EQ(a.p95LatencyNs, b.p95LatencyNs);
    EXPECT_EQ(a.networkPowerW, b.networkPowerW);
    EXPECT_EQ(a.power.buffers, b.power.buffers);
    EXPECT_EQ(a.power.crossbar, b.power.crossbar);
    EXPECT_EQ(a.power.arbiters, b.power.arbiters);
    EXPECT_EQ(a.power.links, b.power.links);
    EXPECT_EQ(a.combineRate, b.combineRate);
    EXPECT_EQ(a.saturated, b.saturated);
    EXPECT_EQ(a.bufferUtilPct, b.bufferUtilPct);
    EXPECT_EQ(a.linkUtilPct, b.linkUtilPct);
    EXPECT_EQ(a.trackedDelivered, b.trackedDelivered);
    EXPECT_EQ(a.trackedCreated, b.trackedCreated);
    EXPECT_EQ(a.latencyByHopsNs, b.latencyByHopsNs);
    EXPECT_EQ(a.drainTruncated, b.drainTruncated);
    EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);
    EXPECT_EQ(a.warmupCyclesUsed, b.warmupCyclesUsed);
    EXPECT_EQ(a.measureCyclesUsed, b.measureCyclesUsed);
    EXPECT_EQ(a.stopReason, b.stopReason);
    EXPECT_EQ(a.ciRelHalfWidth, b.ciRelHalfWidth);
    EXPECT_EQ(a.ciHistory, b.ciHistory);
}

void
expectBitIdentical(const std::vector<SimPointResult> &a,
                   const std::vector<SimPointResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectBitIdentical(a[i], b[i]);
    }
}

TEST(ParallelDeterminism, SweepLoadMatchesSerialAcrossThreadCounts)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    SimPointOptions opts = quickOptions();

    auto serial = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                                  kRates, opts);

    JobPool pool1(1);
    JobPool pool4(4);
    auto par1 = sweepLoad(cfg, TrafficPattern::UniformRandom, kRates,
                          opts, &pool1);
    auto par4 = sweepLoad(cfg, TrafficPattern::UniformRandom, kRates,
                          opts, &pool4);

    expectBitIdentical(par1, serial);
    expectBitIdentical(par4, serial);
}

TEST(ParallelDeterminism, EnvSizedSingleThreadPoolMatchesSerial)
{
    ::setenv("HNOC_THREADS", "1", 1);
    JobPool env_pool; // what a user gets with HNOC_THREADS=1
    ::unsetenv("HNOC_THREADS");
    ASSERT_EQ(env_pool.threadCount(), 1);

    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    SimPointOptions opts = quickOptions();
    auto serial = sweepLoadSerial(cfg, TrafficPattern::Transpose,
                                  kRates, opts);
    auto par = sweepLoad(cfg, TrafficPattern::Transpose, kRates, opts,
                         &env_pool);
    expectBitIdentical(par, serial);
}

TEST(ParallelDeterminism, ParallelRunIsRepeatable)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    SimPointOptions opts = quickOptions();
    JobPool pool(3);
    auto first = sweepLoad(cfg, TrafficPattern::UniformRandom, kRates,
                           opts, &pool);
    auto second = sweepLoad(cfg, TrafficPattern::UniformRandom, kRates,
                            opts, &pool);
    expectBitIdentical(first, second);
}

TEST(ParallelDeterminism, BlockSizesMatchSerialAcrossThreadCounts)
{
    // Cache-blocked stepping (§6g) composes with the parallel engine:
    // single-tile blocks, the auto default, and one whole-chip block
    // must all reproduce the serial default-blocking reference at
    // every thread count.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    SimPointOptions opts = quickOptions();

    auto serial = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                                  kRates, opts);

    for (int block_tiles : {1, 1 << 20}) {
        NetworkConfig blocked = cfg;
        blocked.blockTiles = block_tiles;
        SCOPED_TRACE("block_tiles " + std::to_string(block_tiles));
        expectBitIdentical(
            sweepLoadSerial(blocked, TrafficPattern::UniformRandom,
                            kRates, opts),
            serial);
        for (int threads : {1, 3, 4}) {
            SCOPED_TRACE(std::to_string(threads) + " threads");
            JobPool pool(threads);
            expectBitIdentical(
                sweepLoad(blocked, TrafficPattern::UniformRandom,
                          kRates, opts, &pool),
                serial);
        }
    }
}

TEST(ParallelDeterminism, AdaptiveSweepMatchesSerialAcrossThreadCounts)
{
    // The adaptive stopping rules decide from simulated data only, so
    // the early-termination points must stay bit-identical no matter
    // how the sweep is scheduled (includes a saturating point, which
    // exercises the fast-abort path under the pool).
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    SimPointOptions opts = quickOptions();
    opts.warmupCycles = 4000;
    opts.measureCycles = 12000;
    opts.drainCycles = 20000;
    opts.control.mode = SimControlMode::Adaptive;
    const std::vector<double> rates = {0.01, 0.04, 0.2};

    auto serial = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                                  rates, opts);
    JobPool pool1(1);
    JobPool pool3(3);
    JobPool pool4(4);
    expectBitIdentical(
        sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts,
                  &pool1),
        serial);
    expectBitIdentical(
        sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts,
                  &pool3),
        serial);
    expectBitIdentical(
        sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts,
                  &pool4),
        serial);
}

TEST(ParallelDeterminism, HeterogeneousBatchMatchesSerialLoop)
{
    SimPointOptions opts = quickOptions();
    std::vector<BatchPoint> points;
    for (LayoutKind kind :
         {LayoutKind::Baseline, LayoutKind::DiagonalBL}) {
        for (TrafficPattern p :
             {TrafficPattern::UniformRandom, TrafficPattern::Transpose}) {
            BatchPoint bp;
            bp.config = makeLayoutConfig(kind);
            bp.pattern = p;
            bp.opts = opts;
            bp.opts.seed = derivePointSeed(opts.seed, points.size());
            points.push_back(std::move(bp));
        }
    }

    std::vector<SimPointResult> serial;
    for (const BatchPoint &bp : points)
        serial.push_back(runOpenLoop(bp.config, bp.pattern, bp.opts));

    JobPool pool4(4);
    expectBitIdentical(runBatch(points, &pool4), serial);
    JobPool pool1(1);
    expectBitIdentical(runBatch(points, &pool1), serial);
}

TEST(ParallelDeterminism, MultiSeedMatchesSerialDerivation)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    SimPointOptions opts = quickOptions();
    const int num_seeds = 4;

    std::vector<SimPointResult> serial;
    for (int i = 0; i < num_seeds; ++i) {
        SimPointOptions o = opts;
        o.seed = derivePointSeed(opts.seed,
                                 static_cast<std::uint64_t>(i));
        serial.push_back(
            runOpenLoop(cfg, TrafficPattern::UniformRandom, o));
    }

    JobPool pool4(4);
    auto par = runMultiSeed(cfg, TrafficPattern::UniformRandom, opts,
                            num_seeds, &pool4);
    expectBitIdentical(par, serial);

    // Replicas use genuinely different seeds: latencies differ.
    EXPECT_NE(par[0].avgLatencyNs, par[1].avgLatencyNs);
}

TEST(ParallelDeterminism, MultiPatternMatchesSerialLoop)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    SimPointOptions opts = quickOptions();
    const std::vector<TrafficPattern> patterns = {
        TrafficPattern::UniformRandom, TrafficPattern::Transpose,
        TrafficPattern::BitComplement};

    std::vector<SimPointResult> serial;
    for (TrafficPattern p : patterns)
        serial.push_back(runOpenLoop(cfg, p, opts));

    JobPool pool2(2);
    expectBitIdentical(runMultiPattern(cfg, patterns, opts, &pool2),
                       serial);
}

TEST(ParallelDeterminism, SeedDerivationIsStableAndDecorrelated)
{
    // Pinned values: the derivation is part of the reproducibility
    // contract (serial and parallel paths must agree forever).
    EXPECT_EQ(derivePointSeed(1, 0), derivePointSeed(1, 0));
    EXPECT_NE(derivePointSeed(1, 0), derivePointSeed(1, 1));
    EXPECT_NE(derivePointSeed(1, 0), derivePointSeed(2, 0));
}

} // namespace
} // namespace hnoc
