# Empty compiler generated dependencies file for fig02_other_topologies.
# This may be replaced when dependencies are built.
