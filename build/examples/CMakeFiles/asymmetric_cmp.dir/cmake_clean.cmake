file(REMOVE_RECURSE
  "CMakeFiles/asymmetric_cmp.dir/asymmetric_cmp.cpp.o"
  "CMakeFiles/asymmetric_cmp.dir/asymmetric_cmp.cpp.o.d"
  "asymmetric_cmp"
  "asymmetric_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymmetric_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
