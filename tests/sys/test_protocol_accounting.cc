/**
 * @file
 * Protocol/message accounting tests: data-vs-control sizing, MC
 * bandwidth modelling, IPC metric bookkeeping, and clock-ratio
 * conversions across network configurations.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/protocol.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(Protocol, DataCarryingTypes)
{
    EXPECT_TRUE(carriesData(MsgType::DataS));
    EXPECT_TRUE(carriesData(MsgType::DataE));
    EXPECT_TRUE(carriesData(MsgType::DataM));
    EXPECT_TRUE(carriesData(MsgType::PutM));
    EXPECT_TRUE(carriesData(MsgType::OwnerWb));
    EXPECT_TRUE(carriesData(MsgType::MemData));
    EXPECT_TRUE(carriesData(MsgType::MemWrite));

    EXPECT_FALSE(carriesData(MsgType::GetS));
    EXPECT_FALSE(carriesData(MsgType::GetX));
    EXPECT_FALSE(carriesData(MsgType::Inv));
    EXPECT_FALSE(carriesData(MsgType::InvAck));
    EXPECT_FALSE(carriesData(MsgType::FwdGetS));
    EXPECT_FALSE(carriesData(MsgType::FwdGetX));
    EXPECT_FALSE(carriesData(MsgType::WbAck));
    EXPECT_FALSE(carriesData(MsgType::UpgradeAck));
    EXPECT_FALSE(carriesData(MsgType::MemRead));
}

TEST(Protocol, PacketSizesFollowNetworkFlitWidth)
{
    // A read-only private workload generates GetS (1 flit) and DataS/E
    // (6 or 8 flits); measure via the network's flit counters.
    auto flits_per_packet = [](LayoutKind kind) {
        CmpSystem sys(makeLayoutConfig(kind), CmpConfig{});
        WorkloadProfile p;
        p.name = "ro";
        p.memRatio = 0.4;
        p.readFrac = 1.0;
        p.hotFrac = 0.0;
        p.privateBlocks = 4096;
        p.sharedFrac = 0.0;
        p.streamProb = 0.0;
        sys.assignWorkloadAll(p);
        sys.run(4000);
        return static_cast<double>(sys.network().flitsDelivered()) /
               static_cast<double>(sys.network().packetsDelivered());
    };
    double base = flits_per_packet(LayoutKind::Baseline);
    double het = flits_per_packet(LayoutKind::DiagonalBL);
    // Mix of 1-flit requests and 6/8-flit responses: averages near
    // (1+6)/2 and (1+8)/2 with some writebacks.
    EXPECT_GT(base, 2.5);
    EXPECT_LT(base, 4.5);
    EXPECT_GT(het, base + 0.5) << "hetero data packets are longer";
}

TEST(Protocol, McServiceBandwidthThrottles)
{
    // Halving MC bandwidth must increase memory round trips for a
    // DRAM-bound workload.
    WorkloadProfile p;
    p.name = "dram-bound";
    p.memRatio = 0.4;
    p.readFrac = 0.9;
    p.hotFrac = 0.0;
    p.privateBlocks = 60000; // far beyond L2
    p.sharedFrac = 0.0;
    p.streamProb = 0.0;

    auto round_trip = [&](int interval) {
        CmpConfig cfg;
        cfg.mcServiceInterval = interval;
        CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), cfg);
        sys.assignWorkloadAll(p);
        sys.run(2000);
        sys.resetStats();
        sys.run(8000);
        return sys.roundTripCoreCycles().mean();
    };
    EXPECT_GT(round_trip(16), round_trip(2) * 1.1);
}

TEST(Metrics, IpcWindowBookkeeping)
{
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(workloadByName("vips"));
    sys.warmCaches(20000);
    sys.run(1000);
    sys.resetStats();
    EXPECT_DOUBLE_EQ(sys.ipc(0), 0.0); // no cycles elapsed yet
    sys.run(4000);
    double ipc1 = sys.ipc(0);
    EXPECT_GT(ipc1, 0.0);
    // Reset again: the metric must restart from zero retirement.
    sys.resetStats();
    sys.run(4000);
    double ipc2 = sys.ipc(0);
    EXPECT_NEAR(ipc1, ipc2, 0.5 * ipc1 + 0.1);
}

TEST(Metrics, ClockRatioAffectsCoreCycleConversion)
{
    // The same workload on the 2.07 GHz hetero network must report
    // round trips in *core* cycles, so a pure-DRAM latency (400 core
    // cycles) is comparable across networks.
    CmpConfig cfg;
    CmpSystem base(makeLayoutConfig(LayoutKind::Baseline), cfg);
    CmpSystem het(makeLayoutConfig(LayoutKind::DiagonalBL), cfg);
    EXPECT_NEAR(base.network().clockGHz(), 2.20, 1e-9);
    EXPECT_NEAR(het.network().clockGHz(), 2.07, 1e-9);
    // Conversion sanity: 400 core cycles at 2.2 GHz ~= 182 ns in both.
}

} // namespace
} // namespace hnoc
