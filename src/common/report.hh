/**
 * @file
 * Result-table builder: aligned text for the terminal plus CSV export,
 * so experiment outputs can be piped straight into plotting scripts.
 */

#ifndef HNOC_COMMON_REPORT_HH
#define HNOC_COMMON_REPORT_HH

#include <string>
#include <vector>

namespace hnoc
{

/**
 * A simple column-oriented results table.
 *
 * Usage:
 *   Table t({"layout", "latency(ns)", "power(W)"});
 *   t.row({"Baseline", Table::num(14.4), Table::num(23.9)});
 *   std::fputs(t.text().c_str(), stdout);
 *   t.writeCsv("fig07.csv");
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void row(std::vector<std::string> cells);

    /** Format a double with @p decimals places. */
    static std::string num(double v, int decimals = 2);

    /** @return the table rendered as aligned text. */
    std::string text() const;

    /** @return the table rendered as CSV. */
    std::string csv() const;

    /**
     * Write the CSV form to @p path (or, when the HNOC_CSV_DIR
     * environment variable is set, into that directory under the same
     * file name). @return true on success.
     */
    bool writeCsv(const std::string &path) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render a row-major 2-D grid (e.g. per-router utilization from a
 * MetricRegistry) as CSV: one line per grid row, no header. The
 * counterpart of formatHeatMap for machine consumption.
 */
std::string heatMapCsv(const std::vector<double> &values, int cols,
                       int decimals = 3);

/**
 * Write heatMapCsv output to @p path (honors HNOC_CSV_DIR like
 * Table::writeCsv). @return true on success.
 */
bool writeHeatMapCsv(const std::string &path,
                     const std::vector<double> &values, int cols,
                     int decimals = 3);

} // namespace hnoc

#endif // HNOC_COMMON_REPORT_HH
