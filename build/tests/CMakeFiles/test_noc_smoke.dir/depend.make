# Empty dependencies file for test_noc_smoke.
# This may be replaced when dependencies are built.
