# Empty dependencies file for fig09_nn_traffic.
# This may be replaced when dependencies are built.
