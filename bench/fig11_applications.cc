/**
 * @file
 * Figure 11: application results — per-workload network latency
 * reduction (a), latency breakdown (b), power reduction (c) and power
 * breakdown (d) for the HeteroNoC layouts vs the homogeneous baseline
 * on the full 64-tile CMP.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main()
{
    printHeader("Figure 11",
                "application latency/power vs baseline (64-tile CMP)");

    const std::vector<LayoutKind> kinds = heteroLayouts();
    CmpConfig cmp;

    // Breakdown workloads shown in the paper's Fig 11(b)/(d).
    const std::vector<std::string> breakdown_set = {
        "SAP", "SPECjbb", "frrt", "vips", "ddup", "sclst"};

    std::printf("\n(a,c) Reductions vs baseline (positive = better):\n");
    std::printf("%-12s", "workload");
    for (LayoutKind k : kinds)
        std::printf(" %11s", layoutName(k).c_str());
    std::printf("   (latency %% | power %%)\n");

    struct Cell
    {
        CmpRunResult res;
    };
    std::vector<RunningStat> lat_red(kinds.size());
    std::vector<RunningStat> pow_red(kinds.size());

    for (const WorkloadProfile &w : allWorkloads()) {
        if (w.name == "libquantum")
            continue;
        CmpRunResult base = runCmpExperiment(
            makeLayoutConfig(LayoutKind::Baseline), cmp, w);
        std::printf("%-12s", w.name.c_str());
        std::vector<CmpRunResult> results;
        for (std::size_t i = 0; i < kinds.size(); ++i) {
            CmpRunResult r =
                runCmpExperiment(makeLayoutConfig(kinds[i]), cmp, w);
            results.push_back(r);
            double lr = pctReduction(base.avgLatencyNs, r.avgLatencyNs);
            double pr = pctReduction(base.powerW, r.powerW);
            lat_red[i].add(lr);
            pow_red[i].add(pr);
            std::printf(" %5.1f|%5.1f", lr, pr);
        }
        std::printf("\n");

        bool breakdown =
            std::find(breakdown_set.begin(), breakdown_set.end(),
                      w.name) != breakdown_set.end();
        if (breakdown) {
            auto print_bd = [&](const char *name,
                                const CmpRunResult &r) {
                std::printf("    %-12s lat: blk %5.1f q %5.1f xfer %5.1f"
                            "  | pow: lnk %5.1f xbar %5.1f arb %5.1f "
                            "buf %5.1f (%% of baseline)\n",
                            name, 100.0 * r.blockingNs / base.avgLatencyNs,
                            100.0 * r.queuingNs / base.avgLatencyNs,
                            100.0 * r.transferNs / base.avgLatencyNs,
                            100.0 * r.power.links / base.powerW,
                            100.0 * r.power.crossbar / base.powerW,
                            100.0 * r.power.arbiters / base.powerW,
                            100.0 * r.power.buffers / base.powerW);
            };
            print_bd("Baseline", base);
            for (std::size_t i = 0; i < kinds.size(); ++i) {
                if (kinds[i] == LayoutKind::CenterB ||
                    kinds[i] == LayoutKind::DiagonalB ||
                    isBufferLinkLayout(kinds[i]))
                    print_bd(layoutName(kinds[i]).c_str(), results[i]);
            }
        }
    }

    std::printf("\nAverages across workloads:\n");
    std::printf("%-12s %14s %14s\n", "layout", "lat red. %",
                "power red. %");
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        std::printf("%-12s %14.1f %14.1f\n",
                    layoutName(kinds[i]).c_str(), lat_red[i].mean(),
                    pow_red[i].mean());
    }
    std::printf("(paper: Diagonal+BL 18.5%% latency, 22%% power)\n");
    return 0;
}
