file(REMOVE_RECURSE
  "CMakeFiles/test_sys_warmup.dir/sys/test_warmup.cc.o"
  "CMakeFiles/test_sys_warmup.dir/sys/test_warmup.cc.o.d"
  "test_sys_warmup"
  "test_sys_warmup.pdb"
  "test_sys_warmup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
