# Empty dependencies file for test_integration_cross.
# This may be replaced when dependencies are built.
