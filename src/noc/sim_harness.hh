/**
 * @file
 * Open-loop simulation harness: warm up, measure over a fixed window,
 * drain; reports latency (with the paper's queuing/blocking/transfer
 * breakdown), accepted throughput, power, utilization maps and the
 * flit-combining rate. Drives every network-only experiment
 * (Figs 1, 2, 7, 8, 9 and the network side of Fig 10).
 *
 * Sim points are independent and deterministic (each constructs its own
 * Network, TrafficGenerator and Rng from its seed), so the batch layer
 * below fans them out across a JobPool; results are collected in input
 * order and are bit-identical to the serial loop.
 */

#ifndef HNOC_NOC_SIM_HARNESS_HH
#define HNOC_NOC_SIM_HARNESS_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/job_pool.hh"
#include "noc/network.hh"
#include "noc/sim_control.hh"
#include "noc/traffic.hh"
#include "power/router_power.hh"

namespace hnoc
{

/** Knobs for one open-loop simulation point. */
struct SimPointOptions
{
    double injectionRate = 0.01; ///< packets/node/cycle offered
    Cycle warmupCycles = 10000;
    Cycle measureCycles = 30000;
    Cycle drainCycles = 60000; ///< post-measurement drain cap
    std::uint64_t seed = 1;
    /** Fraction of packets that are single-flit control packets;
     *  the rest are full data packets (1024 b). */
    double controlFraction = 0.0;

    /** Window policy. Reference keeps the fixed windows above; in
     *  Adaptive mode they become ceilings and the stopping rules of
     *  src/noc/sim_control.hh decide when each phase ends. */
    SimControlOptions control;

    /** Collect a MetricRegistry over the measurement window. */
    bool collectMetrics = false;
    /** Epoch length (cycles) of the registry's time series. */
    Cycle telemetryEpoch = 1000;
    /** Optional flit-event observer (e.g. TraceObserver), attached
     *  for the whole run including warmup and drain. Not owned. */
    NetworkObserver *observer = nullptr;

    /** @name Diagnostics (docs/OBSERVABILITY.md) */
    ///@{
    /** Attach a FlightRecorder for the whole run, so a watchdog-trip
     *  postmortem carries recent pipeline history. */
    bool flightRecorder = false;
    /** Ring capacity (events) when flightRecorder is set. */
    std::size_t flightRecorderCapacity = 1u << 16;
    /** Print a live progress line to stderr every N cycles (0 = off). */
    Cycle progressEvery = 0;
    /** Run the credit-conservation auditor every N cycles and panic on
     *  violation. 0 = automatic: every telemetry epoch in debug
     *  builds, off in release. */
    Cycle auditEvery = 0;
    /** Enable a ProgressWatchdog with this window (0 = off). A trip
     *  warns once per stalled window and, when postmortemPath is set,
     *  dumps an hnoc-postmortem-v1 document. */
    Cycle watchdogWindow = 0;
    /** Postmortem destination for watchdog trips (honors
     *  HNOC_JSON_DIR); empty = no dump. */
    std::string postmortemPath;
    /** Attach a Profiler for the whole run and return the per-phase
     *  wall-clock breakdown plus the end-of-run memory audit in the
     *  result. Report-only: simulated results stay bit-identical.
     *  No-op in HNOC_TELEMETRY=OFF builds. */
    bool profile = false;
    /** Attach a BlameCollector for the whole run and return the
     *  per-packet stall-cause attribution in the result. Report-only:
     *  simulated results stay bit-identical (the ledger is observation,
     *  never consulted by the model). No-op in HNOC_TELEMETRY=OFF
     *  builds. */
    bool collectBlame = false;
    ///@}
};

/** Results of one open-loop simulation point. */
struct SimPointResult
{
    double offeredRate = 0.0;  ///< packets/node/cycle
    double acceptedRate = 0.0; ///< packets/node/cycle in the window

    double avgLatencyCycles = 0.0; ///< created -> ejected
    double avgLatencyNs = 0.0;
    double avgQueuingNs = 0.0;  ///< source-queue wait
    double avgBlockingNs = 0.0; ///< in-network contention
    double avgTransferNs = 0.0; ///< contention-free component
    double p95LatencyNs = 0.0;

    double networkPowerW = 0.0;
    PowerBreakdown power;

    double combineRate = 0.0; ///< wide-channel pairing rate
    bool saturated = false;   ///< tracked packets still undelivered
    /** Drain ran to its drainCycles cap with tracked packets still in
     *  flight, so the latency means exclude the slowest packets and
     *  are biased low. Always false on a saturation fast-abort (the
     *  drain is skipped, not truncated). */
    bool drainTruncated = false;

    /** @name Simulation-control outcome (src/noc/sim_control.hh) */
    ///@{
    Cycle simulatedCycles = 0;   ///< total cycles stepped (all phases)
    Cycle warmupCyclesUsed = 0;  ///< warmup actually paid
    Cycle measureCyclesUsed = 0; ///< measurement window actually run
    StopReason stopReason = StopReason::FixedWindow;
    /** Relative CI half-width of the batch means at stop; -1 when not
     *  available (reference mode, or fewer than 2 batches). */
    double ciRelHalfWidth = -1.0;
    /** Half-width after each closed batch (convergence probe; empty
     *  in reference mode). */
    std::vector<double> ciHistory;
    ///@}

    std::vector<double> bufferUtilPct; ///< per router
    std::vector<double> linkUtilPct;   ///< per router

    std::uint64_t trackedDelivered = 0;
    std::uint64_t trackedCreated = 0;

    /** Mean packet latency (ns) binned by hop count (router
     *  traversals); empty bins are 0. Index = hops. */
    std::vector<double> latencyByHopsNs;

    /** Measurement-window metrics (opts.collectMetrics). shared_ptr
     *  so results stay cheap to copy through the batch layer. */
    std::shared_ptr<MetricRegistry> metrics;

    /** Watchdog trips observed (opts.watchdogWindow). */
    std::uint64_t watchdogTrips = 0;

    /** @name Self-profile (opts.profile; docs/OBSERVABILITY.md) */
    ///@{
    /** Per-phase wall-clock attribution over the whole run. shared_ptr
     *  so results stay cheap to copy through the batch layer. */
    std::shared_ptr<Profiler> profile;
    /** End-of-run per-component memory audit (grown capacities). */
    std::shared_ptr<MemoryAudit> memory;
    ///@}

    /** Stall-cause blame attribution (opts.collectBlame). shared_ptr
     *  so results stay cheap to copy through the batch layer. */
    std::shared_ptr<BlameCollector> blame;
};

/** Run a single open-loop point. */
SimPointResult runOpenLoop(const NetworkConfig &config,
                           TrafficPattern pattern,
                           const SimPointOptions &opts);

/** One point of a heterogeneous batch: full (config, pattern, opts). */
struct BatchPoint
{
    NetworkConfig config;
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    SimPointOptions opts;
};

/**
 * Decorrelated per-point seed: splitmix64 of (base, index). Both the
 * serial and the parallel multi-seed paths derive seeds this way, so
 * the two produce bit-identical results point for point.
 */
std::uint64_t derivePointSeed(std::uint64_t base, std::uint64_t index);

/** Scale factor for simulation lengths from HNOC_SIM_SCALE (default 1). */
double simScale();

/**
 * Generic parallel map over experiment points: runs fn(points[i]) on
 * @p pool (the shared pool when null) and returns results in input
 * order. fn must not touch shared mutable state; every sim point
 * already owns its Network/TrafficGenerator/Rng, so the results are
 * bit-identical to the serial loop regardless of thread count.
 */
template <typename Point, typename Fn>
auto
runPointsParallel(const std::vector<Point> &points, Fn fn,
                  JobPool *pool = nullptr)
    -> std::vector<decltype(fn(points[0]))>
{
    simScale(); // settle the env lookup before fanning out
    JobPool &p = pool ? *pool : JobPool::shared();
    return p.runOrdered(points.size(),
                        [&](std::size_t i) { return fn(points[i]); });
}

/** Run a heterogeneous batch of open-loop points in parallel. */
std::vector<SimPointResult> runBatch(const std::vector<BatchPoint> &points,
                                     JobPool *pool = nullptr);

/**
 * Run a load sweep over @p rates (shared warmup/measure options).
 * Points run in parallel on @p pool (shared pool when null); results
 * are ordered by rate and bit-identical to sweepLoadSerial.
 */
std::vector<SimPointResult>
sweepLoad(const NetworkConfig &config, TrafficPattern pattern,
          const std::vector<double> &rates, SimPointOptions opts,
          JobPool *pool = nullptr);

/** Serial reference implementation of sweepLoad (determinism tests). */
std::vector<SimPointResult>
sweepLoadSerial(const NetworkConfig &config, TrafficPattern pattern,
                const std::vector<double> &rates, SimPointOptions opts);

/**
 * Run @p num_seeds replicas of one point in parallel, seeding replica
 * i with derivePointSeed(opts.seed, i).
 */
std::vector<SimPointResult>
runMultiSeed(const NetworkConfig &config, TrafficPattern pattern,
             SimPointOptions opts, int num_seeds, JobPool *pool = nullptr);

/** Run the same point under each pattern in parallel (input order). */
std::vector<SimPointResult>
runMultiPattern(const NetworkConfig &config,
                const std::vector<TrafficPattern> &patterns,
                const SimPointOptions &opts, JobPool *pool = nullptr);

/** Average packet latency (ns) at a near-zero load. */
double zeroLoadLatencyNs(const NetworkConfig &config,
                         TrafficPattern pattern, std::uint64_t seed = 1);

/**
 * Saturation throughput from a sweep: the highest accepted rate
 * observed (accepted flattens once the network saturates).
 */
double saturationThroughput(const std::vector<SimPointResult> &curve);

/**
 * Average latency (ns) over the pre-saturation region of a sweep
 * (points whose accepted rate tracks the offered rate within 5 %);
 * the paper's "average latency reduction" compares these.
 */
double preSaturationAvgLatencyNs(const std::vector<SimPointResult> &curve);

/**
 * Merge the registries of every point that collected one, in input
 * order. Pure integer arithmetic, so a parallel run merges to a
 * bit-identical registry as the serial loop. @return nullptr when no
 * point carried metrics.
 */
std::shared_ptr<MetricRegistry>
mergeRegistries(const std::vector<SimPointResult> &results);

/**
 * Merge the profilers of every point that ran with opts.profile, in
 * input order (addition of per-phase ns/visit totals, so the merge is
 * order-independent). @return nullptr when no point profiled.
 */
std::shared_ptr<Profiler>
mergeProfiles(const std::vector<SimPointResult> &results);

/**
 * Representative memory audit across a set of points: the audit with
 * the largest total footprint (per-point capacities are high-water
 * marks, so the max is the honest "what did this run cost" number).
 * @return nullptr when no point carried an audit.
 */
std::shared_ptr<MemoryAudit>
maxMemoryAudit(const std::vector<SimPointResult> &results);

/**
 * Merge the blame collectors of every point that ran with
 * opts.collectBlame, in input order (all aggregates are sums plus a
 * deterministic worst-packet leaderboard merge, so the result is
 * independent of worker-thread count). @return nullptr when no point
 * collected blame.
 */
std::shared_ptr<BlameCollector>
mergeBlame(const std::vector<SimPointResult> &results);

/**
 * Write a unified JSON run report (schema hnoc-run-report-v1) for a
 * set of labelled sim points, including each point's registry and the
 * cross-point merge under "registries"/"merged". Labels beyond
 * @p labels.size() are synthesized as "point<i>". Honors
 * HNOC_JSON_DIR like Table::writeCsv honors HNOC_CSV_DIR.
 */
bool writeRunReport(const std::string &path, const std::string &title,
                    const std::vector<std::string> &labels,
                    const std::vector<SimPointResult> &results);

} // namespace hnoc

#endif // HNOC_NOC_SIM_HARNESS_HH
