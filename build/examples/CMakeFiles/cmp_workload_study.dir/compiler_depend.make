# Empty compiler generated dependencies file for cmp_workload_study.
# This may be replaced when dependencies are built.
