/**
 * @file
 * The 64-tile CMP of Table 2(a): trace-driven out-of-order-style cores
 * with private L1s, a shared banked L2 with a blocking directory-based
 * MESI protocol, and memory controllers — all communicating over a
 * hnoc::Network. Drives the system-level experiments (Figs 10-14).
 *
 * Clock domains: cores run at a fixed 2.2 GHz; the network runs at its
 * own (worst-case router) clock. The system steps in network cycles
 * and scales core instruction budgets and core-cycle latencies by the
 * clock ratio, so latency comparisons across network configurations
 * are time-correct.
 */

#ifndef HNOC_SYS_CMP_SYSTEM_HH
#define HNOC_SYS_CMP_SYSTEM_HH

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "noc/network.hh"
#include "sys/cache.hh"
#include "sys/mc_placement.hh"
#include "sys/protocol.hh"
#include "sys/workloads.hh"

namespace hnoc
{

/** CMP parameters (defaults = Table 2(a)). */
struct CmpConfig
{
    double coreClockGHz = 2.2;

    /** Large/default core: 3-wide, 64-entry window, 16 MSHRs. */
    int issueWidth = 3;
    int windowInstrs = 64;
    int maxOutstanding = 16;

    /** Asymmetric small core (case study II): 1-wide in-order. */
    int smallIssueWidth = 1;
    int smallWindowInstrs = 1;
    int smallMaxOutstanding = 1;
    /** Tiles hosting large cores; empty = all cores are large/default. */
    std::vector<NodeId> largeCoreTiles;
    /** When true, only largeCoreTiles get the big-core parameters and
     *  all other tiles get the small-core parameters. */
    bool asymmetric = false;

    std::uint64_t l1Bytes = 32 * 1024;
    int l1Ways = 4;
    int l1LatencyCoreCycles = 2;

    std::uint64_t l2BankBytes = 1024 * 1024;
    int l2Ways = 16;
    int l2LatencyCoreCycles = 6;

    int blockBytes = 128;

    int dramLatencyCoreCycles = 400;
    /** MC service bandwidth: one request per this many network cycles. */
    int mcServiceInterval = 2;
    McPlacement mcPlacement = McPlacement::Corners;

    std::uint64_t seed = 1;
};

/** Per-packet network latency aggregates (Fig 11 style). */
struct NetLatencyStats
{
    RunningStat totalNs;
    RunningStat queuingNs;
    RunningStat blockingNs;
    RunningStat transferNs;

    void
    reset()
    {
        totalNs.reset();
        queuingNs.reset();
        blockingNs.reset();
        transferNs.reset();
    }
};

/** The full system. */
class CmpSystem : public NetworkClient
{
  public:
    CmpSystem(const NetworkConfig &net_config, const CmpConfig &config);
    ~CmpSystem() override;

    /** Run the same workload on every core. */
    void assignWorkloadAll(const WorkloadProfile &profile);

    /** Run @p profile on one core (others keep their assignment). */
    void assignWorkload(NodeId core, const WorkloadProfile &profile);

    /** Idle a core (no trace; used for IPC-alone runs). */
    void idleCore(NodeId core);

    /**
     * Functional cache warmup: play @p memops_per_core memory
     * operations per core directly against the cache arrays and
     * directory (no timing, no network traffic), eliminating the
     * compulsory-miss cold-start phase before timing simulation.
     * Uses separate generator instances so the timed trace stream is
     * unaffected.
     */
    void warmCaches(int memops_per_core);

    /** Advance the system by @p net_cycles network cycles. */
    void run(Cycle net_cycles);

    /** Clear measurement state (after cache/network warmup). */
    void resetStats();

    /** @name Metrics */
    ///@{
    /** Instructions per core-cycle for @p core over the window. */
    double ipc(NodeId core) const;

    /** Mean IPC over all non-idle cores. */
    double avgIpc() const;

    const NetLatencyStats &netLatency() const { return netStats_; }

    /** Load-miss round trip (issue to data back), core cycles. */
    const RunningStat &roundTripCoreCycles() const { return roundTrip_; }

    PowerBreakdown networkPower() const { return net_->powerReport(); }

    std::uint64_t l1Misses() const;
    std::uint64_t packetsSent() const { return packetsSent_; }

    /** Messages of @p type sent (network + same-tile) since start. */
    std::uint64_t
    msgCount(MsgType type) const
    {
        return msgCounts_[static_cast<std::size_t>(type)];
    }
    ///@}

    Network &network() { return *net_; }
    const CmpConfig &config() const { return config_; }

    /**
     * Per-component memory breakdown: the network's audit extended
     * with the L1/L2 arrays, the full-map MESI directory (the
     * O(tiles)-per-line structure flagged by ROADMAP item 1), live
     * directory transactions, and the message arena. Directory bytes
     * scale with tracked lines × sharer-list length, so run it after
     * warmup for a representative number.
     */
    MemoryAudit memoryAudit() const;

    /** NetworkClient interface. */
    void preCycle(Network &net, Cycle now) override;
    void onPacketDelivered(Network &net, Packet &pkt, Cycle now) override;

  private:
    struct OutstandingLoad
    {
        std::uint64_t reqId;
        Addr block;
        std::uint64_t atInstr; ///< retired-instruction count at issue
    };

    struct Mshr
    {
        bool isWrite = false;
        Cycle issuedAt = 0;
        bool invalidatedWhilePending = false;
    };

    struct Core
    {
        bool idle = true;
        std::unique_ptr<TraceGenerator> gen;
        std::unique_ptr<CacheArray> l1;

        double issueRate = 3.0; ///< instructions per network cycle
        int window = 64;
        int maxOutstanding = 16;

        double budget = 0.0;
        std::uint64_t retired = 0;
        TraceRecord pending;
        bool hasPending = false;
        int nonMemLeft = 0;

        std::deque<OutstandingLoad> loads;
        std::unordered_map<Addr, Mshr> mshrs;
        std::unordered_set<Addr> wbBuffer; ///< PutM awaiting WbAck
        std::uint64_t nextReqId = 1;

        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t retiredAtReset = 0;
    };

    /** Blocking-directory transaction state for one block. */
    struct Txn
    {
        MsgType req = MsgType::GetS;
        NodeId requester = INVALID_NODE;
        std::uint64_t reqId = 0;
        int pendingInvAcks = 0;
        bool waitingMem = false;
        bool waitingOwner = false;
        bool upgrade = false; ///< requester already held the line shared
        std::deque<Msg> deferred;
    };

    struct DirEntry
    {
        bool exclusive = false;
        NodeId owner = INVALID_NODE;
        std::vector<NodeId> sharers;
    };

    struct Bank
    {
        std::unique_ptr<CacheArray> l2;
        std::unordered_map<Addr, DirEntry> dir;
        std::unordered_map<Addr, Txn> busy;
    };

    struct MemController
    {
        bool present = false;
        std::deque<Msg> queue;
        Cycle nextFree = 0;
    };

    /** Deferred message processing (models controller latencies). */
    struct Event
    {
        Cycle at;
        NodeId tile; ///< handler tile, or destination when isSend
        Msg msg;
        bool isSend = false; ///< emit msg from src to tile at `at`
        NodeId src = INVALID_NODE;
    };

    // --- helpers -------------------------------------------------------
    Cycle coreToNet(int core_cycles) const;
    NodeId homeTile(Addr block) const;
    void stepCore(NodeId id, Core &core, Cycle now);
    bool issueMemOp(NodeId id, Core &core, const TraceRecord &rec,
                    Cycle now);
    void installLine(NodeId id, Core &core, Addr block, CacheState state,
                     Cycle now);
    void completeLoads(NodeId id, Core &core, Addr block, Cycle now);

    void sendMsg(NodeId src, NodeId dst, const Msg &msg, Cycle now);
    void handleMsg(NodeId tile, const Msg &msg, Cycle now);

    void coreHandle(NodeId tile, const Msg &msg, Cycle now);
    void dirHandle(NodeId tile, const Msg &msg, Cycle now);
    void mcHandle(NodeId tile, const Msg &msg, Cycle now);

    void dirStartTxn(NodeId tile, const Msg &msg, Cycle now);
    void dirFinishTxn(NodeId tile, Addr block, Cycle now);
    void dirRespond(NodeId tile, Addr block, Txn &txn, Cycle now);

    Msg *allocMsg(const Msg &proto);
    void freeMsg(Msg *msg);

    // --- state ---------------------------------------------------------
    CmpConfig config_;
    std::unique_ptr<Network> net_;
    double clkRatio_ = 1.0; ///< coreClock / netClock

    std::vector<Core> cores_;
    std::vector<Bank> banks_;
    std::vector<MemController> mcs_;
    std::vector<NodeId> mcTiles_;

    std::multimap<Cycle, Event> events_;

    std::deque<std::unique_ptr<Msg>> msgArena_;
    std::vector<Msg *> msgFree_;

    // measurement
    NetLatencyStats netStats_;
    RunningStat roundTrip_;
    Cycle statsStart_ = 0;
    std::uint64_t packetsSent_ = 0;
    std::array<std::uint64_t, 16> msgCounts_{};
};

} // namespace hnoc

#endif // HNOC_SYS_CMP_SYSTEM_HH
