file(REMOVE_RECURSE
  "CMakeFiles/hnoc_cli.dir/hnoc_cli.cpp.o"
  "CMakeFiles/hnoc_cli.dir/hnoc_cli.cpp.o.d"
  "hnoc_cli"
  "hnoc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnoc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
