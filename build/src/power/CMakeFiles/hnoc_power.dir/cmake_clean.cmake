file(REMOVE_RECURSE
  "CMakeFiles/hnoc_power.dir/area_model.cc.o"
  "CMakeFiles/hnoc_power.dir/area_model.cc.o.d"
  "CMakeFiles/hnoc_power.dir/frequency_model.cc.o"
  "CMakeFiles/hnoc_power.dir/frequency_model.cc.o.d"
  "CMakeFiles/hnoc_power.dir/router_power.cc.o"
  "CMakeFiles/hnoc_power.dir/router_power.cc.o.d"
  "libhnoc_power.a"
  "libhnoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnoc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
