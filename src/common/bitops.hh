/**
 * @file
 * Bitmask arbitration primitives for the data-oriented router core.
 *
 * The router keeps its request sets (route-compute pending, VA
 * requesters, per-output-port SA candidates) as dense bitmasks with
 * one bit per (input port, VC) slot. Arbitration then becomes
 * "visit the set bits in rotating-priority order", implemented with
 * count-trailing-zeros instead of a loop over every candidate slot.
 *
 * For a single 64-bit word the classic trick is rotate-by-start +
 * ctz; masking off the bits below the start index and falling back to
 * the unmasked word is exactly equivalent for rings shorter than the
 * word (rotr only works when nbits == 64) and costs the same two ctz
 * ops, so that is the form used here. Masks wider than one word scan
 * word-by-word from the start word.
 *
 * Invariant shared by all helpers: bits at index >= nbits are zero.
 * The helpers never set them, and the top-word trim in the iteration
 * paths keeps a violated invariant from visiting ghost slots.
 */

#ifndef HNOC_COMMON_BITOPS_HH
#define HNOC_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace hnoc
{
namespace bitops
{

constexpr int kWordBits = 64;

/** Best-effort read prefetch into all cache levels (no-op where the
 *  builtin is unavailable; never has an architectural effect). */
inline void
prefetch(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 3);
#else
    (void)p;
#endif
}

/** Words needed for an @p nbits -wide mask. */
constexpr int
maskWords(int nbits)
{
    return (nbits + kWordBits - 1) / kWordBits;
}

inline bool
maskTest(const std::uint64_t *words, int i)
{
    return (words[i >> 6] >> (i & 63)) & 1u;
}

inline void
maskSet(std::uint64_t *words, int i)
{
    words[i >> 6] |= std::uint64_t{1} << (i & 63);
}

inline void
maskClear(std::uint64_t *words, int i)
{
    words[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
}

/** @return true if any of the @p nwords words has a set bit. */
inline bool
maskAny(const std::uint64_t *words, int nwords)
{
    std::uint64_t acc = 0;
    for (int i = 0; i < nwords; ++i)
        acc |= words[i];
    return acc != 0;
}

/** Set bits across all words (population count). */
inline int
maskCount(const std::uint64_t *words, int nwords)
{
    int n = 0;
    for (int i = 0; i < nwords; ++i)
        n += std::popcount(words[i]);
    return n;
}

/** All-ones mask covering bit indices [lo, hi] of one word; empty
 *  when the range is (hi < lo or lo past the word). */
inline std::uint64_t
rangeMask64(int lo, int hi)
{
    if (lo > hi || lo >= kWordBits)
        return 0;
    std::uint64_t above = hi >= 63 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << (hi + 1)) - 1;
    return above & (~std::uint64_t{0} << lo);
}

/** Lowest clear bit of @p mask within [lo, hi], or -1 if none. */
inline int
firstClearInRange64(std::uint64_t mask, int lo, int hi)
{
    std::uint64_t free = ~mask & rangeMask64(lo, hi);
    return free ? std::countr_zero(free) : -1;
}

/**
 * Round-robin pick: the first set bit of the cyclic order
 * start, start+1, ..., nbits-1, 0, ..., start-1; -1 when empty.
 * Equivalent to rotating the mask right by @p start and taking
 * countr_zero of the result (mod nbits), for any ring width.
 */
inline int
pickRoundRobin(const std::uint64_t *words, int nwords, int nbits,
               int start)
{
    if (nwords == 1) {
        std::uint64_t m = words[0];
        if (m == 0)
            return -1;
        std::uint64_t hi = m & (~std::uint64_t{0} << start);
        return std::countr_zero(hi ? hi : m);
    }
    int w = start >> 6;
    std::uint64_t cur = words[w] & (~std::uint64_t{0} << (start & 63));
    for (int i = w; i < nwords; ++i) {
        std::uint64_t m = i == w ? cur : words[i];
        if (m) {
            int bit = (i << 6) + std::countr_zero(m);
            if (bit < nbits)
                return bit;
        }
    }
    for (int i = 0; i <= w; ++i) {
        std::uint64_t m = words[i];
        if (i == w)
            m &= ~(~std::uint64_t{0} << (start & 63));
        if (m)
            return (i << 6) + std::countr_zero(m);
    }
    return -1;
}

/**
 * Visit every set bit in the same cyclic order as pickRoundRobin,
 * calling visit(index) for each; visit returns false to stop early.
 * Bits the visitor clears at or below its own index do not disturb
 * the iteration (each word is snapshotted into a register), and bits
 * it clears ahead of the cursor are simply not visited — exactly the
 * semantics the SA grant loop needs when a tail flit retires its VC.
 */
template <typename Visit>
inline void
forEachSetCyclic(const std::uint64_t *words, int nwords, int nbits,
                 int start, Visit &&visit)
{
    std::uint64_t top = (nbits & 63) != 0
                            ? (std::uint64_t{1} << (nbits & 63)) - 1
                            : ~std::uint64_t{0};
    int w = start >> 6;
    for (int i = w; i < nwords; ++i) {
        std::uint64_t m = words[i];
        if (i == w)
            m &= ~std::uint64_t{0} << (start & 63);
        if (i == nwords - 1)
            m &= top;
        while (m) {
            int bit = (i << 6) + std::countr_zero(m);
            if (!visit(bit))
                return;
            m &= m - 1;
            // Re-fetch nothing: the snapshot keeps iteration stable
            // even if visit() mutates the mask.
        }
    }
    for (int i = 0; i <= w && i < nwords; ++i) {
        std::uint64_t m = words[i];
        if (i == w)
            m &= ~(~std::uint64_t{0} << (start & 63));
        if (i == nwords - 1)
            m &= top;
        while (m) {
            int bit = (i << 6) + std::countr_zero(m);
            if (!visit(bit))
                return;
            m &= m - 1;
        }
    }
}

} // namespace bitops
} // namespace hnoc

#endif // HNOC_COMMON_BITOPS_HH
