file(REMOVE_RECURSE
  "libhnoc_hetero.a"
)
