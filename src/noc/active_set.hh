/**
 * @file
 * Active-set scheduling hook shared by routers, channels, and NIs.
 *
 * The Network maintains one dense busy bitmap per component kind
 * (indexed by component id, scanned in index order so iteration stays
 * canonical) plus a population counter for the all-idle fast path.
 * Each component owns an ActivitySlot bound to its bitmap cell and
 * flips it on its own idle/busy transitions:
 *
 *  - a channel is busy while its flit or credit pipe is non-empty;
 *  - a router is busy while any input VC holds a flit (flitCount_ > 0
 *    over the SoA core's FIFOs; a flitless router has empty rcMask /
 *    vaReqMask / saReqMask request sets, so RC, VA, SA and occupancy
 *    sampling are all provably no-ops — see DESIGN.md "Active-set
 *    cycle scheduling" and "SoA router core");
 *  - an NI is busy while its source queue or an in-progress packet
 *    stream has work.
 *
 * The flags are exact, not heuristic: a wakeup is just the producer
 * side of an event (flit send, credit send, packet enqueue) marking
 * the consumer's slot busy before the consumer's next scan.
 */

#ifndef HNOC_NOC_ACTIVE_SET_HH
#define HNOC_NOC_ACTIVE_SET_HH

#include <cstddef>
#include <cstdint>

namespace hnoc
{

/** One component's cell in the Network's dense busy bitmap. */
class ActivitySlot
{
  public:
    /** Bind to @p flag inside the bitmap and the shared @p count of
     *  set flags. The storage must outlive the slot and never move. */
    void
    bind(std::uint8_t *flag, std::size_t *count)
    {
        flag_ = flag;
        count_ = count;
    }

    /** Mark busy (idempotent). No-op while unbound. */
    void
    markBusy()
    {
        if (flag_ && *flag_ == 0) {
            *flag_ = 1;
            ++*count_;
        }
    }

    /** Mark idle (idempotent). No-op while unbound. */
    void
    markIdle()
    {
        if (flag_ && *flag_ != 0) {
            *flag_ = 0;
            --*count_;
        }
    }

  private:
    std::uint8_t *flag_ = nullptr;
    std::size_t *count_ = nullptr;
};

} // namespace hnoc

#endif // HNOC_NOC_ACTIVE_SET_HH
