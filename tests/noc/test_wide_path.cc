/**
 * @file
 * Wide-path serialization tests: on all-wide (big-to-big) paths with
 * intra-packet pairing, an 8-flit packet moves two flits per cycle end
 * to end, and the measured zero-load latency matches
 * Network::minTransferCycles exactly.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/network.hh"

namespace hnoc
{
namespace
{

struct OneShot : NetworkClient
{
    Cycle injected = 0;
    Cycle ejected = 0;
    void
    onPacketDelivered(Network &, Packet &pkt, Cycle now) override
    {
        injected = pkt.injectedAt;
        ejected = now;
    }
};

Cycle
measure(const NetworkConfig &cfg, NodeId src, NodeId dst)
{
    Network net(cfg);
    OneShot client;
    net.setClient(&client);
    net.enqueuePacket(src, dst, cfg.dataPacketFlits());
    net.run(300);
    EXPECT_EQ(net.packetsDelivered(), 1u);
    return client.ejected - client.injected;
}

TEST(WidePath, BigToBigNeighborsNearAnalyticBound)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    // Routers 27 (3,3) and 28 (4,3) are both big (diagonal and
    // anti-diagonal): local channels and the link are all 256 b.
    //
    // The measured latency sits one cycle above the analytic floor:
    // a 5-flit buffer cannot sustain two flits/cycle across the
    // 4-cycle credit round trip (that would need depth >= 8), so the
    // stream takes one credit bubble. The floor must still hold as a
    // lower bound.
    Cycle sim = measure(cfg, 27, 28);
    Cycle bound =
        Network(cfg).minTransferCycles(27, 28, cfg.dataPacketFlits());
    EXPECT_GE(sim, bound);
    EXPECT_LE(sim, bound + 2) << "more than the expected credit bubble";
}

TEST(WidePath, WideBeatsNarrowSerialization)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    // Narrow pair: routers 10 (2,1) and 11 (3,1), both small.
    Cycle narrow = measure(cfg, 10, 11);
    Cycle wide = measure(cfg, 27, 28);
    EXPECT_GT(narrow, wide);
    EXPECT_GE(narrow - wide, 2u); // pairing saves >= 2 cycles here
}

TEST(WidePath, PairingOffRestoresOneFlitPerCycle)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.intraPacketPairing = false;
    Cycle wide = measure(cfg, 27, 28);
    Network ref(cfg);
    // With pairing disabled the bound reverts to flits-1 cycles.
    EXPECT_EQ(wide, ref.minTransferCycles(27, 28,
                                          cfg.dataPacketFlits()));
    NetworkConfig on = makeLayoutConfig(LayoutKind::DiagonalBL);
    EXPECT_GT(wide, measure(on, 27, 28));
}

TEST(WidePath, BaselineUnaffectedByPairingFlag)
{
    NetworkConfig a = makeLayoutConfig(LayoutKind::Baseline);
    NetworkConfig b = a;
    b.intraPacketPairing = false;
    EXPECT_EQ(measure(a, 27, 28), measure(b, 27, 28));
}

} // namespace
} // namespace hnoc
