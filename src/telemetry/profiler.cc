#include "telemetry/profiler.hh"

#include <cstdio>
#include <cstring>

#include "telemetry/json_writer.hh"

namespace hnoc
{

const char *
profPhaseName(ProfPhase p)
{
    switch (p) {
      case ProfPhase::ChannelDelivery:
        return "channel_delivery";
      case ProfPhase::NiEject:
        return "ni_eject";
      case ProfPhase::RouteCompute:
        return "route_compute";
      case ProfPhase::VcAllocate:
        return "vc_allocate";
      case ProfPhase::SwitchAllocate:
        return "switch_allocate";
      case ProfPhase::NiInject:
        return "ni_inject";
      case ProfPhase::TelemetryTick:
        return "telemetry_tick";
      case ProfPhase::StepTotal:
        return "step_total";
      case ProfPhase::NumPhases:
        break;
    }
    return "?";
}

Profiler::Profiler()
{
    reset();
}

void
Profiler::reset()
{
    std::memset(ns_, 0, sizeof(ns_));
    std::memset(visits_, 0, sizeof(visits_));
    for (BlockStat &b : blocks_)
        b = BlockStat{};
}

void
Profiler::merge(const Profiler &other)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ProfPhase::NumPhases); ++i) {
        ns_[i] += other.ns_[i];
        visits_[i] += other.visits_[i];
    }
    if (other.blocks_.size() > blocks_.size())
        blocks_.resize(other.blocks_.size());
    for (std::size_t b = 0; b < other.blocks_.size(); ++b) {
        blocks_[b].ns += other.blocks_[b].ns;
        blocks_[b].visits += other.blocks_[b].visits;
        // Footprints describe layout, not accumulation: keep the
        // first non-zero value (identical across merged instances of
        // the same network shape).
        if (blocks_[b].bytes == 0)
            blocks_[b].bytes = other.blocks_[b].bytes;
    }
}

void
Profiler::enableBlocks(std::size_t n)
{
    if (blocks_.size() < n)
        blocks_.resize(n);
}

void
Profiler::setBlockBytes(std::size_t b, std::uint64_t bytes)
{
    if (b < blocks_.size())
        blocks_[b].bytes = bytes;
}

double
Profiler::bytesStreamedPerCycle() const
{
    std::uint64_t c = cycles();
    if (c == 0)
        return 0.0;
    double sum = 0.0;
    for (const BlockStat &b : blocks_)
        sum += static_cast<double>(b.bytes) *
               static_cast<double>(b.visits);
    return sum / static_cast<double>(c);
}

std::uint64_t
Profiler::attributedNs() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ProfPhase::NumPhases); ++i) {
        if (i == static_cast<std::size_t>(ProfPhase::StepTotal))
            continue;
        total += ns_[i];
    }
    return total;
}

std::uint64_t
Profiler::unattributedNs() const
{
    std::uint64_t total = ns(ProfPhase::StepTotal);
    std::uint64_t attributed = attributedNs();
    return total > attributed ? total - attributed : 0;
}

void
Profiler::writeJson(JsonWriter &w) const
{
    std::uint64_t total = ns(ProfPhase::StepTotal);
    w.beginObject();
    w.keyValue("cycles", cycles());
    w.keyValue("step_total_ns", total);
    w.keyValue("unattributed_ns", unattributedNs());
    w.key("phases").beginObject();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ProfPhase::NumPhases); ++i) {
        auto p = static_cast<ProfPhase>(i);
        if (p == ProfPhase::StepTotal)
            continue;
        w.key(profPhaseName(p)).beginObject();
        w.keyValue("ns", ns_[i]);
        w.keyValue("visits", visits_[i]);
        w.keyValue("share_pct",
                   total > 0 ? 100.0 * static_cast<double>(ns_[i]) /
                                   static_cast<double>(total)
                             : 0.0);
        w.endObject();
    }
    w.endObject();
    if (!blocks_.empty()) {
        w.keyValue("bytes_streamed_per_cycle", bytesStreamedPerCycle());
        w.key("blocks").beginArray();
        for (const BlockStat &b : blocks_) {
            w.beginObject();
            w.keyValue("ns", b.ns);
            w.keyValue("visits", b.visits);
            w.keyValue("hot_bytes", b.bytes);
            w.keyValue("share_pct",
                       total > 0 ? 100.0 * static_cast<double>(b.ns) /
                                       static_cast<double>(total)
                                 : 0.0);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

std::string
Profiler::json() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

std::string
Profiler::table() const
{
    std::uint64_t total = ns(ProfPhase::StepTotal);
    char buf[160];
    std::string out;
    std::snprintf(buf, sizeof(buf), "%-18s %14s %12s %7s\n", "phase",
                  "wall ns", "visits", "share");
    out += buf;
    auto row = [&](const char *name, std::uint64_t ns,
                   std::uint64_t visits) {
        double pct = total > 0 ? 100.0 * static_cast<double>(ns) /
                                     static_cast<double>(total)
                               : 0.0;
        std::snprintf(buf, sizeof(buf), "%-18s %14llu %12llu %6.1f%%\n",
                      name, static_cast<unsigned long long>(ns),
                      static_cast<unsigned long long>(visits), pct);
        out += buf;
    };
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ProfPhase::NumPhases); ++i) {
        auto p = static_cast<ProfPhase>(i);
        if (p == ProfPhase::StepTotal)
            continue;
        row(profPhaseName(p), ns_[i], visits_[i]);
    }
    row("(scan/overhead)", unattributedNs(), 0);
    row("step_total", total, cycles());
    if (cycles() > 0) {
        std::snprintf(buf, sizeof(buf), "%-18s %14.1f\n", "ns/cycle",
                      static_cast<double>(total) /
                          static_cast<double>(cycles()));
        out += buf;
    }
    if (!blocks_.empty()) {
        std::snprintf(buf, sizeof(buf), "%-18s %14s %12s %12s\n",
                      "block", "wall ns", "visits", "hot bytes");
        out += buf;
        for (std::size_t b = 0; b < blocks_.size(); ++b) {
            char name[32];
            std::snprintf(name, sizeof(name), "block[%zu]", b);
            std::snprintf(buf, sizeof(buf), "%-18s %14llu %12llu %12llu\n",
                          name,
                          static_cast<unsigned long long>(blocks_[b].ns),
                          static_cast<unsigned long long>(
                              blocks_[b].visits),
                          static_cast<unsigned long long>(
                              blocks_[b].bytes));
            out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%-18s %14.1f\n",
                      "bytes/cycle", bytesStreamedPerCycle());
        out += buf;
    }
    return out;
}

std::uint64_t
MemoryAudit::totalBytes() const
{
    std::uint64_t total = 0;
    for (const Component &c : components)
        total += c.bytes;
    return total;
}

double
MemoryAudit::bytesPerTile() const
{
    return tiles > 0 ? static_cast<double>(totalBytes()) /
                           static_cast<double>(tiles)
                     : 0.0;
}

void
MemoryAudit::add(const std::string &name, std::uint64_t bytes,
                 std::uint64_t count)
{
    if (count == 0)
        return;
    components.push_back({name, bytes, count});
}

void
MemoryAudit::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.keyValue("tiles", tiles);
    w.keyValue("total_bytes", totalBytes());
    w.keyValue("bytes_per_tile", bytesPerTile());
    w.key("components").beginArray();
    for (const Component &c : components) {
        w.beginObject();
        w.keyValue("name", c.name);
        w.keyValue("bytes", c.bytes);
        w.keyValue("count", c.count);
        w.keyValue("bytes_per_tile",
                   tiles > 0 ? static_cast<double>(c.bytes) /
                                   static_cast<double>(tiles)
                             : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
MemoryAudit::table() const
{
    char buf[160];
    std::string out;
    std::snprintf(buf, sizeof(buf), "%-18s %14s %8s %14s\n", "component",
                  "bytes", "count", "bytes/tile");
    out += buf;
    for (const Component &c : components) {
        std::snprintf(buf, sizeof(buf), "%-18s %14llu %8llu %14.1f\n",
                      c.name.c_str(),
                      static_cast<unsigned long long>(c.bytes),
                      static_cast<unsigned long long>(c.count),
                      tiles > 0 ? static_cast<double>(c.bytes) /
                                      static_cast<double>(tiles)
                                : 0.0);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%-18s %14llu %8s %14.1f\n", "total",
                  static_cast<unsigned long long>(totalBytes()), "",
                  bytesPerTile());
    out += buf;
    return out;
}

} // namespace hnoc
