/**
 * @file
 * Figure 12: IPC improvement over the baseline network for the
 * commercial (a) and PARSEC (b) workloads across HeteroNoC layouts.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

namespace
{

void
runGroup(const char *title, const std::vector<WorkloadProfile> &group)
{
    const std::vector<LayoutKind> kinds = heteroLayouts();
    CmpConfig cmp;

    std::printf("\n%s — IPC improvement %% over baseline:\n", title);
    std::printf("%-12s", "workload");
    for (LayoutKind k : kinds)
        std::printf(" %11s", layoutName(k).c_str());
    std::printf("\n");

    std::vector<RunningStat> gains(kinds.size());
    for (const WorkloadProfile &w : group) {
        CmpRunResult base = runCmpExperiment(
            makeLayoutConfig(LayoutKind::Baseline), cmp, w);
        std::printf("%-12s", w.name.c_str());
        for (std::size_t i = 0; i < kinds.size(); ++i) {
            CmpRunResult r =
                runCmpExperiment(makeLayoutConfig(kinds[i]), cmp, w);
            double gain = pctOver(base.ipc, r.ipc);
            gains[i].add(gain);
            std::printf(" %11.1f", gain);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "average");
    for (auto &g : gains)
        std::printf(" %11.1f", g.mean());
    std::printf("\n");
}

} // namespace

int
main()
{
    printHeader("Figure 12", "IPC improvement over the baseline network");
    runGroup("(a) Commercial applications", commercialWorkloads());
    runGroup("(b) PARSEC applications", parsecWorkloads());
    std::printf("\n(paper: Diagonal+BL best, ~12%% commercial / ~10%% "
                "PARSEC)\n");
    return 0;
}
