# Empty compiler generated dependencies file for test_noc_failures.
# This may be replaced when dependencies are built.
