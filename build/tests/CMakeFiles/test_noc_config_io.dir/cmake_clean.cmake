file(REMOVE_RECURSE
  "CMakeFiles/test_noc_config_io.dir/noc/test_config_io.cc.o"
  "CMakeFiles/test_noc_config_io.dir/noc/test_config_io.cc.o.d"
  "test_noc_config_io"
  "test_noc_config_io.pdb"
  "test_noc_config_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_config_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
