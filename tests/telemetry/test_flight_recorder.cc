/**
 * @file
 * FlightRecorder tests: power-of-two capacity rounding, ring wrap and
 * overwrite accounting, snapshot ordering and last-N-cycles clipping,
 * and the JSON postmortem section round-tripped through the strict
 * telemetry reader.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "telemetry/flight_recorder.hh"
#include "telemetry/json_reader.hh"
#include "telemetry/json_writer.hh"

namespace hnoc
{
namespace
{

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(FlightRecorder(1).capacity(), 1u);
    EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
    EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
    EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
    EXPECT_EQ(FlightRecorder(1u << 16).capacity(), 1u << 16);
}

TEST(FlightRecorder, RecordsAndWraps)
{
    FlightRecorder fr(8);
    ASSERT_EQ(fr.capacity(), 8u);

    for (int i = 0; i < 5; ++i)
        fr.record(FrKind::FlitIn, static_cast<Cycle>(10 + i), i, 1, 0,
                  100 + i, i == 0);
    EXPECT_EQ(fr.size(), 5u);
    EXPECT_EQ(fr.totalRecorded(), 5u);
    EXPECT_EQ(fr.overwritten(), 0u);

    // Push past capacity: the ring keeps only the newest 8.
    for (int i = 5; i < 20; ++i)
        fr.record(FrKind::FlitOut, static_cast<Cycle>(10 + i), i, 2, 1);
    EXPECT_EQ(fr.size(), 8u);
    EXPECT_EQ(fr.totalRecorded(), 20u);
    EXPECT_EQ(fr.overwritten(), 12u);

    // Snapshot is oldest -> newest over the survivors (events 12..19).
    std::vector<FlightRecorder::Event> events = fr.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].t, static_cast<Cycle>(10 + 12 + i));
        EXPECT_EQ(events[i].router, static_cast<std::int16_t>(12 + i));
        if (i > 0) {
            EXPECT_GE(events[i].t, events[i - 1].t);
        }
    }
}

TEST(FlightRecorder, SnapshotClipsToLastCycles)
{
    FlightRecorder fr(64);
    for (int t = 0; t < 50; ++t)
        fr.record(FrKind::FlitIn, static_cast<Cycle>(t), 0, 0, 0);

    // Newest is t=49; a 10-cycle window keeps t in [39, 49].
    std::vector<FlightRecorder::Event> tail = fr.snapshot(10);
    ASSERT_FALSE(tail.empty());
    EXPECT_EQ(tail.front().t, 39u);
    EXPECT_EQ(tail.back().t, 49u);
    EXPECT_EQ(tail.size(), 11u);

    // A window wider than history keeps everything.
    EXPECT_EQ(fr.snapshot(1000).size(), 50u);
    // 0 means "no clipping".
    EXPECT_EQ(fr.snapshot(0).size(), 50u);
}

TEST(FlightRecorder, ClearDropsHistory)
{
    FlightRecorder fr(8);
    fr.record(FrKind::Inject, 1, 0, -1, -1, 7, true);
    ASSERT_EQ(fr.size(), 1u);
    fr.clear();
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.totalRecorded(), 0u);
    EXPECT_TRUE(fr.snapshot().empty());
}

TEST(FlightRecorder, EventStaysCompact)
{
    // The hot-path store stays a small fixed-size write: 24 bytes
    // (8-byte timestamp alignment pads the 20 payload bytes).
    EXPECT_EQ(sizeof(FlightRecorder::Event), 24u);
}

TEST(FlightRecorder, JsonSectionRoundTrips)
{
    FlightRecorder fr(16);
    fr.record(FrKind::Inject, 5, 3, -1, -1, 42, true);
    fr.record(FrKind::FlitIn, 6, 3, 4, 1, 42, true);
    fr.record(FrKind::VaDeny, 7, 3, 4, 1, 42);
    fr.record(FrKind::VaGrant, 8, 3, 4, 1, 42);
    fr.record(FrKind::CreditStall, 9, 3, 2, 0, 42);
    fr.record(FrKind::FlitOut, 10, 3, 2, 0, 42, true);
    fr.record(FrKind::CreditOut, 10, 3, 4, 1);
    fr.record(FrKind::CreditIn, 12, 2, 1, 0);
    fr.record(FrKind::Eject, 20, 9, -1, -1, 42, true);

    JsonWriter w;
    fr.writeJson(w);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), doc, &err)) << err;

    EXPECT_DOUBLE_EQ(doc.numAt("capacity"), 16.0);
    EXPECT_DOUBLE_EQ(doc.numAt("recorded"), 9.0);
    EXPECT_DOUBLE_EQ(doc.numAt("overwritten"), 0.0);
    EXPECT_DOUBLE_EQ(doc.numAt("held"), 9.0);

    const std::vector<JsonValue> &events = doc.arrayAt("events");
    ASSERT_EQ(events.size(), 9u);

    // Spot-check the first and last events and the schema kind names.
    EXPECT_EQ(events[0].strAt("ev"), "inject");
    EXPECT_DOUBLE_EQ(events[0].numAt("t"), 5.0);
    EXPECT_DOUBLE_EQ(events[0].numAt("r"), 3.0);
    EXPECT_DOUBLE_EQ(events[0].numAt("pkt"), 42.0);
    EXPECT_DOUBLE_EQ(events[0].numAt("head"), 1.0);

    EXPECT_EQ(events[1].strAt("ev"), "flit_in");
    EXPECT_EQ(events[2].strAt("ev"), "va_deny");
    EXPECT_EQ(events[3].strAt("ev"), "va_grant");
    EXPECT_EQ(events[4].strAt("ev"), "credit_stall");
    EXPECT_EQ(events[5].strAt("ev"), "flit_out");
    EXPECT_EQ(events[6].strAt("ev"), "credit_out");
    EXPECT_EQ(events[7].strAt("ev"), "credit_in");

    // pkt/head are omitted when zero (credit events carry no packet).
    EXPECT_EQ(events[7].find("pkt"), nullptr);
    EXPECT_EQ(events[7].find("head"), nullptr);

    EXPECT_EQ(events[8].strAt("ev"), "eject");
    EXPECT_DOUBLE_EQ(events[8].numAt("t"), 20.0);

    // Clipped emission honors the same cutoff as snapshot(): newest
    // t=20, window 10 -> keep t >= 10 (flit_out, credit_out,
    // credit_in, eject).
    JsonWriter w2;
    fr.writeJson(w2, 10);
    JsonValue clipped;
    ASSERT_TRUE(parseJson(w2.str(), clipped, &err)) << err;
    const std::vector<JsonValue> &tail = clipped.arrayAt("events");
    ASSERT_EQ(tail.size(), 4u);
    EXPECT_EQ(tail[0].strAt("ev"), "flit_out");
    EXPECT_EQ(tail[3].strAt("ev"), "eject");
}

} // namespace
} // namespace hnoc
