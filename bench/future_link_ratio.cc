/**
 * @file
 * The paper's declared future work (footnote 2): sensitivity of
 * performance to the ratio of wide to narrow links crossing the
 * bisection, with bisection bandwidth held at the baseline budget via
 * the paper's own equation
 *
 *     192 * 8 = W * (8 - w) + 2W * w   =>   W = 1536 / (8 + w)
 *
 * where w is the number of wide (2W-bit) links per cut. Wide links
 * occupy the central band (CentralBand mode); the Diagonal big/small
 * VC placement is held fixed so only the link ratio varies.
 * w = 4 recovers the paper's 128/256 b design point; w = 8 makes every
 * link "wide" with 96 b flits.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main()
{
    printHeader("Future work (footnote 2)",
                "wide:narrow link ratio sensitivity at constant "
                "bisection bandwidth");

    const std::vector<double> rates = {0.01, 0.02, 0.03, 0.04, 0.05,
                                       0.06, 0.07};
    SimPointOptions opts;
    opts.warmupCycles = 6000;
    opts.measureCycles = 12000;
    opts.drainCycles = 24000;

    std::printf("\n%-28s %6s %6s %9s %10s %10s\n", "config",
                "W(b)", "flits", "sat pkt", "lat@0.03", "P@0.03 W");

    // Baseline reference.
    {
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
        auto curve =
            sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts);
        std::printf("%-28s %6d %6d %9.4f %9.1f %10.1f\n",
                    "Baseline (all 192b)", 192, cfg.dataPacketFlits(),
                    saturationThroughput(curve), curve[2].avgLatencyNs,
                    curve[2].networkPowerW);
    }

    for (int w : {1, 2, 3, 4, 6, 8}) {
        int narrow = 1536 / (8 + w); // paper's equation
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
        cfg.name = "band-" + std::to_string(w);
        cfg.flitWidthBits = narrow;
        cfg.linkWidthMode = LinkWidthMode::CentralBand;
        cfg.bandWideLinks = w;
        // Router datapaths follow the flit/band widths.
        for (int r = 0; r < 64; ++r) {
            bool big = cfg.routerVcs[static_cast<std::size_t>(r)] > 2;
            cfg.routerWidthBits[static_cast<std::size_t>(r)] =
                big ? 2 * narrow : narrow;
        }
        auto curve =
            sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts);
        char name[64];
        std::snprintf(name, sizeof(name),
                      "%d wide + %d narrow per cut", w, 8 - w);
        std::printf("%-28s %6d %6d %9.4f %9.1f %10.1f\n", name, narrow,
                    cfg.dataPacketFlits(), saturationThroughput(curve),
                    curve[2].avgLatencyNs, curve[2].networkPowerW);
    }
    std::printf("\n(w = 4 is the paper's 128/256 design point; larger w"
                " trades flit size\nfor wide-lane coverage at the same "
                "bisection bandwidth)\n");
    return 0;
}
