/**
 * @file
 * Latency blame attribution tests. The load-bearing guarantees:
 *
 *  - blame is report-only: a network driven with a BlameCollector
 *    attached produces bit-identical simulation results (delivery
 *    counts AND the full telemetry JSON) to the same network driven
 *    without one, so goldens never depend on whether --blame was
 *    passed;
 *  - the accounting identity is EXACT: for every delivered packet,
 *    source-queueing + zero-load head path + per-cause stall cycles +
 *    zero-load serialization + link-serialization residual equals the
 *    measured created-to-ejected latency, on the mesh and on
 *    HeteroNoC, across seeds;
 *  - merge() is deterministic in input order, so a multi-seed sweep
 *    run on 1, 3, or 4 worker threads serializes to byte-identical
 *    blame JSON.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "common/job_pool.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/sim_harness.hh"
#include "noc/traffic.hh"
#include "telemetry/blame.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{
namespace
{

/** Drive @p net with seeded UR traffic for @p cycles. */
void
driveUniformRandom(Network &net, Cycle cycles, std::uint64_t seed = 11,
                   double rate = 0.02)
{
    const NetworkConfig &cfg = net.config();
    int nodes = net.topology().numNodes();
    TrafficGenerator gen(TrafficPattern::UniformRandom, nodes,
                         net.topology().gridCols(), seed);
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (gen.shouldInject(n, rate, net.now())) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
    }
}

// ------------------------------------------------------------- unit --

TEST(BlameCollector, CauseNamesAreStableSnakeCase)
{
    // The run-report schema and hnoc_inspect key on these.
    EXPECT_STREQ(blameCauseName(BlameCause::SourceQueueing),
                 "source_queueing");
    EXPECT_STREQ(blameCauseName(BlameCause::RoutePending),
                 "route_pending");
    EXPECT_STREQ(blameCauseName(BlameCause::VaConflictLost),
                 "va_conflict_lost");
    EXPECT_STREQ(blameCauseName(BlameCause::SaConflictLost),
                 "sa_conflict_lost");
    EXPECT_STREQ(blameCauseName(BlameCause::CreditStarved),
                 "credit_starved");
    EXPECT_STREQ(blameCauseName(BlameCause::EjectBackpressure),
                 "eject_backpressure");
    EXPECT_STREQ(blameCauseName(BlameCause::LinkSerialization),
                 "link_serialization");
}

TEST(BlameCollector, CommitDerivesIdentityTerms)
{
    BlameCollector::Dims dims;
    dims.routers = 4;
    dims.ports = 5;
    dims.gridCols = 2;
    BlameCollector bc(dims);
    bc.setNodeRouter(0, 0);
    bc.setNodeRouter(1, 3);

    // A hand-built packet: created 10, injected 14 (4 cyc queueing),
    // head ejects at 30, tail at 35; zero-load head path 12, minimal
    // serialization 3, so tail drag residual = (35-30) - 3 = 2; one
    // in-network VA stall cycle -> identity needs 35-10 = 25 =
    // 4 + 12 + 1 + 3 + 2 + route_pending(3).
    BlameLedger l;
    l.minHeadCycles = 12;
    l.minSerCycles = 3;
    l.headEjectAt = 30;
    l.charge(BlameCause::VaConflictLost);
    l.charge(BlameCause::RoutePending, 3);
    bc.commit(7, 0, 1, 10, 14, 35, l);

    EXPECT_EQ(bc.packets(), 1u);
    EXPECT_EQ(bc.identityViolations(), 0u);
    EXPECT_EQ(bc.totalLatency(), 25u);
    EXPECT_EQ(bc.totalCause(BlameCause::SourceQueueing), 4u);
    EXPECT_EQ(bc.totalCause(BlameCause::LinkSerialization), 2u);
    EXPECT_EQ(bc.totalCause(BlameCause::VaConflictLost), 1u);
    EXPECT_EQ(bc.totalCause(BlameCause::RoutePending), 3u);
    EXPECT_EQ(bc.totalMinHead(), 12u);
    EXPECT_EQ(bc.totalMinSer(), 3u);

    ASSERT_EQ(bc.worstPackets().size(), 1u);
    EXPECT_EQ(bc.worstPackets()[0].id, 7u);
    EXPECT_EQ(bc.worstPackets()[0].latency, 25u);
}

TEST(BlameCollector, CommitCountsIdentityViolations)
{
    BlameCollector::Dims dims;
    dims.routers = 1;
    dims.ports = 1;
    dims.gridCols = 1;
    BlameCollector bc(dims);
    bc.setNodeRouter(0, 0);

    // Ledger claims 10 zero-load head cycles but measured latency is
    // only 5 — the identity cannot hold.
    BlameLedger l;
    l.minHeadCycles = 10;
    l.headEjectAt = 5;
    bc.commit(1, 0, 0, 0, 0, 5, l);
    EXPECT_EQ(bc.identityViolations(), 1u);
}

TEST(BlameCollector, JsonCarriesSchema)
{
    BlameCollector::Dims dims;
    dims.routers = 4;
    dims.ports = 5;
    dims.gridCols = 2;
    BlameCollector bc(dims);
    bc.setNodeRouter(0, 0);
    BlameLedger l;
    l.minHeadCycles = 5;
    l.headEjectAt = 5;
    bc.commit(1, 0, 0, 0, 0, 5, l);

    std::string j = bc.json();
    EXPECT_NE(j.find("\"schema\":\"hnoc-latency-blame-v1\""),
              std::string::npos)
        << j;
    EXPECT_NE(j.find("\"percentiles\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"heatmap\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"worst_packets\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"min_head_latency\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"identity_violations\":0"), std::string::npos)
        << j;
}

// ------------------------------------- report-only (the golden pin) --

TEST(Blame, AttachedCollectorDoesNotPerturbSimulation)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);

    Network plain(cfg);
    auto plain_reg = plain.makeMetricRegistry(500);
    plain.attachTelemetry(plain_reg.get());
    driveUniformRandom(plain, 3000);
    plain_reg->finish();

    Network blamed(cfg);
    auto blame_reg = blamed.makeMetricRegistry(500);
    blamed.attachTelemetry(blame_reg.get());
    auto bc = blamed.makeBlameCollector();
    blamed.attachBlame(bc.get());
    driveUniformRandom(blamed, 3000);
    blame_reg->finish();

    EXPECT_GT(plain.packetsDelivered(), 0u);
    EXPECT_EQ(plain.packetsDelivered(), blamed.packetsDelivered());
    EXPECT_EQ(plain.flitsDelivered(), blamed.flitsDelivered());
    EXPECT_EQ(plain.now(), blamed.now());
    EXPECT_EQ(plain_reg->json(), blame_reg->json());

    if (kTelemetryEnabled) {
        EXPECT_EQ(bc->packets(), blamed.packetsDelivered());
        EXPECT_EQ(bc->identityViolations(), 0u);
        EXPECT_GT(bc->totalMinHead(), 0u);
    } else {
        // OFF build: the acquire/charge/commit hooks compile away.
        EXPECT_EQ(bc->packets(), 0u);
    }
}

// ------------------------------------------- exact accounting identity --

/** Checks the per-packet identity from the delivery callback, where
 *  the finished ledger is still attached (commit runs just after). */
class IdentityCheckClient : public NetworkClient
{
  public:
    void
    onPacketDelivered(Network &net, Packet &pkt, Cycle now) override
    {
        (void)net;
        ++delivered;
        if (!kTelemetryEnabled)
            return;
        ASSERT_NE(pkt.blame, nullptr);
        const BlameLedger &l = *pkt.blame;
        ASSERT_NE(l.headEjectAt, CYCLE_NEVER);
        ASSERT_GE(pkt.ejectedAt, l.headEjectAt);
        ASSERT_EQ(pkt.ejectedAt, now);
        std::uint64_t tail = pkt.ejectedAt - l.headEjectAt;
        ASSERT_GE(tail, l.minSerCycles)
            << "packet " << pkt.id << " beat the serialization bound";
        std::uint64_t sum = (pkt.injectedAt - pkt.createdAt) +
                            l.minHeadCycles + l.minSerCycles +
                            (tail - l.minSerCycles);
        for (std::uint64_t c : l.cycles)
            sum += c;
        ASSERT_EQ(sum, pkt.ejectedAt - pkt.createdAt)
            << "blame identity broken for packet " << pkt.id << " ("
            << pkt.src << " -> " << pkt.dst << ")";
    }

    std::uint64_t delivered = 0;
};

TEST(Blame, AccountingIdentityExactOnMeshAndHeteroAcrossSeeds)
{
    // High enough load to exercise every stall cause, on both the
    // baseline mesh and the heterogeneous layout, across 3 seeds.
    const LayoutKind kinds[] = {LayoutKind::Baseline,
                                LayoutKind::DiagonalBL};
    const std::uint64_t seeds[] = {1, 2, 3};
    for (LayoutKind kind : kinds) {
        for (std::uint64_t seed : seeds) {
            NetworkConfig cfg = makeLayoutConfig(kind);
            Network net(cfg);
            IdentityCheckClient client;
            net.setClient(&client);
            auto bc = net.makeBlameCollector();
            net.attachBlame(bc.get());
            driveUniformRandom(net, 4000, seed, 0.08);
            EXPECT_GT(client.delivered, 0u);
            EXPECT_EQ(bc->identityViolations(), 0u)
                << layoutName(kind) << " seed " << seed;
            if (kTelemetryEnabled) {
                EXPECT_EQ(bc->packets(), client.delivered);
                // The per-cause totals plus min terms reconstruct the
                // total measured latency exactly.
                std::uint64_t sum =
                    bc->totalMinHead() + bc->totalMinSer();
                for (int c = 0; c < kNumBlameCauses; ++c)
                    sum += bc->totalCause(static_cast<BlameCause>(c));
                EXPECT_EQ(sum, bc->totalLatency())
                    << layoutName(kind) << " seed " << seed;
            }
        }
    }
}

// ------------------------------------------------ merge determinism --

TEST(Blame, MergedJsonIsThreadCountInvariant)
{
    // A 6-point multi-seed batch on HeteroNoC, run under pools of 1,
    // 3 and 4 workers: the merged blame JSON must be byte-identical.
    std::vector<BatchPoint> points;
    for (std::uint64_t i = 0; i < 6; ++i) {
        BatchPoint p;
        p.config = makeLayoutConfig(LayoutKind::DiagonalBL);
        p.opts.injectionRate = 0.05;
        p.opts.warmupCycles = 200;
        p.opts.measureCycles = 800;
        p.opts.drainCycles = 2000;
        p.opts.seed = derivePointSeed(99, i);
        p.opts.collectBlame = true;
        points.push_back(p);
    }

    std::array<std::string, 3> merged_json;
    const int pool_sizes[] = {1, 3, 4};
    for (std::size_t k = 0; k < 3; ++k) {
        JobPool pool(pool_sizes[k]);
        std::vector<SimPointResult> results = runBatch(points, &pool);
        ASSERT_EQ(results.size(), points.size());
        auto merged = mergeBlame(results);
        if (kTelemetryEnabled) {
            ASSERT_NE(merged, nullptr);
            merged_json[k] = merged->json();
            EXPECT_GT(merged->packets(), 0u);
            EXPECT_EQ(merged->identityViolations(), 0u);
        } else {
            // OFF build: collectBlame is a no-op and no point carries
            // a collector; the comparison below is trivially equal.
            EXPECT_EQ(merged, nullptr);
        }
    }
    EXPECT_EQ(merged_json[0], merged_json[1]);
    EXPECT_EQ(merged_json[0], merged_json[2]);
}

} // namespace
} // namespace hnoc
