file(REMOVE_RECURSE
  "CMakeFiles/fig02_other_topologies.dir/fig02_other_topologies.cc.o"
  "CMakeFiles/fig02_other_topologies.dir/fig02_other_topologies.cc.o.d"
  "fig02_other_topologies"
  "fig02_other_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_other_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
