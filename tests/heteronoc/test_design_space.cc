/**
 * @file
 * Design-space exploration tests (paper footnote 4).
 */

#include <gtest/gtest.h>

#include "heteronoc/design_space.hh"
#include "heteronoc/layout.hh"

namespace hnoc
{
namespace
{

TEST(DesignSpace, BinomialMatchesPaperCounts)
{
    // Footnote 4: 1820, 8008 and 12870 placements on a 4x4 mesh, and
    // C(64,48) = 4.89e14 on an 8x8.
    EXPECT_DOUBLE_EQ(binomial(16, 4), 1820.0);
    EXPECT_DOUBLE_EQ(binomial(16, 6), 8008.0);
    EXPECT_DOUBLE_EQ(binomial(16, 8), 12870.0);
    EXPECT_NEAR(binomial(64, 48), 4.89e14, 0.01e14);
}

TEST(DesignSpace, ScoreRewardsCoverage)
{
    int radix = 4;
    // All big routers crammed into one corner must score worse than
    // the diagonal spread.
    std::vector<bool> corner(16, false);
    corner[0] = corner[1] = corner[4] = corner[5] = true;
    corner[2] = corner[8] = corner[6] = corner[9] = true;

    std::vector<bool> diagonal =
        bigRouterMask(LayoutKind::DiagonalBL, radix);
    EXPECT_GT(flowCoverageScore(diagonal, radix),
              flowCoverageScore(corner, radix));
}

TEST(DesignSpace, ExploreFindsAtLeastDiagonalQuality)
{
    auto top = explorePlacements(4, 8, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_GE(top[0].score, top[1].score);
    EXPECT_GE(top[1].score, top[2].score);
    double diag_score =
        flowCoverageScore(bigRouterMask(LayoutKind::DiagonalBL, 4), 4);
    EXPECT_GE(top[0].score + 1e-12, diag_score)
        << "the exhaustive best cannot be worse than the diagonal";
    // Every returned mask has exactly 8 big routers.
    for (const auto &ps : top) {
        int n = 0;
        for (bool b : ps.bigMask)
            n += b ? 1 : 0;
        EXPECT_EQ(n, 8);
    }
}

TEST(DesignSpace, RejectsHugeEnumerations)
{
    EXPECT_DEATH(
        {
            auto r = explorePlacements(8, 16, 1);
            (void)r;
        },
        "too large");
}

TEST(DesignSpace, SimulateFillsLatency)
{
    auto top = explorePlacements(4, 6, 2);
    simulateTopPlacements(top, 4, 0.04);
    for (const auto &ps : top)
        EXPECT_GT(ps.simLatencyNs, 0.0);
}

} // namespace
} // namespace hnoc
