#include "power/area_model.hh"

namespace hnoc
{

namespace
{

// Fitted exactly to the Table 1 synthesized areas:
//   k0 + 3 c_vc + 192^2 c_x = 0.290   (baseline)
//   k0 + 2 c_vc + 128^2 c_x = 0.235   (small)
//   k0 + 6 c_vc + 256^2 c_x = 0.425   (big)
// The per-VC term covers the FIFO storage plus VC state/allocator
// slices (the big router keeps 128 b FIFOs, so storage bits alone do
// not explain its +46 % area; VC count and crossbar width do).
constexpr double FIXED_MM2 = 0.1475;
constexpr double PER_VC_MM2 = 0.03625;
constexpr double PER_XBAR_BIT2_MM2 = 9.1552734375e-7;

} // namespace

double
AreaModel::bufferAreaMm2(const RouterPhysParams &params)
{
    // Normalized to the anchor geometry (5 ports, 5-deep FIFOs).
    double depth_scale = params.bufferDepthFlits / 5.0;
    double port_scale = params.ports / 5.0;
    return PER_VC_MM2 * params.vcsPerPort * depth_scale * port_scale;
}

double
AreaModel::crossbarAreaMm2(const RouterPhysParams &params)
{
    double w = static_cast<double>(params.datapathBits);
    double radix_scale = (params.ports / 5.0) * (params.ports / 5.0);
    return PER_XBAR_BIT2_MM2 * w * w * radix_scale;
}

double
AreaModel::fixedAreaMm2()
{
    return FIXED_MM2;
}

double
AreaModel::areaMm2(const RouterPhysParams &params)
{
    return fixedAreaMm2() + bufferAreaMm2(params) + crossbarAreaMm2(params);
}

} // namespace hnoc
