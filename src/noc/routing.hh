/**
 * @file
 * Routing algorithms: deterministic X-Y (mesh), wrap-aware X-Y with
 * dateline VC classes (torus), dimension-order for the flattened
 * butterfly, and table-based routing through big routers with an X-Y
 * escape layer (case study II, §7).
 */

#ifndef HNOC_NOC_ROUTING_HH
#define HNOC_NOC_ROUTING_HH

#include <memory>
#include <vector>

#include "noc/flit.hh"
#include "noc/network_config.hh"
#include "noc/topology.hh"

namespace hnoc
{

/**
 * A routing algorithm maps (current router, packet) to an output port
 * and an admissible VC range at that output. Stateless with respect to
 * the packet except for fields stored in Packet itself (escaped flag).
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Factory: picks the algorithm for @p config / @p topo. */
    static std::unique_ptr<RoutingAlgorithm>
    create(const NetworkConfig &config, const Topology &topo);

    /**
     * @return the output port for @p pkt at router @p r (the local port
     * of the destination when @p r is the destination router).
     */
    virtual PortId outputPort(RouterId r, const Packet &pkt) const = 0;

    /**
     * Admissible VC range [lo, hi] on @p out for @p pkt, given the
     * downstream VC count @p down_vcs. Defaults to all VCs.
     */
    virtual void
    vcBounds(RouterId r, PortId out, const Packet &pkt, int down_vcs,
             VcId &lo, VcId &hi) const
    {
        (void)r;
        (void)out;
        (void)pkt;
        lo = 0;
        hi = down_vcs - 1;
    }

    /**
     * @return true when @p pkt may fall back to the X-Y escape layer if
     * its head stalls (table-routed packets only).
     */
    virtual bool
    hasEscape(const Packet &pkt) const
    {
        (void)pkt;
        return false;
    }

    /** @return the router sequence @p src's packets traverse to @p dst. */
    virtual std::vector<RouterId> path(NodeId src, NodeId dst) const;

  protected:
    RoutingAlgorithm(const NetworkConfig &config, const Topology &topo)
        : config_(config), topo_(topo)
    {}

    const NetworkConfig &config_;
    const Topology &topo_;
};

/** Deterministic dimension-order X-Y routing on a grid. */
class XYRouting : public RoutingAlgorithm
{
  public:
    XYRouting(const NetworkConfig &config, const Topology &topo)
        : RoutingAlgorithm(config, topo)
    {}

    PortId outputPort(RouterId r, const Packet &pkt) const override;
};

/** Deterministic dimension-order Y-X routing (column first). */
class YXRouting : public RoutingAlgorithm
{
  public:
    YXRouting(const NetworkConfig &config, const Topology &topo)
        : RoutingAlgorithm(config, topo)
    {}

    PortId outputPort(RouterId r, const Packet &pkt) const override;
};

/**
 * O1TURN (Seo et al.): each packet routes X-Y or Y-X, chosen at
 * injection; the two dimension orders use disjoint VC classes (lower
 * half X-Y, upper half Y-X), which keeps each class deadlock-free.
 * Near-optimal worst-case throughput on a mesh.
 */
class O1TurnRouting : public RoutingAlgorithm
{
  public:
    O1TurnRouting(const NetworkConfig &config, const Topology &topo);

    PortId outputPort(RouterId r, const Packet &pkt) const override;

    void vcBounds(RouterId r, PortId out, const Packet &pkt, int down_vcs,
                  VcId &lo, VcId &hi) const override;

  private:
    XYRouting xy_;
    YXRouting yx_;
};

/** Wrap-aware X-Y on a torus with dateline VC classes. */
class TorusXYRouting : public RoutingAlgorithm
{
  public:
    TorusXYRouting(const NetworkConfig &config, const Topology &topo);

    PortId outputPort(RouterId r, const Packet &pkt) const override;

    void vcBounds(RouterId r, PortId out, const Packet &pkt, int down_vcs,
                  VcId &lo, VcId &hi) const override;

    std::vector<RouterId> path(NodeId src, NodeId dst) const override;

  private:
    /** Shortest direction (+1/-1, wrap aware) from @p from to @p to. */
    static int shortestDir(int from, int to, int k);
};

/** Dimension-order (row then column) routing on a flattened butterfly. */
class FlatFlyRouting : public RoutingAlgorithm
{
  public:
    FlatFlyRouting(const NetworkConfig &config, const Topology &topo)
        : RoutingAlgorithm(config, topo)
    {}

    PortId outputPort(RouterId r, const Packet &pkt) const override;

    std::vector<RouterId> path(NodeId src, NodeId dst) const override;
};

/**
 * Table-based routing for traffic to/from designated nodes (the large
 * cores of case study II), maximizing big-router usage via weighted
 * shortest paths; everything else, and escaped packets, use X-Y.
 * VC 0 is the escape layer: table-routed packets are confined to
 * VCs >= 1 until they escape.
 */
class TableXYRouting : public RoutingAlgorithm
{
  public:
    TableXYRouting(const NetworkConfig &config, const Topology &topo);

    PortId outputPort(RouterId r, const Packet &pkt) const override;

    void vcBounds(RouterId r, PortId out, const Packet &pkt, int down_vcs,
                  VcId &lo, VcId &hi) const override;

    bool
    hasEscape(const Packet &pkt) const override
    {
        return pkt.tableRouted && !pkt.escaped;
    }

    /** X-Y port used by the escape layer. */
    PortId escapePort(RouterId r, const Packet &pkt) const;

    std::vector<RouterId> path(NodeId src, NodeId dst) const override;

    /** @return true when node @p n is table-routed (a large core). */
    bool isTableNode(NodeId n) const;

  private:
    /** Build per-destination next-hop tables via weighted Dijkstra. */
    void buildTables();

    /** Dijkstra next-hop tree toward @p dst_router. */
    std::vector<PortId> towardTree(RouterId dst_router) const;

    XYRouting xy_;
    /** tableToward_[i][r] = port at router r toward special table dst i;
     *  used when the packet's src or dst is a table node (the weighted
     *  tree toward any destination router). Indexed [dstRouter][router].
     */
    std::vector<std::vector<PortId>> toward_;
    std::vector<bool> isTableNode_;
};

} // namespace hnoc

#endif // HNOC_NOC_ROUTING_HH
