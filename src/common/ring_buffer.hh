/**
 * @file
 * Fixed-capacity ring buffer for hot-path FIFOs.
 *
 * The NoC hot path (VC FIFOs, channel flit/credit pipes, NI source
 * queues) used std::deque, which allocates chunk-wise as it grows.
 * RingBuffer allocates its backing store once — sized from config
 * (VC depth, channel latency) — so the steady-state simulation loop
 * performs zero heap allocations. Capacity is rounded up to a power
 * of two for mask indexing.
 *
 * Two overflow policies, chosen at construction:
 *  - fixed (default): push_back on a full ring is a fatal error. Used
 *    where an exact occupancy bound exists (credit-clamped VC FIFOs,
 *    delay-bounded channel pipes) — overflow means a protocol bug.
 *  - growable: capacity doubles, retaining the storage afterwards (a
 *    pooled backing store). Used by the NI source queue, which is
 *    unbounded by design (the client regulates admission).
 */

#ifndef HNOC_COMMON_RING_BUFFER_HH
#define HNOC_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <memory>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hnoc
{

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    explicit RingBuffer(std::size_t capacity, bool growable = false)
    {
        reset(capacity, growable);
    }

    /** (Re)size to hold at least @p capacity elements; drops contents. */
    void
    reset(std::size_t capacity, bool growable = false)
    {
        cap_ = roundUpPow2(capacity < 1 ? 1 : capacity);
        buf_ = std::make_unique<T[]>(cap_);
        ptr_ = buf_.get();
        head_ = 0;
        count_ = 0;
        growable_ = growable;
    }

    /** Round up to the capacity reset(@p capacity) would allocate. */
    static std::size_t
    boundCapacity(std::size_t capacity)
    {
        return roundUpPow2(capacity < 1 ? 1 : capacity);
    }

    /**
     * Bind to caller-owned storage of exactly boundCapacity(@p
     * capacity) slots (drops contents; the buffer becomes
     * fixed-capacity). The storage must outlive this buffer and never
     * move — used to pack many FIFOs into one contiguous hot
     * allocation (§6g).
     */
    void
    bindStorage(T *storage, std::size_t capacity)
    {
        buf_.reset();
        ptr_ = storage;
        cap_ = boundCapacity(capacity);
        head_ = 0;
        count_ = 0;
        growable_ = false;
    }

    /**
     * Move the live contents into caller-owned @p storage of the same
     * capacity (elements keep their ring positions, so head/count are
     * preserved) and bind to it; the previously owned storage is
     * released and the buffer becomes fixed-capacity.
     */
    void
    moveStorageTo(T *storage)
    {
        for (std::size_t i = 0; i < count_; ++i) {
            std::size_t s = (head_ + i) & (cap_ - 1);
            storage[s] = std::move(ptr_[s]);
        }
        buf_.reset();
        ptr_ = storage;
        growable_ = false;
    }

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == cap_; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return cap_; }

    void
    push_back(const T &v)
    {
        if (count_ == cap_) {
            if (!growable_)
                fatal("ring buffer overflow (fixed capacity %zu)", cap_);
            grow();
        }
        ptr_[(head_ + count_) & (cap_ - 1)] = v;
        ++count_;
    }

    T &
    front()
    {
        return ptr_[head_];
    }

    const T &
    front() const
    {
        return ptr_[head_];
    }

    /** Prefetch the front slot (safe on an empty buffer — the slot
     *  exists, it just holds no live element). */
    void
    prefetchFront() const
    {
        bitops::prefetch(ptr_ + head_);
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & (cap_ - 1);
        --count_;
    }

    /** @return the @p i-th element from the front (0 = front). */
    const T &
    operator[](std::size_t i) const
    {
        return ptr_[(head_ + i) & (cap_ - 1)];
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    void
    grow()
    {
        std::size_t new_cap = cap_ ? cap_ * 2 : 1;
        auto next = std::make_unique<T[]>(new_cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(ptr_[(head_ + i) & (cap_ - 1)]);
        buf_ = std::move(next);
        ptr_ = buf_.get();
        cap_ = new_cap;
        head_ = 0;
    }

    std::unique_ptr<T[]> buf_; ///< owned storage (null when bound)
    T *ptr_ = nullptr;         ///< element base (owned or bound)
    std::size_t cap_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    bool growable_ = false;
};

} // namespace hnoc

#endif // HNOC_COMMON_RING_BUFFER_HH
