/**
 * @file
 * hnoc_inspect: offline analysis of hnoc JSON artifacts.
 *
 * Loads `hnoc-run-report-v1` documents (sim_harness::writeRunReport /
 * hnoc_cli --json), `hnoc-postmortem-v1` dumps (watchdog trips,
 * Network::writePostmortem) and JSONL flit logs (TraceObserver), and
 * answers the questions that come up when a run looks wrong: how did
 * the points behave, which routers were congested, what changed
 * between two runs, and what was the pipeline doing when it stalled.
 * See docs/OBSERVABILITY.md for a walkthrough.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "telemetry/json_reader.hh"

using hnoc::JsonValue;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: hnoc_inspect <command> [options]\n"
        "\n"
        "commands:\n"
        "  summary <report.json>          per-point overview of a run "
        "report\n"
        "  top <report.json> [-k N]       top-N congested routers\n"
        "  heatmap <report.json> [-m buffer|link]\n"
        "                                 ASCII utilization heat map\n"
        "  diff <a.json> <b.json> [-t PCT] [--fail-over]\n"
        "                                 compare two run reports; "
        "deltas over\n"
        "                                 PCT%% are flagged (default "
        "5%%)\n"
        "  converge <report.json> [-t PCT]\n"
        "                                 stopping-rule analysis per "
        "point:\n"
        "                                 stop reason, cycles, CI "
        "trajectory,\n"
        "                                 offline warmup cutoff over "
        "the\n"
        "                                 telemetry epoch series "
        "(default\n"
        "                                 CI target 2%%)\n"
        "  profile <report.json> [--trace FILE]\n"
        "                                 simulator self-profile: "
        "per-phase\n"
        "                                 wall-clock attribution, "
        "per-block\n"
        "                                 timings and bytes streamed "
        "per cycle\n"
        "                                 (cache-blocked stepping), "
        "and\n"
        "                                 per-component memory "
        "footprints\n"
        "                                 (runs made with --profile); "
        "--trace\n"
        "                                 writes the phase spans as a "
        "Chrome-trace\n"
        "                                 JSON\n"
        "  blame <report.json> [--events DUMP.json] [--packet N]\n"
        "                                 stall-cause blame attribution "
        "of a\n"
        "                                 --blame run: cause "
        "decomposition,\n"
        "                                 percentile ladder, router/link "
        "class\n"
        "                                 split and worst packets; with\n"
        "                                 --events, replay one packet's\n"
        "                                 critical path cycle-by-cycle "
        "from an\n"
        "                                 hnoc-postmortem-v1 flight "
        "recorder\n"
        "                                 dump (--packet picks the id,\n"
        "                                 default: worst recorded "
        "packet)\n"
        "  postmortem <dump.json> [-n N]  summarize an "
        "hnoc-postmortem-v1 dump,\n"
        "                                 printing the last N recorder "
        "events\n"
        "  flitlog <trace.jsonl> [-k N]   statistics over a JSONL flit "
        "log\n");
    return 1;
}

/** Load one JSON document or exit(1) with a clear message. */
JsonValue
load(const std::string &path)
{
    JsonValue doc;
    std::string err;
    if (!hnoc::parseJsonFile(path, doc, &err)) {
        std::fprintf(stderr, "hnoc_inspect: %s\n", err.c_str());
        std::exit(1);
    }
    return doc;
}

void
requireSchema(const JsonValue &doc, const char *want,
              const std::string &path)
{
    std::string got = doc.strAt("schema");
    if (got != want) {
        std::fprintf(stderr,
                     "hnoc_inspect: %s: expected schema \"%s\", found "
                     "\"%s\"\n",
                     path.c_str(), want, got.c_str());
        std::exit(1);
    }
}

// ---------------------------------------------------------------- summary

int
cmdSummary(const std::string &path)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-run-report-v1", path);

    std::printf("%s: %s (%s)\n", doc.strAt("tool").c_str(),
                doc.strAt("title").c_str(), doc.strAt("schema").c_str());
    const auto &points = doc.arrayAt("points");
    std::printf("%zu point(s)\n\n", points.size());
    std::printf("%-24s %9s %9s %10s %10s %8s %5s\n", "label", "offered",
                "accepted", "avg ns", "p95 ns", "power W", "sat");
    for (const JsonValue &p : points) {
        std::printf("%-24s %9.4f %9.4f %10.1f %10.1f %8.3f %5s\n",
                    p.strAt("label").c_str(), p.numAt("offered_rate", 0),
                    p.numAt("accepted_rate", 0),
                    p.numAt("avg_latency_ns", 0),
                    p.numAt("p95_latency_ns", 0),
                    p.numAt("network_power_w", 0),
                    p.boolAt("saturated") ? "YES" : "no");
    }

    // Delivery accounting across all points.
    double created = 0;
    double delivered = 0;
    for (const JsonValue &p : points) {
        created += p.numAt("tracked_created", 0);
        delivered += p.numAt("tracked_delivered", 0);
    }
    std::printf("\ntracked packets: %.0f created, %.0f delivered\n",
                created, delivered);

    // Per-router arbitration health, derived from the merged telemetry
    // registry when the report carries one: SA grant rate (crossbar
    // grants per observed cycle), VA conflict rate, and the fraction
    // of switch requests lost to empty credit pools. High stall or
    // conflict rates with a low grant rate point at allocator
    // contention rather than link saturation.
    const JsonValue *merged = nullptr;
    if (const JsonValue *regs = doc.find("registries"))
        merged = regs->find("merged");
    const JsonValue *ctrs = merged ? merged->find("counters") : nullptr;
    double cycles = merged ? merged->numAt("observed_cycles", 0) : 0;
    if (ctrs && cycles > 0) {
        auto perRouter = [&](const char *name) -> std::vector<double> {
            if (const JsonValue *c = ctrs->find(name))
                return c->numbersAt("per_router");
            return {};
        };
        std::vector<double> grants = perRouter("xbar_grants");
        std::vector<double> stalls = perRouter("credit_stalls");
        std::vector<double> conflicts = perRouter("va_conflicts");
        if (!grants.empty()) {
            std::vector<int> order(grants.size());
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i] = static_cast<int>(i);
            std::stable_sort(order.begin(), order.end(),
                             [&](int a, int b) {
                                 return grants[static_cast<std::size_t>(
                                            a)] >
                                        grants[static_cast<std::size_t>(
                                            b)];
                             });
            int shown = std::min<int>(8, static_cast<int>(order.size()));
            std::printf("\narbitration rates over %.0f observed "
                        "cycles (top %d of %zu routers by SA grant "
                        "rate)\n",
                        cycles, shown, grants.size());
            std::printf("%6s %14s %14s %12s\n", "router", "sa gnt/cyc",
                        "va conf/cyc", "stall frac");
            for (int i = 0; i < shown; ++i) {
                auto r = static_cast<std::size_t>(
                    order[static_cast<std::size_t>(i)]);
                double g = grants[r];
                double s = r < stalls.size() ? stalls[r] : 0.0;
                double c = r < conflicts.size() ? conflicts[r] : 0.0;
                std::printf("%6zu %14.4f %14.4f %12.4f\n", r,
                            g / cycles, c / cycles,
                            g + s > 0 ? s / (g + s) : 0.0);
            }
        }
    }
    return 0;
}

// -------------------------------------------------------------------- top

/** Per-router utilization of a report: merged registry if present,
 *  else the first point's buffer_util_pct. */
std::vector<double>
routerUtil(const JsonValue &doc, const char *metric)
{
    std::string key = std::string(metric) + "_util_pct";
    if (const JsonValue *regs = doc.find("registries"))
        if (const JsonValue *merged = regs->find("merged"))
            if (const JsonValue *derived = merged->find("derived")) {
                std::vector<double> v = derived->numbersAt(key);
                if (!v.empty())
                    return v;
            }
    const auto &points = doc.arrayAt("points");
    if (!points.empty())
        return points.front().numbersAt(key);
    return {};
}

int
gridCols(const JsonValue &doc, std::size_t routers)
{
    if (const JsonValue *regs = doc.find("registries"))
        if (const JsonValue *merged = regs->find("merged"))
            if (const JsonValue *dims = merged->find("dims")) {
                int cols = static_cast<int>(dims->numAt("grid_cols", 0));
                if (cols > 0)
                    return cols;
            }
    int cols = 1;
    while (static_cast<std::size_t>(cols) * static_cast<std::size_t>(cols)
           < routers)
        ++cols;
    return cols;
}

int
cmdTop(const std::string &path, int k)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-run-report-v1", path);

    std::vector<double> buf = routerUtil(doc, "buffer");
    std::vector<double> link = routerUtil(doc, "link");
    if (buf.empty()) {
        std::fprintf(stderr,
                     "hnoc_inspect: %s carries no per-router "
                     "utilization data\n",
                     path.c_str());
        return 1;
    }
    std::vector<int> order(buf.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return buf[static_cast<std::size_t>(a)] >
               buf[static_cast<std::size_t>(b)];
    });

    std::printf("top %d congested routers (by buffer utilization)\n", k);
    std::printf("%6s %12s %12s\n", "router", "buffer %", "link %");
    for (int i = 0; i < k && i < static_cast<int>(order.size()); ++i) {
        auto r = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
        std::printf("%6zu %12.2f %12.2f\n", r, buf[r],
                    r < link.size() ? link[r] : 0.0);
    }
    return 0;
}

// ---------------------------------------------------------------- heatmap

int
cmdHeatmap(const std::string &path, const char *metric)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-run-report-v1", path);

    std::vector<double> util = routerUtil(doc, metric);
    if (util.empty()) {
        std::fprintf(stderr,
                     "hnoc_inspect: %s carries no per-router "
                     "utilization data\n",
                     path.c_str());
        return 1;
    }
    int cols = gridCols(doc, util.size());
    double peak = 0.0;
    for (double v : util)
        peak = std::max(peak, v);

    // Darker glyph = busier router; scale is relative to the peak.
    static const char kRamp[] = " .:-=+*#%@";
    const int levels = static_cast<int>(std::strlen(kRamp)) - 1;
    std::printf("%s utilization heat map (peak %.2f%%, '%c' = peak)\n",
                metric, peak, kRamp[levels]);
    for (std::size_t r = 0; r < util.size(); ++r) {
        int level =
            peak > 0.0
                ? static_cast<int>(std::lround(util[r] / peak * levels))
                : 0;
        std::printf(" %c", kRamp[std::clamp(level, 0, levels)]);
        if ((r + 1) % static_cast<std::size_t>(cols) == 0)
            std::printf("\n");
    }
    if (util.size() % static_cast<std::size_t>(cols) != 0)
        std::printf("\n");
    std::printf("\nrow-major, %d columns; values are percent of the "
                "busiest router\n",
                cols);
    return 0;
}

// ------------------------------------------------------------------- diff

struct DiffMetric
{
    const char *key;
    const char *label;
};

int
cmdDiff(const std::string &path_a, const std::string &path_b,
        double threshold_pct, bool fail_over)
{
    JsonValue a = load(path_a);
    JsonValue b = load(path_b);
    requireSchema(a, "hnoc-run-report-v1", path_a);
    requireSchema(b, "hnoc-run-report-v1", path_b);

    std::map<std::string, const JsonValue *> b_points;
    for (const JsonValue &p : b.arrayAt("points"))
        b_points[p.strAt("label")] = &p;

    static const DiffMetric kMetrics[] = {
        {"accepted_rate", "accepted"},
        {"avg_latency_ns", "avg ns"},
        {"p95_latency_ns", "p95 ns"},
        {"network_power_w", "power W"},
    };

    std::printf("diff: %s -> %s (flag over %.1f%%)\n\n", path_a.c_str(),
                path_b.c_str(), threshold_pct);
    std::printf("%-24s %-10s %12s %12s %9s\n", "label", "metric", "a",
                "b", "delta");
    int flagged = 0;
    int compared = 0;
    for (const JsonValue &pa : a.arrayAt("points")) {
        std::string label = pa.strAt("label");
        auto it = b_points.find(label);
        if (it == b_points.end()) {
            std::printf("%-24s only in %s\n", label.c_str(),
                        path_a.c_str());
            continue;
        }
        ++compared;
        for (const DiffMetric &m : kMetrics) {
            double va = pa.numAt(m.key, 0);
            double vb = it->second->numAt(m.key, 0);
            double pct = va != 0.0 ? 100.0 * (vb - va) / va
                                   : (vb != 0.0 ? 100.0 : 0.0);
            bool over = std::fabs(pct) > threshold_pct;
            if (over)
                ++flagged;
            std::printf("%-24s %-10s %12.4f %12.4f %+8.2f%%%s\n",
                        label.c_str(), m.label, va, vb, pct,
                        over ? "  <-- over threshold" : "");
        }
        b_points.erase(it);
    }
    for (const auto &[label, p] : b_points) {
        (void)p;
        std::printf("%-24s only in %s\n", label.c_str(), path_b.c_str());
    }

    // Blame-share drift, when both runs carried --blame data: a cause
    // whose share of total latency moved by more than the threshold
    // (in percentage points) marks a behavior change even when the
    // headline latency barely moved.
    const JsonValue *bla = a.find("latency_blame");
    const JsonValue *blb = b.find("latency_blame");
    const JsonValue *ca = bla ? bla->find("causes") : nullptr;
    const JsonValue *cb = blb ? blb->find("causes") : nullptr;
    if (ca && cb) {
        std::printf("\nblame share (%% of total latency)\n");
        std::printf("%-20s %10s %10s %9s\n", "cause", "a", "b",
                    "delta pp");
        for (const auto &[name, va] : ca->object) {
            const JsonValue *vb = cb->find(name);
            double sa = va.numAt("share_pct", 0);
            double sb = vb ? vb->numAt("share_pct", 0) : 0.0;
            bool over = std::fabs(sb - sa) > threshold_pct;
            if (over)
                ++flagged;
            std::printf("%-20s %9.2f%% %9.2f%% %+8.2f%s\n",
                        name.c_str(), sa, sb, sb - sa,
                        over ? "  <-- over threshold" : "");
        }
    }

    std::printf("\n%d point(s) compared, %d metric delta(s) over "
                "%.1f%%\n",
                compared, flagged, threshold_pct);
    return fail_over && flagged > 0 ? 2 : 0;
}

// --------------------------------------------------------------- converge

/** Per-epoch total of a per-router epoch series ("flits_routed"...). */
std::vector<double>
epochTotals(const JsonValue &epochs, const char *key)
{
    std::vector<double> out;
    for (const JsonValue &row : epochs.arrayAt(key)) {
        double total = 0.0;
        for (const JsonValue &v : row.array)
            if (v.isNumber())
                total += v.number;
        out.push_back(total);
    }
    return out;
}

int
cmdConverge(const std::string &path, double target_pct)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-run-report-v1", path);
    double target = target_pct / 100.0;

    if (const JsonValue *reasons = doc.find("stop_reasons")) {
        std::printf("stop reasons:");
        for (const auto &[name, n] : reasons->object)
            if (n.isNumber() && n.number > 0)
                std::printf("  %s=%.0f", name.c_str(), n.number);
        std::printf("\n\n");
    }

    std::printf("%-24s %-16s %10s %8s %8s\n", "label", "stop", "cycles",
                "CI %", "batches");
    for (const JsonValue &p : doc.arrayAt("points")) {
        std::vector<double> hist = p.numbersAt("ci_history");
        double ci = p.numAt("ci_rel_half_width", -1.0);
        std::string stop = p.strAt("stop_reason");
        if (stop.empty())
            stop = "-";
        char cibuf[16];
        if (ci >= 0.0)
            std::snprintf(cibuf, sizeof(cibuf), "%.2f", ci * 100.0);
        else
            std::snprintf(cibuf, sizeof(cibuf), "-");
        std::printf("%-24s %-16s %10.0f %8s %8zu\n",
                    p.strAt("label").c_str(), stop.c_str(),
                    p.numAt("simulated_cycles", 0), cibuf,
                    hist.size());
        // Batch at which the CI trajectory first crossed the target —
        // the would-have-stopped point for any target, not just the
        // one the run used.
        for (std::size_t i = 0; i < hist.size(); ++i) {
            if (hist[i] >= 0.0 && hist[i] <= target) {
                std::printf("%24s CI <= %.1f%% after batch %zu\n", "",
                            target_pct, i + 1);
                break;
            }
        }

        // Offline stopping-rule replay over the recorded telemetry
        // epoch series (same helpers the live controller uses).
        const JsonValue *tel = p.find("telemetry");
        const JsonValue *epochs = tel ? tel->find("epochs") : nullptr;
        if (!epochs)
            continue;
        std::vector<double> flits = epochTotals(*epochs, "flits_routed");
        if (flits.size() < 2)
            continue;
        int cut = hnoc::steadyEpochCutoff(flits, 0.05, 3);
        hnoc::EpochSeriesCi s = hnoc::epochSeriesCi(
            flits, cut > 0 ? static_cast<std::size_t>(cut) : 0);
        std::printf("%24s epochs: %zu, steady from %d, "
                    "mean flits/epoch %.0f, CI %.2f%%\n",
                    "", flits.size(), cut, s.mean,
                    std::isfinite(s.relHalfWidth)
                        ? s.relHalfWidth * 100.0
                        : -1.0);
    }
    return 0;
}

// ---------------------------------------------------------------- profile

/**
 * Render the `profile` section a --profile run attaches to its report:
 * the per-phase wall-clock table, the per-component memory table, and
 * (with --trace) the phase spans as a Chrome-trace JSON — one
 * synthetic "step" timeline whose slice widths are each phase's total
 * wall time, so Perfetto's flame view shows the attribution at a
 * glance.
 */
int
cmdProfile(const std::string &path, const std::string &trace_path)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-run-report-v1", path);

    const JsonValue *prof = doc.find("profile");
    if (!prof) {
        std::fprintf(stderr,
                     "hnoc_inspect: %s carries no profile section "
                     "(rerun with --profile)\n",
                     path.c_str());
        return 1;
    }

    const JsonValue *wall = prof->find("wall");
    if (wall) {
        double cycles = wall->numAt("cycles", 0);
        double total_ns = wall->numAt("step_total_ns", 0);
        double unattr_ns = wall->numAt("unattributed_ns", 0);
        std::printf("wall-clock attribution over %.0f cycles\n", cycles);
        std::printf("%-18s %14s %12s %7s\n", "phase", "wall ns",
                    "visits", "share");
        if (const JsonValue *phases = wall->find("phases")) {
            for (const auto &[name, p] : phases->object)
                std::printf("%-18s %14.0f %12.0f %6.1f%%\n",
                            name.c_str(), p.numAt("ns", 0),
                            p.numAt("visits", 0),
                            p.numAt("share_pct", 0));
        }
        std::printf("%-18s %14.0f %12s %6.1f%%\n", "(scan/overhead)",
                    unattr_ns, "",
                    total_ns > 0 ? 100.0 * unattr_ns / total_ns : 0.0);
        std::printf("%-18s %14.0f\n", "step_total", total_ns);
        if (cycles > 0)
            std::printf("%-18s %14.1f\n", "ns/cycle",
                        total_ns / cycles);

        // Per-block attribution from the cache-blocked step order
        // (§6g): wall time and touched-cycle count per spatial block,
        // each block's hot footprint, and the derived bytes the step
        // loop streams per simulated cycle.
        const JsonValue *blocks = wall->find("blocks");
        if (blocks && !blocks->array.empty()) {
            std::printf("\nper-block attribution (%zu blocks)\n",
                        blocks->array.size());
            std::printf("%-18s %14s %12s %12s %7s\n", "block",
                        "wall ns", "visits", "hot bytes", "share");
            for (std::size_t b = 0; b < blocks->array.size(); ++b) {
                const JsonValue &blk = blocks->array[b];
                char name[32];
                std::snprintf(name, sizeof(name), "block[%zu]", b);
                std::printf("%-18s %14.0f %12.0f %12.0f %6.1f%%\n",
                            name, blk.numAt("ns", 0),
                            blk.numAt("visits", 0),
                            blk.numAt("hot_bytes", 0),
                            blk.numAt("share_pct", 0));
            }
            std::printf("%-18s %14.1f\n", "bytes/cycle",
                        wall->numAt("bytes_streamed_per_cycle", 0));
        }
    }

    if (const JsonValue *mem = prof->find("memory")) {
        double tiles = mem->numAt("tiles", 0);
        std::printf("\nmemory audit (%.0f tiles)\n", tiles);
        std::printf("%-22s %12s %8s %12s\n", "component", "bytes",
                    "count", "bytes/tile");
        for (const JsonValue &c : mem->arrayAt("components"))
            std::printf("%-22s %12.0f %8.0f %12.1f\n",
                        c.strAt("name").c_str(), c.numAt("bytes", 0),
                        c.numAt("count", 0),
                        c.numAt("bytes_per_tile", 0));
        std::printf("%-22s %12.0f %8s %12.1f\n", "total",
                    mem->numAt("total_bytes", 0), "",
                    mem->numAt("bytes_per_tile", 0));
    }

    if (!trace_path.empty() && wall) {
        std::FILE *f = std::fopen(trace_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "hnoc_inspect: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        // Sequential X slices (1 ns wall = 1 ns trace), attributed
        // phases first, residual last.
        std::fprintf(f, "{\"traceEvents\":[\n");
        double ts = 0.0;
        bool first = true;
        auto slice = [&](const std::string &name, double ns) {
            if (ns <= 0)
                return;
            std::fprintf(f,
                         "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                         "\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,"
                         "\"cat\":\"profile\"}",
                         first ? "" : ",\n", name.c_str(), ts / 1000.0,
                         ns / 1000.0);
            first = false;
            ts += ns;
        };
        if (const JsonValue *phases = wall->find("phases"))
            for (const auto &[name, p] : phases->object)
                slice(name, p.numAt("ns", 0));
        slice("(scan/overhead)", wall->numAt("unattributed_ns", 0));
        std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
        std::fclose(f);
        std::printf("\nphase trace: %s (open in chrome://tracing or "
                    "Perfetto)\n",
                    trace_path.c_str());
    }
    return 0;
}

// ------------------------------------------------------------------ blame

/** Largest entry of a tail_mean_blame / by_cause object, skipping the
 *  zero-load min terms. @return pointer to the winning pair or null. */
const std::pair<std::string, JsonValue> *
topStall(const JsonValue &blame)
{
    const std::pair<std::string, JsonValue> *best = nullptr;
    for (const auto &kv : blame.object) {
        if (kv.first == "min_head_latency" ||
            kv.first == "min_serialization")
            continue;
        if (!kv.second.isNumber())
            continue;
        if (!best || kv.second.number > best->second.number)
            best = &kv;
    }
    return best;
}

int
cmdBlame(const std::string &path, const std::string &events_path,
         double packet_sel)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-run-report-v1", path);

    const JsonValue *bl = doc.find("latency_blame");
    if (!bl) {
        std::fprintf(stderr,
                     "hnoc_inspect: %s carries no latency_blame "
                     "section (rerun with --blame)\n",
                     path.c_str());
        return 1;
    }

    double packets = bl->numAt("packets", 0);
    std::printf("latency blame: %.0f packet(s), mean %.2f cyc, %.0f "
                "identity violation(s)\n",
                packets, bl->numAt("mean_latency_cycles", 0),
                bl->numAt("identity_violations", 0));

    if (const JsonValue *causes = bl->find("causes")) {
        std::printf("\n%-20s %14s %8s %10s\n", "cause", "cycles",
                    "share", "per-pkt");
        for (const auto &[name, c] : causes->object)
            std::printf("%-20s %14.0f %7.2f%% %10.3f\n", name.c_str(),
                        c.numAt("cycles", 0), c.numAt("share_pct", 0),
                        c.numAt("per_packet", 0));
    }

    if (const JsonValue *rungs = bl->find("percentiles")) {
        std::printf("\npercentile ladder (tail-mean blame)\n");
        for (const JsonValue &r : rungs->array) {
            std::printf("  p%-5g >= %5.0f cyc: %8.0f pkts, mean %8.1f",
                        r.numAt("percentile", 0),
                        r.numAt("latency_cycles", 0),
                        r.numAt("tail_packets", 0),
                        r.numAt("tail_mean_latency", 0));
            if (const JsonValue *tm = r.find("tail_mean_blame"))
                if (const auto *best = topStall(*tm))
                    std::printf(", top stall %s %.1f",
                                best->first.c_str(),
                                best->second.number);
            std::printf("\n");
        }
    }

    if (const JsonValue *classes = bl->find("classes")) {
        std::printf("\nrouter class x link class split\n");
        std::printf("%-7s %-7s %14s  %s\n", "router", "link", "cycles",
                    "top cause");
        for (const JsonValue &c : classes->array) {
            std::printf("%-7s %-7s %14.0f", c.strAt("router_class").c_str(),
                        c.strAt("link_class").c_str(),
                        c.numAt("cycles", 0));
            if (const JsonValue *by = c.find("by_cause"))
                if (const auto *best = topStall(*by))
                    std::printf("  %s %.0f", best->first.c_str(),
                                best->second.number);
            std::printf("\n");
        }
    }

    const JsonValue *worst = bl->find("worst_packets");
    if (worst && !worst->array.empty()) {
        std::printf("\nworst packets\n");
        std::printf("%10s %5s %5s %9s %8s %8s  %s\n", "id", "src",
                    "dst", "latency", "min hd", "min ser", "top stall");
        for (const JsonValue &p : worst->array) {
            std::printf("%10.0f %5.0f %5.0f %9.0f %8.0f %8.0f",
                        p.numAt("id", 0), p.numAt("src", 0),
                        p.numAt("dst", 0), p.numAt("latency_cycles", 0),
                        p.numAt("min_head_latency", 0),
                        p.numAt("min_serialization", 0));
            if (const JsonValue *b = p.find("blame"))
                if (const auto *best = topStall(*b))
                    std::printf("  %s %.0f", best->first.c_str(),
                                best->second.number);
            std::printf("\n");
        }
    }

    if (events_path.empty())
        return 0;

    // Critical-path replay: walk one packet's flight-recorder events
    // in time order, printing the per-hop gaps that make up its
    // latency. The recorder is a ring buffer, so only the recent
    // window of the run is available.
    JsonValue dump = load(events_path);
    requireSchema(dump, "hnoc-postmortem-v1", events_path);
    const JsonValue *fr = dump.find("flight_recorder");
    if (!fr) {
        std::fprintf(stderr,
                     "hnoc_inspect: %s carries no flight recorder "
                     "(rerun with --postmortem)\n",
                     events_path.c_str());
        return 1;
    }
    const auto &events = fr->arrayAt("events");

    // Pick the packet: --packet wins; otherwise prefer the worst
    // report packet that the recorder window still holds; otherwise
    // the packet with the most recorded events.
    std::map<double, std::uint64_t> counts;
    for (const JsonValue &e : events)
        if (e.find("pkt"))
            ++counts[e.numAt("pkt", -1)];
    double pkt = packet_sel;
    if (pkt < 0 && worst) {
        for (const JsonValue &p : worst->array) {
            double id = p.numAt("id", -1);
            if (counts.count(id)) {
                pkt = id;
                break;
            }
        }
    }
    if (pkt < 0) {
        std::uint64_t best_n = 0;
        for (const auto &[id, n] : counts)
            if (n > best_n) {
                best_n = n;
                pkt = id;
            }
    }
    if (pkt < 0 || !counts.count(pkt)) {
        std::fprintf(stderr,
                     "hnoc_inspect: packet %.0f not in the recorder "
                     "window of %s\n",
                     pkt, events_path.c_str());
        return 1;
    }

    std::printf("\ncritical-path replay: packet %.0f (%llu recorded "
                "event(s))\n",
                pkt, static_cast<unsigned long long>(counts[pkt]));
    double prev_t = -1.0;
    for (const JsonValue &e : events) {
        if (!e.find("pkt") || e.numAt("pkt", -1) != pkt)
            continue;
        double t = e.numAt("t", 0);
        std::printf("  t=%-8.0f", t);
        if (prev_t >= 0 && t > prev_t)
            std::printf(" (+%-5.0f)", t - prev_t);
        else
            std::printf("         ");
        std::printf(" %-12s r=%-3.0f p=%-2.0f vc=%-2.0f%s\n",
                    e.strAt("ev").c_str(), e.numAt("r", 0),
                    e.numAt("p", 0), e.numAt("vc", 0),
                    e.boolAt("head") ? " head" : "");
        prev_t = t;
    }
    return 0;
}

// ------------------------------------------------------------- postmortem

int
cmdPostmortem(const std::string &path, int tail)
{
    JsonValue doc = load(path);
    requireSchema(doc, "hnoc-postmortem-v1", path);

    std::printf("postmortem: %s (%s)\n", doc.strAt("reason").c_str(),
                doc.strAt("schema").c_str());
    std::printf("cycle %.0f | injected %.0f | delivered %.0f | in "
                "flight %.0f | queued %.0f\n",
                doc.numAt("cycle", 0), doc.numAt("packets_injected", 0),
                doc.numAt("packets_delivered", 0),
                doc.numAt("packets_in_flight", 0),
                doc.numAt("source_queue_depth", 0));
    std::printf("last delivery at cycle %.0f\n",
                doc.numAt("last_delivery_cycle", 0));
    if (const JsonValue *cfg = doc.find("config"))
        std::printf("config: %s, %.0f routers x %.0f ports, buffer "
                    "depth %.0f\n",
                    cfg->strAt("topology").c_str(),
                    cfg->numAt("routers", 0), cfg->numAt("ports", 0),
                    cfg->numAt("buffer_depth", 0));

    if (const JsonValue *cons = doc.find("conservation")) {
        if (cons->boolAt("ok"))
            std::printf("conservation audit: OK\n");
        else
            std::printf("conservation audit: FAILED — %s\n",
                        cons->strAt("error").c_str());
    }

    // Routers still holding flits, busiest first.
    std::vector<std::pair<double, const JsonValue *>> stuck;
    for (const JsonValue &r : doc.arrayAt("routers")) {
        double occ = r.numAt("occupancy", 0);
        if (occ > 0)
            stuck.emplace_back(occ, &r);
    }
    std::stable_sort(stuck.begin(), stuck.end(),
                     [](const auto &x, const auto &y) {
                         return x.first > y.first;
                     });
    std::printf("\n%zu router(s) holding flits:\n", stuck.size());
    for (const auto &[occ, r] : stuck) {
        std::printf("  router %.0f: %.0f flit(s)\n", r->numAt("id", 0),
                    occ);
        for (const JsonValue &vc : r->arrayAt("input_vcs")) {
            if (vc.numAt("occupancy", 0) == 0)
                continue;
            std::printf("    in port %.0f vc %.0f: %.0f flit(s), "
                        "%s, out port %.0f vc %.0f, head since "
                        "cycle %.0f, pkt %.0f\n",
                        vc.numAt("port", 0), vc.numAt("vc", 0),
                        vc.numAt("occupancy", 0),
                        vc.boolAt("active") ? "routed" : "awaiting RC",
                        vc.numAt("out_port", 0), vc.numAt("out_vc", 0),
                        vc.numAt("head_since", 0), vc.numAt("pkt", 0));
        }
    }

    const auto &queues = doc.arrayAt("source_queues");
    if (!queues.empty()) {
        std::printf("\nnon-empty source queues:\n");
        for (const JsonValue &q : queues)
            std::printf("  node %.0f: %.0f packet(s)\n",
                        q.numAt("node", 0), q.numAt("depth", 0));
    }

    if (const JsonValue *fr = doc.find("flight_recorder")) {
        const auto &events = fr->arrayAt("events");
        std::printf("\nflight recorder: %.0f recorded, %.0f "
                    "overwritten, %zu held\n",
                    fr->numAt("recorded", 0), fr->numAt("overwritten", 0),
                    events.size());
        std::size_t start =
            events.size() > static_cast<std::size_t>(tail)
                ? events.size() - static_cast<std::size_t>(tail)
                : 0;
        if (start > 0)
            std::printf("(showing last %d)\n", tail);
        for (std::size_t i = start; i < events.size(); ++i) {
            const JsonValue &e = events[i];
            std::printf("  t=%-8.0f %-12s r=%-3.0f p=%-2.0f vc=%-2.0f",
                        e.numAt("t", 0), e.strAt("ev").c_str(),
                        e.numAt("r", 0), e.numAt("p", 0),
                        e.numAt("vc", 0));
            if (e.find("pkt"))
                std::printf(" pkt=%.0f", e.numAt("pkt", 0));
            if (e.boolAt("head"))
                std::printf(" head");
            std::printf("\n");
        }
    } else {
        std::printf("\n(no flight recorder attached at dump time)\n");
    }
    return 0;
}

// ---------------------------------------------------------------- flitlog

int
cmdFlitlog(const std::string &path, int k)
{
    std::vector<JsonValue> events;
    std::string err;
    if (!hnoc::parseJsonLinesFile(path, events, &err)) {
        std::fprintf(stderr, "hnoc_inspect: %s\n", err.c_str());
        return 1;
    }
    if (events.empty()) {
        std::printf("%s: empty flit log\n", path.c_str());
        return 0;
    }

    double t_min = 0.0;
    double t_max = 0.0;
    bool first = true;
    std::map<int, std::uint64_t> arrivals;
    std::map<std::string, std::uint64_t> kinds;
    for (const JsonValue &e : events) {
        double t = e.numAt("t", 0);
        if (first || t < t_min)
            t_min = t;
        if (first || t > t_max)
            t_max = t;
        first = false;
        ++kinds[e.strAt("ev")];
        if (e.strAt("ev") == "arr")
            ++arrivals[static_cast<int>(e.numAt("r", -1))];
    }

    std::printf("%zu event(s) over cycles %.0f..%.0f\n", events.size(),
                t_min, t_max);
    for (const auto &[kind, n] : kinds)
        std::printf("  %-6s %llu\n", kind.c_str(),
                    static_cast<unsigned long long>(n));

    std::vector<std::pair<std::uint64_t, int>> busy;
    for (const auto &[r, n] : arrivals)
        busy.emplace_back(n, r);
    std::stable_sort(busy.begin(), busy.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    std::printf("top %d routers by flit arrivals:\n", k);
    for (int i = 0; i < k && i < static_cast<int>(busy.size()); ++i)
        std::printf("  router %-3d %llu\n", busy[static_cast<std::size_t>(i)].second,
                    static_cast<unsigned long long>(
                        busy[static_cast<std::size_t>(i)].first));
    return 0;
}

/** Parse "-k N" style int option at argv[i]; advances i. */
bool
intOpt(int argc, char **argv, int &i, const char *name, int &out)
{
    if (std::strcmp(argv[i], name) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "hnoc_inspect: %s needs a value\n", name);
        std::exit(1);
    }
    out = std::atoi(argv[++i]);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "summary") {
        if (argc < 3)
            return usage();
        return cmdSummary(argv[2]);
    }
    if (cmd == "top") {
        if (argc < 3)
            return usage();
        int k = 5;
        for (int i = 3; i < argc; ++i)
            if (!intOpt(argc, argv, i, "-k", k))
                return usage();
        return cmdTop(argv[2], k);
    }
    if (cmd == "heatmap") {
        if (argc < 3)
            return usage();
        const char *metric = "buffer";
        for (int i = 3; i < argc; ++i) {
            if (std::strcmp(argv[i], "-m") == 0 && i + 1 < argc) {
                metric = argv[++i];
            } else {
                return usage();
            }
        }
        if (std::strcmp(metric, "buffer") != 0 &&
            std::strcmp(metric, "link") != 0) {
            std::fprintf(stderr,
                         "hnoc_inspect: -m takes buffer or link\n");
            return 1;
        }
        return cmdHeatmap(argv[2], metric);
    }
    if (cmd == "diff") {
        if (argc < 4)
            return usage();
        double threshold = 5.0;
        bool fail_over = false;
        for (int i = 4; i < argc; ++i) {
            if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
                threshold = std::atof(argv[++i]);
            } else if (std::strcmp(argv[i], "--fail-over") == 0) {
                fail_over = true;
            } else {
                return usage();
            }
        }
        return cmdDiff(argv[2], argv[3], threshold, fail_over);
    }
    if (cmd == "converge") {
        if (argc < 3)
            return usage();
        double target = 2.0;
        for (int i = 3; i < argc; ++i) {
            if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
                target = std::atof(argv[++i]);
            } else {
                return usage();
            }
        }
        return cmdConverge(argv[2], target);
    }
    if (cmd == "profile") {
        if (argc < 3)
            return usage();
        std::string trace_path;
        for (int i = 3; i < argc; ++i) {
            if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
                trace_path = argv[++i];
            } else {
                return usage();
            }
        }
        return cmdProfile(argv[2], trace_path);
    }
    if (cmd == "blame") {
        if (argc < 3)
            return usage();
        std::string events_path;
        double packet = -1.0;
        for (int i = 3; i < argc; ++i) {
            if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
                events_path = argv[++i];
            } else if (std::strcmp(argv[i], "--packet") == 0 &&
                       i + 1 < argc) {
                packet = std::atof(argv[++i]);
            } else {
                return usage();
            }
        }
        return cmdBlame(argv[2], events_path, packet);
    }
    if (cmd == "postmortem") {
        if (argc < 3)
            return usage();
        int tail = 32;
        for (int i = 3; i < argc; ++i)
            if (!intOpt(argc, argv, i, "-n", tail))
                return usage();
        return cmdPostmortem(argv[2], tail);
    }
    if (cmd == "flitlog") {
        if (argc < 3)
            return usage();
        int k = 5;
        for (int i = 3; i < argc; ++i)
            if (!intOpt(argc, argv, i, "-k", k))
                return usage();
        return cmdFlitlog(argv[2], k);
    }
    std::fprintf(stderr, "hnoc_inspect: unknown command \"%s\"\n",
                 cmd.c_str());
    return usage();
}
