/**
 * @file
 * Failure-injection and misuse tests: the simulator must fail loudly
 * (panic/fatal) on invariant violations and invalid configuration
 * instead of silently corrupting results.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(FailureModes, InvalidEndpointsPanic)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    EXPECT_DEATH(net.enqueuePacket(0, 64, 6), "invalid endpoints");
    EXPECT_DEATH(net.enqueuePacket(-1, 3, 6), "invalid endpoints");
    EXPECT_DEATH(net.enqueuePacket(5, 5, 6), "src == dst");
}

TEST(FailureModes, MisSizedOverridesFatal)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.routerVcs.assign(10, 3); // wrong size for 64 routers
    EXPECT_DEATH({ Network net(cfg); }, "routerVcs size");

    NetworkConfig cfg2 = makeLayoutConfig(LayoutKind::Baseline);
    cfg2.routerWidthBits.assign(3, 192);
    EXPECT_DEATH({ Network net2(cfg2); }, "routerWidthBits size");
}

TEST(FailureModes, TorusWithOneVcFatal)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.topology = TopologyType::Torus;
    cfg.defaultVcs = 1;
    EXPECT_DEATH({ Network net(cfg); }, "dateline");
}

TEST(FailureModes, O1TurnWithOneVcFatal)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.routing = RoutingMode::O1Turn;
    cfg.defaultVcs = 1;
    EXPECT_DEATH({ Network net(cfg); }, "O1TURN");
}

TEST(FailureModes, UnknownWorkloadFatal)
{
    EXPECT_DEATH((void)workloadByName("no-such-benchmark"),
                 "unknown workload");
}

TEST(FailureModes, BadHeteroMaskFatal)
{
    std::vector<bool> mask(10, false); // wrong size for radix 8
    EXPECT_DEATH((void)makeHeteroConfig(mask, true, 8), "mask size");
}

TEST(FailureModes, InvalidTableNodeFatal)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.routing = RoutingMode::TableXY;
    cfg.tableRoutedNodes = {999};
    EXPECT_DEATH({ Network net(cfg); }, "invalid node");
}

TEST(FailureModes, O1TurnBalancesAndDrains)
{
    // Positive control for the new mode: both dimension orders in
    // play, everything delivered.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.routing = RoutingMode::O1Turn;
    Network net(cfg);
    std::uint64_t injected = 0;
    for (int round = 0; round < 30; ++round) {
        for (NodeId n = 0; n < 64; ++n) {
            net.enqueuePacket(n, 63 - n, cfg.dataPacketFlits());
            ++injected;
        }
        net.run(60);
    }
    Cycle guard = 60000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsDelivered(), injected);
}

TEST(FailureModes, O1TurnUsesBothOrders)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.routing = RoutingMode::O1Turn;
    Network net(cfg);
    Packet probe;
    probe.src = 0;
    probe.dst = 63;
    probe.yxRouted = false;
    EXPECT_EQ(net.routing().outputPort(0, probe), mesh_ports::EAST);
    probe.yxRouted = true;
    EXPECT_EQ(net.routing().outputPort(0, probe), mesh_ports::SOUTH);

    VcId lo;
    VcId hi;
    net.routing().vcBounds(0, mesh_ports::EAST, probe, 3, lo, hi);
    EXPECT_EQ(lo, 2); // Y-X class = upper VCs
    probe.yxRouted = false;
    net.routing().vcBounds(0, mesh_ports::EAST, probe, 3, lo, hi);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 1);
}

} // namespace
} // namespace hnoc
