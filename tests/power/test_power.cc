/**
 * @file
 * Power/area/frequency model tests: Table 1 anchors must hold exactly
 * and the scaling laws must behave physically.
 */

#include <gtest/gtest.h>

#include "power/area_model.hh"
#include "power/frequency_model.hh"
#include "power/router_power.hh"

namespace hnoc
{
namespace
{

TEST(FrequencyModel, Table1Anchors)
{
    EXPECT_NEAR(FrequencyModel::frequencyGHz(2), 2.25, 1e-9);
    EXPECT_NEAR(FrequencyModel::frequencyGHz(3), 2.20, 1e-9);
    EXPECT_NEAR(FrequencyModel::frequencyGHz(6), 2.07, 1e-9);
}

TEST(FrequencyModel, MonotoneDecreasingInVcs)
{
    double prev = FrequencyModel::frequencyGHz(2);
    for (int v = 3; v <= 8; ++v) {
        double f = FrequencyModel::frequencyGHz(v);
        EXPECT_LT(f, prev) << v << " VCs";
        prev = f;
    }
}

TEST(FrequencyModel, WorstCaseRule)
{
    EXPECT_DOUBLE_EQ(FrequencyModel::networkFrequencyGHz(6),
                     FrequencyModel::frequencyGHz(6));
}

TEST(AreaModel, Table1Anchors)
{
    EXPECT_NEAR(AreaModel::areaMm2(router_types::BASELINE), 0.290, 1e-3);
    EXPECT_NEAR(AreaModel::areaMm2(router_types::SMALL), 0.235, 1e-3);
    EXPECT_NEAR(AreaModel::areaMm2(router_types::BIG), 0.425, 1e-3);
}

TEST(AreaModel, PaperDeltas)
{
    // §3.5: big +46 %, small -18 % vs baseline.
    double base = AreaModel::areaMm2(router_types::BASELINE);
    EXPECT_NEAR(AreaModel::areaMm2(router_types::BIG) / base, 1.46, 0.02);
    EXPECT_NEAR(AreaModel::areaMm2(router_types::SMALL) / base, 0.82,
                0.02);
}

TEST(AreaModel, GrowsWithProvisioning)
{
    RouterPhysParams more_vcs = router_types::BASELINE;
    more_vcs.vcsPerPort = 5;
    EXPECT_GT(AreaModel::areaMm2(more_vcs),
              AreaModel::areaMm2(router_types::BASELINE));

    RouterPhysParams wider = router_types::BASELINE;
    wider.datapathBits = 256;
    EXPECT_GT(AreaModel::areaMm2(wider),
              AreaModel::areaMm2(router_types::BASELINE));
}

class PowerAnchors
    : public ::testing::TestWithParam<std::pair<RouterPhysParams, double>>
{};

TEST_P(PowerAnchors, FiftyPercentActivityMatchesTable1)
{
    auto [params, watts] = GetParam();
    auto model = RouterPowerModel::calibrated(
        params, FrequencyModel::frequencyGHz(params));
    EXPECT_NEAR(model.powerAtActivity(0.5).total(), watts, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PowerAnchors,
    ::testing::Values(std::pair{router_types::BASELINE, 0.67},
                      std::pair{router_types::SMALL, 0.30},
                      std::pair{router_types::BIG, 1.19}));

TEST(PowerModel, MonotoneInActivity)
{
    auto model = RouterPowerModel::calibrated(router_types::BASELINE, 2.2);
    double prev = -1.0;
    for (double a : {0.0, 0.1, 0.3, 0.5, 0.7, 1.0}) {
        double p = model.powerAtActivity(a).total();
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(PowerModel, LeakageOnlyAtZeroActivity)
{
    auto model = RouterPowerModel::calibrated(router_types::BASELINE, 2.2);
    PowerBreakdown zero = model.powerAtActivity(0.0);
    EXPECT_NEAR(zero.total(), model.leakage().total(), 1e-9);
    EXPECT_NEAR(zero.total(), 0.15 * 0.67, 0.02); // ~15 % leakage
}

TEST(PowerModel, BaselineBreakdownShares)
{
    // Fig 8(b) shares: buffers 35 %, xbar 30 %, links 20 %, arb 15 %.
    auto model = RouterPowerModel::calibrated(router_types::BASELINE, 2.2);
    PowerBreakdown p = model.powerAtActivity(0.5);
    EXPECT_NEAR(p.buffers / p.total(), 0.35, 0.01);
    EXPECT_NEAR(p.crossbar / p.total(), 0.30, 0.01);
    EXPECT_NEAR(p.links / p.total(), 0.20, 0.01);
    EXPECT_NEAR(p.arbiters / p.total(), 0.15, 0.01);
}

TEST(PowerModel, MeasuredActivityMatchesAnalytic)
{
    // power(activity) with hand-built counters must agree with
    // powerAtActivity for the same event rates.
    auto model = RouterPowerModel::calibrated(router_types::SMALL, 2.25);
    RouterActivity act;
    act.cycles = 1000;
    act.bufferWrites = 2500; // 0.5 * 5 ports * 1000 cycles
    act.bufferReads = 2500;
    act.xbarTraversals = 2500;
    act.arbOps = 2500;
    act.linkBitTraversals = 2500.0 * 128;
    EXPECT_NEAR(model.power(act).total(),
                model.powerAtActivity(0.5).total(), 1e-9);
}

TEST(PowerModel, HeteroNetworkBudget)
{
    // 48 small + 16 big at 50 % activity must undercut 64 baseline
    // routers (the §2 inequality).
    auto base = RouterPowerModel::calibrated(router_types::BASELINE, 2.2)
                    .powerAtActivity(0.5)
                    .total();
    auto small = RouterPowerModel::calibrated(router_types::SMALL, 2.07)
                     .powerAtActivity(0.5)
                     .total();
    auto big = RouterPowerModel::calibrated(router_types::BIG, 2.07)
                   .powerAtActivity(0.5)
                   .total();
    EXPECT_LT(48 * small + 16 * big, 64 * base);
}

TEST(RouterParams, BufferAccounting)
{
    EXPECT_EQ(router_types::BASELINE.bufferBits(), 3 * 5 * 5 * 192);
    EXPECT_EQ(router_types::SMALL.bufferBits(), 2 * 5 * 5 * 128);
    // Big routers keep 128 b FIFOs (§3.2).
    EXPECT_EQ(router_types::BIG.bufferBits(), 6 * 5 * 5 * 128);
}

} // namespace
} // namespace hnoc
