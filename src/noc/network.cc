#include "noc/network.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "noc/config_io.hh"
#include "power/frequency_model.hh"
#include "telemetry/json_writer.hh"

namespace hnoc
{

namespace
{

/** HNOC_ALWAYS_STEP=1 forces the exhaustive per-cycle loop. */
bool
alwaysStepFromEnv()
{
    const char *v = std::getenv("HNOC_ALWAYS_STEP");
    return v && *v && !(v[0] == '0' && v[1] == '\0');
}

/** HNOC_BLOCK_TILES=<n> overrides the block-size knob (0 = config). */
int
blockTilesFromEnv()
{
    const char *v = std::getenv("HNOC_BLOCK_TILES");
    return v && *v ? std::atoi(v) : 0;
}

/** Per-block L2 working-set budget for block auto-sizing. Half a
 *  typical 1-2 MB private L2: the block's hot state must share the
 *  cache with packets, scratch, and the next block's prefetches. */
constexpr std::uint64_t kBlockL2Bytes = 768 * 1024;

} // namespace

Network::Network(const NetworkConfig &config)
    : config_(config), topo_(Topology::create(config)),
      routing_(RoutingAlgorithm::create(config_, *topo_))
{
    if (!config_.routerVcs.empty() &&
        static_cast<int>(config_.routerVcs.size()) != topo_->numRouters())
        fatal("routerVcs size %zu != router count %d",
              config_.routerVcs.size(), topo_->numRouters());
    if (!config_.routerWidthBits.empty() &&
        static_cast<int>(config_.routerWidthBits.size()) !=
            topo_->numRouters())
        fatal("routerWidthBits size %zu != router count %d",
              config_.routerWidthBits.size(), topo_->numRouters());

    if (config_.clockGHz > 0.0) {
        clockGHz_ = config_.clockGHz;
    } else {
        // Worst-case rule of §3.4: the slowest router sets the clock.
        int max_vcs = config_.defaultVcs;
        for (RouterId r = 0; r < topo_->numRouters(); ++r)
            max_vcs = std::max(max_vcs, config_.vcsOf(r));
        clockGHz_ = FrequencyModel::networkFrequencyGHz(max_vcs);
    }

    alwaysStep_ = config_.alwaysStep || alwaysStepFromEnv();

    // The blocked step order delivers cross-block traffic in per-block
    // passes; a zero-delay channel could make a same-cycle send
    // deliverable before its receiver's pass has run, so every delay
    // (flit and credit paths both derive from linkLatency) must be
    // at least one cycle.
    if (config_.linkLatency < 1)
        fatal("linkLatency %d < 1: every channel delay must be >= 1 "
              "cycle", config_.linkLatency);
    if (config_.blockTiles < 0)
        fatal("blockTiles %d < 0 (0 means auto-size)",
              config_.blockTiles);

    build();
    setupBlocks();
    packHotArena();

    // Register active-list wake hooks, then bind every component's
    // ActivitySlot into the dense busy bitmaps (in that order: a bind
    // of an already-busy component must enlist it). The bitmaps are
    // sized exactly once here; the slots keep raw pointers into them,
    // so they must never reallocate.
    endBusy_.assign(ends_.size(), 0);
    routerBusy_.assign(routers_.size(), 0);
    niBusy_.assign(nis_.size(), 0);
    for (std::size_t i = 0; i < ends_.size(); ++i) {
        const ChannelEnds &e = ends_[i];
        auto id = static_cast<std::uint32_t>(i);
        if (!e.sinkIsRouter) {
            e.chan->addActivityWake(&ejectEnds_, id);
        } else {
            e.chan->addActivityWake(
                &blockFlitEnds_[static_cast<std::size_t>(
                    blockOf(e.sinkRouter))],
                id);
            // Credits return to the driver: a router, or — for
            // NI-driven injection channels — the NI attached to the
            // sink router, so either way the block that steps the
            // receiver also delivers its credits.
            RouterId cr =
                e.driverIsRouter ? e.driverRouter : e.sinkRouter;
            e.chan->addActivityWake(
                &blockCreditEnds_[static_cast<std::size_t>(blockOf(cr))],
                id);
        }
        e.chan->bindActivitySlot(&endBusy_[i], &busyEnds_);
    }
    for (std::size_t i = 0; i < routers_.size(); ++i) {
        routers_[i].addActivityWake(
            &blockRouters_[static_cast<std::size_t>(
                blockOf(static_cast<RouterId>(i)))],
            static_cast<std::uint32_t>(i));
        routers_[i].bindActivitySlot(&routerBusy_[i], &busyRouters_);
    }
    for (std::size_t i = 0; i < nis_.size(); ++i) {
        RouterId r = topo_->routerOfNode(static_cast<NodeId>(i));
        nis_[i]->addActivityWake(
            &blockNis_[static_cast<std::size_t>(blockOf(r))],
            static_cast<std::uint32_t>(i));
        nis_[i]->bindActivitySlot(&niBusy_[i], &busyNis_);
    }
}

Network::~Network() = default;

Channel *
Network::makeChannel(int width_bits, int flit_delay, int credit_delay)
{
    int lanes = std::max(1, width_bits / config_.flitWidthBits);
    channels_.push_back(std::make_unique<Channel>(
        static_cast<int>(channels_.size()), width_bits, lanes, flit_delay,
        credit_delay));
    Channel *c = channels_.back().get();
    if (lanes > 1)
        wideChannels_.push_back(c);
    return c;
}

void
Network::build()
{
    int n_routers = topo_->numRouters();
    int ports = topo_->portsPerRouter();
    int inter_delay = (config_.pipelineStages - 1) + config_.linkLatency;

    // Routers live by value in one contiguous vector: the per-cycle
    // step pass walks them in index (= block) order, so the object
    // headers stream linearly instead of chasing per-router heap
    // pointers. reserve() pins the addresses before activity-slot
    // binding takes them.
    routers_.reserve(static_cast<std::size_t>(n_routers));
    for (RouterId r = 0; r < n_routers; ++r) {
        routers_.emplace_back(
            r, ports, config_.vcsOf(r), config_.bufferDepth, *routing_,
            config_.escapeThreshold, config_.intraPacketPairing,
            config_.saPolicy);
    }

    // Inter-router channels: one per directed (router, dir-port) pair.
    for (RouterId r = 0; r < n_routers; ++r) {
        for (PortId p = 0; p < topo_->numDirPorts(); ++p) {
            const PortPeer &peer = topo_->peer(r, p);
            if (peer.router == INVALID_ROUTER)
                continue;
            Channel *ch =
                makeChannel(config_.channelBits(r, peer.router),
                            inter_delay, config_.linkLatency);
            routers_[static_cast<std::size_t>(r)].connectOutput(
                p, ch, config_.vcsOf(peer.router), config_.bufferDepth);
            routers_[static_cast<std::size_t>(peer.router)].connectInput(
                peer.port, ch);

            ChannelEnds e;
            e.chan = ch;
            e.sinkIsRouter = true;
            e.sinkRouter = peer.router;
            e.sinkPort = peer.port;
            e.driverIsRouter = true;
            e.driverRouter = r;
            e.driverPort = p;
            ends_.push_back(e);
        }
    }

    // Local channels: injection (NI -> router) and ejection.
    int n_nodes = topo_->numNodes();
    nis_.reserve(static_cast<std::size_t>(n_nodes));
    for (NodeId n = 0; n < n_nodes; ++n) {
        RouterId r = topo_->routerOfNode(n);
        PortId lp = topo_->localPortOfNode(n);
        Router &router = routers_[static_cast<std::size_t>(r)];
        nis_.push_back(std::make_unique<NetworkInterface>(n, this));
        NetworkInterface &ni = *nis_.back();

        int local_bits = config_.localChannelBits(r);

        Channel *inj =
            makeChannel(local_bits, config_.linkLatency,
                        config_.linkLatency);
        router.connectInput(lp, inj);
        ni.connectInjection(inj, config_.vcsOf(r), config_.bufferDepth,
                            &router.activity(),
                            config_.intraPacketPairing);
        ChannelEnds ei;
        ei.chan = inj;
        ei.sinkIsRouter = true;
        ei.sinkRouter = r;
        ei.sinkPort = lp;
        ei.driverIsRouter = false;
        ei.driverNode = n;
        ends_.push_back(ei);

        Channel *ej = makeChannel(local_bits, inter_delay,
                                  config_.linkLatency);
        router.connectOutput(lp, ej, config_.vcsOf(r),
                             config_.bufferDepth);
        router.markEjectionPort(lp);
        ni.connectEjection(ej);
        ChannelEnds ee;
        ee.chan = ej;
        ee.sinkIsRouter = false;
        ee.sinkNode = n;
        ee.driverIsRouter = true;
        ee.driverRouter = r;
        ee.driverPort = lp;
        ends_.push_back(ee);
    }

    // All ports are wired: pack each router's per-output credit
    // counters into their aligned hot rows.
    for (auto &router : routers_)
        router.finalizeWiring();
}

void
Network::setupBlocks()
{
    int n_routers = topo_->numRouters();

    int tiles = blockTilesFromEnv();
    if (tiles <= 0)
        tiles = config_.blockTiles;
    if (tiles <= 0) {
        // Auto-size: fit one block's component state (routers +
        // channels + NIs, measured from the real footprints) in the
        // L2 budget, rounded down to whole mesh rows so blocks stay
        // spatially contiguous.
        std::uint64_t bytes = 0;
        for (const auto &r : routers_)
            bytes += r.footprintBytes();
        for (const auto &c : channels_)
            bytes += c->footprintBytes();
        for (const auto &ni : nis_)
            bytes += ni->footprintBytes();
        std::uint64_t per_router =
            std::max<std::uint64_t>(1, bytes /
                static_cast<std::uint64_t>(n_routers));
        tiles = static_cast<int>(
            std::min<std::uint64_t>(static_cast<std::uint64_t>(n_routers),
                                    kBlockL2Bytes / per_router));
        int cols = topo_->gridCols();
        if (tiles > cols)
            tiles = tiles / cols * cols;
        if (tiles < 1)
            tiles = 1;
    }
    blockTiles_ = std::min(tiles, n_routers);
    numBlocks_ = (n_routers + blockTiles_ - 1) / blockTiles_;

    // Size each block's active lists to its exact membership so the
    // steady state never reallocates.
    auto nb = static_cast<std::size_t>(numBlocks_);
    std::vector<std::size_t> flit_count(nb, 0);
    std::vector<std::size_t> credit_count(nb, 0);
    std::vector<std::size_t> router_count(nb, 0);
    std::vector<std::size_t> ni_count(nb, 0);
    std::size_t eject_count = 0;
    for (const ChannelEnds &e : ends_) {
        if (!e.sinkIsRouter) {
            ++eject_count;
            continue;
        }
        ++flit_count[static_cast<std::size_t>(blockOf(e.sinkRouter))];
        RouterId cr = e.driverIsRouter ? e.driverRouter : e.sinkRouter;
        ++credit_count[static_cast<std::size_t>(blockOf(cr))];
    }
    for (RouterId r = 0; r < n_routers; ++r)
        ++router_count[static_cast<std::size_t>(blockOf(r))];
    for (NodeId n = 0; n < topo_->numNodes(); ++n)
        ++ni_count[static_cast<std::size_t>(
            blockOf(topo_->routerOfNode(n)))];

    ejectEnds_.reserve(ends_.size(), eject_count);
    blockFlitEnds_.resize(nb);
    blockCreditEnds_.resize(nb);
    blockRouters_.resize(nb);
    blockNis_.resize(nb);
    for (std::size_t b = 0; b < nb; ++b) {
        blockFlitEnds_[b].reserve(ends_.size(), flit_count[b]);
        blockCreditEnds_[b].reserve(ends_.size(), credit_count[b]);
        blockRouters_[b].reserve(routers_.size(), router_count[b]);
        blockNis_[b].reserve(nis_.size(), ni_count[b]);
    }
}

void
Network::packHotArena()
{
    std::size_t bytes = 0;
    for (const auto &r : routers_)
        bytes += r.coreArenaBytes();
    for (const auto &c : channels_)
        bytes += c->arenaBytes();
    hotArena_.reserve(bytes);

    // Carve in the blocked step loop's visit order (§6g): terminal
    // ejection channels first (the global eject pass), then for each
    // block its delivered channels followed by its routers, so the
    // per-cycle stream walks the arena front to back.
    for (const ChannelEnds &e : ends_)
        if (!e.sinkIsRouter)
            e.chan->moveToArena(hotArena_);
    auto n_routers = static_cast<RouterId>(routers_.size());
    for (int b = 0; b < numBlocks_; ++b) {
        for (const ChannelEnds &e : ends_)
            if (e.sinkIsRouter && blockOf(e.sinkRouter) == b)
                e.chan->moveToArena(hotArena_);
        auto lo = static_cast<RouterId>(b) *
                  static_cast<RouterId>(blockTiles_);
        RouterId hi = std::min(
            lo + static_cast<RouterId>(blockTiles_), n_routers);
        for (RouterId r = lo; r < hi; ++r)
            routers_[static_cast<std::size_t>(r)].moveCoreToArena(
                hotArena_);
    }
}

Packet *
Network::allocPacket()
{
    if (!freeList_.empty()) {
        Packet *p = freeList_.back();
        freeList_.pop_back();
        return p;
    }
    packetArena_.push_back(std::make_unique<Packet>());
    return packetArena_.back().get();
}

void
Network::freePacket(Packet *pkt)
{
    freeList_.push_back(pkt);
}

Packet *
Network::enqueuePacket(NodeId src, NodeId dst, int num_flits,
                       std::uint64_t tag, void *context)
{
    if (src < 0 || src >= topo_->numNodes() || dst < 0 ||
        dst >= topo_->numNodes())
        panic("enqueuePacket: invalid endpoints %d -> %d", src, dst);
    if (src == dst)
        panic("enqueuePacket: src == dst (%d)", src);
    Packet *pkt = allocPacket();
    *pkt = Packet{};
    pkt->id = nextPacketId_++;
    pkt->src = src;
    pkt->dst = dst;
    pkt->numFlits = num_flits;
    pkt->createdAt = cycle_;
    pkt->tag = tag;
    pkt->context = context;
    if (config_.routing == RoutingMode::TableXY) {
        const auto &table =
            static_cast<const TableXYRouting &>(*routing_);
        pkt->tableRouted = table.isTableNode(src) || table.isTableNode(dst);
    } else if (config_.routing == RoutingMode::O1Turn) {
        // Alternate dimension orders deterministically by packet id.
        pkt->yxRouted = (pkt->id & 1) != 0;
    }
    // Arm the blame ledger last: `*pkt = Packet{}` above resets the
    // pointer on arena recycle, so detached runs carry none.
    if (kTelemetryEnabled && blame_)
        pkt->blame = blame_->acquire();
    nis_[static_cast<std::size_t>(src)]->enqueue(pkt);
    ++packetsInjected_;
    ++livePackets_;
    if (kTelemetryEnabled && telemetry_) {
        telemetry_->add(Ctr::PacketsInjected);
        telemetry_->gaugeMax(Gauge::PeakInFlight,
                             static_cast<std::uint64_t>(livePackets_));
    }
    if (kTelemetryEnabled && recorder_)
        recorder_->record(FrKind::Inject, cycle_, src, -1, -1, pkt->id,
                          true);
    if (observer_)
        observer_->onPacketCreated(*pkt, cycle_);
    return pkt;
}

void
Network::setObserver(NetworkObserver *observer)
{
    observer_ = observer;
    for (auto &r : routers_)
        r.setObserver(observer);
}

std::unique_ptr<MetricRegistry>
Network::makeMetricRegistry(Cycle epoch_cycles) const
{
    MetricRegistry::Dims dims;
    dims.routers = topo_->numRouters();
    dims.ports = topo_->portsPerRouter();
    dims.vcs = config_.defaultVcs;
    for (RouterId r = 0; r < topo_->numRouters(); ++r)
        dims.vcs = std::max(dims.vcs, config_.vcsOf(r));
    dims.gridCols = topo_->gridCols();

    auto reg = std::make_unique<MetricRegistry>(dims, epoch_cycles);
    for (RouterId r = 0; r < topo_->numRouters(); ++r)
        reg->setBufferCapacity(
            r, routers_[static_cast<std::size_t>(r)].bufferCapacity());
    for (const ChannelEnds &e : ends_) {
        if (!e.driverIsRouter)
            continue;
        reg->setPortLanes(e.driverRouter, e.driverPort, e.chan->lanes());
        reg->setPortInterRouter(e.driverRouter, e.driverPort,
                                e.sinkIsRouter);
    }
    return reg;
}

void
Network::attachTelemetry(MetricRegistry *reg)
{
    telemetry_ = reg;
    for (auto &r : routers_)
        r.setTelemetry(reg);
    for (ChannelEnds &e : ends_) {
        if (e.driverIsRouter)
            e.chan->setTelemetry(reg, e.driverRouter, e.driverPort);
    }
    if (reg)
        reg->beginWindow(cycle_);
}

void
Network::detachTelemetry()
{
    if (telemetry_)
        telemetry_->finish();
    attachTelemetry(nullptr);
}

void
Network::attachFlightRecorder(FlightRecorder *fr)
{
    recorder_ = fr;
    for (auto &r : routers_)
        r.setFlightRecorder(fr);
}

void
Network::attachProfiler(Profiler *prof)
{
    profiler_ = prof;
    for (auto &r : routers_)
        r.setProfiler(prof);
    if (prof && !alwaysStep_) {
        // Arm per-block attribution: each block's pass time plus its
        // steady-state hot footprint (routers, channels keyed by the
        // block that delivers their flits, attached NIs), from which
        // reports derive bytes-streamed-per-cycle.
        auto nb = static_cast<std::size_t>(numBlocks_);
        prof->enableBlocks(nb);
        std::vector<std::uint64_t> bytes(nb, 0);
        for (std::size_t i = 0; i < routers_.size(); ++i)
            bytes[static_cast<std::size_t>(
                blockOf(static_cast<RouterId>(i)))] +=
                routers_[i].footprintBytes();
        for (const ChannelEnds &e : ends_) {
            RouterId r = e.sinkIsRouter ? e.sinkRouter : e.driverRouter;
            bytes[static_cast<std::size_t>(blockOf(r))] +=
                e.chan->footprintBytes();
        }
        for (std::size_t i = 0; i < nis_.size(); ++i)
            bytes[static_cast<std::size_t>(blockOf(
                topo_->routerOfNode(static_cast<NodeId>(i))))] +=
                nis_[i]->footprintBytes();
        for (std::size_t b = 0; b < nb; ++b)
            prof->setBlockBytes(b, bytes[b]);
    }
}

std::unique_ptr<BlameCollector>
Network::makeBlameCollector() const
{
    BlameCollector::Dims dims;
    dims.routers = topo_->numRouters();
    dims.ports = topo_->portsPerRouter();
    dims.gridCols = topo_->gridCols();

    auto bc = std::make_unique<BlameCollector>(dims);
    for (RouterId r = 0; r < topo_->numRouters(); ++r) {
        // The paper's router classes: "big" means more VCs or a wider
        // local datapath than the baseline mesh router.
        bool big = config_.vcsOf(r) > config_.defaultVcs ||
                   config_.localChannelBits(r) > config_.flitWidthBits;
        bc->setRouterClass(r, big);
    }
    for (const ChannelEnds &e : ends_) {
        if (!e.driverIsRouter)
            continue;
        BlameLinkClass cls =
            !e.sinkIsRouter ? BlameLinkClass::Local
            : e.chan->lanes() > 1 ? BlameLinkClass::Wide
                                  : BlameLinkClass::Narrow;
        bc->setPortLinkClass(e.driverRouter, e.driverPort, cls);
    }
    for (NodeId n = 0; n < topo_->numNodes(); ++n)
        bc->setNodeRouter(n, topo_->routerOfNode(n));
    return bc;
}

void
Network::attachBlame(BlameCollector *b)
{
    blame_ = b;
    for (auto &r : routers_)
        r.setBlame(b);
}

MemoryAudit
Network::memoryAudit() const
{
    MemoryAudit a;
    a.tiles = topo_->numNodes();

    std::uint64_t b = 0;
    for (const auto &r : routers_)
        b += r.footprintBytes();
    a.add("routers", b, routers_.size());

    b = 0;
    for (const auto &c : channels_)
        b += c->footprintBytes();
    a.add("channels", b, channels_.size());

    b = 0;
    for (const auto &ni : nis_)
        b += ni->footprintBytes();
    a.add("network_interfaces", b, nis_.size());

    a.add("packet_arena",
          packetArena_.capacity() * sizeof(std::unique_ptr<Packet>) +
              packetArena_.size() * sizeof(Packet) +
              freeList_.capacity() * sizeof(Packet *),
          packetArena_.size());

    std::uint64_t lists = ejectEnds_.footprintBytes();
    for (const ActiveList *vec :
         {blockFlitEnds_.data(), blockCreditEnds_.data(),
          blockRouters_.data(), blockNis_.data()})
        for (std::size_t i = 0; i < static_cast<std::size_t>(numBlocks_);
             ++i)
            lists += vec[i].footprintBytes() + sizeof(ActiveList);
    a.add("active_set",
          endBusy_.capacity() + routerBusy_.capacity() +
              niBusy_.capacity() +
              ends_.capacity() * sizeof(ChannelEnds) + lists,
          endBusy_.size() + routerBusy_.size() + niBusy_.size());

    if (hotArena_.reservedBytes() > 0)
        a.add("hot_arena_pad",
              hotArena_.reservedBytes() - hotArena_.used(), 1);

    if (telemetry_)
        a.add("metric_registry", telemetry_->footprintBytes(), 1);
    if (recorder_)
        a.add("flight_recorder", recorder_->footprintBytes(), 1);
    if (blame_)
        a.add("blame_collector", blame_->footprintBytes(), 1);
    return a;
}

HealthSample
Network::healthSample() const
{
    HealthSample s;
    s.cycle = cycle_;
    s.packetsInjected = packetsInjected_;
    s.packetsDelivered = packetsDelivered_;
    s.flitsDelivered = flitsDelivered_;
    s.packetsInFlight = livePackets_;
    s.sourceQueueDepth = totalSourceQueueDepth();
    s.routers = topo_->numRouters();
    s.ports = topo_->portsPerRouter();
    s.vcs = config_.defaultVcs;
    for (RouterId r = 0; r < s.routers; ++r)
        s.vcs = std::max(s.vcs, config_.vcsOf(r));

    s.bufferOccupancy.reserve(static_cast<std::size_t>(s.routers));
    s.vcOccupancy.assign(
        static_cast<std::size_t>(s.routers * s.ports * s.vcs), 0);
    for (RouterId r = 0; r < s.routers; ++r) {
        const Router &router = routers_[static_cast<std::size_t>(r)];
        s.bufferOccupancy.push_back(router.bufferOccupancy());
        int router_vcs = router.vcsPerPort();
        for (PortId p = 0; p < s.ports; ++p)
            for (VcId v = 0; v < router_vcs; ++v)
                s.vcOccupancy[static_cast<std::size_t>(
                    (r * s.ports + p) * s.vcs + v)] =
                    router.inputVcOccupancy(p, v);
    }
    return s;
}

bool
Network::auditCreditConservation(std::string *err) const
{
    for (const ChannelEnds &e : ends_) {
        // The downstream buffer being credited: a router input port,
        // or the NI ejection sink (which consumes instantly, so its
        // occupancy is always zero).
        int vcs = e.sinkIsRouter
                      ? routers_[static_cast<std::size_t>(e.sinkRouter)]
                            .vcsPerPort()
                      : routers_[static_cast<std::size_t>(e.driverRouter)]
                            .outputVcCount(e.driverPort);
        for (VcId v = 0; v < vcs; ++v) {
            int driver_credits =
                e.driverIsRouter
                    ? routers_[static_cast<std::size_t>(e.driverRouter)]
                          .outputCredits(e.driverPort, v)
                    : nis_[static_cast<std::size_t>(e.driverNode)]
                          ->injectionCredits(v);
            int in_flight_flits = e.chan->pipeFlits(v);
            int in_flight_credits = e.chan->pipeCredits(v);
            int sink_occ =
                e.sinkIsRouter
                    ? routers_[static_cast<std::size_t>(e.sinkRouter)]
                          .inputVcOccupancy(e.sinkPort, v)
                    : 0;
            int total = driver_credits + in_flight_flits +
                        in_flight_credits + sink_occ;
            if (total != config_.bufferDepth) {
                if (err) {
                    char buf[256];
                    std::snprintf(
                        buf, sizeof(buf),
                        "channel %d vc %d: credits %d + pipe flits %d + "
                        "pipe credits %d + sink occupancy %d = %d, "
                        "expected buffer depth %d",
                        e.chan->id(), v, driver_credits, in_flight_flits,
                        in_flight_credits, sink_occ, total,
                        config_.bufferDepth);
                    *err = buf;
                }
                return false;
            }
        }
    }
    return true;
}

std::string
Network::postmortemJson(const std::string &reason) const
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("schema", "hnoc-postmortem-v1");
    w.keyValue("reason", reason);
    w.keyValue("cycle", static_cast<std::uint64_t>(cycle_));
    w.keyValue("packets_injected", packetsInjected_);
    w.keyValue("packets_delivered", packetsDelivered_);
    w.keyValue("flits_delivered", flitsDelivered_);
    w.keyValue("packets_in_flight",
               static_cast<std::uint64_t>(livePackets_));
    w.keyValue("source_queue_depth",
               static_cast<std::uint64_t>(totalSourceQueueDepth()));
    w.keyValue("last_delivery_cycle",
               static_cast<std::uint64_t>(lastDelivery_));

    w.key("config").beginObject();
    w.keyValue("topology", topologyName(config_.topology));
    w.keyValue("routers", topo_->numRouters());
    w.keyValue("ports", topo_->portsPerRouter());
    w.keyValue("grid_cols", topo_->gridCols());
    w.keyValue("buffer_depth", config_.bufferDepth);
    w.endObject();

    // Per-router pipeline snapshot. Idle state is the common case in a
    // postmortem's healthy regions, so only waiting/allocated VCs are
    // emitted.
    w.key("routers").beginArray();
    for (RouterId r = 0; r < topo_->numRouters(); ++r) {
        const Router &router = routers_[static_cast<std::size_t>(r)];
        w.beginObject();
        w.keyValue("id", r);
        w.keyValue("occupancy", router.bufferOccupancy());
        w.key("input_vcs").beginArray();
        for (PortId p = 0; p < router.numPorts(); ++p) {
            for (VcId v = 0; v < router.vcsPerPort(); ++v) {
                Router::InputVcView view = router.inputVcView(p, v);
                if (view.occupancy == 0 && !view.active)
                    continue;
                w.beginObject();
                w.keyValue("port", p);
                w.keyValue("vc", v);
                w.keyValue("occupancy", view.occupancy);
                w.keyValue("active", view.active);
                w.keyValue("out_port", view.outPort);
                w.keyValue("out_vc", view.outVc);
                w.keyValue("head_since",
                           static_cast<std::uint64_t>(view.headSince));
                w.keyValue("pkt", view.pkt);
                w.endObject();
            }
        }
        w.endArray();
        w.key("output_vcs").beginArray();
        for (PortId p = 0; p < router.numPorts(); ++p) {
            for (VcId v = 0; v < router.outputVcCount(p); ++v) {
                bool allocated = router.outputAllocated(p, v);
                int credits = router.outputCredits(p, v);
                if (!allocated && credits == config_.bufferDepth)
                    continue;
                w.beginObject();
                w.keyValue("port", p);
                w.keyValue("vc", v);
                w.keyValue("credits", credits);
                w.keyValue("allocated", allocated);
                w.endObject();
            }
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("source_queues").beginArray();
    for (const auto &ni : nis_) {
        if (ni->sourceQueueDepth() == 0)
            continue;
        w.beginObject();
        w.keyValue("node", ni->node());
        w.keyValue("depth",
                   static_cast<std::uint64_t>(ni->sourceQueueDepth()));
        w.endObject();
    }
    w.endArray();

    std::string audit_err;
    bool audit_ok = auditCreditConservation(&audit_err);
    w.key("conservation").beginObject();
    w.keyValue("ok", audit_ok);
    if (!audit_ok)
        w.keyValue("error", audit_err);
    w.endObject();

    if (recorder_) {
        w.key("flight_recorder");
        recorder_->writeJson(w);
    }
    if (telemetry_) {
        w.key("telemetry");
        telemetry_->writeJson(w);
    }
    w.endObject();
    return w.str();
}

bool
Network::writePostmortem(const std::string &path,
                         const std::string &reason) const
{
    std::string target = path;
    if (const char *dir = std::getenv("HNOC_JSON_DIR")) {
        std::string base = path;
        auto slash = base.find_last_of('/');
        if (slash != std::string::npos)
            base = base.substr(slash + 1);
        target = std::string(dir) + "/" + base;
    }
    std::FILE *f = std::fopen(target.c_str(), "w");
    if (!f) {
        warn("postmortem: cannot open %s", target.c_str());
        return false;
    }
    std::string data = postmortemJson(reason);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    return true;
}

void
Network::step()
{
    Cycle now = cycle_;

    if (client_)
        client_->preCycle(*this, now);

    // Self-profiling (report-only): the StepTotal scope opens after
    // the client callback, so step_total covers network work only and
    // the unattributed residual is active-set scan + loop overhead.
    // With no profiler attached each scope costs one branch; the OFF
    // build folds `prof` to nullptr and compiles the timers away.
    Profiler *prof = kTelemetryEnabled ? profiler_ : nullptr;
    ProfScope stepScope(prof, ProfPhase::StepTotal);

    // Channel delivery (flits, then credits) is split into a flit
    // role and a credit role so the cache-blocked path can run each
    // in its receiver's block pass. Flits and credits are handed
    // straight to their receiver — router input-VC SoA arrays or the
    // NI — without staging in a scratch vector; per-channel delivery
    // order (flits, then credits, each oldest-first) is unchanged.
    auto deliverFlitsOf = [&](ChannelEnds &e) {
        if (e.sinkIsRouter) {
            Router &r = routers_[static_cast<std::size_t>(e.sinkRouter)];
            e.chan->deliverFlitsTo(now, [&](const Flit &f) {
                r.receiveFlit(e.sinkPort, f, now);
            });
        } else {
            NetworkInterface &ni =
                *nis_[static_cast<std::size_t>(e.sinkNode)];
            e.chan->deliverFlitsTo(now, [&](const Flit &f) {
                ++flitsDelivered_;
                if (kTelemetryEnabled && telemetry_)
                    telemetry_->add(Ctr::FlitsEjected);
                // Head delivery fixes the tail-serialization bound:
                // the remaining flits drain through this one ejection
                // channel at <= eff flits/cycle (2 only when pairing
                // can ride a wide local link), so the tail cannot
                // eject before headEjectAt + ceil(n/eff) - 1.
                if (kTelemetryEnabled && f.isHead() && f.pkt->blame) {
                    BlameLedger *bl = f.pkt->blame;
                    bl->headEjectAt = now;
                    int eff =
                        (config_.intraPacketPairing &&
                         e.chan->lanes() > 1)
                            ? 2
                            : 1;
                    bl->minSerCycles = static_cast<std::uint64_t>(
                        (f.pkt->numFlits + eff - 1) / eff - 1);
                }
                Packet *done = ni.receiveFlit(f, now);
                if (done) {
                    ++packetsDelivered_;
                    --livePackets_;
                    lastDelivery_ = now;
                    if (kTelemetryEnabled && telemetry_) {
                        telemetry_->add(Ctr::PacketsDelivered);
                        telemetry_->histAdd(
                            Hist::PacketLatencyCycles,
                            static_cast<double>(now - done->createdAt));
                        telemetry_->histAdd(
                            Hist::NetworkLatencyCycles,
                            static_cast<double>(now - done->injectedAt));
                    }
                    if (kTelemetryEnabled && recorder_)
                        recorder_->record(FrKind::Eject, now, done->dst,
                                          -1, -1, done->id, true);
                    if (observer_)
                        observer_->onPacketDelivered(*done, now);
                    if (client_)
                        client_->onPacketDelivered(*this, *done, now);
                    // Commit after the client callback so tests can
                    // inspect the finished ledger from the callback.
                    if (kTelemetryEnabled && done->blame) {
                        if (blame_) {
                            blame_->commit(done->id, done->src,
                                           done->dst, done->createdAt,
                                           done->injectedAt,
                                           done->ejectedAt,
                                           *done->blame);
                            blame_->release(done->blame);
                        }
                        done->blame = nullptr;
                    }
                    freePacket(done);
                }
            });
        }
    };
    auto deliverCreditsOf = [&](ChannelEnds &e) {
        if (e.driverIsRouter) {
            Router &r =
                routers_[static_cast<std::size_t>(e.driverRouter)];
            e.chan->deliverCreditsTo(now, [&](VcId vc) {
                r.receiveCredit(e.driverPort, vc, now);
            });
        } else {
            NetworkInterface &ni =
                *nis_[static_cast<std::size_t>(e.driverNode)];
            e.chan->deliverCreditsTo(now,
                                     [&](VcId vc) { ni.receiveCredit(vc); });
        }
    };
    auto deliverEnd = [&](ChannelEnds &e) {
        deliverFlitsOf(e);
        deliverCreditsOf(e);
    };

    if (alwaysStep_) {
        // Exhaustive phase-major reference loop: every channel end,
        // every router, every NI, in canonical index order.
        for (std::size_t i = 0, n = ends_.size(); i < n; ++i) {
            if (ends_[i].chan->idle())
                continue;
            if (prof) {
                // Router-sink channels file under channel_delivery;
                // the terminal ejection channels (flit consumption +
                // credit return at the NI) under ni_eject.
                ProfScope s(prof, ends_[i].sinkIsRouter
                                      ? ProfPhase::ChannelDelivery
                                      : ProfPhase::NiEject);
                deliverEnd(ends_[i]);
            } else {
                deliverEnd(ends_[i]);
            }
        }
        for (auto &r : routers_)
            r.step(now);
        {
            ProfScope s(prof, ProfPhase::NiInject);
            for (auto &ni : nis_)
                ni->stepInject(now);
        }
    } else {
        // Cache-blocked tile-major passes (§6g). Every channel delay
        // is >= 1 cycle, so nothing sent this cycle becomes
        // deliverable this cycle, and deliveries to distinct
        // receivers commute — the per-receiver event order (one
        // point-to-point channel per receiver, FIFO pipes) and the
        // canonical node order of terminal ejections are what the
        // results depend on, and both are preserved. See DESIGN.md
        // §6g for the full bit-identity argument.
        //
        // Eject pass first: terminal (NI-sink) ends in canonical node
        // order — flit consumption, delivery callbacks, and the
        // credit return to the driver router's ejection port (a
        // commutative counter increment that precedes every router
        // step).
        // Prefetch look-ahead pays only when the chip's working set
        // exceeds one cache block (multi-block networks streaming
        // from L3); on a single-block network everything is already
        // resident and the extra per-entry work is pure scan
        // overhead.
        const bool look_ahead = numBlocks_ > 1;
        if (busyEnds_ > 0) {
            ProfScope s(prof, ProfPhase::NiEject);
            auto visit = [&](std::uint32_t i) { deliverEnd(ends_[i]); };
            if (look_ahead)
                ejectEnds_.forEachActive(
                    endBusy_.data(), visit, [&](std::uint32_t i) {
                        ends_[i].chan->prefetchDelivery();
                    });
            else
                ejectEnds_.forEachActive(endBusy_.data(), visit);
        }
        // Then per block: deliver the block's inbound flits and
        // outbound-channel credits, step its routers, inject from its
        // NIs — touching each block's packed hot state once per cycle
        // while it is cache-resident.
        for (int b = 0; b < numBlocks_; ++b) {
            auto bi = static_cast<std::size_t>(b);
            ActiveList &fl = blockFlitEnds_[bi];
            ActiveList &cl = blockCreditEnds_[bi];
            ActiveList &rl = blockRouters_[bi];
            ActiveList &nl = blockNis_[bi];
            if (fl.size() == 0 && cl.size() == 0 && rl.size() == 0 &&
                nl.size() == 0)
                continue;
            std::chrono::steady_clock::time_point t0;
            if (prof)
                t0 = std::chrono::steady_clock::now();
            {
                ProfScope s(prof, ProfPhase::ChannelDelivery);
                auto visit_f = [&](std::uint32_t i) {
                    deliverFlitsOf(ends_[i]);
                };
                auto visit_c = [&](std::uint32_t i) {
                    deliverCreditsOf(ends_[i]);
                };
                if (look_ahead) {
                    auto pre_chan = [&](std::uint32_t i) {
                        ends_[i].chan->prefetchDelivery();
                    };
                    fl.forEachActive(endBusy_.data(), visit_f, pre_chan);
                    cl.forEachActive(endBusy_.data(), visit_c, pre_chan);
                } else {
                    fl.forEachActive(endBusy_.data(), visit_f);
                    cl.forEachActive(endBusy_.data(), visit_c);
                }
            }
            auto visit_r = [&](std::uint32_t i) {
                routers_[i].step(now);
            };
            if (look_ahead)
                rl.forEachActive(
                    routerBusy_.data(), visit_r,
                    [&](std::uint32_t i) { routers_[i].prefetchStep(); });
            else
                rl.forEachActive(routerBusy_.data(), visit_r);
            {
                ProfScope s(prof, ProfPhase::NiInject);
                nl.forEachActive(niBusy_.data(), [&](std::uint32_t i) {
                    nis_[i]->stepInject(now);
                });
            }
            if (prof)
                prof->addBlock(
                    bi, static_cast<std::uint64_t>(
                            std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count()));
        }
    }

    if (kTelemetryEnabled && telemetry_) {
        ProfScope s(prof, ProfPhase::TelemetryTick);
        telemetry_->tick(now);
    }

    ++cycle_;
}

Cycle
Network::minTransferCycles(NodeId src, NodeId dst, int num_flits) const
{
    auto path = routing_->path(src, dst);
    auto hops = static_cast<Cycle>(path.size());
    Cycle head = static_cast<Cycle>(config_.linkLatency) +
                 hops * static_cast<Cycle>(config_.pipelineStages +
                                           config_.linkLatency);

    // Serialization lower bound: the narrowest channel on the path
    // limits how fast the tail can follow the head. With intra-packet
    // pairing, wide (multi-lane) channels move two flits per cycle.
    int min_lanes =
        std::max(1, config_.localChannelBits(path.front()) /
                        config_.flitWidthBits);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        int lanes = std::max(
            1, config_.channelBits(path[i], path[i + 1]) /
                   config_.flitWidthBits);
        min_lanes = std::min(min_lanes, lanes);
    }
    min_lanes = std::min(
        min_lanes, std::max(1, config_.localChannelBits(path.back()) /
                                   config_.flitWidthBits));
    if (!config_.intraPacketPairing)
        min_lanes = 1;

    auto serialization = static_cast<Cycle>(
        (num_flits - 1 + min_lanes - 1) / min_lanes);
    return head + serialization;
}

void
Network::resetMeasurement()
{
    measureStart_ = cycle_;
    for (auto &r : routers_) {
        r.activity() = RouterActivity{};
        r.resetOccupancy();
    }
    for (auto &c : channels_)
        c->resetStats();
}

std::vector<double>
Network::bufferUtilizationPercent() const
{
    std::vector<double> util;
    util.reserve(routers_.size());
    double cycles = static_cast<double>(measuredCycles());
    for (const auto &r : routers_) {
        double cap = static_cast<double>(r.bufferCapacity());
        util.push_back(cycles > 0.0
                           ? 100.0 * r.occupancySum() / (cap * cycles)
                           : 0.0);
    }
    return util;
}

std::vector<double>
Network::linkUtilizationPercent() const
{
    // Average lane utilization of each router's outgoing directional
    // channels.
    std::vector<double> util(routers_.size(), 0.0);
    std::vector<int> count(routers_.size(), 0);
    Cycle cycles = measuredCycles();
    for (const ChannelEnds &e : ends_) {
        if (!e.driverIsRouter || !e.sinkIsRouter)
            continue; // only inter-router links, as in Fig 1(b)
        util[static_cast<std::size_t>(e.driverRouter)] +=
            100.0 * e.chan->laneUtilization(cycles);
        ++count[static_cast<std::size_t>(e.driverRouter)];
    }
    for (std::size_t i = 0; i < util.size(); ++i)
        if (count[i] > 0)
            util[i] /= count[i];
    return util;
}

PowerBreakdown
Network::powerReport() const
{
    PowerBreakdown total;
    int ports = topo_->portsPerRouter();
    // Routers no longer count their own stepped cycles (idle cycles
    // may be skipped); the power model's time denominator is the
    // measurement window, identical to what the exhaustive loop
    // accumulated one cycle at a time.
    Cycle window = measuredCycles();
    for (RouterId r = 0; r < topo_->numRouters(); ++r) {
        auto model = RouterPowerModel::calibrated(
            config_.physParamsOf(r, ports), clockGHz_);
        RouterActivity act =
            routers_[static_cast<std::size_t>(r)].activity();
        act.cycles = window;
        total += model.power(act);
    }
    return total;
}

double
Network::combineRate() const
{
    std::uint64_t busy = 0;
    std::uint64_t paired = 0;
    for (const Channel *c : wideChannels_) {
        busy += c->busyCycles();
        paired += c->pairedCycles();
    }
    return busy ? static_cast<double>(paired) / static_cast<double>(busy)
                : 0.0;
}

std::size_t
Network::totalSourceQueueDepth() const
{
    std::size_t n = 0;
    for (const auto &ni : nis_)
        n += ni->sourceQueueDepth();
    return n;
}

std::string
Network::dumpState() const
{
    char buf[64];
    std::string out = "network state @ cycle ";
    std::snprintf(buf, sizeof(buf), "%llu\n",
                  static_cast<unsigned long long>(cycle_));
    out += buf;
    out += "buffer occupancy (flits) per router:\n";
    int cols = topo_->gridCols();
    for (int r = 0; r < topo_->numRouters(); ++r) {
        std::snprintf(buf, sizeof(buf), "%4d",
                      routers_[static_cast<std::size_t>(r)]
                          .bufferOccupancy());
        out += buf;
        if ((r + 1) % cols == 0)
            out += '\n';
    }
    bool any_queue = false;
    for (const auto &ni : nis_) {
        if (ni->sourceQueueDepth() > 0) {
            if (!any_queue) {
                out += "non-empty source queues:\n";
                any_queue = true;
            }
            std::snprintf(buf, sizeof(buf), "  node %d: %zu\n",
                          ni->node(), ni->sourceQueueDepth());
            out += buf;
        }
    }
    std::snprintf(buf, sizeof(buf), "in flight: %zu packets\n",
                  livePackets_);
    out += buf;
    return out;
}

} // namespace hnoc
