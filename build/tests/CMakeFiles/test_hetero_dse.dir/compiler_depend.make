# Empty compiler generated dependencies file for test_hetero_dse.
# This may be replaced when dependencies are built.
