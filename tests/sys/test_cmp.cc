/**
 * @file
 * CMP system tests: workload generation, MC placements, and end-to-end
 * coherence/IPC sanity on the full 64-tile system.
 */

#include <gtest/gtest.h>

#include <set>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/mc_placement.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(Workloads, ElevenProfiles)
{
    EXPECT_EQ(allWorkloads().size(), 11u);
    EXPECT_EQ(commercialWorkloads().size(), 4u);
    EXPECT_EQ(parsecWorkloads().size(), 6u);
    EXPECT_EQ(workloadByName("libquantum").memRatio, 0.40);
}

TEST(Workloads, TraceGeneratorDeterministic)
{
    const auto &prof = workloadByName("SAP");
    TraceGenerator a(prof, 3, 42);
    TraceGenerator b(prof, 3, 42);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord ra = a.next();
        TraceRecord rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        EXPECT_EQ(ra.nonMemInstrs, rb.nonMemInstrs);
    }
}

TEST(Workloads, TraceMatchesProfileStatistics)
{
    const auto &prof = workloadByName("SPECjbb");
    TraceGenerator gen(prof, 0, 7);
    std::uint64_t instrs = 0;
    std::uint64_t memops = 0;
    std::uint64_t shared = 0;
    for (int i = 0; i < 20000; ++i) {
        TraceRecord r = gen.next();
        instrs += static_cast<std::uint64_t>(r.nonMemInstrs) + 1;
        ++memops;
        if (r.addr >= (static_cast<Addr>(1) << 56))
            ++shared;
    }
    double mem_ratio =
        static_cast<double>(memops) / static_cast<double>(instrs);
    EXPECT_NEAR(mem_ratio, prof.memRatio, 0.03);
    EXPECT_NEAR(static_cast<double>(shared) / static_cast<double>(memops),
                prof.sharedFrac, 0.03);
}

TEST(McPlacement, CountsAndBounds)
{
    EXPECT_EQ(mcTiles(McPlacement::Corners, 8).size(), 4u);
    EXPECT_EQ(mcTiles(McPlacement::Diamond, 8).size(), 16u);
    EXPECT_EQ(mcTiles(McPlacement::Diagonal, 8).size(), 16u);
    for (auto p : {McPlacement::Corners, McPlacement::Diamond,
                   McPlacement::Diagonal}) {
        std::set<NodeId> uniq;
        for (NodeId t : mcTiles(p, 8)) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 64);
            uniq.insert(t);
        }
        EXPECT_EQ(uniq.size(), mcTiles(p, 8).size()) << "duplicates";
    }
}

TEST(McPlacement, DiamondTwoPerRowAndColumn)
{
    auto tiles = mcTiles(McPlacement::Diamond, 8);
    int rows[8] = {0};
    int cols[8] = {0};
    for (NodeId t : tiles) {
        ++rows[t / 8];
        ++cols[t % 8];
    }
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(rows[i], 2) << "row " << i;
        EXPECT_EQ(cols[i], 2) << "col " << i;
    }
}

TEST(McPlacement, BlockInterleaving)
{
    auto tiles = mcTiles(McPlacement::Corners, 8);
    std::set<NodeId> seen;
    for (Addr a = 0; a < 64 * 128; a += 128)
        seen.insert(mcForBlock(a, 128, tiles));
    EXPECT_EQ(seen.size(), 4u); // all MCs used
}

class CmpEndToEnd : public ::testing::Test
{
  protected:
    CmpConfig
    smallConfig()
    {
        CmpConfig cfg;
        cfg.seed = 11;
        return cfg;
    }
};

TEST_F(CmpEndToEnd, BaselineRunsAndRetires)
{
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(workloadByName("SPECjbb"));
    sys.warmCaches(30000);
    sys.run(2000); // timing warm
    sys.resetStats();
    sys.run(8000);

    double ipc = sys.avgIpc();
    // 3-wide cores with real memory stalls: IPC in (0.1, 3.0).
    EXPECT_GT(ipc, 0.1);
    EXPECT_LT(ipc, 3.0);
    EXPECT_GT(sys.packetsSent(), 1000u);
    EXPECT_GT(sys.netLatency().totalNs.count(), 500u);
    EXPECT_GT(sys.roundTripCoreCycles().count(), 100u);
    // DRAM misses exist, so some round trips exceed the 400-cycle
    // DRAM latency; L2 hits keep the minimum well below it.
    EXPECT_GT(sys.roundTripCoreCycles().max(), 400.0);
    EXPECT_LT(sys.roundTripCoreCycles().min(), 400.0);
}

TEST_F(CmpEndToEnd, HeteroNetworkAlsoWorks)
{
    CmpSystem sys(makeLayoutConfig(LayoutKind::DiagonalBL), CmpConfig{});
    sys.assignWorkloadAll(workloadByName("vips"));
    sys.warmCaches(30000);
    sys.run(2000);
    sys.resetStats();
    sys.run(8000);
    EXPECT_GT(sys.avgIpc(), 0.1);
    EXPECT_GT(sys.networkPower().total(), 0.0);
}

TEST_F(CmpEndToEnd, SystemDrainsWhenIdle)
{
    // After the cores stop issuing (idled), in-flight traffic drains.
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(workloadByName("canl"));
    sys.run(4000);
    for (NodeId n = 0; n < 64; ++n)
        sys.idleCore(n);
    sys.run(6000);
    EXPECT_EQ(sys.network().packetsInFlight(), 0u);
}

TEST_F(CmpEndToEnd, SharingWorkloadGeneratesInvalidations)
{
    // A write-heavy shared workload must produce more packets per
    // instruction than a private streaming one.
    CmpConfig cfg;
    CmpSystem shared_sys(makeLayoutConfig(LayoutKind::Baseline), cfg);
    shared_sys.assignWorkloadAll(workloadByName("TPC-C"));
    shared_sys.run(6000);

    CmpSystem priv_sys(makeLayoutConfig(LayoutKind::Baseline), cfg);
    priv_sys.assignWorkloadAll(workloadByName("vips"));
    priv_sys.run(6000);

    EXPECT_GT(shared_sys.packetsSent(), priv_sys.packetsSent() / 2);
}

TEST_F(CmpEndToEnd, AsymmetricCoresDifferInIpc)
{
    CmpConfig cfg;
    cfg.asymmetric = true;
    cfg.largeCoreTiles = {0, 7, 56, 63};
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), cfg);
    sys.assignWorkloadAll(workloadByName("SPECjbb"));
    sys.warmCaches(30000);
    sys.run(2000);
    sys.resetStats();
    sys.run(8000);

    double large_ipc = (sys.ipc(0) + sys.ipc(7) + sys.ipc(56) +
                        sys.ipc(63)) / 4.0;
    double small_ipc = sys.ipc(27);
    EXPECT_GT(large_ipc, small_ipc * 1.5);
}

} // namespace
} // namespace hnoc
