/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: router
 * step throughput, whole-network cycles/second for the baseline and
 * Diagonal+BL configurations, and the analytic models.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/bitops.hh"
#include "common/job_pool.hh"
#include "heteronoc/constraints.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/sim_harness.hh"
#include "noc/traffic.hh"
#include "power/router_power.hh"
#include "telemetry/blame.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace
{

using namespace hnoc;

/** Telemetry attachment level for the network-step benchmarks. */
enum class TelemetryLevel
{
    Off,      ///< no registry attached (hooks cost one branch)
    Registry, ///< MetricRegistry attached, no tracing
    Trace,    ///< registry plus a TraceObserver on every router
    Blame,    ///< BlameCollector attached (per-packet stall charging)
};

/** Cycles/second of the full 64-router network under UR load. */
void
networkStep(benchmark::State &state, LayoutKind kind,
            TelemetryLevel level = TelemetryLevel::Off)
{
    NetworkConfig cfg = makeLayoutConfig(kind);
    Network net(cfg);
    std::unique_ptr<MetricRegistry> reg;
    std::unique_ptr<TraceObserver> tracer;
    std::unique_ptr<BlameCollector> blame;
    if (level == TelemetryLevel::Registry ||
        level == TelemetryLevel::Trace) {
        reg = net.makeMetricRegistry(1000);
        net.attachTelemetry(reg.get());
    }
    if (level == TelemetryLevel::Trace) {
        tracer = std::make_unique<TraceObserver>();
        net.setObserver(tracer.get());
    }
    if (level == TelemetryLevel::Blame) {
        blame = net.makeBlameCollector();
        net.attachBlame(blame.get());
    }
    TrafficGenerator gen(TrafficPattern::UniformRandom, 64, 8, 7);
    Cycle now = 0;
    for (auto _ : state) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, 0.03, now)) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
    if (reg)
        benchmark::DoNotOptimize(reg->total(Ctr::BufferWrites));
    if (tracer)
        benchmark::DoNotOptimize(tracer->eventCount());
    if (blame)
        benchmark::DoNotOptimize(blame->packets());
}

void
BM_NetworkStepBaseline(benchmark::State &state)
{
    networkStep(state, LayoutKind::Baseline);
}
BENCHMARK(BM_NetworkStepBaseline);

void
BM_NetworkStepDiagonalBL(benchmark::State &state)
{
    networkStep(state, LayoutKind::DiagonalBL);
}
BENCHMARK(BM_NetworkStepDiagonalBL);

/**
 * Telemetry overhead ladder on the loaded baseline network. The CI
 * perf guard compares BM_NetworkStepBaseline between HNOC_TELEMETRY=ON
 * and OFF builds (hooks-with-no-registry must stay within noise); the
 * two variants below price an attached registry and full tracing.
 */
void
BM_NetworkStepTelemetryRegistry(benchmark::State &state)
{
    networkStep(state, LayoutKind::Baseline, TelemetryLevel::Registry);
}
BENCHMARK(BM_NetworkStepTelemetryRegistry);

void
BM_NetworkStepFullTrace(benchmark::State &state)
{
    networkStep(state, LayoutKind::Baseline, TelemetryLevel::Trace);
}
BENCHMARK(BM_NetworkStepFullTrace);

void
BM_NetworkStepBlame(benchmark::State &state)
{
    networkStep(state, LayoutKind::Baseline, TelemetryLevel::Blame);
}
BENCHMARK(BM_NetworkStepBlame);

/**
 * Cycles/second at a fixed offered load under a chosen scheduler —
 * the active-set vs always-step A/B that records the scheduling
 * speedup in BENCH_trajectory.json. Loads (in flits/node/cycle,
 * divided by the 9-flit data packet to get the injection rate):
 * low = 0.02, mid = 0.2, saturation = offered far beyond acceptance
 * with an in-flight cap so over-saturation cannot grow memory without
 * bound (the cap models a finite-window client, identically for both
 * schedulers).
 */
void
stepLoad(benchmark::State &state, LayoutKind kind, double pkt_rate,
         bool always_step, std::size_t max_in_flight = 0)
{
    NetworkConfig cfg = makeLayoutConfig(kind);
    cfg.alwaysStep = always_step;
    Network net(cfg);
    TrafficGenerator gen(TrafficPattern::UniformRandom, 64, 8, 7);
    Cycle now = 0;
    for (auto _ : state) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, pkt_rate, now)) {
                if (max_in_flight && net.packetsInFlight() >= max_in_flight)
                    continue;
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(net.packetsDelivered());
}

// 0.02 flits/node/cycle on 9-flit data packets.
constexpr double kLowPktRate = 0.02 / 9.0;
// 0.2 flits/node/cycle.
constexpr double kMidPktRate = 0.2 / 9.0;
// Far past saturation; acceptance is throughput-limited.
constexpr double kSatPktRate = 0.2;
constexpr std::size_t kSatInFlightCap = 400;

BENCHMARK_CAPTURE(stepLoad, mesh_low_active, LayoutKind::Baseline,
                  kLowPktRate, false);
BENCHMARK_CAPTURE(stepLoad, mesh_low_always, LayoutKind::Baseline,
                  kLowPktRate, true);
BENCHMARK_CAPTURE(stepLoad, mesh_mid_active, LayoutKind::Baseline,
                  kMidPktRate, false);
BENCHMARK_CAPTURE(stepLoad, mesh_mid_always, LayoutKind::Baseline,
                  kMidPktRate, true);
BENCHMARK_CAPTURE(stepLoad, mesh_sat_active, LayoutKind::Baseline,
                  kSatPktRate, false, kSatInFlightCap);
BENCHMARK_CAPTURE(stepLoad, mesh_sat_always, LayoutKind::Baseline,
                  kSatPktRate, true, kSatInFlightCap);
BENCHMARK_CAPTURE(stepLoad, hetero_low_active, LayoutKind::DiagonalBL,
                  kLowPktRate, false);
BENCHMARK_CAPTURE(stepLoad, hetero_low_always, LayoutKind::DiagonalBL,
                  kLowPktRate, true);
BENCHMARK_CAPTURE(stepLoad, hetero_mid_active, LayoutKind::DiagonalBL,
                  kMidPktRate, false);
BENCHMARK_CAPTURE(stepLoad, hetero_mid_always, LayoutKind::DiagonalBL,
                  kMidPktRate, true);
BENCHMARK_CAPTURE(stepLoad, hetero_sat_active, LayoutKind::DiagonalBL,
                  kSatPktRate, false, kSatInFlightCap);
BENCHMARK_CAPTURE(stepLoad, hetero_sat_always, LayoutKind::DiagonalBL,
                  kSatPktRate, true, kSatInFlightCap);

/**
 * stepLoad with a Profiler attached, exporting the per-phase
 * wall-clock shares as user counters. Not part of the CI overhead
 * filter (the instrumented numbers answer "where does the time go",
 * not "how fast is it"); run it by hand to localize a stepLoad
 * regression to a pipeline phase — see DESIGN.md §6d for the
 * saturation-case attribution this produced.
 */
void
profiledStepLoad(benchmark::State &state, LayoutKind kind,
                 double pkt_rate, std::size_t max_in_flight = 0)
{
    NetworkConfig cfg = makeLayoutConfig(kind);
    Network net(cfg);
    Profiler prof;
    net.attachProfiler(&prof);
    TrafficGenerator gen(TrafficPattern::UniformRandom, 64, 8, 7);
    Cycle now = 0;
    for (auto _ : state) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, pkt_rate, now)) {
                if (max_in_flight && net.packetsInFlight() >= max_in_flight)
                    continue;
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(net.packetsDelivered());
    if (prof.ns(ProfPhase::StepTotal) == 0)
        return; // HNOC_TELEMETRY=OFF build: nothing collected
    auto total = static_cast<double>(prof.ns(ProfPhase::StepTotal));
    auto share = [&](const char *name, std::uint64_t ns) {
        state.counters[name] =
            benchmark::Counter(100.0 * static_cast<double>(ns) / total);
    };
    share("pct_channel_delivery", prof.ns(ProfPhase::ChannelDelivery));
    share("pct_ni_eject", prof.ns(ProfPhase::NiEject));
    share("pct_route_compute", prof.ns(ProfPhase::RouteCompute));
    share("pct_vc_allocate", prof.ns(ProfPhase::VcAllocate));
    share("pct_switch_allocate", prof.ns(ProfPhase::SwitchAllocate));
    share("pct_ni_inject", prof.ns(ProfPhase::NiInject));
    share("pct_scan_overhead", prof.unattributedNs());
    if (prof.numBlocks() > 0)
        state.counters["bytes_streamed_per_cycle"] =
            benchmark::Counter(prof.bytesStreamedPerCycle());
    state.counters["visits_per_cycle_sa"] = benchmark::Counter(
        static_cast<double>(prof.visits(ProfPhase::SwitchAllocate)) /
        static_cast<double>(prof.cycles() ? prof.cycles() : 1));
}
BENCHMARK_CAPTURE(profiledStepLoad, mesh_mid, LayoutKind::Baseline,
                  kMidPktRate);
BENCHMARK_CAPTURE(profiledStepLoad, mesh_sat, LayoutKind::Baseline,
                  kSatPktRate, kSatInFlightCap);

/**
 * Bitmask-arbiter microbenchmark isolating the VA/SA inner loops from
 * the rest of the router. One iteration is one arbitration cycle over
 * an 80-slot request ring (a flatfly-scale ports * vcs product, so the
 * multi-word mask path is exercised): a VA-style pass that visits every
 * requester in rotating-priority order and claims the first free
 * downstream VC, then an SA-style single-grant rotate-mask + ctz pick.
 * dense_reqs sets every slot (the saturated-router worst case);
 * sparse_reqs sets every 13th (the low-load common case where ctz
 * skips whole idle words).
 */
void
arbiter(benchmark::State &state, int nbits, int stride)
{
    std::uint64_t req[4] = {};
    const int nwords = bitops::maskWords(nbits);
    for (int i = 0; i < nbits; i += stride)
        bitops::maskSet(req, i);
    std::uint64_t alloc = 0;
    Cycle now = 0;
    std::uint64_t grants = 0;
    for (auto _ : state) {
        int start = static_cast<int>(now % nbits);
        bitops::forEachSetCyclic(req, nwords, nbits, start, [&](int) {
            int v = bitops::firstClearInRange64(alloc, 0, 7);
            if (v >= 0) {
                alloc |= std::uint64_t{1} << v;
                ++grants;
            }
            return true;
        });
        alloc = 0;
        int g = bitops::pickRoundRobin(req, nwords, nbits, start);
        benchmark::DoNotOptimize(g);
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(grants));
    benchmark::DoNotOptimize(grants);
}
BENCHMARK_CAPTURE(arbiter, dense_reqs, 80, 1);
BENCHMARK_CAPTURE(arbiter, sparse_reqs, 80, 13);

/**
 * Cycles/second of an idle network: no injection, so every router's
 * routeCompute should skip all slots via the empty-rcMask fast path.
 */
void
BM_NetworkStepIdle(benchmark::State &state)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    Network net(cfg);
    for (auto _ : state)
        net.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStepIdle);

/** Job-pool overhead: submit + drain a burst of trivial jobs. */
void
BM_JobPoolSubmitDrain(benchmark::State &state)
{
    JobPool pool(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto results = pool.runOrdered(
            64, [](std::size_t i) { return static_cast<int>(i * i); });
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_JobPoolSubmitDrain)->Arg(1)->Arg(2)->Arg(4);

namespace
{

const std::vector<double> kSweepRates = {0.01, 0.02, 0.03, 0.04};

SimPointOptions
sweepBenchOptions()
{
    // Short but non-trivial points; the serial/parallel pair below is
    // the perf-trajectory probe for the experiment engine.
    SimPointOptions opts;
    opts.warmupCycles = 500;
    opts.measureCycles = 1500;
    opts.drainCycles = 3000;
    return opts;
}

} // namespace

void
BM_SweepLoadSerial(benchmark::State &state)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    for (auto _ : state) {
        auto curve = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                                     kSweepRates, sweepBenchOptions());
        benchmark::DoNotOptimize(curve.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSweepRates.size()));
}
BENCHMARK(BM_SweepLoadSerial)->Unit(benchmark::kMillisecond);

void
BM_SweepLoadParallel(benchmark::State &state)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    JobPool pool(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto curve = sweepLoad(cfg, TrafficPattern::UniformRandom,
                               kSweepRates, sweepBenchOptions(), &pool);
        benchmark::DoNotOptimize(curve.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSweepRates.size()));
}
BENCHMARK(BM_SweepLoadParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Adaptive vs reference windows on the fig07 UR load sweep (Baseline
 * layout): the perf-trajectory probe for the simulation controller.
 * User counters carry the gate inputs: total simulated cycles,
 * pre-saturation mean latency, and the count of saturation-region
 * points (saturated, or accepted < 95 % of offered — the same rule
 * preSaturationAvgLatencyNs applies), so check_perf_regression.py can
 * assert >= 40 % cycle savings with <= 1 % latency drift and identical
 * saturation classification between the two variants.
 */
void
adaptiveSweep(benchmark::State &state, bool adaptive)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    const std::vector<double> rates = {0.004, 0.012, 0.020, 0.028,
                                       0.036, 0.044, 0.052, 0.060,
                                       0.068};
    SimPointOptions opts;
    opts.warmupCycles = 6000;
    opts.measureCycles = 15000;
    opts.drainCycles = 30000;
    if (adaptive)
        opts.control.mode = SimControlMode::Adaptive;

    std::uint64_t cycles = 0;
    double presat = 0.0;
    std::uint64_t sat_points = 0;
    for (auto _ : state) {
        auto curve = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                                     rates, opts);
        cycles = 0;
        sat_points = 0;
        for (const auto &p : curve) {
            cycles += p.simulatedCycles;
            if (p.saturated ||
                (p.offeredRate > 0.0 &&
                 p.acceptedRate < 0.95 * p.offeredRate))
                ++sat_points;
        }
        presat = preSaturationAvgLatencyNs(curve);
        benchmark::DoNotOptimize(curve.data());
    }
    state.counters["simulated_cycles"] =
        benchmark::Counter(static_cast<double>(cycles));
    state.counters["presat_latency_ns"] = benchmark::Counter(presat);
    state.counters["saturated_points"] =
        benchmark::Counter(static_cast<double>(sat_points));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(rates.size()));
}
BENCHMARK_CAPTURE(adaptiveSweep, fig07_ur_reference, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(adaptiveSweep, fig07_ur_adaptive, true)
    ->Unit(benchmark::kMillisecond);

void
BM_PowerModelCalibration(benchmark::State &state)
{
    for (auto _ : state) {
        auto model =
            RouterPowerModel::calibrated(router_types::BIG, 2.07);
        benchmark::DoNotOptimize(model.powerAtActivity(0.5).total());
    }
}
BENCHMARK(BM_PowerModelCalibration);

void
BM_ResourceAccounting(benchmark::State &state)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    for (auto _ : state) {
        auto acc = accountResources(cfg);
        benchmark::DoNotOptimize(acc.bufferBits);
    }
}
BENCHMARK(BM_ResourceAccounting);

} // namespace

// Flag-equivalent default repetitions: per-benchmark ->Repetitions()
// would rename every series to "<name>/repeats:N" and break the
// trajectory/CI series keys, so inject the flag instead when the
// caller did not pass one (explicit flags still win).
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    char default_reps[] = "--benchmark_repetitions=3";
    bool has_reps = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_repetitions",
                         sizeof("--benchmark_repetitions") - 1) == 0)
            has_reps = true;
    if (!has_reps)
        args.insert(args.begin() + 1, default_reps);
    int ac = static_cast<int>(args.size());
    benchmark::Initialize(&ac, args.data());
    if (benchmark::ReportUnrecognizedArguments(ac, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
