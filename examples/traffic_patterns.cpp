/**
 * @file
 * Traffic-pattern tour: compare the baseline and Diagonal+BL networks
 * under all five synthetic patterns at a chosen load, including the
 * nearest-neighbor anomaly (§5.1) and the bursty self-similar source.
 *
 *   ./examples/traffic_patterns [rate=0.03]
 */

#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

using namespace hnoc;

int
main(int argc, char **argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 0.03;

    NetworkConfig base = makeLayoutConfig(LayoutKind::Baseline);
    NetworkConfig het = makeLayoutConfig(LayoutKind::DiagonalBL);

    const TrafficPattern patterns[] = {
        TrafficPattern::UniformRandom, TrafficPattern::NearestNeighbor,
        TrafficPattern::Transpose, TrafficPattern::BitComplement,
        TrafficPattern::SelfSimilar};

    std::printf("injection rate %.3f packets/node/cycle\n\n", rate);
    std::printf("%-18s %14s %14s %12s %12s\n", "pattern",
                "baseline (ns)", "hetero (ns)", "base P (W)",
                "hetero P (W)");
    // All (network, pattern) points are independent: run the whole
    // tour as one parallel batch on the shared pool.
    std::vector<BatchPoint> batch;
    for (TrafficPattern p : patterns) {
        for (const NetworkConfig &cfg : {base, het}) {
            BatchPoint bp;
            bp.config = cfg;
            bp.pattern = p;
            bp.opts.injectionRate = rate;
            batch.push_back(std::move(bp));
        }
    }
    std::vector<SimPointResult> results = runBatch(batch);
    for (std::size_t i = 0; i < std::size(patterns); ++i) {
        const SimPointResult &rb = results[2 * i];
        const SimPointResult &rh = results[2 * i + 1];
        std::printf("%-18s %13.1f%s %13.1f%s %12.1f %12.1f\n",
                    trafficPatternName(patterns[i]).c_str(),
                    rb.avgLatencyNs, rb.saturated ? "*" : " ",
                    rh.avgLatencyNs, rh.saturated ? "*" : " ",
                    rb.networkPowerW, rh.networkPowerW);
    }
    std::printf("(* = network saturated at this load)\n");
    return 0;
}
