/**
 * @file
 * Figure 14 (case study II): an asymmetric CMP — 4 large out-of-order
 * cores at the mesh corners running libquantum, 60 small in-order
 * cores running SPECjbb — under three networks:
 *   HomoNoC-XY          homogeneous mesh, X-Y routing
 *   HeteroNoC-XY        Diagonal+BL, X-Y routing
 *   HeteroNoC-Table+XY  Diagonal+BL, table routing through big routers
 *                       for large-core traffic (escape VC 0)
 * Reports weighted and harmonic speedups (Eyerman-Eeckhout style over
 * the two programs; harmonic uses SPECjbb's slowest thread).
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

namespace
{

const std::vector<NodeId> LARGE_CORES = {0, 7, 56, 63};

struct Speedups
{
    double weighted;
    double harmonic;
};

struct ProgramIpc
{
    double libq = 0.0;    ///< mean over the 4 large cores
    double jbbAvg = 0.0;  ///< mean over the 60 small cores
    double jbbSlow = 0.0; ///< slowest SPECjbb thread
};

ProgramIpc
measure(const NetworkConfig &net_cfg, bool run_libq, bool run_jbb)
{
    CmpConfig cmp;
    cmp.asymmetric = true;
    cmp.largeCoreTiles = LARGE_CORES;

    CmpSystem sys(net_cfg, cmp);
    for (NodeId n = 0; n < 64; ++n) {
        bool large = std::find(LARGE_CORES.begin(), LARGE_CORES.end(),
                               n) != LARGE_CORES.end();
        if (large && run_libq)
            sys.assignWorkload(n, workloadByName("libquantum"));
        else if (!large && run_jbb)
            sys.assignWorkload(n, workloadByName("SPECjbb"));
    }
    sys.warmCaches(static_cast<int>(scaled(40000)));
    sys.run(scaled(3000));
    sys.resetStats();
    sys.run(scaled(15000));

    ProgramIpc out;
    if (run_libq) {
        for (NodeId n : LARGE_CORES)
            out.libq += sys.ipc(n);
        out.libq /= static_cast<double>(LARGE_CORES.size());
    }
    if (run_jbb) {
        double slow = 1e9;
        int cnt = 0;
        for (NodeId n = 0; n < 64; ++n) {
            if (std::find(LARGE_CORES.begin(), LARGE_CORES.end(), n) !=
                LARGE_CORES.end())
                continue;
            double v = sys.ipc(n);
            out.jbbAvg += v;
            slow = std::min(slow, v);
            ++cnt;
        }
        out.jbbAvg /= cnt;
        out.jbbSlow = slow;
    }
    return out;
}

Speedups
evaluate(const char *name, const NetworkConfig &net_cfg)
{
    ProgramIpc together = measure(net_cfg, true, true);
    ProgramIpc libq_alone = measure(net_cfg, true, false);
    ProgramIpc jbb_alone = measure(net_cfg, false, true);

    double su_libq = together.libq / libq_alone.libq;
    double su_jbb = together.jbbAvg / jbb_alone.jbbAvg;
    double su_jbb_slow = together.jbbSlow / jbb_alone.jbbSlow;

    Speedups s;
    s.weighted = su_libq + su_jbb;
    s.harmonic = 2.0 / (1.0 / su_libq + 1.0 / su_jbb_slow);
    std::printf("%-22s weighted %6.3f   harmonic %6.3f   "
                "(libq su %.3f, jbb su %.3f, slowest jbb su %.3f)\n",
                name, s.weighted, s.harmonic, su_libq, su_jbb,
                su_jbb_slow);
    return s;
}

} // namespace

int
main()
{
    printHeader("Figure 14",
                "asymmetric CMP: 4x libquantum (large cores) + 60x "
                "SPECjbb (small cores)");

    NetworkConfig homo = makeLayoutConfig(LayoutKind::Baseline);
    NetworkConfig hetero = makeLayoutConfig(LayoutKind::DiagonalBL);
    NetworkConfig hetero_table = hetero;
    hetero_table.name = "Diagonal+BL+Table";
    hetero_table.routing = RoutingMode::TableXY;
    hetero_table.tableRoutedNodes = LARGE_CORES;

    Speedups a = evaluate("HomoNoC-XY", homo);
    Speedups b = evaluate("HeteroNoC-XY", hetero);
    Speedups c = evaluate("HeteroNoC-Table+XY", hetero_table);

    std::printf("\nweighted speedup vs HomoNoC-XY: HeteroNoC-XY %+.1f%%,"
                " HeteroNoC-Table+XY %+.1f%% (paper: +6%% / +11%%)\n",
                pctOver(a.weighted, b.weighted),
                pctOver(a.weighted, c.weighted));
    std::printf("harmonic speedup vs HomoNoC-XY: HeteroNoC-XY %+.1f%%,"
                " HeteroNoC-Table+XY %+.1f%% (paper: +11.5%% for "
                "Table+XY)\n",
                pctOver(a.harmonic, b.harmonic),
                pctOver(a.harmonic, c.harmonic));
    return 0;
}
