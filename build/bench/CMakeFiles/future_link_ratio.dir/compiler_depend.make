# Empty compiler generated dependencies file for future_link_ratio.
# This may be replaced when dependencies are built.
