/**
 * @file
 * Flits and packets: the units of transfer in the wormhole network.
 */

#ifndef HNOC_NOC_FLIT_HH
#define HNOC_NOC_FLIT_HH

#include <cstdint>

#include "common/types.hh"

namespace hnoc
{

struct BlameLedger;

/** Position of a flit within its packet. */
enum class FlitType : std::uint8_t
{
    Head,     ///< first flit; carries routing information
    Body,     ///< middle flit
    Tail,     ///< last flit; releases the virtual channels it held
    HeadTail, ///< single-flit packet (address/control packets)
};

/**
 * A packet in flight. Flits reference their packet; the Network owns
 * packet storage and recycles it after ejection.
 */
struct Packet
{
    PacketId id = 0;
    NodeId src = INVALID_NODE;
    NodeId dst = INVALID_NODE;
    int numFlits = 1;

    /** Cycle the client handed the packet to the source queue. */
    Cycle createdAt = 0;
    /** Cycle the head flit left the network interface. */
    Cycle injectedAt = CYCLE_NEVER;
    /** Cycle the tail flit arrived at the destination interface. */
    Cycle ejectedAt = CYCLE_NEVER;

    /** Routers traversed (filled in as the head advances). */
    int hops = 0;

    /** Case-study II: route via the big-router table where available. */
    bool tableRouted = false;
    /** Set once the packet fell back to the X-Y escape layer. */
    bool escaped = false;
    /** O1TURN: this packet routes Y-first (upper VC class). */
    bool yxRouted = false;

    /** Client-defined tag (e.g. coherence message kind). */
    std::uint64_t tag = 0;
    /** Client-owned payload (coherence message, MC request, ...). */
    void *context = nullptr;

    /** Stall-cause ledger while a BlameCollector is attached; owned
     *  by the collector's pool, null otherwise (and always null under
     *  HNOC_TELEMETRY=OFF). Report-only: never read by the model. */
    BlameLedger *blame = nullptr;

    /** @return total network residency in cycles (eject - inject). */
    Cycle
    networkLatency() const
    {
        return ejectedAt - injectedAt;
    }

    /** @return source-queue waiting time in cycles. */
    Cycle
    queuingLatency() const
    {
        return injectedAt - createdAt;
    }
};

/** One flit. Stored by value inside VC FIFOs and channel pipes. */
struct Flit
{
    Packet *pkt = nullptr;
    FlitType type = FlitType::HeadTail;
    std::uint16_t seq = 0;      ///< index within the packet
    VcId vc = 0;                ///< VC id on the channel being traversed
    Cycle arrivedAt = 0;        ///< buffer-write cycle at current router

    bool
    isHead() const
    {
        return type == FlitType::Head || type == FlitType::HeadTail;
    }

    bool
    isTail() const
    {
        return type == FlitType::Tail || type == FlitType::HeadTail;
    }
};

} // namespace hnoc

#endif // HNOC_NOC_FLIT_HH
