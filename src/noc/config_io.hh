/**
 * @file
 * NetworkConfig text serialization: a stable key=value format so
 * experiment configurations can be saved, diffed and replayed
 * (hnoc_cli --dump-config / --config).
 */

#ifndef HNOC_NOC_CONFIG_IO_HH
#define HNOC_NOC_CONFIG_IO_HH

#include <string>

#include "noc/network_config.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{

/** Stable short name of @p t ("mesh", "torus", "cmesh", "flatfly"). */
const char *topologyName(TopologyType t);

/** Serialize @p config to the key=value text format. */
std::string configToString(const NetworkConfig &config);

/**
 * Parse a configuration previously produced by configToString.
 * Unknown keys are fatal (catches typos and version skew).
 */
NetworkConfig configFromString(const std::string &text);

/** Write @p config to @p path. @return true on success. */
bool saveConfig(const NetworkConfig &config, const std::string &path);

/** Load a configuration from @p path; fatal on I/O or parse errors. */
NetworkConfig loadConfig(const std::string &path);

/**
 * Serialize the window and simulation-control knobs of @p opts to the
 * same key=value format (doubles at full precision, so a round-trip
 * is exact). Diagnostics (observer, recorder, watchdog) are runtime
 * attachments and are not serialized.
 */
std::string simOptionsToString(const SimPointOptions &opts);

/**
 * Parse options previously produced by simOptionsToString. Unknown
 * keys are fatal (catches typos and version skew).
 */
SimPointOptions simOptionsFromString(const std::string &text);

} // namespace hnoc

#endif // HNOC_NOC_CONFIG_IO_HH
