# Empty dependencies file for extra_cmesh_hetero.
# This may be replaced when dependencies are built.
