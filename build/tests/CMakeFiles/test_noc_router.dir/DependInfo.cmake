
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/test_router.cc" "tests/CMakeFiles/test_noc_router.dir/noc/test_router.cc.o" "gcc" "tests/CMakeFiles/test_noc_router.dir/noc/test_router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sys/CMakeFiles/hnoc_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/heteronoc/CMakeFiles/hnoc_hetero.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
