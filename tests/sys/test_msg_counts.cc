/**
 * @file
 * Protocol message-mix tests via CmpSystem::msgCount, plus the
 * Network::dumpState debug snapshot.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(MsgCounts, ProtocolInvariants)
{
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(workloadByName("TPC-C"));
    sys.warmCaches(20000);
    sys.run(8000);

    auto n = [&](MsgType t) { return sys.msgCount(t); };

    // Requests exist and every request class eventually gets answered.
    EXPECT_GT(n(MsgType::GetS), 0u);
    EXPECT_GT(n(MsgType::GetX), 0u);

    // Data grants can't outnumber requests.
    EXPECT_LE(n(MsgType::DataS) + n(MsgType::DataE) +
                  n(MsgType::DataM) + n(MsgType::UpgradeAck),
              n(MsgType::GetS) + n(MsgType::GetX));

    // Invalidation handshake: acks match invs once drained; during a
    // run acks can lag by in-flight invs only.
    EXPECT_LE(n(MsgType::InvAck), n(MsgType::Inv));
    EXPECT_GE(n(MsgType::InvAck) + 512, n(MsgType::Inv));

    // Forwards produce owner responses.
    EXPECT_LE(n(MsgType::OwnerWb),
              n(MsgType::FwdGetS) + n(MsgType::FwdGetX) + 512);

    // Writebacks get acknowledged.
    EXPECT_LE(n(MsgType::WbAck), n(MsgType::PutM));

    // DRAM reads get responses.
    EXPECT_LE(n(MsgType::MemData), n(MsgType::MemRead));
}

TEST(MsgCounts, SharedWritesDriveInvalidations)
{
    auto invs_for = [](const char *workload) {
        CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline),
                      CmpConfig{});
        sys.assignWorkloadAll(workloadByName(workload));
        sys.warmCaches(20000);
        sys.run(6000);
        return sys.msgCount(MsgType::Inv);
    };
    // TPC-C (8 % shared, 30 % shared writes) invalidates far more than
    // vips (2 % shared, 10 % shared writes).
    EXPECT_GT(invs_for("TPC-C"), 2 * invs_for("vips"));
}

TEST(DumpState, ShowsOccupancyAndQueues)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    for (int i = 0; i < 10; ++i)
        net.enqueuePacket(0, 63, 6);
    net.run(20);
    std::string dump = net.dumpState();
    EXPECT_NE(dump.find("buffer occupancy"), std::string::npos);
    EXPECT_NE(dump.find("in flight"), std::string::npos);
    // Queued packets at node 0 show up.
    EXPECT_NE(dump.find("node 0:"), std::string::npos);
}

} // namespace
} // namespace hnoc
