/**
 * @file
 * Memory-controller placements (Table 2(a) and case study I / Fig 13):
 * four controllers at the mesh corners (baseline), or sixteen in the
 * diamond / diagonal arrangements of Abts et al. [2].
 */

#ifndef HNOC_SYS_MC_PLACEMENT_HH
#define HNOC_SYS_MC_PLACEMENT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace hnoc
{

/** Supported memory-controller arrangements. */
enum class McPlacement
{
    Corners,  ///< 4 MCs at the mesh corners (Table 2 baseline)
    Diamond,  ///< 16 MCs in a rotated-square ring (Abts et al.)
    Diagonal, ///< 16 MCs on both diagonals (co-located with big routers)
};

/** @return the tiles hosting memory controllers for @p placement. */
std::vector<NodeId> mcTiles(McPlacement placement, int radix);

/** @return human-readable placement name. */
std::string mcPlacementName(McPlacement placement);

/**
 * Map a block address to its destination controller: the low-order
 * address bits above the cache line select the MC (§6).
 */
NodeId mcForBlock(Addr block_addr, int block_bytes,
                  const std::vector<NodeId> &mcs);

} // namespace hnoc

#endif // HNOC_SYS_MC_PLACEMENT_HH
