file(REMOVE_RECURSE
  "CMakeFiles/fig08_breakdowns.dir/fig08_breakdowns.cc.o"
  "CMakeFiles/fig08_breakdowns.dir/fig08_breakdowns.cc.o.d"
  "fig08_breakdowns"
  "fig08_breakdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_breakdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
