# Empty dependencies file for test_noc_wide_path.
# This may be replaced when dependencies are built.
