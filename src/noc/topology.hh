/**
 * @file
 * Topology abstractions: who connects to whom, and through which ports.
 *
 * Port numbering convention: directional (router-to-router) ports come
 * first, local (router-to-NI) ports after. For the 2-D mesh/torus the
 * directional ports are N=0, E=1, S=2, W=3 and the local port is 4,
 * matching the 5x5 router of the paper.
 */

#ifndef HNOC_NOC_TOPOLOGY_HH
#define HNOC_NOC_TOPOLOGY_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"
#include "noc/network_config.hh"

namespace hnoc
{

/** The far end of a directional port. */
struct PortPeer
{
    RouterId router = INVALID_ROUTER; ///< INVALID_ROUTER: unconnected edge
    PortId port = INVALID_PORT;       ///< input port index at the peer
    bool wrapX = false;               ///< torus wraparound in X
    bool wrapY = false;               ///< torus wraparound in Y
};

/**
 * Immutable connectivity description of a network.
 *
 * Concrete subclasses implement the paper's four topologies. Routing
 * algorithms consult this for coordinates and port directions.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Factory from a NetworkConfig. */
    static std::unique_ptr<Topology> create(const NetworkConfig &config);

    int numRouters() const { return numRouters_; }
    int numNodes() const { return numRouters_ * concentration_; }
    int numDirPorts() const { return dirPorts_; }
    int concentration() const { return concentration_; }
    int portsPerRouter() const { return dirPorts_ + concentration_; }

    /** @return router hosting terminal node @p n. */
    RouterId
    routerOfNode(NodeId n) const
    {
        return n / concentration_;
    }

    /** @return the full port index of node @p n at its router. */
    PortId
    localPortOfNode(NodeId n) const
    {
        return dirPorts_ + (n % concentration_);
    }

    /** @return terminal node attached to (router, local port), or -1. */
    NodeId
    nodeAt(RouterId r, PortId local_port) const
    {
        return r * concentration_ + (local_port - dirPorts_);
    }

    /** @return grid coordinate of router @p r. */
    Coord
    routerCoord(RouterId r) const
    {
        return idToCoord(r, cols_);
    }

    /** @return router id at grid coordinate @p c. */
    RouterId
    routerAt(Coord c) const
    {
        return coordToId(c, cols_);
    }

    int gridCols() const { return cols_; }
    int gridRows() const { return numRouters_ / cols_; }

    /** @return the peer of directional port @p p at router @p r. */
    const PortPeer &
    peer(RouterId r, PortId p) const
    {
        return peers_[static_cast<std::size_t>(r * dirPorts_ + p)];
    }

    /**
     * Undirected router pairs whose links cross the vertical bisection
     * cut, used by the bandwidth-conservation checker (§2).
     */
    std::vector<std::pair<RouterId, RouterId>> bisectionLinks() const;

  protected:
    Topology(int num_routers, int dir_ports, int concentration, int cols)
        : numRouters_(num_routers), dirPorts_(dir_ports),
          concentration_(concentration), cols_(cols),
          peers_(static_cast<std::size_t>(num_routers * dir_ports))
    {}

    void
    setPeer(RouterId r, PortId p, PortPeer peer)
    {
        peers_[static_cast<std::size_t>(r * dirPorts_ + p)] = peer;
    }

  private:
    int numRouters_;
    int dirPorts_;
    int concentration_;
    int cols_;
    std::vector<PortPeer> peers_;
};

/** Mesh/torus port directions. */
namespace mesh_ports
{
constexpr PortId NORTH = 0;
constexpr PortId EAST = 1;
constexpr PortId SOUTH = 2;
constexpr PortId WEST = 3;
constexpr PortId LOCAL = 4; ///< first local port (concentration 1)
} // namespace mesh_ports

} // namespace hnoc

#endif // HNOC_NOC_TOPOLOGY_HH
