file(REMOVE_RECURSE
  "CMakeFiles/fig14_asymmetric_cmp.dir/fig14_asymmetric_cmp.cc.o"
  "CMakeFiles/fig14_asymmetric_cmp.dir/fig14_asymmetric_cmp.cc.o.d"
  "fig14_asymmetric_cmp"
  "fig14_asymmetric_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_asymmetric_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
