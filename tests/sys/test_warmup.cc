/**
 * @file
 * Functional cache-warmup tests: warmCaches must eliminate the
 * compulsory-miss cold start without touching the timed trace stream.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(Warmup, CutsColdStartMisses)
{
    auto misses_with_warm = [](int warm_ops) {
        CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline),
                      CmpConfig{});
        sys.assignWorkloadAll(workloadByName("SPECjbb"));
        if (warm_ops > 0)
            sys.warmCaches(warm_ops);
        sys.run(4000);
        return sys.l1Misses();
    };
    std::uint64_t cold = misses_with_warm(0);
    std::uint64_t warm = misses_with_warm(40000);
    // Warmed caches hit the hot set immediately; cold-start runs are
    // dominated by compulsory misses per retired instruction. Since
    // the cold system also retires fewer instructions, compare via
    // miss counts: warm runs retire far more work for fewer or
    // comparable misses.
    EXPECT_LT(warm, cold * 3);
}

TEST(Warmup, ImprovesIpcSubstantially)
{
    auto ipc_with_warm = [](int warm_ops) {
        CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline),
                      CmpConfig{});
        sys.assignWorkloadAll(workloadByName("vips"));
        if (warm_ops > 0)
            sys.warmCaches(warm_ops);
        sys.run(1500);
        sys.resetStats();
        sys.run(5000);
        return sys.avgIpc();
    };
    EXPECT_GT(ipc_with_warm(40000), 2.0 * ipc_with_warm(0));
}

TEST(Warmup, DoesNotConsumeTimedTrace)
{
    // Two systems, one warmed, must issue the same first memory
    // operations: warmup uses a twin generator. Verify via identical
    // deterministic packet counts after equal timed runs when both
    // are warmed identically.
    CmpConfig cfg;
    CmpSystem a(makeLayoutConfig(LayoutKind::Baseline), cfg);
    CmpSystem b(makeLayoutConfig(LayoutKind::Baseline), cfg);
    a.assignWorkloadAll(workloadByName("ddup"));
    b.assignWorkloadAll(workloadByName("ddup"));
    a.warmCaches(20000);
    b.warmCaches(20000);
    a.run(3000);
    b.run(3000);
    EXPECT_EQ(a.packetsSent(), b.packetsSent());
    EXPECT_EQ(a.l1Misses(), b.l1Misses());
}

TEST(Warmup, IdleCoresSkipped)
{
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    // Nothing assigned: warmCaches must be a no-op, not a crash.
    sys.warmCaches(10000);
    sys.run(100);
    EXPECT_EQ(sys.packetsSent(), 0u);
}

} // namespace
} // namespace hnoc
