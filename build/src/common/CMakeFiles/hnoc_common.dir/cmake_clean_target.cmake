file(REMOVE_RECURSE
  "libhnoc_common.a"
)
