/**
 * @file
 * Network interface (NI): the attach point of a terminal node.
 *
 * Injection side: an unbounded source queue (the client regulates
 * admission), per-VC credit tracking against the router's local input
 * port, and one packet stream per VC (wormhole: flits of a packet stay
 * in order on one VC). Ejection side: an always-consuming sink that
 * immediately returns credits (the "consumption assumption").
 *
 * The source queue is a growable ring buffer whose backing store is
 * retained across drain/refill cycles, so the steady state enqueues
 * and dequeues without touching the heap.
 *
 * Active-set scheduling: the NI is busy while the source queue holds a
 * packet or any per-VC stream is mid-packet. stepInject on an NI
 * outside that state is provably a no-op (every VC falls through), and
 * the VC round-robin pointer is a pure function of the cycle number,
 * so skipping such cycles is bit-identical to stepping them.
 */

#ifndef HNOC_NOC_NETWORK_INTERFACE_HH
#define HNOC_NOC_NETWORK_INTERFACE_HH

#include <vector>

#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "noc/active_set.hh"
#include "noc/channel.hh"
#include "noc/flit.hh"
#include "power/router_power.hh"

namespace hnoc
{

class Network;

/** Terminal-node adapter between a client and its router. */
class NetworkInterface
{
  public:
    NetworkInterface(NodeId node, Network *net)
        : node_(node), net_(net),
          sourceQueue_(kInitialQueueCapacity, /*growable=*/true)
    {}

    /** Wire the injection channel toward the router's local port.
     *  @param intra_pairing allow two same-packet flits per cycle on
     *  wide local channels (mirrors the in-network §3.2 pairing). */
    void
    connectInjection(Channel *chan, int router_vcs, int buffer_depth,
                     RouterActivity *link_activity, bool intra_pairing)
    {
        inj_ = chan;
        credits_.assign(static_cast<std::size_t>(router_vcs), buffer_depth);
        streams_.assign(static_cast<std::size_t>(router_vcs), Stream{});
        linkActivity_ = link_activity;
        intraPairing_ = intra_pairing;
    }

    /** Wire the ejection channel from the router's local port. */
    void connectEjection(Channel *chan) { ej_ = chan; }

    /** Queue a packet for injection. */
    void
    enqueue(Packet *pkt)
    {
        sourceQueue_.push_back(pkt);
        slot_.markBusy();
    }

    /** Send up to lane-limit flits this cycle. */
    void stepInject(Cycle now);

    /** A credit returned by the router's local input port. */
    void
    receiveCredit(VcId vc)
    {
        ++credits_[static_cast<std::size_t>(vc)];
    }

    /** A flit delivered for ejection. Returns the completed packet
     *  (tail arrived) or nullptr. */
    Packet *receiveFlit(const Flit &flit, Cycle now);

    std::size_t sourceQueueDepth() const { return sourceQueue_.size(); }

    /**
     * @return true if stepInject this cycle can have any effect:
     * a queued packet awaits a stream, or a stream is mid-packet
     * (possibly stalled on credits — stalled streams stay busy so the
     * credit return needs no wakeup hook of its own).
     */
    bool busy() const { return !sourceQueue_.empty() || activeStreams_ > 0; }

    /** Register a dense active list woken (with @p id) on this NI's
     *  idle→busy transitions; call before bindActivitySlot. */
    void
    addActivityWake(ActiveList *list, std::uint32_t id)
    {
        slot_.addWakeHook(list, id);
    }

    /** Bind this NI's cell in the Network's active-set bitmap. */
    void
    bindActivitySlot(std::uint8_t *flag, std::size_t *count)
    {
        slot_.bind(flag, count);
        if (busy())
            slot_.markBusy();
    }

    /** Credits held toward the router's local input VC @p vc
     *  (conservation audit). */
    int
    injectionCredits(VcId vc) const
    {
        return credits_[static_cast<std::size_t>(vc)];
    }

    NodeId node() const { return node_; }

    /** Steady-state memory footprint: credit/stream arrays plus the
     *  source-queue ring's grown high-water capacity. */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(sizeof(*this)) +
               static_cast<std::uint64_t>(credits_.capacity()) *
                   sizeof(int) +
               static_cast<std::uint64_t>(streams_.capacity()) *
                   sizeof(Stream) +
               static_cast<std::uint64_t>(sourceQueue_.capacity()) *
                   sizeof(Packet *);
    }

  private:
    /** An in-progress packet transmission bound to one VC. */
    struct Stream
    {
        Packet *pkt = nullptr;
        int nextSeq = 0;
    };

    static constexpr std::size_t kInitialQueueCapacity = 16;

    // Hot-first member order (§6g): the stepInject path reads the
    // queue, streams, credits and pairing flag every active cycle;
    // the stats attachment trails as the cold tail.
    NodeId node_;
    Network *net_;
    Channel *inj_ = nullptr;
    Channel *ej_ = nullptr;
    std::vector<int> credits_;
    std::vector<Stream> streams_;
    RingBuffer<Packet *> sourceQueue_;
    int activeStreams_ = 0; ///< streams with a packet in flight
    bool intraPairing_ = true;
    ActivitySlot slot_;
    RouterActivity *linkActivity_ = nullptr;
};

} // namespace hnoc

#endif // HNOC_NOC_NETWORK_INTERFACE_HH
