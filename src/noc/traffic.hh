/**
 * @file
 * Synthetic traffic patterns (paper §4): uniform random, nearest
 * neighbor, transpose, bit-complement, and self-similar (bounded
 * Pareto on/off modulation of uniform-random destinations).
 */

#ifndef HNOC_NOC_TRAFFIC_HH
#define HNOC_NOC_TRAFFIC_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace hnoc
{

/** Synthetic destination/timing patterns. */
enum class TrafficPattern
{
    UniformRandom,
    NearestNeighbor,
    Transpose,
    BitComplement,
    SelfSimilar,
};

/** @return human-readable pattern name. */
std::string trafficPatternName(TrafficPattern p);

/**
 * Per-network traffic generator: destination selection plus, for the
 * self-similar pattern, per-node bounded-Pareto on/off burst timing.
 */
class TrafficGenerator
{
  public:
    /**
     * @param pattern the synthetic pattern
     * @param num_nodes terminal count (must be a square grid for the
     *        spatial patterns; a power of two for bit-complement)
     * @param grid_cols width of the node grid for spatial patterns
     * @param seed deterministic seed
     */
    TrafficGenerator(TrafficPattern pattern, int num_nodes, int grid_cols,
                     std::uint64_t seed);

    /**
     * @return destination for a packet from @p src, or INVALID_NODE if
     * this node does not inject under the pattern (e.g. transpose
     * diagonal).
     */
    NodeId pickDest(NodeId src);

    /**
     * @return true when node @p src should attempt injection this
     * cycle at average rate @p rate (packets/node/cycle). Encapsulates
     * the Bernoulli process and, for self-similar, the on/off bursts.
     */
    bool shouldInject(NodeId src, double rate, Cycle now);

  private:
    struct BurstState
    {
        bool on = false;
        Cycle phaseEnd = 0;
    };

    TrafficPattern pattern_;
    int numNodes_;
    int gridCols_;
    Rng rng_;
    std::vector<BurstState> burst_;
    double onRateScale_ = 1.0;
};

} // namespace hnoc

#endif // HNOC_NOC_TRAFFIC_HH
