# Empty compiler generated dependencies file for sweep_provisioning.
# This may be replaced when dependencies are built.
