# Empty dependencies file for fig13_memory_controllers.
# This may be replaced when dependencies are built.
