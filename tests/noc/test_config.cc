/**
 * @file
 * NetworkConfig unit tests: derived quantities, per-router overrides,
 * link-width modes, and physical-parameter extraction.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/network_config.hh"
#include "noc/sim_harness.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(NetworkConfig, PacketSizing)
{
    NetworkConfig cfg;
    cfg.flitWidthBits = 192;
    EXPECT_EQ(cfg.dataPacketFlits(), 6); // 1024 / 192 rounded up
    cfg.flitWidthBits = 128;
    EXPECT_EQ(cfg.dataPacketFlits(), 8);
    cfg.flitWidthBits = 96;
    EXPECT_EQ(cfg.dataPacketFlits(), 11);
}

TEST(NetworkConfig, DefaultsAndOverrides)
{
    NetworkConfig cfg;
    EXPECT_EQ(cfg.vcsOf(0), 3);
    EXPECT_EQ(cfg.widthOf(7), 192);
    cfg.routerVcs.assign(64, 2);
    cfg.routerVcs[5] = 6;
    EXPECT_EQ(cfg.vcsOf(5), 6);
    EXPECT_EQ(cfg.vcsOf(6), 2);
}

TEST(NetworkConfig, EndpointMaxChannelWidths)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    // Router 0 (0,0) is big; router 1 (1,0) is small; router 2 small.
    EXPECT_EQ(cfg.channelBits(0, 1), 256); // small-big: wide
    EXPECT_EQ(cfg.channelBits(1, 2), 128); // small-small: narrow
    EXPECT_EQ(cfg.channelBits(27, 28), 256); // big-big center
    EXPECT_EQ(cfg.localChannelBits(0), 256);
    EXPECT_EQ(cfg.localChannelBits(1), 128);
}

TEST(NetworkConfig, PhysParamsCarryFlitWidthAsBufferWidth)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    RouterPhysParams big = cfg.physParamsOf(0, 5); // diagonal corner
    EXPECT_EQ(big.vcsPerPort, 6);
    EXPECT_EQ(big.datapathBits, 256);
    EXPECT_EQ(big.bufferWidthBits, 128); // §3.2: 128 b FIFOs
    EXPECT_EQ(big, router_types::BIG);

    RouterPhysParams small = cfg.physParamsOf(1, 5);
    EXPECT_EQ(small, router_types::SMALL);
}

TEST(NetworkConfig, BaselinePhysParamsMatchAnchor)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    EXPECT_EQ(cfg.physParamsOf(27, 5), router_types::BASELINE);
}

TEST(NetworkConfig, WorstCaseClockRule)
{
    // Hetero configs derive 2.07 GHz from the 6-VC big routers.
    Network base(makeLayoutConfig(LayoutKind::Baseline));
    EXPECT_NEAR(base.clockGHz(), 2.20, 1e-9);
    Network het(makeLayoutConfig(LayoutKind::DiagonalBL));
    EXPECT_NEAR(het.clockGHz(), 2.07, 1e-9);
    // Even the buffer-only layouts pay the big-router clock (§3.4).
    Network b_only(makeLayoutConfig(LayoutKind::CenterB));
    EXPECT_NEAR(b_only.clockGHz(), 2.07, 1e-9);
    // Explicit override wins.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.clockGHz = 1.0;
    Network fixed(cfg);
    EXPECT_DOUBLE_EQ(fixed.clockGHz(), 1.0);
}

TEST(NetworkConfig, MinTransferScalesWithDistanceAndSize)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    EXPECT_LT(net.minTransferCycles(0, 1, 1),
              net.minTransferCycles(0, 63, 1));
    EXPECT_LT(net.minTransferCycles(0, 63, 1),
              net.minTransferCycles(0, 63, 6));
    // One extra flit = one extra cycle on single-lane paths.
    EXPECT_EQ(net.minTransferCycles(0, 63, 6) -
                  net.minTransferCycles(0, 63, 5),
              1u);
}

class WorkloadValidity
    : public ::testing::TestWithParam<WorkloadProfile>
{};

TEST_P(WorkloadValidity, ParametersInRange)
{
    const WorkloadProfile &w = GetParam();
    EXPECT_GT(w.memRatio, 0.0);
    EXPECT_LT(w.memRatio, 1.0);
    EXPECT_GE(w.readFrac, 0.0);
    EXPECT_LE(w.readFrac, 1.0);
    EXPECT_GE(w.hotFrac, 0.0);
    EXPECT_LE(w.hotFrac, 1.0);
    EXPECT_GT(w.hotBlocks, 0);
    EXPECT_GT(w.privateBlocks, w.hotBlocks);
    EXPECT_GE(w.sharedFrac, 0.0);
    EXPECT_LT(w.sharedFrac, 0.5);
    EXPECT_GT(w.sharedBlocks, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadValidity,
    ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadProfile> &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(SimScale, DefaultsToOne)
{
    // Unless HNOC_SIM_SCALE is exported, scaling is the identity.
    if (!std::getenv("HNOC_SIM_SCALE")) {
        EXPECT_DOUBLE_EQ(simScale(), 1.0);
    }
}

} // namespace
} // namespace hnoc
