/**
 * @file
 * CacheArray unit tests: lookup/insert/invalidate semantics, LRU
 * replacement, state transitions, set-index mixing.
 */

#include <gtest/gtest.h>

#include "sys/cache.hh"

namespace hnoc
{
namespace
{

constexpr int BLOCK = 128;

TEST(CacheArray, MissThenHit)
{
    CacheArray c(4 * 1024, 4, BLOCK);
    Addr victim;
    CacheState vstate;
    EXPECT_EQ(c.lookup(0x1000), CacheState::Invalid);
    EXPECT_FALSE(c.insert(0x1000, CacheState::Shared, victim, vstate));
    EXPECT_EQ(c.lookup(0x1000), CacheState::Shared);
    // Same block, different offset.
    EXPECT_EQ(c.lookup(0x1000 + 64), CacheState::Shared);
    // Different block.
    EXPECT_EQ(c.lookup(0x1000 + BLOCK), CacheState::Invalid);
}

TEST(CacheArray, StateUpdateInPlace)
{
    CacheArray c(4 * 1024, 4, BLOCK);
    Addr victim;
    CacheState vstate;
    c.insert(0x2000, CacheState::Exclusive, victim, vstate);
    c.setState(0x2000, CacheState::Modified);
    EXPECT_EQ(c.lookup(0x2000), CacheState::Modified);
}

TEST(CacheArray, InvalidateRemoves)
{
    CacheArray c(4 * 1024, 4, BLOCK);
    Addr victim;
    CacheState vstate;
    c.insert(0x3000, CacheState::Modified, victim, vstate);
    c.invalidate(0x3000);
    EXPECT_EQ(c.lookup(0x3000), CacheState::Invalid);
    c.invalidate(0x3000); // idempotent on absent lines
}

TEST(CacheArray, LruEvictsColdestWay)
{
    // Direct construction of set conflicts is awkward with index
    // mixing, so fill far beyond capacity and verify eviction
    // accounting instead.
    CacheArray c(2 * 1024, 2, BLOCK); // 16 lines
    Addr victim;
    CacheState vstate;
    int evictions = 0;
    for (int i = 0; i < 64; ++i) {
        if (c.insert(static_cast<Addr>(i) * BLOCK, CacheState::Shared,
                     victim, vstate))
            ++evictions;
    }
    EXPECT_GE(evictions, 64 - 16);
    EXPECT_EQ(c.evictions, static_cast<std::uint64_t>(evictions));
}

TEST(CacheArray, TouchProtectsFromEviction)
{
    // Behavioral LRU check robust to index mixing: a continuously
    // touched line must survive a stream of conflicting inserts.
    Addr victim;
    CacheState vstate;
    CacheArray lru(4 * 1024, 4, BLOCK);
    lru.insert(0x100 * BLOCK, CacheState::Shared, victim, vstate);
    for (int i = 0; i < 200; ++i) {
        lru.touch(0x100 * BLOCK);
        lru.insert(static_cast<Addr>(i) * BLOCK, CacheState::Shared,
                   victim, vstate);
    }
    EXPECT_NE(lru.lookup(0x100 * BLOCK), CacheState::Invalid)
        << "continuously touched line must stay resident";
}

TEST(CacheArray, HighBitsDontAlias)
{
    // Per-core private bases differ only above bit 32; they must not
    // all collapse into the same sets.
    CacheArray c(32 * 1024, 4, BLOCK); // 256 lines
    Addr victim;
    CacheState vstate;
    int evictions = 0;
    for (int core = 0; core < 64; ++core) {
        Addr base = static_cast<Addr>(core + 1) << 32;
        for (int b = 0; b < 4; ++b)
            if (c.insert(base + static_cast<Addr>(b) * BLOCK,
                         CacheState::Shared, victim, vstate))
                ++evictions;
    }
    // 256 inserts into 256 lines: with good index mixing, few
    // evictions; with aliasing, ~192.
    EXPECT_LT(evictions, 120);
}

TEST(CacheArray, BlockAlignment)
{
    CacheArray c(4 * 1024, 4, BLOCK);
    EXPECT_EQ(c.blockAddr(0x12345), static_cast<Addr>(0x12345) & ~0x7FULL);
    EXPECT_EQ(c.blockBytes(), BLOCK);
}

} // namespace
} // namespace hnoc
