/**
 * @file
 * RingBuffer unit tests: wraparound, full/empty edges, overflow
 * policies, capacity rounding, and the config-driven sizing used by
 * the NoC hot path.
 */

#include <gtest/gtest.h>

#include "common/ring_buffer.hh"

namespace hnoc
{
namespace
{

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    EXPECT_FALSE(rb.full());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(RingBuffer<int>(1).capacity(), 1u);
    EXPECT_EQ(RingBuffer<int>(2).capacity(), 2u);
    EXPECT_EQ(RingBuffer<int>(3).capacity(), 4u);
    EXPECT_EQ(RingBuffer<int>(5).capacity(), 8u);
    EXPECT_EQ(RingBuffer<int>(8).capacity(), 8u);
    EXPECT_EQ(RingBuffer<int>(9).capacity(), 16u);
    // Degenerate request still yields a usable ring.
    EXPECT_EQ(RingBuffer<int>(0).capacity(), 1u);
}

TEST(RingBuffer, FifoOrderAcrossWraparound)
{
    RingBuffer<int> rb(4);
    // Cycle the head around the backing store several times.
    for (int round = 0; round < 10; ++round) {
        rb.push_back(3 * round);
        rb.push_back(3 * round + 1);
        rb.push_back(3 * round + 2);
        EXPECT_EQ(rb.size(), 3u);
        EXPECT_EQ(rb.front(), 3 * round);
        rb.pop_front();
        EXPECT_EQ(rb.front(), 3 * round + 1);
        rb.pop_front();
        EXPECT_EQ(rb.front(), 3 * round + 2);
        rb.pop_front();
        EXPECT_TRUE(rb.empty());
    }
}

TEST(RingBuffer, IndexingIsFrontRelative)
{
    RingBuffer<int> rb(4);
    rb.push_back(0);
    rb.push_back(1);
    rb.pop_front(); // head no longer at slot 0
    rb.push_back(2);
    rb.push_back(3);
    rb.push_back(4); // wraps physically
    ASSERT_EQ(rb.size(), 4u);
    EXPECT_TRUE(rb.full());
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], static_cast<int>(i) + 1);
}

TEST(RingBuffer, FixedOverflowIsFatal)
{
    RingBuffer<int> rb(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_TRUE(rb.full());
    EXPECT_DEATH(rb.push_back(3), "ring buffer overflow");
}

TEST(RingBuffer, GrowablePreservesOrderAcrossGrowth)
{
    RingBuffer<int> rb(2, /*growable=*/true);
    // Offset the head first so growth has to linearize a wrapped ring.
    rb.push_back(-1);
    rb.pop_front();
    for (int i = 0; i < 100; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 100u);
    EXPECT_GE(rb.capacity(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowableRetainsStorageAfterDrain)
{
    RingBuffer<int> rb(2, /*growable=*/true);
    for (int i = 0; i < 50; ++i)
        rb.push_back(i);
    std::size_t grown = rb.capacity();
    while (!rb.empty())
        rb.pop_front();
    // The pooled backing store survives the drain: refilling to the
    // same depth must not grow again.
    for (int i = 0; i < 50; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), grown);
}

TEST(RingBuffer, ClearEmptiesWithoutReleasingCapacity)
{
    RingBuffer<int> rb(8);
    rb.push_back(1);
    rb.push_back(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 8u);
    rb.push_back(7);
    EXPECT_EQ(rb.front(), 7);
}

TEST(RingBuffer, ResetResizesFromConfigValues)
{
    // The VC FIFO pattern: default-constructed member, sized later
    // from the configured buffer depth.
    RingBuffer<int> rb;
    EXPECT_EQ(rb.capacity(), 0u);
    rb.reset(5);
    EXPECT_EQ(rb.capacity(), 8u);
    for (int i = 0; i < 5; ++i)
        rb.push_back(i);
    rb.reset(3);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 4u);
}

} // namespace
} // namespace hnoc
