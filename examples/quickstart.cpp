/**
 * @file
 * Quickstart: build a HeteroNoC, inject some traffic, read the core
 * metrics. This is the five-minute tour of the public API.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "heteronoc/constraints.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

using namespace hnoc;

int
main()
{
    // 1. Pick a layout. Diagonal+BL is the paper's best configuration:
    //    16 big routers (6 VCs, 256 b crossbar) on the mesh diagonals,
    //    48 small routers (2 VCs, 128 b) everywhere else.
    NetworkConfig hetero = makeLayoutConfig(LayoutKind::DiagonalBL);
    NetworkConfig baseline = makeLayoutConfig(LayoutKind::Baseline);

    std::printf("Layout (B = big router):\n%s\n",
                renderLayout(bigRouterMask(LayoutKind::DiagonalBL, 8), 8)
                    .c_str());

    // 2. Check the paper's §2 design constraints hold.
    ConstraintReport rep = checkConstraints(hetero, baseline);
    std::printf("constraints: VCs conserved=%d, bisection ok=%d, "
                "power budget ok=%d, area budget ok=%d\n\n",
                rep.vcConserved, rep.bisectionConserved,
                rep.powerBudgetOk, rep.areaBudgetOk);

    // 3. Simulate both networks under uniform-random traffic.
    SimPointOptions opts;
    opts.injectionRate = 0.03; // packets/node/cycle
    for (const NetworkConfig &cfg : {baseline, hetero}) {
        SimPointResult res =
            runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);
        std::printf("%-12s  latency %6.1f ns  accepted %.4f pkt/node/cyc"
                    "  power %5.1f W  combine rate %.2f\n",
                    cfg.name.c_str(), res.avgLatencyNs, res.acceptedRate,
                    res.networkPowerW, res.combineRate);
    }

    // 4. Or drive the network cycle by cycle yourself.
    Network net(hetero);
    net.enqueuePacket(/*src=*/0, /*dst=*/63,
                      /*num_flits=*/net.dataPacketFlits());
    net.run(200);
    std::printf("\nmanual run: delivered %llu packet(s) in %llu cycles "
                "at %.2f GHz\n",
                static_cast<unsigned long long>(net.packetsDelivered()),
                static_cast<unsigned long long>(net.now()),
                net.clockGHz());
    return 0;
}
