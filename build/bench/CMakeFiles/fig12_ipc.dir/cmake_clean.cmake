file(REMOVE_RECURSE
  "CMakeFiles/fig12_ipc.dir/fig12_ipc.cc.o"
  "CMakeFiles/fig12_ipc.dir/fig12_ipc.cc.o.d"
  "fig12_ipc"
  "fig12_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
