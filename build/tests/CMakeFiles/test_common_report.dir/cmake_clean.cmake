file(REMOVE_RECURSE
  "CMakeFiles/test_common_report.dir/common/test_report.cc.o"
  "CMakeFiles/test_common_report.dir/common/test_report.cc.o.d"
  "test_common_report"
  "test_common_report.pdb"
  "test_common_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
