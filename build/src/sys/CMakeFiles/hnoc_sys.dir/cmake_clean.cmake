file(REMOVE_RECURSE
  "CMakeFiles/hnoc_sys.dir/cache.cc.o"
  "CMakeFiles/hnoc_sys.dir/cache.cc.o.d"
  "CMakeFiles/hnoc_sys.dir/cmp_system.cc.o"
  "CMakeFiles/hnoc_sys.dir/cmp_system.cc.o.d"
  "CMakeFiles/hnoc_sys.dir/mc_placement.cc.o"
  "CMakeFiles/hnoc_sys.dir/mc_placement.cc.o.d"
  "CMakeFiles/hnoc_sys.dir/workloads.cc.o"
  "CMakeFiles/hnoc_sys.dir/workloads.cc.o.d"
  "libhnoc_sys.a"
  "libhnoc_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnoc_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
