#include "heteronoc/layout.hh"

#include "common/geometry.hh"
#include "common/logging.hh"
#include "power/router_params.hh"

namespace hnoc
{

std::vector<LayoutKind>
allLayouts()
{
    return {LayoutKind::Baseline, LayoutKind::CenterB, LayoutKind::Row25B,
            LayoutKind::DiagonalB, LayoutKind::CenterBL,
            LayoutKind::Row25BL, LayoutKind::DiagonalBL};
}

std::vector<LayoutKind>
heteroLayouts()
{
    return {LayoutKind::CenterB, LayoutKind::Row25B, LayoutKind::DiagonalB,
            LayoutKind::CenterBL, LayoutKind::Row25BL,
            LayoutKind::DiagonalBL};
}

std::vector<LayoutKind>
blLayouts()
{
    return {LayoutKind::CenterBL, LayoutKind::Row25BL,
            LayoutKind::DiagonalBL};
}

std::string
layoutName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::Baseline:
        return "Baseline";
      case LayoutKind::CenterB:
        return "Center+B";
      case LayoutKind::Row25B:
        return "Row2_5+B";
      case LayoutKind::DiagonalB:
        return "Diagonal+B";
      case LayoutKind::CenterBL:
        return "Center+BL";
      case LayoutKind::Row25BL:
        return "Row2_5+BL";
      case LayoutKind::DiagonalBL:
        return "Diagonal+BL";
    }
    return "unknown";
}

bool
isBufferLinkLayout(LayoutKind kind)
{
    return kind == LayoutKind::CenterBL || kind == LayoutKind::Row25BL ||
           kind == LayoutKind::DiagonalBL;
}

std::vector<bool>
bigRouterMask(LayoutKind kind, int radix)
{
    std::vector<bool> mask(
        static_cast<std::size_t>(radix * radix), false);
    auto set = [&](int x, int y) {
        mask[static_cast<std::size_t>(coordToId({x, y}, radix))] = true;
    };

    switch (kind) {
      case LayoutKind::Baseline:
        break;
      case LayoutKind::CenterB:
      case LayoutKind::CenterBL: {
        // Central block holding 2*radix big routers (4x4 for radix 8).
        int lo = radix / 2 - radix / 4;
        int hi = radix / 2 + radix / 4 - 1;
        for (int y = lo; y <= hi; ++y)
            for (int x = lo; x <= hi; ++x)
                set(x, y);
        break;
      }
      case LayoutKind::Row25B:
      case LayoutKind::Row25BL: {
        // Rows 2 and 5 (0-indexed): every row is within two hops of a
        // big-router row on an 8x8 mesh.
        int r1 = radix / 4;
        int r2 = radix - 1 - radix / 4;
        for (int x = 0; x < radix; ++x) {
            set(x, r1);
            set(x, r2);
        }
        break;
      }
      case LayoutKind::DiagonalB:
      case LayoutKind::DiagonalBL:
        for (int i = 0; i < radix; ++i) {
            set(i, i);
            set(radix - 1 - i, i);
        }
        break;
    }
    return mask;
}

NetworkConfig
makeLayoutConfig(LayoutKind kind, int radix)
{
    if (kind == LayoutKind::Baseline) {
        NetworkConfig cfg;
        cfg.name = layoutName(kind);
        cfg.radixX = radix;
        cfg.radixY = radix;
        cfg.defaultVcs = router_types::BASELINE.vcsPerPort;
        cfg.defaultWidthBits = router_types::BASELINE.datapathBits;
        cfg.flitWidthBits = router_types::BASELINE.datapathBits;
        cfg.uniformLinkBits = router_types::BASELINE.datapathBits;
        return cfg;
    }
    NetworkConfig cfg = makeHeteroConfig(bigRouterMask(kind, radix),
                                         isBufferLinkLayout(kind), radix,
                                         layoutName(kind));
    return cfg;
}

NetworkConfig
makeHeteroConfig(const std::vector<bool> &big_mask, bool redistribute_links,
                 int radix, const std::string &name)
{
    if (static_cast<int>(big_mask.size()) != radix * radix)
        fatal("makeHeteroConfig: mask size %zu != %d routers",
              big_mask.size(), radix * radix);

    NetworkConfig cfg;
    cfg.name = name;
    cfg.radixX = radix;
    cfg.radixY = radix;
    cfg.bufferDepth = 5;

    int n = radix * radix;
    cfg.routerVcs.resize(static_cast<std::size_t>(n));
    cfg.routerWidthBits.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        bool big = big_mask[static_cast<std::size_t>(r)];
        cfg.routerVcs[static_cast<std::size_t>(r)] =
            big ? router_types::BIG.vcsPerPort
                : router_types::SMALL.vcsPerPort;
        if (redistribute_links) {
            cfg.routerWidthBits[static_cast<std::size_t>(r)] =
                big ? router_types::BIG.datapathBits
                    : router_types::SMALL.datapathBits;
        } else {
            cfg.routerWidthBits[static_cast<std::size_t>(r)] =
                router_types::BASELINE.datapathBits;
        }
    }

    if (redistribute_links) {
        // +BL: 128 b flits; channel width = max of endpoint datapaths
        // (wide 256 b links touch big routers).
        cfg.flitWidthBits = router_types::SMALL.datapathBits;
        cfg.linkWidthMode = LinkWidthMode::EndpointMax;
    } else {
        // +B: links and flits stay at the baseline 192 b.
        cfg.flitWidthBits = router_types::BASELINE.datapathBits;
        cfg.linkWidthMode = LinkWidthMode::Uniform;
        cfg.uniformLinkBits = router_types::BASELINE.datapathBits;
    }
    return cfg;
}

std::string
renderLayout(const std::vector<bool> &big_mask, int radix)
{
    std::string out;
    for (int y = 0; y < radix; ++y) {
        for (int x = 0; x < radix; ++x) {
            bool big =
                big_mask[static_cast<std::size_t>(coordToId({x, y}, radix))];
            out += big ? " B" : " .";
        }
        out += "\n";
    }
    return out;
}

} // namespace hnoc
