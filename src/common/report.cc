#include "common/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace hnoc
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table: need at least one column");
}

void
Table::row(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("Table: row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::text() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            out.append(widths[c] - cells[c].size() + 2, ' ');
        }
        out += '\n';
    };
    emit(headers_);
    for (const auto &r : rows_)
        emit(r);
    return out;
}

namespace
{

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::csv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                out += ',';
            out += csvEscape(cells[c]);
        }
        out += '\n';
    };
    emit(headers_);
    for (const auto &r : rows_)
        emit(r);
    return out;
}

namespace
{

bool
writeCsvFile(const std::string &path, const std::string &data)
{
    std::string target = path;
    if (const char *dir = std::getenv("HNOC_CSV_DIR")) {
        std::string base = path;
        auto slash = base.find_last_of('/');
        if (slash != std::string::npos)
            base = base.substr(slash + 1);
        target = std::string(dir) + "/" + base;
    }
    std::FILE *f = std::fopen(target.c_str(), "w");
    if (!f) {
        warn("report: cannot open %s", target.c_str());
        return false;
    }
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

bool
Table::writeCsv(const std::string &path) const
{
    return writeCsvFile(path, csv());
}

std::string
heatMapCsv(const std::vector<double> &values, int cols, int decimals)
{
    std::string out;
    if (values.empty() || cols <= 0)
        return out;
    char buf[64];
    int rows = (static_cast<int>(values.size()) + cols - 1) / cols;
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            auto i = static_cast<std::size_t>(r * cols + c);
            if (i >= values.size())
                break;
            if (c)
                out += ',';
            std::snprintf(buf, sizeof(buf), "%.*f", decimals,
                          values[i]);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

bool
writeHeatMapCsv(const std::string &path, const std::vector<double> &values,
                int cols, int decimals)
{
    return writeCsvFile(path, heatMapCsv(values, cols, decimals));
}

} // namespace hnoc
