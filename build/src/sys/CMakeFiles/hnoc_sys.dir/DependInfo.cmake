
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/cache.cc" "src/sys/CMakeFiles/hnoc_sys.dir/cache.cc.o" "gcc" "src/sys/CMakeFiles/hnoc_sys.dir/cache.cc.o.d"
  "/root/repo/src/sys/cmp_system.cc" "src/sys/CMakeFiles/hnoc_sys.dir/cmp_system.cc.o" "gcc" "src/sys/CMakeFiles/hnoc_sys.dir/cmp_system.cc.o.d"
  "/root/repo/src/sys/mc_placement.cc" "src/sys/CMakeFiles/hnoc_sys.dir/mc_placement.cc.o" "gcc" "src/sys/CMakeFiles/hnoc_sys.dir/mc_placement.cc.o.d"
  "/root/repo/src/sys/workloads.cc" "src/sys/CMakeFiles/hnoc_sys.dir/workloads.cc.o" "gcc" "src/sys/CMakeFiles/hnoc_sys.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/hnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
