/**
 * @file
 * Router area model (paper §3.5, Table 1).
 *
 * Area is decomposed into a fixed control/logic overhead, a buffer term
 * proportional to total storage bits, and a crossbar term proportional
 * to the square of the datapath width. The three coefficients are fitted
 * exactly to the paper's synthesized areas: baseline 0.290 mm^2, small
 * 0.235 mm^2, big 0.425 mm^2 (65 nm).
 */

#ifndef HNOC_POWER_AREA_MODEL_HH
#define HNOC_POWER_AREA_MODEL_HH

#include "power/router_params.hh"

namespace hnoc
{

/** Component-level router area model (mm^2, 65 nm). */
class AreaModel
{
  public:
    /** @return total router area in mm^2. */
    static double areaMm2(const RouterPhysParams &params);

    /** @return buffer-array contribution in mm^2. */
    static double bufferAreaMm2(const RouterPhysParams &params);

    /** @return crossbar contribution in mm^2. */
    static double crossbarAreaMm2(const RouterPhysParams &params);

    /** @return fixed control/allocator/logic overhead in mm^2. */
    static double fixedAreaMm2();
};

} // namespace hnoc

#endif // HNOC_POWER_AREA_MODEL_HH
