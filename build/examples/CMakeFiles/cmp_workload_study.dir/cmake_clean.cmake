file(REMOVE_RECURSE
  "CMakeFiles/cmp_workload_study.dir/cmp_workload_study.cpp.o"
  "CMakeFiles/cmp_workload_study.dir/cmp_workload_study.cpp.o.d"
  "cmp_workload_study"
  "cmp_workload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_workload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
