#include "sys/workloads.hh"

#include "common/logging.hh"

namespace hnoc
{

const std::vector<WorkloadProfile> &
allWorkloads()
{
    // Parameter values are synthetic stand-ins chosen to span the
    // qualitative space of Table 2's applications: commercial server
    // workloads (large footprints, heavy sharing), PARSEC apps and
    // kernels (varied intensity/locality), and the streaming,
    // latency-sensitive libquantum used in case study II.
    static const std::vector<WorkloadProfile> workloads = {
        // name     mem   read  hotF  hotB privBlk shrF  shrBlk strm shrWr
        {"SAP",     0.32, 0.68, 0.90, 176,  3072,  0.040,  8192, 0.35, 0.25},
        {"SPECjbb", 0.30, 0.70, 0.91, 160,  2048,  0.045,  8192, 0.30, 0.30},
        {"TPC-C",   0.35, 0.65, 0.89, 192,  3072,  0.050, 10240, 0.25, 0.30},
        {"SJAS",    0.28, 0.72, 0.90, 168,  2048,  0.040,  8192, 0.30, 0.25},
        {"frrt",    0.24, 0.75, 0.93, 144,  1536,  0.020,  6144, 0.55, 0.15},
        {"fsim",    0.22, 0.72, 0.94, 144,  1536,  0.020,  4096, 0.60, 0.15},
        {"vips",    0.26, 0.70, 0.94, 128,  1024,  0.015,  4096, 0.70, 0.10},
        {"canl",    0.30, 0.66, 0.88, 192,  3072,  0.035,  8192, 0.15, 0.25},
        {"ddup",    0.28, 0.60, 0.91, 160,  2048,  0.035,  8192, 0.40, 0.35},
        {"sclst",   0.26, 0.72, 0.92, 152,  1536,  0.035,  6144, 0.45, 0.20},
        {"libquantum",
                    0.40, 0.80, 0.80, 224,  6144,  0.010,  2048, 0.90, 0.10},
    };
    return workloads;
}

std::vector<WorkloadProfile>
commercialWorkloads()
{
    const auto &all = allWorkloads();
    return {all[0], all[1], all[2], all[3]};
}

std::vector<WorkloadProfile>
parsecWorkloads()
{
    const auto &all = allWorkloads();
    return {all[4], all[5], all[6], all[7], all[8], all[9]};
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

TraceGenerator::TraceGenerator(const WorkloadProfile &profile, int core,
                               std::uint64_t seed, int block_bytes)
    : profile_(profile), core_(core), blockBytes_(block_bytes),
      rng_(seed ^ (static_cast<std::uint64_t>(core) * 0x9e3779b9ULL)),
      privateBase_(static_cast<Addr>(core + 1) << 32)
{}

Addr
TraceGenerator::pickAddress(bool &is_write)
{
    bool shared = rng_.chance(profile_.sharedFrac);
    std::uint64_t block;
    if (shared) {
        block = rng_.below(static_cast<std::uint64_t>(
            profile_.sharedBlocks));
        is_write = rng_.chance(profile_.sharedWriteFrac);
        return (static_cast<Addr>(1) << 56) +
               block * static_cast<Addr>(blockBytes_);
    }

    // Most private accesses hit a small hot reuse set (temporal
    // locality); the rest stream or wander over the full working set.
    if (rng_.chance(profile_.hotFrac)) {
        block = rng_.below(static_cast<std::uint64_t>(
            profile_.hotBlocks));
        is_write = !rng_.chance(profile_.readFrac);
        return privateBase_ + block * static_cast<Addr>(blockBytes_);
    }

    // Cold accesses mix sequential streaming with random reuse.
    if (streaming_ && streamLeft_ > 0) {
        --streamLeft_;
        streamBlock_ = (streamBlock_ + 1) %
                       static_cast<std::uint64_t>(profile_.privateBlocks);
    } else if (rng_.chance(profile_.streamProb)) {
        streaming_ = true;
        streamLeft_ = static_cast<int>(rng_.range(8, 64));
        streamBlock_ = rng_.below(
            static_cast<std::uint64_t>(profile_.privateBlocks));
    } else {
        streaming_ = false;
        streamBlock_ = rng_.below(
            static_cast<std::uint64_t>(profile_.privateBlocks));
    }
    is_write = !rng_.chance(profile_.readFrac);
    return privateBase_ +
           streamBlock_ * static_cast<Addr>(blockBytes_);
}

TraceRecord
TraceGenerator::next()
{
    TraceRecord rec;
    // Geometric run of non-memory instructions with mean 1/memRatio - 1.
    double p = profile_.memRatio;
    rec.nonMemInstrs = static_cast<int>(rng_.geometric(p)) - 1;
    bool is_write = false;
    rec.addr = pickAddress(is_write);
    rec.isWrite = is_write;
    return rec;
}

} // namespace hnoc
