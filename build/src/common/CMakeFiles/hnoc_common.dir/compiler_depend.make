# Empty compiler generated dependencies file for hnoc_common.
# This may be replaced when dependencies are built.
