# Empty dependencies file for test_sys_cmp.
# This may be replaced when dependencies are built.
