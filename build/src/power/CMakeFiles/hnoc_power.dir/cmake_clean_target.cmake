file(REMOVE_RECURSE
  "libhnoc_power.a"
)
