/**
 * @file
 * Simulation-harness and traffic tests: pattern destination
 * properties (parameterized), self-similar burst statistics, sweep and
 * summary helpers, YX routing and CentralBand link-width modes.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/stats.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

// ----------------------------------------------------------- traffic --

class PatternDest : public ::testing::TestWithParam<TrafficPattern>
{};

TEST_P(PatternDest, DestinationsValidAndNeverSelf)
{
    TrafficGenerator gen(GetParam(), 64, 8, 5);
    for (NodeId src = 0; src < 64; ++src) {
        for (int i = 0; i < 20; ++i) {
            NodeId dst = gen.pickDest(src);
            if (dst == INVALID_NODE)
                continue;
            EXPECT_GE(dst, 0);
            EXPECT_LT(dst, 64);
            EXPECT_NE(dst, src);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternDest,
    ::testing::Values(TrafficPattern::UniformRandom,
                      TrafficPattern::NearestNeighbor,
                      TrafficPattern::Transpose,
                      TrafficPattern::BitComplement,
                      TrafficPattern::SelfSimilar));

TEST(Traffic, TransposeIsDeterministicMirror)
{
    TrafficGenerator gen(TrafficPattern::Transpose, 64, 8, 1);
    EXPECT_EQ(gen.pickDest(1), 8);   // (1,0) -> (0,1)
    EXPECT_EQ(gen.pickDest(23), 58); // (7,2) -> (2,7)
    EXPECT_EQ(gen.pickDest(0), INVALID_NODE); // diagonal
    EXPECT_EQ(gen.pickDest(63), INVALID_NODE);
}

TEST(Traffic, BitComplementMirrors)
{
    TrafficGenerator gen(TrafficPattern::BitComplement, 64, 8, 1);
    EXPECT_EQ(gen.pickDest(0), 63);
    EXPECT_EQ(gen.pickDest(5), 58);
}

TEST(Traffic, NearestNeighborIsAdjacent)
{
    TrafficGenerator gen(TrafficPattern::NearestNeighbor, 64, 8, 3);
    for (int i = 0; i < 500; ++i) {
        NodeId src = i % 64;
        NodeId dst = gen.pickDest(src);
        int dx = std::abs(src % 8 - dst % 8);
        int dy = std::abs(src / 8 - dst / 8);
        EXPECT_EQ(dx + dy, 1) << src << "->" << dst;
    }
}

TEST(Traffic, BernoulliRateAccuracy)
{
    TrafficGenerator gen(TrafficPattern::UniformRandom, 64, 8, 9);
    std::uint64_t fires = 0;
    const int cycles = 20000;
    for (Cycle t = 0; t < cycles; ++t)
        if (gen.shouldInject(0, 0.05, t))
            ++fires;
    EXPECT_NEAR(static_cast<double>(fires) / cycles, 0.05, 0.01);
}

TEST(Traffic, SelfSimilarLongRunRateMatches)
{
    TrafficGenerator gen(TrafficPattern::SelfSimilar, 64, 8, 13);
    std::uint64_t fires = 0;
    const int cycles = 400000;
    for (Cycle t = 0; t < cycles; ++t)
        if (gen.shouldInject(3, 0.03, t))
            ++fires;
    EXPECT_NEAR(static_cast<double>(fires) / cycles, 0.03, 0.012);
}

TEST(Traffic, SelfSimilarIsBursty)
{
    // Variance of per-window counts must exceed Poisson-like traffic's.
    auto window_var = [](TrafficPattern p) {
        TrafficGenerator gen(p, 64, 8, 21);
        RunningStat windows;
        const int window = 200;
        for (int w = 0; w < 300; ++w) {
            int count = 0;
            for (int t = 0; t < window; ++t)
                if (gen.shouldInject(
                        0, 0.05,
                        static_cast<Cycle>(w) * window + t))
                    ++count;
            windows.add(count);
        }
        return windows.variance();
    };
    EXPECT_GT(window_var(TrafficPattern::SelfSimilar),
              2.0 * window_var(TrafficPattern::UniformRandom));
}

// ----------------------------------------------------------- harness --

TEST(Harness, AcceptedNeverExceedsOfferedMuch)
{
    SimPointOptions opts;
    opts.injectionRate = 0.02;
    opts.warmupCycles = 1500;
    opts.measureCycles = 4000;
    opts.drainCycles = 8000;
    auto res = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                           TrafficPattern::UniformRandom, opts);
    EXPECT_LT(res.acceptedRate, opts.injectionRate * 1.15);
    EXPECT_GT(res.acceptedRate, opts.injectionRate * 0.85);
}

TEST(Harness, BreakdownSumsToTotal)
{
    SimPointOptions opts;
    opts.injectionRate = 0.03;
    opts.warmupCycles = 1500;
    opts.measureCycles = 4000;
    opts.drainCycles = 8000;
    auto res = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                           TrafficPattern::UniformRandom, opts);
    EXPECT_NEAR(res.avgQueuingNs + res.avgBlockingNs + res.avgTransferNs,
                res.avgLatencyNs, 0.05 * res.avgLatencyNs);
}

TEST(Harness, SaturationDetectsFlatteningThroughput)
{
    SimPointOptions opts;
    opts.warmupCycles = 2000;
    opts.measureCycles = 5000;
    opts.drainCycles = 8000;
    auto curve = sweepLoad(makeLayoutConfig(LayoutKind::Baseline),
                           TrafficPattern::UniformRandom,
                           {0.02, 0.09}, opts);
    EXPECT_FALSE(curve[0].saturated);
    EXPECT_TRUE(curve[1].saturated);
    double sat = saturationThroughput(curve);
    EXPECT_GT(sat, 0.04);
    EXPECT_LT(sat, 0.09);
}

TEST(Harness, LatencyGrowsWithDistance)
{
    SimPointOptions opts;
    opts.injectionRate = 0.02;
    opts.warmupCycles = 1500;
    opts.measureCycles = 6000;
    opts.drainCycles = 12000;
    auto res = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                           TrafficPattern::UniformRandom, opts);
    ASSERT_GE(res.latencyByHopsNs.size(), 12u);
    // Short paths must be faster than long ones; interior bins filled.
    EXPECT_GT(res.latencyByHopsNs[12], res.latencyByHopsNs[2]);
    EXPECT_GT(res.latencyByHopsNs[8], res.latencyByHopsNs[3]);
    // Roughly linear: per-hop increments near the 3-cycle pipeline.
    double per_hop =
        (res.latencyByHopsNs[12] - res.latencyByHopsNs[4]) / 8.0;
    double cycle_ns = 1.0 / 2.2;
    EXPECT_GT(per_hop, 2.0 * cycle_ns);
    EXPECT_LT(per_hop, 8.0 * cycle_ns);
}

// ------------------------------------------------- YX / CentralBand --

TEST(YxRouting, MirrorsXyAndDelivers)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.routing = RoutingMode::YX;
    Network net(cfg);
    auto path = net.routing().path(0, 63);
    // Y first: second router straight down from router 0.
    EXPECT_EQ(path[1], 8);
    net.enqueuePacket(0, 63, 6);
    net.run(200);
    EXPECT_EQ(net.packetsDelivered(), 1u);
}

TEST(CentralBand, ExactBisectionAccounting)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.flitWidthBits = 128;
    cfg.linkWidthMode = LinkWidthMode::CentralBand;
    cfg.bandWideLinks = 4;
    // Row links in rows 2..5 wide; others narrow.
    EXPECT_EQ(cfg.channelBits(2 * 8 + 3, 2 * 8 + 4), 256); // row 2
    EXPECT_EQ(cfg.channelBits(0 * 8 + 3, 0 * 8 + 4), 128); // row 0
    // Column links in columns 2..5 wide.
    EXPECT_EQ(cfg.channelBits(3, 8 + 3), 256);  // column 3
    EXPECT_EQ(cfg.channelBits(7, 8 + 7), 128);  // column 7
    // Per-cut budget: 4*256 + 4*128 = 8*192.
    EXPECT_EQ(4 * 256 + 4 * 128, 8 * 192);
}

TEST(CentralBand, NetworkRunsAndDrains)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.flitWidthBits = 128;
    cfg.linkWidthMode = LinkWidthMode::CentralBand;
    cfg.bandWideLinks = 4;
    Network net(cfg);
    for (NodeId n = 0; n < 64; ++n)
        net.enqueuePacket(n, 63 - n, cfg.dataPacketFlits());
    net.run(4000);
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_EQ(net.packetsDelivered(), 64u);
}

} // namespace
} // namespace hnoc
