file(REMOVE_RECURSE
  "CMakeFiles/test_noc_failures.dir/noc/test_failure_modes.cc.o"
  "CMakeFiles/test_noc_failures.dir/noc/test_failure_modes.cc.o.d"
  "test_noc_failures"
  "test_noc_failures.pdb"
  "test_noc_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
