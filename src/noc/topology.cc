#include "noc/topology.hh"

#include "common/logging.hh"

namespace hnoc
{

namespace
{

using namespace mesh_ports;

/** 2-D mesh or torus, optionally concentrated (CMesh). */
class GridTopology : public Topology
{
  public:
    GridTopology(int cols, int rows, int concentration, bool wrap)
        : Topology(cols * rows, 4, concentration, cols)
    {
        for (int y = 0; y < rows; ++y) {
            for (int x = 0; x < cols; ++x) {
                RouterId r = coordToId({x, y}, cols);
                // North (towards y-1)
                if (y > 0)
                    setPeer(r, NORTH, {coordToId({x, y - 1}, cols), SOUTH});
                else if (wrap && rows > 1)
                    setPeer(r, NORTH,
                            {coordToId({x, rows - 1}, cols), SOUTH,
                             false, true});
                // East (towards x+1)
                if (x < cols - 1)
                    setPeer(r, EAST, {coordToId({x + 1, y}, cols), WEST});
                else if (wrap && cols > 1)
                    setPeer(r, EAST,
                            {coordToId({0, y}, cols), WEST, true, false});
                // South (towards y+1)
                if (y < rows - 1)
                    setPeer(r, SOUTH, {coordToId({x, y + 1}, cols), NORTH});
                else if (wrap && rows > 1)
                    setPeer(r, SOUTH,
                            {coordToId({x, 0}, cols), NORTH, false, true});
                // West (towards x-1)
                if (x > 0)
                    setPeer(r, WEST, {coordToId({x - 1, y}, cols), EAST});
                else if (wrap && cols > 1)
                    setPeer(r, WEST,
                            {coordToId({cols - 1, y}, cols), EAST,
                             true, false});
            }
        }
    }
};

/**
 * Flattened butterfly: full connectivity within each row and column
 * of the router grid (Kim et al. [15]). Port layout: row ports
 * 0..cols-2, column ports cols-1..cols+rows-3, locals after.
 */
class FlatFlyTopology : public Topology
{
  public:
    FlatFlyTopology(int cols, int rows, int concentration)
        : Topology(cols * rows, cols - 1 + rows - 1, concentration, cols)
    {
        for (int y = 0; y < rows; ++y) {
            for (int x = 0; x < cols; ++x) {
                RouterId r = coordToId({x, y}, cols);
                for (int x2 = 0; x2 < cols; ++x2) {
                    if (x2 == x)
                        continue;
                    setPeer(r, rowPort(x, x2, cols),
                            {coordToId({x2, y}, cols),
                             rowPort(x2, x, cols)});
                }
                for (int y2 = 0; y2 < rows; ++y2) {
                    if (y2 == y)
                        continue;
                    setPeer(r, colPort(y, y2, cols, rows),
                            {coordToId({x, y2}, cols),
                             colPort(y2, y, cols, rows)});
                }
            }
        }
    }

    /** Row port at a router in column @p from, towards column @p to. */
    static PortId
    rowPort(int from, int to, int /*cols*/)
    {
        return to < from ? to : to - 1;
    }

    /** Column port at a router in row @p from, towards row @p to. */
    static PortId
    colPort(int from, int to, int cols, int /*rows*/)
    {
        return (cols - 1) + (to < from ? to : to - 1);
    }
};

} // namespace

std::unique_ptr<Topology>
Topology::create(const NetworkConfig &config)
{
    switch (config.topology) {
      case TopologyType::Mesh:
        return std::make_unique<GridTopology>(
            config.radixX, config.radixY, config.concentration, false);
      case TopologyType::Torus:
        return std::make_unique<GridTopology>(
            config.radixX, config.radixY, config.concentration, true);
      case TopologyType::ConcentratedMesh:
        if (config.concentration < 2)
            warn("ConcentratedMesh with concentration %d",
                 config.concentration);
        return std::make_unique<GridTopology>(
            config.radixX, config.radixY, config.concentration, false);
      case TopologyType::FlattenedButterfly:
        return std::make_unique<FlatFlyTopology>(
            config.radixX, config.radixY, config.concentration);
    }
    panic("Topology::create: unknown topology type");
}

std::vector<std::pair<RouterId, RouterId>>
Topology::bisectionLinks() const
{
    std::vector<std::pair<RouterId, RouterId>> links;
    int half = cols_ / 2;
    for (RouterId r = 0; r < numRouters_; ++r) {
        for (PortId p = 0; p < dirPorts_; ++p) {
            const PortPeer &q = peer(r, p);
            if (q.router == INVALID_ROUTER || q.router < r)
                continue; // unconnected or already counted
            bool left_a = routerCoord(r).x < half;
            bool left_b = routerCoord(q.router).x < half;
            if (left_a != left_b)
                links.emplace_back(r, q.router);
        }
    }
    return links;
}

} // namespace hnoc
