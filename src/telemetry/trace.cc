#include "telemetry/trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "telemetry/json_writer.hh"

namespace hnoc
{

TraceObserver::TraceObserver(TraceOptions opts) : opts_(opts)
{
}

Cycle
TraceObserver::PacketRecord::hopSum() const
{
    Cycle sum = 0;
    for (const HopRecord &h : hops)
        if (h.depart != CYCLE_NEVER)
            sum += h.depart - h.arrive;
    return sum;
}

Cycle
TraceObserver::PacketRecord::serialization() const
{
    Cycle n = network();
    Cycle h = hopSum();
    return n > h ? n - h : 0;
}

void
TraceObserver::record(std::uint8_t kind, RouterId router, PortId port,
                      const Flit &flit, Cycle now)
{
    if (!opts_.flitLog)
        return;
    if (events_.size() >= opts_.maxEvents) {
        ++droppedEvents_;
        return;
    }
    Event e;
    e.t = now;
    e.pkt = static_cast<std::uint32_t>(flit.pkt ? flit.pkt->id : 0);
    e.router = static_cast<std::int16_t>(router);
    e.port = static_cast<std::int8_t>(port);
    e.vc = static_cast<std::int8_t>(flit.vc);
    e.seq = flit.seq;
    e.kind = kind;
    e.isHead = flit.isHead() ? 1 : 0;
    events_.push_back(e);
}

void
TraceObserver::onPacketCreated(const Packet &pkt, Cycle now)
{
    if (live_.size() + done_.size() >= opts_.maxPackets) {
        ++droppedPackets_;
        return;
    }
    PacketRecord rec;
    rec.id = pkt.id;
    rec.src = pkt.src;
    rec.dst = pkt.dst;
    rec.numFlits = pkt.numFlits;
    rec.created = now;
    live_.emplace(pkt.id, std::move(rec));
}

void
TraceObserver::onFlitArrive(RouterId router, PortId port,
                            const Flit &flit, Cycle now)
{
    record(0, router, port, flit, now);
    if (!flit.isHead() || !flit.pkt)
        return;
    auto it = live_.find(flit.pkt->id);
    if (it == live_.end())
        return;
    HopRecord hop;
    hop.router = router;
    hop.inPort = port;
    hop.vc = flit.vc;
    hop.arrive = now;
    it->second.hops.push_back(hop);
}

void
TraceObserver::onFlitDepart(RouterId router, PortId port,
                            const Flit &flit, Cycle now)
{
    record(1, router, port, flit, now);
    if (!flit.isHead() || !flit.pkt)
        return;
    auto it = live_.find(flit.pkt->id);
    if (it == live_.end())
        return;
    // Close the newest open hop at this router (the head visits each
    // router once).
    for (auto h = it->second.hops.rbegin(); h != it->second.hops.rend();
         ++h) {
        if (h->router == router && h->depart == CYCLE_NEVER) {
            h->depart = now;
            break;
        }
    }
}

void
TraceObserver::onPacketDelivered(const Packet &pkt, Cycle now)
{
    (void)now;
    auto it = live_.find(pkt.id);
    if (it == live_.end())
        return;
    PacketRecord rec = std::move(it->second);
    live_.erase(it);
    rec.injected = pkt.injectedAt;
    rec.ejected = pkt.ejectedAt;
    done_.push_back(std::move(rec));
}

void
TraceObserver::reset()
{
    events_.clear();
    live_.clear();
    done_.clear();
    droppedEvents_ = 0;
    droppedPackets_ = 0;
}

std::string
TraceObserver::chromeTraceJson() const
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("displayTimeUnit", "ms");
    w.key("otherData").beginObject();
    w.keyValue("tool", "hnoc");
    w.keyValue("time_unit", "1 trace us = 1 simulation cycle");
    w.keyValue("dropped_events", droppedEvents_);
    w.keyValue("dropped_packets", droppedPackets_);
    w.endObject();
    w.key("traceEvents").beginArray();

    // Process/thread naming metadata: pid 0 = the network, one thread
    // per router touched by a recorded hop.
    auto meta = [&](const char *name, int pid, int tid,
                    const std::string &value) {
        w.beginObject();
        w.keyValue("name", name);
        w.keyValue("ph", "M");
        w.keyValue("pid", pid);
        w.keyValue("tid", tid);
        w.key("args").beginObject();
        w.keyValue("name", value);
        w.endObject();
        w.endObject();
    };
    meta("process_name", 0, 0, "hnoc network");
    std::vector<RouterId> routers;
    for (const PacketRecord &p : done_)
        for (const HopRecord &h : p.hops)
            routers.push_back(h.router);
    std::sort(routers.begin(), routers.end());
    routers.erase(std::unique(routers.begin(), routers.end()),
                  routers.end());
    char buf[48];
    for (RouterId r : routers) {
        std::snprintf(buf, sizeof(buf), "router %d", r);
        meta("thread_name", 0, r, buf);
    }

    for (const PacketRecord &p : done_) {
        std::snprintf(buf, sizeof(buf), "pkt %llu",
                      static_cast<unsigned long long>(p.id));
        if (opts_.packetSpans) {
            // Async begin at injection...
            w.beginObject();
            w.keyValue("name", buf);
            w.keyValue("cat", "packet");
            w.keyValue("ph", "b");
            w.keyValue("id", p.id);
            w.keyValue("ts", static_cast<std::uint64_t>(p.injected));
            w.keyValue("pid", 0);
            w.keyValue("tid", 0);
            w.key("args").beginObject();
            w.keyValue("src", p.src);
            w.keyValue("dst", p.dst);
            w.keyValue("flits", p.numFlits);
            w.endObject();
            w.endObject();
            // ...end at ejection, carrying the latency decomposition.
            w.beginObject();
            w.keyValue("name", buf);
            w.keyValue("cat", "packet");
            w.keyValue("ph", "e");
            w.keyValue("id", p.id);
            w.keyValue("ts", static_cast<std::uint64_t>(p.ejected));
            w.keyValue("pid", 0);
            w.keyValue("tid", 0);
            w.key("args").beginObject();
            w.keyValue("queueing_cycles",
                       static_cast<std::uint64_t>(p.queueing()));
            w.keyValue("network_cycles",
                       static_cast<std::uint64_t>(p.network()));
            w.keyValue("hop_cycles",
                       static_cast<std::uint64_t>(p.hopSum()));
            w.keyValue("serialization_cycles",
                       static_cast<std::uint64_t>(p.serialization()));
            w.keyValue("hops",
                       static_cast<std::uint64_t>(p.hops.size()));
            w.endObject();
            w.endObject();
        }
        if (opts_.hopSlices) {
            for (const HopRecord &h : p.hops) {
                if (h.depart == CYCLE_NEVER)
                    continue;
                w.beginObject();
                w.keyValue("name", buf);
                w.keyValue("cat", "hop");
                w.keyValue("ph", "X");
                w.keyValue("ts", static_cast<std::uint64_t>(h.arrive));
                w.keyValue("dur", static_cast<std::uint64_t>(
                                      h.depart - h.arrive));
                w.keyValue("pid", 0);
                w.keyValue("tid", h.router);
                w.key("args").beginObject();
                w.keyValue("in_port", h.inPort);
                w.keyValue("vc", h.vc);
                w.endObject();
                w.endObject();
            }
        }
    }

    w.endArray();
    w.endObject();
    return w.str();
}

std::string
TraceObserver::flitLogJsonl() const
{
    std::string out;
    out.reserve(events_.size() * 64);
    char buf[160];
    for (const Event &e : events_) {
        std::snprintf(buf, sizeof(buf),
                      "{\"t\":%llu,\"ev\":\"%s\",\"r\":%d,\"p\":%d,"
                      "\"vc\":%d,\"pkt\":%u,\"seq\":%u,\"head\":%u}\n",
                      static_cast<unsigned long long>(e.t),
                      e.kind == 0 ? "arr" : "dep", e.router, e.port,
                      e.vc, e.pkt, e.seq, e.isHead);
        out += buf;
    }
    return out;
}

namespace
{

bool
writeStringToFile(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot open %s", path.c_str());
        return false;
    }
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

bool
TraceObserver::writeChromeTrace(const std::string &path) const
{
    return writeStringToFile(path, chromeTraceJson());
}

bool
TraceObserver::writeFlitLog(const std::string &path) const
{
    return writeStringToFile(path, flitLogJsonl());
}

} // namespace hnoc
