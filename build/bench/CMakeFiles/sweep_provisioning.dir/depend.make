# Empty dependencies file for sweep_provisioning.
# This may be replaced when dependencies are built.
