/**
 * @file
 * Orion-style router power model (paper §4, Table 1, Figs 7c/8b/11c/d).
 *
 * Dynamic energy is charged per micro-architectural event (buffer write,
 * buffer read, crossbar traversal, arbitration, link traversal) with
 * per-event energies that scale with datapath width and VC count;
 * leakage is charged per cycle. The per-bit coefficients are derived
 * from the paper's baseline router (0.67 W at a 50 % activity factor,
 * with the component shares of Fig 8b: buffers 35 %, crossbar 30 %,
 * links 20 %, arbiters+logic 15 %), and each of the three published
 * router classes carries a calibration factor that pins its total at
 * 50 % activity exactly to Table 1 (0.67 / 0.30 / 1.19 W).
 *
 * The simulator never assumes an activity factor: it counts actual
 * events (paper footnote 3) and converts to watts over the simulated
 * wall-clock interval.
 */

#ifndef HNOC_POWER_ROUTER_POWER_HH
#define HNOC_POWER_ROUTER_POWER_HH

#include <cstdint>

#include "power/router_params.hh"

namespace hnoc
{

/** Power split into the four categories plotted by the paper. */
struct PowerBreakdown
{
    double buffers = 0.0;  ///< watts
    double crossbar = 0.0; ///< watts
    double arbiters = 0.0; ///< watts (arbiters + control logic)
    double links = 0.0;    ///< watts

    double
    total() const
    {
        return buffers + crossbar + arbiters + links;
    }

    PowerBreakdown &
    operator+=(const PowerBreakdown &o)
    {
        buffers += o.buffers;
        crossbar += o.crossbar;
        arbiters += o.arbiters;
        links += o.links;
        return *this;
    }
};

/** Event counts accumulated by the simulator for one router. */
struct RouterActivity
{
    std::uint64_t bufferWrites = 0; ///< flits written into input FIFOs
    std::uint64_t bufferReads = 0;  ///< flits read out of input FIFOs
    std::uint64_t xbarTraversals = 0; ///< flits through the crossbar
    std::uint64_t arbOps = 0;       ///< VA/SA arbitration grant operations
    std::uint64_t cycles = 0;       ///< elapsed router cycles

    /** Flit-traversals of outgoing links, weighted by link width in
     *  bits (summed widths, so mixed-width routers account correctly). */
    double linkBitTraversals = 0.0;

    RouterActivity &
    operator+=(const RouterActivity &o)
    {
        bufferWrites += o.bufferWrites;
        bufferReads += o.bufferReads;
        xbarTraversals += o.xbarTraversals;
        arbOps += o.arbOps;
        cycles += o.cycles;
        linkBitTraversals += o.linkBitTraversals;
        return *this;
    }
};

/**
 * Per-router-class power model.
 *
 * Construct via calibrated() so that the three paper router classes
 * reproduce Table 1 exactly.
 */
class RouterPowerModel
{
  public:
    /**
     * Build a model for @p params running at @p freq_ghz.
     * Applies the class calibration factor when @p params matches one
     * of the three published router classes.
     */
    static RouterPowerModel calibrated(const RouterPhysParams &params,
                                       double freq_ghz);

    /** @return energy of one flit buffer write, picojoules. */
    double bufWriteEnergyPj() const { return bufWritePj_; }

    /** @return energy of one flit buffer read, picojoules. */
    double bufReadEnergyPj() const { return bufReadPj_; }

    /** @return energy of one flit crossbar traversal, picojoules. */
    double xbarEnergyPj() const { return xbarPj_; }

    /** @return energy of one arbitration grant operation, picojoules. */
    double arbEnergyPj() const { return arbPj_; }

    /** @return per-bit link traversal energy, picojoules per bit. */
    double linkEnergyPerBitPj() const { return linkPjPerBit_; }

    /** @return leakage, watts, split per category. */
    const PowerBreakdown &leakage() const { return leakage_; }

    /**
     * Average power over an activity window (measured events).
     * @param activity event counts, @return watts per category.
     */
    PowerBreakdown power(const RouterActivity &activity) const;

    /**
     * Analytic power at a uniform activity factor @p a (fraction of
     * port-cycles carrying a flit). Used for Table 1 and the layout
     * power-budget inequality of §2.
     */
    PowerBreakdown powerAtActivity(double a) const;

    /** @return the router parameters this model was built for. */
    const RouterPhysParams &params() const { return params_; }

    /** @return clock frequency in GHz used for conversions. */
    double frequencyGHz() const { return freqGhz_; }

  private:
    RouterPowerModel() = default;

    RouterPhysParams params_;
    double freqGhz_ = 2.2;

    double bufWritePj_ = 0.0;
    double bufReadPj_ = 0.0;
    double xbarPj_ = 0.0;
    double arbPj_ = 0.0;
    double linkPjPerBit_ = 0.0;
    PowerBreakdown leakage_;
};

} // namespace hnoc

#endif // HNOC_POWER_ROUTER_POWER_HH
