/**
 * @file
 * Synthetic workload models standing in for the paper's Simics traces
 * (Table 2(b)/(c)): four commercial workloads, six PARSEC benchmarks
 * and libquantum. Each profile parameterizes a deterministic memory
 * trace generator (memory intensity, read fraction, working-set sizes,
 * sharing, spatial locality) that exercises the same L1-miss ->
 * directory -> data-response code paths the real traces would.
 */

#ifndef HNOC_SYS_WORKLOADS_HH
#define HNOC_SYS_WORKLOADS_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace hnoc
{

/** Parameter set describing one application's memory behaviour. */
struct WorkloadProfile
{
    std::string name;
    /** Memory operations per instruction (loads+stores). */
    double memRatio = 0.25;
    /** Fraction of memory operations that are loads. */
    double readFrac = 0.7;
    /** Fraction of private accesses hitting the hot (L1-resident)
     *  reuse set — the temporal-locality knob that sets the L1 miss
     *  rate. */
    double hotFrac = 0.85;
    /** Hot-set size in blocks (should fit the 256-line L1). */
    int hotBlocks = 160;
    /** Per-core private working set, in cache blocks. */
    int privateBlocks = 4096;
    /** Fraction of accesses that target the shared region. */
    double sharedFrac = 0.15;
    /** Shared-region size, in cache blocks. */
    int sharedBlocks = 8192;
    /** Probability the next access continues a sequential stream. */
    double streamProb = 0.5;
    /** Fraction of shared accesses that are read-modify-write
     *  (drives invalidation traffic). */
    double sharedWriteFrac = 0.2;
};

/** @return the 10 evaluation workloads of Table 2 plus libquantum. */
const std::vector<WorkloadProfile> &allWorkloads();

/** @return the four commercial workloads (SAP, SPECjbb, TPC-C, SJAS). */
std::vector<WorkloadProfile> commercialWorkloads();

/** @return the six PARSEC benchmarks. */
std::vector<WorkloadProfile> parsecWorkloads();

/** @return a profile by name; fatal() if unknown. */
const WorkloadProfile &workloadByName(const std::string &name);

/** One trace record: a run of non-memory work ending in a memory op. */
struct TraceRecord
{
    int nonMemInstrs = 0; ///< instructions before the memory op
    bool isWrite = false;
    Addr addr = 0; ///< byte address (block-aligned by the generator)
};

/**
 * Deterministic per-core synthetic trace source.
 *
 * Address map: each core owns a private region at (core+1) << 32;
 * the shared region lives at 1 << 56. Addresses are block-aligned.
 */
class TraceGenerator
{
  public:
    TraceGenerator(const WorkloadProfile &profile, int core,
                   std::uint64_t seed, int block_bytes = 128);

    /** Produce the next record. Never exhausts. */
    TraceRecord next();

    const WorkloadProfile &profile() const { return profile_; }

  private:
    Addr pickAddress(bool &is_write);

    WorkloadProfile profile_;
    int core_;
    int blockBytes_;
    Rng rng_;
    Addr privateBase_;
    std::uint64_t streamBlock_ = 0;
    bool streaming_ = false;
    int streamLeft_ = 0;
};

} // namespace hnoc

#endif // HNOC_SYS_WORKLOADS_HH
