/**
 * @file
 * Design-space exploration of big-router placements (paper footnote 4):
 * exhaustive enumeration on a 4x4 mesh (1820 / 8008 / 12870 placements
 * for 4 / 6 / 8 big routers), scored analytically by how many X-Y flows
 * traverse big routers, with optional cycle-accurate evaluation of the
 * top candidates.
 */

#ifndef HNOC_HETERONOC_DESIGN_SPACE_HH
#define HNOC_HETERONOC_DESIGN_SPACE_HH

#include <cstdint>
#include <vector>

#include "common/job_pool.hh"
#include "noc/network_config.hh"

namespace hnoc
{

/** One scored placement. */
struct PlacementScore
{
    std::vector<bool> bigMask;
    double score = 0.0;      ///< analytic flow-coverage score
    double simLatencyNs = 0; ///< filled by simulateTopPlacements
};

/**
 * Analytic score of a placement: the average, over all (src, dst)
 * pairs, of the fraction of X-Y path routers that are big, weighted by
 * how often each router position is traversed under uniform traffic
 * (central routers carry more flows, Fig 1). Higher is better.
 */
double flowCoverageScore(const std::vector<bool> &big_mask, int radix);

/**
 * Enumerate every placement of @p num_big big routers on a
 * radix x radix mesh and return the @p top_k best by analytic score.
 * The number of enumerated placements is C(radix^2, num_big) —
 * tractable for radix 4 as in the paper.
 */
std::vector<PlacementScore> explorePlacements(int radix, int num_big,
                                              int top_k);

/** @return C(n, k) as a double (the paper quotes C(64,48) = 4.89e14). */
double binomial(int n, int k);

/**
 * Run short uniform-random simulations of the given placements (+BL
 * semantics), in parallel on @p pool (shared pool when null), and fill
 * PlacementScore::simLatencyNs. Results are deterministic: every
 * candidate is an independent sim point with its own seed.
 * @param rate injection rate in packets/node/cycle
 */
void simulateTopPlacements(std::vector<PlacementScore> &placements,
                           int radix, double rate,
                           std::uint64_t seed = 1,
                           JobPool *pool = nullptr);

} // namespace hnoc

#endif // HNOC_HETERONOC_DESIGN_SPACE_HH
