#include "heteronoc/design_space.hh"

#include <algorithm>

#include "common/geometry.hh"
#include "common/logging.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{

double
binomial(int n, int k)
{
    if (k < 0 || k > n)
        return 0.0;
    k = std::min(k, n - k);
    double r = 1.0;
    for (int i = 1; i <= k; ++i)
        r = r * (n - k + i) / i;
    return r;
}

namespace
{

/**
 * Per-router traversal weight under uniform traffic with X-Y routing:
 * how many (src, dst) flows pass through each router. Precomputed once
 * per radix.
 */
std::vector<double>
traversalWeights(int radix)
{
    int n = radix * radix;
    std::vector<double> w(static_cast<std::size_t>(n), 0.0);
    for (int s = 0; s < n; ++s) {
        Coord cs = idToCoord(s, radix);
        for (int d = 0; d < n; ++d) {
            if (s == d)
                continue;
            Coord cd = idToCoord(d, radix);
            // X first, then Y.
            int x = cs.x;
            int y = cs.y;
            w[static_cast<std::size_t>(coordToId({x, y}, radix))] += 1.0;
            while (x != cd.x) {
                x += cd.x > x ? 1 : -1;
                w[static_cast<std::size_t>(coordToId({x, y}, radix))] +=
                    1.0;
            }
            while (y != cd.y) {
                y += cd.y > y ? 1 : -1;
                w[static_cast<std::size_t>(coordToId({x, y}, radix))] +=
                    1.0;
            }
        }
    }
    double total = 0.0;
    for (double v : w)
        total += v;
    for (double &v : w)
        v /= total;
    return w;
}

} // namespace

double
flowCoverageScore(const std::vector<bool> &big_mask, int radix)
{
    // Two components, both rewarded by the paper's analysis (§5.1):
    //  (a) traversal coverage: traffic-weighted fraction of router
    //      visits that land on big routers (favors hot, central spots);
    //  (b) flow reach: fraction of (src,dst) flows whose X-Y path
    //      touches at least one big router (favors spreading).
    static thread_local std::vector<double> weights;
    static thread_local int weights_radix = -1;
    if (weights_radix != radix) {
        weights = traversalWeights(radix);
        weights_radix = radix;
    }

    double coverage = 0.0;
    for (std::size_t r = 0; r < big_mask.size(); ++r)
        if (big_mask[r])
            coverage += weights[r];

    int n = radix * radix;
    int reached = 0;
    int flows = 0;
    for (int s = 0; s < n; ++s) {
        Coord cs = idToCoord(s, radix);
        for (int d = 0; d < n; ++d) {
            if (s == d)
                continue;
            ++flows;
            Coord cd = idToCoord(d, radix);
            int x = cs.x;
            int y = cs.y;
            bool hit = big_mask[static_cast<std::size_t>(
                coordToId({x, y}, radix))];
            while (!hit && x != cd.x) {
                x += cd.x > x ? 1 : -1;
                hit = big_mask[static_cast<std::size_t>(
                    coordToId({x, y}, radix))];
            }
            while (!hit && y != cd.y) {
                y += cd.y > y ? 1 : -1;
                hit = big_mask[static_cast<std::size_t>(
                    coordToId({x, y}, radix))];
            }
            if (hit)
                ++reached;
        }
    }
    double reach = flows ? static_cast<double>(reached) / flows : 0.0;
    return 0.5 * coverage + 0.5 * reach;
}

std::vector<PlacementScore>
explorePlacements(int radix, int num_big, int top_k)
{
    int n = radix * radix;
    if (num_big <= 0 || num_big >= n)
        fatal("explorePlacements: num_big %d out of range", num_big);
    if (binomial(n, num_big) > 2e7)
        fatal("explorePlacements: C(%d,%d) too large to enumerate "
              "(the paper enumerates on 4x4 only)", n, num_big);

    std::vector<PlacementScore> best;
    std::vector<int> pick(static_cast<std::size_t>(num_big));
    for (int i = 0; i < num_big; ++i)
        pick[static_cast<std::size_t>(i)] = i;

    std::vector<bool> mask(static_cast<std::size_t>(n), false);
    auto evaluate = [&] {
        std::fill(mask.begin(), mask.end(), false);
        for (int idx : pick)
            mask[static_cast<std::size_t>(idx)] = true;
        double score = flowCoverageScore(mask, radix);
        if (static_cast<int>(best.size()) < top_k ||
            score > best.back().score) {
            PlacementScore ps;
            ps.bigMask = mask;
            ps.score = score;
            best.insert(std::upper_bound(
                            best.begin(), best.end(), ps,
                            [](const PlacementScore &a,
                               const PlacementScore &b) {
                                return a.score > b.score;
                            }),
                        std::move(ps));
            if (static_cast<int>(best.size()) > top_k)
                best.pop_back();
        }
    };

    // Standard lexicographic combination enumeration.
    while (true) {
        evaluate();
        int i = num_big - 1;
        while (i >= 0 &&
               pick[static_cast<std::size_t>(i)] == n - num_big + i)
            --i;
        if (i < 0)
            break;
        ++pick[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < num_big; ++j)
            pick[static_cast<std::size_t>(j)] =
                pick[static_cast<std::size_t>(j - 1)] + 1;
    }
    return best;
}

void
simulateTopPlacements(std::vector<PlacementScore> &placements, int radix,
                      double rate, std::uint64_t seed, JobPool *pool)
{
    // Candidates are independent sim points: fan them out as a batch.
    std::vector<BatchPoint> points;
    points.reserve(placements.size());
    for (const PlacementScore &ps : placements) {
        BatchPoint bp;
        bp.config =
            makeHeteroConfig(ps.bigMask, true, radix, "dse-candidate");
        bp.pattern = TrafficPattern::UniformRandom;
        bp.opts.injectionRate = rate;
        bp.opts.warmupCycles = 3000;
        bp.opts.measureCycles = 8000;
        bp.opts.drainCycles = 16000;
        bp.opts.seed = seed;
        points.push_back(std::move(bp));
    }
    std::vector<SimPointResult> results = runBatch(points, pool);
    for (std::size_t i = 0; i < placements.size(); ++i)
        placements[i].simLatencyNs = results[i].avgLatencyNs;
}

} // namespace hnoc
