#include "telemetry/health.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/portability.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{

namespace
{

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

std::vector<std::uint64_t>
delta(const std::vector<std::uint64_t> &now,
      const std::vector<std::uint64_t> &before)
{
    std::vector<std::uint64_t> d(now.size(), 0);
    for (std::size_t i = 0; i < now.size(); ++i)
        d[i] = i < before.size() ? now[i] - before[i] : now[i];
    return d;
}

/** Format a count with an SI suffix into @p buf ("2.31 M"). */
void
siRate(char *buf, std::size_t n, double v)
{
    if (v >= 1e6)
        std::snprintf(buf, n, "%.2f M", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, n, "%.1f k", v / 1e3);
    else
        std::snprintf(buf, n, "%.0f ", v);
}

} // namespace

std::string
HealthReport::text(int top_n) const
{
    char buf[200];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "health @ cycle %llu: +%llu delivered / +%llu injected "
                  "over %llu cycles, %zu in flight, %zu queued\n",
                  static_cast<unsigned long long>(cycle),
                  static_cast<unsigned long long>(deliveredDelta),
                  static_cast<unsigned long long>(injectedDelta),
                  static_cast<unsigned long long>(intervalCycles),
                  packetsInFlight, sourceQueueDepth);
    out += buf;

    if (hasRegistryDeltas && !routers.empty()) {
        // Rank routers by stall pressure this interval.
        std::vector<int> order(routers.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = static_cast<int>(i);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            const StallBreakdown &sa =
                routers[static_cast<std::size_t>(a)];
            const StallBreakdown &sb =
                routers[static_cast<std::size_t>(b)];
            return sa.creditStalls + sa.vaConflicts >
                   sb.creditStalls + sb.vaConflicts;
        });
        out += "most stalled routers (SA credit stalls | VA conflicts | "
               "grants | occupancy flit-cycles):\n";
        for (int i = 0; i < top_n &&
                        i < static_cast<int>(order.size()); ++i) {
            int r = order[static_cast<std::size_t>(i)];
            const StallBreakdown &s =
                routers[static_cast<std::size_t>(r)];
            if (s.creditStalls + s.vaConflicts == 0)
                break;
            std::snprintf(buf, sizeof(buf),
                          "  router %2d: %8llu | %8llu | %8llu | %10llu\n",
                          r,
                          static_cast<unsigned long long>(s.creditStalls),
                          static_cast<unsigned long long>(s.vaConflicts),
                          static_cast<unsigned long long>(s.saGrants),
                          static_cast<unsigned long long>(
                              s.occupancyFlitCycles));
            out += buf;
        }
    }

    for (const PortIssue &iss : issues) {
        std::snprintf(
            buf, sizeof(buf),
            "  %s: router %d port %d (%d flits buffered, "
            "%llu credit stalls this interval)\n",
            iss.kind == PortIssue::Kind::CreditStarved
                ? "CREDIT-STARVED"
                : "ZERO-PROGRESS",
            iss.router, iss.port, iss.buffered,
            static_cast<unsigned long long>(iss.creditStalls));
        out += buf;
    }
    return out;
}

HealthMonitor::HealthMonitor(HealthOptions opts) : opts_(opts) {}

const HealthReport &
HealthMonitor::probe(const HealthSample &sample, const MetricRegistry *reg)
{
    HealthReport rep;
    rep.cycle = sample.cycle;
    rep.packetsInFlight = sample.packetsInFlight;
    rep.sourceQueueDepth = sample.sourceQueueDepth;
    if (havePrev_) {
        rep.intervalCycles = sample.cycle - prev_.cycle;
        rep.deliveredDelta =
            sample.packetsDelivered - prev_.packetsDelivered;
        rep.injectedDelta = sample.packetsInjected - prev_.packetsInjected;
        rep.flitsDelta = sample.flitsDelivered - prev_.flitsDelivered;
    }

    // High-water marks persist across probes.
    if (vcHighWater_.size() < sample.vcOccupancy.size())
        vcHighWater_.resize(sample.vcOccupancy.size(), 0);
    for (std::size_t i = 0; i < sample.vcOccupancy.size(); ++i)
        vcHighWater_[i] = std::max(vcHighWater_[i], sample.vcOccupancy[i]);

    if (reg) {
        const auto &grants = reg->values(Ctr::XbarGrants);
        const auto &reads = reg->values(Ctr::BufferReads);
        const auto &stalls = reg->values(Ctr::CreditStalls);
        std::vector<std::uint64_t> conflicts =
            reg->perRouter(Ctr::VaConflicts);
        std::vector<std::uint64_t> occ =
            reg->perRouter(Ctr::OccupancyFlitCycles);

        if (haveRegPrev_ && havePrev_) {
            rep.hasRegistryDeltas = true;
            std::vector<std::uint64_t> d_grants =
                delta(grants, prevGrants_);
            std::vector<std::uint64_t> d_reads = delta(reads, prevReads_);
            std::vector<std::uint64_t> d_stalls =
                delta(stalls, prevStalls_);
            std::vector<std::uint64_t> d_conflicts =
                delta(conflicts, prevVaConflicts_);
            std::vector<std::uint64_t> d_occ = delta(occ, prevOccupancy_);

            rep.routers.resize(
                static_cast<std::size_t>(sample.routers));
            for (int r = 0; r < sample.routers; ++r) {
                StallBreakdown &s =
                    rep.routers[static_cast<std::size_t>(r)];
                s.vaConflicts =
                    d_conflicts[static_cast<std::size_t>(r)];
                s.occupancyFlitCycles =
                    d_occ[static_cast<std::size_t>(r)];
                for (int p = 0; p < sample.ports; ++p) {
                    auto idx = static_cast<std::size_t>(
                        r * sample.ports + p);
                    s.saGrants += d_grants[idx];
                    s.bufferReads += d_reads[idx];
                    s.creditStalls += d_stalls[idx];
                }
            }

            // Port-level detectors: a port that held flits across the
            // whole interval and made zero reads is stuck; a port
            // whose SA kept stalling on credits and never won a grant
            // is credit-starved (its upstream buffers are what the
            // occupancy map shows filling).
            for (int r = 0; r < sample.routers; ++r) {
                for (int p = 0; p < sample.ports; ++p) {
                    auto idx = static_cast<std::size_t>(
                        r * sample.ports + p);
                    int now_occ = sample.portOccupancy(r, p);
                    int then_occ = prev_.portOccupancy(r, p);
                    if (now_occ > 0 && then_occ > 0 &&
                        d_reads[idx] == 0) {
                        PortIssue iss;
                        iss.kind = PortIssue::Kind::ZeroProgress;
                        iss.router = r;
                        iss.port = p;
                        iss.buffered = now_occ;
                        iss.creditStalls = d_stalls[idx];
                        rep.issues.push_back(iss);
                    } else if (d_stalls[idx] > 0 && d_grants[idx] == 0) {
                        PortIssue iss;
                        iss.kind = PortIssue::Kind::CreditStarved;
                        iss.router = r;
                        iss.port = p;
                        iss.buffered = now_occ;
                        iss.creditStalls = d_stalls[idx];
                        rep.issues.push_back(iss);
                    }
                }
            }
        }

        prevGrants_ = grants;
        prevReads_ = reads;
        prevStalls_ = stalls;
        prevVaConflicts_ = std::move(conflicts);
        prevOccupancy_ = std::move(occ);
        haveRegPrev_ = true;
    } else {
        haveRegPrev_ = false;
    }

    prev_ = sample;
    havePrev_ = true;
    ++probes_;
    report_ = std::move(rep);
    return report_;
}

int
HealthMonitor::maxVcHighWater(int *router, int *port, int *vc) const
{
    int best = 0;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < vcHighWater_.size(); ++i) {
        if (vcHighWater_[i] > best) {
            best = vcHighWater_[i];
            best_i = i;
        }
    }
    if (!vcHighWater_.empty() && prev_.ports > 0 && prev_.vcs > 0) {
        auto i = static_cast<int>(best_i);
        if (vc)
            *vc = i % prev_.vcs;
        if (port)
            *port = (i / prev_.vcs) % prev_.ports;
        if (router)
            *router = i / (prev_.vcs * prev_.ports);
    }
    return best;
}

std::string
HealthMonitor::progressLine(const HealthSample &sample)
{
    double now_wall = wallSeconds();
    if (startWall_ < 0.0) {
        startWall_ = now_wall;
        startCycle_ = sample.cycle;
    }

    double cyc_rate = 0.0;
    double flit_rate = 0.0;
    if (lastWall_ >= 0.0 && now_wall > lastWall_) {
        double dt = now_wall - lastWall_;
        cyc_rate = static_cast<double>(sample.cycle - lastCycle_) / dt;
        flit_rate =
            static_cast<double>(sample.flitsDelivered - lastFlits_) / dt;
    }
    lastWall_ = now_wall;
    lastCycle_ = sample.cycle;
    lastFlits_ = sample.flitsDelivered;

    char cyc_s[32];
    char flit_s[32];
    siRate(cyc_s, sizeof(cyc_s), cyc_rate);
    siRate(flit_s, sizeof(flit_s), flit_rate);

    char buf[256];
    std::string out;
    if (opts_.targetCycles > 0) {
        double pct = 100.0 * static_cast<double>(sample.cycle) /
                     static_cast<double>(opts_.targetCycles);
        std::snprintf(buf, sizeof(buf), "cycle %llu/%llu %.0f%%",
                      static_cast<unsigned long long>(sample.cycle),
                      static_cast<unsigned long long>(opts_.targetCycles),
                      pct);
    } else {
        std::snprintf(buf, sizeof(buf), "cycle %llu",
                      static_cast<unsigned long long>(sample.cycle));
    }
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  " | delivered %llu | in-flight %zu | %sflit/s | %scyc/s",
                  static_cast<unsigned long long>(sample.packetsDelivered),
                  sample.packetsInFlight, flit_s, cyc_s);
    out += buf;

    // Live simulator cost: wall ns per simulated cycle over the last
    // probe interval, and the process peak RSS.
    if (cyc_rate > 0.0) {
        std::snprintf(buf, sizeof(buf), " | %.0f ns/cyc",
                      1e9 / cyc_rate);
        out += buf;
    }
    if (std::uint64_t rss = peakRssBytes()) {
        std::snprintf(buf, sizeof(buf), " | rss %.0f MB",
                      static_cast<double>(rss) / (1024.0 * 1024.0));
        out += buf;
    }

    if (opts_.targetCycles > sample.cycle) {
        // ETA from the average rate since the monitor started; steadier
        // than the instantaneous rate on bursty hosts.
        double elapsed = now_wall - startWall_;
        auto done = static_cast<double>(sample.cycle - startCycle_);
        if (elapsed > 0.0 && done > 0.0) {
            double rate = done / elapsed;
            double eta = static_cast<double>(opts_.targetCycles -
                                             sample.cycle) /
                         rate;
            if (eta >= 60.0)
                std::snprintf(buf, sizeof(buf), " | ETA %dm%02ds",
                              static_cast<int>(eta) / 60,
                              static_cast<int>(eta) % 60);
            else
                std::snprintf(buf, sizeof(buf), " | ETA %.0fs", eta);
            out += buf;
        }
    }
    return out;
}

} // namespace hnoc
