file(REMOVE_RECURSE
  "CMakeFiles/fig11_applications.dir/fig11_applications.cc.o"
  "CMakeFiles/fig11_applications.dir/fig11_applications.cc.o.d"
  "fig11_applications"
  "fig11_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
