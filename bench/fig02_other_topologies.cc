/**
 * @file
 * Figure 2: buffer utilization in a 4x4 concentrated mesh
 * (concentration 4) and a 64-node flattened butterfly (16 routers,
 * 4 nodes each) under uniform-random traffic: non-edge-symmetric
 * topologies show the same non-uniform demand as the mesh.
 */

#include "bench_util.hh"
#include "noc/sim_harness.hh"

using namespace hnoc;
using namespace hnoc::bench;

namespace
{

void
runTopology(const char *title, TopologyType topo, double rate)
{
    NetworkConfig cfg;
    cfg.name = title;
    cfg.topology = topo;
    cfg.radixX = 4;
    cfg.radixY = 4;
    cfg.concentration = 4;

    SimPointOptions opts;
    opts.injectionRate = rate;
    opts.warmupCycles = 8000;
    opts.measureCycles = 30000;
    opts.drainCycles = 0;
    SimPointResult res =
        runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);

    std::printf("%s\n",
                formatHeatMap(res.bufferUtilPct, 4, title).c_str());
    double center = (res.bufferUtilPct[5] + res.bufferUtilPct[6] +
                     res.bufferUtilPct[9] + res.bufferUtilPct[10]) / 4.0;
    double corner = (res.bufferUtilPct[0] + res.bufferUtilPct[3] +
                     res.bufferUtilPct[12] + res.bufferUtilPct[15]) / 4.0;
    std::printf("center %.1f%% vs corner %.1f%% (non-uniform: %.2fx)\n\n",
                center, corner, center / corner);
}

} // namespace

int
main()
{
    printHeader("Figure 2",
                "buffer utilization in concentrated mesh and flattened "
                "butterfly (UR)");
    runTopology("(a) Concentrated mesh 4x4, conc. 4 (buffer util %)",
                TopologyType::ConcentratedMesh, 0.035);
    runTopology("(b) Flattened butterfly 16 routers x 4 nodes "
                "(buffer util %)",
                TopologyType::FlattenedButterfly, 0.120);
    return 0;
}
