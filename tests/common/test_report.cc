/**
 * @file
 * Table/report module tests: alignment, CSV escaping, file output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/report.hh"

namespace hnoc
{
namespace
{

TEST(Table, TextAligned)
{
    Table t({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "2.5"});
    std::string s = t.text();
    // Every line has the same column start for "value".
    std::istringstream in(s);
    std::string line;
    std::getline(in, line);
    auto col = line.find("value");
    ASSERT_NE(col, std::string::npos);
    std::getline(in, line);
    EXPECT_EQ(line.find('1'), col);
}

TEST(Table, CsvEscaping)
{
    Table t({"a", "b"});
    t.row({"plain", "has,comma"});
    t.row({"has\"quote", "x"});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(Table, WriteCsvRoundTrip)
{
    Table t({"x", "y"});
    t.row({"1", "2"});
    std::string path = "/tmp/hnoc_table_test.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

TEST(Table, RowCountAndColumns)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.row({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

} // namespace
} // namespace hnoc
