/**
 * @file
 * Confidence-interval and epoch-series helpers shared by the adaptive
 * simulation controller and hnoc_inspect's offline convergence replay:
 * tCriticalValue, tStatCI, RunningStat::relHalfWidth,
 * steadyEpochCutoff, epochSeriesCi.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

namespace hnoc
{
namespace
{

TEST(TCriticalValue, MatchesPrintedTable)
{
    EXPECT_DOUBLE_EQ(tCriticalValue(0.95, 1), 12.706);
    EXPECT_DOUBLE_EQ(tCriticalValue(0.95, 7), 2.365);
    EXPECT_DOUBLE_EQ(tCriticalValue(0.95, 10), 2.228);
    EXPECT_DOUBLE_EQ(tCriticalValue(0.95, 30), 2.042);
    EXPECT_DOUBLE_EQ(tCriticalValue(0.90, 10), 1.812);
    EXPECT_DOUBLE_EQ(tCriticalValue(0.99, 10), 3.169);
}

TEST(TCriticalValue, InterpolatesTowardNormalLimit)
{
    // Past the table the value shrinks monotonically toward z.
    double t40 = tCriticalValue(0.95, 40);
    double t120 = tCriticalValue(0.95, 120);
    EXPECT_LT(t40, tCriticalValue(0.95, 30));
    EXPECT_LT(t120, t40);
    EXPECT_GT(t120, 1.960);
    // Printed t-table rows: t(0.95, 40) = 2.021, t(0.95, 120) = 1.980.
    EXPECT_NEAR(t40, 2.021, 0.01);
    EXPECT_NEAR(t120, 1.980, 0.01);
}

TEST(TCriticalValue, UnsupportedConfidenceFatal)
{
    EXPECT_DEATH((void)tCriticalValue(0.42, 10), "unsupported");
}

TEST(TStatCI, HalfWidthFormula)
{
    // t(0.95, 3) * s / sqrt(4) = 3.182 * 2 / 2.
    EXPECT_DOUBLE_EQ(tStatCI(4, 2.0), 3.182);
    EXPECT_DOUBLE_EQ(tStatCI(4, 0.0), 0.0);
    EXPECT_TRUE(std::isinf(tStatCI(1, 2.0)));
    EXPECT_TRUE(std::isinf(tStatCI(0, 2.0)));
}

TEST(RunningStatCi, SampleVarianceIsUnbiased)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 6.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 4.0);   // m2/(n-1) = 8/2
    EXPECT_DOUBLE_EQ(s.sampleStddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.variance(), 8.0 / 3.0);   // population
}

TEST(RunningStatCi, RelHalfWidthMatchesManualComputation)
{
    RunningStat s;
    for (double x : {98.0, 100.0, 102.0, 100.0})
        s.add(x);
    double expect =
        tStatCI(4, s.sampleStddev(), 0.95) / std::fabs(s.mean());
    EXPECT_DOUBLE_EQ(s.relHalfWidth(), expect);
    EXPECT_GT(s.relHalfWidth(0.99), s.relHalfWidth(0.95));
    EXPECT_LT(s.relHalfWidth(0.90), s.relHalfWidth(0.95));
}

TEST(RunningStatCi, RelHalfWidthDegenerateCases)
{
    RunningStat s;
    EXPECT_TRUE(std::isinf(s.relHalfWidth()));
    s.add(5.0);
    EXPECT_TRUE(std::isinf(s.relHalfWidth())); // one sample
    RunningStat zero_mean;
    zero_mean.add(-1.0);
    zero_mean.add(1.0);
    EXPECT_TRUE(std::isinf(zero_mean.relHalfWidth()));
}

TEST(SteadyEpochCutoff, FindsFirstStableIndex)
{
    // Decaying transient, then flat within 5%: indices 3.. are each
    // within tolerance of their predecessor, so with k=3 the first
    // stable value is index 3.
    std::vector<double> series = {100.0, 60.0, 40.0,
                                  40.5,  40.2, 40.1};
    EXPECT_EQ(steadyEpochCutoff(series, 0.05, 3), 3);
    // A looser k reaches the same prefix sooner.
    EXPECT_EQ(steadyEpochCutoff(series, 0.05, 1), 3);
}

TEST(SteadyEpochCutoff, NeverStabilizesReturnsMinusOne)
{
    std::vector<double> osc = {100.0, 50.0, 100.0, 50.0, 100.0};
    EXPECT_EQ(steadyEpochCutoff(osc, 0.05, 2), -1);
    EXPECT_EQ(steadyEpochCutoff({}, 0.05, 2), -1);
    EXPECT_EQ(steadyEpochCutoff({1.0}, 0.05, 2), -1);
}

TEST(SteadyEpochCutoff, RunMustBeConsecutive)
{
    // One in-tolerance step followed by a jump resets the run.
    std::vector<double> series = {100.0, 101.0, 200.0,
                                  201.0, 202.0, 203.0};
    EXPECT_EQ(steadyEpochCutoff(series, 0.05, 3), 3);
}

TEST(EpochSeriesCi, TailSummaryAfterCutoff)
{
    std::vector<double> series = {500.0, 200.0, 100.0,
                                  100.0, 100.0, 100.0};
    EpochSeriesCi ci = epochSeriesCi(series, 2);
    EXPECT_EQ(ci.batches, 4u);
    EXPECT_DOUBLE_EQ(ci.mean, 100.0);
    EXPECT_DOUBLE_EQ(ci.relHalfWidth, 0.0); // identical samples
    // Whole-series summary is polluted by the transient.
    EpochSeriesCi all = epochSeriesCi(series, 0);
    EXPECT_EQ(all.batches, 6u);
    EXPECT_GT(all.relHalfWidth, ci.relHalfWidth);
}

TEST(EpochSeriesCi, FewerThanTwoBatchesIsInf)
{
    EXPECT_TRUE(std::isinf(epochSeriesCi({}, 0).relHalfWidth));
    EXPECT_TRUE(std::isinf(epochSeriesCi({5.0}, 0).relHalfWidth));
}

} // namespace
} // namespace hnoc
