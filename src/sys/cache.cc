#include "sys/cache.hh"

#include "common/logging.hh"

namespace hnoc
{

CacheArray::CacheArray(std::uint64_t size_bytes, int ways, int block_bytes)
    : ways_(ways), blockBytes_(block_bytes)
{
    if (ways <= 0 || block_bytes <= 0 || size_bytes == 0)
        fatal("CacheArray: invalid geometry");
    std::uint64_t lines = size_bytes / static_cast<std::uint64_t>(block_bytes);
    numSets_ = static_cast<std::size_t>(lines / static_cast<std::uint64_t>(ways));
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(numSets_ * static_cast<std::size_t>(ways_));
}

std::size_t
CacheArray::setIndex(Addr addr) const
{
    // Full avalanche mix (fmix64) so per-core private regions — which
    // differ only above bit 32 in the synthetic address map — spread
    // over all sets instead of aliasing onto the same few.
    Addr h = addr / static_cast<Addr>(blockBytes_);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % numSets_);
}

CacheState
CacheArray::lookup(Addr addr) const
{
    Addr tag = blockAddr(addr);
    std::size_t base = setIndex(addr) * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        const Line &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.state != CacheState::Invalid && line.tag == tag)
            return line.state;
    }
    return CacheState::Invalid;
}

void
CacheArray::setState(Addr addr, CacheState state)
{
    Addr tag = blockAddr(addr);
    std::size_t base = setIndex(addr) * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.state != CacheState::Invalid && line.tag == tag) {
            line.state = state;
            line.lastUse = ++useClock_;
            return;
        }
    }
    panic("CacheArray::setState: line %llx not resident",
          static_cast<unsigned long long>(tag));
}

bool
CacheArray::insert(Addr addr, CacheState state, Addr &victim_addr,
                   CacheState &victim_state)
{
    Addr tag = blockAddr(addr);
    std::size_t base = setIndex(addr) * static_cast<std::size_t>(ways_);

    // Already resident: just update.
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.state != CacheState::Invalid && line.tag == tag) {
            line.state = state;
            line.lastUse = ++useClock_;
            return false;
        }
    }

    // Free way?
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.state == CacheState::Invalid) {
            line.tag = tag;
            line.state = state;
            line.lastUse = ++useClock_;
            return false;
        }
    }

    // Evict LRU.
    int victim = 0;
    for (int w = 1; w < ways_; ++w) {
        if (lines_[base + static_cast<std::size_t>(w)].lastUse <
            lines_[base + static_cast<std::size_t>(victim)].lastUse)
            victim = w;
    }
    Line &line = lines_[base + static_cast<std::size_t>(victim)];
    victim_addr = line.tag;
    victim_state = line.state;
    line.tag = tag;
    line.state = state;
    line.lastUse = ++useClock_;
    ++evictions;
    return true;
}

void
CacheArray::invalidate(Addr addr)
{
    Addr tag = blockAddr(addr);
    std::size_t base = setIndex(addr) * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.state != CacheState::Invalid && line.tag == tag) {
            line.state = CacheState::Invalid;
            return;
        }
    }
}

void
CacheArray::touch(Addr addr)
{
    Addr tag = blockAddr(addr);
    std::size_t base = setIndex(addr) * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<std::size_t>(w)];
        if (line.state != CacheState::Invalid && line.tag == tag) {
            line.lastUse = ++useClock_;
            return;
        }
    }
}

} // namespace hnoc
