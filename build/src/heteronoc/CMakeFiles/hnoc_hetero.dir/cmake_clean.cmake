file(REMOVE_RECURSE
  "CMakeFiles/hnoc_hetero.dir/constraints.cc.o"
  "CMakeFiles/hnoc_hetero.dir/constraints.cc.o.d"
  "CMakeFiles/hnoc_hetero.dir/design_space.cc.o"
  "CMakeFiles/hnoc_hetero.dir/design_space.cc.o.d"
  "CMakeFiles/hnoc_hetero.dir/layout.cc.o"
  "CMakeFiles/hnoc_hetero.dir/layout.cc.o.d"
  "libhnoc_hetero.a"
  "libhnoc_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnoc_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
