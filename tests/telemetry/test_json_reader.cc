/**
 * @file
 * Tests for the strict telemetry JSON reader (json_reader.hh): the
 * grammar itself (accept/reject, escape handling, full-document
 * consumption), the byte-positioned error messages, the JsonValue
 * lookup helpers the tooling leans on, and the JSONL/file variants.
 * This is the promoted home of the MiniJsonParser self-test that used
 * to live inside test_trace.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/json_reader.hh"

namespace hnoc
{
namespace
{

// ------------------------------------------------------- the grammar --

TEST(JsonReader, ParsesTheSixValueTypes)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(
        "{\"a\":[1,2.5,-3],\"s\":\"x\\ny\",\"t\":true,\"f\":false,"
        "\"n\":null,\"o\":{\"k\":7}}",
        v));
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_TRUE(v.find("a")->isArray());
    EXPECT_EQ(v.find("a")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->array[1].number, 2.5);
    EXPECT_DOUBLE_EQ(v.find("a")->array[2].number, -3.0);
    EXPECT_EQ(v.strAt("s"), "x\ny");
    EXPECT_TRUE(v.boolAt("t"));
    EXPECT_FALSE(v.boolAt("f", true));
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_DOUBLE_EQ(v.find("o")->numAt("k"), 7.0);
}

TEST(JsonReader, RejectsMalformedDocuments)
{
    // Malformed documents must be rejected, or round-trip tests
    // against this parser prove nothing.
    JsonValue v;
    EXPECT_FALSE(parseJson("{\"a\":1,}", v));
    EXPECT_FALSE(parseJson("[1 2]", v));
    EXPECT_FALSE(parseJson("{\"a\":nan}", v));
    EXPECT_FALSE(parseJson("{} trailing", v));
    EXPECT_FALSE(parseJson("{\"a\"1}", v));
    EXPECT_FALSE(parseJson("\"unterminated", v));
    EXPECT_FALSE(parseJson("tru", v));
    EXPECT_FALSE(parseJson("", v));
    EXPECT_FALSE(parseJson("{\"a\":\"\x01\"}", v));
    EXPECT_FALSE(parseJson("{\"a\":\"\\q\"}", v));
    EXPECT_FALSE(parseJson("[1,2", v));
}

TEST(JsonReader, UnicodeEscapes)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("\"a\\u0041\\u000ab\"", v));
    EXPECT_EQ(v.string, "aA\nb");
    EXPECT_FALSE(parseJson("\"\\u12\"", v));
    EXPECT_FALSE(parseJson("\"\\u12zz\"", v));
}

TEST(JsonReader, ErrorsCarryBytePositions)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":1,}", v, &err));
    EXPECT_NE(err.find("byte "), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(parseJson("{} x", v, &err));
    EXPECT_NE(err.find("trailing content"), std::string::npos) << err;

    // A successful parse clears any stale error text.
    ASSERT_TRUE(parseJson("true", v, &err));
    EXPECT_TRUE(err.empty());
    EXPECT_TRUE(v.isBool());
    EXPECT_TRUE(v.boolean);
}

// ------------------------------------------------------ the helpers --

TEST(JsonReader, LookupHelperFallbacks)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(
        "{\"n\":3,\"s\":\"hi\",\"a\":[1,2,3],\"mixed\":[1,\"x\"]}", v));

    EXPECT_DOUBLE_EQ(v.numAt("n"), 3.0);
    EXPECT_DOUBLE_EQ(v.numAt("missing"), -1.0);
    EXPECT_DOUBLE_EQ(v.numAt("missing", 99.0), 99.0);
    EXPECT_DOUBLE_EQ(v.numAt("s", 5.0), 5.0); // wrong type -> fallback

    EXPECT_EQ(v.strAt("s"), "hi");
    EXPECT_EQ(v.strAt("missing"), "");
    EXPECT_EQ(v.strAt("n"), "");

    EXPECT_EQ(v.arrayAt("a").size(), 3u);
    EXPECT_TRUE(v.arrayAt("missing").empty());

    std::vector<double> nums = v.numbersAt("a");
    ASSERT_EQ(nums.size(), 3u);
    EXPECT_DOUBLE_EQ(nums[2], 3.0);
    // Non-numeric elements read as 0; a missing member reads empty.
    std::vector<double> mixed = v.numbersAt("mixed");
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_DOUBLE_EQ(mixed[0], 1.0);
    EXPECT_DOUBLE_EQ(mixed[1], 0.0);
    EXPECT_TRUE(v.numbersAt("missing").empty());
}

// -------------------------------------------------------- JSONL mode --

TEST(JsonReader, JsonLines)
{
    std::vector<JsonValue> lines;
    ASSERT_TRUE(parseJsonLines(
        "{\"t\":1}\n\n{\"t\":2}\n{\"t\":3}\n", lines));
    ASSERT_EQ(lines.size(), 3u); // blank line skipped
    EXPECT_DOUBLE_EQ(lines[1].numAt("t"), 2.0);

    std::string err;
    lines.clear();
    EXPECT_FALSE(parseJsonLines("{\"t\":1}\n{bad}\n", lines, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// --------------------------------------------------------- file mode --

class JsonReaderFileTest : public ::testing::Test
{
  protected:
    std::string
    writeTemp(const std::string &name, const std::string &contents)
    {
        std::string path = testing::TempDir() + name;
        std::ofstream f(path, std::ios::trunc);
        f << contents;
        f.close();
        paths_.push_back(path);
        return path;
    }

    void
    TearDown() override
    {
        for (const std::string &p : paths_)
            std::remove(p.c_str());
    }

    std::vector<std::string> paths_;
};

TEST_F(JsonReaderFileTest, ParseJsonFile)
{
    std::string path = writeTemp("jr_doc.json", "{\"ok\":true}");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJsonFile(path, v, &err)) << err;
    EXPECT_TRUE(v.boolAt("ok"));

    // Missing file: clear error naming the path.
    EXPECT_FALSE(parseJsonFile("/nonexistent/x.json", v, &err));
    EXPECT_NE(err.find("/nonexistent/x.json"), std::string::npos) << err;

    // Malformed file: error prefixed with the path.
    std::string bad = writeTemp("jr_bad.json", "{\"a\":}");
    EXPECT_FALSE(parseJsonFile(bad, v, &err));
    EXPECT_NE(err.find(bad), std::string::npos) << err;
    EXPECT_NE(err.find("byte "), std::string::npos) << err;
}

TEST_F(JsonReaderFileTest, ParseJsonLinesFile)
{
    std::string path =
        writeTemp("jr_log.jsonl", "{\"ev\":\"arr\"}\n{\"ev\":\"dep\"}\n");
    std::vector<JsonValue> lines;
    std::string err;
    ASSERT_TRUE(parseJsonLinesFile(path, lines, &err)) << err;
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].strAt("ev"), "arr");
    EXPECT_EQ(lines[1].strAt("ev"), "dep");
}

} // namespace
} // namespace hnoc
