/**
 * @file
 * Simulator self-profiling: where do the *simulator's* wall-clock
 * nanoseconds and bytes go?
 *
 * The metrics/trace/flight-recorder stack observes the simulated
 * network; the Profiler observes the simulation loop itself. It holds
 * one accumulator per hot-path phase (channel delivery, NI ejection,
 * RC, VA, SA/ST, NI injection, telemetry epoch work) and a scoped
 * steady_clock timer (ProfScope) that hook sites open around each
 * phase. Wall-clock data is report-only: nothing the simulation
 * computes ever reads it, so goldens and bit-identity are untouched
 * whether a profiler is attached or not (pinned by test_profiler).
 *
 * Cost model matches the registry hooks: one pointer test per phase
 * while detached, compiled out entirely under -DHNOC_TELEMETRY=OFF
 * (hook sites resolve the pointer through `kTelemetryEnabled ? ... :
 * nullptr`, which constant-folds to nullptr). While attached, each
 * phase costs two steady_clock reads — acceptable for profiling runs,
 * never paid by measurement runs.
 *
 * Threading: like MetricRegistry, a Profiler is single-threaded by
 * design. Each parallel sim point owns its own instance; after the
 * JobPool joins, merge() adds the accumulators (pure integer sums, so
 * the merged totals are independent of merge order up to commutative
 * addition — pinned by test_profiler).
 *
 * The companion MemoryAudit struct carries the per-component
 * footprintBytes() breakdown that Network::memoryAudit() /
 * CmpSystem::memoryAudit() fill in — a plain struct, like
 * HealthSample, so this library never links against the NoC.
 */

#ifndef HNOC_TELEMETRY_PROFILER_HH
#define HNOC_TELEMETRY_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hnoc
{

class JsonWriter;

/** Simulation-loop phases attributed by the profiler. */
enum class ProfPhase : int
{
    ChannelDelivery, ///< flit/credit pipe drain into router inputs
    NiEject,         ///< flit/credit delivery at terminal NIs
    RouteCompute,    ///< router RC over the rcMask slots
    VcAllocate,      ///< router VA over the vaReqMask slots
    SwitchAllocate,  ///< router SA walks + switch/link traversal
    NiInject,        ///< NI source-queue / stream stepping
    TelemetryTick,   ///< registry epoch clock + rollover
    StepTotal,       ///< whole Network::step (residual = scan/overhead)
    NumPhases,
};

/** @return the stable snake_case name of @p p (report schema). */
const char *profPhaseName(ProfPhase p);

/** Per-phase wall-clock accumulators for one simulation thread. */
class Profiler
{
  public:
    using clock = std::chrono::steady_clock;

    Profiler();

    /** Hot-path hook: charge @p ns of wall clock to phase @p p. */
    void
    add(ProfPhase p, std::uint64_t ns, std::uint64_t visits = 1)
    {
        auto i = static_cast<std::size_t>(p);
        ns_[i] += ns;
        visits_[i] += visits;
    }

    /** Drop all accumulated samples. */
    void reset();

    /**
     * Merge @p other into this profiler (accumulators add). Used to
     * combine per-point profilers after a parallel run; addition is
     * commutative, so totals do not depend on the merge order.
     */
    void merge(const Profiler &other);

    /** @name Reading */
    ///@{
    std::uint64_t ns(ProfPhase p) const
    {
        return ns_[static_cast<std::size_t>(p)];
    }

    std::uint64_t visits(ProfPhase p) const
    {
        return visits_[static_cast<std::size_t>(p)];
    }

    /** Wall nanoseconds charged to all phases except StepTotal. */
    std::uint64_t attributedNs() const;

    /** StepTotal minus attributedNs(): active-set scan + loop
     *  overhead + anything not wrapped in a phase scope. Clamped at
     *  zero (scope timers nest inside the StepTotal scope, so timer
     *  granularity can make the sum exceed the total by a hair). */
    std::uint64_t unattributedNs() const;

    /** Cycles covered (StepTotal visits). */
    std::uint64_t cycles() const
    {
        return visits(ProfPhase::StepTotal);
    }
    ///@}

    /** @name Per-block attribution (cache-blocked stepping, §6g) */
    ///@{
    /** Arm per-block accumulators for @p n spatial blocks (idempotent
     *  when already sized; clears on shrink-to-zero via reset()). */
    void enableBlocks(std::size_t n);

    /** Charge @p ns of wall clock to block @p b (one visit = one
     *  touched cycle: empty blocks are skipped, not visited). */
    void
    addBlock(std::size_t b, std::uint64_t ns)
    {
        if (b < blocks_.size()) {
            blocks_[b].ns += ns;
            ++blocks_[b].visits;
        }
    }

    /** Record block @p b's steady-state hot footprint in bytes. */
    void setBlockBytes(std::size_t b, std::uint64_t bytes);

    std::size_t numBlocks() const { return blocks_.size(); }
    std::uint64_t blockNs(std::size_t b) const { return blocks_[b].ns; }
    std::uint64_t blockVisits(std::size_t b) const
    {
        return blocks_[b].visits;
    }
    std::uint64_t blockBytes(std::size_t b) const
    {
        return blocks_[b].bytes;
    }

    /** Bytes the blocked step order streams per simulated cycle:
     *  sum over blocks of hot-footprint x touched-cycles, divided by
     *  cycles covered. 0 without block data. */
    double bytesStreamedPerCycle() const;
    ///@}

    /**
     * Emit the `profile.phases` object: per-phase ns / visits / share
     * of StepTotal, plus the unattributed residual.
     */
    void writeJson(JsonWriter &w) const;

    /** @return writeJson output as a standalone document. */
    std::string json() const;

    /** Human-readable phase table (hnoc_cli --profile). */
    std::string table() const;

  private:
    /** One spatial block's wall/visit/footprint accumulators. */
    struct BlockStat
    {
        std::uint64_t ns = 0;
        std::uint64_t visits = 0;
        std::uint64_t bytes = 0;
    };

    std::uint64_t ns_[static_cast<std::size_t>(ProfPhase::NumPhases)];
    std::uint64_t visits_[static_cast<std::size_t>(ProfPhase::NumPhases)];
    std::vector<BlockStat> blocks_;
};

/**
 * RAII phase timer. Constructed with nullptr (the detached state) it
 * is a no-op costing one branch; hook sites pass
 * `kTelemetryEnabled ? profiler_ : nullptr` so the OFF build folds the
 * whole scope away.
 */
class ProfScope
{
  public:
    ProfScope(Profiler *p, ProfPhase phase) : p_(p), phase_(phase)
    {
        if (p_)
            t0_ = Profiler::clock::now();
    }

    ~ProfScope()
    {
        if (p_)
            p_->add(phase_,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            Profiler::clock::now() - t0_)
                            .count()));
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    Profiler *p_;
    ProfPhase phase_;
    Profiler::clock::time_point t0_;
};

/**
 * Per-component memory breakdown, filled by Network::memoryAudit()
 * (and extended by CmpSystem::memoryAudit() with cache/directory
 * rows). Byte counts are steady-state footprints computed from
 * container capacities — the O(tiles) directory-per-line cost shows
 * up here as measured bytes, not as an estimate.
 */
struct MemoryAudit
{
    struct Component
    {
        std::string name;       ///< e.g. "routers", "mesi_directory"
        std::uint64_t bytes = 0;
        std::uint64_t count = 0; ///< instances aggregated into bytes
    };

    int tiles = 0; ///< terminal nodes (per-tile normalization basis)
    std::vector<Component> components;

    std::uint64_t totalBytes() const;
    double bytesPerTile() const;

    /** Append a component row (skips zero-count placeholder rows). */
    void add(const std::string &name, std::uint64_t bytes,
             std::uint64_t count);

    /** Emit the `profile.memory` object. */
    void writeJson(JsonWriter &w) const;

    /** Human-readable component table (hnoc_cli --profile). */
    std::string table() const;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_PROFILER_HH
