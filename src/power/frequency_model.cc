#include "power/frequency_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace hnoc
{

namespace
{

// Anchor points from Table 1: (VCs, frequency GHz).
constexpr double ANCHOR_VCS[3] = {2.0, 3.0, 6.0};
constexpr double ANCHOR_FREQ[3] = {2.25, 2.20, 2.07};

} // namespace

double
FrequencyModel::frequencyGHz(int vcs)
{
    if (vcs < 1)
        fatal("FrequencyModel: need at least 1 VC, got %d", vcs);

    // Interpolate cycle time (1/f) quadratically in x = log2(vcs)
    // through the three published anchors (Lagrange form).
    double x = std::log2(static_cast<double>(vcs));
    double xs[3];
    double ts[3];
    for (int i = 0; i < 3; ++i) {
        xs[i] = std::log2(ANCHOR_VCS[i]);
        ts[i] = 1.0 / ANCHOR_FREQ[i];
    }
    double t = 0.0;
    for (int i = 0; i < 3; ++i) {
        double term = ts[i];
        for (int j = 0; j < 3; ++j) {
            if (j == i)
                continue;
            term *= (x - xs[j]) / (xs[i] - xs[j]);
        }
        t += term;
    }
    return 1.0 / t;
}

double
FrequencyModel::networkFrequencyGHz(int max_vcs_in_network)
{
    return frequencyGHz(max_vcs_in_network);
}

} // namespace hnoc
