# Empty dependencies file for hnoc_sys.
# This may be replaced when dependencies are built.
