/**
 * @file
 * Router operating-frequency model (paper §3.4).
 *
 * The virtual-channel allocation (VA) stage dominates the router cycle
 * time, and its delay grows with the number of VCs being arbitrated.
 * The paper reports 2.20 GHz for the 3-VC baseline, +2 % (2.25 GHz) for
 * the 2-VC small router and -6 % (2.07 GHz) for the 6-VC big router.
 *
 * We model cycle time as a quadratic in log2(VCs) passing exactly
 * through the three published anchor points, which lets callers query
 * sensible frequencies for other VC counts during design-space
 * exploration.
 */

#ifndef HNOC_POWER_FREQUENCY_MODEL_HH
#define HNOC_POWER_FREQUENCY_MODEL_HH

#include "power/router_params.hh"

namespace hnoc
{

/** VA-stage-dominated router frequency model. */
class FrequencyModel
{
  public:
    /** @return operating frequency in GHz for a router with @p vcs VCs. */
    static double frequencyGHz(int vcs);

    /** @return operating frequency in GHz for @p params. */
    static double
    frequencyGHz(const RouterPhysParams &params)
    {
        return frequencyGHz(params.vcsPerPort);
    }

    /**
     * Worst-case network frequency: the minimum over all router VC
     * provisioning present in a network (paper §3.4 runs the whole
     * heterogeneous network at the big router's frequency).
     */
    static double networkFrequencyGHz(int max_vcs_in_network);
};

} // namespace hnoc

#endif // HNOC_POWER_FREQUENCY_MODEL_HH
