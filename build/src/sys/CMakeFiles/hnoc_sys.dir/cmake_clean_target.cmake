file(REMOVE_RECURSE
  "libhnoc_sys.a"
)
