/**
 * @file
 * Always-on flight recorder: a fixed-size ring buffer of recent
 * router-pipeline events (buffer writes, VA grants/denials, switch
 * grants, credit traffic, injections, ejections). Recording one event
 * is a masked store into a preallocated ring — cheap enough to leave
 * attached for a whole 10M-cycle run — and the ring keeps only the
 * most recent `capacity` events, so memory is bounded no matter how
 * long the run.
 *
 * On a watchdog trip, panic, or explicit request the recorder's
 * contents become the `flight_recorder` section of an
 * `hnoc-postmortem-v1` document (see Network::writePostmortem and
 * docs/OBSERVABILITY.md), answering "what was the pipeline doing in
 * the cycles before it stopped?" without rerunning.
 *
 * Hook sites in Router/Network test a recorder pointer exactly like
 * the MetricRegistry hooks and compile out under -DHNOC_TELEMETRY=OFF.
 */

#ifndef HNOC_TELEMETRY_FLIGHT_RECORDER_HH
#define HNOC_TELEMETRY_FLIGHT_RECORDER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hnoc
{

class JsonWriter;

/** Kinds of recorded pipeline events. */
enum class FrKind : std::uint8_t
{
    FlitIn,      ///< buffer write at (router, in port, vc)
    FlitOut,     ///< SA grant / switch traversal (router, out port, vc)
    VaGrant,     ///< VC allocation succeeded (router, in port, in vc)
    VaDeny,      ///< VC allocation failed (router, in port, in vc)
    CreditStall, ///< SA request blocked on zero credits (router, out port, vc)
    CreditIn,    ///< credit received for (router, out port, vc)
    CreditOut,   ///< credit returned upstream from (router, in port, vc)
    Inject,      ///< packet entered a source queue (router = src node)
    Eject,       ///< packet fully delivered (router = dst node)
};

/** @return the stable short name of @p k (postmortem schema). */
const char *frKindName(FrKind k);

/** Fixed-capacity ring of recent pipeline events. */
class FlightRecorder
{
  public:
    /** One recorded event; 24 bytes (20 payload + alignment pad). */
    struct Event
    {
        Cycle t = 0;
        std::uint32_t pkt = 0;     ///< truncated packet id (0 = n/a)
        std::int16_t router = -1;  ///< router id (node id for Inject/Eject)
        std::int8_t port = -1;
        std::int8_t vc = -1;
        std::uint8_t kind = 0;     ///< FrKind
        std::uint8_t head = 0;     ///< head flit? (FlitIn/FlitOut)
        std::uint8_t pad[2] = {0, 0};
    };

    /** @param capacity event slots; rounded up to a power of two. */
    explicit FlightRecorder(std::size_t capacity = 1u << 16);

    /** Hot-path hook: overwrite the oldest slot with a new event. */
    void
    record(FrKind k, Cycle t, int router, int port, int vc,
           std::uint64_t pkt = 0, bool head = false)
    {
        Event &e = ring_[static_cast<std::size_t>(next_) & mask_];
        ++next_;
        e.t = t;
        e.pkt = static_cast<std::uint32_t>(pkt);
        e.router = static_cast<std::int16_t>(router);
        e.port = static_cast<std::int8_t>(port);
        e.vc = static_cast<std::int8_t>(vc);
        e.kind = static_cast<std::uint8_t>(k);
        e.head = head ? 1 : 0;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Steady-state memory footprint: the ring plus the object. */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(sizeof(*this)) +
               static_cast<std::uint64_t>(ring_.capacity()) *
                   sizeof(Event);
    }

    /** Events recorded over the recorder's lifetime. */
    std::uint64_t totalRecorded() const { return next_; }

    /** Events currently held (≤ capacity). */
    std::size_t size() const;

    /** Events overwritten (lifetime − held). */
    std::uint64_t overwritten() const;

    /** Drop all recorded events. */
    void clear();

    /**
     * Copy out the held events oldest → newest. When @p last_cycles is
     * non-zero only events with t > newest.t − last_cycles are kept.
     */
    std::vector<Event> snapshot(Cycle last_cycles = 0) const;

    /**
     * Emit the `flight_recorder` postmortem section: capacity /
     * recorded / overwritten bookkeeping plus the event array
     * (oldest → newest, optionally clipped to the last @p last_cycles
     * cycles of history).
     */
    void writeJson(JsonWriter &w, Cycle last_cycles = 0) const;

  private:
    std::vector<Event> ring_;
    std::size_t mask_;
    std::uint64_t next_ = 0;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_FLIGHT_RECORDER_HH
