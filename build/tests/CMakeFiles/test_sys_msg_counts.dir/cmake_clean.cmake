file(REMOVE_RECURSE
  "CMakeFiles/test_sys_msg_counts.dir/sys/test_msg_counts.cc.o"
  "CMakeFiles/test_sys_msg_counts.dir/sys/test_msg_counts.cc.o.d"
  "test_sys_msg_counts"
  "test_sys_msg_counts.pdb"
  "test_sys_msg_counts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys_msg_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
