#include "sys/cmp_system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hnoc
{

CmpSystem::CmpSystem(const NetworkConfig &net_config,
                     const CmpConfig &config)
    : config_(config), net_(std::make_unique<Network>(net_config))
{
    net_->setClient(this);
    clkRatio_ = config_.coreClockGHz / net_->clockGHz();

    int nodes = net_->topology().numNodes();
    cores_.resize(static_cast<std::size_t>(nodes));
    banks_.resize(static_cast<std::size_t>(nodes));
    mcs_.resize(static_cast<std::size_t>(nodes));

    for (int n = 0; n < nodes; ++n) {
        Core &core = cores_[static_cast<std::size_t>(n)];
        core.l1 = std::make_unique<CacheArray>(
            config_.l1Bytes, config_.l1Ways, config_.blockBytes);

        bool large = true;
        if (config_.asymmetric) {
            large = std::find(config_.largeCoreTiles.begin(),
                              config_.largeCoreTiles.end(),
                              n) != config_.largeCoreTiles.end();
        }
        if (large) {
            core.issueRate = config_.issueWidth * clkRatio_;
            core.window = config_.windowInstrs;
            core.maxOutstanding = config_.maxOutstanding;
        } else {
            core.issueRate = config_.smallIssueWidth * clkRatio_;
            core.window = config_.smallWindowInstrs;
            core.maxOutstanding = config_.smallMaxOutstanding;
        }

        banks_[static_cast<std::size_t>(n)].l2 =
            std::make_unique<CacheArray>(config_.l2BankBytes,
                                         config_.l2Ways,
                                         config_.blockBytes);
    }

    mcTiles_ = mcTiles(config_.mcPlacement, net_config.radixX);
    for (NodeId t : mcTiles_)
        mcs_[static_cast<std::size_t>(t)].present = true;
}

CmpSystem::~CmpSystem() = default;

void
CmpSystem::assignWorkloadAll(const WorkloadProfile &profile)
{
    for (std::size_t n = 0; n < cores_.size(); ++n)
        assignWorkload(static_cast<NodeId>(n), profile);
}

void
CmpSystem::assignWorkload(NodeId core, const WorkloadProfile &profile)
{
    Core &c = cores_[static_cast<std::size_t>(core)];
    c.gen = std::make_unique<TraceGenerator>(profile, core, config_.seed,
                                             config_.blockBytes);
    c.idle = false;
}

void
CmpSystem::idleCore(NodeId core)
{
    Core &c = cores_[static_cast<std::size_t>(core)];
    c.gen.reset();
    c.idle = true;
}

void
CmpSystem::warmCaches(int memops_per_core)
{
    Addr victim = 0;
    CacheState vstate = CacheState::Invalid;
    for (std::size_t n = 0; n < cores_.size(); ++n) {
        Core &core = cores_[n];
        if (core.idle || !core.gen)
            continue;
        // A twin generator replays the same distribution without
        // consuming the timed trace stream.
        TraceGenerator twin(core.gen->profile(), static_cast<int>(n),
                            config_.seed ^ 0x5eedULL, config_.blockBytes);
        for (int i = 0; i < memops_per_core; ++i) {
            TraceRecord rec = twin.next();
            Addr block = core.l1->blockAddr(rec.addr);
            Bank &bank = banks_[static_cast<std::size_t>(
                homeTile(block))];
            bank.l2->insert(block, CacheState::Shared, victim, vstate);
            DirEntry &entry = bank.dir[block];
            if (rec.isWrite) {
                for (NodeId s : entry.sharers)
                    cores_[static_cast<std::size_t>(s)].l1->invalidate(
                        block);
                if (entry.exclusive && entry.owner != INVALID_NODE &&
                    entry.owner != static_cast<NodeId>(n))
                    cores_[static_cast<std::size_t>(entry.owner)]
                        .l1->invalidate(block);
                entry.sharers.clear();
                entry.exclusive = true;
                entry.owner = static_cast<NodeId>(n);
                core.l1->insert(block, CacheState::Modified, victim,
                                vstate);
            } else {
                if (entry.exclusive &&
                    entry.owner != static_cast<NodeId>(n)) {
                    if (entry.owner != INVALID_NODE) {
                        Core &oc = cores_[static_cast<std::size_t>(
                            entry.owner)];
                        if (oc.l1->lookup(block) != CacheState::Invalid)
                            oc.l1->setState(block, CacheState::Shared);
                        entry.sharers.push_back(entry.owner);
                    }
                    entry.exclusive = false;
                    entry.owner = INVALID_NODE;
                }
                if (core.l1->lookup(block) == CacheState::Invalid) {
                    bool first = entry.sharers.empty() &&
                                 !entry.exclusive;
                    if (first) {
                        entry.exclusive = true;
                        entry.owner = static_cast<NodeId>(n);
                        core.l1->insert(block, CacheState::Exclusive,
                                        victim, vstate);
                    } else {
                        if (std::find(entry.sharers.begin(),
                                      entry.sharers.end(),
                                      static_cast<NodeId>(n)) ==
                            entry.sharers.end())
                            entry.sharers.push_back(
                                static_cast<NodeId>(n));
                        core.l1->insert(block, CacheState::Shared,
                                        victim, vstate);
                    }
                } else {
                    core.l1->touch(block);
                }
            }
        }
    }
}

Cycle
CmpSystem::coreToNet(int core_cycles) const
{
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(core_cycles) / clkRatio_));
}

NodeId
CmpSystem::homeTile(Addr block) const
{
    Addr blk = block / static_cast<Addr>(config_.blockBytes);
    // Fold in high bits so private regions spread over all banks.
    Addr mixed = blk ^ (blk >> 12) ^ (blk >> 28);
    return static_cast<NodeId>(
        mixed % static_cast<Addr>(cores_.size()));
}

Msg *
CmpSystem::allocMsg(const Msg &proto)
{
    Msg *m;
    if (!msgFree_.empty()) {
        m = msgFree_.back();
        msgFree_.pop_back();
    } else {
        msgArena_.push_back(std::make_unique<Msg>());
        m = msgArena_.back().get();
    }
    *m = proto;
    return m;
}

void
CmpSystem::freeMsg(Msg *msg)
{
    msgFree_.push_back(msg);
}

void
CmpSystem::run(Cycle net_cycles)
{
    net_->run(net_cycles);
}

void
CmpSystem::resetStats()
{
    net_->resetMeasurement();
    netStats_.reset();
    roundTrip_.reset();
    statsStart_ = net_->now();
    packetsSent_ = 0;
    for (Core &core : cores_)
        core.retiredAtReset = core.retired;
}

double
CmpSystem::ipc(NodeId core) const
{
    const Core &c = cores_[static_cast<std::size_t>(core)];
    Cycle net_cycles = net_->now() - statsStart_;
    if (net_cycles == 0)
        return 0.0;
    double core_cycles = static_cast<double>(net_cycles) * clkRatio_;
    return static_cast<double>(c.retired - c.retiredAtReset) / core_cycles;
}

double
CmpSystem::avgIpc() const
{
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (cores_[i].idle)
            continue;
        sum += ipc(static_cast<NodeId>(i));
        ++n;
    }
    return n ? sum / n : 0.0;
}

std::uint64_t
CmpSystem::l1Misses() const
{
    std::uint64_t n = 0;
    for (const Core &c : cores_)
        n += c.l1Misses;
    return n;
}

// ----------------------------------------------------------- stepping --

void
CmpSystem::preCycle(Network &, Cycle now)
{
    // 1. Deliver due controller events.
    while (!events_.empty() && events_.begin()->first <= now) {
        Event ev = events_.begin()->second;
        events_.erase(events_.begin());
        if (ev.isSend)
            sendMsg(ev.src, ev.tile, ev.msg, now);
        else
            handleMsg(ev.tile, ev.msg, now);
    }

    // 2. Memory-controller service: start DRAM accesses.
    for (NodeId t : mcTiles_) {
        MemController &mc = mcs_[static_cast<std::size_t>(t)];
        while (!mc.queue.empty() && now >= mc.nextFree) {
            Msg req = mc.queue.front();
            mc.queue.pop_front();
            mc.nextFree = now + static_cast<Cycle>(
                config_.mcServiceInterval);
            // DRAM access completes after the access latency; then the
            // data packet is sent back to the home bank.
            Msg resp;
            resp.type = MsgType::MemData;
            resp.block = req.block;
            resp.sender = t;
            resp.requester = req.requester; // home tile
            Event ev;
            ev.at = now + coreToNet(config_.dramLatencyCoreCycles);
            ev.tile = req.requester;
            ev.msg = resp;
            ev.isSend = true;
            ev.src = t;
            events_.emplace(ev.at, ev);
        }
    }

    // 3. Cores issue instructions.
    for (std::size_t n = 0; n < cores_.size(); ++n) {
        Core &core = cores_[n];
        if (!core.idle)
            stepCore(static_cast<NodeId>(n), core, now);
    }
}

void
CmpSystem::stepCore(NodeId id, Core &core, Cycle now)
{
    core.budget += core.issueRate;
    // A stalled core cannot bank issue slots beyond one cycle's worth.
    core.budget = std::min(core.budget, core.issueRate + 3.0);

    while (core.budget >= 1.0) {
        // Reorder-window stall: the oldest outstanding load blocks
        // retirement once it is `window` instructions old.
        if (!core.loads.empty() &&
            core.retired - core.loads.front().atInstr >=
                static_cast<std::uint64_t>(core.window))
            break;

        if (!core.hasPending) {
            core.pending = core.gen->next();
            core.nonMemLeft = core.pending.nonMemInstrs;
            core.hasPending = true;
        }
        if (core.nonMemLeft > 0) {
            --core.nonMemLeft;
            ++core.retired;
            core.budget -= 1.0;
            continue;
        }
        if (!issueMemOp(id, core, core.pending, now))
            break; // structural stall (MSHRs / conflicting miss)
        ++core.retired;
        core.budget -= 1.0;
        core.hasPending = false;
    }
}

bool
CmpSystem::issueMemOp(NodeId id, Core &core, const TraceRecord &rec,
                      Cycle now)
{
    Addr block = core.l1->blockAddr(rec.addr);

    auto mshr_it = core.mshrs.find(block);
    if (mshr_it != core.mshrs.end()) {
        // Miss already outstanding for this block.
        if (!rec.isWrite) {
            if (static_cast<int>(core.loads.size()) >=
                core.maxOutstanding)
                return false;
            core.loads.push_back({core.nextReqId++, block, core.retired});
            return true; // coalesced load
        }
        if (mshr_it->second.isWrite)
            return true; // store coalesces into pending GetX
        return false;    // write after pending read: stall
    }

    CacheState state = core.l1->lookup(block);
    if (!rec.isWrite) {
        if (state != CacheState::Invalid) {
            core.l1->touch(block);
            ++core.l1Hits;
            return true;
        }
    } else {
        if (state == CacheState::Modified) {
            core.l1->touch(block);
            ++core.l1Hits;
            return true;
        }
        if (state == CacheState::Exclusive) {
            core.l1->setState(block, CacheState::Modified);
            ++core.l1Hits;
            return true;
        }
        // Shared: upgrade miss. Invalid: plain write miss.
    }

    // L1 miss: allocate an MSHR and send the request to the home bank.
    if (static_cast<int>(core.mshrs.size()) >= core.maxOutstanding)
        return false;
    if (!rec.isWrite &&
        static_cast<int>(core.loads.size()) >= core.maxOutstanding)
        return false;

    Mshr mshr;
    mshr.isWrite = rec.isWrite;
    mshr.issuedAt = now;
    core.mshrs.emplace(block, mshr);
    ++core.l1Misses;

    if (!rec.isWrite)
        core.loads.push_back({core.nextReqId++, block, core.retired});

    Msg msg;
    msg.type = rec.isWrite ? MsgType::GetX : MsgType::GetS;
    msg.block = block;
    msg.sender = id;
    msg.requester = id;
    sendMsg(id, homeTile(block), msg, now);
    return true;
}

void
CmpSystem::installLine(NodeId id, Core &core, Addr block, CacheState state,
                       Cycle now)
{
    Addr victim = 0;
    CacheState victim_state = CacheState::Invalid;
    if (core.l1->insert(block, state, victim, victim_state)) {
        if (victim_state == CacheState::Modified) {
            core.wbBuffer.insert(victim);
            Msg wb;
            wb.type = MsgType::PutM;
            wb.block = victim;
            wb.sender = id;
            wb.requester = id;
            sendMsg(id, homeTile(victim), wb, now);
        }
        // Exclusive/Shared victims are dropped silently; the directory
        // tolerates stale sharers/owners (see dirStartTxn).
    }
}

void
CmpSystem::completeLoads(NodeId id, Core &core, Addr block, Cycle now)
{
    (void)id;
    for (auto it = core.loads.begin(); it != core.loads.end();) {
        if (it->block == block)
            it = core.loads.erase(it);
        else
            ++it;
    }
    auto mshr_it = core.mshrs.find(block);
    if (mshr_it != core.mshrs.end()) {
        roundTrip_.add(static_cast<double>(now - mshr_it->second.issuedAt) *
                       clkRatio_);
    }
}

// ----------------------------------------------------------- messaging --

void
CmpSystem::sendMsg(NodeId src, NodeId dst, const Msg &msg, Cycle now)
{
    ++msgCounts_[static_cast<std::size_t>(msg.type)];
    if (src == dst) {
        // Same-tile access: no network traversal; charge the bank
        // access latency.
        Event ev;
        ev.at = now + coreToNet(config_.l2LatencyCoreCycles);
        ev.tile = dst;
        ev.msg = msg;
        events_.emplace(ev.at, ev);
        return;
    }
    int flits = carriesData(msg.type) ? net_->dataPacketFlits() : 1;
    Msg *m = allocMsg(msg);
    net_->enqueuePacket(src, dst, flits, 0, m);
    ++packetsSent_;
}

void
CmpSystem::onPacketDelivered(Network &net, Packet &pkt, Cycle now)
{
    Msg *m = static_cast<Msg *>(pkt.context);
    if (!m)
        panic("CmpSystem: packet without message context");

    // Network latency accounting (Fig 11).
    double ns = net.nsPerCycle();
    auto total = static_cast<double>(pkt.ejectedAt - pkt.createdAt);
    auto queuing = static_cast<double>(pkt.queuingLatency());
    auto transfer = static_cast<double>(
        net.minTransferCycles(pkt.src, pkt.dst, pkt.numFlits));
    double blocking = std::max(0.0, total - queuing - transfer);
    netStats_.totalNs.add(total * ns);
    netStats_.queuingNs.add(queuing * ns);
    netStats_.transferNs.add(transfer * ns);
    netStats_.blockingNs.add(blocking * ns);

    // Charge the receiving controller's access latency, then handle.
    Cycle delay;
    switch (m->type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutM:
      case MsgType::InvAck:
      case MsgType::OwnerWb:
        delay = coreToNet(config_.l2LatencyCoreCycles);
        break;
      case MsgType::MemRead:
      case MsgType::MemWrite:
      case MsgType::MemData:
        delay = 1;
        break;
      default:
        delay = coreToNet(config_.l1LatencyCoreCycles);
        break;
    }
    Event ev;
    ev.at = now + delay;
    ev.tile = pkt.dst;
    ev.msg = *m;
    events_.emplace(ev.at, ev);
    freeMsg(m);
}

void
CmpSystem::handleMsg(NodeId tile, const Msg &msg, Cycle now)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutM:
      case MsgType::InvAck:
      case MsgType::OwnerWb:
      case MsgType::MemData:
        dirHandle(tile, msg, now);
        break;
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
      case MsgType::UpgradeAck:
      case MsgType::Inv:
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
      case MsgType::WbAck:
        coreHandle(tile, msg, now);
        break;
      case MsgType::MemRead:
      case MsgType::MemWrite:
        mcHandle(tile, msg, now);
        break;
    }
}

// --------------------------------------------------------------- cores --

void
CmpSystem::coreHandle(NodeId tile, const Msg &msg, Cycle now)
{
    Core &core = cores_[static_cast<std::size_t>(tile)];
    Addr block = msg.block;

    switch (msg.type) {
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
      case MsgType::UpgradeAck: {
        CacheState state = msg.type == MsgType::DataS
                               ? CacheState::Shared
                               : (msg.type == MsgType::DataE
                                      ? CacheState::Exclusive
                                      : CacheState::Modified);
        installLine(tile, core, block, state, now);
        completeLoads(tile, core, block, now);
        auto it = core.mshrs.find(block);
        if (it != core.mshrs.end()) {
            if (it->second.invalidatedWhilePending) {
                // The data is used once (the miss that requested it)
                // and the line is dropped to respect the later
                // invalidation that overtook it in the network.
                core.l1->invalidate(block);
            }
            core.mshrs.erase(it);
        }
        break;
      }
      case MsgType::Inv: {
        auto it = core.mshrs.find(block);
        if (it != core.mshrs.end())
            it->second.invalidatedWhilePending = true;
        else
            core.l1->invalidate(block);
        Msg ack;
        ack.type = MsgType::InvAck;
        ack.block = block;
        ack.sender = tile;
        ack.requester = msg.requester;
        sendMsg(tile, msg.sender, ack, now);
        break;
      }
      case MsgType::FwdGetS: {
        // Demote to Shared and return the line to the home bank.
        CacheState st = core.l1->lookup(block);
        if (st == CacheState::Modified || st == CacheState::Exclusive)
            core.l1->setState(block, CacheState::Shared);
        Msg wb;
        wb.type = MsgType::OwnerWb;
        wb.block = block;
        wb.sender = tile;
        wb.requester = msg.requester;
        sendMsg(tile, msg.sender, wb, now);
        break;
      }
      case MsgType::FwdGetX: {
        core.l1->invalidate(block);
        Msg wb;
        wb.type = MsgType::OwnerWb;
        wb.block = block;
        wb.sender = tile;
        wb.requester = msg.requester;
        sendMsg(tile, msg.sender, wb, now);
        break;
      }
      case MsgType::WbAck:
        core.wbBuffer.erase(block);
        break;
      default:
        panic("coreHandle: unexpected message type %d",
              static_cast<int>(msg.type));
    }
}

// ----------------------------------------------------------- directory --

void
CmpSystem::dirHandle(NodeId tile, const Msg &msg, Cycle now)
{
    Bank &bank = banks_[static_cast<std::size_t>(tile)];
    Addr block = msg.block;

    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutM:
        dirStartTxn(tile, msg, now);
        break;
      case MsgType::InvAck: {
        auto it = bank.busy.find(block);
        if (it == bank.busy.end())
            break; // ack for an already-satisfied (stale-sharer) inv
        if (--it->second.pendingInvAcks <= 0)
            dirRespond(tile, block, it->second, now);
        break;
      }
      case MsgType::OwnerWb: {
        auto it = bank.busy.find(block);
        // Fill the L2 with the owner's (possibly dirty) line.
        Addr victim = 0;
        CacheState vstate = CacheState::Invalid;
        if (bank.l2->insert(block, CacheState::Modified, victim, vstate) &&
            vstate == CacheState::Modified) {
            Msg mw;
            mw.type = MsgType::MemWrite;
            mw.block = victim;
            mw.sender = tile;
            mw.requester = tile;
            sendMsg(tile, mcForBlock(victim, config_.blockBytes, mcTiles_),
                    mw, now);
        }
        if (it != bank.busy.end()) {
            it->second.waitingOwner = false;
            dirRespond(tile, block, it->second, now);
        }
        break;
      }
      case MsgType::MemData: {
        Addr victim = 0;
        CacheState vstate = CacheState::Invalid;
        if (bank.l2->insert(block, CacheState::Shared, victim, vstate) &&
            vstate == CacheState::Modified) {
            Msg mw;
            mw.type = MsgType::MemWrite;
            mw.block = victim;
            mw.sender = tile;
            mw.requester = tile;
            sendMsg(tile, mcForBlock(victim, config_.blockBytes, mcTiles_),
                    mw, now);
        }
        auto it = bank.busy.find(block);
        if (it != bank.busy.end()) {
            it->second.waitingMem = false;
            dirRespond(tile, block, it->second, now);
        }
        break;
      }
      default:
        panic("dirHandle: unexpected message type %d",
              static_cast<int>(msg.type));
    }
}

void
CmpSystem::dirStartTxn(NodeId tile, const Msg &msg, Cycle now)
{
    Bank &bank = banks_[static_cast<std::size_t>(tile)];
    Addr block = msg.block;

    auto busy_it = bank.busy.find(block);
    if (busy_it != bank.busy.end()) {
        busy_it->second.deferred.push_back(msg);
        return;
    }

    if (msg.type == MsgType::PutM) {
        // Writebacks complete immediately (no transaction).
        auto dir_it = bank.dir.find(block);
        if (dir_it != bank.dir.end() && dir_it->second.exclusive &&
            dir_it->second.owner == msg.sender) {
            Addr victim = 0;
            CacheState vstate = CacheState::Invalid;
            if (bank.l2->insert(block, CacheState::Modified, victim,
                                vstate) &&
                vstate == CacheState::Modified) {
                Msg mw;
                mw.type = MsgType::MemWrite;
                mw.block = victim;
                mw.sender = tile;
                mw.requester = tile;
                sendMsg(tile,
                        mcForBlock(victim, config_.blockBytes, mcTiles_),
                        mw, now);
            }
            bank.dir.erase(dir_it);
        }
        // Stale PutM (owner changed since): data is already current.
        Msg ack;
        ack.type = MsgType::WbAck;
        ack.block = block;
        ack.sender = tile;
        ack.requester = msg.sender;
        sendMsg(tile, msg.sender, ack, now);
        return;
    }

    Txn txn;
    txn.req = msg.type;
    txn.requester = msg.sender;
    txn.reqId = msg.reqId;

    DirEntry &entry = bank.dir[block]; // creates Uncached entry if new

    // A silently-dropped Exclusive line can leave the requester itself
    // registered as owner: treat as unowned.
    if (entry.exclusive && entry.owner == txn.requester) {
        entry.exclusive = false;
        entry.owner = INVALID_NODE;
    }

    if (msg.type == MsgType::GetS) {
        if (entry.exclusive) {
            txn.waitingOwner = true;
            Msg fwd;
            fwd.type = MsgType::FwdGetS;
            fwd.block = block;
            fwd.sender = tile;
            fwd.requester = txn.requester;
            sendMsg(tile, entry.owner, fwd, now);
        } else if (bank.l2->lookup(block) == CacheState::Invalid) {
            txn.waitingMem = true;
            Msg mr;
            mr.type = MsgType::MemRead;
            mr.block = block;
            mr.sender = tile;
            mr.requester = tile;
            sendMsg(tile, mcForBlock(block, config_.blockBytes, mcTiles_),
                    mr, now);
        } else {
            bank.l2->touch(block);
        }
    } else { // GetX
        txn.upgrade =
            std::find(entry.sharers.begin(), entry.sharers.end(),
                      txn.requester) != entry.sharers.end();
        if (entry.exclusive) {
            txn.waitingOwner = true;
            Msg fwd;
            fwd.type = MsgType::FwdGetX;
            fwd.block = block;
            fwd.sender = tile;
            fwd.requester = txn.requester;
            sendMsg(tile, entry.owner, fwd, now);
        } else {
            for (NodeId s : entry.sharers) {
                if (s == txn.requester)
                    continue;
                ++txn.pendingInvAcks;
                Msg inv;
                inv.type = MsgType::Inv;
                inv.block = block;
                inv.sender = tile;
                inv.requester = txn.requester;
                sendMsg(tile, s, inv, now);
            }
            if (!txn.upgrade &&
                bank.l2->lookup(block) == CacheState::Invalid) {
                txn.waitingMem = true;
                Msg mr;
                mr.type = MsgType::MemRead;
                mr.block = block;
                mr.sender = tile;
                mr.requester = tile;
                sendMsg(tile,
                        mcForBlock(block, config_.blockBytes, mcTiles_),
                        mr, now);
            }
        }
    }

    auto [it, inserted] = bank.busy.emplace(block, std::move(txn));
    (void)inserted;
    dirRespond(tile, block, it->second, now);
}

void
CmpSystem::dirRespond(NodeId tile, Addr block, Txn &txn, Cycle now)
{
    if (txn.waitingMem || txn.waitingOwner || txn.pendingInvAcks > 0)
        return;

    Bank &bank = banks_[static_cast<std::size_t>(tile)];
    DirEntry &entry = bank.dir[block];

    Msg resp;
    resp.block = block;
    resp.sender = tile;
    resp.requester = txn.requester;

    if (txn.req == MsgType::GetS) {
        bool was_owned = entry.exclusive;
        if (entry.sharers.empty() && !was_owned) {
            // First reader gets Exclusive (the E of MESI).
            resp.type = MsgType::DataE;
            entry.exclusive = true;
            entry.owner = txn.requester;
        } else {
            resp.type = MsgType::DataS;
            if (was_owned) {
                // Owner was demoted by FwdGetS.
                entry.sharers.push_back(entry.owner);
                entry.exclusive = false;
                entry.owner = INVALID_NODE;
            }
            if (std::find(entry.sharers.begin(), entry.sharers.end(),
                          txn.requester) == entry.sharers.end())
                entry.sharers.push_back(txn.requester);
        }
    } else { // GetX
        resp.type = txn.upgrade ? MsgType::UpgradeAck : MsgType::DataM;
        entry.sharers.clear();
        entry.exclusive = true;
        entry.owner = txn.requester;
    }

    sendMsg(tile, txn.requester, resp, now);
    dirFinishTxn(tile, block, now);
}

void
CmpSystem::dirFinishTxn(NodeId tile, Addr block, Cycle now)
{
    Bank &bank = banks_[static_cast<std::size_t>(tile)];
    auto it = bank.busy.find(block);
    if (it == bank.busy.end())
        return;
    std::deque<Msg> deferred = std::move(it->second.deferred);
    bank.busy.erase(it);
    // Replay deferred requests in arrival order; each may re-block.
    for (const Msg &m : deferred)
        dirStartTxn(tile, m, now);
}

// -------------------------------------------------------------- memory --

void
CmpSystem::mcHandle(NodeId tile, const Msg &msg, Cycle now)
{
    (void)now;
    MemController &mc = mcs_[static_cast<std::size_t>(tile)];
    if (!mc.present)
        panic("memory message at tile %d without a controller", tile);
    if (msg.type == MsgType::MemRead)
        mc.queue.push_back(msg);
    // MemWrite is absorbed (write drains modeled as free).
}

MemoryAudit
CmpSystem::memoryAudit() const
{
    MemoryAudit a = net_->memoryAudit();

    std::uint64_t b = 0;
    std::uint64_t n = 0;
    for (const Core &c : cores_) {
        if (c.l1) {
            b += c.l1->footprintBytes();
            ++n;
        }
    }
    a.add("l1_caches", b, n);

    b = 0;
    n = 0;
    for (const Bank &bank : banks_) {
        if (bank.l2) {
            b += bank.l2->footprintBytes();
            ++n;
        }
    }
    a.add("l2_banks", b, n);

    // Full-map MESI directory: per tracked line one hash node (key +
    // DirEntry + bucket links) plus the sharers vector, whose
    // capacity grows toward O(tiles) per widely shared line — the
    // scaling blocker this audit exists to measure. Hash-node
    // overhead is estimated at two pointers per node (libstdc++
    // layout); bucket arrays are counted exactly.
    std::uint64_t entries = 0;
    b = 0;
    for (const Bank &bank : banks_) {
        b += bank.dir.bucket_count() * sizeof(void *);
        for (const auto &kv : bank.dir) {
            b += sizeof(kv) + 2 * sizeof(void *);
            b += kv.second.sharers.capacity() * sizeof(NodeId);
            ++entries;
        }
    }
    a.add("mesi_directory", b, entries);

    b = 0;
    std::uint64_t txns = 0;
    for (const Bank &bank : banks_) {
        b += bank.busy.bucket_count() * sizeof(void *);
        for (const auto &kv : bank.busy) {
            b += sizeof(kv) + 2 * sizeof(void *);
            b += kv.second.deferred.size() * sizeof(Msg);
            ++txns;
        }
    }
    a.add("directory_txns", b, txns);

    a.add("msg_arena",
          msgArena_.size() * (sizeof(std::unique_ptr<Msg>) + sizeof(Msg)) +
              msgFree_.capacity() * sizeof(Msg *),
          msgArena_.size());
    return a;
}

} // namespace hnoc
