/**
 * @file
 * perf-smoke CTest target: one short load sweep through the parallel
 * experiment engine, checked bit-identical against the serial path.
 * Small enough to run under ThreadSanitizer (-DHNOC_TSAN=ON), where it
 * exercises the JobPool queue, the future hand-off and the shared-state
 * audit of the sim harness under real contention:
 *
 *   ctest -L perf-smoke --output-on-failure
 */

#include <cstdio>
#include <cstring>

#include "common/job_pool.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

using namespace hnoc;

int
main()
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    SimPointOptions opts;
    opts.warmupCycles = 500;
    opts.measureCycles = 1200;
    opts.drainCycles = 2500;
    opts.seed = 5;
    const std::vector<double> rates = {0.01, 0.02, 0.03, 0.04};

    JobPool pool; // HNOC_THREADS-sized (the CTest entry sets it to 4)
    std::vector<SimPointResult> par =
        sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts, &pool);
    std::vector<SimPointResult> ser =
        sweepLoadSerial(cfg, TrafficPattern::UniformRandom, rates, opts);

    if (par.size() != rates.size() || ser.size() != rates.size()) {
        std::fprintf(stderr, "perf_smoke: wrong point count\n");
        return 1;
    }
    for (std::size_t i = 0; i < par.size(); ++i) {
        if (par[i].avgLatencyNs != ser[i].avgLatencyNs ||
            par[i].acceptedRate != ser[i].acceptedRate ||
            par[i].trackedDelivered != ser[i].trackedDelivered) {
            std::fprintf(stderr,
                         "perf_smoke: parallel/serial mismatch at "
                         "point %zu\n", i);
            return 1;
        }
        if (par[i].avgLatencyNs <= 0.0) {
            std::fprintf(stderr,
                         "perf_smoke: implausible latency at point "
                         "%zu\n", i);
            return 1;
        }
    }
    std::printf("perf_smoke: %zu points, %d threads, parallel == "
                "serial\n", par.size(), pool.threadCount());
    return 0;
}
