#include "common/job_pool.hh"

#include <cstdlib>

namespace hnoc
{

int
JobPool::defaultThreadCount()
{
    if (const char *env = std::getenv("HNOC_THREADS")) {
        int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

JobPool &
JobPool::shared()
{
    static JobPool pool;
    return pool;
}

JobPool::JobPool(int threads)
{
    int n = threads >= 1 ? threads : defaultThreadCount();
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
JobPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job(); // packaged_task captures any exception in the future
    }
}

} // namespace hnoc
