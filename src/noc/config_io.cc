#include "noc/config_io.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace hnoc
{

const char *
topologyName(TopologyType t)
{
    switch (t) {
      case TopologyType::Mesh:
        return "mesh";
      case TopologyType::Torus:
        return "torus";
      case TopologyType::ConcentratedMesh:
        return "cmesh";
      case TopologyType::FlattenedButterfly:
        return "flatfly";
    }
    return "mesh";
}

namespace
{

TopologyType
topologyFromName(const std::string &s)
{
    if (s == "mesh")
        return TopologyType::Mesh;
    if (s == "torus")
        return TopologyType::Torus;
    if (s == "cmesh")
        return TopologyType::ConcentratedMesh;
    if (s == "flatfly")
        return TopologyType::FlattenedButterfly;
    fatal("config: unknown topology '%s'", s.c_str());
}

const char *
linkModeName(LinkWidthMode m)
{
    switch (m) {
      case LinkWidthMode::Uniform:
        return "uniform";
      case LinkWidthMode::EndpointMax:
        return "endpoint-max";
      case LinkWidthMode::CentralBand:
        return "central-band";
    }
    return "uniform";
}

LinkWidthMode
linkModeFromName(const std::string &s)
{
    if (s == "uniform")
        return LinkWidthMode::Uniform;
    if (s == "endpoint-max")
        return LinkWidthMode::EndpointMax;
    if (s == "central-band")
        return LinkWidthMode::CentralBand;
    fatal("config: unknown link mode '%s'", s.c_str());
}

const char *
routingName(RoutingMode m)
{
    switch (m) {
      case RoutingMode::XY:
        return "xy";
      case RoutingMode::YX:
        return "yx";
      case RoutingMode::O1Turn:
        return "o1turn";
      case RoutingMode::TableXY:
        return "table-xy";
    }
    return "xy";
}

RoutingMode
routingFromName(const std::string &s)
{
    if (s == "xy")
        return RoutingMode::XY;
    if (s == "yx")
        return RoutingMode::YX;
    if (s == "o1turn")
        return RoutingMode::O1Turn;
    if (s == "table-xy")
        return RoutingMode::TableXY;
    fatal("config: unknown routing mode '%s'", s.c_str());
}

template <typename T>
std::string
joinInts(const std::vector<T> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    return out;
}

std::vector<int>
splitInts(const std::string &s)
{
    std::vector<int> out;
    std::stringstream in(s);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(std::stoi(item));
    return out;
}

} // namespace

std::string
configToString(const NetworkConfig &c)
{
    std::ostringstream out;
    out << "name=" << c.name << '\n';
    out << "topology=" << topologyName(c.topology) << '\n';
    out << "radix_x=" << c.radixX << '\n';
    out << "radix_y=" << c.radixY << '\n';
    out << "concentration=" << c.concentration << '\n';
    out << "flit_bits=" << c.flitWidthBits << '\n';
    out << "data_packet_bits=" << c.dataPacketBits << '\n';
    out << "buffer_depth=" << c.bufferDepth << '\n';
    out << "default_vcs=" << c.defaultVcs << '\n';
    out << "default_width_bits=" << c.defaultWidthBits << '\n';
    if (!c.routerVcs.empty())
        out << "router_vcs=" << joinInts(c.routerVcs) << '\n';
    if (!c.routerWidthBits.empty())
        out << "router_width_bits=" << joinInts(c.routerWidthBits)
            << '\n';
    out << "link_mode=" << linkModeName(c.linkWidthMode) << '\n';
    out << "uniform_link_bits=" << c.uniformLinkBits << '\n';
    out << "band_wide_links=" << c.bandWideLinks << '\n';
    out << "routing=" << routingName(c.routing) << '\n';
    if (!c.tableRoutedNodes.empty())
        out << "table_nodes=" << joinInts(c.tableRoutedNodes) << '\n';
    out << "escape_threshold=" << c.escapeThreshold << '\n';
    out << "intra_packet_pairing=" << (c.intraPacketPairing ? 1 : 0)
        << '\n';
    out << "sa_policy="
        << (c.saPolicy == SaPolicy::OldestFirst ? "oldest-first"
                                                : "round-robin")
        << '\n';
    out << "always_step=" << (c.alwaysStep ? 1 : 0) << '\n';
    out << "block_tiles=" << c.blockTiles << '\n';
    out << "pipeline_stages=" << c.pipelineStages << '\n';
    out << "link_latency=" << c.linkLatency << '\n';
    out << "clock_ghz=" << c.clockGHz << '\n';
    return out.str();
}

NetworkConfig
configFromString(const std::string &text)
{
    NetworkConfig c;
    std::stringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config: malformed line '%s'", line.c_str());
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);

        if (key == "name")
            c.name = val;
        else if (key == "topology")
            c.topology = topologyFromName(val);
        else if (key == "radix_x")
            c.radixX = std::stoi(val);
        else if (key == "radix_y")
            c.radixY = std::stoi(val);
        else if (key == "concentration")
            c.concentration = std::stoi(val);
        else if (key == "flit_bits")
            c.flitWidthBits = std::stoi(val);
        else if (key == "data_packet_bits")
            c.dataPacketBits = std::stoi(val);
        else if (key == "buffer_depth")
            c.bufferDepth = std::stoi(val);
        else if (key == "default_vcs")
            c.defaultVcs = std::stoi(val);
        else if (key == "default_width_bits")
            c.defaultWidthBits = std::stoi(val);
        else if (key == "router_vcs")
            c.routerVcs = splitInts(val);
        else if (key == "router_width_bits")
            c.routerWidthBits = splitInts(val);
        else if (key == "link_mode")
            c.linkWidthMode = linkModeFromName(val);
        else if (key == "uniform_link_bits")
            c.uniformLinkBits = std::stoi(val);
        else if (key == "band_wide_links")
            c.bandWideLinks = std::stoi(val);
        else if (key == "routing")
            c.routing = routingFromName(val);
        else if (key == "table_nodes") {
            c.tableRoutedNodes.clear();
            for (int n : splitInts(val))
                c.tableRoutedNodes.push_back(n);
        } else if (key == "escape_threshold")
            c.escapeThreshold = std::stoi(val);
        else if (key == "intra_packet_pairing")
            c.intraPacketPairing = std::stoi(val) != 0;
        else if (key == "sa_policy")
            c.saPolicy = val == "oldest-first" ? SaPolicy::OldestFirst
                                               : SaPolicy::RoundRobin;
        else if (key == "always_step")
            c.alwaysStep = std::stoi(val) != 0;
        else if (key == "block_tiles")
            c.blockTiles = std::stoi(val);
        else if (key == "pipeline_stages")
            c.pipelineStages = std::stoi(val);
        else if (key == "link_latency")
            c.linkLatency = std::stoi(val);
        else if (key == "clock_ghz")
            c.clockGHz = std::stod(val);
        else
            fatal("config: unknown key '%s'", key.c_str());
    }
    return c;
}

std::string
simOptionsToString(const SimPointOptions &o)
{
    std::ostringstream out;
    out.precision(17); // exact double round-trip
    out << "injection_rate=" << o.injectionRate << '\n';
    out << "warmup_cycles=" << o.warmupCycles << '\n';
    out << "measure_cycles=" << o.measureCycles << '\n';
    out << "drain_cycles=" << o.drainCycles << '\n';
    out << "seed=" << o.seed << '\n';
    out << "control_fraction=" << o.controlFraction << '\n';
    out << "collect_metrics=" << (o.collectMetrics ? 1 : 0) << '\n';
    out << "telemetry_epoch=" << o.telemetryEpoch << '\n';
    out << "control_mode=" << simControlModeName(o.control.mode)
        << '\n';
    out << "min_warmup_cycles=" << o.control.minWarmupCycles << '\n';
    out << "warmup_epochs=" << o.control.warmupEpochs << '\n';
    out << "warmup_tolerance=" << o.control.warmupTolerance << '\n';
    out << "ci_target=" << o.control.ciTarget << '\n';
    out << "ci_confidence=" << o.control.ciConfidence << '\n';
    out << "min_batches=" << o.control.minBatches << '\n';
    out << "epochs_per_batch=" << o.control.epochsPerBatch << '\n';
    out << "min_measure_cycles=" << o.control.minMeasureCycles << '\n';
    out << "sat_epochs=" << o.control.satEpochs << '\n';
    out << "sat_depth_per_node=" << o.control.satDepthPerNode << '\n';
    out << "sat_growth_per_node=" << o.control.satGrowthPerNode
        << '\n';
    return out.str();
}

SimPointOptions
simOptionsFromString(const std::string &text)
{
    SimPointOptions o;
    std::stringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("sim options: malformed line '%s'", line.c_str());
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);

        if (key == "injection_rate")
            o.injectionRate = std::stod(val);
        else if (key == "warmup_cycles")
            o.warmupCycles = std::stoull(val);
        else if (key == "measure_cycles")
            o.measureCycles = std::stoull(val);
        else if (key == "drain_cycles")
            o.drainCycles = std::stoull(val);
        else if (key == "seed")
            o.seed = std::stoull(val);
        else if (key == "control_fraction")
            o.controlFraction = std::stod(val);
        else if (key == "collect_metrics")
            o.collectMetrics = std::stoi(val) != 0;
        else if (key == "telemetry_epoch")
            o.telemetryEpoch = std::stoull(val);
        else if (key == "control_mode")
            o.control.mode = simControlModeFromName(val);
        else if (key == "min_warmup_cycles")
            o.control.minWarmupCycles = std::stoull(val);
        else if (key == "warmup_epochs")
            o.control.warmupEpochs = std::stoi(val);
        else if (key == "warmup_tolerance")
            o.control.warmupTolerance = std::stod(val);
        else if (key == "ci_target")
            o.control.ciTarget = std::stod(val);
        else if (key == "ci_confidence")
            o.control.ciConfidence = std::stod(val);
        else if (key == "min_batches")
            o.control.minBatches = std::stoi(val);
        else if (key == "epochs_per_batch")
            o.control.epochsPerBatch = std::stoi(val);
        else if (key == "min_measure_cycles")
            o.control.minMeasureCycles = std::stoull(val);
        else if (key == "sat_epochs")
            o.control.satEpochs = std::stoi(val);
        else if (key == "sat_depth_per_node")
            o.control.satDepthPerNode = std::stod(val);
        else if (key == "sat_growth_per_node")
            o.control.satGrowthPerNode = std::stod(val);
        else
            fatal("sim options: unknown key '%s'", key.c_str());
    }
    return o;
}

bool
saveConfig(const NetworkConfig &config, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << configToString(config);
    return static_cast<bool>(out);
}

NetworkConfig
loadConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open %s", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return configFromString(buf.str());
}

} // namespace hnoc
