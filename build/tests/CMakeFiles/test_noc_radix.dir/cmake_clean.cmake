file(REMOVE_RECURSE
  "CMakeFiles/test_noc_radix.dir/noc/test_radix_generality.cc.o"
  "CMakeFiles/test_noc_radix.dir/noc/test_radix_generality.cc.o.d"
  "test_noc_radix"
  "test_noc_radix.pdb"
  "test_noc_radix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
