/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: headers,
 * percentage formatting, standard CMP experiment driver, and the
 * closed-loop memory-request client of case study I (Fig 13).
 */

#ifndef HNOC_BENCH_BENCH_UTIL_HH
#define HNOC_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/report.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/sim_harness.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

namespace hnoc::bench
{

inline void
printHeader(const std::string &id, const std::string &what)
{
    std::printf("================================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("================================================================\n");
}

/** Percent change of v relative to base; positive = v is larger. */
inline double
pctOver(double base, double v)
{
    return base != 0.0 ? 100.0 * (v - base) / base : 0.0;
}

/** Percent reduction of v relative to base; positive = v is smaller. */
inline double
pctReduction(double base, double v)
{
    return base != 0.0 ? 100.0 * (base - v) / base : 0.0;
}

/** Simulation length scaling (HNOC_SIM_SCALE). */
inline Cycle
scaled(Cycle c)
{
    return static_cast<Cycle>(static_cast<double>(c) * simScale());
}

/** True when argv carries --adaptive (fig benches, sweeps). */
inline bool
parseAdaptiveFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--adaptive") == 0)
            return true;
    return false;
}

/** Switch @p opts to adaptive windows when @p adaptive is set. */
inline void
applyAdaptive(SimPointOptions &opts, bool adaptive)
{
    if (adaptive)
        opts.control.mode = SimControlMode::Adaptive;
}

/** Total simulated cycles across a set of sim points. */
inline std::uint64_t
totalSimulatedCycles(const std::vector<SimPointResult> &points)
{
    std::uint64_t total = 0;
    for (const auto &p : points)
        total += p.simulatedCycles;
    return total;
}

/** Result of one CMP timing run. */
struct CmpRunResult
{
    double avgLatencyNs = 0.0;
    double queuingNs = 0.0;
    double blockingNs = 0.0;
    double transferNs = 0.0;
    double ipc = 0.0;
    PowerBreakdown power;
    double powerW = 0.0;
    double roundTripMean = 0.0; ///< core cycles
    double roundTripStd = 0.0;
};

/** Standard CMP experiment: warm caches, warm timing, measure. */
inline CmpRunResult
runCmpExperiment(const NetworkConfig &net_cfg, const CmpConfig &cmp_cfg,
                 const WorkloadProfile &workload,
                 Cycle measure_cycles = 12000)
{
    CmpSystem sys(net_cfg, cmp_cfg);
    sys.assignWorkloadAll(workload);
    sys.warmCaches(static_cast<int>(scaled(40000)));
    sys.run(scaled(3000));
    sys.resetStats();
    sys.run(scaled(measure_cycles));

    CmpRunResult res;
    res.avgLatencyNs = sys.netLatency().totalNs.mean();
    res.queuingNs = sys.netLatency().queuingNs.mean();
    res.blockingNs = sys.netLatency().blockingNs.mean();
    res.transferNs = sys.netLatency().transferNs.mean();
    res.ipc = sys.avgIpc();
    res.power = sys.networkPower();
    res.powerW = res.power.total();
    res.roundTripMean = sys.roundTripCoreCycles().mean();
    res.roundTripStd = sys.roundTripCoreCycles().stddev();
    return res;
}

/**
 * Closed-loop memory-request client (Fig 13 UR row): every node keeps
 * up to 16 outstanding single-flit requests to address-interleaved
 * memory controllers; each MC responds with a data packet after the
 * DRAM latency. Round-trip latency is measured request -> response.
 */
class ClosedLoopMemClient : public NetworkClient
{
  public:
    ClosedLoopMemClient(const std::vector<NodeId> &mc_tiles,
                        Cycle dram_latency, int max_outstanding,
                        std::uint64_t seed)
        : mcTiles_(mc_tiles), dramLatency_(dram_latency),
          maxOutstanding_(max_outstanding), rng_(seed)
    {}

    void
    preCycle(Network &net, Cycle now) override
    {
        if (outstanding_.empty())
            outstanding_.assign(
                static_cast<std::size_t>(net.topology().numNodes()), 0);
        // Service DRAM completions.
        while (!completions_.empty() && completions_.front().first <= now) {
            auto [at, job] = completions_.front();
            completions_.pop_front();
            if (job.mc != job.requester) {
                net.enqueuePacket(job.mc, job.requester,
                                  net.dataPacketFlits(), 1,
                                  reinterpret_cast<void *>(job.issued));
            }
        }
        // Issue new requests.
        int nodes = net.topology().numNodes();
        for (NodeId n = 0; n < nodes; ++n) {
            if (!injecting_)
                break;
            if (outstanding_[static_cast<std::size_t>(n)] >=
                maxOutstanding_)
                continue;
            if (rng_.uniform() >= issueProb_)
                continue;
            NodeId mc = mcTiles_[rng_.below(mcTiles_.size())];
            if (mc == n)
                continue;
            net.enqueuePacket(n, mc, 1, 0,
                              reinterpret_cast<void *>(now));
            ++outstanding_[static_cast<std::size_t>(n)];
        }
    }

    void
    onPacketDelivered(Network &net, Packet &pkt, Cycle now) override
    {
        if (pkt.tag == 0) {
            // Request arrived at the controller: schedule DRAM access.
            Job job;
            job.mc = pkt.dst;
            job.requester = pkt.src;
            job.issued = reinterpret_cast<Cycle>(pkt.context);
            completions_.emplace_back(now + dramLatency_, job);
        } else {
            // Response back at the requester.
            auto issued = reinterpret_cast<Cycle>(pkt.context);
            if (measuring_)
                roundTripNs_.add(static_cast<double>(now - issued) *
                                 net.nsPerCycle());
            --outstanding_[static_cast<std::size_t>(pkt.dst)];
        }
    }

    void beginMeasure() { measuring_ = true; }
    void stop() { injecting_ = false; }

    const RunningStat &roundTripNs() const { return roundTripNs_; }

    /** Per-cycle issue attempt probability (controls load). */
    double issueProb_ = 0.3;

  private:
    struct Job
    {
        NodeId mc;
        NodeId requester;
        Cycle issued;
    };

    std::vector<NodeId> mcTiles_;
    Cycle dramLatency_;
    int maxOutstanding_;
    Rng rng_;
    std::vector<int> outstanding_;
    std::deque<std::pair<Cycle, Job>> completions_;
    bool measuring_ = false;
    bool injecting_ = true;
    RunningStat roundTripNs_;
};

/** Run the closed-loop UR memory experiment; returns round-trip stat. */
inline RunningStat
runClosedLoopMem(const NetworkConfig &net_cfg,
                 const std::vector<NodeId> &mc_tiles, std::uint64_t seed)
{
    Network net(net_cfg);
    // 400 core cycles at 2.2 GHz, in network cycles.
    auto dram = static_cast<Cycle>(400.0 * net.clockGHz() / 2.2);
    ClosedLoopMemClient client(mc_tiles, dram, 16, seed);
    net.setClient(&client);
    net.run(scaled(8000));
    client.beginMeasure();
    net.run(scaled(20000));
    return client.roundTripNs();
}

/** One layout's load-latency curve plus its zero-load latency. */
struct LayoutCurve
{
    LayoutKind kind;
    std::vector<SimPointResult> points;
    double zeroLoadNs = 0.0;
};

/**
 * Shared parallel runner for layout comparisons: every (layout, rate)
 * sim point plus one zero-load point per layout goes into a single
 * batch on the shared JobPool, so cross-layout points overlap instead
 * of running layout-by-layout. Bit-identical to the former serial
 * sweepLoad + zeroLoadLatencyNs loop (same configs, same seeds).
 */
inline std::vector<LayoutCurve>
runLayoutSweeps(const std::vector<LayoutKind> &kinds,
                TrafficPattern pattern, const std::vector<double> &rates,
                const SimPointOptions &opts)
{
    std::vector<BatchPoint> batch;
    batch.reserve(kinds.size() * (rates.size() + 1));
    for (LayoutKind kind : kinds) {
        NetworkConfig cfg = makeLayoutConfig(kind);
        for (double r : rates) {
            BatchPoint bp;
            bp.config = cfg;
            bp.pattern = pattern;
            bp.opts = opts;
            bp.opts.injectionRate = r;
            batch.push_back(std::move(bp));
        }
        BatchPoint zl; // mirrors zeroLoadLatencyNs(cfg, pattern)
        zl.config = cfg;
        zl.pattern = pattern;
        zl.opts.injectionRate = 0.001;
        zl.opts.seed = 1;
        batch.push_back(std::move(zl));
    }

    std::vector<SimPointResult> results = runBatch(batch);

    std::vector<LayoutCurve> curves;
    curves.reserve(kinds.size());
    std::size_t idx = 0;
    for (LayoutKind kind : kinds) {
        LayoutCurve c;
        c.kind = kind;
        c.points.assign(results.begin() + static_cast<std::ptrdiff_t>(idx),
                        results.begin() +
                            static_cast<std::ptrdiff_t>(idx + rates.size()));
        idx += rates.size();
        c.zeroLoadNs = results[idx++].avgLatencyNs;
        curves.push_back(std::move(c));
    }
    return curves;
}

/** Run one identical sim point per layout in parallel (input order). */
inline std::vector<SimPointResult>
runLayoutPoints(const std::vector<LayoutKind> &kinds,
                TrafficPattern pattern, const SimPointOptions &opts)
{
    std::vector<BatchPoint> batch;
    batch.reserve(kinds.size());
    for (LayoutKind kind : kinds) {
        BatchPoint bp;
        bp.config = makeLayoutConfig(kind);
        bp.pattern = pattern;
        bp.opts = opts;
        batch.push_back(std::move(bp));
    }
    return runBatch(batch);
}

/**
 * Shared driver for the Fig 7 / Fig 9 synthetic-traffic comparisons:
 * load-latency curves, throughput / average-latency / zero-load
 * summary bars, and power curves across HeteroNoC layouts. When
 * @p report_path is non-empty, the full set of sim points is also
 * exported as a unified JSON run report (honors HNOC_JSON_DIR).
 */
inline void
runSyntheticComparison(TrafficPattern pattern,
                       const std::vector<double> &rates,
                       const std::string &report_path = "",
                       bool adaptive = false)
{
    using Curve = LayoutCurve;

    SimPointOptions opts;
    opts.warmupCycles = 6000;
    opts.measureCycles = 15000;
    opts.drainCycles = 30000;
    applyAdaptive(opts, adaptive);

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<Curve> curves =
        runLayoutSweeps(allLayouts(), pattern, rates, opts);
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

    if (!report_path.empty()) {
        std::vector<std::string> labels;
        std::vector<SimPointResult> flat;
        for (const Curve &c : curves) {
            for (const auto &p : c.points) {
                labels.push_back(layoutName(c.kind) + "@" +
                                 Table::num(p.offeredRate, 4));
                flat.push_back(p);
            }
        }
        writeRunReport(report_path, "synthetic traffic comparison",
                       labels, flat);
    }

    const Curve &base = curves.front();

    std::printf("\n(a) Load-latency (ns; * = saturated):\n");
    std::printf("%-12s", "inj rate");
    for (double r : rates)
        std::printf("%9.4f", r);
    std::printf("\n");
    for (const Curve &c : curves) {
        std::printf("%-12s", layoutName(c.kind).c_str());
        for (const auto &p : c.points)
            std::printf("%8.1f%s", p.avgLatencyNs,
                        p.saturated ? "*" : " ");
        std::printf("\n");
    }

    // Common stable prefix: loads every layout sustains (accepted
    // tracks offered, not saturated). The paper's "average latency"
    // compares configurations over such a shared operating range.
    std::size_t stable = rates.size();
    for (const Curve &c : curves) {
        for (std::size_t i = 0; i < c.points.size(); ++i) {
            const auto &p = c.points[i];
            bool ok = !p.saturated &&
                      p.acceptedRate >= 0.95 * p.offeredRate;
            if (!ok) {
                stable = std::min(stable, i);
                break;
            }
        }
    }
    if (stable == 0)
        stable = 1;
    auto stable_avg = [&](const Curve &c) {
        RunningStat s;
        for (std::size_t i = 0; i < stable; ++i)
            s.add(c.points[i].avgLatencyNs);
        return s.mean();
    };

    std::printf("\n(b) Summary vs baseline "
                "(positive = hetero better; avg latency over the common "
                "stable range, %zu points):\n", stable);
    std::printf("%-12s %12s %12s %12s %14s %12s\n", "layout",
                "thrpt(pkt)%", "thrpt(flit)%", "avg lat %", "zero-load %",
                "combine");
    double base_sat = saturationThroughput(base.points);
    double base_lat = stable_avg(base);
    int base_flits =
        makeLayoutConfig(LayoutKind::Baseline).dataPacketFlits();
    for (const Curve &c : curves) {
        if (c.kind == LayoutKind::Baseline)
            continue;
        double sat = saturationThroughput(c.points);
        double lat = stable_avg(c);
        int flits = makeLayoutConfig(c.kind).dataPacketFlits();
        double combine = 0.0;
        for (const auto &p : c.points)
            combine = std::max(combine, p.combineRate);
        std::printf("%-12s %12.1f %12.1f %12.1f %14.1f %12.2f\n",
                    layoutName(c.kind).c_str(),
                    pctOver(base_sat, sat),
                    pctOver(base_sat * base_flits, sat * flits),
                    pctReduction(base_lat, lat),
                    pctReduction(base.zeroLoadNs, c.zeroLoadNs), combine);
    }

    std::printf("\n(c) Network power (W) across load (+BL layouts):\n");
    std::printf("%-12s", "inj rate");
    for (double r : rates)
        std::printf("%9.4f", r);
    std::printf("\n");
    for (const Curve &c : curves) {
        if (c.kind != LayoutKind::Baseline &&
            !isBufferLinkLayout(c.kind))
            continue;
        std::printf("%-12s", layoutName(c.kind).c_str());
        for (const auto &p : c.points)
            std::printf("%9.1f", p.networkPowerW);
        std::printf("\n");
    }

    // Per-point simulated cycles: the cost side of the adaptive vs
    // reference trade (docs/EXPERIMENTS.md "Adaptive vs reference
    // windows"). Markers: c = CI-converged, m = measure ceiling,
    // a = saturation fast-abort. Wall time goes to stderr so stdout
    // stays byte-identical across thread counts.
    std::uint64_t total_cycles = 0;
    std::printf("\n(d) Simulated cycles per point (%s windows):\n",
                adaptive ? "adaptive" : "reference");
    std::printf("%-12s", "inj rate");
    for (double r : rates)
        std::printf("%9.4f", r);
    std::printf("\n");
    for (const Curve &c : curves) {
        std::printf("%-12s", layoutName(c.kind).c_str());
        for (const auto &p : c.points) {
            char mark = ' ';
            if (p.stopReason == StopReason::CiConverged)
                mark = 'c';
            else if (p.stopReason == StopReason::MeasureCeiling)
                mark = 'm';
            else if (p.stopReason == StopReason::SaturationAbort)
                mark = 'a';
            std::printf("%8llu%c",
                        static_cast<unsigned long long>(
                            p.simulatedCycles),
                        mark);
            total_cycles += p.simulatedCycles;
        }
        std::printf("\n");
    }
    std::printf("total simulated cycles: %llu\n",
                static_cast<unsigned long long>(total_cycles));
    std::fprintf(stderr, "sweep wall time: %.2f s\n", wall_s);
}

} // namespace hnoc::bench

#endif // HNOC_BENCH_BENCH_UTIL_HH
