/**
 * @file
 * Strict JSON reader for the telemetry documents this repo emits:
 * run reports (hnoc-run-report-v1), postmortems (hnoc-postmortem-v1),
 * Chrome traces, and JSONL flit logs.
 *
 * The parser accepts exactly the JSON grammar — trailing commas, bare
 * NaN/Inf literals, raw control characters in strings and trailing
 * garbage after the document are all rejected — so round-trip tests
 * against it also pin that the emitters never produce malformed
 * output. Promoted from the in-test parser of test_trace.cc so the
 * offline tooling (hnoc_inspect) and the tests share one grammar.
 */

#ifndef HNOC_TELEMETRY_JSON_READER_HH
#define HNOC_TELEMETRY_JSON_READER_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hnoc
{

/** A parsed JSON value: tagged union over the six JSON types. */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Members in document order (duplicate keys kept; find() returns
     *  the first, matching RFC 8259 "last one wins" readers loosely —
     *  our emitters never duplicate keys). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** @return the member named @p key, or nullptr. */
    const JsonValue *find(std::string_view key) const;

    /** Numeric member lookup; @p fallback when absent or non-numeric.
     *  The -1 default makes a missing field fail >= 0 assertions. */
    double numAt(std::string_view key, double fallback = -1.0) const;

    /** String member lookup; empty when absent or non-string. */
    std::string strAt(std::string_view key) const;

    /** Boolean member lookup. */
    bool boolAt(std::string_view key, bool fallback = false) const;

    /** The member named @p key as an array (empty vector if absent). */
    const std::vector<JsonValue> &arrayAt(std::string_view key) const;

    /** Numeric array member as doubles (empty if absent/mistyped). */
    std::vector<double> numbersAt(std::string_view key) const;
};

/**
 * Parse one complete JSON document.
 * @param error when non-null, receives "byte N: reason" on failure
 * @return true iff @p doc parsed and was fully consumed
 */
bool parseJson(std::string_view doc, JsonValue &out,
               std::string *error = nullptr);

/** Read and parse a whole file. @p error reports open/parse failures. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string *error = nullptr);

/**
 * Parse a JSONL document (one JSON value per newline-terminated line,
 * e.g. the TraceObserver flit log). Blank lines are skipped. Stops at
 * the first malformed line.
 * @return true iff every line parsed
 */
bool parseJsonLines(std::string_view doc, std::vector<JsonValue> &out,
                    std::string *error = nullptr);

/** parseJsonLines over a file's contents. */
bool parseJsonLinesFile(const std::string &path,
                        std::vector<JsonValue> &out,
                        std::string *error = nullptr);

} // namespace hnoc

#endif // HNOC_TELEMETRY_JSON_READER_HH
