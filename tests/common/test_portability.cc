#include <gtest/gtest.h>

#include "common/portability.hh"

namespace hnoc
{
namespace
{

TEST(Portability, FallbackReportsZeroNotGarbage)
{
    // The fallback is the documented "no data" value on platforms
    // without getrusage; it must be exactly zero so health reports can
    // distinguish "unavailable" from a real measurement.
    EXPECT_EQ(detail::peakRssFallback(), 0u);
}

TEST(Portability, PeakRssIsPositiveWhenProbeExists)
{
    if (!kHasRusage)
        GTEST_SKIP() << "no getrusage on this platform";
    // Any running process has a nonzero peak RSS; also sanity-bound it
    // below 1 TiB to catch unit mix-ups (KiB vs bytes).
    std::uint64_t rss = peakRssBytes();
    EXPECT_GT(rss, 0u);
    EXPECT_LT(rss, 1ull << 40);
}

TEST(Portability, PeakRssMonotonicWithinProcess)
{
    if (!kHasRusage)
        GTEST_SKIP() << "no getrusage on this platform";
    std::uint64_t a = peakRssBytes();
    std::uint64_t b = peakRssBytes();
    EXPECT_GE(b, a); // peak never decreases
}

#if defined(__linux__)
TEST(Portability, LinuxAlwaysHasRusage)
{
    EXPECT_TRUE(kHasRusage);
}
#endif

} // namespace
} // namespace hnoc
