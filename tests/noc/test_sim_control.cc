/**
 * @file
 * Adaptive simulation control: the three stopping policies on
 * synthetic epoch series, the adaptive open-loop harness end to end
 * (cycle savings, latency agreement, saturation fast-abort), and
 * bit-identical adaptive results across thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/job_pool.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_control.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

// ------------------------------------------------------------ names --

TEST(SimControlNames, StopReasonRoundTrip)
{
    for (StopReason r :
         {StopReason::FixedWindow, StopReason::CiConverged,
          StopReason::MeasureCeiling, StopReason::SaturationAbort})
        EXPECT_EQ(stopReasonFromName(stopReasonName(r)), r);
    EXPECT_STREQ(stopReasonName(StopReason::CiConverged),
                 "ci-converged");
}

TEST(SimControlNames, ModeRoundTrip)
{
    EXPECT_EQ(simControlModeFromName("reference"),
              SimControlMode::Reference);
    EXPECT_EQ(simControlModeFromName("adaptive"),
              SimControlMode::Adaptive);
    EXPECT_STREQ(simControlModeName(SimControlMode::Adaptive),
                 "adaptive");
}

TEST(SimControlNames, UnknownNamesFatal)
{
    EXPECT_DEATH((void)stopReasonFromName("bogus"),
                 "unknown stop reason");
    EXPECT_DEATH((void)simControlModeFromName("bogus"),
                 "unknown control mode");
}

// -------------------------------------------------- warmup detector --

TEST(WarmupDetector, ConvergingSeriesReachesSteady)
{
    SimControlOptions o;
    o.warmupEpochs = 3;
    o.warmupTolerance = 0.05;
    WarmupDetector w(o);
    // Decaying transient: successive drops exceed the tolerance.
    EXPECT_FALSE(w.addEpoch(100.0, 10));
    EXPECT_FALSE(w.addEpoch(60.0, 10));
    EXPECT_FALSE(w.addEpoch(40.0, 10));
    // Settles: three consecutive in-tolerance epochs declare steady.
    EXPECT_FALSE(w.addEpoch(40.5, 10));
    EXPECT_FALSE(w.addEpoch(40.2, 10));
    EXPECT_TRUE(w.addEpoch(40.1, 10));
    EXPECT_TRUE(w.steady());
    EXPECT_EQ(w.epochsSeen(), 6);
}

TEST(WarmupDetector, OscillatingSeriesNeverSteady)
{
    SimControlOptions o;
    o.warmupEpochs = 2;
    o.warmupTolerance = 0.05;
    WarmupDetector w(o);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(w.addEpoch(i % 2 ? 50.0 : 100.0, 10));
    EXPECT_FALSE(w.steady());
}

TEST(WarmupDetector, ZeroDeliveryEpochResetsTheRun)
{
    SimControlOptions o;
    o.warmupEpochs = 3;
    o.warmupTolerance = 0.05;
    WarmupDetector w(o);
    EXPECT_FALSE(w.addEpoch(40.0, 10));
    EXPECT_FALSE(w.addEpoch(40.1, 10));
    EXPECT_FALSE(w.addEpoch(40.2, 10));
    // A stalled epoch is not evidence of stability: run restarts.
    EXPECT_FALSE(w.addEpoch(0.0, 0));
    EXPECT_FALSE(w.addEpoch(40.0, 10));
    EXPECT_FALSE(w.addEpoch(40.1, 10));
    EXPECT_FALSE(w.addEpoch(40.2, 10));
    EXPECT_TRUE(w.addEpoch(40.3, 10));
}

TEST(WarmupDetector, SteadyStateLatches)
{
    SimControlOptions o;
    o.warmupEpochs = 1;
    WarmupDetector w(o);
    w.addEpoch(10.0, 5);
    EXPECT_TRUE(w.addEpoch(10.0, 5));
    // A later spike does not un-declare steady state.
    EXPECT_TRUE(w.addEpoch(500.0, 5));
    EXPECT_TRUE(w.steady());
}

// ------------------------------------------- batch-means controller --

TEST(BatchMeans, TightSeriesConverges)
{
    SimControlOptions o;
    o.minBatches = 8;
    o.ciTarget = 0.02;
    BatchMeansController bm(o);
    for (int i = 0; i < 8; ++i)
        bm.addEpoch(100.0 + 0.1 * (i % 2), 10);
    EXPECT_EQ(bm.batches(), 8u);
    EXPECT_TRUE(bm.converged());
    EXPECT_LE(bm.relHalfWidth(), 0.02);
    EXPECT_EQ(bm.history().size(), 8u);
    // The probe records a shrinking half-width once it is finite.
    EXPECT_LT(bm.history().back(), 0.02);
}

TEST(BatchMeans, NoisySeriesDoesNotConverge)
{
    SimControlOptions o;
    o.minBatches = 8;
    o.ciTarget = 0.02;
    BatchMeansController bm(o);
    for (int i = 0; i < 16; ++i)
        bm.addEpoch(i % 2 ? 200.0 : 100.0, 10);
    EXPECT_FALSE(bm.converged());
    EXPECT_GT(bm.relHalfWidth(), 0.02);
}

TEST(BatchMeans, MinBatchesGatesTheRule)
{
    SimControlOptions o;
    o.minBatches = 8;
    o.ciTarget = 0.02;
    BatchMeansController bm(o);
    for (int i = 0; i < 7; ++i)
        bm.addEpoch(100.0, 10); // zero-width CI, too few batches
    EXPECT_FALSE(bm.converged());
    bm.addEpoch(100.0, 10);
    EXPECT_TRUE(bm.converged());
}

TEST(BatchMeans, EpochsPerBatchGroupsAndWeightsByDeliveries)
{
    SimControlOptions o;
    o.epochsPerBatch = 2;
    o.minBatches = 2;
    BatchMeansController bm(o);
    bm.addEpoch(10.0, 1);
    EXPECT_EQ(bm.batches(), 0u); // batch still open
    bm.addEpoch(40.0, 3);        // closes: (10*1 + 40*3) / 4 = 32.5
    EXPECT_EQ(bm.batches(), 1u);
    bm.addEpoch(32.5, 2);
    bm.addEpoch(32.5, 2);
    EXPECT_EQ(bm.batches(), 2u);
    EXPECT_TRUE(bm.converged()); // both batch means are 32.5
    EXPECT_LE(bm.relHalfWidth(), o.ciTarget);
}

TEST(BatchMeans, EmptyBatchesAreDropped)
{
    SimControlOptions o;
    o.minBatches = 2;
    BatchMeansController bm(o);
    bm.addEpoch(0.0, 0); // stalled epoch: no sample recorded
    bm.addEpoch(0.0, 0);
    EXPECT_EQ(bm.batches(), 0u);
    EXPECT_TRUE(bm.history().empty());
    bm.addEpoch(50.0, 10);
    bm.addEpoch(50.0, 10);
    EXPECT_EQ(bm.batches(), 2u);
    EXPECT_TRUE(bm.converged());
}

// ------------------------------------------- saturation fast-abort --

SimControlOptions
satOptions()
{
    SimControlOptions o;
    o.satEpochs = 4;
    o.satDepthPerNode = 3.0;  // 64 nodes -> depth >= 192
    o.satGrowthPerNode = 0.5; // ... and growth >= 32 over the run
    return o;
}

TEST(SaturationDetector, UnboundedGrowthFires)
{
    SaturationDetector sat(satOptions(), 64);
    EXPECT_FALSE(sat.addEpoch(0));
    EXPECT_FALSE(sat.addEpoch(100)); // run 1
    EXPECT_FALSE(sat.addEpoch(200)); // run 2
    EXPECT_FALSE(sat.addEpoch(300)); // run 3
    EXPECT_TRUE(sat.addEpoch(400));  // run 4: depth 400, growth 400
    EXPECT_TRUE(sat.saturated());
    // Latches even if the queue later drains.
    EXPECT_TRUE(sat.addEpoch(0));
}

TEST(SaturationDetector, PlateauResetsTheRun)
{
    SaturationDetector sat(satOptions(), 64);
    sat.addEpoch(100);
    sat.addEpoch(200);
    sat.addEpoch(300);
    EXPECT_FALSE(sat.addEpoch(300)); // not strictly increasing
    sat.addEpoch(310);
    sat.addEpoch(320);
    EXPECT_FALSE(sat.addEpoch(330)); // run 3 only
    EXPECT_FALSE(sat.saturated());
}

TEST(SaturationDetector, ShallowQueuesDoNotFire)
{
    // Strict growth, but depth stays far below 3 packets/node: the
    // startup transient of a healthy point must not abort it.
    SaturationDetector sat(satOptions(), 64);
    for (std::size_t d = 1; d <= 20; ++d)
        EXPECT_FALSE(sat.addEpoch(d));
}

TEST(SaturationDetector, SlowCreepBelowGrowthFloorDoesNotFire)
{
    // Deep but barely-growing queues (e.g. a near-saturation point
    // wobbling around equilibrium) stay un-aborted.
    SimControlOptions o = satOptions();
    SaturationDetector sat(o, 64);
    std::size_t depth = 500; // well above the depth floor
    EXPECT_FALSE(sat.addEpoch(depth));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(sat.addEpoch(++depth)); // growth 1/epoch << 32
}

// ------------------------------------------ adaptive harness, e2e --

SimPointOptions
benchOptions(double rate)
{
    SimPointOptions opts;
    opts.injectionRate = rate;
    opts.warmupCycles = 6000;
    opts.measureCycles = 15000;
    opts.drainCycles = 30000;
    opts.seed = 20260706;
    return opts;
}

SimPointOptions
adaptiveOptions(double rate)
{
    SimPointOptions opts = benchOptions(rate);
    opts.control.mode = SimControlMode::Adaptive;
    return opts;
}

/** The saturation-region rule shared with preSaturationAvgLatencyNs:
 *  fast-aborted and throughput-collapsed points are one class. */
bool
inSaturationRegion(const SimPointResult &p)
{
    return p.saturated ||
           (p.offeredRate > 0.0 &&
            p.acceptedRate < 0.95 * p.offeredRate);
}

TEST(AdaptiveHarness, LowLoadConvergesEarly)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    SimPointOptions ada_opts = adaptiveOptions(0.02);
    auto ref = runOpenLoop(cfg, TrafficPattern::UniformRandom,
                           benchOptions(0.02));
    auto ada =
        runOpenLoop(cfg, TrafficPattern::UniformRandom, ada_opts);

    EXPECT_EQ(ref.stopReason, StopReason::FixedWindow);
    EXPECT_EQ(ref.warmupCyclesUsed, 6000u);
    EXPECT_EQ(ref.measureCyclesUsed, 15000u);
    EXPECT_TRUE(ref.ciHistory.empty());
    EXPECT_EQ(ref.ciRelHalfWidth, -1.0);

    EXPECT_EQ(ada.stopReason, StopReason::CiConverged);
    EXPECT_LE(ada.ciRelHalfWidth, ada_opts.control.ciTarget);
    EXPECT_GE(ada.ciRelHalfWidth, 0.0);
    EXPECT_FALSE(ada.ciHistory.empty());
    // Floors respected, ceilings undershot.
    EXPECT_GE(ada.warmupCyclesUsed, ada_opts.control.minWarmupCycles);
    EXPECT_GE(ada.measureCyclesUsed,
              ada_opts.control.minMeasureCycles);
    EXPECT_LT(ada.simulatedCycles, ref.simulatedCycles);
    // Both estimate the same steady-state latency.
    EXPECT_NEAR(ada.avgLatencyNs, ref.avgLatencyNs,
                0.015 * ref.avgLatencyNs);
}

TEST(AdaptiveHarness, SaturatedLoadFastAborts)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    auto ada = runOpenLoop(cfg, TrafficPattern::UniformRandom,
                           adaptiveOptions(0.2));
    EXPECT_EQ(ada.stopReason, StopReason::SaturationAbort);
    EXPECT_TRUE(ada.saturated);
    EXPECT_FALSE(ada.drainTruncated); // abort skips the drain
    // The whole point costs a handful of epochs, not three windows.
    EXPECT_LT(ada.simulatedCycles, 20000u);
}

TEST(AdaptiveHarness, Fig07StyleSweepSavesCyclesAndAgrees)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    const std::vector<double> rates = {0.01, 0.03, 0.05, 0.07};
    SimPointOptions ref_opts = benchOptions(0.0);
    SimPointOptions ada_opts = adaptiveOptions(0.0);
    auto ref = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                               rates, ref_opts);
    auto ada = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                               rates, ada_opts);
    ASSERT_EQ(ref.size(), ada.size());

    std::uint64_t ref_cycles = 0;
    std::uint64_t ada_cycles = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("rate " + std::to_string(rates[i]));
        ref_cycles += ref[i].simulatedCycles;
        ada_cycles += ada[i].simulatedCycles;
        // Identical saturation-region classification per point.
        EXPECT_EQ(inSaturationRegion(ref[i]),
                  inSaturationRegion(ada[i]));
        // Pre-saturation latencies agree closely point by point.
        if (!inSaturationRegion(ref[i])) {
            EXPECT_NEAR(ada[i].avgLatencyNs, ref[i].avgLatencyNs,
                        0.015 * ref[i].avgLatencyNs);
        }
    }
    // The acceptance bar: >= 40% fewer simulated cycles overall.
    EXPECT_LE(static_cast<double>(ada_cycles),
              0.6 * static_cast<double>(ref_cycles));
    // ... and the sweep-level pre-saturation mean within 1%.
    double ref_mean = preSaturationAvgLatencyNs(ref);
    double ada_mean = preSaturationAvgLatencyNs(ada);
    EXPECT_NEAR(ada_mean, ref_mean, 0.01 * ref_mean);
}

TEST(AdaptiveHarness, ReferenceModeIgnoresAdaptiveKnobs)
{
    // Reference mode must be byte-for-byte the seed behavior no
    // matter how the adaptive knobs are set.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    SimPointOptions plain = benchOptions(0.03);
    SimPointOptions tweaked = benchOptions(0.03);
    tweaked.control.ciTarget = 0.5;
    tweaked.control.minBatches = 2;
    tweaked.control.warmupEpochs = 1;
    auto a = runOpenLoop(cfg, TrafficPattern::UniformRandom, plain);
    auto b = runOpenLoop(cfg, TrafficPattern::UniformRandom, tweaked);
    EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs);
    EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);
    EXPECT_EQ(a.stopReason, StopReason::FixedWindow);
    EXPECT_EQ(b.stopReason, StopReason::FixedWindow);
}

TEST(AdaptiveHarness, AdaptiveBitIdenticalAcrossThreadCounts)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    const std::vector<double> rates = {0.01, 0.04, 0.07};
    SimPointOptions opts = adaptiveOptions(0.0);

    auto serial = sweepLoadSerial(cfg, TrafficPattern::UniformRandom,
                                  rates, opts);
    for (int threads : {1, 3, 4}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        JobPool pool(threads);
        auto par = sweepLoad(cfg, TrafficPattern::UniformRandom,
                             rates, opts, &pool);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < par.size(); ++i) {
            SCOPED_TRACE("point " + std::to_string(i));
            EXPECT_EQ(par[i].avgLatencyNs, serial[i].avgLatencyNs);
            EXPECT_EQ(par[i].simulatedCycles,
                      serial[i].simulatedCycles);
            EXPECT_EQ(par[i].warmupCyclesUsed,
                      serial[i].warmupCyclesUsed);
            EXPECT_EQ(par[i].measureCyclesUsed,
                      serial[i].measureCyclesUsed);
            EXPECT_EQ(par[i].stopReason, serial[i].stopReason);
            EXPECT_EQ(par[i].ciRelHalfWidth,
                      serial[i].ciRelHalfWidth);
            EXPECT_EQ(par[i].ciHistory, serial[i].ciHistory);
            EXPECT_EQ(par[i].saturated, serial[i].saturated);
            EXPECT_EQ(par[i].drainTruncated,
                      serial[i].drainTruncated);
        }
    }
}

} // namespace
} // namespace hnoc
