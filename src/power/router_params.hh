/**
 * @file
 * Physical provisioning of one router: the knobs the paper redistributes.
 */

#ifndef HNOC_POWER_ROUTER_PARAMS_HH
#define HNOC_POWER_ROUTER_PARAMS_HH

namespace hnoc
{

/**
 * Physical parameters of a single router, as used by the power, area and
 * frequency models. These correspond to the rows of the paper's Table 1.
 */
struct RouterPhysParams
{
    int ports = 5;           ///< physical channels incl. local port
    int vcsPerPort = 3;      ///< virtual channels per physical channel
    int bufferDepthFlits = 5;///< flits per VC FIFO
    int datapathBits = 192;  ///< crossbar / link width (bits)
    /** Buffer word width: the network flit width. Big HeteroNoC
     *  routers keep 128 b FIFOs despite the 256 b crossbar (§3.2). */
    int bufferWidthBits = 192;

    /** @return total buffer storage in bits (Table 1 accounting). */
    long long
    bufferBits() const
    {
        return static_cast<long long>(ports) * vcsPerPort *
               bufferDepthFlits * bufferWidthBits;
    }

    /** @return total buffer slots (flits). */
    int
    bufferSlots() const
    {
        return ports * vcsPerPort * bufferDepthFlits;
    }

    bool operator==(const RouterPhysParams &other) const = default;
};

/** The three router types of the paper (Table 1). */
namespace router_types
{

/** Homogeneous baseline: 3 VCs / 5-deep / 192 b. */
constexpr RouterPhysParams BASELINE{5, 3, 5, 192, 192};

/** HeteroNoC small router: 2 VCs / 5-deep / 128 b. */
constexpr RouterPhysParams SMALL{5, 2, 5, 128, 128};

/** HeteroNoC big router: 6 VCs / 5-deep / 256 b crossbar, 128 b FIFOs. */
constexpr RouterPhysParams BIG{5, 6, 5, 256, 128};

} // namespace router_types

} // namespace hnoc

#endif // HNOC_POWER_ROUTER_PARAMS_HH
