#include "telemetry/flight_recorder.hh"

#include <algorithm>

#include "telemetry/json_writer.hh"

namespace hnoc
{

const char *
frKindName(FrKind k)
{
    switch (k) {
      case FrKind::FlitIn: return "flit_in";
      case FrKind::FlitOut: return "flit_out";
      case FrKind::VaGrant: return "va_grant";
      case FrKind::VaDeny: return "va_deny";
      case FrKind::CreditStall: return "credit_stall";
      case FrKind::CreditIn: return "credit_in";
      case FrKind::CreditOut: return "credit_out";
      case FrKind::Inject: return "inject";
      case FrKind::Eject: return "eject";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
{
    std::size_t cap = 1;
    while (cap < capacity)
        cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
}

std::size_t
FlightRecorder::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(next_, ring_.size()));
}

std::uint64_t
FlightRecorder::overwritten() const
{
    return next_ - size();
}

void
FlightRecorder::clear()
{
    next_ = 0;
}

std::vector<FlightRecorder::Event>
FlightRecorder::snapshot(Cycle last_cycles) const
{
    std::vector<Event> out;
    std::size_t held = size();
    if (held == 0)
        return out;
    out.reserve(held);
    std::uint64_t first = next_ - held;
    for (std::uint64_t i = first; i < next_; ++i)
        out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
    if (last_cycles > 0) {
        Cycle newest = out.back().t;
        Cycle cutoff = newest > last_cycles ? newest - last_cycles : 0;
        out.erase(std::remove_if(out.begin(), out.end(),
                                 [cutoff](const Event &e) {
                                     return e.t < cutoff;
                                 }),
                  out.end());
    }
    return out;
}

void
FlightRecorder::writeJson(JsonWriter &w, Cycle last_cycles) const
{
    std::vector<Event> events = snapshot(last_cycles);
    w.beginObject();
    w.keyValue("capacity", static_cast<std::uint64_t>(capacity()));
    w.keyValue("recorded", totalRecorded());
    w.keyValue("overwritten", overwritten());
    w.keyValue("held", static_cast<std::uint64_t>(events.size()));
    w.key("events").beginArray();
    for (const Event &e : events) {
        w.beginObject();
        w.keyValue("t", static_cast<std::uint64_t>(e.t));
        w.keyValue("ev", frKindName(static_cast<FrKind>(e.kind)));
        w.keyValue("r", static_cast<int>(e.router));
        w.keyValue("p", static_cast<int>(e.port));
        w.keyValue("vc", static_cast<int>(e.vc));
        if (e.pkt != 0)
            w.keyValue("pkt", static_cast<std::uint64_t>(e.pkt));
        if (e.head)
            w.keyValue("head", 1);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace hnoc
