#include "telemetry/json_writer.hh"

#include <cstdio>

#include "common/logging.hh"

namespace hnoc
{

JsonWriter::JsonWriter()
{
    out_.reserve(4096);
}

void
JsonWriter::prefix()
{
    if (keyPending_) {
        keyPending_ = false;
        return; // the key already emitted "name":
    }
    if (stack_.empty())
        return; // top-level value
    if (stack_.back() > 0)
        out_ += ',';
    ++stack_.back();
}

JsonWriter &
JsonWriter::beginObject()
{
    prefix();
    out_ += '{';
    stack_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty())
        panic("JsonWriter: endObject with no open container");
    stack_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prefix();
    out_ += '[';
    stack_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty())
        panic("JsonWriter: endArray with no open container");
    stack_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty())
        panic("JsonWriter: key() outside an object");
    if (stack_.back() > 0)
        out_ += ',';
    ++stack_.back();
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    prefix();
    out_ += '"';
    out_ += escape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string_view(s));
}

JsonWriter &
JsonWriter::value(double v)
{
    prefix();
    char buf[40];
    // %.17g round-trips every finite double; NaN/Inf are not JSON.
    if (v != v) {
        out_ += "null";
        return *this;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prefix();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prefix();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    prefix();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prefix();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::keyArray(std::string_view name,
                     const std::vector<double> &values)
{
    key(name);
    beginArray();
    for (double v : values)
        value(v);
    return endArray();
}

JsonWriter &
JsonWriter::keyArray(std::string_view name,
                     const std::vector<std::uint64_t> &values)
{
    key(name);
    beginArray();
    for (std::uint64_t v : values)
        value(v);
    return endArray();
}

const std::string &
JsonWriter::str() const
{
    if (!stack_.empty())
        panic("JsonWriter: str() with %zu containers still open",
              stack_.size());
    return out_;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace hnoc
