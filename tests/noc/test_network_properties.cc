/**
 * @file
 * Property-based network tests, parameterized over (layout, traffic
 * pattern): flit/packet conservation, latency lower bounds,
 * deterministic replay, and forward progress (no starvation/deadlock).
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

struct PropertyCase
{
    LayoutKind layout;
    TrafficPattern pattern;
    double rate;
};

std::string
caseName(const ::testing::TestParamInfo<PropertyCase> &info)
{
    std::string n = layoutName(info.param.layout) + "_" +
                    trafficPatternName(info.param.pattern);
    for (char &c : n)
        if (c == '+' || c == '-' || c == '_' || c == ' ')
            c = 'x';
    return n;
}

class NetworkProperties : public ::testing::TestWithParam<PropertyCase>
{};

/** Conservation: once sources stop, every injected packet is
 *  delivered and nothing remains in flight. */
TEST_P(NetworkProperties, ConservationAndDrain)
{
    const PropertyCase &pc = GetParam();
    NetworkConfig cfg = makeLayoutConfig(pc.layout);
    Network net(cfg);
    TrafficGenerator gen(pc.pattern, 64, 8, 99);

    std::uint64_t injected = 0;
    for (Cycle t = 0; t < 3000; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, pc.rate, t)) {
                NodeId dst = gen.pickDest(n);
                if (dst == INVALID_NODE)
                    continue;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                ++injected;
            }
        }
        net.step();
    }
    // Drain with injection stopped.
    Cycle guard = 60000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsInFlight(), 0u) << "deadlock or packet loss";
    EXPECT_EQ(net.packetsDelivered(), injected);
    EXPECT_GT(injected, 100u);
}

/** Every packet's network latency is at least the contention-free
 *  minimum. */
TEST_P(NetworkProperties, LatencyLowerBound)
{
    const PropertyCase &pc = GetParam();
    NetworkConfig cfg = makeLayoutConfig(pc.layout);

    struct Checker : NetworkClient
    {
        int violations = 0;
        int delivered = 0;
        void
        onPacketDelivered(Network &net, Packet &pkt, Cycle) override
        {
            ++delivered;
            Cycle min = net.minTransferCycles(pkt.src, pkt.dst,
                                              pkt.numFlits);
            if (pkt.networkLatency() + pkt.queuingLatency() <
                min - 1)
                ++violations;
        }
    } checker;

    Network net(cfg);
    net.setClient(&checker);
    TrafficGenerator gen(pc.pattern, 64, 8, 7);
    for (Cycle t = 0; t < 2500; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, pc.rate, t)) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
    }
    EXPECT_EQ(checker.violations, 0);
    EXPECT_GT(checker.delivered, 50);
}

/** Identical seeds must reproduce identical aggregate results. */
TEST_P(NetworkProperties, DeterministicReplay)
{
    const PropertyCase &pc = GetParam();
    SimPointOptions opts;
    opts.injectionRate = pc.rate;
    opts.warmupCycles = 1000;
    opts.measureCycles = 3000;
    opts.drainCycles = 6000;
    opts.seed = 1234;
    NetworkConfig cfg = makeLayoutConfig(pc.layout);
    SimPointResult a = runOpenLoop(cfg, pc.pattern, opts);
    SimPointResult b = runOpenLoop(cfg, pc.pattern, opts);
    EXPECT_EQ(a.trackedCreated, b.trackedCreated);
    EXPECT_EQ(a.trackedDelivered, b.trackedDelivered);
    EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs);
    EXPECT_DOUBLE_EQ(a.networkPowerW, b.networkPowerW);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndPatterns, NetworkProperties,
    ::testing::Values(
        PropertyCase{LayoutKind::Baseline,
                     TrafficPattern::UniformRandom, 0.03},
        PropertyCase{LayoutKind::Baseline, TrafficPattern::Transpose,
                     0.03},
        PropertyCase{LayoutKind::Baseline,
                     TrafficPattern::BitComplement, 0.02},
        PropertyCase{LayoutKind::CenterB,
                     TrafficPattern::UniformRandom, 0.03},
        PropertyCase{LayoutKind::Row25B,
                     TrafficPattern::NearestNeighbor, 0.04},
        PropertyCase{LayoutKind::DiagonalB,
                     TrafficPattern::SelfSimilar, 0.02},
        PropertyCase{LayoutKind::CenterBL,
                     TrafficPattern::UniformRandom, 0.03},
        PropertyCase{LayoutKind::Row25BL, TrafficPattern::Transpose,
                     0.02},
        PropertyCase{LayoutKind::DiagonalBL,
                     TrafficPattern::UniformRandom, 0.03},
        PropertyCase{LayoutKind::DiagonalBL,
                     TrafficPattern::NearestNeighbor, 0.04},
        PropertyCase{LayoutKind::DiagonalBL,
                     TrafficPattern::SelfSimilar, 0.02},
        PropertyCase{LayoutKind::DiagonalBL,
                     TrafficPattern::BitComplement, 0.02}),
    caseName);

/** Torus networks with dateline VCs drain under all-to-all stress. */
TEST(TorusProperties, WrapTrafficDrains)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.topology = TopologyType::Torus;
    Network net(cfg);
    // Bit-complement on a torus exercises the wrap links heavily.
    for (int round = 0; round < 20; ++round) {
        for (NodeId n = 0; n < 64; ++n)
            net.enqueuePacket(n, 63 - n, cfg.dataPacketFlits());
        net.run(100);
    }
    Cycle guard = 60000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsInFlight(), 0u);
}

/** Table routing with escape VCs never deadlocks under load. */
TEST(TableRoutingProperties, DrainsUnderLoad)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.routing = RoutingMode::TableXY;
    cfg.tableRoutedNodes = {0, 7, 56, 63};
    Network net(cfg);
    TrafficGenerator gen(TrafficPattern::UniformRandom, 64, 8, 21);
    std::uint64_t injected = 0;
    for (Cycle t = 0; t < 4000; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (gen.shouldInject(n, 0.04, t)) {
                NodeId dst = gen.pickDest(n);
                if (dst == INVALID_NODE)
                    continue;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                ++injected;
            }
        }
        // Corner nodes also fire table-routed packets.
        if (t % 3 == 0)
            for (NodeId c : {0, 7, 56, 63}) {
                auto dst = static_cast<NodeId>((t / 3 + c) % 64);
                if (dst != c) {
                    net.enqueuePacket(c, dst, cfg.dataPacketFlits());
                    ++injected;
                }
            }
        net.step();
    }
    Cycle guard = 100000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_EQ(net.packetsDelivered(), injected);
}

} // namespace
} // namespace hnoc
