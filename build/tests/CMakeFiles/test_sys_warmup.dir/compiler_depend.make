# Empty compiler generated dependencies file for test_sys_warmup.
# This may be replaced when dependencies are built.
