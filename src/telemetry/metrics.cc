#include "telemetry/metrics.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "telemetry/json_writer.hh"

namespace hnoc
{

namespace
{

constexpr MetricInfo kCtrInfo[] = {
    {"buffer_writes", MetricScope::RouterPortVc,
     "flits written into input buffers"},
    {"buffer_reads", MetricScope::RouterPort,
     "flits read out during switch traversal"},
    {"xbar_grants", MetricScope::RouterPort,
     "switch-allocator grants per output port"},
    {"credit_stalls", MetricScope::RouterPort,
     "switch requests blocked on zero downstream credits"},
    {"va_conflicts", MetricScope::RouterPortVc,
     "VC-allocation attempts that found no free downstream VC"},
    {"link_flits", MetricScope::RouterPort,
     "flits sent on the output channel"},
    {"link_paired", MetricScope::RouterPort,
     "cycles a wide link carried a second combined flit"},
    {"occupancy_flit_cycles", MetricScope::Router,
     "sum over cycles of buffered flits"},
    {"packets_injected", MetricScope::Global,
     "packets entering a source queue"},
    {"packets_delivered", MetricScope::Global,
     "packets fully ejected at their destination"},
    {"flits_ejected", MetricScope::Global,
     "flits delivered to destination interfaces"},
};
static_assert(sizeof(kCtrInfo) / sizeof(kCtrInfo[0]) ==
              static_cast<std::size_t>(Ctr::NumCtrs));

constexpr MetricInfo kGaugeInfo[] = {
    {"peak_occupancy", MetricScope::Router,
     "maximum buffered flits observed in one cycle"},
    {"peak_in_flight", MetricScope::Global,
     "maximum live packets network-wide"},
};
static_assert(sizeof(kGaugeInfo) / sizeof(kGaugeInfo[0]) ==
              static_cast<std::size_t>(Gauge::NumGauges));

constexpr MetricInfo kHistInfo[] = {
    {"packet_latency_cycles", MetricScope::Global,
     "per-packet created->ejected latency"},
    {"network_latency_cycles", MetricScope::Global,
     "per-packet injected->ejected latency"},
};
static_assert(sizeof(kHistInfo) / sizeof(kHistInfo[0]) ==
              static_cast<std::size_t>(Hist::NumHists));

} // namespace

const MetricInfo &
counterInfo(Ctr c)
{
    return kCtrInfo[static_cast<std::size_t>(c)];
}

const MetricInfo &
gaugeInfo(Gauge g)
{
    return kGaugeInfo[static_cast<std::size_t>(g)];
}

const MetricInfo &
histogramInfo(Hist h)
{
    return kHistInfo[static_cast<std::size_t>(h)];
}

MetricRegistry::MetricRegistry(const Dims &dims, Cycle epoch_cycles)
    : dims_(dims), epochCycles_(epoch_cycles)
{
    if (dims_.routers <= 0 || dims_.ports <= 0 || dims_.vcs <= 0)
        panic("MetricRegistry: invalid dims %dx%dx%d", dims_.routers,
              dims_.ports, dims_.vcs);
    if (epochCycles_ == 0)
        panic("MetricRegistry: epoch length must be >= 1");
    if (dims_.gridCols <= 0)
        dims_.gridCols = dims_.routers; // degenerate single-row grid

    for (std::size_t c = 0; c < counters_.size(); ++c)
        counters_[c].assign(
            scopeSize(kCtrInfo[c].scope), 0);
    for (std::size_t g = 0; g < gauges_.size(); ++g)
        gauges_[g].assign(scopeSize(kGaugeInfo[g].scope), 0);

    // Latency histograms: 1-cycle buckets would be exact but large;
    // 4-cycle buckets over [0, 4096) keep percentiles tight for every
    // workload the benches run.
    hists_.reserve(static_cast<std::size_t>(Hist::NumHists));
    for (int h = 0; h < static_cast<int>(Hist::NumHists); ++h)
        hists_.emplace_back(0.0, 4096.0, 1024);

    bufferCapacity_.assign(static_cast<std::size_t>(dims_.routers), 0);
    portLanes_.assign(
        static_cast<std::size_t>(dims_.routers * dims_.ports), 0);
    portInterRouter_.assign(
        static_cast<std::size_t>(dims_.routers * dims_.ports), 0);

    auto n = static_cast<std::size_t>(dims_.routers);
    lastOccupancy_.assign(n, 0);
    lastLinkFlits_.assign(n, 0);
    lastFlitsRouted_.assign(n, 0);
}

std::size_t
MetricRegistry::scopeSize(MetricScope s) const
{
    switch (s) {
    case MetricScope::Global:
        return 1;
    case MetricScope::Router:
        return static_cast<std::size_t>(dims_.routers);
    case MetricScope::RouterPort:
        return static_cast<std::size_t>(dims_.routers * dims_.ports);
    case MetricScope::RouterPortVc:
        return static_cast<std::size_t>(dims_.routers * dims_.ports *
                                        dims_.vcs);
    }
    return 1;
}

void
MetricRegistry::setBufferCapacity(int r, int slots)
{
    bufferCapacity_[static_cast<std::size_t>(r)] = slots;
}

void
MetricRegistry::setPortLanes(int r, int p, int lanes)
{
    portLanes_[static_cast<std::size_t>(r * dims_.ports + p)] = lanes;
}

void
MetricRegistry::setPortInterRouter(int r, int p, bool inter)
{
    portInterRouter_[static_cast<std::size_t>(r * dims_.ports + p)] =
        inter ? 1 : 0;
}

void
MetricRegistry::beginWindow(Cycle start)
{
    windowStart_ = start;
}

std::uint64_t
MetricRegistry::total(Ctr c) const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : counters_[static_cast<std::size_t>(c)])
        sum += v;
    return sum;
}

std::uint64_t
MetricRegistry::at(Ctr c, int r) const
{
    return counters_[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(r)];
}

std::uint64_t
MetricRegistry::at(Ctr c, int r, int p) const
{
    return counters_[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(r * dims_.ports + p)];
}

std::uint64_t
MetricRegistry::at(Ctr c, int r, int p, int v) const
{
    return counters_[static_cast<std::size_t>(c)][static_cast<std::size_t>(
        (r * dims_.ports + p) * dims_.vcs + v)];
}

std::uint64_t
MetricRegistry::gauge(Gauge g, int r) const
{
    return gauges_[static_cast<std::size_t>(g)]
                  [static_cast<std::size_t>(r)];
}

const Histogram &
MetricRegistry::histogram(Hist h) const
{
    return hists_[static_cast<std::size_t>(h)];
}

std::vector<std::uint64_t>
MetricRegistry::perRouter(Ctr c) const
{
    const auto &info = counterInfo(c);
    const auto &vals = counters_[static_cast<std::size_t>(c)];
    std::vector<std::uint64_t> out(
        static_cast<std::size_t>(dims_.routers), 0);
    switch (info.scope) {
    case MetricScope::Global:
        break; // no per-router view
    case MetricScope::Router:
        out = vals;
        break;
    case MetricScope::RouterPort:
    case MetricScope::RouterPortVc: {
        std::size_t stride = vals.size() / out.size();
        for (std::size_t r = 0; r < out.size(); ++r)
            for (std::size_t i = 0; i < stride; ++i)
                out[r] += vals[r * stride + i];
        break;
    }
    }
    return out;
}

const std::vector<std::uint64_t> &
MetricRegistry::values(Ctr c) const
{
    return counters_[static_cast<std::size_t>(c)];
}

std::vector<double>
MetricRegistry::bufferUtilizationPercent() const
{
    std::vector<double> util(static_cast<std::size_t>(dims_.routers),
                             0.0);
    double cycles = static_cast<double>(observedCycles_);
    if (cycles <= 0.0)
        return util;
    for (int r = 0; r < dims_.routers; ++r) {
        double cap =
            static_cast<double>(bufferCapacity_[static_cast<std::size_t>(r)]);
        if (cap <= 0.0)
            continue;
        util[static_cast<std::size_t>(r)] =
            100.0 *
            static_cast<double>(at(Ctr::OccupancyFlitCycles, r)) /
            (cap * cycles);
    }
    return util;
}

std::vector<double>
MetricRegistry::linkUtilizationPercent() const
{
    std::vector<double> util(static_cast<std::size_t>(dims_.routers),
                             0.0);
    double cycles = static_cast<double>(observedCycles_);
    if (cycles <= 0.0)
        return util;
    for (int r = 0; r < dims_.routers; ++r) {
        double sum = 0.0;
        int count = 0;
        for (int p = 0; p < dims_.ports; ++p) {
            std::size_t idx =
                static_cast<std::size_t>(r * dims_.ports + p);
            if (!portInterRouter_[idx] || portLanes_[idx] <= 0)
                continue;
            sum += 100.0 * static_cast<double>(at(Ctr::LinkFlits, r, p)) /
                   (static_cast<double>(portLanes_[idx]) * cycles);
            ++count;
        }
        if (count > 0)
            util[static_cast<std::size_t>(r)] = sum / count;
    }
    return util;
}

double
MetricRegistry::combineRate() const
{
    // Busy cycles of wide links = flits - paired (each paired cycle
    // carries two flits but occupies one cycle).
    std::uint64_t flits = 0;
    std::uint64_t paired = 0;
    for (int r = 0; r < dims_.routers; ++r) {
        for (int p = 0; p < dims_.ports; ++p) {
            std::size_t idx =
                static_cast<std::size_t>(r * dims_.ports + p);
            if (portLanes_[idx] < 2)
                continue;
            flits += at(Ctr::LinkFlits, r, p);
            paired += at(Ctr::LinkPaired, r, p);
        }
    }
    std::uint64_t busy = flits - paired;
    return busy ? static_cast<double>(paired) / static_cast<double>(busy)
                : 0.0;
}

void
MetricRegistry::rollEpoch()
{
    EpochRow row;
    row.cycles = cyclesInEpoch_;
    auto n = static_cast<std::size_t>(dims_.routers);
    row.occupancyFlitCycles.resize(n);
    row.linkFlits.resize(n);
    row.flitsRouted.resize(n);

    std::vector<std::uint64_t> link = perRouter(Ctr::LinkFlits);
    std::vector<std::uint64_t> routed = perRouter(Ctr::BufferReads);
    for (std::size_t r = 0; r < n; ++r) {
        std::uint64_t occ = at(Ctr::OccupancyFlitCycles,
                               static_cast<int>(r));
        row.occupancyFlitCycles[r] = occ - lastOccupancy_[r];
        row.linkFlits[r] = link[r] - lastLinkFlits_[r];
        row.flitsRouted[r] = routed[r] - lastFlitsRouted_[r];
        lastOccupancy_[r] = occ;
        lastLinkFlits_[r] = link[r];
        lastFlitsRouted_[r] = routed[r];
    }
    epochs_.push_back(std::move(row));
    cyclesInEpoch_ = 0;
}

void
MetricRegistry::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (cyclesInEpoch_ > 0)
        rollEpoch();
}

std::vector<double>
MetricRegistry::epochBufferUtilizationPercent(std::size_t e) const
{
    const EpochRow &row = epochs_.at(e);
    std::vector<double> util(row.occupancyFlitCycles.size(), 0.0);
    if (row.cycles == 0)
        return util;
    for (std::size_t r = 0; r < util.size(); ++r) {
        double cap = static_cast<double>(bufferCapacity_[r]);
        if (cap > 0.0)
            util[r] = 100.0 *
                      static_cast<double>(row.occupancyFlitCycles[r]) /
                      (cap * static_cast<double>(row.cycles));
    }
    return util;
}

std::vector<double>
MetricRegistry::epochLinkFlitsPerCycle(std::size_t e) const
{
    const EpochRow &row = epochs_.at(e);
    std::vector<double> out(row.linkFlits.size(), 0.0);
    if (row.cycles == 0)
        return out;
    for (std::size_t r = 0; r < out.size(); ++r)
        out[r] = static_cast<double>(row.linkFlits[r]) /
                 static_cast<double>(row.cycles);
    return out;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    if (dims_.routers != other.dims_.routers ||
        dims_.ports != other.dims_.ports || dims_.vcs != other.dims_.vcs)
        panic("MetricRegistry::merge: dims mismatch (%dx%dx%d vs "
              "%dx%dx%d)",
              dims_.routers, dims_.ports, dims_.vcs, other.dims_.routers,
              other.dims_.ports, other.dims_.vcs);
    if (epochCycles_ != other.epochCycles_)
        panic("MetricRegistry::merge: epoch mismatch (%llu vs %llu)",
              static_cast<unsigned long long>(epochCycles_),
              static_cast<unsigned long long>(other.epochCycles_));

    for (std::size_t c = 0; c < counters_.size(); ++c)
        for (std::size_t i = 0; i < counters_[c].size(); ++i)
            counters_[c][i] += other.counters_[c][i];
    for (std::size_t g = 0; g < gauges_.size(); ++g)
        for (std::size_t i = 0; i < gauges_[g].size(); ++i)
            gauges_[g][i] = std::max(gauges_[g][i], other.gauges_[g][i]);
    for (std::size_t h = 0; h < hists_.size(); ++h)
        hists_[h].merge(other.hists_[h]);

    // Adopt metadata from the other side where ours is unset (merging
    // into a default-constructed accumulator).
    for (std::size_t i = 0; i < bufferCapacity_.size(); ++i)
        if (bufferCapacity_[i] == 0)
            bufferCapacity_[i] = other.bufferCapacity_[i];
    for (std::size_t i = 0; i < portLanes_.size(); ++i) {
        if (portLanes_[i] == 0)
            portLanes_[i] = other.portLanes_[i];
        if (!portInterRouter_[i])
            portInterRouter_[i] = other.portInterRouter_[i];
    }

    // Epoch rows add element-wise; a longer series keeps its tail.
    if (other.epochs_.size() > epochs_.size())
        epochs_.resize(other.epochs_.size());
    auto n = static_cast<std::size_t>(dims_.routers);
    for (std::size_t e = 0; e < other.epochs_.size(); ++e) {
        EpochRow &dst = epochs_[e];
        const EpochRow &src = other.epochs_[e];
        if (dst.occupancyFlitCycles.empty()) {
            dst.occupancyFlitCycles.assign(n, 0);
            dst.linkFlits.assign(n, 0);
            dst.flitsRouted.assign(n, 0);
        }
        dst.cycles += src.cycles;
        for (std::size_t r = 0; r < n; ++r) {
            dst.occupancyFlitCycles[r] += src.occupancyFlitCycles[r];
            dst.linkFlits[r] += src.linkFlits[r];
            dst.flitsRouted[r] += src.flitsRouted[r];
        }
    }

    observedCycles_ += other.observedCycles_;
    windowStart_ = std::min(windowStart_, other.windowStart_);
}

std::uint64_t
MetricRegistry::footprintBytes() const
{
    std::uint64_t b = sizeof(*this);
    for (const auto &vec : counters_)
        b += vec.capacity() * sizeof(std::uint64_t);
    for (const auto &vec : gauges_)
        b += vec.capacity() * sizeof(std::uint64_t);
    b += hists_.capacity() * sizeof(Histogram);
    b += bufferCapacity_.capacity() * sizeof(int);
    b += portLanes_.capacity() * sizeof(int);
    b += portInterRouter_.capacity() * sizeof(std::uint8_t);
    b += epochs_.capacity() * sizeof(EpochRow);
    for (const EpochRow &row : epochs_) {
        b += row.occupancyFlitCycles.capacity() * sizeof(std::uint64_t);
        b += row.linkFlits.capacity() * sizeof(std::uint64_t);
        b += row.flitsRouted.capacity() * sizeof(std::uint64_t);
    }
    b += lastOccupancy_.capacity() * sizeof(std::uint64_t);
    b += lastLinkFlits_.capacity() * sizeof(std::uint64_t);
    b += lastFlitsRouted_.capacity() * sizeof(std::uint64_t);
    return b;
}

void
MetricRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.keyValue("epoch_cycles", static_cast<std::uint64_t>(epochCycles_));
    w.keyValue("observed_cycles",
               static_cast<std::uint64_t>(observedCycles_));
    w.keyValue("window_start", static_cast<std::uint64_t>(windowStart_));

    w.key("dims").beginObject();
    w.keyValue("routers", dims_.routers);
    w.keyValue("ports", dims_.ports);
    w.keyValue("vcs", dims_.vcs);
    w.keyValue("grid_cols", dims_.gridCols);
    w.endObject();

    w.key("counters").beginObject();
    for (int c = 0; c < static_cast<int>(Ctr::NumCtrs); ++c) {
        auto ctr = static_cast<Ctr>(c);
        const MetricInfo &info = counterInfo(ctr);
        w.key(info.name).beginObject();
        w.keyValue("scope",
                   info.scope == MetricScope::Global ? "global"
                   : info.scope == MetricScope::Router ? "router"
                   : info.scope == MetricScope::RouterPort
                       ? "router.port"
                       : "router.port.vc");
        w.keyValue("help", info.help);
        w.keyValue("total", total(ctr));
        if (info.scope != MetricScope::Global)
            w.keyArray("per_router", perRouter(ctr));
        if (info.scope == MetricScope::RouterPort ||
            info.scope == MetricScope::RouterPortVc)
            w.keyArray("values", values(ctr));
        w.endObject();
    }
    w.endObject();

    w.key("gauges").beginObject();
    for (int g = 0; g < static_cast<int>(Gauge::NumGauges); ++g) {
        auto gg = static_cast<Gauge>(g);
        const MetricInfo &info = gaugeInfo(gg);
        w.key(info.name).beginObject();
        w.keyValue("help", info.help);
        if (info.scope == MetricScope::Global) {
            w.keyValue("value", gauge(gg));
        } else {
            w.keyArray("per_router",
                       gauges_[static_cast<std::size_t>(g)]);
        }
        w.endObject();
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (int h = 0; h < static_cast<int>(Hist::NumHists); ++h) {
        auto hh = static_cast<Hist>(h);
        const Histogram &hist = histogram(hh);
        w.key(histogramInfo(hh).name).beginObject();
        w.keyValue("count", hist.count());
        w.keyValue("mean", hist.mean());
        w.keyValue("p50", hist.percentile(0.50));
        w.keyValue("p95", hist.percentile(0.95));
        w.keyValue("p99", hist.percentile(0.99));
        w.keyArray("buckets", hist.buckets());
        w.endObject();
    }
    w.endObject();

    w.key("derived").beginObject();
    w.keyArray("buffer_util_pct", bufferUtilizationPercent());
    w.keyArray("link_util_pct", linkUtilizationPercent());
    w.keyValue("combine_rate", combineRate());
    w.endObject();

    w.key("epochs").beginObject();
    {
        std::vector<std::uint64_t> cyc;
        cyc.reserve(epochs_.size());
        for (const EpochRow &e : epochs_)
            cyc.push_back(e.cycles);
        w.keyArray("cycles", cyc);
    }
    w.key("occupancy_flit_cycles").beginArray();
    for (const EpochRow &e : epochs_) {
        w.beginArray();
        for (std::uint64_t v : e.occupancyFlitCycles)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.key("link_flits").beginArray();
    for (const EpochRow &e : epochs_) {
        w.beginArray();
        for (std::uint64_t v : e.linkFlits)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.key("flits_routed").beginArray();
    for (const EpochRow &e : epochs_) {
        w.beginArray();
        for (std::uint64_t v : e.flitsRouted)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();

    w.endObject();
}

std::string
MetricRegistry::json() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

std::string
MetricRegistry::summary(int top_n) const
{
    char buf[160];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "telemetry: %llu cycles observed, %zu epochs\n",
                  static_cast<unsigned long long>(observedCycles_),
                  epochs_.size());
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "packets injected/delivered: %llu / %llu (peak in flight %llu)\n",
        static_cast<unsigned long long>(total(Ctr::PacketsInjected)),
        static_cast<unsigned long long>(total(Ctr::PacketsDelivered)),
        static_cast<unsigned long long>(gauge(Gauge::PeakInFlight)));
    out += buf;

    // Hottest routers by cumulative occupancy; the first places to
    // look when a run stalls.
    std::vector<int> order(static_cast<std::size_t>(dims_.routers));
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return at(Ctr::OccupancyFlitCycles, a) >
               at(Ctr::OccupancyFlitCycles, b);
    });
    out += "hottest routers (occupancy flit-cycles | credit stalls | "
           "VA conflicts | peak occ):\n";
    std::vector<std::uint64_t> stalls = perRouter(Ctr::CreditStalls);
    std::vector<std::uint64_t> conflicts = perRouter(Ctr::VaConflicts);
    for (int i = 0; i < top_n && i < dims_.routers; ++i) {
        int r = order[static_cast<std::size_t>(i)];
        std::snprintf(
            buf, sizeof(buf),
            "  router %2d: %10llu | %8llu | %8llu | %4llu\n", r,
            static_cast<unsigned long long>(
                at(Ctr::OccupancyFlitCycles, r)),
            static_cast<unsigned long long>(
                stalls[static_cast<std::size_t>(r)]),
            static_cast<unsigned long long>(
                conflicts[static_cast<std::size_t>(r)]),
            static_cast<unsigned long long>(
                gauge(Gauge::PeakOccupancy, r)));
        out += buf;
    }
    return out;
}

} // namespace hnoc
