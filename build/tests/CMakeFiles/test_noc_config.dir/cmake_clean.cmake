file(REMOVE_RECURSE
  "CMakeFiles/test_noc_config.dir/noc/test_config.cc.o"
  "CMakeFiles/test_noc_config.dir/noc/test_config.cc.o.d"
  "test_noc_config"
  "test_noc_config.pdb"
  "test_noc_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
