/**
 * @file
 * Active-set scheduling hooks shared by routers, channels, and NIs.
 *
 * The Network maintains one dense busy bitmap per component kind
 * (indexed by component id) plus a population counter for the
 * all-idle fast path. Each component owns an ActivitySlot bound to
 * its bitmap cell and flips it on its own idle/busy transitions:
 *
 *  - a channel is busy while its flit or credit pipe is non-empty;
 *  - a router is busy while any input VC holds a flit (flitCount_ > 0
 *    over the SoA core's FIFOs; a flitless router has empty rcMask /
 *    vaReqMask / saReqMask request sets, so RC, VA, SA and occupancy
 *    sampling are all provably no-ops — see DESIGN.md "Active-set
 *    cycle scheduling" and "SoA router core");
 *  - an NI is busy while its source queue or an in-progress packet
 *    stream has work.
 *
 * The flags are exact, not heuristic: a wakeup is just the producer
 * side of an event (flit send, credit send, packet enqueue) marking
 * the consumer's slot busy before the consumer's next scan.
 *
 * Dense active lists (§6g): scanning the whole bitmap every cycle
 * costs O(total) even when almost everything is idle. An ActiveList
 * keeps the busy members of one bitmap as a sorted index list:
 * components append themselves on their idle→busy transition (via
 * wake hooks registered on the ActivitySlot), newly woken indices are
 * merged in canonical ascending order before each scan, and entries
 * whose busy byte has cleared are compacted out in place during the
 * scan. Iteration therefore visits — and costs — O(active), while
 * preserving the exact index order the bitmap scan used, which is
 * what bit-identity of the simulation depends on. All storage is
 * reserved once at bind time, so the steady state allocates nothing.
 */

#ifndef HNOC_NOC_ACTIVE_SET_HH
#define HNOC_NOC_ACTIVE_SET_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hnoc
{

/**
 * Sorted dense list of busy component indices for one bitmap.
 *
 * Wake protocol: wake(i) is idempotent (an in-list byte suppresses
 * duplicate appends) and O(1) — woken indices collect unsorted in a
 * pending vector. mergePending() sorts the pending batch and merges
 * it with the main list (both sorted), restoring canonical ascending
 * order; forEachActive() runs the merge, then visits members in
 * ascending index order, keeping those whose busy byte is still set
 * and dropping the rest (write-index compaction). A dropped index
 * clears its in-list byte, so a later re-wake re-appends it.
 */
class ActiveList
{
  public:
    /**
     * Size all storage once, at network construction: membership
     * bytes cover ids [0, id_space), and the member vectors hold up
     * to @p max_members entries (the ids that can ever wake this
     * list). Nothing below ever reallocates afterwards.
     */
    void
    reserve(std::size_t id_space, std::size_t max_members)
    {
        items_.clear();
        items_.reserve(max_members);
        pending_.clear();
        pending_.reserve(max_members);
        scratch_.reserve(max_members);
        inList_.assign(id_space, 0);
    }

    /** Append index @p i on its idle→busy transition (idempotent). */
    void
    wake(std::uint32_t i)
    {
        if (inList_[i] == 0) {
            inList_[i] = 1;
            pending_.push_back(i);
        }
    }

    /** Merge newly woken indices into the sorted member list. */
    void
    mergePending()
    {
        if (pending_.empty())
            return;
        std::sort(pending_.begin(), pending_.end());
        scratch_.clear();
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < items_.size() && b < pending_.size())
            scratch_.push_back(items_[a] < pending_[b] ? items_[a++]
                                                       : pending_[b++]);
        while (a < items_.size())
            scratch_.push_back(items_[a++]);
        while (b < pending_.size())
            scratch_.push_back(pending_[b++]);
        items_.swap(scratch_);
        pending_.clear();
    }

    /**
     * Visit every member whose @p busy byte is set, in ascending
     * index order; compact out members whose byte has cleared. The
     * busy check happens before the visit, so a visit that idles its
     * own component keeps the entry for one more (dropping) scan —
     * deterministic either way.
     */
    template <typename Fn>
    void
    forEachActive(const std::uint8_t *busy, Fn &&fn)
    {
        mergePending();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < items_.size(); ++i) {
            std::uint32_t id = items_[i];
            if (busy[id]) {
                fn(id);
                items_[keep++] = id;
            } else {
                inList_[id] = 0;
            }
        }
        items_.resize(keep);
    }

    /**
     * forEachActive with a one-ahead look: @p pre(next_id) runs
     * before @p fn(current_id), giving the caller a window to issue a
     * memory prefetch for the next member while the current one is
     * processed. @p pre may fire for an entry whose busy byte has
     * already cleared (a wasted prefetch, never a visible effect).
     */
    template <typename Fn, typename Pre>
    void
    forEachActive(const std::uint8_t *busy, Fn &&fn, Pre &&pre)
    {
        mergePending();
        std::size_t keep = 0;
        std::size_t n = items_.size();
        if (n > 0)
            pre(items_[0]);
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t id = items_[i];
            if (i + 1 < n)
                pre(items_[i + 1]);
            if (busy[id]) {
                fn(id);
                items_[keep++] = id;
            } else {
                inList_[id] = 0;
            }
        }
        items_.resize(keep);
    }

    /** Current member count (stale idle entries included until the
     *  next scan compacts them). */
    std::size_t size() const { return items_.size() + pending_.size(); }

    /** Steady-state storage (reserved once; memory-audit row). */
    std::uint64_t
    footprintBytes() const
    {
        return (items_.capacity() + pending_.capacity() +
                scratch_.capacity()) *
                   sizeof(std::uint32_t) +
               inList_.capacity();
    }

  private:
    std::vector<std::uint32_t> items_;   ///< sorted current members
    std::vector<std::uint32_t> pending_; ///< woken since last merge
    std::vector<std::uint32_t> scratch_; ///< merge target (swapped)
    std::vector<std::uint8_t> inList_;   ///< membership byte per index
};

/** One component's cell in the Network's dense busy bitmap, plus up
 *  to two active-list wake hooks (a channel participates in both a
 *  flit-delivery list and a credit-delivery list). */
class ActivitySlot
{
  public:
    /** Bind to @p flag inside the bitmap and the shared @p count of
     *  set flags. The storage must outlive the slot and never move. */
    void
    bind(std::uint8_t *flag, std::size_t *count)
    {
        flag_ = flag;
        count_ = count;
    }

    /** Register an active list to wake (with index @p id) on every
     *  idle→busy transition. Register hooks before bind() so a bind
     *  of an already-busy component enlists it. */
    void
    addWakeHook(ActiveList *list, std::uint32_t id)
    {
        if (hooks_[0].list == nullptr) {
            hooks_[0] = {list, id};
        } else {
            hooks_[1] = {list, id};
        }
    }

    /** Mark busy (idempotent). No-op while unbound. */
    void
    markBusy()
    {
        if (flag_ && *flag_ == 0) {
            *flag_ = 1;
            ++*count_;
            if (hooks_[0].list)
                hooks_[0].list->wake(hooks_[0].id);
            if (hooks_[1].list)
                hooks_[1].list->wake(hooks_[1].id);
        }
    }

    /** Mark idle (idempotent). No-op while unbound. */
    void
    markIdle()
    {
        if (flag_ && *flag_ != 0) {
            *flag_ = 0;
            --*count_;
        }
    }

  private:
    struct WakeHook
    {
        ActiveList *list = nullptr;
        std::uint32_t id = 0;
    };

    std::uint8_t *flag_ = nullptr;
    std::size_t *count_ = nullptr;
    WakeHook hooks_[2];
};

} // namespace hnoc

#endif // HNOC_NOC_ACTIVE_SET_HH
