file(REMOVE_RECURSE
  "CMakeFiles/hnoc_noc.dir/config_io.cc.o"
  "CMakeFiles/hnoc_noc.dir/config_io.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/network.cc.o"
  "CMakeFiles/hnoc_noc.dir/network.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/network_interface.cc.o"
  "CMakeFiles/hnoc_noc.dir/network_interface.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/router.cc.o"
  "CMakeFiles/hnoc_noc.dir/router.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/routing.cc.o"
  "CMakeFiles/hnoc_noc.dir/routing.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/sim_harness.cc.o"
  "CMakeFiles/hnoc_noc.dir/sim_harness.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/topology.cc.o"
  "CMakeFiles/hnoc_noc.dir/topology.cc.o.d"
  "CMakeFiles/hnoc_noc.dir/traffic.cc.o"
  "CMakeFiles/hnoc_noc.dir/traffic.cc.o.d"
  "libhnoc_noc.a"
  "libhnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
