# Empty compiler generated dependencies file for test_noc_routing.
# This may be replaced when dependencies are built.
