/**
 * @file
 * Heterogeneity beyond the mesh: the paper argues any non-edge-
 * symmetric network (e.g. the concentrated mesh of Fig 2a) has the
 * same non-uniform demand and can be heterogenized the same way. This
 * bench builds a 4x4 concentrated mesh (64 nodes) with the four
 * central routers big (6 VCs, 256 b) and the rest small, and compares
 * it to the homogeneous concentrated mesh.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

namespace
{

NetworkConfig
cmeshBase()
{
    NetworkConfig cfg;
    cfg.name = "cmesh-homo";
    cfg.topology = TopologyType::ConcentratedMesh;
    cfg.radixX = 4;
    cfg.radixY = 4;
    cfg.concentration = 4;
    return cfg;
}

NetworkConfig
cmeshHetero()
{
    NetworkConfig cfg = cmeshBase();
    cfg.name = "cmesh-hetero";
    cfg.flitWidthBits = 128;
    cfg.linkWidthMode = LinkWidthMode::EndpointMax;
    cfg.routerVcs.assign(16, 2);
    cfg.routerWidthBits.assign(16, 128);
    for (int r : {5, 6, 9, 10}) { // central 2x2
        cfg.routerVcs[static_cast<std::size_t>(r)] = 6;
        cfg.routerWidthBits[static_cast<std::size_t>(r)] = 256;
    }
    return cfg;
}

} // namespace

int
main()
{
    printHeader("Extension",
                "heterogeneous concentrated mesh (4x4, conc. 4)");

    const std::vector<double> rates = {0.005, 0.010, 0.015, 0.020,
                                       0.025, 0.030, 0.035};
    SimPointOptions opts;
    opts.warmupCycles = 6000;
    opts.measureCycles = 12000;
    opts.drainCycles = 24000;

    for (const NetworkConfig &cfg : {cmeshBase(), cmeshHetero()}) {
        auto curve =
            sweepLoad(cfg, TrafficPattern::UniformRandom, rates, opts);
        std::printf("%-14s", cfg.name.c_str());
        for (const auto &p : curve)
            std::printf(" %7.1f%s", std::min(p.avgLatencyNs, 9999.0),
                        p.saturated ? "*" : " ");
        std::printf("  sat=%.4f P@0.02=%.1fW\n",
                    saturationThroughput(curve),
                    curve[3].networkPowerW);
    }
    std::printf("\n(rates in packets/node/cycle; latency ns; power at "
                "0.02)\n");
    return 0;
}
