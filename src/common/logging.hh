/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * configuration errors (clean exit); warn()/inform() never stop the run.
 */

#ifndef HNOC_COMMON_LOGGING_HH
#define HNOC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hnoc
{

/** Print an error for an internal invariant violation and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error caused by bad user input/configuration and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Globally silence warn()/inform() output (used by tests and benches
 * that sweep thousands of configurations).
 */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool isQuiet();

} // namespace hnoc

#endif // HNOC_COMMON_LOGGING_HH
