file(REMOVE_RECURSE
  "CMakeFiles/fig09_nn_traffic.dir/fig09_nn_traffic.cc.o"
  "CMakeFiles/fig09_nn_traffic.dir/fig09_nn_traffic.cc.o.d"
  "fig09_nn_traffic"
  "fig09_nn_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nn_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
