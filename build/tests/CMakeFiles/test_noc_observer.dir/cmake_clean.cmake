file(REMOVE_RECURSE
  "CMakeFiles/test_noc_observer.dir/noc/test_observer.cc.o"
  "CMakeFiles/test_noc_observer.dir/noc/test_observer.cc.o.d"
  "test_noc_observer"
  "test_noc_observer.pdb"
  "test_noc_observer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
