# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_noc_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_noc_topology[1]_include.cmake")
include("/root/repo/build/tests/test_noc_routing[1]_include.cmake")
include("/root/repo/build/tests/test_noc_router[1]_include.cmake")
include("/root/repo/build/tests/test_noc_properties[1]_include.cmake")
include("/root/repo/build/tests/test_hetero_layout[1]_include.cmake")
include("/root/repo/build/tests/test_sys_cmp[1]_include.cmake")
include("/root/repo/build/tests/test_integration_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_common_report[1]_include.cmake")
include("/root/repo/build/tests/test_sys_cache[1]_include.cmake")
include("/root/repo/build/tests/test_sys_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_hetero_dse[1]_include.cmake")
include("/root/repo/build/tests/test_noc_harness[1]_include.cmake")
include("/root/repo/build/tests/test_noc_observer[1]_include.cmake")
include("/root/repo/build/tests/test_noc_watchdog[1]_include.cmake")
include("/root/repo/build/tests/test_noc_radix[1]_include.cmake")
include("/root/repo/build/tests/test_noc_failures[1]_include.cmake")
include("/root/repo/build/tests/test_noc_config[1]_include.cmake")
include("/root/repo/build/tests/test_integration_golden[1]_include.cmake")
include("/root/repo/build/tests/test_sys_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_noc_config_io[1]_include.cmake")
include("/root/repo/build/tests/test_sys_msg_counts[1]_include.cmake")
include("/root/repo/build/tests/test_hetero_constraints_extra[1]_include.cmake")
include("/root/repo/build/tests/test_noc_wide_path[1]_include.cmake")
include("/root/repo/build/tests/test_integration_cross[1]_include.cmake")
include("/root/repo/build/tests/test_sys_warmup[1]_include.cmake")
