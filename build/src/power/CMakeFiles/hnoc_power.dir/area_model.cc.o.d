src/power/CMakeFiles/hnoc_power.dir/area_model.cc.o: \
 /root/repo/src/power/area_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/power/area_model.hh /root/repo/src/power/router_params.hh
