/**
 * @file
 * Topology invariants: peer symmetry, degree, node attachment and
 * bisection enumeration for all four topologies.
 */

#include <gtest/gtest.h>

#include <set>

#include "noc/topology.hh"

namespace hnoc
{
namespace
{

NetworkConfig
configFor(TopologyType type, int rx, int ry, int conc)
{
    NetworkConfig cfg;
    cfg.topology = type;
    cfg.radixX = rx;
    cfg.radixY = ry;
    cfg.concentration = conc;
    return cfg;
}

class TopologySymmetry
    : public ::testing::TestWithParam<NetworkConfig>
{};

TEST_P(TopologySymmetry, PeersAreMutual)
{
    auto topo = Topology::create(GetParam());
    for (RouterId r = 0; r < topo->numRouters(); ++r) {
        for (PortId p = 0; p < topo->numDirPorts(); ++p) {
            const PortPeer &peer = topo->peer(r, p);
            if (peer.router == INVALID_ROUTER)
                continue;
            const PortPeer &back = topo->peer(peer.router, peer.port);
            EXPECT_EQ(back.router, r)
                << "router " << r << " port " << p;
            EXPECT_EQ(back.port, p);
        }
    }
}

TEST_P(TopologySymmetry, NodesMapToLocalPorts)
{
    auto topo = Topology::create(GetParam());
    for (NodeId n = 0; n < topo->numNodes(); ++n) {
        RouterId r = topo->routerOfNode(n);
        PortId lp = topo->localPortOfNode(n);
        EXPECT_GE(lp, topo->numDirPorts());
        EXPECT_LT(lp, topo->portsPerRouter());
        EXPECT_EQ(topo->nodeAt(r, lp), n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologySymmetry,
    ::testing::Values(
        configFor(TopologyType::Mesh, 8, 8, 1),
        configFor(TopologyType::Mesh, 4, 4, 1),
        configFor(TopologyType::Torus, 8, 8, 1),
        configFor(TopologyType::Torus, 4, 4, 1),
        configFor(TopologyType::ConcentratedMesh, 4, 4, 4),
        configFor(TopologyType::FlattenedButterfly, 4, 4, 4)));

TEST(Topology, MeshEdgesUnconnected)
{
    auto topo =
        Topology::create(configFor(TopologyType::Mesh, 8, 8, 1));
    using namespace mesh_ports;
    EXPECT_EQ(topo->peer(0, NORTH).router, INVALID_ROUTER);
    EXPECT_EQ(topo->peer(0, WEST).router, INVALID_ROUTER);
    EXPECT_EQ(topo->peer(63, SOUTH).router, INVALID_ROUTER);
    EXPECT_EQ(topo->peer(63, EAST).router, INVALID_ROUTER);
    EXPECT_EQ(topo->peer(0, EAST).router, 1);
    EXPECT_EQ(topo->peer(0, SOUTH).router, 8);
}

TEST(Topology, TorusWrapsMarked)
{
    auto topo =
        Topology::create(configFor(TopologyType::Torus, 8, 8, 1));
    using namespace mesh_ports;
    const PortPeer &west_of_0 = topo->peer(0, WEST);
    EXPECT_EQ(west_of_0.router, 7);
    EXPECT_TRUE(west_of_0.wrapX);
    const PortPeer &north_of_0 = topo->peer(0, NORTH);
    EXPECT_EQ(north_of_0.router, 56);
    EXPECT_TRUE(north_of_0.wrapY);
    EXPECT_FALSE(topo->peer(0, EAST).wrapX);
}

TEST(Topology, FlatFlyFullRowColumnConnectivity)
{
    auto topo = Topology::create(
        configFor(TopologyType::FlattenedButterfly, 4, 4, 4));
    EXPECT_EQ(topo->numDirPorts(), 6); // 3 row + 3 column
    EXPECT_EQ(topo->numRouters(), 16);
    EXPECT_EQ(topo->numNodes(), 64);
    // Router (0,0) must reach all of row 0 and column 0 in one hop.
    std::set<RouterId> neighbors;
    for (PortId p = 0; p < 6; ++p)
        neighbors.insert(topo->peer(0, p).router);
    EXPECT_EQ(neighbors,
              (std::set<RouterId>{1, 2, 3, 4, 8, 12}));
}

TEST(Topology, MeshBisectionCount)
{
    auto topo =
        Topology::create(configFor(TopologyType::Mesh, 8, 8, 1));
    EXPECT_EQ(topo->bisectionLinks().size(), 8u);
}

TEST(Topology, TorusBisectionIncludesWraps)
{
    auto topo =
        Topology::create(configFor(TopologyType::Torus, 8, 8, 1));
    EXPECT_EQ(topo->bisectionLinks().size(), 16u);
}

TEST(Topology, FlatFlyBisectionCount)
{
    auto topo = Topology::create(
        configFor(TopologyType::FlattenedButterfly, 4, 4, 4));
    // 2x2 column pairs crossing the cut per row, 4 rows.
    EXPECT_EQ(topo->bisectionLinks().size(), 16u);
}

} // namespace
} // namespace hnoc
