#!/usr/bin/env python3
"""Distill google-benchmark JSON into a compact perf-trajectory snapshot.

    make_perf_trajectory.py BENCH_micro.json [BENCH_scaling.json ...] \
        -o BENCH_trajectory.json [--off off.json] [--meta key=value ...]

Reads one or more --benchmark_out files (the HNOC_TELEMETRY=ON build;
extra inputs — e.g. the scaling_curve suite — are merged into the same
benchmark map, and inputs beyond the first may be absent) and writes
`hnoc-perf-trajectory-v1` JSON: per-benchmark median/min real_time over
repetitions (plus any user counters), plus — when --off supplies the
HNOC_TELEMETRY=OFF run of the same suite — the telemetry hot-path
overhead percentage that the CI regression gate enforces. When the
input contains stepLoad A/B pairs (`stepLoad/<case>_active` vs
`stepLoad/<case>_always`), a `scheduler_speedup` map records the
active-set speedup per case. When it contains the adaptiveSweep pair
(`adaptiveSweep/fig07_ur_reference` vs `.../fig07_ur_adaptive`), an
`adaptive_cycles_saved` block records the simulated-cycle savings and
latency drift of the adaptive simulation controller. When it contains
the bitmask-arbiter microbenches (`arbiter/dense_reqs`,
`arbiter/sparse_reqs`), an `arbiter` block surfaces their per-cycle
cost so VA/SA-level regressions are visible without digging through
the whole-network stepLoad numbers. When it contains the scaling_curve
suite (`scaling/<layout>_<radix>`), a `scaling` block records the
ns/cycle/tile and bytes/tile curve over mesh sizes — the committed
simulator-cost scaling curve of docs/REPRODUCING.md. The output is
small and stable, meant to be committed or archived per PR so perf
history survives CI log rotation.

Exit status: 0 on success, 2 on missing/malformed input.
"""

import argparse
import json
import statistics
import sys


# Google-benchmark entry keys that are not user counters.
_STANDARD_KEYS = frozenset(
    {
        "name",
        "run_name",
        "run_type",
        "family_index",
        "per_family_instance_index",
        "repetitions",
        "repetition_index",
        "threads",
        "iterations",
        "real_time",
        "cpu_time",
        "time_unit",
        "items_per_second",
        "bytes_per_second",
        "label",
        "aggregate_name",
        "aggregate_unit",
    }
)


def load_series(path):
    """Map benchmark run_name -> list of per-repetition real_time."""
    return _load(path)[0]


def _load(path):
    """(run_name -> [real_time...], run_name -> {counter: value})."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.stderr.write(f"error: cannot read {path}: {e}\n")
        sys.exit(2)
    except ValueError as e:
        sys.stderr.write(f"error: {path} is not valid JSON: {e}\n")
        sys.exit(2)
    runs = doc.get("benchmarks") if isinstance(doc, dict) else None
    if not isinstance(runs, list):
        sys.stderr.write(
            f"error: {path}: expected google-benchmark JSON with a "
            f"'benchmarks' array\n"
        )
        sys.exit(2)
    series = {}
    counters = {}
    for b in runs:
        if not isinstance(b, dict):
            continue
        if b.get("run_type", "iteration") == "aggregate":
            continue
        t = b.get("real_time")
        if not isinstance(t, (int, float)):
            continue
        name = b.get("run_name", b.get("name", "?"))
        series.setdefault(name, []).append(float(t))
        ctrs = {
            k: float(v)
            for k, v in b.items()
            if k not in _STANDARD_KEYS and isinstance(v, (int, float))
        }
        if ctrs:
            counters[name] = ctrs
    if not series:
        sys.stderr.write(f"error: no benchmark iterations in {path}\n")
        sys.exit(2)
    return series, counters


def summarize(series, counters=None):
    out = {
        name: {
            "median_ns": statistics.median(times),
            "min_ns": min(times),
            "repetitions": len(times),
        }
        for name, times in sorted(series.items())
    }
    for name, ctrs in (counters or {}).items():
        if name in out:
            out[name]["counters"] = ctrs
    return out


def adaptive_cycles_saved(counters):
    """Cycle savings of the adaptive controller from the sweep pair.

    Needs the `simulated_cycles` counters of both
    `adaptiveSweep/fig07_ur_reference` and `.../fig07_ur_adaptive`;
    returns None when either half (or the counter) is missing.
    """
    ref = counters.get("adaptiveSweep/fig07_ur_reference", {})
    ada = counters.get("adaptiveSweep/fig07_ur_adaptive", {})
    if not ref.get("simulated_cycles") or not ada.get("simulated_cycles"):
        return None
    ref_cycles = ref["simulated_cycles"]
    ada_cycles = ada["simulated_cycles"]
    out = {
        "reference_cycles": ref_cycles,
        "adaptive_cycles": ada_cycles,
        "saved_pct": (ref_cycles - ada_cycles) / ref_cycles * 100.0,
    }
    ref_lat = ref.get("presat_latency_ns")
    ada_lat = ada.get("presat_latency_ns")
    if ref_lat:
        out["presat_latency_delta_pct"] = (
            (ada_lat - ref_lat) / ref_lat * 100.0
        )
    if "saturated_points" in ref and "saturated_points" in ada:
        out["saturation_match"] = (
            ref["saturated_points"] == ada["saturated_points"]
        )
    return out


def scheduler_speedups(series):
    """Active-set vs always-step speedup per stepLoad case.

    Pairs `stepLoad/<case>_active` with `stepLoad/<case>_always` on
    per-repetition minima; cases missing either half are skipped.
    """
    speedups = {}
    for name, times in series.items():
        if not name.startswith("stepLoad/") or not name.endswith("_active"):
            continue
        case = name[len("stepLoad/") : -len("_active")]
        always = series.get(f"stepLoad/{case}_always")
        if not always:
            continue
        active_ns = min(times)
        always_ns = min(always)
        speedups[case] = {
            "active_min_ns": active_ns,
            "always_min_ns": always_ns,
            "speedup": always_ns / active_ns,
        }
    return speedups


def scaling_points(series, counters):
    """The scaling_curve suite as a `scaling` map.

    One entry per `scaling/<layout>_<radix>` benchmark, keyed by
    `<layout>_<radix>`, carrying the median wall ns/cycle plus every
    user counter (ns_per_cycle_per_tile, bytes_per_tile, tiles and the
    pct_* phase shares). Empty when the run did not include the suite.
    """
    points = {}
    for name, times in sorted(series.items()):
        if not name.startswith("scaling/"):
            continue
        entry = {"median_ns_per_cycle": statistics.median(times)}
        entry.update(counters.get(name, {}))
        points[name[len("scaling/") :]] = entry
    return points


def arbiter_costs(series):
    """Per-arbitration-cycle cost of the `arbiter/*` microbenches.

    These isolate the SoA core's VA/SA bitmask loops (rotate-mask +
    ctz over the request sets) from the rest of the router; empty when
    the run did not include them.
    """
    costs = {}
    for name, times in sorted(series.items()):
        if not name.startswith("arbiter/"):
            continue
        costs[name[len("arbiter/") :]] = {
            "median_ns": statistics.median(times),
            "min_ns": min(times),
        }
    return costs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "bench_json",
        nargs="+",
        help="--benchmark_out file(s) of the ON build; extra inputs are "
        "merged and may be absent (e.g. BENCH_scaling.json on builds "
        "that skip the scaling suite)",
    )
    ap.add_argument("-o", "--output", default="BENCH_trajectory.json")
    ap.add_argument(
        "--off",
        help="--benchmark_out of the HNOC_TELEMETRY=OFF build; enables "
        "the telemetry_overhead_pct field",
    )
    ap.add_argument(
        "--hot-benchmark",
        default="BM_NetworkStepBaseline",
        help="series used for the ON-vs-OFF overhead percentage",
    )
    ap.add_argument(
        "--meta",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra metadata entries (e.g. --meta commit=$GITHUB_SHA)",
    )
    args = ap.parse_args()

    on, on_counters = _load(args.bench_json[0])
    for extra in args.bench_json[1:]:
        try:
            with open(extra):
                pass
        except OSError:
            sys.stderr.write(f"note: skipping absent input {extra}\n")
            continue
        extra_series, extra_counters = _load(extra)
        for name, times in extra_series.items():
            on.setdefault(name, []).extend(times)
        on_counters.update(extra_counters)
    out = {
        "schema": "hnoc-perf-trajectory-v1",
        "source": args.bench_json[0],
        "benchmarks": summarize(on, on_counters),
    }
    speedups = scheduler_speedups(on)
    if speedups:
        out["scheduler_speedup"] = speedups
    adaptive = adaptive_cycles_saved(on_counters)
    if adaptive:
        out["adaptive_cycles_saved"] = adaptive
    arbiter = arbiter_costs(on)
    if arbiter:
        out["arbiter"] = arbiter
    scaling = scaling_points(on, on_counters)
    if scaling:
        out["scaling"] = scaling

    if args.off:
        off = load_series(args.off)
        hot = args.hot_benchmark
        if hot not in on or hot not in off:
            sys.stderr.write(
                f"error: '{hot}' missing from "
                f"{args.bench_json[0] if hot not in on else args.off}; "
                f"cannot compute telemetry overhead\n"
            )
            sys.exit(2)
        base = min(off[hot])
        cand = min(on[hot])
        out["telemetry_overhead"] = {
            "benchmark": hot,
            "off_min_ns": base,
            "on_min_ns": cand,
            "overhead_pct": (cand - base) / base * 100.0,
        }

    meta = {}
    for kv in args.meta:
        key, sep, value = kv.partition("=")
        if not sep:
            sys.stderr.write(f"error: --meta wants KEY=VALUE, got '{kv}'\n")
            sys.exit(2)
        meta[key] = value
    if meta:
        out["meta"] = meta

    with open(args.output, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    n = len(out["benchmarks"])
    overhead = out.get("telemetry_overhead", {}).get("overhead_pct")
    tail = f", telemetry overhead {overhead:+.2f}%" if overhead is not None else ""
    if speedups:
        tail += f", {len(speedups)} scheduler speedup pair(s)"
    if adaptive:
        tail += f", adaptive saves {adaptive['saved_pct']:.1f}% cycles"
    if arbiter:
        tail += f", {len(arbiter)} arbiter microbench(es)"
    if scaling:
        tail += f", {len(scaling)} scaling point(s)"
    print(f"{args.output}: {n} benchmark(s){tail}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
