/**
 * @file
 * The metrics registry of the telemetry subsystem.
 *
 * A MetricRegistry holds a fixed catalog of named counters, gauges and
 * histograms over per-router × per-port × per-VC dimensions, plus
 * time-bucketed (epoch) series for the heat-map metrics. Hook sites in
 * Router/Channel/Network test a registry pointer and call the inline
 * add() methods below; with no registry attached the cost is a single
 * predictable branch per event, and configuring the build with
 * -DHNOC_TELEMETRY=OFF compiles the hooks out entirely.
 *
 * Registries are single-threaded by design: every sim point owns its
 * own instance, and multi-seed / multi-point runs combine them after
 * the JobPool joins via merge(), which is pure integer arithmetic in
 * input order — a parallel run's merged registry is bit-identical to
 * the serial single-thread merge (pinned by test_telemetry_metrics).
 */

#ifndef HNOC_TELEMETRY_METRICS_HH
#define HNOC_TELEMETRY_METRICS_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace hnoc
{

class JsonWriter;

/** Compile-time kill switch (-DHNOC_TELEMETRY=OFF). */
#ifdef HNOC_TELEMETRY_DISABLED
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/** Dimensionality of a metric. */
enum class MetricScope : std::uint8_t
{
    Global,       ///< one value for the whole network
    Router,       ///< one value per router
    RouterPort,   ///< one value per (router, port)
    RouterPortVc, ///< one value per (router, port, VC)
};

/** The counter catalog. Scopes/names live in counterInfo(). */
enum class Ctr : int
{
    BufferWrites,        ///< flits written into input buffers (r,p,vc)
    BufferReads,         ///< flits read during switch traversal (r,p)
    XbarGrants,          ///< switch-allocator grants (r, out port)
    CreditStalls,        ///< SA requests blocked on zero credits (r, out port)
    VaConflicts,         ///< VC-allocation attempts that failed (r,p,vc)
    LinkFlits,           ///< flits sent on the output channel (r, out port)
    LinkPaired,          ///< cycles a wide link carried a 2nd flit (r, out port)
    OccupancyFlitCycles, ///< sum over cycles of buffered flits (r)
    PacketsInjected,     ///< packets entering a source queue (global)
    PacketsDelivered,    ///< packets fully ejected (global)
    FlitsEjected,        ///< flits delivered to destination NIs (global)
    NumCtrs,
};

/** The gauge catalog (merge takes the maximum). */
enum class Gauge : int
{
    PeakOccupancy, ///< max buffered flits seen in one cycle (r)
    PeakInFlight,  ///< max live packets network-wide (global)
    NumGauges,
};

/** The histogram catalog. */
enum class Hist : int
{
    PacketLatencyCycles,  ///< created -> ejected, cycles (global)
    NetworkLatencyCycles, ///< injected -> ejected, cycles (global)
    NumHists,
};

/** Static description of a catalog entry. */
struct MetricInfo
{
    const char *name;
    MetricScope scope;
    const char *help;
};

const MetricInfo &counterInfo(Ctr c);
const MetricInfo &gaugeInfo(Gauge g);
const MetricInfo &histogramInfo(Hist h);

/**
 * Registry of all telemetry metrics for one network over one
 * measurement window. Construct via Network::makeMetricRegistry()
 * (which fills in the dimension/capacity metadata) or directly with
 * Dims for unit tests.
 */
class MetricRegistry
{
  public:
    /** Network shape; strides for the flat metric arrays. */
    struct Dims
    {
        int routers = 0;
        int ports = 0;
        int vcs = 0;     ///< max VCs per port across routers
        int gridCols = 0; ///< router-grid columns (heat-map layout)
    };

    MetricRegistry(const Dims &dims, Cycle epoch_cycles = 1000);

    const Dims &dims() const { return dims_; }
    Cycle epochCycles() const { return epochCycles_; }

    /** @name Metadata (filled by Network::makeMetricRegistry) */
    ///@{
    /** Total buffer slots of router @p r (occupancy normalization). */
    void setBufferCapacity(int r, int slots);
    /** Lane count of the channel driven by (r, p); 0 = no channel. */
    void setPortLanes(int r, int p, int lanes);
    /** Mark (r, p) as an inter-router link (Fig 1(b) accounting). */
    void setPortInterRouter(int r, int p, bool inter);
    ///@}

    /**
     * @name Hot-path hooks
     *
     * Caution: an explicit count must be std::uint64_t-typed. A plain
     * int literal in the count position overload-resolves as the next
     * index (router/port/VC) instead — debug builds assert on the
     * resulting out-of-scope index.
     */
    ///@{
    void
    add(Ctr c, std::uint64_t n = 1)
    {
        slot(c, 0) += n;
    }

    void
    add(Ctr c, int r, std::uint64_t n = 1)
    {
        slot(c, static_cast<std::size_t>(r)) += n;
    }

    void
    add(Ctr c, int r, int p, std::uint64_t n = 1)
    {
        slot(c, static_cast<std::size_t>(r * dims_.ports + p)) += n;
    }

    void
    add(Ctr c, int r, int p, int v, std::uint64_t n = 1)
    {
        slot(c, static_cast<std::size_t>(
                    (r * dims_.ports + p) * dims_.vcs + v)) += n;
    }

    void
    gaugeMax(Gauge g, std::uint64_t v)
    {
        auto &s = gauges_[static_cast<std::size_t>(g)][0];
        if (v > s)
            s = v;
    }

    void
    gaugeMax(Gauge g, int r, std::uint64_t v)
    {
        auto &vec = gauges_[static_cast<std::size_t>(g)];
        assert(static_cast<std::size_t>(r) < vec.size() &&
               "gauge index out of scope bounds");
        auto &s = vec[static_cast<std::size_t>(r)];
        if (v > s)
            s = v;
    }

    /** Per-cycle occupancy sample for router @p r. */
    void
    occupancySample(int r, int occupied_flits)
    {
        add(Ctr::OccupancyFlitCycles, r,
            static_cast<std::uint64_t>(occupied_flits));
        gaugeMax(Gauge::PeakOccupancy, r,
                 static_cast<std::uint64_t>(occupied_flits));
    }

    void
    histAdd(Hist h, double x)
    {
        hists_[static_cast<std::size_t>(h)].add(x);
    }

    /**
     * Advance the epoch clock by one cycle; rolls the per-epoch series
     * every epochCycles() cycles. Called once per Network::step().
     */
    void
    tick(Cycle now)
    {
        (void)now;
        ++observedCycles_;
        if (++cyclesInEpoch_ >= epochCycles_)
            rollEpoch();
    }
    ///@}

    /** Mark the start of the measurement window (absolute cycle). */
    void beginWindow(Cycle start);

    /** Flush the partial final epoch (idempotent). Call at detach. */
    void finish();

    /** @name Reading */
    ///@{
    Cycle observedCycles() const { return observedCycles_; }
    Cycle windowStart() const { return windowStart_; }

    std::uint64_t total(Ctr c) const;
    std::uint64_t at(Ctr c, int r) const;
    std::uint64_t at(Ctr c, int r, int p) const;
    std::uint64_t at(Ctr c, int r, int p, int v) const;
    std::uint64_t gauge(Gauge g, int r = 0) const;
    const Histogram &histogram(Hist h) const;

    /** Per-router sums of any counter (reduces port/VC dimensions). */
    std::vector<std::uint64_t> perRouter(Ctr c) const;

    /** @return raw flat value array of @p c (layout per its scope). */
    const std::vector<std::uint64_t> &values(Ctr c) const;
    ///@}

    /** @name Derived utilization (the Fig 1 heat-map data) */
    ///@{
    /** Per-router buffer utilization %, occupancy / (capacity·cycles). */
    std::vector<double> bufferUtilizationPercent() const;

    /** Per-router mean outgoing inter-router link utilization %. */
    std::vector<double> linkUtilizationPercent() const;

    /** Fraction of busy wide-link cycles that carried two flits. */
    double combineRate() const;
    ///@}

    /** @name Epoch series */
    ///@{
    /** One closed epoch of per-router activity (raw integer sums). */
    struct EpochRow
    {
        Cycle cycles = 0; ///< cycles covered (last row may be partial)
        std::vector<std::uint64_t> occupancyFlitCycles; ///< per router
        std::vector<std::uint64_t> linkFlits;           ///< per router
        std::vector<std::uint64_t> flitsRouted;         ///< per router
    };

    const std::vector<EpochRow> &epochs() const { return epochs_; }

    /** Per-router buffer utilization % inside epoch @p e. */
    std::vector<double> epochBufferUtilizationPercent(std::size_t e) const;

    /** Per-router link flits/cycle inside epoch @p e. */
    std::vector<double> epochLinkFlitsPerCycle(std::size_t e) const;
    ///@}

    /**
     * Merge @p other into this registry: counters, histograms, epoch
     * rows and observed cycles add; gauges take the maximum. Pure
     * integer arithmetic, so the result is independent of how the
     * inputs were produced (serial or parallel) and depends only on
     * the merge order. Dims must match.
     */
    void merge(const MetricRegistry &other);

    /**
     * Steady-state memory footprint: counter/gauge arrays, metadata,
     * and accumulated epoch rows, from container capacities.
     * Histograms are counted shallow (their bucket arrays are small
     * and fixed). Grows with epochs, so call it at report time.
     */
    std::uint64_t footprintBytes() const;

    /** Serialize the full registry (schema in docs/OBSERVABILITY.md). */
    void writeJson(JsonWriter &w) const;

    /** @return writeJson output as a standalone document. */
    std::string json() const;

    /** Multi-line text summary (watchdog dumps, debugging). */
    std::string summary(int top_n = 5) const;

  private:
    /** Bounds-asserted access to one counter slot (debug builds). */
    std::uint64_t &
    slot(Ctr c, std::size_t idx)
    {
        auto &vec = counters_[static_cast<std::size_t>(c)];
        assert(idx < vec.size() && "counter index out of scope bounds");
        return vec[idx];
    }

    void rollEpoch();
    std::size_t scopeSize(MetricScope s) const;

    Dims dims_;
    Cycle epochCycles_;
    Cycle windowStart_ = 0;
    Cycle observedCycles_ = 0;
    Cycle cyclesInEpoch_ = 0;
    bool finished_ = false;

    std::array<std::vector<std::uint64_t>,
               static_cast<std::size_t>(Ctr::NumCtrs)>
        counters_;
    std::array<std::vector<std::uint64_t>,
               static_cast<std::size_t>(Gauge::NumGauges)>
        gauges_;
    std::vector<Histogram> hists_;

    std::vector<int> bufferCapacity_;  ///< per router
    std::vector<int> portLanes_;       ///< per (router, port)
    std::vector<std::uint8_t> portInterRouter_; ///< per (router, port)

    std::vector<EpochRow> epochs_;
    /** Counter snapshots at the last epoch boundary (delta source). */
    std::vector<std::uint64_t> lastOccupancy_;
    std::vector<std::uint64_t> lastLinkFlits_;
    std::vector<std::uint64_t> lastFlitsRouted_;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_METRICS_HH
