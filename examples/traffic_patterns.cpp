/**
 * @file
 * Traffic-pattern tour: compare the baseline and Diagonal+BL networks
 * under all five synthetic patterns at a chosen load, including the
 * nearest-neighbor anomaly (§5.1) and the bursty self-similar source.
 *
 *   ./examples/traffic_patterns [rate=0.03]
 */

#include <cstdio>
#include <cstdlib>

#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

using namespace hnoc;

int
main(int argc, char **argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 0.03;

    NetworkConfig base = makeLayoutConfig(LayoutKind::Baseline);
    NetworkConfig het = makeLayoutConfig(LayoutKind::DiagonalBL);

    const TrafficPattern patterns[] = {
        TrafficPattern::UniformRandom, TrafficPattern::NearestNeighbor,
        TrafficPattern::Transpose, TrafficPattern::BitComplement,
        TrafficPattern::SelfSimilar};

    std::printf("injection rate %.3f packets/node/cycle\n\n", rate);
    std::printf("%-18s %14s %14s %12s %12s\n", "pattern",
                "baseline (ns)", "hetero (ns)", "base P (W)",
                "hetero P (W)");
    for (TrafficPattern p : patterns) {
        SimPointOptions opts;
        opts.injectionRate = rate;
        SimPointResult rb = runOpenLoop(base, p, opts);
        SimPointResult rh = runOpenLoop(het, p, opts);
        std::printf("%-18s %13.1f%s %13.1f%s %12.1f %12.1f\n",
                    trafficPatternName(p).c_str(), rb.avgLatencyNs,
                    rb.saturated ? "*" : " ", rh.avgLatencyNs,
                    rh.saturated ? "*" : " ", rb.networkPowerW,
                    rh.networkPowerW);
    }
    std::printf("(* = network saturated at this load)\n");
    return 0;
}
