#include "telemetry/json_reader.hh"

#include <cstdio>
#include <cstdlib>

namespace hnoc
{

namespace
{

/** Recursive-descent parser over one document. */
class Parser
{
  public:
    Parser(std::string_view doc, std::string *error)
        : begin_(doc.data()), p_(doc.data()),
          end_(doc.data() + doc.size()), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        if (!value(out))
            return false;
        skipWs();
        if (p_ != end_)
            return fail("trailing content after document");
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (error_ && error_->empty()) {
            char buf[160];
            std::snprintf(buf, sizeof(buf), "byte %zu: %s",
                          static_cast<std::size_t>(p_ - begin_), why);
            *error_ = buf;
        }
        return false;
    }

    void
    skipWs()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                             *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *s)
    {
        const char *q = p_;
        while (*s) {
            if (q == end_ || *q != *s)
                return fail("bad literal");
            ++q;
            ++s;
        }
        p_ = q;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (p_ == end_ || *p_ != '"')
            return fail("expected string");
        ++p_;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            char c = *p_++;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ == end_)
                return fail("truncated escape");
            char e = *p_++;
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (end_ - p_ < 4)
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Our emitters only escape ASCII control characters;
                // decode the BMP code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        if (p_ == end_)
            return fail("unterminated string");
        ++p_; // closing quote
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (p_ == end_)
            return fail("unexpected end of document");
        switch (*p_) {
          case '{': {
            out.type = JsonValue::Type::Object;
            ++p_;
            skipWs();
            if (p_ < end_ && *p_ == '}') {
                ++p_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (p_ == end_ || *p_ != ':')
                    return fail("expected ':' after object key");
                ++p_;
                JsonValue v;
                if (!value(v))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (p_ == end_)
                    return fail("unterminated object");
                if (*p_ == ',') {
                    ++p_;
                    continue;
                }
                if (*p_ == '}') {
                    ++p_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
          }
          case '[': {
            out.type = JsonValue::Type::Array;
            ++p_;
            skipWs();
            if (p_ < end_ && *p_ == ']') {
                ++p_;
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!value(v))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (p_ == end_)
                    return fail("unterminated array");
                if (*p_ == ',') {
                    ++p_;
                    continue;
                }
                if (*p_ == ']') {
                    ++p_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
          }
          case '"':
            out.type = JsonValue::Type::String;
            return string(out.string);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
          default: {
            // Numbers: delegate to strtod but reject what JSON does
            // not allow (nan, inf, hex, leading '+').
            char c = *p_;
            if (c != '-' && (c < '0' || c > '9'))
                return fail("unexpected character");
            char *after = nullptr;
            out.type = JsonValue::Type::Number;
            out.number = std::strtod(p_, &after);
            if (after == p_ || after > end_)
                return fail("malformed number");
            p_ = after;
            return true;
          }
        }
    }

    const char *begin_;
    const char *p_;
    const char *end_;
    std::string *error_;
};

const std::vector<JsonValue> kEmptyArray;

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &kv : object)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

double
JsonValue::numAt(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::string
JsonValue::strAt(std::string_view key) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : std::string();
}

bool
JsonValue::boolAt(std::string_view key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean : fallback;
}

const std::vector<JsonValue> &
JsonValue::arrayAt(std::string_view key) const
{
    const JsonValue *v = find(key);
    return v && v->isArray() ? v->array : kEmptyArray;
}

std::vector<double>
JsonValue::numbersAt(std::string_view key) const
{
    std::vector<double> out;
    const JsonValue *v = find(key);
    if (!v || !v->isArray())
        return out;
    out.reserve(v->array.size());
    for (const JsonValue &e : v->array)
        out.push_back(e.isNumber() ? e.number : 0.0);
    return out;
}

bool
parseJson(std::string_view doc, JsonValue &out, std::string *error)
{
    if (error)
        error->clear();
    return Parser(doc, error).parse(out);
}

namespace
{

bool
readFile(const std::string &path, std::string &out, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

} // namespace

bool
parseJsonFile(const std::string &path, JsonValue &out, std::string *error)
{
    std::string data;
    if (!readFile(path, data, error))
        return false;
    if (!parseJson(data, out, error)) {
        if (error)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

bool
parseJsonLines(std::string_view doc, std::vector<JsonValue> &out,
               std::string *error)
{
    std::size_t start = 0;
    std::size_t line_no = 1;
    while (start < doc.size()) {
        std::size_t nl = doc.find('\n', start);
        std::string_view line = nl == std::string_view::npos
                                    ? doc.substr(start)
                                    : doc.substr(start, nl - start);
        start = nl == std::string_view::npos ? doc.size() : nl + 1;
        bool blank = true;
        for (char c : line)
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        if (!blank) {
            JsonValue v;
            std::string line_err;
            if (!parseJson(line, v, &line_err)) {
                if (error)
                    *error = "line " + std::to_string(line_no) + ": " +
                             line_err;
                return false;
            }
            out.push_back(std::move(v));
        }
        ++line_no;
    }
    return true;
}

bool
parseJsonLinesFile(const std::string &path, std::vector<JsonValue> &out,
                   std::string *error)
{
    std::string data;
    if (!readFile(path, data, error))
        return false;
    if (!parseJsonLines(data, out, error)) {
        if (error)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

} // namespace hnoc
