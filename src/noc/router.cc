#include "noc/router.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hnoc
{

Router::Router(RouterId id, int num_ports, int vcs, int buffer_depth,
               const RoutingAlgorithm &routing, int escape_threshold,
               bool intra_packet_pairing, SaPolicy sa_policy)
    : id_(id), vcs_(vcs), bufferDepth_(buffer_depth), routing_(routing),
      escapeThreshold_(escape_threshold),
      intraPacketPairing_(intra_packet_pairing), saPolicy_(sa_policy),
      inputs_(static_cast<std::size_t>(num_ports)),
      outputs_(static_cast<std::size_t>(num_ports))
{
    for (auto &ip : inputs_) {
        ip.vcs.resize(static_cast<std::size_t>(vcs));
        for (auto &ivc : ip.vcs)
            ivc.fifo.reset(static_cast<std::size_t>(buffer_depth));
    }
    scratchGrants_.assign(static_cast<std::size_t>(num_ports), 0);
    scratchOut_.assign(static_cast<std::size_t>(num_ports), INVALID_PORT);
}

void
Router::connectInput(PortId p, Channel *chan)
{
    inputs_[static_cast<std::size_t>(p)].chan = chan;
}

void
Router::connectOutput(PortId p, Channel *chan, int down_vcs, int down_depth)
{
    OutputPort &op = outputs_[static_cast<std::size_t>(p)];
    op.chan = chan;
    op.lanes = chan->lanes();
    op.vcs.assign(static_cast<std::size_t>(down_vcs), OutVcState{});
    for (auto &v : op.vcs)
        v.credits = down_depth;
}

void
Router::receiveFlit(PortId p, Flit flit, Cycle now)
{
    InputPort &ip = inputs_[static_cast<std::size_t>(p)];
    if (flit.vc < 0 || flit.vc >= vcs_)
        panic("router %d port %d: flit on invalid VC %d", id_, p, flit.vc);
    InputVc &ivc = ip.vcs[static_cast<std::size_t>(flit.vc)];
    if (static_cast<int>(ivc.fifo.size()) >= bufferDepth_)
        panic("router %d port %d vc %d: buffer overflow (credit bug)",
              id_, p, flit.vc);
    if (!ivc.active && ivc.fifo.empty())
        ++ip.rcPending; // an idle VC just gained a head needing RC
    flit.arrivedAt = now;
    ivc.fifo.push_back(flit);
    ++flitCount_;
    slot_.markBusy();
    ++activity_.bufferWrites;
    if (kTelemetryEnabled && telemetry_)
        telemetry_->add(Ctr::BufferWrites, id_, p, flit.vc);
    if (kTelemetryEnabled && recorder_)
        recorder_->record(FrKind::FlitIn, now, id_, p, flit.vc,
                          flit.pkt ? flit.pkt->id : 0, flit.isHead());
    if (observer_)
        observer_->onFlitArrive(id_, p, flit, now);
}

void
Router::receiveCredit(PortId p, VcId vc, Cycle now)
{
    OutputPort &op = outputs_[static_cast<std::size_t>(p)];
    OutVcState &ov = op.vcs[static_cast<std::size_t>(vc)];
    if (ov.credits >= bufferDepth_ * 4) // generous sanity bound
        panic("router %d port %d vc %d: credit overflow", id_, p, vc);
    ++ov.credits;
    if (kTelemetryEnabled && recorder_)
        recorder_->record(FrKind::CreditIn, now, id_, p, vc);
}

void
Router::step(Cycle now)
{
    routeCompute(now);
    vcAllocate(now);
    switchAllocate(now);

    // Occupancy sample for the Fig 1/2 heat maps. A zero sample is a
    // no-op on both accumulators, so skipping flitless cycles under
    // active-set scheduling loses nothing.
    int occ = flitCount_;
    occupancySum_ += occ;
    if (kTelemetryEnabled && telemetry_)
        telemetry_->occupancySample(id_, occ);
    if (flitCount_ == 0)
        slot_.markIdle(); // drained every buffered flit this cycle
}

void
Router::routeCompute(Cycle now)
{
    for (auto &ip : inputs_) {
        if (ip.rcPending == 0)
            continue; // no idle VC holds a waiting head
        for (auto &ivc : ip.vcs) {
            if (ivc.active || ivc.fifo.empty())
                continue;
            const Flit &head = ivc.fifo.front();
            if (head.arrivedAt >= now)
                continue; // written this cycle; eligible next cycle
            if (!head.isHead())
                panic("router %d: non-head flit at idle VC (pkt %llu)",
                      id_, static_cast<unsigned long long>(
                               head.pkt ? head.pkt->id : 0));
            ivc.pkt = head.pkt;
            ivc.active = true;
            --ip.rcPending;
            ivc.outPort = routing_.outputPort(id_, *ivc.pkt);
            ivc.outVc = INVALID_VC;
            const OutputPort &op =
                outputs_[static_cast<std::size_t>(ivc.outPort)];
            routing_.vcBounds(id_, ivc.outPort, *ivc.pkt,
                              static_cast<int>(op.vcs.size()),
                              ivc.vcLo, ivc.vcHi);
            ivc.headSince = now;
            ++ivc.pkt->hops;
        }
    }
}

void
Router::maybeEscape(InputVc &ivc, Cycle now)
{
    if (!routing_.hasEscape(*ivc.pkt))
        return;
    if (now - ivc.headSince <= static_cast<Cycle>(escapeThreshold_))
        return;
    // Fall back to the X-Y escape layer for the rest of the journey.
    ivc.pkt->escaped = true;
    ivc.outPort = routing_.outputPort(id_, *ivc.pkt);
    const OutputPort &op = outputs_[static_cast<std::size_t>(ivc.outPort)];
    routing_.vcBounds(id_, ivc.outPort, *ivc.pkt,
                      static_cast<int>(op.vcs.size()), ivc.vcLo, ivc.vcHi);
    ivc.headSince = now;
}

void
Router::vcAllocate(Cycle now)
{
    // Separable, output-side allocator: walk input VCs round-robin and
    // hand each requester the first free admissible downstream VC. The
    // rotating pointer is a pure function of the cycle number (it used
    // to advance by one every stepped cycle from zero), so skipping
    // idle cycles leaves the priority sequence unchanged.
    int num_ports = numPorts();
    int total = num_ports * vcs_;
    int ptr = static_cast<int>(now % static_cast<Cycle>(total));
    for (int k = 0; k < total; ++k) {
        int idx = (ptr + k) % total;
        InputVc &ivc = inputs_[static_cast<std::size_t>(idx / vcs_)]
                           .vcs[static_cast<std::size_t>(idx % vcs_)];
        if (!ivc.active || ivc.outVc != INVALID_VC)
            continue;
        if (ivc.fifo.empty() || ivc.fifo.front().arrivedAt >= now)
            continue;
        maybeEscape(ivc, now);
        OutputPort &op = outputs_[static_cast<std::size_t>(ivc.outPort)];
        for (VcId v = ivc.vcLo; v <= ivc.vcHi; ++v) {
            OutVcState &ov = op.vcs[static_cast<std::size_t>(v)];
            if (!ov.allocated) {
                ov.allocated = true;
                ivc.outVc = v;
                ivc.headSince = now;
                ++activity_.arbOps;
                break;
            }
        }
        if (kTelemetryEnabled && telemetry_ && ivc.outVc == INVALID_VC)
            telemetry_->add(Ctr::VaConflicts, id_, idx / vcs_,
                            idx % vcs_);
        if (kTelemetryEnabled && recorder_)
            recorder_->record(ivc.outVc == INVALID_VC ? FrKind::VaDeny
                                                      : FrKind::VaGrant,
                              now, id_, idx / vcs_, idx % vcs_,
                              ivc.pkt ? ivc.pkt->id : 0);
    }
}

void
Router::switchAllocate(Cycle now)
{
    int num_ports = numPorts();
    int total = num_ports * vcs_;

    // Per-input-port grant bookkeeping: at most two reads per input
    // port per cycle (the DSET split of §3.2), and when two, both must
    // feed the same output port (one v:1 arbiter per input, Fig 6).
    // Member scratch vectors: assign() reuses their capacity, so the
    // steady state allocates nothing.
    scratchGrants_.assign(static_cast<std::size_t>(num_ports), 0);
    scratchOut_.assign(static_cast<std::size_t>(num_ports), INVALID_PORT);

    for (PortId o = 0; o < num_ports; ++o) {
        OutputPort &op = outputs_[static_cast<std::size_t>(o)];
        if (!op.chan)
            continue;
        int capacity = op.lanes > 1 ? 2 : 1;
        int granted = 0;

        // Rotating priority: the legacy pointer advanced by
        // (granted + 1) per stepped cycle; splitting it into the
        // implicit cycle count plus a grant-only offset makes it
        // insensitive to skipped idle cycles (granted is zero on any
        // cycle the router could have been skipped).
        int ptr = static_cast<int>(
            (static_cast<Cycle>(op.rrOffset) + now) %
            static_cast<Cycle>(total));

        // Candidate visiting order: rotating priority, or oldest
        // waiting head first (SaPolicy::OldestFirst). RoundRobin
        // computes indices inline; OldestFirst materializes the order
        // to sort it.
        const bool oldest_first = saPolicy_ == SaPolicy::OldestFirst;
        if (oldest_first) {
            scratchOrder_.clear();
            for (int k = 0; k < total; ++k)
                scratchOrder_.push_back((ptr + k) % total);
            std::stable_sort(
                scratchOrder_.begin(), scratchOrder_.end(),
                [&](int a, int b) {
                    const InputVc &va =
                        inputs_[static_cast<std::size_t>(a / vcs_)]
                            .vcs[static_cast<std::size_t>(a % vcs_)];
                    const InputVc &vb =
                        inputs_[static_cast<std::size_t>(b / vcs_)]
                            .vcs[static_cast<std::size_t>(b % vcs_)];
                    return va.headSince < vb.headSince;
                });
        }

        for (int k = 0; k < total && granted < capacity; ++k) {
            int idx = oldest_first
                          ? scratchOrder_[static_cast<std::size_t>(k)]
                          : (ptr + k) % total;
            PortId in_port = idx / vcs_;
            InputVc &ivc =
                inputs_[static_cast<std::size_t>(in_port)]
                    .vcs[static_cast<std::size_t>(idx % vcs_)];
            if (!ivc.active || ivc.outPort != o ||
                ivc.outVc == INVALID_VC)
                continue;
            if (ivc.fifo.empty() || ivc.fifo.front().arrivedAt >= now)
                continue;
            OutVcState &ov = op.vcs[static_cast<std::size_t>(ivc.outVc)];
            if (ov.credits <= 0) {
                if (kTelemetryEnabled && telemetry_)
                    telemetry_->add(Ctr::CreditStalls, id_, o);
                if (kTelemetryEnabled && recorder_)
                    recorder_->record(FrKind::CreditStall, now, id_, o,
                                      ivc.outVc,
                                      ivc.pkt ? ivc.pkt->id : 0);
                continue;
            }
            int &pg = scratchGrants_[static_cast<std::size_t>(in_port)];
            if (pg >= 2)
                continue;
            if (pg == 1 &&
                scratchOut_[static_cast<std::size_t>(in_port)] != o)
                continue;

            // Grant: pop the flit and push it into the output channel.
            auto send_one = [&] {
                Flit flit = ivc.fifo.front();
                ivc.fifo.pop_front();
                --flitCount_;
                --ov.credits;
                flit.vc = ivc.outVc;
                op.chan->sendFlit(flit, now);
                if (observer_)
                    observer_->onFlitDepart(id_, o, flit, now);

                ++pg;
                scratchOut_[static_cast<std::size_t>(in_port)] = o;
                ++granted;
                ++activity_.bufferReads;
                ++activity_.xbarTraversals;
                ++activity_.arbOps;
                if (kTelemetryEnabled && telemetry_) {
                    telemetry_->add(Ctr::XbarGrants, id_, o);
                    telemetry_->add(Ctr::BufferReads, id_, in_port);
                }
                if (kTelemetryEnabled && recorder_) {
                    recorder_->record(FrKind::FlitOut, now, id_, o,
                                      flit.vc,
                                      flit.pkt ? flit.pkt->id : 0,
                                      flit.isHead());
                    recorder_->record(FrKind::CreditOut, now, id_,
                                      in_port, idx % vcs_);
                }
                // Charge the active (flit) bits, not the full wire
                // width: an unpaired flit on a wide link toggles only
                // its own half.
                activity_.linkBitTraversals +=
                    op.chan->widthBits() / op.chan->lanes();

                InputPort &ip = inputs_[static_cast<std::size_t>(in_port)];
                if (ip.chan)
                    ip.chan->sendCredit(static_cast<VcId>(idx % vcs_),
                                        now);

                if (flit.isTail()) {
                    ov.allocated = false;
                    ivc.active = false;
                    ivc.outPort = INVALID_PORT;
                    ivc.outVc = INVALID_VC;
                    ivc.pkt = nullptr;
                    if (!ivc.fifo.empty())
                        ++ip.rcPending; // next packet's head awaits RC
                    return true; // packet finished at this hop
                }
                if (!ivc.fifo.empty())
                    ivc.headSince = now;
                return false;
            };

            bool finished = send_one();

            // Intra-packet pairing on wide outputs (§3.2): send the
            // next flit of the same packet over the other 128 b half,
            // consuming a second credit in the same downstream VC.
            if (intraPacketPairing_ && !finished && granted < capacity &&
                pg < 2 && ov.credits > 0 && !ivc.fifo.empty() &&
                ivc.fifo.front().arrivedAt < now &&
                ivc.fifo.front().pkt == ivc.pkt) {
                send_one();
            }
        }
        op.rrOffset = (op.rrOffset + static_cast<unsigned>(granted)) %
                      static_cast<unsigned>(total);
    }
}

Router::InputVcView
Router::inputVcView(PortId p, VcId v) const
{
    const InputVc &ivc = inputs_[static_cast<std::size_t>(p)]
                             .vcs[static_cast<std::size_t>(v)];
    InputVcView view;
    view.occupancy = static_cast<int>(ivc.fifo.size());
    view.active = ivc.active;
    view.outPort = ivc.outPort;
    view.outVc = ivc.outVc;
    view.headSince = ivc.headSince;
    view.pkt = ivc.pkt ? ivc.pkt->id : 0;
    return view;
}

} // namespace hnoc
