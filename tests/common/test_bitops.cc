/**
 * @file
 * Unit tests for the bitmask arbitration primitives backing the SoA
 * router core (common/bitops.hh).
 *
 * The load-bearing property is rotating-priority equivalence: for any
 * request mask and any rotation offset, pickRoundRobin and
 * forEachSetCyclic must produce exactly the grant (and visit order) of
 * the naive reference arbiter that walks slots start, start+1, ...,
 * wrapping at nbits. The router's bit-identity guarantee (DESIGN.md
 * "SoA router core") reduces to this plus the pure-function-of-now RR
 * pointers, so the check is exhaustive where that is affordable (every
 * mask up to 12 bits, every start) and randomized above (64-bit and
 * multi-word masks).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/bitops.hh"

namespace
{

using namespace hnoc;

/** Reference arbiter: first set bit at or after start, wrapping. */
int
naivePick(const std::uint64_t *words, int nbits, int start)
{
    for (int i = 0; i < nbits; ++i) {
        int s = (start + i) % nbits;
        if (bitops::maskTest(words, s))
            return s;
    }
    return -1;
}

/** Reference visit order: every set bit from start, wrapping. */
std::vector<int>
naiveOrder(const std::uint64_t *words, int nbits, int start)
{
    std::vector<int> order;
    for (int i = 0; i < nbits; ++i) {
        int s = (start + i) % nbits;
        if (bitops::maskTest(words, s))
            order.push_back(s);
    }
    return order;
}

std::vector<int>
cyclicOrder(const std::uint64_t *words, int nwords, int nbits, int start)
{
    std::vector<int> order;
    bitops::forEachSetCyclic(words, nwords, nbits, start, [&](int s) {
        order.push_back(s);
        return true;
    });
    return order;
}

TEST(Bitops, MaskSetTestClearRoundTrip)
{
    std::uint64_t words[2] = {0, 0};
    for (int i : {0, 1, 63, 64, 90, 127}) {
        EXPECT_FALSE(bitops::maskTest(words, i));
        bitops::maskSet(words, i);
        EXPECT_TRUE(bitops::maskTest(words, i));
    }
    EXPECT_EQ(bitops::maskCount(words, 2), 6);
    EXPECT_TRUE(bitops::maskAny(words, 2));
    bitops::maskClear(words, 64);
    EXPECT_FALSE(bitops::maskTest(words, 64));
    EXPECT_EQ(bitops::maskCount(words, 2), 5);
}

TEST(Bitops, RangeMask64EdgesAndEmptyRanges)
{
    EXPECT_EQ(bitops::rangeMask64(0, 0), 1u);
    EXPECT_EQ(bitops::rangeMask64(0, 63), ~std::uint64_t{0});
    EXPECT_EQ(bitops::rangeMask64(63, 63), std::uint64_t{1} << 63);
    EXPECT_EQ(bitops::rangeMask64(2, 5), std::uint64_t{0x3c});
    // Empty and out-of-word ranges are empty masks, not UB shifts.
    EXPECT_EQ(bitops::rangeMask64(5, 2), 0u);
    EXPECT_EQ(bitops::rangeMask64(64, 70), 0u);
}

TEST(Bitops, FirstClearInRangeMatchesLinearScan)
{
    std::mt19937_64 rng(0xb1705u);
    for (int trial = 0; trial < 2000; ++trial) {
        std::uint64_t mask = rng();
        int lo = static_cast<int>(rng() % 64);
        int hi = static_cast<int>(rng() % 64);
        int expect = -1;
        for (int v = lo; v <= hi; ++v)
            if (((mask >> v) & 1u) == 0) {
                expect = v;
                break;
            }
        EXPECT_EQ(bitops::firstClearInRange64(mask, lo, hi), expect)
            << "mask=" << mask << " lo=" << lo << " hi=" << hi;
    }
}

/**
 * Exhaustive rotate-mask grant equivalence: every request mask on a
 * ring of up to 12 slots, every rotation offset, against the naive
 * wrap-around scan. 12 bits keeps the sweep at 4096 * 12 picks while
 * still covering empty, full, single-bit and every clustering pattern.
 */
TEST(Bitops, PickRoundRobinExhaustiveSmallRings)
{
    for (int nbits = 1; nbits <= 12; ++nbits) {
        for (std::uint64_t m = 0; m < (std::uint64_t{1} << nbits); ++m) {
            std::uint64_t words[1] = {m};
            for (int start = 0; start < nbits; ++start) {
                ASSERT_EQ(bitops::pickRoundRobin(words, 1, nbits, start),
                          naivePick(words, nbits, start))
                    << "nbits=" << nbits << " mask=" << m
                    << " start=" << start;
            }
        }
    }
}

TEST(Bitops, ForEachSetCyclicExhaustiveSmallRings)
{
    for (int nbits = 1; nbits <= 10; ++nbits) {
        for (std::uint64_t m = 0; m < (std::uint64_t{1} << nbits); ++m) {
            std::uint64_t words[1] = {m};
            for (int start = 0; start < nbits; ++start) {
                ASSERT_EQ(cyclicOrder(words, 1, nbits, start),
                          naiveOrder(words, nbits, start))
                    << "nbits=" << nbits << " mask=" << m
                    << " start=" << start;
            }
        }
    }
}

/** Randomized full-word and multi-word rings, all rotation offsets. */
TEST(Bitops, RoundRobinRandomizedWideRings)
{
    std::mt19937_64 rng(0xa5b17u);
    for (int nbits : {64, 80, 128, 150}) {
        int nwords = bitops::maskWords(nbits);
        for (int trial = 0; trial < 40; ++trial) {
            std::uint64_t words[3] = {0, 0, 0};
            // Mix densities: sparse, medium, dense draws.
            std::uint64_t keep = trial % 3 == 0 ? rng() & rng() & rng()
                                : trial % 3 == 1 ? rng()
                                                 : rng() | rng();
            for (int i = 0; i < nbits; ++i)
                if ((keep >> (i & 63)) & 1u && (rng() & 3u) != 0)
                    bitops::maskSet(words, i);
            for (int start = 0; start < nbits; ++start) {
                ASSERT_EQ(bitops::pickRoundRobin(words, nwords, nbits,
                                                 start),
                          naivePick(words, nbits, start));
                ASSERT_EQ(cyclicOrder(words, nwords, nbits, start),
                          naiveOrder(words, nbits, start));
            }
        }
    }
}

/**
 * The SA grant loop clears the visited slot's bit when a tail flit
 * retires the VC; the word-snapshot iteration must not skip or repeat
 * slots because of it.
 */
TEST(Bitops, ForEachSetCyclicToleratesVisitorClearingBits)
{
    std::mt19937_64 rng(0x5eedu);
    for (int trial = 0; trial < 200; ++trial) {
        const int nbits = 90;
        std::uint64_t words[2] = {0, 0};
        for (int i = 0; i < nbits; ++i)
            if (rng() & 1u)
                bitops::maskSet(words, i);
        int start = static_cast<int>(rng() % nbits);
        auto expect = naiveOrder(words, nbits, start);
        std::vector<int> got;
        bitops::forEachSetCyclic(words, 2, nbits, start, [&](int s) {
            got.push_back(s);
            bitops::maskClear(words, s);
            return true;
        });
        ASSERT_EQ(got, expect);
        EXPECT_FALSE(bitops::maskAny(words, 2));
    }
}

TEST(Bitops, ForEachSetCyclicEarlyStop)
{
    std::uint64_t words[1] = {0b101101};
    std::vector<int> got;
    bitops::forEachSetCyclic(words, 1, 6, 3, [&](int s) {
        got.push_back(s);
        return got.size() < 2;
    });
    EXPECT_EQ(got, (std::vector<int>{3, 5}));
}

} // namespace
