# Empty compiler generated dependencies file for test_noc_observer.
# This may be replaced when dependencies are built.
