/**
 * @file
 * Minimal streaming JSON writer used by the telemetry exporters.
 *
 * Deterministic output: numbers are formatted with fixed printf
 * patterns ("%.17g" for doubles, decimal for integers), keys are
 * emitted in call order, and no locale-dependent functions are used —
 * so two registries with bit-identical contents serialize to
 * byte-identical JSON (the property the parallel-merge tests pin).
 */

#ifndef HNOC_TELEMETRY_JSON_WRITER_HH
#define HNOC_TELEMETRY_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hnoc
{

/** Stack-tracked JSON emitter building into an internal string. */
class JsonWriter
{
  public:
    JsonWriter();

    /** @name Structure */
    ///@{
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value/begin* call is its value. */
    JsonWriter &key(std::string_view name);
    ///@}

    /** @name Values */
    ///@{
    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    keyValue(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** Emit a whole numeric array under @p name. */
    JsonWriter &keyArray(std::string_view name,
                         const std::vector<double> &values);
    JsonWriter &keyArray(std::string_view name,
                         const std::vector<std::uint64_t> &values);
    ///@}

    /**
     * @return the serialized document. Must be called with all
     * containers closed (panics otherwise — catches missing end*()).
     */
    const std::string &str() const;

    /** Escape @p s per RFC 8259 (quotes not included). */
    static std::string escape(std::string_view s);

  private:
    void prefix(); ///< comma / separator bookkeeping before a value

    std::string out_;
    /** One entry per open container: count of values emitted so far;
     *  -1 flags "a key was just written, next value is its payload". */
    std::vector<std::int64_t> stack_;
    bool keyPending_ = false;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_JSON_WRITER_HH
