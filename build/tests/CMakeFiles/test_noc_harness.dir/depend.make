# Empty dependencies file for test_noc_harness.
# This may be replaced when dependencies are built.
