/**
 * @file
 * Steady-state allocation audit: once the packet arena, scratch
 * vectors, and ring buffers are warm, a loaded Network::step must not
 * touch the heap at all — under both the active-set scheduler and the
 * HNOC_ALWAYS_STEP exhaustive loop. Enforced by replacing global
 * operator new with a counting shim (this binary only).
 *
 * This contract covers the SoA router core: its per-slot arrays,
 * request bitmasks, and per-output credit vectors are sized once in
 * RouterCore::init / connectOutput and never grow, so RC/VA/SA run
 * mask arithmetic over fixed storage. Both schedulers are audited on
 * both layouts because they drive different slot-visit patterns
 * through the same arrays.
 *
 * Telemetry is deliberately left detached: epoch rollover allocates
 * its time-series rows by design and is not part of the hot path
 * contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "heteronoc/layout.hh"
#include "noc/active_set.hh"
#include "noc/network.hh"
#include "noc/router_core.hh"
#include "telemetry/profiler.hh"

namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hnoc
{
namespace
{

/**
 * Deterministic load: one data packet per cycle, round-robin over
 * sources with a fixed stride destination (~0.14 flits/node/cycle on
 * the 8x8 mesh — comfortably loaded, nowhere near saturation).
 */
void
injectOne(Network &net, int nodes, int flits)
{
    NodeId src = static_cast<NodeId>(net.now() % nodes);
    NodeId dst = static_cast<NodeId>((src + 17) % nodes);
    if (dst == src)
        dst = static_cast<NodeId>((dst + 1) % nodes);
    net.enqueuePacket(src, dst, flits);
}

std::uint64_t
measureSteadyStateAllocs(NetworkConfig cfg)
{
    Network net(cfg);
    int nodes = net.topology().numNodes();
    int flits = net.dataPacketFlits();

    // Warm the packet arena, free list, source-queue rings, and
    // per-router scratch vectors. The traffic is periodic (period =
    // node count), so the warmed high-water marks cover the measured
    // window exactly.
    for (int c = 0; c < 20000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }

    g_allocs.store(0);
    g_counting.store(true);
    for (int c = 0; c < 2000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }
    g_counting.store(false);
    EXPECT_GT(net.packetsDelivered(), 0u);
    return g_allocs.load();
}

TEST(ZeroAlloc, CountingShimSeesColdStartAllocations)
{
    // Sanity: the hook must observe the allocations network
    // construction performs, or the zero assertions below are vacuous.
    g_allocs.store(0);
    g_counting.store(true);
    {
        Network net(makeLayoutConfig(LayoutKind::Baseline));
        (void)net;
    }
    g_counting.store(false);
    EXPECT_GT(g_allocs.load(), 0u);
}

TEST(ZeroAlloc, ActiveSetLoadedStepIsAllocationFree)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, AlwaysStepLoadedStepIsAllocationFree)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.alwaysStep = true;
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, HeterogeneousDiagonalBlIsAllocationFree)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, SingleTileBlocksAreAllocationFree)
{
    // blockTiles=1 maximises block-boundary traffic: every channel
    // delivery crosses the per-block active lists, so this is the
    // densest sweep over the wake/merge/compact machinery.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.blockTiles = 1;
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

TEST(ZeroAlloc, ActiveListChurnIsAllocationFree)
{
    // Direct contract on the list itself: once reserve() has run,
    // arbitrary wake/merge/compact churn never touches the heap.
    ActiveList list;
    list.reserve(/*id_space=*/64, /*max_members=*/64);
    std::uint8_t busy[64] = {};

    g_allocs.store(0);
    g_counting.store(true);
    for (int round = 0; round < 200; ++round) {
        for (std::uint32_t i = 0; i < 64; ++i) {
            if ((i + round) % 3 == 0) {
                busy[i] = 1;
                list.wake(i);
            }
        }
        std::uint32_t prev = 0;
        bool first = true;
        list.forEachActive(busy, [&](std::uint32_t id) {
            if (!first)
                EXPECT_LT(prev, id); // canonical ascending order
            prev = id;
            first = false;
            if (id % 2 == static_cast<std::uint32_t>(round % 2))
                busy[id] = 0; // idles compact out next scan
        });
    }
    g_counting.store(false);
    EXPECT_EQ(g_allocs.load(), 0u);
}

TEST(ZeroAlloc, HeterogeneousDiagonalBlAlwaysStepIsAllocationFree)
{
    // The exhaustive loop runs every router's RC/VA/SA every cycle,
    // so this is the densest sweep over the SoA core's bitmask paths
    // (including the wide-channel pairing retry in SA).
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.alwaysStep = true;
    EXPECT_EQ(measureSteadyStateAllocs(cfg), 0u);
}

// ------------------------------------------------ sizing contracts --
//
// footprintBytes() claims to report the SoA storage from container
// capacities sized once at wiring time. Pin that claim structurally:
// the value must move by exactly the bytes the layout formula
// predicts when one sizing input changes, and must not move at all
// across steady-state stepping (the memory-side twin of the
// zero-allocation assertions above).

TEST(Footprint, RouterCoreScalesExactlyWithBufferDepth)
{
    // slot FIFO storage is total-slots x depth x sizeof(Flit); every
    // other array in the core is depth-independent.
    RouterCore shallow, deep;
    shallow.init(/*ports=*/5, /*vcs=*/3, /*depth=*/4);
    deep.init(5, 3, 8);
    EXPECT_EQ(deep.footprintBytes() - shallow.footprintBytes(),
              static_cast<std::uint64_t>(5 * 3) * 4 * sizeof(Flit));
}

TEST(Footprint, RouterCoreHotSectionsStartOnCacheLines)
{
    // The packed hot buffer promises every section its own 64-byte
    // boundary, so RC/VA/SA never split a mask or slot array across
    // the line holding a neighbouring section.
    RouterCore core;
    core.init(/*ports=*/5, /*vcs=*/3, /*depth=*/4);
    auto lineAligned = [](const void *p) {
        return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
    };
    EXPECT_TRUE(lineAligned(core.activeMask));
    EXPECT_TRUE(lineAligned(core.rcMask));
    EXPECT_TRUE(lineAligned(core.vaReqMask));
    EXPECT_TRUE(lineAligned(core.saReqMask));
    EXPECT_TRUE(lineAligned(core.headArrive));
    EXPECT_TRUE(lineAligned(core.headSince));
    EXPECT_TRUE(lineAligned(core.pkt));
    EXPECT_TRUE(lineAligned(core.outPort));
    EXPECT_TRUE(lineAligned(core.outVc));
    EXPECT_TRUE(lineAligned(core.vcLo));
    EXPECT_TRUE(lineAligned(core.vcHi));
}

TEST(Footprint, RouterCoreCountsPackedCreditStorage)
{
    // connectOutput only records wiring facts; the packed credit
    // buffer appears at finalizeWiring(): one 64-byte-aligned row of
    // roundUp(max downVcs, 16) ints per port, plus 64 B of alignment
    // slack.
    RouterCore core;
    core.init(5, 3, 4);
    std::uint64_t unwired = core.footprintBytes();
    core.connectOutput(/*p=*/0, /*chan=*/nullptr, /*lanes=*/1,
                       /*down_vcs=*/6, /*down_depth=*/4);
    core.connectOutput(/*p=*/1, nullptr, 1, /*down_vcs=*/4, 4);
    EXPECT_EQ(core.footprintBytes(), unwired);

    core.finalizeWiring();
    std::size_t row = (6 + 15) / 16 * 16; // max downVcs rounded to 16
    EXPECT_EQ(core.footprintBytes() - unwired,
              (5 * row + 16) * sizeof(int));
    EXPECT_EQ(core.outputs[0].credits[5], 4); // initDepth landed
    EXPECT_EQ(core.outputs[1].credits[3], 4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                  core.outputs[0].credits) % 64,
              0u);
}

TEST(Footprint, ArenaMovePreservesStateAndAlignment)
{
    // moveToArena relocates the packed FIFO, hot-section, and credit
    // storage into one externally owned region. The move must keep
    // every section on its own cache line, preserve live contents
    // (credits, buffered flits), and leave footprintBytes unchanged —
    // placement is a performance property, never a sizing one.
    hnoc::RouterCore core;
    core.init(/*ports=*/5, /*vcs=*/3, /*depth=*/4);
    core.connectOutput(/*p=*/0, nullptr, 1, /*down_vcs=*/6, /*depth=*/4);
    core.connectOutput(/*p=*/1, nullptr, 1, /*down_vcs=*/4, /*depth=*/4);
    core.finalizeWiring();
    core.outputs[0].credits[2] = 7; // sentinel surviving the move
    hnoc::Flit f;
    f.seq = 42;
    core.fifo[3].push_back(f);
    std::uint64_t before = core.footprintBytes();
    // Capture the quote before moving: arenaBytes() reports what a
    // move *would* carve, and the packed-FIFO section transfers
    // ownership out of the core when the move happens.
    std::size_t quoted = core.arenaBytes();

    hnoc::HotArena arena;
    arena.reserve(quoted);
    ASSERT_GT(arena.reservedBytes(), 0u);
    core.moveToArena(arena);

    auto lineAligned = [](const void *p) {
        return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
    };
    EXPECT_TRUE(lineAligned(core.activeMask));
    EXPECT_TRUE(lineAligned(core.saReqMask));
    EXPECT_TRUE(lineAligned(core.headArrive));
    EXPECT_TRUE(lineAligned(core.outputs[0].credits));
    EXPECT_EQ(core.outputs[0].credits[2], 7);
    EXPECT_EQ(core.outputs[1].credits[3], 4); // initDepth intact
    ASSERT_EQ(core.fifo[3].size(), 1u);
    EXPECT_EQ(core.fifo[3].front().seq, 42);
    EXPECT_EQ(core.footprintBytes(), before);
    // Every section landed inside the reserved region: the bump
    // cursor advanced (no section fell back to self-owned storage)
    // and never past the quoted worst case (arenaBytes rounds each
    // section up to whole lines; used() ends at the last section's
    // exact byte count).
    EXPECT_GT(arena.used(), 0u);
    EXPECT_LE(arena.used(), quoted);
    EXPECT_LE(arena.used(), arena.reservedBytes());
}

TEST(Footprint, SteadyStateMemoryAuditIsConstant)
{
    // Once warm, continued stepping performs zero allocations (proved
    // above), so no container capacity can change and the audit must
    // be byte-for-byte stable — including the packet arena's
    // high-water capacity row.
    Network net(makeLayoutConfig(LayoutKind::DiagonalBL));
    int nodes = net.topology().numNodes();
    int flits = net.dataPacketFlits();
    for (int c = 0; c < 20000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }

    MemoryAudit warm = net.memoryAudit();
    for (int c = 0; c < 2000; ++c) {
        injectOne(net, nodes, flits);
        net.step();
    }
    MemoryAudit later = net.memoryAudit();

    ASSERT_EQ(warm.components.size(), later.components.size());
    for (std::size_t i = 0; i < warm.components.size(); ++i) {
        EXPECT_EQ(warm.components[i].name, later.components[i].name);
        EXPECT_EQ(warm.components[i].bytes, later.components[i].bytes)
            << warm.components[i].name;
    }
    EXPECT_GT(warm.totalBytes(), 0u);
    EXPECT_EQ(warm.totalBytes(), later.totalBytes());
    EXPECT_EQ(warm.tiles, nodes);
}

} // namespace
} // namespace hnoc
