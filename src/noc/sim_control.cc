#include "noc/sim_control.hh"

#include <cmath>

#include "common/logging.hh"

namespace hnoc
{

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::FixedWindow:
        return "fixed-window";
      case StopReason::CiConverged:
        return "ci-converged";
      case StopReason::MeasureCeiling:
        return "measure-ceiling";
      case StopReason::SaturationAbort:
        return "saturation-abort";
    }
    return "fixed-window";
}

StopReason
stopReasonFromName(const std::string &s)
{
    if (s == "fixed-window")
        return StopReason::FixedWindow;
    if (s == "ci-converged")
        return StopReason::CiConverged;
    if (s == "measure-ceiling")
        return StopReason::MeasureCeiling;
    if (s == "saturation-abort")
        return StopReason::SaturationAbort;
    fatal("sim_control: unknown stop reason '%s'", s.c_str());
}

const char *
simControlModeName(SimControlMode m)
{
    return m == SimControlMode::Adaptive ? "adaptive" : "reference";
}

SimControlMode
simControlModeFromName(const std::string &s)
{
    if (s == "reference")
        return SimControlMode::Reference;
    if (s == "adaptive")
        return SimControlMode::Adaptive;
    fatal("sim_control: unknown control mode '%s'", s.c_str());
}

bool
WarmupDetector::addEpoch(double mean_latency, std::uint64_t delivered)
{
    ++epochs_;
    if (steady_)
        return true;
    if (delivered == 0) {
        // No signal this epoch; a stall is not evidence of stability.
        havePrev_ = false;
        run_ = 0;
        return false;
    }
    if (havePrev_) {
        double scale = std::max(std::fabs(prevMean_), 1e-12);
        if (std::fabs(mean_latency - prevMean_) <=
            opts_.warmupTolerance * scale)
            ++run_;
        else
            run_ = 0;
    }
    prevMean_ = mean_latency;
    havePrev_ = true;
    if (run_ >= opts_.warmupEpochs)
        steady_ = true;
    return steady_;
}

void
BatchMeansController::addEpoch(double mean_latency,
                               std::uint64_t delivered)
{
    batchLatencySum_ += mean_latency * static_cast<double>(delivered);
    batchDelivered_ += delivered;
    ++batchEpochs_;
    if (batchEpochs_ < std::max(1, opts_.epochsPerBatch))
        return;
    // Close the batch; empty batches (a stalled network) carry no
    // latency information and are dropped rather than recorded as 0.
    if (batchDelivered_ > 0) {
        stats_.add(batchLatencySum_ /
                   static_cast<double>(batchDelivered_));
        double hw = relHalfWidth();
        history_.push_back(std::isfinite(hw) ? hw : -1.0);
    }
    batchLatencySum_ = 0.0;
    batchDelivered_ = 0;
    batchEpochs_ = 0;
}

bool
BatchMeansController::converged() const
{
    if (stats_.count() <
        static_cast<std::uint64_t>(std::max(2, opts_.minBatches)))
        return false;
    return relHalfWidth() <= opts_.ciTarget;
}

bool
SaturationDetector::addEpoch(std::size_t queue_depth)
{
    if (saturated_)
        return true;
    if (havePrev_ && queue_depth > prev_) {
        if (run_ == 0)
            runStartDepth_ = prev_;
        ++run_;
    } else {
        run_ = 0;
    }
    prev_ = queue_depth;
    havePrev_ = true;
    if (run_ >= opts_.satEpochs) {
        double nodes = static_cast<double>(nodes_);
        double depth = static_cast<double>(queue_depth);
        double growth =
            static_cast<double>(queue_depth - runStartDepth_);
        if (depth >= opts_.satDepthPerNode * nodes &&
            growth >= opts_.satGrowthPerNode * nodes)
            saturated_ = true;
    }
    return saturated_;
}

} // namespace hnoc
