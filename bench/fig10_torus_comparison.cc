/**
 * @file
 * Figure 10: heterogeneity helps an edge-symmetric torus far less than
 * a mesh. For each application workload we report the Diagonal+BL
 * latency reduction over the homogeneous baseline, on the mesh and on
 * an 8x8 torus (same router placements, wrap links, dateline VCs).
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main(int argc, char **argv)
{
    printHeader("Figure 10",
                "mesh vs torus: latency reduction per application "
                "(Diagonal+BL vs baseline)");
    if (parseAdaptiveFlag(argc, argv))
        std::printf("(--adaptive: applies to the open-loop network "
                    "sweeps only; the closed-loop CMP timing runs "
                    "below keep their fixed windows)\n");

    NetworkConfig mesh_base = makeLayoutConfig(LayoutKind::Baseline);
    NetworkConfig mesh_het = makeLayoutConfig(LayoutKind::DiagonalBL);
    NetworkConfig torus_base = mesh_base;
    torus_base.topology = TopologyType::Torus;
    torus_base.name = "torus-baseline";
    NetworkConfig torus_het = mesh_het;
    torus_het.topology = TopologyType::Torus;
    torus_het.name = "torus-diagonal-bl";

    CmpConfig cmp;
    std::printf("%-12s %14s %14s\n", "workload", "mesh red. %",
                "torus red. %");
    RunningStat mesh_red;
    RunningStat torus_red;
    for (const WorkloadProfile &w : allWorkloads()) {
        if (w.name == "libquantum")
            continue; // case-study-II-only workload
        auto mb = runCmpExperiment(mesh_base, cmp, w);
        auto mh = runCmpExperiment(mesh_het, cmp, w);
        auto tb = runCmpExperiment(torus_base, cmp, w);
        auto th = runCmpExperiment(torus_het, cmp, w);
        double mr = pctReduction(mb.avgLatencyNs, mh.avgLatencyNs);
        double tr = pctReduction(tb.avgLatencyNs, th.avgLatencyNs);
        mesh_red.add(mr);
        torus_red.add(tr);
        std::printf("%-12s %14.1f %14.1f\n", w.name.c_str(), mr, tr);
    }
    std::printf("%-12s %14.1f %14.1f\n", "average", mesh_red.mean(),
                torus_red.mean());
    if (mesh_red.mean() > 0.0) {
        std::printf("\ntorus benefit is %.0f%% smaller than mesh "
                    "benefit (paper: ~44%% smaller)\n",
                    pctReduction(mesh_red.mean(), torus_red.mean()));
    }
    return 0;
}
