# Empty compiler generated dependencies file for test_hetero_constraints_extra.
# This may be replaced when dependencies are built.
