file(REMOVE_RECURSE
  "CMakeFiles/fig13_memory_controllers.dir/fig13_memory_controllers.cc.o"
  "CMakeFiles/fig13_memory_controllers.dir/fig13_memory_controllers.cc.o.d"
  "fig13_memory_controllers"
  "fig13_memory_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_memory_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
