file(REMOVE_RECURSE
  "CMakeFiles/fig07_ur_traffic.dir/fig07_ur_traffic.cc.o"
  "CMakeFiles/fig07_ur_traffic.dir/fig07_ur_traffic.cc.o.d"
  "fig07_ur_traffic"
  "fig07_ur_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ur_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
