#include "noc/sim_harness.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/stats.hh"
#include "noc/watchdog.hh"
#include "telemetry/health.hh"
#include "telemetry/run_report.hh"

namespace hnoc
{

namespace
{

/** Open-loop Bernoulli injector with measurement-window tracking. */
class OpenLoopClient : public NetworkClient
{
  public:
    OpenLoopClient(TrafficPattern pattern, const NetworkConfig &config,
                   const SimPointOptions &opts)
        : opts_(opts),
          gen_(pattern, config.numNodes(),
               nodeGridCols(config), opts.seed),
          rng_(opts.seed ^ 0xabcdef12345ULL)
    {}

    static int
    nodeGridCols(const NetworkConfig &config)
    {
        // Spatial patterns operate on the node grid: for concentrated
        // topologies the 64 nodes still form an 8x8 logical grid.
        int nodes = config.numNodes();
        int cols = 1;
        while (cols * cols < nodes)
            ++cols;
        return cols;
    }

    void
    preCycle(Network &net, Cycle now) override
    {
        if (!injecting_)
            return;
        int nodes = net.topology().numNodes();
        int data_flits = net.dataPacketFlits();
        for (NodeId n = 0; n < nodes; ++n) {
            if (!gen_.shouldInject(n, opts_.injectionRate, now))
                continue;
            NodeId dst = gen_.pickDest(n);
            if (dst == INVALID_NODE)
                continue;
            int flits = data_flits;
            if (opts_.controlFraction > 0.0 &&
                rng_.chance(opts_.controlFraction))
                flits = 1;
            bool tracked = measuring_;
            Packet *pkt = net.enqueuePacket(n, dst, flits,
                                            tracked ? 1 : 0);
            (void)pkt;
            if (tracked)
                ++trackedCreated_;
        }
    }

    void
    onPacketDelivered(Network &net, Packet &pkt, Cycle now) override
    {
        (void)now;
        if (measuring_ || drainPhase_) {
            if (now >= windowStart_ && now < windowEnd_)
                ++deliveredInWindow_;
        }
        if (epochStats_) {
            auto lat = static_cast<double>(pkt.ejectedAt - pkt.createdAt);
            epochAllSum_ += lat;
            ++epochAllN_;
            if (pkt.tag == 1) {
                epochTrackedSum_ += lat;
                ++epochTrackedN_;
            }
        }
        if (pkt.tag != 1)
            return;
        ++trackedDelivered_;
        double ns_per_cycle = net.nsPerCycle();
        auto total = static_cast<double>(pkt.ejectedAt - pkt.createdAt);
        auto queuing = static_cast<double>(pkt.queuingLatency());
        auto transfer = static_cast<double>(
            net.minTransferCycles(pkt.src, pkt.dst, pkt.numFlits));
        double blocking = std::max(0.0, total - queuing - transfer);

        latencyCycles_.add(total);
        latencyNs_.add(total * ns_per_cycle);
        queuingNs_.add(queuing * ns_per_cycle);
        transferNs_.add(transfer * ns_per_cycle);
        blockingNs_.add(blocking * ns_per_cycle);
        latencyHist_.add(total * ns_per_cycle);

        auto hops = static_cast<std::size_t>(pkt.hops);
        if (hops >= byHops_.size())
            byHops_.resize(hops + 1);
        byHops_[hops].add(total * ns_per_cycle);
    }

    void
    beginMeasurement(Cycle now, Cycle window)
    {
        measuring_ = true;
        windowStart_ = now;
        windowEnd_ = now + window;
    }

    void
    endMeasurement(Cycle now)
    {
        measuring_ = false;
        drainPhase_ = true;
        // Adaptive runs stop mid-window; clamp so drain deliveries
        // past the actual window end are not counted as accepted.
        windowEnd_ = std::min(windowEnd_, now);
    }

    void stopInjecting() { injecting_ = false; }

    /** Turn on per-epoch latency accumulation (adaptive mode only,
     *  so the reference hot path keeps a single untaken branch). */
    void enableEpochStats() { epochStats_ = true; }

    /** Mean latency (cycles) and deliveries of the epoch just ended,
     *  over all delivered packets; resets the accumulator. */
    void
    takeEpochAll(double &mean, std::uint64_t &delivered)
    {
        delivered = epochAllN_;
        mean = delivered ? epochAllSum_ / static_cast<double>(delivered)
                         : 0.0;
        epochAllSum_ = 0.0;
        epochAllN_ = 0;
    }

    /** Same for tracked (measurement-window) packets only. */
    void
    takeEpochTracked(double &mean, std::uint64_t &delivered)
    {
        delivered = epochTrackedN_;
        mean = delivered
                   ? epochTrackedSum_ / static_cast<double>(delivered)
                   : 0.0;
        epochTrackedSum_ = 0.0;
        epochTrackedN_ = 0;
    }

    bool
    allTrackedDelivered() const
    {
        return trackedDelivered_ >= trackedCreated_;
    }

    const SimPointOptions opts_;
    TrafficGenerator gen_;
    Rng rng_;

    bool injecting_ = true;
    bool measuring_ = false;
    bool drainPhase_ = false;
    Cycle windowStart_ = 0;
    Cycle windowEnd_ = 0;

    std::uint64_t trackedCreated_ = 0;
    std::uint64_t trackedDelivered_ = 0;
    std::uint64_t deliveredInWindow_ = 0;

    bool epochStats_ = false;
    double epochAllSum_ = 0.0;
    std::uint64_t epochAllN_ = 0;
    double epochTrackedSum_ = 0.0;
    std::uint64_t epochTrackedN_ = 0;

    RunningStat latencyCycles_;
    RunningStat latencyNs_;
    RunningStat queuingNs_;
    RunningStat transferNs_;
    RunningStat blockingNs_;
    Histogram latencyHist_{0.0, 2000.0, 4000};
    std::vector<RunningStat> byHops_;
};

} // namespace

double
simScale()
{
    static const double scale = [] {
        const char *env = std::getenv("HNOC_SIM_SCALE");
        if (!env)
            return 1.0;
        double v = std::atof(env);
        return v > 0.0 ? v : 1.0;
    }();
    return scale;
}

SimPointResult
runOpenLoop(const NetworkConfig &config, TrafficPattern pattern,
            const SimPointOptions &opts_in)
{
    SimPointOptions opts = opts_in;
    opts.warmupCycles = static_cast<Cycle>(
        static_cast<double>(opts.warmupCycles) * simScale());
    opts.measureCycles = static_cast<Cycle>(
        static_cast<double>(opts.measureCycles) * simScale());
    opts.drainCycles = static_cast<Cycle>(
        static_cast<double>(opts.drainCycles) * simScale());
    opts.control.minWarmupCycles = static_cast<Cycle>(
        static_cast<double>(opts.control.minWarmupCycles) * simScale());
    opts.control.minMeasureCycles = static_cast<Cycle>(
        static_cast<double>(opts.control.minMeasureCycles) * simScale());

    Network net(config);
    OpenLoopClient client(pattern, config, opts);
    net.setClient(&client);
    if (opts.observer)
        net.setObserver(opts.observer);

    FlightRecorder recorder(opts.flightRecorder
                                ? opts.flightRecorderCapacity
                                : 1);
    if (opts.flightRecorder)
        net.attachFlightRecorder(&recorder);

    // Self-profiling covers the whole run (warmup, measurement and
    // drain): the attribution question is "where does the simulator
    // spend wall clock", not "what does the measurement window cost".
    Profiler prof;
    if (opts.profile && kTelemetryEnabled)
        net.attachProfiler(&prof);
    auto finish_profile = [&](SimPointResult &r) {
        if (!opts.profile || !kTelemetryEnabled)
            return;
        r.profile = std::make_shared<Profiler>(prof);
        r.memory = std::make_shared<MemoryAudit>(net.memoryAudit());
    };

    // Blame attribution also covers the whole run: every packet is
    // ledgered from creation, so the accounting identity holds for
    // warmup and drain traffic too.
    std::shared_ptr<BlameCollector> blame;
    if (opts.collectBlame && kTelemetryEnabled) {
        blame = net.makeBlameCollector();
        net.attachBlame(blame.get());
    }
    auto finish_blame = [&](SimPointResult &r) { r.blame = blame; };

    Cycle audit_every = opts.auditEvery;
#ifndef NDEBUG
    // Debug builds audit every telemetry epoch by default; release
    // builds audit only on demand (opts.auditEvery).
    if (audit_every == 0)
        audit_every = opts.telemetryEpoch;
#endif

    HealthOptions health_opts;
    health_opts.targetCycles = opts.warmupCycles + opts.measureCycles;
    HealthMonitor health(health_opts);
    ProgressWatchdog watchdog(
        opts.watchdogWindow > 0 ? opts.watchdogWindow : 50000);
    if (!opts.postmortemPath.empty())
        watchdog.setPostmortemPath(opts.postmortemPath);

    bool instrumented = opts.progressEvery > 0 || audit_every > 0 ||
                        opts.watchdogWindow > 0;
    auto run_phase = [&](Cycle cycles) {
        if (!instrumented) {
            net.run(cycles); // keep the uninstrumented loop tight
            return;
        }
        for (Cycle i = 0; i < cycles; ++i) {
            net.step();
            if (audit_every > 0 && net.now() % audit_every == 0) {
                std::string err;
                if (!net.auditCreditConservation(&err))
                    panic("credit conservation violated @ cycle %llu: %s",
                          static_cast<unsigned long long>(net.now()),
                          err.c_str());
            }
            if (opts.watchdogWindow > 0)
                watchdog.check(net);
            if (opts.progressEvery > 0 &&
                net.now() % opts.progressEvery == 0) {
                HealthSample s = net.healthSample();
                health.probe(s, net.telemetry());
                std::fprintf(stderr, "%s\n",
                             health.progressLine(s).c_str());
            }
        }
    };

    if (opts.control.mode == SimControlMode::Adaptive) {
        // ---- Adaptive path: the fixed windows become ceilings and
        // the sim_control stopping rules end each phase. Every
        // decision below reads only simulated state at epoch
        // boundaries, so results are independent of thread count.
        const SimControlOptions &ctl = opts.control;
        Cycle epoch = opts.telemetryEpoch > 0 ? opts.telemetryEpoch
                                              : 1000;
        int nodes = config.numNodes();
        client.enableEpochStats();

        WarmupDetector warm(ctl);
        SaturationDetector sat(ctl, nodes);
        BatchMeansController bm(ctl);

        SimPointResult res;
        res.offeredRate = opts.injectionRate;

        // Warmup: epoch-sized chunks until the latency series is
        // steady (and the floor is paid), capped at warmupCycles.
        // Saturated points never stabilize, so the queue-growth
        // detector also watches warmup and aborts the point outright.
        Cycle warmup_used = 0;
        bool aborted = false;
        while (warmup_used < opts.warmupCycles) {
            Cycle chunk = std::min(epoch,
                                   opts.warmupCycles - warmup_used);
            run_phase(chunk);
            warmup_used += chunk;
            double mean = 0.0;
            std::uint64_t delivered = 0;
            client.takeEpochAll(mean, delivered);
            bool steady = warm.addEpoch(mean, delivered);
            if (sat.addEpoch(net.totalSourceQueueDepth())) {
                aborted = true;
                break;
            }
            if (steady && warmup_used >= ctl.minWarmupCycles)
                break;
        }
        res.warmupCyclesUsed = warmup_used;

        std::shared_ptr<MetricRegistry> reg;
        Cycle window = 0;
        Cycle drained = 0;
        if (aborted) {
            // Saturation during warmup: no measurement is possible,
            // classify and return without paying measure or drain.
            res.stopReason = StopReason::SaturationAbort;
            res.saturated = true;
        } else {
            net.resetMeasurement();
            if (opts.collectMetrics) {
                reg = net.makeMetricRegistry(epoch);
                net.attachTelemetry(reg.get());
            }
            client.beginMeasurement(net.now(), opts.measureCycles);

            res.stopReason = StopReason::MeasureCeiling;
            Cycle measure_used = 0;
            while (measure_used < opts.measureCycles) {
                Cycle chunk = std::min(
                    epoch, opts.measureCycles - measure_used);
                run_phase(chunk);
                measure_used += chunk;
                double mean = 0.0;
                std::uint64_t delivered = 0;
                client.takeEpochTracked(mean, delivered);
                bm.addEpoch(mean, delivered);
                if (sat.addEpoch(net.totalSourceQueueDepth())) {
                    res.stopReason = StopReason::SaturationAbort;
                    aborted = true;
                    break;
                }
                if (measure_used >= ctl.minMeasureCycles &&
                    bm.converged()) {
                    res.stopReason = StopReason::CiConverged;
                    break;
                }
            }
            window = net.measuredCycles();

            res.power = net.powerReport();
            res.networkPowerW = res.power.total();
            res.combineRate = net.combineRate();
            res.bufferUtilPct = net.bufferUtilizationPercent();
            res.linkUtilPct = net.linkUtilizationPercent();

            if (reg)
                net.detachTelemetry();
            client.endMeasurement(net.now());

            if (aborted) {
                // Fast-abort: skip the drain entirely; the point is
                // saturated and its stragglers would never finish.
                res.saturated = true;
            } else {
                while (!client.allTrackedDelivered() &&
                       drained < opts.drainCycles) {
                    net.step();
                    ++drained;
                    if (instrumented && opts.watchdogWindow > 0)
                        watchdog.check(net);
                }
                res.saturated = !client.allTrackedDelivered();
                res.drainTruncated =
                    drained >= opts.drainCycles && res.saturated;
            }
        }
        res.watchdogTrips = watchdog.trips();
        if (opts.flightRecorder)
            net.attachFlightRecorder(nullptr);

        if (window > 0) {
            res.acceptedRate =
                static_cast<double>(client.deliveredInWindow_) /
                (static_cast<double>(nodes) *
                 static_cast<double>(window));
        }
        res.measureCyclesUsed = window;
        res.simulatedCycles = net.now();
        double hw = bm.relHalfWidth();
        res.ciRelHalfWidth = std::isfinite(hw) ? hw : -1.0;
        res.ciHistory = bm.history();
        res.avgLatencyCycles = client.latencyCycles_.mean();
        res.avgLatencyNs = client.latencyNs_.mean();
        res.avgQueuingNs = client.queuingNs_.mean();
        res.avgBlockingNs = client.blockingNs_.mean();
        res.avgTransferNs = client.transferNs_.mean();
        res.p95LatencyNs = client.latencyHist_.percentile(0.95);
        res.trackedCreated = client.trackedCreated_;
        res.trackedDelivered = client.trackedDelivered_;
        res.latencyByHopsNs.reserve(client.byHops_.size());
        for (const RunningStat &s : client.byHops_)
            res.latencyByHopsNs.push_back(s.mean());
        res.metrics = std::move(reg);
        finish_profile(res);
        finish_blame(res);
        return res;
    }

    run_phase(opts.warmupCycles);

    net.resetMeasurement();
    // Scope the registry to exactly the measurement window: attach
    // after warmup, detach (finishing the partial epoch) before drain.
    std::shared_ptr<MetricRegistry> reg;
    if (opts.collectMetrics) {
        reg = net.makeMetricRegistry(opts.telemetryEpoch);
        net.attachTelemetry(reg.get());
    }
    client.beginMeasurement(net.now(), opts.measureCycles);
    run_phase(opts.measureCycles);
    Cycle window = net.measuredCycles();

    // Snapshot window-scoped measurements before draining.
    SimPointResult res;
    res.offeredRate = opts.injectionRate;
    res.power = net.powerReport();
    res.networkPowerW = res.power.total();
    res.combineRate = net.combineRate();
    res.bufferUtilPct = net.bufferUtilizationPercent();
    res.linkUtilPct = net.linkUtilizationPercent();

    if (reg)
        net.detachTelemetry();
    client.endMeasurement(net.now());

    // Drain: keep traffic flowing so tracked packets finish under the
    // same load, up to the drain cap.
    Cycle drained = 0;
    while (!client.allTrackedDelivered() && drained < opts.drainCycles) {
        net.step();
        ++drained;
        if (instrumented && opts.watchdogWindow > 0)
            watchdog.check(net);
    }
    res.saturated = !client.allTrackedDelivered();
    res.drainTruncated = drained >= opts.drainCycles && res.saturated;
    res.watchdogTrips = watchdog.trips();
    if (opts.flightRecorder)
        net.attachFlightRecorder(nullptr);

    res.warmupCyclesUsed = opts.warmupCycles;
    res.measureCyclesUsed = window;
    res.simulatedCycles = net.now();

    int nodes = config.numNodes();
    res.acceptedRate =
        static_cast<double>(client.deliveredInWindow_) /
        (static_cast<double>(nodes) * static_cast<double>(window));
    res.avgLatencyCycles = client.latencyCycles_.mean();
    res.avgLatencyNs = client.latencyNs_.mean();
    res.avgQueuingNs = client.queuingNs_.mean();
    res.avgBlockingNs = client.blockingNs_.mean();
    res.avgTransferNs = client.transferNs_.mean();
    res.p95LatencyNs = client.latencyHist_.percentile(0.95);
    res.trackedCreated = client.trackedCreated_;
    res.trackedDelivered = client.trackedDelivered_;
    res.latencyByHopsNs.reserve(client.byHops_.size());
    for (const RunningStat &s : client.byHops_)
        res.latencyByHopsNs.push_back(s.mean());
    res.metrics = std::move(reg);
    finish_profile(res);
    finish_blame(res);
    return res;
}

std::uint64_t
derivePointSeed(std::uint64_t base, std::uint64_t index)
{
    // splitmix64 over (base, index): decorrelated streams per point,
    // identical no matter which thread runs the point.
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<SimPointResult>
runBatch(const std::vector<BatchPoint> &points, JobPool *pool)
{
    return runPointsParallel(
        points,
        [](const BatchPoint &p) {
            return runOpenLoop(p.config, p.pattern, p.opts);
        },
        pool);
}

std::vector<SimPointResult>
sweepLoad(const NetworkConfig &config, TrafficPattern pattern,
          const std::vector<double> &rates, SimPointOptions opts,
          JobPool *pool)
{
    return runPointsParallel(
        rates,
        [&](double r) {
            SimPointOptions o = opts;
            o.injectionRate = r;
            return runOpenLoop(config, pattern, o);
        },
        pool);
}

std::vector<SimPointResult>
sweepLoadSerial(const NetworkConfig &config, TrafficPattern pattern,
                const std::vector<double> &rates, SimPointOptions opts)
{
    std::vector<SimPointResult> curve;
    curve.reserve(rates.size());
    for (double r : rates) {
        opts.injectionRate = r;
        curve.push_back(runOpenLoop(config, pattern, opts));
    }
    return curve;
}

std::vector<SimPointResult>
runMultiSeed(const NetworkConfig &config, TrafficPattern pattern,
             SimPointOptions opts, int num_seeds, JobPool *pool)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(static_cast<std::size_t>(num_seeds));
    for (int i = 0; i < num_seeds; ++i)
        seeds.push_back(
            derivePointSeed(opts.seed, static_cast<std::uint64_t>(i)));
    return runPointsParallel(
        seeds,
        [&](std::uint64_t s) {
            SimPointOptions o = opts;
            o.seed = s;
            return runOpenLoop(config, pattern, o);
        },
        pool);
}

std::vector<SimPointResult>
runMultiPattern(const NetworkConfig &config,
                const std::vector<TrafficPattern> &patterns,
                const SimPointOptions &opts, JobPool *pool)
{
    return runPointsParallel(
        patterns,
        [&](TrafficPattern p) { return runOpenLoop(config, p, opts); },
        pool);
}

double
zeroLoadLatencyNs(const NetworkConfig &config, TrafficPattern pattern,
                  std::uint64_t seed)
{
    SimPointOptions opts;
    opts.injectionRate = 0.001;
    opts.seed = seed;
    SimPointResult res = runOpenLoop(config, pattern, opts);
    return res.avgLatencyNs;
}

double
saturationThroughput(const std::vector<SimPointResult> &curve)
{
    double best = 0.0;
    for (const auto &p : curve)
        best = std::max(best, p.acceptedRate);
    return best;
}

double
preSaturationAvgLatencyNs(const std::vector<SimPointResult> &curve)
{
    RunningStat s;
    for (const auto &p : curve) {
        if (p.saturated)
            continue;
        if (p.offeredRate > 0.0 &&
            p.acceptedRate < 0.95 * p.offeredRate)
            continue;
        s.add(p.avgLatencyNs);
    }
    return s.count() ? s.mean()
                     : (curve.empty() ? 0.0 : curve.front().avgLatencyNs);
}

std::shared_ptr<MetricRegistry>
mergeRegistries(const std::vector<SimPointResult> &results)
{
    std::shared_ptr<MetricRegistry> merged;
    for (const auto &r : results) {
        if (!r.metrics)
            continue;
        if (!merged)
            merged = std::make_shared<MetricRegistry>(*r.metrics);
        else
            merged->merge(*r.metrics);
    }
    return merged;
}

std::shared_ptr<Profiler>
mergeProfiles(const std::vector<SimPointResult> &results)
{
    std::shared_ptr<Profiler> merged;
    for (const auto &r : results) {
        if (!r.profile)
            continue;
        if (!merged)
            merged = std::make_shared<Profiler>(*r.profile);
        else
            merged->merge(*r.profile);
    }
    return merged;
}

std::shared_ptr<MemoryAudit>
maxMemoryAudit(const std::vector<SimPointResult> &results)
{
    std::shared_ptr<MemoryAudit> best;
    for (const auto &r : results) {
        if (!r.memory)
            continue;
        if (!best || r.memory->totalBytes() > best->totalBytes())
            best = r.memory;
    }
    return best;
}

std::shared_ptr<BlameCollector>
mergeBlame(const std::vector<SimPointResult> &results)
{
    std::shared_ptr<BlameCollector> merged;
    for (const auto &r : results) {
        if (!r.blame)
            continue;
        if (!merged)
            merged = std::make_shared<BlameCollector>(*r.blame);
        else
            merged->merge(*r.blame);
    }
    return merged;
}

bool
writeRunReport(const std::string &path, const std::string &title,
               const std::vector<std::string> &labels,
               const std::vector<SimPointResult> &results)
{
    RunReport report("sim_harness", title);
    report.meta("points", static_cast<double>(results.size()));
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::string label = i < labels.size()
                                ? labels[i]
                                : "point" + std::to_string(i);
        report.addPoint(label, results[i]);
    }
    if (auto merged = mergeRegistries(results))
        report.addRegistry("merged", *merged);
    if (auto prof = mergeProfiles(results)) {
        auto mem = maxMemoryAudit(results);
        report.setProfile(*prof, mem ? *mem : MemoryAudit{});
    }
    if (auto b = mergeBlame(results))
        report.setBlame(*b);
    return report.writeFile(path);
}

} // namespace hnoc
