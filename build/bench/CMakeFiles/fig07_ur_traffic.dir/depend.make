# Empty dependencies file for fig07_ur_traffic.
# This may be replaced when dependencies are built.
