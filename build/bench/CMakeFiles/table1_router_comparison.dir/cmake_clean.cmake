file(REMOVE_RECURSE
  "CMakeFiles/table1_router_comparison.dir/table1_router_comparison.cc.o"
  "CMakeFiles/table1_router_comparison.dir/table1_router_comparison.cc.o.d"
  "table1_router_comparison"
  "table1_router_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_router_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
