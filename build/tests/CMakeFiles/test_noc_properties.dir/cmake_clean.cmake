file(REMOVE_RECURSE
  "CMakeFiles/test_noc_properties.dir/noc/test_network_properties.cc.o"
  "CMakeFiles/test_noc_properties.dir/noc/test_network_properties.cc.o.d"
  "test_noc_properties"
  "test_noc_properties.pdb"
  "test_noc_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
