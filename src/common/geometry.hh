/**
 * @file
 * 2-D mesh coordinate helpers shared by topologies, layouts and routing.
 */

#ifndef HNOC_COMMON_GEOMETRY_HH
#define HNOC_COMMON_GEOMETRY_HH

#include <cstdlib>

#include "common/types.hh"

namespace hnoc
{

/** A (column, row) position on a 2-D grid. Row 0 is the top row. */
struct Coord
{
    int x = 0; ///< column
    int y = 0; ///< row

    bool operator==(const Coord &other) const = default;
};

/** @return the row-major router/node id of @p c on a grid @p cols wide. */
constexpr RouterId
coordToId(Coord c, int cols)
{
    return c.y * cols + c.x;
}

/** @return the (x, y) coordinate of row-major @p id on a grid @p cols wide. */
constexpr Coord
idToCoord(RouterId id, int cols)
{
    return Coord{id % cols, id / cols};
}

/** @return Manhattan distance between two grid points. */
inline int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/** @return true when @p c lies on either diagonal of an n x n grid. */
constexpr bool
onDiagonal(Coord c, int n)
{
    return c.x == c.y || c.x + c.y == n - 1;
}

} // namespace hnoc

#endif // HNOC_COMMON_GEOMETRY_HH
