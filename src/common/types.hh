/**
 * @file
 * Fundamental scalar types shared by every HeteroNoC module.
 */

#ifndef HNOC_COMMON_TYPES_HH
#define HNOC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace hnoc
{

/** Simulation time, measured in router clock cycles. */
using Cycle = std::uint64_t;

/** A terminal node (core / cache / memory-controller attach point). */
using NodeId = std::int32_t;

/** A router in the network (may differ from NodeId under concentration). */
using RouterId = std::int32_t;

/** Virtual-channel index within an input port. */
using VcId = std::int32_t;

/** Port index within a router. */
using PortId = std::int32_t;

/** Unique packet identifier (monotonically assigned at injection). */
using PacketId = std::uint64_t;

/** A byte-addressable physical memory address. */
using Addr = std::uint64_t;

/** Sentinel for "no node / router / port / VC". */
constexpr NodeId INVALID_NODE = -1;
constexpr RouterId INVALID_ROUTER = -1;
constexpr PortId INVALID_PORT = -1;
constexpr VcId INVALID_VC = -1;

/** Sentinel cycle value meaning "never / unset". */
constexpr Cycle CYCLE_NEVER = std::numeric_limits<Cycle>::max();

} // namespace hnoc

#endif // HNOC_COMMON_TYPES_HH
