/**
 * @file
 * Table 1: power / area / frequency of the three router classes, the
 * buffer-bit accounting (921,600 -> 614,400 bits, -33 %), the §2
 * power-budget inequality, the footnote-2 link-width equation, plus
 * Fig 3's layout maps.
 */

#include "bench_util.hh"
#include "heteronoc/constraints.hh"
#include "power/area_model.hh"
#include "power/frequency_model.hh"
#include "power/router_power.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main()
{
    printHeader("Table 1", "homogeneous vs heterogeneous router classes");

    struct Row
    {
        const char *name;
        RouterPhysParams params;
        double paperPowerW, paperAreaMm2, paperFreqGHz;
    };
    const Row rows[] = {
        {"baseline 3VC/5/192b", router_types::BASELINE, 0.67, 0.290, 2.20},
        {"small    2VC/5/128b", router_types::SMALL, 0.30, 0.235, 2.25},
        {"big      6VC/5/256b", router_types::BIG, 1.19, 0.425, 2.07},
    };

    std::printf("%-22s %10s %10s %10s | paper: %6s %8s %6s\n",
                "router", "power(W)", "area(mm2)", "freq(GHz)", "P", "A",
                "f");
    for (const Row &row : rows) {
        double freq = FrequencyModel::frequencyGHz(row.params);
        auto model = RouterPowerModel::calibrated(row.params, freq);
        double power = model.powerAtActivity(0.5).total();
        double area = AreaModel::areaMm2(row.params);
        std::printf("%-22s %10.2f %10.3f %10.2f | %10.2f %8.3f %6.2f\n",
                    row.name, power, area, freq, row.paperPowerW,
                    row.paperAreaMm2, row.paperFreqGHz);
    }

    std::printf("\nBuffer accounting (8x8 network):\n");
    auto base = accountResources(makeLayoutConfig(LayoutKind::Baseline));
    auto het = accountResources(makeLayoutConfig(LayoutKind::DiagonalBL));
    std::printf("%s\n",
                formatAccounting(base, "homogeneous (64 baseline routers)")
                    .c_str());
    std::printf("%s\n",
                formatAccounting(het,
                                 "heterogeneous (48 small + 16 big)")
                    .c_str());
    std::printf("buffer-bit reduction: %.1f%% (paper: 33%%)\n",
                pctReduction(static_cast<double>(base.bufferBits),
                             static_cast<double>(het.bufferBits)));
    std::printf("minimum small routers for the power budget: %d "
                "(paper: 38)\n",
                minSmallRouters(64));
    std::printf("narrow-link width from the bisection equation: %d b "
                "(paper: 128)\n\n",
                narrowLinkWidth(192, 8, 4, 4));

    std::printf("Figure 3 layouts (B = big router):\n");
    for (LayoutKind kind : allLayouts()) {
        std::printf("%s\n%s\n", layoutName(kind).c_str(),
                    renderLayout(bigRouterMask(kind, 8), 8).c_str());
    }
    return 0;
}
