/**
 * @file
 * Unit tests for the common substrate: statistics, RNG, geometry.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/geometry.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace hnoc
{
namespace
{

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsCombined)
{
    RunningStat a;
    RunningStat b;
    RunningStat all;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform() * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, EmptyMinMaxIsNaN)
{
    RunningStat s;
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    // A single 0.0 sample is distinguishable from "no data".
    s.add(0.0);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    s.reset();
    EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat empty;
    RunningStat one;
    one.add(3.0);
    RunningStat a = one;
    a.merge(empty); // empty rhs: unchanged
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.min(), 3.0);
    RunningStat b;
    b.merge(one); // empty lhs: adopts rhs
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.max(), 3.0);
}

TEST(Histogram, MergeAddsBuckets)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(1.5);
    a.add(2.5);
    b.add(2.5);
    b.add(9.5);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), (1.5 + 2.5 + 2.5 + 9.5) / 4.0);
    EXPECT_EQ(a.buckets()[2], 2u);
    EXPECT_EQ(a.buckets()[9], 1u);
}

TEST(Histogram, MeanAndPercentiles)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.4);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.mean(), 49.9, 0.01);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 1.5);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(UtilizationCounter, CapacityScaling)
{
    UtilizationCounter u(4.0);
    for (int i = 0; i < 10; ++i)
        u.tick(2.0);
    EXPECT_DOUBLE_EQ(u.utilization(), 0.5);
}

TEST(Rng, DeterministicAndUniform)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng r(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, ParetoBounded)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double v = r.pareto(1.5, 10.0, 1000.0);
        EXPECT_GE(v, 10.0);
        EXPECT_LE(v, 1000.0 + 1e-9);
    }
}

TEST(Geometry, RoundTrip)
{
    for (RouterId id = 0; id < 64; ++id) {
        Coord c = idToCoord(id, 8);
        EXPECT_EQ(coordToId(c, 8), id);
    }
}

TEST(Geometry, ManhattanAndDiagonal)
{
    EXPECT_EQ(manhattan({0, 0}, {7, 7}), 14);
    EXPECT_EQ(manhattan({3, 4}, {3, 4}), 0);
    EXPECT_TRUE(onDiagonal({3, 3}, 8));
    EXPECT_TRUE(onDiagonal({5, 2}, 8));
    EXPECT_FALSE(onDiagonal({1, 4}, 8));
}

TEST(HeatMap, Formats)
{
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    std::string s = formatHeatMap(v, 2, "t");
    EXPECT_NE(s.find("1.0"), std::string::npos);
    EXPECT_NE(s.find("4.0"), std::string::npos);
}

} // namespace
} // namespace hnoc
