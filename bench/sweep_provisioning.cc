/**
 * @file
 * Provisioning sweeps around the paper's fixed design points: buffer
 * depth (the paper fixes 5 flits/VC), small/big VC splits other than
 * 2/6, and the frequency/power/area of intermediate VC counts — the
 * analytic scaffolding a designer would want before committing to a
 * heterogeneous configuration.
 */

#include "bench_util.hh"
#include "power/area_model.hh"
#include "power/frequency_model.hh"
#include "power/router_power.hh"

using namespace hnoc;
using namespace hnoc::bench;

namespace
{

bool g_adaptive = false;

void
bufferDepthSweep()
{
    std::printf("\n(a) Buffer-depth sweep, Diagonal+BL, UR @ 0.03 "
                "(paper fixes depth 5):\n");
    std::printf("%8s %12s %12s %10s %12s\n", "depth", "latency(ns)",
                "power(W)", "sat pkt", "sim cycles");
    for (int depth : {3, 4, 5, 6, 8}) {
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
        cfg.bufferDepth = depth;
        SimPointOptions opts;
        opts.warmupCycles = 5000;
        opts.measureCycles = 10000;
        opts.drainCycles = 20000;
        applyAdaptive(opts, g_adaptive);
        auto curve = sweepLoad(cfg, TrafficPattern::UniformRandom,
                               {0.03, 0.05, 0.065}, opts);
        std::printf("%8d %12.1f %12.1f %10.4f %12llu\n", depth,
                    curve[0].avgLatencyNs, curve[0].networkPowerW,
                    saturationThroughput(curve),
                    static_cast<unsigned long long>(
                        totalSimulatedCycles(curve)));
    }
}

void
vcSplitSweep()
{
    std::printf("\n(b) VC-split sweep (small/big VCs, total conserved "
                "where possible), Diagonal placement, UR @ 0.04:\n");
    std::printf("%12s %10s %12s %12s\n", "small/big", "total VCs",
                "latency(ns)", "power(W)");
    struct Split
    {
        int small;
        int big;
    };
    for (Split s : {Split{2, 6}, Split{3, 3}, Split{1, 9}, Split{2, 4},
                    Split{3, 6}}) {
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
        for (int r = 0; r < 64; ++r) {
            bool big = bigRouterMask(LayoutKind::DiagonalBL,
                                     8)[static_cast<std::size_t>(r)];
            cfg.routerVcs[static_cast<std::size_t>(r)] =
                big ? s.big : s.small;
        }
        cfg.clockGHz = -1.0; // re-derive from the slowest router
        SimPointOptions opts;
        opts.injectionRate = 0.04;
        opts.warmupCycles = 5000;
        opts.measureCycles = 10000;
        opts.drainCycles = 20000;
        applyAdaptive(opts, g_adaptive);
        auto res =
            runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);
        int total = 48 * s.small + 16 * s.big;
        std::printf("%7d/%-4d %10d %12.1f %12.1f\n", s.small, s.big,
                    total, res.avgLatencyNs, res.networkPowerW);
    }
    std::printf("(2/6 conserves the baseline's 192 total VCs/PC)\n");
}

void
analyticVcTable()
{
    std::printf("\n(c) Analytic router models across VC counts "
                "(192 b datapath, 5-deep):\n");
    std::printf("%6s %12s %12s %12s\n", "VCs", "freq(GHz)",
                "power@50%(W)", "area(mm2)");
    for (int v : {1, 2, 3, 4, 5, 6, 8}) {
        RouterPhysParams params{5, v, 5, 192, 192};
        double f = FrequencyModel::frequencyGHz(v);
        auto model = RouterPowerModel::calibrated(params, f);
        std::printf("%6d %12.3f %12.3f %12.3f\n", v, f,
                    model.powerAtActivity(0.5).total(),
                    AreaModel::areaMm2(params));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    g_adaptive = parseAdaptiveFlag(argc, argv);
    printHeader("Provisioning sweeps",
                "buffer depth, VC splits, analytic VC scaling");
    bufferDepthSweep();
    vcSplitSweep();
    analyticVcTable();
    return 0;
}
