# Empty compiler generated dependencies file for fig14_asymmetric_cmp.
# This may be replaced when dependencies are built.
