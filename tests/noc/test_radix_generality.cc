/**
 * @file
 * Radix-generality property tests: the simulator and the layout
 * builders must work for mesh sizes other than 8x8 (4x4 through
 * 12x12), for both homogeneous and heterogeneous configurations.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "heteronoc/constraints.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"

namespace hnoc
{
namespace
{

class RadixSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RadixSweep, LayoutsScale)
{
    int radix = GetParam();
    for (LayoutKind kind : {LayoutKind::Baseline, LayoutKind::DiagonalBL,
                            LayoutKind::CenterBL}) {
        NetworkConfig cfg = makeLayoutConfig(kind, radix);
        EXPECT_EQ(cfg.numRouters(), radix * radix);
        if (kind != LayoutKind::Baseline) {
            auto rep = checkConstraints(
                cfg, makeLayoutConfig(LayoutKind::Baseline, radix));
            // The 2/6 VC split with 2N big routers conserves the VC
            // total exactly only when 2N = N^2/4, i.e. the paper's
            // N = 8; other radices need re-derived splits.
            if (radix == 8) {
                EXPECT_TRUE(rep.vcConserved) << layoutName(kind);
            }
            EXPECT_TRUE(rep.bisectionConserved)
                << layoutName(kind) << " radix " << radix;
        }
    }
}

TEST_P(RadixSweep, TrafficDrains)
{
    int radix = GetParam();
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL, radix);
    Network net(cfg);
    Rng rng(static_cast<std::uint64_t>(radix));
    int nodes = radix * radix;
    std::uint64_t injected = 0;
    for (Cycle t = 0; t < 1200; ++t) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (rng.uniform() < 0.02) {
                auto dst = static_cast<NodeId>(
                    rng.below(static_cast<std::uint64_t>(nodes - 1)));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                ++injected;
            }
        }
        net.step();
    }
    Cycle guard = 60000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsInFlight(), 0u) << "radix " << radix;
    EXPECT_EQ(net.packetsDelivered(), injected);
}

TEST_P(RadixSweep, DiagonalMaskHas2N)
{
    int radix = GetParam();
    auto mask = bigRouterMask(LayoutKind::DiagonalBL, radix);
    int count = 0;
    for (bool b : mask)
        count += b ? 1 : 0;
    int expected = radix % 2 == 0 ? 2 * radix : 2 * radix - 1;
    EXPECT_EQ(count, expected);
}

INSTANTIATE_TEST_SUITE_P(Radices, RadixSweep,
                         ::testing::Values(4, 6, 8, 10, 12));

} // namespace
} // namespace hnoc
