#include "power/router_power.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "power/frequency_model.hh"

namespace hnoc
{

namespace
{

// Baseline calibration anchors (Table 1 / Fig 8b).
constexpr double BASELINE_POWER_W = 0.67;     // at 50 % activity
constexpr double SMALL_POWER_W = 0.30;
constexpr double BIG_POWER_W = 1.19;
constexpr double BASELINE_FREQ_GHZ = 2.20;

// Component shares of baseline router power at 50 % activity.
constexpr double SHARE_BUFFERS = 0.35;
constexpr double SHARE_XBAR = 0.30;
constexpr double SHARE_LINKS = 0.20;
constexpr double SHARE_ARB = 0.15;

// Fraction of each component that is leakage (static) at the
// calibration point. Keeps network power > 0 at zero load (Fig 7c).
constexpr double LEAKAGE_FRACTION = 0.15;

struct RawCoefficients
{
    double bufWritePjPerBit;
    double bufReadPjPerBit;
    double xbarPjPerBit2;
    double arbPjPerUnit;
    double linkPjPerBit;
    double leakBufWPerBit;
    double leakXbarWPerBit2;
    double leakArbWPerUnit;
    double leakLinkWPerBit;
};

/**
 * Derive the per-bit coefficients from the baseline anchor. Event rates
 * at activity a: a*p buffer writes + a*p reads + a*p crossbar + a*p
 * arbitration grants + a*p link traversals per cycle.
 */
const RawCoefficients &
rawCoefficients()
{
    static const RawCoefficients coeffs = [] {
        RawCoefficients c{};
        const RouterPhysParams &b = router_types::BASELINE;
        const double a = 0.5;
        const double f_hz = BASELINE_FREQ_GHZ * 1e9;
        const double event_rate = a * b.ports * f_hz; // events/s per kind
        const double w = b.datapathBits;

        auto dyn = [](double share) {
            return share * BASELINE_POWER_W * (1.0 - LEAKAGE_FRACTION);
        };
        auto leak = [](double share) {
            return share * BASELINE_POWER_W * LEAKAGE_FRACTION;
        };

        // Buffers: write is costlier than read (bitline precharge).
        // Keyed to the FIFO word width, not the crossbar width.
        double wb = b.bufferWidthBits;
        double e_buf_pair_pj = dyn(SHARE_BUFFERS) / event_rate * 1e12;
        c.bufWritePjPerBit = 0.55 * e_buf_pair_pj / wb;
        c.bufReadPjPerBit = 0.45 * e_buf_pair_pj / wb;

        // Crossbar: energy grows with w^2 (wire length tracks width).
        double e_x_pj = dyn(SHARE_XBAR) / event_rate * 1e12;
        c.xbarPjPerBit2 = e_x_pj / (w * w);

        // Arbitration: scales with (v + p) request fan-in.
        double e_a_pj = dyn(SHARE_ARB) / event_rate * 1e12;
        c.arbPjPerUnit = e_a_pj / (b.vcsPerPort + b.ports);

        // Links: per-bit, per traversal.
        double e_l_pj = dyn(SHARE_LINKS) / event_rate * 1e12;
        c.linkPjPerBit = e_l_pj / w;

        c.leakBufWPerBit =
            leak(SHARE_BUFFERS) / static_cast<double>(b.bufferBits());
        c.leakXbarWPerBit2 = leak(SHARE_XBAR) / (w * w);
        c.leakArbWPerUnit = leak(SHARE_ARB) / (b.vcsPerPort + b.ports);
        c.leakLinkWPerBit = leak(SHARE_LINKS) / w;
        return c;
    }();
    return coeffs;
}

/** Published 50 %-activity total for a known router class, or 0. */
double
anchorPowerW(const RouterPhysParams &params)
{
    if (params == router_types::BASELINE)
        return BASELINE_POWER_W;
    if (params == router_types::SMALL)
        return SMALL_POWER_W;
    if (params == router_types::BIG)
        return BIG_POWER_W;
    return 0.0;
}

} // namespace

RouterPowerModel
RouterPowerModel::calibrated(const RouterPhysParams &params, double freq_ghz)
{
    if (params.ports < 2 || params.vcsPerPort < 1 ||
        params.bufferDepthFlits < 1 || params.datapathBits < 1) {
        fatal("RouterPowerModel: invalid router parameters (p=%d v=%d "
              "d=%d w=%d)", params.ports, params.vcsPerPort,
              params.bufferDepthFlits, params.datapathBits);
    }

    const RawCoefficients &c = rawCoefficients();
    const double w = params.datapathBits;
    const double wb = params.bufferWidthBits;
    const double arb_units = params.vcsPerPort + params.ports;

    RouterPowerModel m;
    m.params_ = params;
    m.freqGhz_ = freq_ghz;
    m.bufWritePj_ = c.bufWritePjPerBit * wb;
    m.bufReadPj_ = c.bufReadPjPerBit * wb;
    // Per-traversal crossbar energy: bits switched (one flit, the
    // buffer word width) times wire length (tracks datapath width).
    m.xbarPj_ = c.xbarPjPerBit2 * wb * w;
    m.arbPj_ = c.arbPjPerUnit * arb_units;
    m.linkPjPerBit_ = c.linkPjPerBit;
    m.leakage_.buffers =
        c.leakBufWPerBit * static_cast<double>(params.bufferBits());
    m.leakage_.crossbar = c.leakXbarWPerBit2 * w * w;
    m.leakage_.arbiters = c.leakArbWPerUnit * arb_units;
    m.leakage_.links = c.leakLinkWPerBit * w;

    // Pin the published classes to their Table 1 totals by scaling all
    // energies uniformly (preserves the component breakdown shape).
    double anchor = anchorPowerW(params);
    if (anchor > 0.0) {
        double raw = m.powerAtActivity(0.5).total();
        double scale = anchor / raw;
        m.bufWritePj_ *= scale;
        m.bufReadPj_ *= scale;
        m.xbarPj_ *= scale;
        m.arbPj_ *= scale;
        m.linkPjPerBit_ *= scale;
        m.leakage_.buffers *= scale;
        m.leakage_.crossbar *= scale;
        m.leakage_.arbiters *= scale;
        m.leakage_.links *= scale;
    }
    return m;
}

PowerBreakdown
RouterPowerModel::power(const RouterActivity &activity) const
{
    PowerBreakdown p = leakage_;
    if (activity.cycles == 0)
        return p;
    double seconds =
        static_cast<double>(activity.cycles) / (freqGhz_ * 1e9);
    double to_watts = 1e-12 / seconds;
    p.buffers +=
        (static_cast<double>(activity.bufferWrites) * bufWritePj_ +
         static_cast<double>(activity.bufferReads) * bufReadPj_) * to_watts;
    p.crossbar +=
        static_cast<double>(activity.xbarTraversals) * xbarPj_ * to_watts;
    p.arbiters +=
        static_cast<double>(activity.arbOps) * arbPj_ * to_watts;
    p.links += activity.linkBitTraversals * linkPjPerBit_ * to_watts;
    return p;
}

PowerBreakdown
RouterPowerModel::powerAtActivity(double a) const
{
    RouterActivity act;
    const std::uint64_t cycles = 1000000;
    // Activity factor = fraction of datapath capacity in use: a router
    // whose crossbar is twice as wide as its flits (the big router)
    // moves two flits per active port-cycle.
    int lanes = std::max(1, params_.datapathBits /
                                std::max(1, params_.bufferWidthBits));
    auto events = static_cast<std::uint64_t>(
        a * params_.ports * lanes * static_cast<double>(cycles));
    act.cycles = cycles;
    act.bufferWrites = events;
    act.bufferReads = events;
    act.xbarTraversals = events;
    act.arbOps = events;
    act.linkBitTraversals =
        static_cast<double>(events) * params_.bufferWidthBits;
    return power(act);
}

} // namespace hnoc
