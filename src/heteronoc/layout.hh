/**
 * @file
 * HeteroNoC layouts (paper §2, Fig 3): build NetworkConfigs for the
 * baseline and the six published heterogeneous placements, plus
 * arbitrary custom big-router masks.
 */

#ifndef HNOC_HETERONOC_LAYOUT_HH
#define HNOC_HETERONOC_LAYOUT_HH

#include <string>
#include <vector>

#include "noc/network_config.hh"

namespace hnoc
{

/** The seven evaluated configurations of Fig 3. */
enum class LayoutKind
{
    Baseline,   ///< homogeneous 3 VC / 192 b
    CenterB,    ///< big routers in the central 4x4 block, buffers only
    Row25B,     ///< big routers in rows 2 and 5, buffers only
    DiagonalB,  ///< big routers on both diagonals, buffers only
    CenterBL,   ///< central block, buffers + links redistributed
    Row25BL,    ///< rows 2 and 5, buffers + links
    DiagonalBL, ///< diagonals, buffers + links (the paper's best)
};

/** All seven layouts in presentation order. */
std::vector<LayoutKind> allLayouts();

/** The six heterogeneous layouts. */
std::vector<LayoutKind> heteroLayouts();

/** The three +BL layouts (used by the power studies). */
std::vector<LayoutKind> blLayouts();

/** @return the paper's name for @p kind ("Diagonal+BL", ...). */
std::string layoutName(LayoutKind kind);

/** @return true for the buffer+link (+BL) variants. */
bool isBufferLinkLayout(LayoutKind kind);

/**
 * Big-router placement mask for @p kind on an n x n mesh
 * (true = big). The baseline returns an all-false mask.
 */
std::vector<bool> bigRouterMask(LayoutKind kind, int radix);

/**
 * Build the NetworkConfig for @p kind on an n x n mesh.
 * Baseline: 3 VCs / 192 b / 2.20 GHz. +B: 2/6 VCs, 192 b links.
 * +BL: 2/6 VCs, 128/256 b datapaths, endpoint-max link widths,
 * 128 b flits; clock derived from the big router (2.07 GHz).
 */
NetworkConfig makeLayoutConfig(LayoutKind kind, int radix = 8);

/**
 * Build a heterogeneous config from an arbitrary big-router mask.
 * @param redistribute_links true for +BL semantics, false for +B
 */
NetworkConfig makeHeteroConfig(const std::vector<bool> &big_mask,
                               bool redistribute_links, int radix,
                               const std::string &name = "custom");

/** ASCII rendering of a layout (B = big, . = small/baseline). */
std::string renderLayout(const std::vector<bool> &big_mask, int radix);

} // namespace hnoc

#endif // HNOC_HETERONOC_LAYOUT_HH
