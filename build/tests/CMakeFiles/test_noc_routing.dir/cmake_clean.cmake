file(REMOVE_RECURSE
  "CMakeFiles/test_noc_routing.dir/noc/test_routing.cc.o"
  "CMakeFiles/test_noc_routing.dir/noc/test_routing.cc.o.d"
  "test_noc_routing"
  "test_noc_routing.pdb"
  "test_noc_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
