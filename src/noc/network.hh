/**
 * @file
 * The Network: owns routers, channels, NIs, packet storage, routing,
 * and the per-cycle simulation loop. Clients (traffic harnesses, the
 * CMP system) inject packets and receive delivery callbacks.
 */

#ifndef HNOC_NOC_NETWORK_HH
#define HNOC_NOC_NETWORK_HH

#include <memory>
#include <vector>

#include "common/hot_arena.hh"
#include "common/types.hh"
#include "noc/channel.hh"
#include "noc/flit.hh"
#include "noc/network_config.hh"
#include "noc/network_interface.hh"
#include "noc/observer.hh"
#include "noc/router.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"
#include "power/router_power.hh"
#include "telemetry/blame.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"

namespace hnoc
{

class Network;

/** Callback interface for packet producers/consumers. */
class NetworkClient
{
  public:
    virtual ~NetworkClient() = default;

    /** Called at the start of every cycle; inject via enqueuePacket. */
    virtual void
    preCycle(Network &net, Cycle now)
    {
        (void)net;
        (void)now;
    }

    /**
     * Called when a packet's tail reaches its destination NI. The
     * packet is recycled after this returns; copy what you need.
     */
    virtual void
    onPacketDelivered(Network &net, Packet &pkt, Cycle now)
    {
        (void)net;
        (void)pkt;
        (void)now;
    }
};

/** A complete network instance. */
class Network
{
  public:
    explicit Network(const NetworkConfig &config);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Install the packet producer/consumer. */
    void setClient(NetworkClient *client) { client_ = client; }

    /**
     * @return true when the exhaustive per-cycle loop is in force
     * (config alwaysStep or the HNOC_ALWAYS_STEP environment escape
     * hatch) instead of active-set scheduling. Results are
     * bit-identical either way; the escape hatch exists to prove it.
     */
    bool alwaysStep() const { return alwaysStep_; }

    /**
     * @return routers per spatial block of the cache-blocked step
     * order (§6g), after resolving config.blockTiles, the
     * HNOC_BLOCK_TILES environment override, and L2 auto-sizing.
     * Results are bit-identical for every block size.
     */
    int blockTiles() const { return blockTiles_; }

    /** @return block count of the cache-blocked step order. */
    int numBlocks() const { return numBlocks_; }

    /** Install a flit-event observer on every router (nullptr clears). */
    void setObserver(NetworkObserver *observer);

    /** Advance one clock cycle. */
    void step();

    /** Advance @p cycles cycles. */
    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            step();
    }

    /** @return the current cycle. */
    Cycle now() const { return cycle_; }

    /**
     * Create a packet and place it in @p src's source queue.
     * @param num_flits packet length in flits
     * @param tag / @p context opaque client data carried to delivery
     * @return the live packet (owned by the network)
     */
    Packet *enqueuePacket(NodeId src, NodeId dst, int num_flits,
                          std::uint64_t tag = 0, void *context = nullptr);

    /** @name Introspection */
    ///@{
    const NetworkConfig &config() const { return config_; }
    const Topology &topology() const { return *topo_; }
    const RoutingAlgorithm &routing() const { return *routing_; }

    /** Network clock (worst-case router frequency, §3.4). */
    double clockGHz() const { return clockGHz_; }
    double nsPerCycle() const { return 1.0 / clockGHz_; }

    /** Flits per data (cache-line) packet for this configuration. */
    int dataPacketFlits() const { return config_.dataPacketFlits(); }

    /**
     * Contention-free packet latency in cycles from source-queue head
     * to tail ejection: head pipeline latency plus serialization.
     */
    Cycle minTransferCycles(NodeId src, NodeId dst, int num_flits) const;
    ///@}

    /** @name Measurement window */
    ///@{
    /** Zero all activity/utilization/channel counters. */
    void resetMeasurement();

    /** Cycles elapsed since the last resetMeasurement(). */
    Cycle measuredCycles() const { return cycle_ - measureStart_; }

    /** Per-router average buffer utilization, percent (Fig 1a/2). */
    std::vector<double> bufferUtilizationPercent() const;

    /** Per-router mean outgoing-link utilization, percent (Fig 1b). */
    std::vector<double> linkUtilizationPercent() const;

    /** Aggregate network power over the measurement window. */
    PowerBreakdown powerReport() const;

    /** Fraction of busy wide-channel cycles that carried two flits. */
    double combineRate() const;

    std::uint64_t packetsInjected() const { return packetsInjected_; }
    std::uint64_t packetsDelivered() const { return packetsDelivered_; }
    std::uint64_t flitsDelivered() const { return flitsDelivered_; }
    Cycle lastDeliveryCycle() const { return lastDelivery_; }

    /** @return live (created, not yet delivered) packets. */
    std::size_t packetsInFlight() const { return livePackets_; }

    /** Sum of all source-queue depths (for queue-health checks). */
    std::size_t totalSourceQueueDepth() const;

    /**
     * Human-readable snapshot of buffer occupancy (a grid) and
     * non-empty source queues — the first thing to print when
     * debugging a stall.
     */
    std::string dumpState() const;
    ///@}

    /** @name Telemetry */
    ///@{
    /**
     * Create a registry sized for this network, with buffer capacity
     * and per-port lane/inter-router metadata filled in.
     */
    std::unique_ptr<MetricRegistry>
    makeMetricRegistry(Cycle epoch_cycles = 1000) const;

    /**
     * Attach @p reg to every router and router-driven channel and
     * start its measurement window at the current cycle. Pass nullptr
     * (or call detachTelemetry) to stop collecting.
     */
    void attachTelemetry(MetricRegistry *reg);

    /** Detach and finish() the registry (flushes the partial epoch). */
    void detachTelemetry();

    /** @return the attached registry, or nullptr. */
    MetricRegistry *telemetry() const { return telemetry_; }

    /**
     * Attach a flight recorder to every router plus the network's
     * inject/eject hooks (nullptr to detach). Like the registry hooks,
     * the cost while detached is one branch per event.
     */
    void attachFlightRecorder(FlightRecorder *fr);

    /** @return the attached flight recorder, or nullptr. */
    FlightRecorder *flightRecorder() const { return recorder_; }

    /**
     * Attach a self-profiler to the step loop and every router
     * (nullptr to detach). Wall-clock phase attribution is report-only
     * — simulation results are bit-identical with and without a
     * profiler attached — and the hooks compile out under
     * -DHNOC_TELEMETRY=OFF like the registry/recorder hooks.
     */
    void attachProfiler(Profiler *prof);

    /** @return the attached profiler, or nullptr. */
    Profiler *profiler() const { return profiler_; }

    /**
     * Create a BlameCollector sized for this network, with router
     * class (big/small), per-output link class (local/narrow/wide)
     * and node-to-router metadata filled in.
     */
    std::unique_ptr<BlameCollector> makeBlameCollector() const;

    /**
     * Attach a blame collector to every router and arm per-packet
     * ledger allocation (nullptr to detach). Report-only: attribution
     * never alters simulated behavior, and the hooks compile out under
     * -DHNOC_TELEMETRY=OFF. Packets already in flight at attach time
     * carry no ledger and are skipped at delivery.
     */
    void attachBlame(BlameCollector *b);

    /** @return the attached blame collector, or nullptr. */
    BlameCollector *blame() const { return blame_; }

    /**
     * Per-component steady-state memory breakdown: routers (SoA core
     * + scratch), channels (pipes), NIs, the packet arena, the
     * active-set bitmaps, and any attached registry/recorder. Byte
     * counts come from container capacities, so the audit reflects
     * grown high-water marks, not just construction-time sizes.
     */
    MemoryAudit memoryAudit() const;
    ///@}

    /** @name Diagnostics */
    ///@{
    /** Snapshot current state for HealthMonitor::probe(). */
    HealthSample healthSample() const;

    /**
     * Credit/buffer-conservation audit: for every channel and VC,
     * driver credits + flits in flight + credits in flight + sink
     * buffer occupancy must equal the buffer depth. Valid at step
     * boundaries. On violation returns false and, when @p err is
     * non-null, describes the first broken channel.
     */
    bool auditCreditConservation(std::string *err = nullptr) const;

    /**
     * Serialize an `hnoc-postmortem-v1` document: run state, the
     * per-router pipeline snapshot, conservation-audit result, the
     * flight-recorder ring (when attached) and the telemetry registry
     * (when attached).
     */
    std::string postmortemJson(const std::string &reason) const;

    /** Write postmortemJson() to @p path (honors HNOC_JSON_DIR). */
    bool writePostmortem(const std::string &path,
                         const std::string &reason) const;
    ///@}

  private:
    /** Wiring record: who consumes a channel's flits and credits. */
    struct ChannelEnds
    {
        Channel *chan = nullptr;
        bool sinkIsRouter = false;
        RouterId sinkRouter = INVALID_ROUTER;
        PortId sinkPort = INVALID_PORT;
        NodeId sinkNode = INVALID_NODE;
        bool driverIsRouter = false;
        RouterId driverRouter = INVALID_ROUTER;
        PortId driverPort = INVALID_PORT;
        NodeId driverNode = INVALID_NODE;
    };

    void build();
    Channel *makeChannel(int width_bits, int flit_delay, int credit_delay);
    void setupBlocks();
    void packHotArena();
    Packet *allocPacket();
    void freePacket(Packet *pkt);

    /** Spatial block of router @p r (contiguous id ranges). */
    int
    blockOf(RouterId r) const
    {
        return r / blockTiles_;
    }

    NetworkConfig config_;
    std::unique_ptr<Topology> topo_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    double clockGHz_ = 2.2;

    /** Contiguous, by value, in step (= block) order — the per-cycle
     *  pass streams the object headers linearly (§6g). Addresses are
     *  pinned by the build-time reserve(). */
    std::vector<Router> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<ChannelEnds> ends_;
    std::vector<Channel *> wideChannels_;

    /**
     * Active-set state: one dense busy byte per component, flipped by
     * the components themselves (via bound ActivitySlots) and scanned
     * in index order so iteration stays canonical. The byte vectors
     * are sized once in build() and never reallocate — the slots hold
     * raw pointers into them. Counters give the all-idle fast path.
     */
    std::vector<std::uint8_t> endBusy_;
    std::vector<std::uint8_t> routerBusy_;
    std::vector<std::uint8_t> niBusy_;
    std::size_t busyEnds_ = 0;
    std::size_t busyRouters_ = 0;
    std::size_t busyNis_ = 0;
    bool alwaysStep_ = false;

    /**
     * Cache-blocked step order (§6g): routers partition into
     * contiguous-id spatial blocks of blockTiles_ routers; each block
     * owns dense active lists for the channel ends it delivers
     * (flit role keyed by sink router, credit role keyed by driver
     * router), its routers, and the NIs attached to its routers.
     * Terminal ejection ends (NI sink) live in one global list
     * scanned first each cycle in canonical order. Components enlist
     * themselves via ActivitySlot wake hooks.
     */
    int blockTiles_ = 0;
    int numBlocks_ = 1;

    /** Block-ordered, huge-page-backed storage for router cores and
     *  channel pipes (§6g); sized once by packHotArena(). */
    HotArena hotArena_;
    ActiveList ejectEnds_;
    std::vector<ActiveList> blockFlitEnds_;
    std::vector<ActiveList> blockCreditEnds_;
    std::vector<ActiveList> blockRouters_;
    std::vector<ActiveList> blockNis_;

    NetworkClient *client_ = nullptr;
    NetworkObserver *observer_ = nullptr;
    MetricRegistry *telemetry_ = nullptr;
    FlightRecorder *recorder_ = nullptr;
    Profiler *profiler_ = nullptr;
    BlameCollector *blame_ = nullptr;

    Cycle cycle_ = 0;
    Cycle measureStart_ = 0;
    Cycle lastDelivery_ = 0;

    std::uint64_t packetsInjected_ = 0;
    std::uint64_t packetsDelivered_ = 0;
    std::uint64_t flitsDelivered_ = 0;
    std::size_t livePackets_ = 0;
    PacketId nextPacketId_ = 1;

    std::vector<std::unique_ptr<Packet>> packetArena_;
    std::vector<Packet *> freeList_;
};

} // namespace hnoc

#endif // HNOC_NOC_NETWORK_HH
