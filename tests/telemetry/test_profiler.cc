/**
 * @file
 * Profiler / MemoryAudit unit tests. The load-bearing guarantees:
 *
 *  - profiling is report-only: a network driven with a profiler
 *    attached produces bit-identical simulation results (delivery
 *    counts AND the full telemetry JSON) to the same network driven
 *    without one, so goldens never depend on whether --profile was
 *    passed;
 *  - merge() is a commutative accumulator sum, so merging the
 *    per-point profilers of a parallel sweep gives totals independent
 *    of join order;
 *  - the phase accounting identity holds: unattributedNs() ==
 *    max(0, step_total - sum of phase ns), and the JSON/table
 *    emitters expose the stable snake_case schema hnoc_inspect
 *    `profile` parses.
 *
 * MemoryAudit is covered both standalone (sum/normalize/skip-empty
 * semantics) and against a live Network::memoryAudit().
 */

#include <gtest/gtest.h>

#include <string>

#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/traffic.hh"
#include "telemetry/json_writer.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"

namespace hnoc
{
namespace
{

// ------------------------------------------------------- accumulator --

TEST(Profiler, StartsEmptyAndAddAccumulates)
{
    Profiler p;
    for (int i = 0; i < static_cast<int>(ProfPhase::NumPhases); ++i) {
        EXPECT_EQ(p.ns(static_cast<ProfPhase>(i)), 0u);
        EXPECT_EQ(p.visits(static_cast<ProfPhase>(i)), 0u);
    }

    p.add(ProfPhase::VcAllocate, 100);
    p.add(ProfPhase::VcAllocate, 50, 3);
    EXPECT_EQ(p.ns(ProfPhase::VcAllocate), 150u);
    EXPECT_EQ(p.visits(ProfPhase::VcAllocate), 4u);

    p.reset();
    EXPECT_EQ(p.ns(ProfPhase::VcAllocate), 0u);
    EXPECT_EQ(p.visits(ProfPhase::VcAllocate), 0u);
}

TEST(Profiler, CyclesAreStepTotalVisits)
{
    Profiler p;
    p.add(ProfPhase::StepTotal, 10);
    p.add(ProfPhase::StepTotal, 12);
    EXPECT_EQ(p.cycles(), 2u);
}

TEST(Profiler, MergeIsOrderIndependent)
{
    Profiler a;
    a.add(ProfPhase::ChannelDelivery, 7, 2);
    a.add(ProfPhase::StepTotal, 100, 10);

    Profiler b;
    b.add(ProfPhase::ChannelDelivery, 13, 5);
    b.add(ProfPhase::SwitchAllocate, 41, 1);
    b.add(ProfPhase::StepTotal, 200, 20);

    Profiler ab = a;
    ab.merge(b);
    Profiler ba = b;
    ba.merge(a);

    for (int i = 0; i < static_cast<int>(ProfPhase::NumPhases); ++i) {
        auto ph = static_cast<ProfPhase>(i);
        EXPECT_EQ(ab.ns(ph), ba.ns(ph)) << profPhaseName(ph);
        EXPECT_EQ(ab.visits(ph), ba.visits(ph)) << profPhaseName(ph);
    }
    EXPECT_EQ(ab.ns(ProfPhase::ChannelDelivery), 20u);
    EXPECT_EQ(ab.visits(ProfPhase::ChannelDelivery), 7u);
    EXPECT_EQ(ab.cycles(), 30u);
    // The merged JSON documents are therefore identical too.
    EXPECT_EQ(ab.json(), ba.json());
}

// -------------------------------------------------------- accounting --

TEST(Profiler, UnattributedIsResidualOfStepTotal)
{
    Profiler p;
    p.add(ProfPhase::StepTotal, 100);
    p.add(ProfPhase::RouteCompute, 30);
    p.add(ProfPhase::SwitchAllocate, 30);
    EXPECT_EQ(p.attributedNs(), 60u);
    EXPECT_EQ(p.unattributedNs(), 40u);
}

TEST(Profiler, UnattributedClampsAtZero)
{
    // Nested scope granularity can make the phase sum exceed the
    // enclosing StepTotal by a hair; the residual must not wrap.
    Profiler p;
    p.add(ProfPhase::StepTotal, 100);
    p.add(ProfPhase::VcAllocate, 120);
    EXPECT_EQ(p.unattributedNs(), 0u);
}

// ------------------------------------------------------------ scopes --

TEST(ProfScope, DetachedScopeCollectsNothing)
{
    // The detached state is the hot-path default: hook sites resolve
    // `kTelemetryEnabled ? profiler_ : nullptr` and pass nullptr when
    // no profiler is attached.
    {
        ProfScope s(nullptr, ProfPhase::VcAllocate);
        (void)s;
    }
    SUCCEED();
}

TEST(ProfScope, AttachedScopeChargesOneVisit)
{
    Profiler p;
    {
        ProfScope s(&p, ProfPhase::NiInject);
        (void)s;
    }
    EXPECT_EQ(p.visits(ProfPhase::NiInject), 1u);
    // ns may legitimately be 0 on a coarse clock; visits must not be.
}

// ------------------------------------------------------------ schema --

TEST(Profiler, JsonCarriesStableSnakeCaseSchema)
{
    Profiler p;
    p.add(ProfPhase::StepTotal, 1000, 4);
    p.add(ProfPhase::ChannelDelivery, 250, 4);
    std::string j = p.json();

    EXPECT_NE(j.find("\"cycles\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"step_total_ns\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"unattributed_ns\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"phases\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"share_pct\""), std::string::npos) << j;
    // Every phase except the StepTotal envelope appears by name.
    for (int i = 0; i < static_cast<int>(ProfPhase::NumPhases); ++i) {
        auto ph = static_cast<ProfPhase>(i);
        if (ph == ProfPhase::StepTotal)
            continue;
        std::string key =
            std::string("\"") + profPhaseName(ph) + "\"";
        EXPECT_NE(j.find(key), std::string::npos) << key << "\n" << j;
    }
    EXPECT_EQ(j.find("\"step_total\":"), std::string::npos) << j;
}

TEST(Profiler, TableListsPhases)
{
    Profiler p;
    p.add(ProfPhase::StepTotal, 1000, 4);
    p.add(ProfPhase::VcAllocate, 100, 4);
    std::string t = p.table();
    EXPECT_NE(t.find("vc_allocate"), std::string::npos) << t;
    EXPECT_NE(t.find("channel_delivery"), std::string::npos) << t;
}

// --------------------------------------------- per-block attribution --

TEST(Profiler, BlocksAccumulateAndDeriveBytesStreamed)
{
    Profiler p;
    p.add(ProfPhase::StepTotal, 1000, 10); // 10 cycles covered
    p.enableBlocks(2);
    p.setBlockBytes(0, 100);
    p.setBlockBytes(1, 300);
    for (int i = 0; i < 10; ++i)
        p.addBlock(0, 40); // touched every cycle
    for (int i = 0; i < 5; ++i)
        p.addBlock(1, 80); // idle-skipped half the time

    EXPECT_EQ(p.numBlocks(), 2u);
    EXPECT_EQ(p.blockNs(0), 400u);
    EXPECT_EQ(p.blockVisits(0), 10u);
    EXPECT_EQ(p.blockNs(1), 400u);
    EXPECT_EQ(p.blockVisits(1), 5u);
    // (100*10 + 300*5) / 10 cycles
    EXPECT_DOUBLE_EQ(p.bytesStreamedPerCycle(), 250.0);

    // Out-of-range charges are dropped, not UB.
    p.addBlock(7, 1);
    EXPECT_EQ(p.numBlocks(), 2u);
}

TEST(Profiler, BlockJsonIsAdditiveAndMergeAware)
{
    Profiler a;
    a.add(ProfPhase::StepTotal, 1000, 4);
    // Without blocks, the JSON must not mention them (OFF-path and
    // always-step reports keep the pre-§6g shape).
    std::string bare = a.json();
    EXPECT_EQ(bare.find("\"blocks\""), std::string::npos) << bare;
    EXPECT_EQ(bare.find("\"bytes_streamed_per_cycle\""),
              std::string::npos)
        << bare;

    a.enableBlocks(1);
    a.setBlockBytes(0, 64);
    a.addBlock(0, 500);

    Profiler b;
    b.add(ProfPhase::StepTotal, 1000, 4);
    b.enableBlocks(1);
    b.setBlockBytes(0, 64);
    b.addBlock(0, 300);

    a.merge(b);
    EXPECT_EQ(a.blockNs(0), 800u);
    EXPECT_EQ(a.blockVisits(0), 2u);
    EXPECT_EQ(a.blockBytes(0), 64u); // layout fact, not accumulated

    std::string j = a.json();
    EXPECT_NE(j.find("\"blocks\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"hot_bytes\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"bytes_streamed_per_cycle\""), std::string::npos)
        << j;
    std::string t = a.table();
    EXPECT_NE(t.find("block[0]"), std::string::npos) << t;
    EXPECT_NE(t.find("bytes/cycle"), std::string::npos) << t;

    a.reset();
    EXPECT_EQ(a.blockNs(0), 0u);
    EXPECT_EQ(a.blockVisits(0), 0u);
}

TEST(Profiler, PhaseNamesAreStable)
{
    // hnoc_inspect `profile` and the run-report schema key on these.
    EXPECT_STREQ(profPhaseName(ProfPhase::ChannelDelivery),
                 "channel_delivery");
    EXPECT_STREQ(profPhaseName(ProfPhase::NiEject), "ni_eject");
    EXPECT_STREQ(profPhaseName(ProfPhase::RouteCompute),
                 "route_compute");
    EXPECT_STREQ(profPhaseName(ProfPhase::VcAllocate), "vc_allocate");
    EXPECT_STREQ(profPhaseName(ProfPhase::SwitchAllocate),
                 "switch_allocate");
    EXPECT_STREQ(profPhaseName(ProfPhase::NiInject), "ni_inject");
    EXPECT_STREQ(profPhaseName(ProfPhase::TelemetryTick),
                 "telemetry_tick");
    EXPECT_STREQ(profPhaseName(ProfPhase::StepTotal), "step_total");
}

// ------------------------------------------------------ memory audit --

TEST(MemoryAudit, TotalsAndPerTileNormalization)
{
    MemoryAudit a;
    a.tiles = 4;
    a.add("routers", 4000, 4);
    a.add("channels", 1000, 24);
    EXPECT_EQ(a.components.size(), 2u);
    EXPECT_EQ(a.totalBytes(), 5000u);
    EXPECT_DOUBLE_EQ(a.bytesPerTile(), 1250.0);
}

TEST(MemoryAudit, SkipsZeroCountPlaceholders)
{
    MemoryAudit a;
    a.tiles = 4;
    a.add("flight_recorder", 0, 0);
    EXPECT_TRUE(a.components.empty());
    EXPECT_EQ(a.totalBytes(), 0u);
    EXPECT_DOUBLE_EQ(a.bytesPerTile(), 0.0);
}

TEST(MemoryAudit, JsonAndTableListComponents)
{
    MemoryAudit a;
    a.tiles = 2;
    a.add("routers", 2048, 2);
    std::string j;
    {
        JsonWriter w;
        a.writeJson(w);
        j = w.str();
    }
    EXPECT_NE(j.find("\"tiles\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"total_bytes\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"bytes_per_tile\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"routers\""), std::string::npos) << j;
    EXPECT_NE(a.table().find("routers"), std::string::npos);
}

// ------------------------------------- report-only (the golden pin) --

/** Drive @p net with seeded UR traffic for @p cycles. */
void
driveUniformRandom(Network &net, Cycle cycles)
{
    const NetworkConfig &cfg = net.config();
    int nodes = net.topology().numNodes();
    TrafficGenerator gen(TrafficPattern::UniformRandom, nodes,
                         net.topology().gridCols(), 11);
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (gen.shouldInject(n, 0.02, net.now())) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
    }
}

TEST(Profiler, AttachedProfilerDoesNotPerturbSimulation)
{
    // Same seed, same load, same cycle count: the profiled run must be
    // bit-identical to the unprofiled one — delivery counts and the
    // full metrics JSON. This is the guarantee that lets --profile be
    // flipped on without invalidating goldens.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);

    Network plain(cfg);
    auto plain_reg = plain.makeMetricRegistry(500);
    plain.attachTelemetry(plain_reg.get());
    driveUniformRandom(plain, 3000);
    plain_reg->finish();

    Network profiled(cfg);
    auto prof_reg = profiled.makeMetricRegistry(500);
    profiled.attachTelemetry(prof_reg.get());
    Profiler prof;
    profiled.attachProfiler(&prof);
    driveUniformRandom(profiled, 3000);
    prof_reg->finish();

    EXPECT_GT(plain.packetsDelivered(), 0u);
    EXPECT_EQ(plain.packetsDelivered(), profiled.packetsDelivered());
    EXPECT_EQ(plain.flitsDelivered(), profiled.flitsDelivered());
    EXPECT_EQ(plain.now(), profiled.now());
    EXPECT_EQ(plain_reg->json(), prof_reg->json());

    if (kTelemetryEnabled) {
        // The profiler actually observed the run...
        EXPECT_EQ(prof.cycles(), 3000u);
        EXPECT_GT(prof.ns(ProfPhase::StepTotal), 0u);
        EXPECT_GT(prof.visits(ProfPhase::SwitchAllocate), 0u);
        // ...and the accounting identity holds on real data.
        EXPECT_EQ(prof.unattributedNs(),
                  prof.ns(ProfPhase::StepTotal) > prof.attributedNs()
                      ? prof.ns(ProfPhase::StepTotal) -
                            prof.attributedNs()
                      : 0u);
    } else {
        // OFF build: hook sites constant-fold to nullptr scopes.
        EXPECT_EQ(prof.cycles(), 0u);
        EXPECT_EQ(prof.ns(ProfPhase::StepTotal), 0u);
    }
}

TEST(MemoryAudit, NetworkAuditIsConsistent)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    Network net(cfg);
    driveUniformRandom(net, 500);

    MemoryAudit a = net.memoryAudit();
    EXPECT_EQ(a.tiles, net.topology().numNodes());

    std::uint64_t sum = 0;
    bool routers = false, channels = false, nis = false;
    for (const auto &c : a.components) {
        sum += c.bytes;
        EXPECT_GT(c.count, 0u) << c.name;
        if (c.name == "routers") {
            routers = true;
            EXPECT_EQ(c.count, static_cast<std::uint64_t>(a.tiles));
        }
        if (c.name == "channels")
            channels = true;
        if (c.name == "network_interfaces") {
            nis = true;
            EXPECT_EQ(c.count, static_cast<std::uint64_t>(a.tiles));
        }
    }
    EXPECT_TRUE(routers);
    EXPECT_TRUE(channels);
    EXPECT_TRUE(nis);
    EXPECT_EQ(a.totalBytes(), sum);
    EXPECT_GT(a.bytesPerTile(), 0.0);
}

} // namespace
} // namespace hnoc
