/**
 * @file
 * Per-packet latency blame attribution.
 *
 * Every cycle a packet's head flit fails to advance, the router (or
 * the source NI) classifies the stall into one cause from a fixed
 * taxonomy and charges it to the packet's BlameLedger. On delivery the
 * ledger is committed to a BlameCollector, which maintains the exact
 * accounting identity
 *
 *     ejectedAt - createdAt ==   sourceQueueing
 *                              + minHeadCycles        (zero-load head path)
 *                              + routePending + vaConflictLost
 *                              + saConflictLost + creditStarved
 *                              + ejectBackpressure
 *                              + minSerCycles         (zero-load tail ser.)
 *                              + linkSerialization    (residual tail drag)
 *
 * for every packet — no stall cycle is double-charged or dropped, and
 * every term is non-negative. The collector aggregates causes per
 * router (heat maps), per router class x link class (the paper's
 * big/small x wide/narrow split), and into a latency-bucketed ladder
 * so tail percentiles (p50/p90/p99/p99.9) can be decomposed by cause.
 *
 * Blame is report-only observation: attaching a collector never
 * changes simulated behavior, and the whole layer compiles out under
 * -DHNOC_TELEMETRY=OFF (acquire() is never called, the Packet ledger
 * pointer stays null, hook sites constant-fold away).
 */

#ifndef HNOC_TELEMETRY_BLAME_HH
#define HNOC_TELEMETRY_BLAME_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hnoc
{

class JsonWriter;

/** Stall-cause taxonomy. Order is the report emission order. */
enum class BlameCause : int {
    SourceQueueing,    ///< waiting in the source NI queue (pre-injection)
    RoutePending,      ///< buffered head waiting for route compute
    VaConflictLost,    ///< route known, no downstream VC won
    SaConflictLost,    ///< VC held, lost the switch to a competing flit
    CreditStarved,     ///< VC held, downstream buffer out of credits
    EjectBackpressure, ///< stalled specifically at the ejection funnel
    LinkSerialization, ///< tail drag behind the head beyond the
                       ///< zero-load serialization bound
    NumCauses,
};

constexpr int kNumBlameCauses = static_cast<int>(BlameCause::NumCauses);

/** snake_case name used in reports and JSON keys. */
const char *blameCauseName(BlameCause c);

/** Classification of the channel a blamed output port drives. */
enum class BlameLinkClass : int {
    None,   ///< no port association (e.g. route-pending, source queue)
    Local,  ///< ejection channel into an NI
    Narrow, ///< baseline-width router-to-router link
    Wide,   ///< multi-lane (2x flit) router-to-router link
    NumClasses,
};

constexpr int kNumBlameLinkClasses =
    static_cast<int>(BlameLinkClass::NumClasses);

const char *blameLinkClassName(BlameLinkClass c);

/**
 * Per-packet stall account, carried by Packet::blame while the packet
 * is in flight. Plain data; the network charges it directly (POD
 * stores, no virtual calls) so the hot path stays branch-predictable.
 */
struct BlameLedger {
    /** Stall cycles charged per cause (in-network causes only;
     *  SourceQueueing and LinkSerialization are derived at commit). */
    std::array<std::uint64_t, kNumBlameCauses> cycles{};

    /** Zero-load cycles the head spends on its *actual* route:
     *  accumulated as link-delay at injection plus (switch + channel
     *  delay) at every hop's SA grant, so table/escape/O1TURN detours
     *  are priced at their own length, not the minimal path's. */
    std::uint64_t minHeadCycles = 0;

    /** Zero-load serialization bound for the packet's tail through
     *  the ejection funnel: ceil(numFlits / effLanes) - 1, set when
     *  the head is delivered to the destination NI. */
    std::uint64_t minSerCycles = 0;

    /** Cycle the head flit was delivered to the destination NI. */
    Cycle headEjectAt = CYCLE_NEVER;

    void
    reset()
    {
        cycles.fill(0);
        minHeadCycles = 0;
        minSerCycles = 0;
        headEjectAt = CYCLE_NEVER;
    }

    void
    charge(BlameCause c, std::uint64_t n = 1)
    {
        cycles[static_cast<std::size_t>(c)] += n;
    }
};

/**
 * Aggregates committed BlameLedgers for one simulation point.
 *
 * Deterministic: all state is a pure function of the committed
 * ledgers and the charge() stream, both of which are derived from
 * simulated events only. merge() folds per-shard collectors in input
 * order, so a multi-thread sweep merged shard-by-shard serializes to
 * byte-identical JSON regardless of worker count.
 */
class BlameCollector
{
  public:
    struct Dims {
        int routers = 0;
        int ports = 0;   ///< max ports per router
        int gridCols = 0; ///< router grid width for heat maps
    };

    explicit BlameCollector(const Dims &dims);

    /** Copies metadata and aggregates but not the live ledger pool
     *  (pools are per-run scratch; copies are for reporting/merging). */
    BlameCollector(const BlameCollector &other);
    BlameCollector &operator=(const BlameCollector &) = delete;

    /** @name Topology metadata (set once after construction) */
    ///@{
    void setRouterClass(RouterId r, bool big);
    void setPortLinkClass(RouterId r, PortId p, BlameLinkClass cls);
    void setNodeRouter(NodeId n, RouterId r);
    ///@}

    /** @name Ledger pool (arena-recycled, no steady-state allocation) */
    ///@{
    BlameLedger *acquire();
    void release(BlameLedger *l);
    ///@}

    /**
     * Charge @p n stall cycles of cause @p c observed at router @p r
     * toward output port @p p (INVALID_PORT when the head has not
     * been assigned an output yet). Also charged to the matching
     * router-class x link-class bucket.
     */
    void
    charge(RouterId r, PortId p, BlameCause c, std::uint64_t n = 1)
    {
        auto ci = static_cast<std::size_t>(c);
        perRouterCause_[static_cast<std::size_t>(r) * kNumBlameCauses +
                        ci] += n;
        classCause_[classIndex(r, p)][ci] += n;
    }

    /**
     * Commit a delivered packet's ledger. @p createdAt/@p injectedAt/
     * @p ejectedAt come from the Packet; the source-queueing and
     * link-serialization terms are derived here, then the accounting
     * identity is checked exactly (violations are counted, never
     * clamped silently).
     */
    void commit(PacketId id, NodeId src, NodeId dst, Cycle createdAt,
                Cycle injectedAt, Cycle ejectedAt, const BlameLedger &l);

    /** Fold @p other into this collector (shapes must match). */
    void merge(const BlameCollector &other);

    /** @name Inspection */
    ///@{
    std::uint64_t packets() const { return packets_; }
    std::uint64_t identityViolations() const { return identityViolations_; }
    std::uint64_t totalLatency() const { return totalLatency_; }
    std::uint64_t totalCause(BlameCause c) const;
    std::uint64_t totalMinHead() const { return totalMinHead_; }
    std::uint64_t totalMinSer() const { return totalMinSer_; }
    std::uint64_t footprintBytes() const;
    ///@}

    /** One row of the worst-packet leaderboard. */
    struct WorstPacket {
        PacketId id = 0;
        NodeId src = 0;
        NodeId dst = 0;
        std::uint64_t latency = 0;
        std::uint64_t minHead = 0;
        std::uint64_t minSer = 0;
        std::array<std::uint64_t, kNumBlameCauses> cycles{};
    };

    const std::vector<WorstPacket> &worstPackets() const { return worst_; }

    /** Emit the `latency_blame` report section (an object value). */
    void writeJson(JsonWriter &w) const;

    /** Standalone JSON document (writeJson wrapped). */
    std::string json() const;

    /** Human-readable summary with per-router blame heat maps. */
    std::string table() const;

  private:
    /** A percentile rung resolved from the latency bucket ladder. */
    struct Rung {
        double pct = 0.0;
        std::uint64_t latency = 0; ///< bucket-resolution percentile
        std::uint64_t tailPackets = 0;
        double meanLatency = 0.0;
        std::array<double, kNumBlameCauses> meanCause{};
        double meanMinHead = 0.0;
        double meanMinSer = 0.0;
    };

    std::size_t
    classIndex(RouterId r, PortId p) const
    {
        int rc = routerBig_[static_cast<std::size_t>(r)] ? 1 : 0;
        int lc = static_cast<int>(BlameLinkClass::None);
        if (p >= 0)
            lc = static_cast<int>(
                portLinkClass_[static_cast<std::size_t>(r) *
                                   static_cast<std::size_t>(dims_.ports) +
                               static_cast<std::size_t>(p)]);
        return static_cast<std::size_t>(rc * kNumBlameLinkClasses + lc);
    }

    std::size_t bucketOf(std::uint64_t latency) const;
    std::vector<Rung> ladder() const;

    // Latency-bucket ladder: fixed bucket count over [0, kLadderMax)
    // cycles (top bucket absorbs overflow); per bucket the packet
    // count plus per-cause/min-term sums, enough to decompose the mean
    // blame of any latency tail without storing per-packet records.
    static constexpr std::size_t kLadderBuckets = 1024;
    static constexpr std::uint64_t kLadderMax = 4096;
    static constexpr int kWorstN = 8;

    struct Bucket {
        std::uint64_t count = 0;
        std::uint64_t latency = 0;
        std::array<std::uint64_t, kNumBlameCauses> cause{};
        std::uint64_t minHead = 0;
        std::uint64_t minSer = 0;
    };

    Dims dims_;
    std::vector<std::uint8_t> routerBig_;
    std::vector<BlameLinkClass> portLinkClass_;
    std::vector<RouterId> nodeRouter_;

    // Aggregates.
    std::uint64_t packets_ = 0;
    std::uint64_t identityViolations_ = 0;
    std::uint64_t totalLatency_ = 0;
    std::uint64_t totalMinHead_ = 0;
    std::uint64_t totalMinSer_ = 0;
    std::array<std::uint64_t, kNumBlameCauses> totalCause_{};
    std::vector<std::uint64_t> perRouterCause_; ///< [routers x causes]
    std::array<std::array<std::uint64_t, kNumBlameCauses>,
               2 * kNumBlameLinkClasses>
        classCause_{};
    std::vector<Bucket> buckets_;
    std::vector<WorstPacket> worst_; ///< sorted by latency desc, id asc

    // Ledger pool.
    std::vector<std::unique_ptr<BlameLedger>> slabs_;
    std::vector<BlameLedger *> free_;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_BLAME_HH
