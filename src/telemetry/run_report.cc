#include "telemetry/run_report.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "telemetry/json_writer.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{

RunReport::RunReport(std::string tool, std::string title)
    : tool_(std::move(tool)), title_(std::move(title))
{
}

void
RunReport::meta(const std::string &key, const std::string &value)
{
    metaStr_.emplace_back(key, value);
}

void
RunReport::meta(const std::string &key, double value)
{
    metaNum_.emplace_back(key, value);
}

void
RunReport::addPoint(const std::string &label, const SimPointResult &res)
{
    points_.emplace_back(label, res);
}

void
RunReport::addRegistry(const std::string &label,
                       const MetricRegistry &reg)
{
    registries_.emplace_back(label, reg);
}

void
RunReport::setProfile(const Profiler &prof, const MemoryAudit &audit)
{
    profile_ = std::make_unique<Profiler>(prof);
    memAudit_ = audit;
}

void
RunReport::setBlame(const BlameCollector &blame)
{
    blame_ = std::make_unique<BlameCollector>(blame);
}

void
RunReport::writePoint(JsonWriter &w, const std::string &label,
                      const SimPointResult &res) const
{
    w.beginObject();
    w.keyValue("label", label);
    w.keyValue("offered_rate", res.offeredRate);
    w.keyValue("accepted_rate", res.acceptedRate);
    w.keyValue("avg_latency_cycles", res.avgLatencyCycles);
    w.keyValue("avg_latency_ns", res.avgLatencyNs);
    w.keyValue("avg_queuing_ns", res.avgQueuingNs);
    w.keyValue("avg_blocking_ns", res.avgBlockingNs);
    w.keyValue("avg_transfer_ns", res.avgTransferNs);
    w.keyValue("p95_latency_ns", res.p95LatencyNs);
    w.keyValue("network_power_w", res.networkPowerW);
    w.keyValue("combine_rate", res.combineRate);
    w.keyValue("saturated", res.saturated);
    w.keyValue("drain_truncated", res.drainTruncated);
    w.keyValue("simulated_cycles", res.simulatedCycles);
    w.keyValue("warmup_cycles_used", res.warmupCyclesUsed);
    w.keyValue("measure_cycles_used", res.measureCyclesUsed);
    w.keyValue("stop_reason", stopReasonName(res.stopReason));
    w.keyValue("ci_rel_half_width", res.ciRelHalfWidth);
    if (!res.ciHistory.empty())
        w.keyArray("ci_history", res.ciHistory);
    w.keyValue("tracked_created", res.trackedCreated);
    w.keyValue("tracked_delivered", res.trackedDelivered);
    w.keyArray("buffer_util_pct", res.bufferUtilPct);
    w.keyArray("link_util_pct", res.linkUtilPct);
    w.keyArray("latency_by_hops_ns", res.latencyByHopsNs);
    if (res.metrics) {
        w.key("telemetry");
        res.metrics->writeJson(w);
    }
    w.endObject();
}

std::string
RunReport::json() const
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("tool", tool_);
    w.keyValue("title", title_);
    w.keyValue("schema", "hnoc-run-report-v1");

    w.key("meta").beginObject();
    for (const auto &[k, v] : metaStr_)
        w.keyValue(k, v);
    for (const auto &[k, v] : metaNum_)
        w.keyValue(k, v);
    w.endObject();

    // Stop-reason tally across the run's points, so a dashboard can
    // see at a glance how often the adaptive rules fired.
    w.key("stop_reasons").beginObject();
    const StopReason kReasons[] = {
        StopReason::FixedWindow, StopReason::CiConverged,
        StopReason::MeasureCeiling, StopReason::SaturationAbort};
    for (StopReason r : kReasons) {
        std::uint64_t n = 0;
        for (const auto &[label, res] : points_)
            if (res.stopReason == r)
                ++n;
        w.keyValue(stopReasonName(r), n);
    }
    w.endObject();

    w.key("points").beginArray();
    for (const auto &[label, res] : points_)
        writePoint(w, label, res);
    w.endArray();

    if (!registries_.empty()) {
        w.key("registries").beginObject();
        for (const auto &[label, reg] : registries_) {
            w.key(label);
            reg.writeJson(w);
        }
        w.endObject();
    }

    if (profile_) {
        w.key("profile").beginObject();
        w.key("wall");
        profile_->writeJson(w);
        w.key("memory");
        memAudit_.writeJson(w);
        w.endObject();
    }

    if (blame_) {
        w.key("latency_blame");
        blame_->writeJson(w);
    }

    w.endObject();
    return w.str();
}

bool
RunReport::writeFile(const std::string &path) const
{
    std::string target = path;
    if (const char *dir = std::getenv("HNOC_JSON_DIR")) {
        std::string base = path;
        auto slash = base.find_last_of('/');
        if (slash != std::string::npos)
            base = base.substr(slash + 1);
        target = std::string(dir) + "/" + base;
    }
    std::FILE *f = std::fopen(target.c_str(), "w");
    if (!f) {
        warn("RunReport: cannot open %s", target.c_str());
        return false;
    }
    std::string data = json();
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    return true;
}

} // namespace hnoc
