file(REMOVE_RECURSE
  "CMakeFiles/extra_cmesh_hetero.dir/extra_cmesh_hetero.cc.o"
  "CMakeFiles/extra_cmesh_hetero.dir/extra_cmesh_hetero.cc.o.d"
  "extra_cmesh_hetero"
  "extra_cmesh_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_cmesh_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
