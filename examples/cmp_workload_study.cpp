/**
 * @file
 * Full-system scenario: run a commercial workload on the 64-tile CMP
 * over the baseline and the Diagonal+BL HeteroNoC, and report the
 * end-to-end picture — IPC, network latency composition, memory round
 * trips, and network power.
 *
 *   ./examples/cmp_workload_study [workload=TPC-C]
 */

#include <cstdio>
#include <string>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

using namespace hnoc;

namespace
{

void
runOne(const NetworkConfig &net_cfg, const WorkloadProfile &workload)
{
    CmpConfig cmp;
    CmpSystem sys(net_cfg, cmp);
    sys.assignWorkloadAll(workload);
    sys.warmCaches(40000);
    sys.run(3000);
    sys.resetStats();
    sys.run(15000);

    const NetLatencyStats &net = sys.netLatency();
    PowerBreakdown power = sys.networkPower();
    std::printf("%-12s IPC %.3f | net lat %5.1f ns "
                "(queue %.1f + block %.1f + transfer %.1f) | "
                "mem round trip %.0f +/- %.0f core cycles | "
                "power %.1f W (buf %.1f, xbar %.1f, arb %.1f, link %.1f)\n",
                net_cfg.name.c_str(), sys.avgIpc(), net.totalNs.mean(),
                net.queuingNs.mean(), net.blockingNs.mean(),
                net.transferNs.mean(), sys.roundTripCoreCycles().mean(),
                sys.roundTripCoreCycles().stddev(), power.total(),
                power.buffers, power.crossbar, power.arbiters,
                power.links);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "TPC-C";
    const WorkloadProfile &workload = workloadByName(name);
    std::printf("64-tile CMP, workload %s on all cores "
                "(Table 2 configuration)\n\n", name.c_str());
    runOne(makeLayoutConfig(LayoutKind::Baseline), workload);
    runOne(makeLayoutConfig(LayoutKind::DiagonalBL), workload);
    return 0;
}
