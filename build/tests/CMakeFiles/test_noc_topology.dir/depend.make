# Empty dependencies file for test_noc_topology.
# This may be replaced when dependencies are built.
