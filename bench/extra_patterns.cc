/**
 * @file
 * The sweeps §5.1 says were measured but "not shown due to space
 * limitations": transpose, bit-complement and self-similar traffic
 * across all layouts, with the same metrics as Figs 7/9.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main()
{
    printHeader("Extra patterns (§5.1)",
                "transpose / bit-complement / self-similar sweeps");

    std::printf("\n--- Transpose ---\n");
    runSyntheticComparison(TrafficPattern::Transpose,
                           {0.004, 0.008, 0.012, 0.016, 0.020, 0.024,
                            0.028});

    std::printf("\n--- Bit-complement ---\n");
    runSyntheticComparison(TrafficPattern::BitComplement,
                           {0.004, 0.008, 0.012, 0.016, 0.020, 0.024,
                            0.028});

    std::printf("\n--- Self-similar ---\n");
    runSyntheticComparison(TrafficPattern::SelfSimilar,
                           {0.004, 0.012, 0.020, 0.028, 0.036, 0.044,
                            0.052});
    return 0;
}
