/**
 * @file
 * Additional constraint/accounting tests: +B bit-neutrality, the §2
 * helper edge cases, and formatted accounting output.
 */

#include <gtest/gtest.h>

#include "heteronoc/constraints.hh"
#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

TEST(ConstraintsExtra, BufferOnlyLayoutsKeepBaselineBits)
{
    // +B redistributes VCs without touching widths: total buffer bits
    // stay at the homogeneous 921,600 (which is why §5.1 finds no
    // power win for buffer-only redistribution).
    auto base = accountResources(makeLayoutConfig(LayoutKind::Baseline));
    for (LayoutKind kind : {LayoutKind::CenterB, LayoutKind::Row25B,
                            LayoutKind::DiagonalB}) {
        auto acc = accountResources(makeLayoutConfig(kind));
        EXPECT_EQ(acc.bufferBits, base.bufferBits) << layoutName(kind);
        EXPECT_EQ(acc.bisectionBits, base.bisectionBits)
            << layoutName(kind);
    }
}

TEST(ConstraintsExtra, BufferOnlyPowerNearBaseline)
{
    // Fig 7(c)'s omission rationale: +B network power stays within a
    // few percent of the baseline at equal load.
    SimPointOptions opts;
    opts.injectionRate = 0.03;
    opts.warmupCycles = 2000;
    opts.measureCycles = 5000;
    opts.drainCycles = 10000;
    auto base = runOpenLoop(makeLayoutConfig(LayoutKind::Baseline),
                            TrafficPattern::UniformRandom, opts);
    auto b_only = runOpenLoop(makeLayoutConfig(LayoutKind::DiagonalB),
                              TrafficPattern::UniformRandom, opts);
    EXPECT_NEAR(b_only.networkPowerW, base.networkPowerW,
                0.12 * base.networkPowerW);
}

TEST(ConstraintsExtra, NarrowLinkWidthEdgeCases)
{
    // All-wide cut: W = 1536 / 16 = 96.
    EXPECT_EQ(narrowLinkWidth(192, 8, 0, 8), 96);
    // All-narrow cut degenerates to the baseline width.
    EXPECT_EQ(narrowLinkWidth(192, 8, 8, 0), 192);
    EXPECT_DEATH((void)narrowLinkWidth(192, 8, 0, 0), "no links");
}

TEST(ConstraintsExtra, MinSmallRoutersScales)
{
    // 4x4: 16 * 0.52/0.89 = 9.35 -> 10.
    EXPECT_EQ(minSmallRouters(16), 10);
    // 16x16: 256 * 0.584... -> 150.
    EXPECT_EQ(minSmallRouters(256), 150);
}

TEST(ConstraintsExtra, FormatAccountingContainsKeyNumbers)
{
    auto acc = accountResources(makeLayoutConfig(LayoutKind::DiagonalBL));
    std::string s = formatAccounting(acc, "t");
    EXPECT_NE(s.find("614400"), std::string::npos);
    EXPECT_NE(s.find("48 small / 16 big"), std::string::npos);
}

TEST(ConstraintsExtra, CustomMaskViolatingPowerBudgetDetected)
{
    // 32 big routers blow the §2 power budget (needs >= 38 small).
    std::vector<bool> mask(64, false);
    for (int i = 0; i < 32; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    NetworkConfig cfg = makeHeteroConfig(mask, true, 8, "too-many-big");
    auto rep =
        checkConstraints(cfg, makeLayoutConfig(LayoutKind::Baseline));
    EXPECT_FALSE(rep.powerBudgetOk);
    EXPECT_FALSE(rep.vcConserved); // 32*2+32*6 = 256 != 192
}

} // namespace
} // namespace hnoc
