/**
 * @file
 * Adaptive simulation control: the three cooperating stopping policies
 * that replace the fixed warmup/measure/drain windows of the open-loop
 * harness (docs/REPRODUCING.md "Adaptive vs reference windows"):
 *
 *  1. warmup detection  — declare steady state when k consecutive
 *     epoch-mean latencies stay within a relative tolerance of their
 *     predecessor, instead of always paying the full fixed warmup;
 *  2. batch-means early termination — end measurement once the
 *     relative Student-t confidence interval of the per-epoch mean
 *     latency falls below a target (default 2 % at 95 %), with a hard
 *     floor and the fixed window as the ceiling;
 *  3. saturation fast-abort — detect unbounded source-queue growth
 *     within a few epochs, classify the point `saturated`, and skip
 *     the remaining measurement plus the entire drain phase.
 *
 * Every decision is a pure function of simulated data sampled at
 * telemetry-epoch boundaries (epoch latency means, source-queue
 * depths), never of wall-clock time or thread scheduling, so adaptive
 * runs remain bit-identical across 1/3/4 worker threads — the same
 * invariant the active-set scheduler establishes for arbitration
 * pointers. The detectors are standalone classes so the policies can
 * be unit-tested on synthetic epoch series without running a network.
 */

#ifndef HNOC_NOC_SIM_CONTROL_HH
#define HNOC_NOC_SIM_CONTROL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace hnoc
{

/** Window policy of one open-loop simulation point. */
enum class SimControlMode : std::uint8_t
{
    Reference, ///< fixed warmup/measure/drain (the seed behavior)
    Adaptive,  ///< stopping rules below; fixed windows become ceilings
};

/** Why the measurement phase of a point ended. */
enum class StopReason : std::uint8_t
{
    FixedWindow,     ///< reference mode: ran the configured window
    CiConverged,     ///< batch-means CI fell below the target
    MeasureCeiling,  ///< adaptive, but the CI never converged
    SaturationAbort, ///< queue-growth detector fired; point skipped
};

/** Stable short name ("fixed-window", "ci-converged", ...). */
const char *stopReasonName(StopReason r);

/** Inverse of stopReasonName; fatal on unknown names. */
StopReason stopReasonFromName(const std::string &s);

/** Stable short name of @p m ("reference" | "adaptive"). */
const char *simControlModeName(SimControlMode m);

/** Inverse of simControlModeName; fatal on unknown names. */
SimControlMode simControlModeFromName(const std::string &s);

/**
 * Knobs of the adaptive controller. All cycle quantities are in
 * simulated cycles and are scaled by HNOC_SIM_SCALE alongside the
 * fixed windows; epoch length comes from
 * SimPointOptions::telemetryEpoch.
 */
struct SimControlOptions
{
    SimControlMode mode = SimControlMode::Reference;

    /** @name Warmup detection */
    ///@{
    /** Never end warmup before this many cycles. */
    Cycle minWarmupCycles = 2000;
    /** Steady after this many consecutive in-tolerance epochs. */
    int warmupEpochs = 3;
    /** Relative epoch-to-epoch mean-latency tolerance. */
    double warmupTolerance = 0.05;
    ///@}

    /** @name Batch-means early termination */
    ///@{
    /** Stop once the relative CI half-width is at or below this. */
    double ciTarget = 0.02;
    /** Two-sided confidence level (0.90 | 0.95 | 0.99). */
    double ciConfidence = 0.95;
    /** Minimum closed batches before the CI rule may fire. */
    int minBatches = 8;
    /** Telemetry epochs aggregated into one batch mean. */
    int epochsPerBatch = 1;
    /** Never end measurement before this many cycles. */
    Cycle minMeasureCycles = 4000;
    ///@}

    /** @name Saturation fast-abort */
    ///@{
    /** Consecutive epochs of strict source-queue growth required. */
    int satEpochs = 4;
    /** Abort only once total queue depth >= this many packets/node. */
    double satDepthPerNode = 3.0;
    /** ... and the growth over the run of epochs >= this per node. */
    double satGrowthPerNode = 0.5;
    ///@}
};

/**
 * Warmup policy: steady state is declared after
 * SimControlOptions::warmupEpochs consecutive epochs whose mean
 * latency stays within warmupTolerance (relative) of the previous
 * epoch's mean. Epochs with no deliveries carry no signal and reset
 * the run.
 */
class WarmupDetector
{
  public:
    explicit WarmupDetector(const SimControlOptions &opts)
        : opts_(opts)
    {}

    /**
     * Ingest one closed warmup epoch.
     * @param mean_latency mean packet latency (cycles) in the epoch
     * @param delivered packets delivered in the epoch
     * @return true once steady state has been reached
     */
    bool addEpoch(double mean_latency, std::uint64_t delivered);

    bool steady() const { return steady_; }
    int epochsSeen() const { return epochs_; }

  private:
    SimControlOptions opts_;
    double prevMean_ = 0.0;
    bool havePrev_ = false;
    int run_ = 0;
    int epochs_ = 0;
    bool steady_ = false;
};

/**
 * Batch-means policy: per-epoch tracked-latency means are grouped
 * into batches of epochsPerBatch epochs; measurement may stop once
 * the relative Student-t CI half-width over the batch means is at or
 * below ciTarget with at least minBatches batches closed. The
 * half-width history doubles as the run report's convergence probe.
 */
class BatchMeansController
{
  public:
    explicit BatchMeansController(const SimControlOptions &opts)
        : opts_(opts)
    {}

    /**
     * Ingest one closed measurement epoch.
     * @param mean_latency mean tracked-packet latency (cycles)
     * @param delivered tracked packets delivered in the epoch
     */
    void addEpoch(double mean_latency, std::uint64_t delivered);

    /** @return closed batches so far. */
    std::uint64_t batches() const { return stats_.count(); }

    /** Relative CI half-width over batch means (+inf when < 2). */
    double relHalfWidth() const
    {
        return stats_.relHalfWidth(opts_.ciConfidence);
    }

    /** @return true once the CI rule is satisfied. */
    bool converged() const;

    /** Half-width after each closed batch (convergence probe). */
    const std::vector<double> &history() const { return history_; }

  private:
    SimControlOptions opts_;
    RunningStat stats_;          ///< over closed batch means
    std::vector<double> history_;
    double batchLatencySum_ = 0.0;
    std::uint64_t batchDelivered_ = 0;
    int batchEpochs_ = 0;
};

/**
 * Saturation policy: an open-loop point is saturated when its source
 * queues grow without bound. The detector fires after satEpochs
 * consecutive epochs of strictly increasing total queue depth, once
 * the depth has reached satDepthPerNode packets per node and the
 * growth across the run of epochs is at least satGrowthPerNode per
 * node — conservative on purpose, so borderline points fall through
 * to the ordinary measure + drain classification.
 */
class SaturationDetector
{
  public:
    SaturationDetector(const SimControlOptions &opts, int nodes)
        : opts_(opts), nodes_(nodes > 0 ? nodes : 1)
    {}

    /**
     * Ingest the total source-queue depth at one epoch boundary.
     * @return true once saturation has been detected (latches).
     */
    bool addEpoch(std::size_t queue_depth);

    bool saturated() const { return saturated_; }

  private:
    SimControlOptions opts_;
    int nodes_;
    std::size_t prev_ = 0;
    std::size_t runStartDepth_ = 0;
    bool havePrev_ = false;
    int run_ = 0;
    bool saturated_ = false;
};

} // namespace hnoc

#endif // HNOC_NOC_SIM_CONTROL_HH
