#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.hh"

namespace hnoc
{

void
RunningStat::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::sampleVariance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::sampleStddev() const
{
    return std::sqrt(sampleVariance());
}

double
RunningStat::relHalfWidth(double confidence) const
{
    if (count_ < 2 || mean_ == 0.0)
        return std::numeric_limits<double>::infinity();
    return tStatCI(count_, sampleStddev(), confidence) /
           std::fabs(mean_);
}

double
RunningStat::min() const
{
    return count_ ? min_
                  : std::numeric_limits<double>::quiet_NaN();
}

double
RunningStat::max() const
{
    return count_ ? max_
                  : std::numeric_limits<double>::quiet_NaN();
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Both non-empty below, so min_/max_ hold real samples.
    std::uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double nn = static_cast<double>(n);
    double new_mean = mean_ + delta * nb / nn;
    m2_ = m2_ + other.m2_ + delta * delta * na * nb / nn;
    mean_ = new_mean;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    if (buckets == 0 || hi <= lo)
        panic("Histogram: invalid range [%f, %f) with %zu buckets",
              lo, hi, buckets);
}

void
Histogram::add(double x)
{
    auto idx = static_cast<std::int64_t>((x - lo_) / width_);
    idx = std::clamp<std::int64_t>(idx, 0,
        static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
    sum_ += x;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size())
        panic("Histogram::merge: shape mismatch ([%f,%f)x%zu vs "
              "[%f,%f)x%zu)",
              lo_, hi_, counts_.size(), other.lo_, other.hi_,
              other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

double
Histogram::percentile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

namespace
{

/**
 * Two-sided critical values of the t distribution for df 1..30; the
 * tail (df > 30) interpolates linearly in 1/df down to the normal
 * quantile at 1/df = 0. Values are the standard printed tables, so
 * the stopping rules are reproducible from any statistics text.
 */
const double kT90[30] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
    1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
    1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
    1.701, 1.699, 1.697};
const double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042};
const double kT99[30] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169,  3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
    2.861,  2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
    2.763,  2.756, 2.750};

} // namespace

double
tCriticalValue(double confidence, std::uint64_t df)
{
    const double *table;
    double z; // normal quantile, the df -> infinity limit
    if (confidence == 0.90) {
        table = kT90;
        z = 1.645;
    } else if (confidence == 0.95) {
        table = kT95;
        z = 1.960;
    } else if (confidence == 0.99) {
        table = kT99;
        z = 2.576;
    } else {
        panic("tCriticalValue: unsupported confidence %f "
              "(use 0.90, 0.95 or 0.99)",
              confidence);
    }
    if (df < 1)
        df = 1;
    if (df <= 30)
        return table[df - 1];
    // Interpolate in 1/df between the df=30 entry and the normal
    // limit; matches the printed 40/60/120 rows to ~0.3%.
    double f = (1.0 / static_cast<double>(df)) / (1.0 / 30.0);
    return z + (table[29] - z) * f;
}

double
tStatCI(std::uint64_t n, double sample_stddev, double confidence)
{
    if (n < 2)
        return std::numeric_limits<double>::infinity();
    return tCriticalValue(confidence, n - 1) * sample_stddev /
           std::sqrt(static_cast<double>(n));
}

int
steadyEpochCutoff(const std::vector<double> &series, double tol, int k)
{
    if (k < 1)
        k = 1;
    int run = 0;
    for (std::size_t i = 1; i < series.size(); ++i) {
        double prev = series[i - 1];
        double scale = std::max(std::fabs(prev), 1e-12);
        if (std::fabs(series[i] - prev) <= tol * scale) {
            if (++run >= k)
                return static_cast<int>(i) - run + 1;
        } else {
            run = 0;
        }
    }
    return -1;
}

EpochSeriesCi
epochSeriesCi(const std::vector<double> &series, std::size_t cutoff,
              double confidence)
{
    RunningStat s;
    for (std::size_t i = cutoff; i < series.size(); ++i)
        s.add(series[i]);
    EpochSeriesCi out;
    out.batches = s.count();
    out.mean = s.mean();
    out.relHalfWidth = s.relHalfWidth(confidence);
    return out;
}

std::string
formatHeatMap(const std::vector<double> &values, int cols,
              const std::string &title)
{
    std::string out = title + "\n";
    if (values.empty() || cols <= 0)
        return out + "(empty)\n";
    int rows = static_cast<int>(values.size()) / cols;
    char buf[32];
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            std::snprintf(buf, sizeof(buf), "%6.1f",
                          values[static_cast<std::size_t>(r * cols + c)]);
            out += buf;
        }
        out += "\n";
    }
    return out;
}

} // namespace hnoc
