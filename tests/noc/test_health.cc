/**
 * @file
 * Health-monitor and diagnostics tests: Network::healthSample()
 * consistency, HealthMonitor probe deltas and registry-driven stall
 * breakdowns, the zero-progress detector, VC-occupancy high-water
 * marks, the progress line, and the credit/buffer-conservation
 * auditor across all four topologies (mid-run and after drain).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{
namespace
{

/** Drive @p net with uniform-random traffic for @p cycles. */
std::uint64_t
injectUniform(Network &net, Rng &rng, Cycle cycles, double rate)
{
    int nodes = net.config().numNodes();
    std::uint64_t injected = 0;
    for (Cycle t = 0; t < cycles; ++t) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (rng.uniform() < rate) {
                auto dst = static_cast<NodeId>(
                    rng.below(static_cast<std::uint64_t>(nodes - 1)));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, net.dataPacketFlits());
                ++injected;
            }
        }
        net.step();
    }
    return injected;
}

// ----------------------------------------------------- healthSample --

TEST(HealthSample, MatchesNetworkState)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    Rng rng(11);
    injectUniform(net, rng, 300, 0.03);

    HealthSample s = net.healthSample();
    EXPECT_EQ(s.cycle, net.now());
    EXPECT_EQ(s.packetsInjected, net.packetsInjected());
    EXPECT_EQ(s.packetsDelivered, net.packetsDelivered());
    EXPECT_EQ(s.flitsDelivered, net.flitsDelivered());
    EXPECT_EQ(s.packetsInFlight, net.packetsInFlight());
    EXPECT_EQ(s.sourceQueueDepth, net.totalSourceQueueDepth());
    ASSERT_EQ(s.routers, 64);
    ASSERT_GT(s.ports, 0);
    ASSERT_GT(s.vcs, 0);
    ASSERT_EQ(s.bufferOccupancy.size(), 64u);
    ASSERT_EQ(s.vcOccupancy.size(),
              static_cast<std::size_t>(64 * s.ports * s.vcs));

    // Per-router occupancy is exactly the sum of its per-VC slots.
    int total = 0;
    for (int r = 0; r < s.routers; ++r) {
        int sum = 0;
        for (int p = 0; p < s.ports; ++p)
            sum += s.portOccupancy(r, p);
        EXPECT_EQ(sum, s.bufferOccupancy[static_cast<std::size_t>(r)])
            << "router " << r;
        total += sum;
    }
    EXPECT_GT(total, 0) << "mid-run sample should see buffered flits";
}

// ----------------------------------------------------- probe deltas --

TEST(HealthMonitor, ProbeDeltasAndHighWaterMarks)
{
    HealthMonitor mon;

    HealthSample a;
    a.cycle = 1000;
    a.packetsInjected = 50;
    a.packetsDelivered = 40;
    a.flitsDelivered = 240;
    a.packetsInFlight = 10;
    a.routers = 2;
    a.ports = 2;
    a.vcs = 2;
    a.bufferOccupancy = {1, 3};
    a.vcOccupancy = {1, 0, 0, 0, 0, 2, 0, 1};

    const HealthReport &first = mon.probe(a);
    EXPECT_EQ(first.intervalCycles, 0u); // baseline probe: no deltas
    EXPECT_EQ(first.deliveredDelta, 0u);
    EXPECT_TRUE(first.issues.empty());

    HealthSample b = a;
    b.cycle = 1500;
    b.packetsInjected = 80;
    b.packetsDelivered = 70;
    b.flitsDelivered = 420;
    b.vcOccupancy = {0, 4, 0, 0, 0, 1, 0, 1};

    const HealthReport &rep = mon.probe(b);
    EXPECT_EQ(rep.cycle, 1500u);
    EXPECT_EQ(rep.intervalCycles, 500u);
    EXPECT_EQ(rep.injectedDelta, 30u);
    EXPECT_EQ(rep.deliveredDelta, 30u);
    EXPECT_EQ(rep.flitsDelta, 180u);
    EXPECT_FALSE(rep.hasRegistryDeltas); // no registry attached
    EXPECT_EQ(mon.probes(), 2u);

    // High-water marks are the element-wise max across both probes.
    ASSERT_EQ(mon.vcHighWater().size(), 8u);
    EXPECT_EQ(mon.vcHighWater()[0], 1);
    EXPECT_EQ(mon.vcHighWater()[1], 4);
    EXPECT_EQ(mon.vcHighWater()[5], 2);

    int r = -1, p = -1, v = -1;
    EXPECT_EQ(mon.maxVcHighWater(&r, &p, &v), 4);
    EXPECT_EQ(r, 0); // flat index 1 -> router 0, port 0, vc 1
    EXPECT_EQ(p, 0);
    EXPECT_EQ(v, 1);

    // The summary renders without a registry too.
    std::string text = rep.text();
    EXPECT_NE(text.find("health @ cycle 1500"), std::string::npos);
    EXPECT_NE(text.find("+30 delivered"), std::string::npos);
}

TEST(HealthMonitor, RegistryDeltasBreakDownStalls)
{
    if (!kTelemetryEnabled)
        GTEST_SKIP() << "hot-path hooks compiled out (HNOC_TELEMETRY=OFF)";
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    auto reg = net.makeMetricRegistry(1000);
    net.attachTelemetry(reg.get());

    HealthMonitor mon;
    Rng rng(7);
    injectUniform(net, rng, 200, 0.04);
    mon.probe(net.healthSample(), reg.get());
    injectUniform(net, rng, 400, 0.04);
    const HealthReport &rep = mon.probe(net.healthSample(), reg.get());

    EXPECT_TRUE(rep.hasRegistryDeltas);
    ASSERT_EQ(rep.routers.size(), 64u);
    std::uint64_t grants = 0, reads = 0;
    for (const StallBreakdown &s : rep.routers) {
        grants += s.saGrants;
        reads += s.bufferReads;
    }
    EXPECT_GT(grants, 0u) << "busy interval must show SA grants";
    EXPECT_GT(reads, 0u);
    // A healthy network has no stuck ports.
    for (const PortIssue &iss : rep.issues)
        EXPECT_NE(iss.kind, PortIssue::Kind::ZeroProgress)
            << "router " << iss.router << " port " << iss.port;

    net.detachTelemetry();
}

TEST(HealthMonitor, ZeroProgressDetectorFlagsStuckPorts)
{
    // Fabricate a stall: load the network until flits sit in router
    // buffers, then probe twice without stepping. Registry counters
    // don't move, occupancy persists -> every occupied port is a
    // zero-progress hit.
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    auto reg = net.makeMetricRegistry(1000);
    net.attachTelemetry(reg.get());

    Rng rng(3);
    injectUniform(net, rng, 200, 0.05);
    HealthSample frozen = net.healthSample();
    int occupied_ports = 0;
    for (int r = 0; r < frozen.routers; ++r)
        for (int p = 0; p < frozen.ports; ++p)
            occupied_ports += frozen.portOccupancy(r, p) > 0 ? 1 : 0;
    ASSERT_GT(occupied_ports, 0) << "need buffered flits for the test";

    HealthMonitor mon;
    mon.probe(frozen, reg.get());
    const HealthReport &rep = mon.probe(frozen, reg.get());
    ASSERT_TRUE(rep.hasRegistryDeltas);

    int zero_progress = 0;
    for (const PortIssue &iss : rep.issues) {
        if (iss.kind != PortIssue::Kind::ZeroProgress)
            continue;
        ++zero_progress;
        EXPECT_GT(iss.buffered, 0);
        EXPECT_EQ(frozen.portOccupancy(iss.router, iss.port),
                  iss.buffered);
    }
    EXPECT_EQ(zero_progress, occupied_ports);

    // The rendered report names the stuck ports.
    EXPECT_NE(rep.text().find("ZERO-PROGRESS"), std::string::npos);

    net.detachTelemetry();
}

TEST(HealthMonitor, ProgressLine)
{
    HealthOptions opts;
    opts.targetCycles = 100000;
    HealthMonitor mon(opts);

    HealthSample s;
    s.cycle = 40000;
    s.packetsDelivered = 12034;
    s.flitsDelivered = 72204;
    s.packetsInFlight = 182;

    std::string line = mon.progressLine(s);
    EXPECT_NE(line.find("cycle 40000/100000 40%"), std::string::npos)
        << line;
    EXPECT_NE(line.find("delivered 12034"), std::string::npos) << line;
    EXPECT_NE(line.find("in-flight 182"), std::string::npos) << line;
    EXPECT_NE(line.find("flit/s"), std::string::npos) << line;

    // Without a target there is no completion fraction and no ETA.
    HealthMonitor bare;
    std::string plain = bare.progressLine(s);
    EXPECT_NE(plain.find("cycle 40000 |"), std::string::npos) << plain;
    EXPECT_EQ(plain.find("ETA"), std::string::npos) << plain;
}

// ----------------------------------------------- conservation audit --

class ConservationAudit
    : public ::testing::TestWithParam<TopologyType>
{};

TEST_P(ConservationAudit, HoldsMidRunAndAfterDrain)
{
    NetworkConfig cfg;
    cfg.topology = GetParam();
    cfg.radixX = 4;
    cfg.radixY = 4;
    cfg.concentration = (cfg.topology == TopologyType::Mesh ||
                         cfg.topology == TopologyType::Torus)
                            ? 1
                            : 4;
    Network net(cfg);

    std::string err;
    ASSERT_TRUE(net.auditCreditConservation(&err)) << err;

    Rng rng(23);
    int nodes = cfg.numNodes();
    for (Cycle t = 0; t < 400; ++t) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (rng.uniform() < 0.05) {
                auto dst = static_cast<NodeId>(
                    rng.below(static_cast<std::uint64_t>(nodes - 1)));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        // Every cycle, loaded: credits + in-flight + buffered must
        // re-assemble the buffer depth on every channel and VC.
        ASSERT_TRUE(net.auditCreditConservation(&err))
            << "cycle " << net.now() << ": " << err;
    }

    Cycle guard = 60000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    ASSERT_EQ(net.packetsInFlight(), 0u);
    EXPECT_TRUE(net.auditCreditConservation(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, ConservationAudit,
    ::testing::Values(TopologyType::Mesh, TopologyType::Torus,
                      TopologyType::ConcentratedMesh,
                      TopologyType::FlattenedButterfly),
    [](const ::testing::TestParamInfo<TopologyType> &info) {
        switch (info.param) {
          case TopologyType::Mesh: return "mesh";
          case TopologyType::Torus: return "torus";
          case TopologyType::ConcentratedMesh: return "cmesh";
          case TopologyType::FlattenedButterfly: return "flatfly";
        }
        return "unknown";
    });

/** Heterogeneous layouts (per-router VCs/widths) must audit clean too. */
TEST(ConservationAuditHetero, DiagonalBLUnderLoad)
{
    Network net(makeLayoutConfig(LayoutKind::DiagonalBL));
    Rng rng(29);
    std::string err;
    for (Cycle t = 0; t < 300; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (rng.uniform() < 0.04) {
                auto dst = static_cast<NodeId>(rng.below(63));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, net.dataPacketFlits());
            }
        }
        net.step();
        ASSERT_TRUE(net.auditCreditConservation(&err))
            << "cycle " << net.now() << ": " << err;
    }
}

} // namespace
} // namespace hnoc
