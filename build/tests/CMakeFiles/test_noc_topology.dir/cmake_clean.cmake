file(REMOVE_RECURSE
  "CMakeFiles/test_noc_topology.dir/noc/test_topology.cc.o"
  "CMakeFiles/test_noc_topology.dir/noc/test_topology.cc.o.d"
  "test_noc_topology"
  "test_noc_topology.pdb"
  "test_noc_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
