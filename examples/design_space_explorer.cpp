/**
 * @file
 * Design-space exploration (paper footnote 4): exhaustively enumerate
 * big-router placements on a 4x4 mesh, score them analytically by flow
 * coverage, then simulate the best candidates and a few structured
 * references (diagonal / center / rows). Shows why the diagonal
 * placement keeps winning: it maximizes the fraction of X-Y flows that
 * touch a big router while still covering the hot center.
 *
 *   ./examples/design_space_explorer [num_big=8]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/job_pool.hh"
#include "heteronoc/design_space.hh"
#include "heteronoc/layout.hh"

using namespace hnoc;

int
main(int argc, char **argv)
{
    int num_big = argc > 1 ? std::atoi(argv[1]) : 8;
    const int radix = 4;

    std::printf("Enumerating C(16,%d) = %.0f placements of %d big "
                "routers on a 4x4 mesh...\n\n",
                num_big, binomial(16, num_big), num_big);

    auto top = explorePlacements(radix, num_big, 5);
    std::printf("Top-5 by analytic flow-coverage score:\n");
    for (std::size_t i = 0; i < top.size(); ++i) {
        std::printf("#%zu score %.4f\n%s\n", i + 1, top[i].score,
                    renderLayout(top[i].bigMask, radix).c_str());
    }

    // Structured references for comparison.
    std::vector<PlacementScore> refs;
    for (LayoutKind kind :
         {LayoutKind::DiagonalBL, LayoutKind::CenterBL,
          LayoutKind::Row25BL}) {
        PlacementScore ps;
        ps.bigMask = bigRouterMask(kind, radix);
        ps.score = flowCoverageScore(ps.bigMask, radix);
        refs.push_back(ps);
        std::printf("%s score %.4f\n", layoutName(kind).c_str(),
                    ps.score);
    }

    std::printf("\nSimulating the top candidates plus references "
                "(UR @ 0.05 pkt/node/cycle, %d threads)...\n",
                JobPool::shared().threadCount());
    // One batch over candidates + references so every cycle-accurate
    // evaluation runs concurrently on the shared pool.
    std::vector<PlacementScore> all = top;
    all.insert(all.end(), refs.begin(), refs.end());
    simulateTopPlacements(all, radix, 0.05);
    std::copy(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(
                                             top.size()), top.begin());
    std::copy(all.begin() + static_cast<std::ptrdiff_t>(top.size()),
              all.end(), refs.begin());
    for (std::size_t i = 0; i < top.size(); ++i)
        std::printf("top-%zu: score %.4f -> %.1f ns\n", i + 1,
                    top[i].score, top[i].simLatencyNs);
    const char *names[] = {"Diagonal", "Center", "Row"};
    for (std::size_t i = 0; i < refs.size(); ++i)
        std::printf("%-8s: score %.4f -> %.1f ns\n", names[i],
                    refs[i].score, refs[i].simLatencyNs);
    return 0;
}
