file(REMOVE_RECURSE
  "CMakeFiles/test_noc_harness.dir/noc/test_harness.cc.o"
  "CMakeFiles/test_noc_harness.dir/noc/test_harness.cc.o.d"
  "test_noc_harness"
  "test_noc_harness.pdb"
  "test_noc_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
