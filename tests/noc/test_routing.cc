/**
 * @file
 * Routing-algorithm properties: X-Y minimality and determinism, torus
 * shortest-direction and dateline classes, flattened-butterfly two-hop
 * paths, and table routing's big-router bias and escape layer.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/routing.hh"

namespace hnoc
{
namespace
{

struct RoutingFixture
{
    explicit RoutingFixture(NetworkConfig cfg_in)
        : cfg(std::move(cfg_in)), topo(Topology::create(cfg)),
          routing(RoutingAlgorithm::create(cfg, *topo))
    {}

    NetworkConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<RoutingAlgorithm> routing;
};

TEST(XYRouting, PathsAreMinimalAndXFirst)
{
    RoutingFixture f{makeLayoutConfig(LayoutKind::Baseline)};
    for (NodeId src : {0, 7, 27, 56, 63}) {
        for (NodeId dst : {0, 7, 36, 56, 63}) {
            if (src == dst)
                continue;
            auto path = f.routing->path(src, dst);
            Coord cs = f.topo->routerCoord(src);
            Coord cd = f.topo->routerCoord(dst);
            EXPECT_EQ(static_cast<int>(path.size()),
                      manhattan(cs, cd) + 1)
                << src << "->" << dst;
            // X phase first: y must not change until x matches dst.
            for (const RouterId r : path) {
                Coord c = f.topo->routerCoord(r);
                if (c.x != cd.x)
                    EXPECT_EQ(c.y, cs.y);
            }
            EXPECT_EQ(path.front(), f.topo->routerOfNode(src));
            EXPECT_EQ(path.back(), f.topo->routerOfNode(dst));
        }
    }
}

TEST(XYRouting, AtDestinationReturnsLocalPort)
{
    RoutingFixture f{makeLayoutConfig(LayoutKind::Baseline)};
    Packet pkt;
    pkt.src = 5;
    pkt.dst = 42;
    EXPECT_EQ(f.routing->outputPort(42, pkt),
              f.topo->localPortOfNode(42));
}

TEST(TorusRouting, UsesWrapForShortcuts)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.topology = TopologyType::Torus;
    RoutingFixture f{cfg};
    // 0 -> 7 on a torus: one hop west over the wrap, not 7 hops east.
    auto path = f.routing->path(0, 7);
    EXPECT_EQ(path.size(), 2u);
    EXPECT_EQ(path[1], 7);
}

TEST(TorusRouting, DatelineClassesPartitionVcs)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.topology = TopologyType::Torus;
    RoutingFixture f{cfg};
    Packet pkt;
    pkt.src = 5;  // (5,0)
    pkt.dst = 1;  // (1,0): shortest is +x over the wrap (4 hops east)
    VcId lo;
    VcId hi;
    // Before the wrap (at x=6): lower class.
    f.routing->vcBounds(6, mesh_ports::EAST, pkt, 3, lo, hi);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 1);
    // After the wrap (at x=0): upper class.
    f.routing->vcBounds(0, mesh_ports::EAST, pkt, 3, lo, hi);
    EXPECT_EQ(lo, 2);
    EXPECT_EQ(hi, 2);
}

TEST(TorusRouting, PathNeverExceedsHalfRadix)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.topology = TopologyType::Torus;
    RoutingFixture f{cfg};
    for (NodeId src = 0; src < 64; src += 7) {
        for (NodeId dst = 0; dst < 64; dst += 5) {
            if (src == dst)
                continue;
            auto path = f.routing->path(src, dst);
            EXPECT_LE(path.size(), 1u + 4 + 4) << src << "->" << dst;
        }
    }
}

TEST(FlatFlyRouting, AtMostTwoHops)
{
    NetworkConfig cfg;
    cfg.topology = TopologyType::FlattenedButterfly;
    cfg.radixX = 4;
    cfg.radixY = 4;
    cfg.concentration = 4;
    RoutingFixture f{cfg};
    for (NodeId src = 0; src < 64; src += 3) {
        for (NodeId dst = 0; dst < 64; dst += 5) {
            if (src == dst)
                continue;
            auto path = f.routing->path(src, dst);
            EXPECT_LE(path.size(), 3u) << src << "->" << dst;
        }
    }
}

class TableRoutingTest : public ::testing::Test
{
  protected:
    NetworkConfig
    tableConfig()
    {
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
        cfg.routing = RoutingMode::TableXY;
        cfg.tableRoutedNodes = {0, 7, 56, 63};
        return cfg;
    }
};

TEST_F(TableRoutingTest, NonTableTrafficUsesXY)
{
    RoutingFixture f{tableConfig()};
    auto path = f.routing->path(9, 18);
    // Plain X-Y path for non-large-core traffic.
    EXPECT_EQ(path.size(), 3u);
    EXPECT_EQ(path[1], 10);
}

TEST_F(TableRoutingTest, TablePathsReachAndPreferBigRouters)
{
    RoutingFixture f{tableConfig()};
    auto &table = static_cast<const TableXYRouting &>(*f.routing);
    EXPECT_TRUE(table.isTableNode(0));
    EXPECT_FALSE(table.isTableNode(9));

    auto mask = bigRouterMask(LayoutKind::DiagonalBL, 8);
    int table_big = 0;
    int table_len = 0;
    int xy_big = 0;
    int xy_len = 0;
    for (NodeId dst = 1; dst < 64; ++dst) {
        auto path = f.routing->path(0, dst);
        EXPECT_EQ(path.back(), f.topo->routerOfNode(dst));
        table_len += static_cast<int>(path.size());
        for (RouterId r : path)
            table_big += mask[static_cast<std::size_t>(r)] ? 1 : 0;

        auto xy = XYRouting(f.cfg, *f.topo).path(0, dst);
        xy_len += static_cast<int>(xy.size());
        for (RouterId r : xy)
            xy_big += mask[static_cast<std::size_t>(r)] ? 1 : 0;
    }
    double table_frac = static_cast<double>(table_big) / table_len;
    double xy_frac = static_cast<double>(xy_big) / xy_len;
    EXPECT_GT(table_frac, xy_frac)
        << "table routing should bias paths through big routers";
}

TEST_F(TableRoutingTest, EscapeConfinedToVcZero)
{
    RoutingFixture f{tableConfig()};
    Packet pkt;
    pkt.src = 0;
    pkt.dst = 55;
    pkt.tableRouted = true;
    VcId lo;
    VcId hi;
    f.routing->vcBounds(0, mesh_ports::EAST, pkt, 6, lo, hi);
    EXPECT_EQ(lo, 1); // VC 0 reserved for the escape layer
    EXPECT_EQ(hi, 5);
    EXPECT_TRUE(f.routing->hasEscape(pkt));

    pkt.escaped = true;
    f.routing->vcBounds(0, mesh_ports::EAST, pkt, 6, lo, hi);
    EXPECT_EQ(lo, 0);
    EXPECT_FALSE(f.routing->hasEscape(pkt));
}

} // namespace
} // namespace hnoc
