/**
 * @file
 * Directed coherence litmus tests on the full system: targeted
 * workload profiles drive specific protocol corners (single hot block
 * invalidation storms, producer/consumer read sharing, writeback
 * pressure), asserting the system stays live and conserves packets.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

WorkloadProfile
litmusProfile(double shared_frac, int shared_blocks,
              double shared_write_frac)
{
    WorkloadProfile p;
    p.name = "litmus";
    p.memRatio = 0.5;
    p.readFrac = 0.7;
    p.hotFrac = 0.3;
    p.hotBlocks = 64;
    p.privateBlocks = 256;
    p.sharedFrac = shared_frac;
    p.sharedBlocks = shared_blocks;
    p.streamProb = 0.0;
    p.sharedWriteFrac = shared_write_frac;
    return p;
}

void
runAndDrain(CmpSystem &sys, Cycle run_cycles)
{
    sys.run(run_cycles);
    for (NodeId n = 0; n < 64; ++n)
        sys.idleCore(n);
    Cycle guard = 80000;
    while (sys.network().packetsInFlight() > 0 && guard-- > 0)
        sys.network().step();
    EXPECT_EQ(sys.network().packetsInFlight(), 0u)
        << "protocol deadlock or lost packets";
}

TEST(CoherenceLitmus, SingleBlockWriteStorm)
{
    // Every core hammers one shared block with writes: a continuous
    // GetX / Inv / InvAck storm through one home directory.
    // The blocking directory serializes the storm: each ownership
    // handoff costs a GetX + FwdGetX + OwnerWb + DataM round
    // (~80 network cycles), so expect on the order of 70+ handoffs.
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(litmusProfile(1.0, 1, 1.0));
    runAndDrain(sys, 6000);
    EXPECT_GT(sys.packetsSent(), 150u);
}

TEST(CoherenceLitmus, SingleBlockReadSharing)
{
    // All cores read one block: after the first E grant and a demote,
    // the sharer list grows; no invalidations should dominate.
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(litmusProfile(1.0, 1, 0.0));
    sys.run(4000);
    // Reads on a never-written shared block settle into L1 hits, so
    // traffic per instruction must be far below the write storm's.
    double pkts_per_miss =
        static_cast<double>(sys.packetsSent()) /
        std::max<std::uint64_t>(1, sys.l1Misses());
    EXPECT_LT(pkts_per_miss, 6.0);
    runAndDrain(sys, 100);
}

TEST(CoherenceLitmus, PingPongPair)
{
    // Two cores alternate writes to a tiny shared set; the rest idle.
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    for (NodeId n = 0; n < 64; ++n)
        sys.idleCore(n);
    sys.assignWorkload(9, litmusProfile(1.0, 4, 0.8));
    sys.assignWorkload(54, litmusProfile(1.0, 4, 0.8));
    runAndDrain(sys, 8000);
    // Ownership handoffs are serialized by load round trips, so the
    // pair settles into a slow but continuous ping-pong.
    EXPECT_GT(sys.packetsSent(), 50u);
}

TEST(CoherenceLitmus, WritebackPressure)
{
    // Private write working set far beyond L1 forces a steady PutM /
    // WbAck stream alongside refills.
    WorkloadProfile p = litmusProfile(0.0, 1, 0.0);
    p.readFrac = 0.2; // write heavy
    p.hotFrac = 0.0;
    p.privateBlocks = 4096; // >> 256-line L1
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), CmpConfig{});
    sys.assignWorkloadAll(p);
    runAndDrain(sys, 6000);
    EXPECT_GT(sys.l1Misses(), 2000u);
}

TEST(CoherenceLitmus, StormOnHeteroNetworkToo)
{
    CmpSystem sys(makeLayoutConfig(LayoutKind::DiagonalBL), CmpConfig{});
    sys.assignWorkloadAll(litmusProfile(1.0, 2, 0.9));
    runAndDrain(sys, 6000);
}

TEST(CoherenceLitmus, StormWithDiamondMcs)
{
    CmpConfig cfg;
    cfg.mcPlacement = McPlacement::Diamond;
    CmpSystem sys(makeLayoutConfig(LayoutKind::Baseline), cfg);
    WorkloadProfile p = litmusProfile(0.2, 512, 0.5);
    p.privateBlocks = 8192; // drive DRAM traffic through 16 MCs
    sys.assignWorkloadAll(p);
    runAndDrain(sys, 6000);
}

} // namespace
} // namespace hnoc
