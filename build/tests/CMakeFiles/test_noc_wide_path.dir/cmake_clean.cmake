file(REMOVE_RECURSE
  "CMakeFiles/test_noc_wide_path.dir/noc/test_wide_path.cc.o"
  "CMakeFiles/test_noc_wide_path.dir/noc/test_wide_path.cc.o.d"
  "test_noc_wide_path"
  "test_noc_wide_path.pdb"
  "test_noc_wide_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_wide_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
