/**
 * @file
 * The wormhole-switched virtual-channel router (paper §3, §4).
 *
 * Two-stage pipeline: buffer write / route compute in stage 1; VC
 * allocation and switch allocation (two sub-stage separable allocator,
 * Fig 6) in stage 2, with switch traversal folded into the channel
 * delay. Heterogeneity: per-router VC counts and datapath widths, and
 * wide output channels that accept two combined flits per cycle from
 * two different VCs (same or different input ports — Fig 4 cases (c),
 * (d); §3.3 cases (a), (b)).
 *
 * State layout: the per-cycle hot path runs on a data-oriented
 * structure-of-arrays core (RouterCore) — dense parallel arrays per
 * (port, VC) slot plus bitmask request sets — so VA and SA visit only
 * actual requesters via count-trailing-zeros iteration instead of
 * scanning every slot. Grant order is unchanged: the bitmask walk
 * follows the exact rotating-priority sequence of the legacy loops
 * (DESIGN.md "SoA router core").
 *
 * Active-set scheduling: the router exposes busy() — true while any
 * input VC holds a flit — and the Network steps only busy routers.
 * This is exact, not heuristic: RC, VA, SA, telemetry and occupancy
 * sampling are all no-ops on a flitless router, and the round-robin
 * pointers are derived from the cycle number (plus a grant offset that
 * only moves on granting, i.e. busy, cycles) so arbitration state
 * advances identically whether idle cycles are stepped or skipped.
 */

#ifndef HNOC_NOC_ROUTER_HH
#define HNOC_NOC_ROUTER_HH

#include <vector>

#include "common/types.hh"
#include "noc/active_set.hh"
#include "noc/channel.hh"
#include "noc/flit.hh"
#include "noc/network_config.hh"
#include "noc/observer.hh"
#include "noc/router_core.hh"
#include "noc/routing.hh"
#include "power/router_power.hh"
#include "telemetry/blame.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"

namespace hnoc
{

/** One router instance. Wiring is performed by Network. */
class Router
{
  public:
    Router(RouterId id, int num_ports, int vcs, int buffer_depth,
           const RoutingAlgorithm &routing, int escape_threshold,
           bool intra_packet_pairing,
           SaPolicy sa_policy = SaPolicy::RoundRobin);

    RouterId id() const { return id_; }
    int numPorts() const { return core_.ports; }
    int vcsPerPort() const { return core_.vcs; }
    int bufferDepth() const { return bufferDepth_; }

    /** Attach the channel whose flits arrive at input port @p p. */
    void connectInput(PortId p, Channel *chan);

    /**
     * Attach the channel driven by output port @p p.
     * @param down_vcs VC count at the downstream input port
     * @param down_depth buffer depth per downstream VC (credits)
     */
    void connectOutput(PortId p, Channel *chan, int down_vcs,
                       int down_depth);

    /** Pack per-output credit counters once all ports are wired
     *  (RouterCore::finalizeWiring). Call exactly once, after the
     *  last connectOutput(). */
    void finalizeWiring() { core_.finalizeWiring(); }

    /** Buffer-write: a flit delivered by the input channel at @p p. */
    void receiveFlit(PortId p, Flit flit, Cycle now);

    /** A credit returned for output port @p p, VC @p vc. */
    void receiveCredit(PortId p, VcId vc, Cycle now = 0);

    /** Run RC / VA / SA / ST for this cycle. */
    void step(Cycle now);

    /** Prefetch the step working set (issued one active-list entry
     *  ahead by the Network's blocked step loop, §6g). */
    void
    prefetchStep() const
    {
        bitops::prefetch(this);
        core_.prefetchStep();
    }

    /** Bytes moveCoreToArena() will carve from the hot arena. */
    std::size_t coreArenaBytes() const { return core_.arenaBytes(); }

    /** Relocate the core's packed hot storage into @p arena (§6g). */
    void moveCoreToArena(HotArena &arena) { core_.moveToArena(arena); }

    /**
     * @return true if stepping this cycle can have any effect. Exactly
     * the flit-holding condition: every pipeline stage requires a
     * buffered flit to act (an active-but-empty VC merely waits for
     * its next flit, which re-marks the router busy on arrival).
     */
    bool busy() const { return flitCount_ > 0; }

    /** Register a dense active list woken (with @p id) on this
     *  router's idle→busy transitions; call before bindActivitySlot. */
    void
    addActivityWake(ActiveList *list, std::uint32_t id)
    {
        slot_.addWakeHook(list, id);
    }

    /** Bind this router's cell in the Network's active-set bitmap. */
    void
    bindActivitySlot(std::uint8_t *flag, std::size_t *count)
    {
        slot_.bind(flag, count);
        if (busy())
            slot_.markBusy();
    }

    /** @name Statistics */
    ///@{
    RouterActivity &activity() { return activity_; }
    const RouterActivity &activity() const { return activity_; }

    /** @return flits currently buffered (for occupancy stats). */
    int bufferOccupancy() const { return flitCount_; }

    /** @return total buffer slots. */
    int
    bufferCapacity() const
    {
        return core_.total * bufferDepth_;
    }

    /** Accumulated occupancy-cycles for buffer-utilization heat maps. */
    double occupancySum() const { return occupancySum_; }
    void resetOccupancy() { occupancySum_ = 0.0; }
    ///@}

    /** @return true if any input VC holds a flit (watchdog helper). */
    bool hasBufferedFlits() const { return flitCount_ > 0; }

    /** Install a flit-event observer (nullptr to clear). */
    void setObserver(NetworkObserver *observer) { observer_ = observer; }

    /** Attach a metrics registry (nullptr to detach). Hooks cost one
     *  branch per event while detached. */
    void setTelemetry(MetricRegistry *reg) { telemetry_ = reg; }

    /** Attach a flight recorder (nullptr to detach). Same cost model
     *  as setTelemetry: one branch per event while detached. */
    void setFlightRecorder(FlightRecorder *fr) { recorder_ = fr; }

    /** Attach a self-profiler (nullptr to detach). While detached the
     *  cost is one branch per pipeline sub-phase per stepped cycle;
     *  while attached each sub-phase pays two steady_clock reads.
     *  Report-only: profiling never alters simulation results. */
    void setProfiler(Profiler *prof) { profiler_ = prof; }

    /** Attach a blame collector (nullptr to detach). While detached
     *  the cost is one branch per stepped cycle; while attached the
     *  post-SA blame pass charges every still-pending head one stall
     *  cycle. Report-only: never alters simulation results. */
    void setBlame(BlameCollector *b) { blame_ = b; }

    /** Mark @p p as the port driving the ejection channel, so blame
     *  can classify stalls at the ejection funnel separately. */
    void markEjectionPort(PortId p) { ejectPort_ = p; }

    /** Steady-state memory footprint: the SoA core, the OldestFirst
     *  ordering scratch, and the object itself. */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(sizeof(*this)) +
               core_.footprintBytes() +
               scratchOrder_.capacity() * sizeof(int);
    }

    /** @name Introspection (health probes, conservation audit,
     *        postmortem dumps). Reads the SoA core directly — the
     *        dense arrays are the single source of truth. */
    ///@{
    /** Flits buffered at input port @p p, VC @p v. */
    int
    inputVcOccupancy(PortId p, VcId v) const
    {
        return static_cast<int>(
            core_.fifo[static_cast<std::size_t>(core_.slot(p, v))]
                .size());
    }

    /** Downstream VC count credited at output port @p p (0 when the
     *  port drives no channel). */
    int
    outputVcCount(PortId p) const
    {
        return core_.outputs[static_cast<std::size_t>(p)].downVcs;
    }

    /** Credits held for output port @p p, downstream VC @p v. */
    int
    outputCredits(PortId p, VcId v) const
    {
        return core_.outputs[static_cast<std::size_t>(p)]
            .credits[static_cast<std::size_t>(v)];
    }

    /** Is downstream VC @p v at output port @p p allocated? */
    bool
    outputAllocated(PortId p, VcId v) const
    {
        return (core_.outputs[static_cast<std::size_t>(p)].allocMask >>
                v) &
               1u;
    }

    /** Snapshot of one input VC's pipeline state (postmortem dump). */
    struct InputVcView
    {
        int occupancy = 0;
        bool active = false;
        PortId outPort = INVALID_PORT;
        VcId outVc = INVALID_VC;
        Cycle headSince = 0;
        std::uint64_t pkt = 0; ///< packet id (0 = none)
    };

    InputVcView inputVcView(PortId p, VcId v) const;
    ///@}

  private:
    void routeCompute(Cycle now);
    void vcAllocate(Cycle now);
    void switchAllocate(Cycle now);
    void switchAllocatePort(PortId o, Cycle now);

    /** Charge one stall cycle to every head still pending after SA;
     *  runs only while a BlameCollector is attached. */
    void blamePass(Cycle now);

    /** Handle the table-routing escape timeout for a stalled head
     *  occupying slot @p s. */
    void maybeEscape(int s, Cycle now);

    RouterId id_;
    int bufferDepth_;
    const RoutingAlgorithm &routing_;
    int escapeThreshold_;
    bool intraPacketPairing_;
    SaPolicy saPolicy_;

    RouterCore core_;
    int flitCount_ = 0; ///< total buffered flits across all input VCs
    ActivitySlot slot_;

    RouterActivity activity_;
    double occupancySum_ = 0.0;
    NetworkObserver *observer_ = nullptr;
    MetricRegistry *telemetry_ = nullptr;
    FlightRecorder *recorder_ = nullptr;
    Profiler *profiler_ = nullptr;
    BlameCollector *blame_ = nullptr;
    PortId ejectPort_ = INVALID_PORT;
    std::vector<int> scratchOrder_; ///< SA visiting order (OldestFirst)
};

} // namespace hnoc

#endif // HNOC_NOC_ROUTER_HH
