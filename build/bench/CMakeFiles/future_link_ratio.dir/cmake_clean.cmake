file(REMOVE_RECURSE
  "CMakeFiles/future_link_ratio.dir/future_link_ratio.cc.o"
  "CMakeFiles/future_link_ratio.dir/future_link_ratio.cc.o.d"
  "future_link_ratio"
  "future_link_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_link_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
