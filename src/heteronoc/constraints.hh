/**
 * @file
 * Design-constraint checkers for heterogeneous layouts (paper §2):
 * constant total VC count, constant bisection bandwidth, the router
 * power-budget inequality, and the Table 1 buffer-bit / area
 * accounting.
 */

#ifndef HNOC_HETERONOC_CONSTRAINTS_HH
#define HNOC_HETERONOC_CONSTRAINTS_HH

#include <string>

#include "noc/network_config.hh"

namespace hnoc
{

/** Aggregate resource accounting for one network configuration. */
struct ResourceAccounting
{
    long long totalVcs = 0;        ///< sum over routers of VCs/PC
    long long bufferSlots = 0;     ///< total flit slots
    long long bufferBits = 0;      ///< total storage bits (Table 1)
    long long bisectionBits = 0;   ///< one-direction bisection width
    double totalRouterAreaMm2 = 0; ///< sum of router areas (§3.5)
    double routerPowerAt50W = 0;   ///< sum of analytic 50 %-activity power
    int smallRouters = 0;
    int bigRouters = 0;
    int baselineRouters = 0;
};

/** Compute the accounting for @p config. */
ResourceAccounting accountResources(const NetworkConfig &config);

/** Verdict of the §2 constraint checks against a reference config. */
struct ConstraintReport
{
    bool vcConserved = false;        ///< same total VC count
    bool bisectionConserved = false; ///< same bisection bandwidth
    bool powerBudgetOk = false;      ///< hetero 50 % power <= baseline
    bool areaBudgetOk = false;       ///< hetero router area <= baseline

    bool
    allOk() const
    {
        return vcConserved && bisectionConserved && powerBudgetOk &&
               areaBudgetOk;
    }
};

/** Check @p hetero against @p baseline per the paper's §2 rules. */
ConstraintReport checkConstraints(const NetworkConfig &hetero,
                                  const NetworkConfig &baseline);

/**
 * Minimum small-router count so that the heterogeneous network's
 * router power does not exceed the homogeneous one (the inequality
 * 0.67 N^2 >= 0.3 ns + 1.19 (N^2 - ns) of §2).
 * @param total_routers N^2
 */
int minSmallRouters(int total_routers);

/**
 * Solve the §2 link-width equation for the narrow-link width:
 * Whomo * n = Whetero * Nnarrow + 2 Whetero * Nwide.
 */
int narrowLinkWidth(int homo_width, int homo_links, int narrow_links,
                    int wide_links);

/** Human-readable accounting dump (used by the Table 1 bench). */
std::string formatAccounting(const ResourceAccounting &acc,
                             const std::string &title);

} // namespace hnoc

#endif // HNOC_HETERONOC_CONSTRAINTS_HH
