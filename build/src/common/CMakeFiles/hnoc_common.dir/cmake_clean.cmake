file(REMOVE_RECURSE
  "CMakeFiles/hnoc_common.dir/logging.cc.o"
  "CMakeFiles/hnoc_common.dir/logging.cc.o.d"
  "CMakeFiles/hnoc_common.dir/report.cc.o"
  "CMakeFiles/hnoc_common.dir/report.cc.o.d"
  "CMakeFiles/hnoc_common.dir/stats.cc.o"
  "CMakeFiles/hnoc_common.dir/stats.cc.o.d"
  "libhnoc_common.a"
  "libhnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
