/**
 * @file
 * Static configuration of a network instance: topology, router
 * provisioning (possibly per-router, i.e. heterogeneous), link widths,
 * timing. A NetworkConfig is a plain value; the HeteroNoC layout
 * builders in src/heteronoc produce these.
 */

#ifndef HNOC_NOC_NETWORK_CONFIG_HH
#define HNOC_NOC_NETWORK_CONFIG_HH

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.hh"
#include "power/router_params.hh"

namespace hnoc
{

/** Supported topologies (paper Figs 1, 2, 10). */
enum class TopologyType
{
    Mesh,
    Torus,
    ConcentratedMesh,
    FlattenedButterfly,
};

/** How inter-router channel widths are derived. */
enum class LinkWidthMode
{
    /** Every channel uses uniformLinkBits (baseline and +B layouts). */
    Uniform,
    /** Channel width = max of its two endpoint routers' datapath widths
     *  (+BL layouts: wide 256 b links touch big routers, §2). */
    EndpointMax,
    /**
     * Wide links occupy a central band: the bandWideLinks rows closest
     * to the horizontal center get wide (2x flit) row links, and
     * likewise for columns — so every bisection cut crosses exactly
     * bandWideLinks wide and (radix - bandWideLinks) narrow links.
     * Used by the footnote-2 wide:narrow ratio sensitivity study.
     */
    CentralBand,
};

/** Routing algorithm selector. */
enum class RoutingMode
{
    /** Deterministic dimension-order X-Y (default everywhere). */
    XY,
    /** Deterministic Y-X (column first); useful for dimension-order
     *  sensitivity studies on grid topologies. */
    YX,
    /** O1TURN: each packet picks X-Y or Y-X at injection (packet-id
     *  parity); the VC space splits into an X-Y class (lower half)
     *  and a Y-X class (upper half) for deadlock freedom. Requires
     *  >= 2 VCs everywhere. */
    O1Turn,
    /** X-Y plus big-router-seeking table routes for marked packets,
     *  with an escape layer on VC 0 (case study II, §7). */
    TableXY,
};

/** Switch-allocation arbitration policy (Fig 6 stage-2 arbiters). */
enum class SaPolicy
{
    /** Rotating-priority arbiters (the common hardware choice). */
    RoundRobin,
    /** Oldest-waiting-head first: better fairness near saturation at
     *  the cost of wider comparators. */
    OldestFirst,
};

/** Complete static description of one network instance. */
struct NetworkConfig
{
    std::string name = "baseline";

    TopologyType topology = TopologyType::Mesh;
    int radixX = 8;        ///< routers per row
    int radixY = 8;        ///< routers per column
    int concentration = 1; ///< terminal nodes per router

    /** Network-level flit width in bits (192 baseline/+B, 128 +BL). */
    int flitWidthBits = 192;
    /** Data (cache-line) packet payload in bits (Table 2: 1024). */
    int dataPacketBits = 1024;

    /** Per-VC FIFO depth in flits (5 across all designs, §2). */
    int bufferDepth = 5;
    /** VCs per physical channel when routerVcs is empty. */
    int defaultVcs = 3;
    /** Router datapath width when routerWidthBits is empty. */
    int defaultWidthBits = 192;

    /** Per-router VC override (size numRouters(), or empty). */
    std::vector<int> routerVcs;
    /** Per-router datapath width override (size numRouters(), or empty). */
    std::vector<int> routerWidthBits;

    LinkWidthMode linkWidthMode = LinkWidthMode::Uniform;
    int uniformLinkBits = 192;
    /** Wide links per bisection cut under CentralBand mode. */
    int bandWideLinks = 4;

    RoutingMode routing = RoutingMode::XY;
    /** Nodes whose traffic uses table routes under TableXY. */
    std::vector<NodeId> tableRoutedNodes;
    /** Cycles a table-routed head may stall before taking the escape. */
    int escapeThreshold = 16;

    /**
     * Allow two consecutive flits of one packet (same VC) to share a
     * wide link in one cycle, consuming two credits (§3.2: "the
     * downstream router now needs two credits in the upstream
     * router"). Cross-VC combining per §3.3 is always enabled.
     */
    bool intraPacketPairing = true;

    /** Switch-allocator arbitration policy. */
    SaPolicy saPolicy = SaPolicy::RoundRobin;

    /**
     * Force the exhaustive per-cycle loop instead of active-set
     * scheduling (also switchable via the HNOC_ALWAYS_STEP
     * environment variable). Results are bit-identical either way;
     * this is the escape hatch for A/B-ing the scheduler.
     */
    bool alwaysStep = false;

    /**
     * Cache-blocked stepping: routers per spatial block for the
     * tile-major step order (§6g). 0 (the default) auto-sizes blocks
     * to fit a per-block working set in L2, rounded to whole mesh
     * rows; values >= numRouters() collapse to one whole-chip block.
     * Also switchable via the HNOC_BLOCK_TILES environment variable.
     * Results are bit-identical for every block size.
     */
    int blockTiles = 0;

    /** Router pipeline depth in cycles (2-stage, §4). */
    int pipelineStages = 2;
    /** Channel traversal latency in cycles (must be >= 1: same-cycle
     *  delivery would break the blocked step order's determinism). */
    int linkLatency = 1;

    /** Network clock in GHz; <= 0 means "derive from the slowest
     *  router's frequency model" (§3.4 worst-case rule). */
    double clockGHz = -1.0;

    /** @return router count for the configured topology. */
    int
    numRouters() const
    {
        return radixX * radixY;
    }

    /** @return terminal node count. */
    int
    numNodes() const
    {
        return numRouters() * concentration;
    }

    /** @return VC count of router @p r. */
    int
    vcsOf(RouterId r) const
    {
        return routerVcs.empty() ? defaultVcs
                                 : routerVcs[static_cast<std::size_t>(r)];
    }

    /** @return datapath width (bits) of router @p r. */
    int
    widthOf(RouterId r) const
    {
        return routerWidthBits.empty()
                   ? defaultWidthBits
                   : routerWidthBits[static_cast<std::size_t>(r)];
    }

    /** @return width in bits of the channel between routers @p a, @p b. */
    int
    channelBits(RouterId a, RouterId b) const
    {
        switch (linkWidthMode) {
          case LinkWidthMode::Uniform:
            return uniformLinkBits;
          case LinkWidthMode::EndpointMax:
            return std::max(widthOf(a), widthOf(b));
          case LinkWidthMode::CentralBand: {
            // Row links share a row; column links share a column.
            int ya = a / radixX;
            int yb = b / radixX;
            int lane = (ya == yb) ? ya : a % radixX;
            int radix = (ya == yb) ? radixY : radixX;
            int lo = (radix - bandWideLinks) / 2;
            bool wide = lane >= lo && lane < lo + bandWideLinks;
            return wide ? 2 * flitWidthBits : flitWidthBits;
          }
        }
        return uniformLinkBits;
    }

    /** @return width in bits of router @p r's local (NI) channels. */
    int
    localChannelBits(RouterId r) const
    {
        switch (linkWidthMode) {
          case LinkWidthMode::Uniform:
            return uniformLinkBits;
          case LinkWidthMode::EndpointMax:
            return widthOf(r);
          case LinkWidthMode::CentralBand:
            return flitWidthBits;
        }
        return uniformLinkBits;
    }

    /** @return flits per data packet (6 baseline, 8 HeteroNoC+BL). */
    int
    dataPacketFlits() const
    {
        return (dataPacketBits + flitWidthBits - 1) / flitWidthBits;
    }

    /** @return power/area model parameters for router @p r. Buffer
     *  FIFOs are flit-wide regardless of crossbar width (§3.2). */
    RouterPhysParams
    physParamsOf(RouterId r, int ports) const
    {
        return RouterPhysParams{ports, vcsOf(r), bufferDepth, widthOf(r),
                                flitWidthBits};
    }
};

} // namespace hnoc

#endif // HNOC_NOC_NETWORK_CONFIG_HH
