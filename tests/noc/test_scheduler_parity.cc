/**
 * @file
 * Active-set scheduler parity: every run must be bit-identical to the
 * exhaustive always-step loop (config.alwaysStep / HNOC_ALWAYS_STEP)
 * on every topology, pattern, seed, and thread count. This is the
 * acceptance gate for the activity-driven cycle loop: skipping idle
 * components must be invisible to results, telemetry, and power.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/job_pool.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

SimPointOptions
quickOptions(std::uint64_t seed)
{
    SimPointOptions opts;
    opts.warmupCycles = 800;
    opts.measureCycles = 2000;
    opts.drainCycles = 4000;
    opts.seed = seed;
    return opts;
}

void
expectBitIdentical(const SimPointResult &a, const SimPointResult &b)
{
    EXPECT_EQ(a.offeredRate, b.offeredRate);
    EXPECT_EQ(a.acceptedRate, b.acceptedRate);
    EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
    EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs);
    EXPECT_EQ(a.avgQueuingNs, b.avgQueuingNs);
    EXPECT_EQ(a.avgBlockingNs, b.avgBlockingNs);
    EXPECT_EQ(a.avgTransferNs, b.avgTransferNs);
    EXPECT_EQ(a.p95LatencyNs, b.p95LatencyNs);
    EXPECT_EQ(a.networkPowerW, b.networkPowerW);
    EXPECT_EQ(a.power.buffers, b.power.buffers);
    EXPECT_EQ(a.power.crossbar, b.power.crossbar);
    EXPECT_EQ(a.power.arbiters, b.power.arbiters);
    EXPECT_EQ(a.power.links, b.power.links);
    EXPECT_EQ(a.combineRate, b.combineRate);
    EXPECT_EQ(a.saturated, b.saturated);
    EXPECT_EQ(a.bufferUtilPct, b.bufferUtilPct);
    EXPECT_EQ(a.linkUtilPct, b.linkUtilPct);
    EXPECT_EQ(a.trackedDelivered, b.trackedDelivered);
    EXPECT_EQ(a.trackedCreated, b.trackedCreated);
    EXPECT_EQ(a.latencyByHopsNs, b.latencyByHopsNs);
    EXPECT_EQ(a.watchdogTrips, b.watchdogTrips);
}

struct TopoCase
{
    const char *name;
    TopologyType topology;
};

NetworkConfig
topoConfig(const TopoCase &tc)
{
    if (tc.topology == TopologyType::Mesh)
        return makeLayoutConfig(LayoutKind::Baseline); // 8x8 mesh
    NetworkConfig cfg;
    cfg.name = tc.name;
    cfg.topology = tc.topology;
    cfg.radixX = 4;
    cfg.radixY = 4;
    cfg.concentration = 4;
    return cfg;
}

class SchedulerParity : public ::testing::TestWithParam<TopoCase>
{};

TEST_P(SchedulerParity, BitIdenticalAcrossPatternsAndSeeds)
{
    NetworkConfig active_cfg = topoConfig(GetParam());
    NetworkConfig always_cfg = active_cfg;
    always_cfg.alwaysStep = true;

    const TrafficPattern patterns[] = {TrafficPattern::UniformRandom,
                                       TrafficPattern::NearestNeighbor,
                                       TrafficPattern::Transpose};
    const std::uint64_t seeds[] = {17, 20260706, 421};

    for (TrafficPattern p : patterns) {
        for (std::size_t si = 0; si < 3; ++si) {
            SCOPED_TRACE(trafficPatternName(p) + " seed " +
                         std::to_string(seeds[si]));
            SimPointOptions opts = quickOptions(seeds[si]);
            // Telemetry must also match; collect it on the first seed
            // (registries compare via their serialized documents).
            opts.collectMetrics = si == 0;
            SimPointResult active = runOpenLoop(active_cfg, p, opts);
            SimPointResult always = runOpenLoop(always_cfg, p, opts);
            expectBitIdentical(active, always);
            if (opts.collectMetrics) {
                ASSERT_TRUE(active.metrics && always.metrics);
                EXPECT_EQ(active.metrics->json(), always.metrics->json());
            }
        }
    }
}

TEST_P(SchedulerParity, BitIdenticalAcrossBlockSizes)
{
    // Cache-blocked stepping (§6g) must be invisible at every block
    // size: single-tile blocks (maximum cross-block traffic), the
    // auto-sized default, and one whole-chip block (degenerate case)
    // all against the exhaustive loop.
    NetworkConfig auto_cfg = topoConfig(GetParam());
    NetworkConfig one_cfg = auto_cfg;
    one_cfg.blockTiles = 1;
    NetworkConfig whole_cfg = auto_cfg;
    whole_cfg.blockTiles = 1 << 20; // clamped to the router count
    NetworkConfig always_cfg = auto_cfg;
    always_cfg.alwaysStep = true;

    for (TrafficPattern p : {TrafficPattern::UniformRandom,
                             TrafficPattern::Transpose}) {
        SCOPED_TRACE(trafficPatternName(p));
        SimPointOptions opts = quickOptions(20260706);
        opts.collectMetrics = true;
        SimPointResult always = runOpenLoop(always_cfg, p, opts);
        ASSERT_TRUE(always.metrics);
        for (const NetworkConfig *cfg :
             {&one_cfg, &auto_cfg, &whole_cfg}) {
            SCOPED_TRACE("block_tiles " +
                         std::to_string(cfg->blockTiles));
            SimPointResult got = runOpenLoop(*cfg, p, opts);
            expectBitIdentical(got, always);
            ASSERT_TRUE(got.metrics);
            EXPECT_EQ(got.metrics->json(), always.metrics->json());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, SchedulerParity,
    ::testing::Values(TopoCase{"mesh", TopologyType::Mesh},
                      TopoCase{"torus", TopologyType::Torus},
                      TopoCase{"cmesh", TopologyType::ConcentratedMesh},
                      TopoCase{"flatfly",
                               TopologyType::FlattenedButterfly}),
    [](const ::testing::TestParamInfo<TopoCase> &info) {
        return info.param.name;
    });

TEST(SchedulerParityHetero, DiagonalBlMatchesAlwaysStep)
{
    NetworkConfig active_cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    NetworkConfig always_cfg = active_cfg;
    always_cfg.alwaysStep = true;

    for (TrafficPattern p : {TrafficPattern::UniformRandom,
                             TrafficPattern::Transpose,
                             TrafficPattern::SelfSimilar}) {
        SCOPED_TRACE(trafficPatternName(p));
        SimPointOptions opts = quickOptions(20260706);
        opts.injectionRate = 0.02;
        expectBitIdentical(runOpenLoop(active_cfg, p, opts),
                           runOpenLoop(always_cfg, p, opts));
    }
}

TEST(SchedulerParityThreads, SweepMatchesAlwaysStepAcross134Threads)
{
    NetworkConfig active_cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    NetworkConfig always_cfg = active_cfg;
    always_cfg.alwaysStep = true;
    const std::vector<double> rates = {0.01, 0.03, 0.05};
    SimPointOptions opts = quickOptions(17);

    auto reference = sweepLoadSerial(
        always_cfg, TrafficPattern::UniformRandom, rates, opts);

    auto check = [&](const std::vector<SimPointResult> &got) {
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            SCOPED_TRACE("point " + std::to_string(i));
            expectBitIdentical(got[i], reference[i]);
        }
    };

    check(sweepLoadSerial(active_cfg, TrafficPattern::UniformRandom,
                          rates, opts));
    for (int threads : {1, 3, 4}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        JobPool pool(threads);
        check(sweepLoad(active_cfg, TrafficPattern::UniformRandom, rates,
                        opts, &pool));
    }
}

TEST(SchedulerParityThreads, BlockSizesMatchAcross134Threads)
{
    // Block size x thread count: per-point state is thread-private, so
    // any blocking of the per-point step loop must leave the parallel
    // sweep bit-identical to the serial exhaustive reference.
    NetworkConfig always_cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    always_cfg.alwaysStep = true;
    const std::vector<double> rates = {0.01, 0.03, 0.05};
    SimPointOptions opts = quickOptions(17);

    auto reference = sweepLoadSerial(
        always_cfg, TrafficPattern::UniformRandom, rates, opts);

    for (int block_tiles : {1, 0, 1 << 20}) {
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
        cfg.blockTiles = block_tiles;
        for (int threads : {1, 3, 4}) {
            SCOPED_TRACE("block_tiles " + std::to_string(block_tiles) +
                         ", " + std::to_string(threads) + " threads");
            JobPool pool(threads);
            auto got = sweepLoad(cfg, TrafficPattern::UniformRandom,
                                 rates, opts, &pool);
            ASSERT_EQ(got.size(), reference.size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                SCOPED_TRACE("point " + std::to_string(i));
                expectBitIdentical(got[i], reference[i]);
            }
        }
    }
}

TEST(BlockSizeEscapeHatch, EnvVarOverridesConfigAndClampsToChip)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline); // 8x8
    {
        Network net(cfg); // auto-sized: sane block count, full cover
        EXPECT_GE(net.blockTiles(), 1);
        EXPECT_LE(net.blockTiles(), 64);
        EXPECT_EQ((64 + net.blockTiles() - 1) / net.blockTiles(),
                  net.numBlocks());
    }
    cfg.blockTiles = 16;
    {
        Network net(cfg);
        EXPECT_EQ(net.blockTiles(), 16);
        EXPECT_EQ(net.numBlocks(), 4);
    }
    ::setenv("HNOC_BLOCK_TILES", "8", 1);
    {
        Network net(cfg); // env wins over the config field
        EXPECT_EQ(net.blockTiles(), 8);
        EXPECT_EQ(net.numBlocks(), 8);
    }
    ::setenv("HNOC_BLOCK_TILES", "100000", 1);
    {
        Network net(cfg); // oversize clamps to one whole-chip block
        EXPECT_EQ(net.blockTiles(), 64);
        EXPECT_EQ(net.numBlocks(), 1);
    }
    ::unsetenv("HNOC_BLOCK_TILES");
}

TEST(SchedulerEscapeHatch, EnvVarAndConfigForceExhaustiveLoop)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    {
        Network net(cfg);
        EXPECT_FALSE(net.alwaysStep());
    }
    cfg.alwaysStep = true;
    {
        Network net(cfg);
        EXPECT_TRUE(net.alwaysStep());
    }
    cfg.alwaysStep = false;
    ::setenv("HNOC_ALWAYS_STEP", "1", 1);
    {
        Network net(cfg);
        EXPECT_TRUE(net.alwaysStep());
    }
    ::setenv("HNOC_ALWAYS_STEP", "0", 1);
    {
        Network net(cfg);
        EXPECT_FALSE(net.alwaysStep());
    }
    ::unsetenv("HNOC_ALWAYS_STEP");
}

} // namespace
} // namespace hnoc
