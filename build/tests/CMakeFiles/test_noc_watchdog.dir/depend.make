# Empty dependencies file for test_noc_watchdog.
# This may be replaced when dependencies are built.
