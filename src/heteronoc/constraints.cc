#include "heteronoc/constraints.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "noc/topology.hh"
#include "power/area_model.hh"
#include "power/frequency_model.hh"
#include "power/router_power.hh"

namespace hnoc
{

ResourceAccounting
accountResources(const NetworkConfig &config)
{
    auto topo = Topology::create(config);
    int ports = topo->portsPerRouter();

    ResourceAccounting acc;
    for (RouterId r = 0; r < topo->numRouters(); ++r) {
        RouterPhysParams params = config.physParamsOf(r, ports);
        acc.totalVcs += params.vcsPerPort;
        acc.bufferSlots += params.bufferSlots();
        acc.bufferBits += params.bufferBits();
        acc.totalRouterAreaMm2 += AreaModel::areaMm2(params);
        auto model = RouterPowerModel::calibrated(
            params, FrequencyModel::frequencyGHz(params));
        acc.routerPowerAt50W += model.powerAtActivity(0.5).total();

        if (params.vcsPerPort < router_types::BASELINE.vcsPerPort)
            ++acc.smallRouters;
        else if (params.vcsPerPort > router_types::BASELINE.vcsPerPort)
            ++acc.bigRouters;
        else
            ++acc.baselineRouters;
    }

    for (auto [a, b] : topo->bisectionLinks())
        acc.bisectionBits += config.channelBits(a, b);
    return acc;
}

ConstraintReport
checkConstraints(const NetworkConfig &hetero, const NetworkConfig &baseline)
{
    ResourceAccounting h = accountResources(hetero);
    ResourceAccounting b = accountResources(baseline);

    ConstraintReport rep;
    rep.vcConserved = h.totalVcs == b.totalVcs;
    // "Without changing the original bisection width" (§2): the
    // heterogeneous network may not use more bisection wiring than the
    // baseline. Only the Center layouts hit the bound with equality;
    // Diagonal/Row layouts place fewer wide links on the cut.
    rep.bisectionConserved = h.bisectionBits <= b.bisectionBits;
    rep.powerBudgetOk = h.routerPowerAt50W <= b.routerPowerAt50W + 1e-9;
    rep.areaBudgetOk = h.totalRouterAreaMm2 <= b.totalRouterAreaMm2 + 1e-9;
    return rep;
}

int
minSmallRouters(int total_routers)
{
    // 0.67 N^2 >= 0.3 ns + 1.19 (N^2 - ns)  =>  ns >= N^2 * 0.52 / 0.89
    const double p_base = 0.67;
    const double p_small = 0.30;
    const double p_big = 1.19;
    double ns = total_routers * (p_big - p_base) / (p_big - p_small);
    return static_cast<int>(std::ceil(ns));
}

int
narrowLinkWidth(int homo_width, int homo_links, int narrow_links,
                int wide_links)
{
    // Whomo * n = Whetero * Nnarrow + 2 * Whetero * Nwide
    int denom = narrow_links + 2 * wide_links;
    if (denom <= 0)
        fatal("narrowLinkWidth: no links crossing the bisection");
    return homo_width * homo_links / denom;
}

std::string
formatAccounting(const ResourceAccounting &acc, const std::string &title)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n"
        "  routers: %d small / %d big / %d baseline\n"
        "  total VCs/PC: %lld, buffer slots: %lld, buffer bits: %lld\n"
        "  bisection width (one direction): %lld bits\n"
        "  router area total: %.2f mm^2\n"
        "  router power @50%% activity: %.2f W\n",
        title.c_str(), acc.smallRouters, acc.bigRouters,
        acc.baselineRouters, acc.totalVcs, acc.bufferSlots, acc.bufferBits,
        acc.bisectionBits, acc.totalRouterAreaMm2, acc.routerPowerAt50W);
    return buf;
}

} // namespace hnoc
