/**
 * @file
 * Cross-feature integration: combinations of routing modes, link-width
 * modes, SA policies and the CMP stack that no single-module test
 * exercises together.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/config_io.hh"
#include "sys/cmp_system.hh"
#include "sys/workloads.hh"

namespace hnoc
{
namespace
{

TEST(CrossFeatures, CmpOnO1TurnNetwork)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    cfg.routing = RoutingMode::O1Turn;
    CmpSystem sys(cfg, CmpConfig{});
    sys.assignWorkloadAll(workloadByName("sclst"));
    sys.warmCaches(15000);
    sys.run(1500);
    sys.resetStats();
    sys.run(5000);
    EXPECT_GT(sys.avgIpc(), 0.05);
    for (NodeId n = 0; n < 64; ++n)
        sys.idleCore(n);
    sys.run(8000);
    EXPECT_EQ(sys.network().packetsInFlight(), 0u);
}

TEST(CrossFeatures, CmpOnCentralBandNetwork)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.linkWidthMode = LinkWidthMode::CentralBand;
    cfg.bandWideLinks = 4;
    CmpSystem sys(cfg, CmpConfig{});
    sys.assignWorkloadAll(workloadByName("fsim"));
    sys.warmCaches(15000);
    sys.run(6000);
    EXPECT_GT(sys.packetsSent(), 500u);
}

TEST(CrossFeatures, OldestFirstSaWithTableRouting)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.routing = RoutingMode::TableXY;
    cfg.tableRoutedNodes = {0, 63};
    cfg.saPolicy = SaPolicy::OldestFirst;
    Network net(cfg);
    std::uint64_t injected = 0;
    for (int round = 0; round < 15; ++round) {
        for (NodeId n = 0; n < 64; n += 3) {
            NodeId dst = (n + 13) % 64;
            if (dst == n)
                continue;
            net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            ++injected;
        }
        net.run(80);
    }
    Cycle guard = 50000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsDelivered(), injected);
}

TEST(CrossFeatures, SerializedConfigDrivesCmp)
{
    // Full loop: build a config, serialize, reload, run a system.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::CenterBL);
    cfg.saPolicy = SaPolicy::OldestFirst;
    NetworkConfig loaded = configFromString(configToString(cfg));
    CmpConfig cmp;
    cmp.mcPlacement = McPlacement::Diamond;
    CmpSystem sys(loaded, cmp);
    sys.assignWorkloadAll(workloadByName("ddup"));
    sys.warmCaches(10000);
    sys.run(4000);
    EXPECT_GT(sys.packetsSent(), 200u);
    EXPECT_GT(sys.networkPower().total(), 0.0);
}

TEST(CrossFeatures, TorusCmpWithDiagonalMcs)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.topology = TopologyType::Torus;
    CmpConfig cmp;
    cmp.mcPlacement = McPlacement::Diagonal;
    CmpSystem sys(cfg, cmp);
    sys.assignWorkloadAll(workloadByName("SAP"));
    sys.warmCaches(15000);
    sys.run(5000);
    EXPECT_GT(sys.roundTripCoreCycles().count(), 50u);
}

} // namespace
} // namespace hnoc
