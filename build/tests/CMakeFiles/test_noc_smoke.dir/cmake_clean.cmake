file(REMOVE_RECURSE
  "CMakeFiles/test_noc_smoke.dir/noc/test_smoke.cc.o"
  "CMakeFiles/test_noc_smoke.dir/noc/test_smoke.cc.o.d"
  "test_noc_smoke"
  "test_noc_smoke.pdb"
  "test_noc_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
