file(REMOVE_RECURSE
  "CMakeFiles/test_sys_protocol.dir/sys/test_protocol_accounting.cc.o"
  "CMakeFiles/test_sys_protocol.dir/sys/test_protocol_accounting.cc.o.d"
  "test_sys_protocol"
  "test_sys_protocol.pdb"
  "test_sys_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
