/**
 * @file
 * Layout and constraint tests: the six HeteroNoC layouts satisfy the
 * paper's §2 invariants and the Table 1 accounting.
 */

#include <gtest/gtest.h>

#include "heteronoc/constraints.hh"
#include "heteronoc/layout.hh"

namespace hnoc
{
namespace
{

TEST(Layout, MaskCountsAre2N)
{
    for (LayoutKind kind : heteroLayouts()) {
        auto mask = bigRouterMask(kind, 8);
        int count = 0;
        for (bool b : mask)
            count += b ? 1 : 0;
        EXPECT_EQ(count, 16) << layoutName(kind);
    }
}

TEST(Layout, BaselineMaskEmpty)
{
    auto mask = bigRouterMask(LayoutKind::Baseline, 8);
    for (bool b : mask)
        EXPECT_FALSE(b);
}

TEST(Layout, DiagonalMaskOnDiagonals)
{
    auto mask = bigRouterMask(LayoutKind::DiagonalBL, 8);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            bool expect = (x == y) || (x + y == 7);
            EXPECT_EQ(mask[static_cast<std::size_t>(y * 8 + x)], expect)
                << "(" << x << "," << y << ")";
        }
    }
}

TEST(Layout, BlConfigUses128bFlits)
{
    for (LayoutKind kind : blLayouts()) {
        NetworkConfig cfg = makeLayoutConfig(kind);
        EXPECT_EQ(cfg.flitWidthBits, 128) << layoutName(kind);
        EXPECT_EQ(cfg.dataPacketFlits(), 8) << layoutName(kind);
        EXPECT_EQ(cfg.linkWidthMode, LinkWidthMode::EndpointMax);
    }
}

TEST(Layout, BConfigKeeps192bFlits)
{
    for (LayoutKind kind : {LayoutKind::CenterB, LayoutKind::Row25B,
                            LayoutKind::DiagonalB}) {
        NetworkConfig cfg = makeLayoutConfig(kind);
        EXPECT_EQ(cfg.flitWidthBits, 192) << layoutName(kind);
        EXPECT_EQ(cfg.dataPacketFlits(), 6) << layoutName(kind);
        EXPECT_EQ(cfg.linkWidthMode, LinkWidthMode::Uniform);
    }
}

TEST(Constraints, Table1BufferBits)
{
    // 64 * 3 * 5 * 5 * 192 = 921,600 bits (baseline);
    // (48*2 + 16*6) * 5 * 5 * 128 = 614,400 bits (+BL, -33 %).
    auto base = accountResources(makeLayoutConfig(LayoutKind::Baseline));
    EXPECT_EQ(base.bufferBits, 921600);
    EXPECT_EQ(base.bufferSlots, 4800);

    auto bl = accountResources(makeLayoutConfig(LayoutKind::DiagonalBL));
    EXPECT_EQ(bl.bufferBits, 614400);
    EXPECT_EQ(bl.bufferSlots, 4800);
    EXPECT_EQ(bl.smallRouters, 48);
    EXPECT_EQ(bl.bigRouters, 16);
    EXPECT_NEAR(1.0 - static_cast<double>(bl.bufferBits) /
                          static_cast<double>(base.bufferBits),
                0.3333, 0.001);
}

TEST(Constraints, VcCountConservedAcrossAllLayouts)
{
    auto base = accountResources(makeLayoutConfig(LayoutKind::Baseline));
    for (LayoutKind kind : heteroLayouts()) {
        auto acc = accountResources(makeLayoutConfig(kind));
        EXPECT_EQ(acc.totalVcs, base.totalVcs) << layoutName(kind);
    }
}

TEST(Constraints, AllLayoutsSatisfySection2)
{
    NetworkConfig base = makeLayoutConfig(LayoutKind::Baseline);
    for (LayoutKind kind : heteroLayouts()) {
        auto rep = checkConstraints(makeLayoutConfig(kind), base);
        EXPECT_TRUE(rep.vcConserved) << layoutName(kind);
        EXPECT_TRUE(rep.bisectionConserved) << layoutName(kind);
        EXPECT_TRUE(rep.areaBudgetOk) << layoutName(kind);
    }
    // +BL layouts must also clear the power budget.
    for (LayoutKind kind : blLayouts()) {
        auto rep = checkConstraints(makeLayoutConfig(kind), base);
        EXPECT_TRUE(rep.powerBudgetOk) << layoutName(kind);
    }
}

TEST(Constraints, CenterBlHitsBisectionBoundExactly)
{
    auto base = accountResources(makeLayoutConfig(LayoutKind::Baseline));
    auto center = accountResources(makeLayoutConfig(LayoutKind::CenterBL));
    // 4 wide (256 b) + 4 narrow (128 b) = 8 * 192 b (footnote 2).
    EXPECT_EQ(base.bisectionBits, 8 * 192);
    EXPECT_EQ(center.bisectionBits, 4 * 256 + 4 * 128);
    EXPECT_EQ(center.bisectionBits, base.bisectionBits);
}

TEST(Constraints, MinSmallRoutersMatchesPaper)
{
    // §2: ns >= 37.4 for an 8x8 network -> at least 38 small routers.
    EXPECT_EQ(minSmallRouters(64), 38);
}

TEST(Constraints, LinkWidthEquationMatchesPaper)
{
    // 192 * 8 = W * 4 + 2W * 4  =>  W = 128 (footnote 2).
    EXPECT_EQ(narrowLinkWidth(192, 8, 4, 4), 128);
}

TEST(Constraints, HeteroRouterAreaBelowBaseline)
{
    // §3.5: 18.08 mm^2 vs 18.56 mm^2 (excluding the fixed logic our
    // area model adds uniformly to both).
    auto base = accountResources(makeLayoutConfig(LayoutKind::Baseline));
    auto bl = accountResources(makeLayoutConfig(LayoutKind::DiagonalBL));
    EXPECT_LT(bl.totalRouterAreaMm2, base.totalRouterAreaMm2);
}

} // namespace
} // namespace hnoc
