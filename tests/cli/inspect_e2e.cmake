# End-to-end pipeline test driven by CTest:
#   hnoc_cli (two seeds, JSON run reports + flit log + audit/progress)
#     -> hnoc_inspect summary / top / heatmap / flitlog / diff
# Invoked as:
#   cmake -DHNOC_CLI=... -DHNOC_INSPECT=... -DWORK_DIR=... -P inspect_e2e.cmake
# Fails (FATAL_ERROR) on any non-zero exit or missing expected output.

foreach(var HNOC_CLI HNOC_INSPECT WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "inspect_e2e: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

# Keep the runs short; the inspector doesn't care about statistical
# quality, only that the documents are well-formed and comparable.
set(ENV{HNOC_SIM_SCALE} "0.1")

function(run_step name)
    execute_process(
        COMMAND ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "inspect_e2e: ${name} failed (exit ${rc})\n"
            "command: ${ARGN}\nstdout:\n${out}\nstderr:\n${err}")
    endif()
    set(STEP_OUT "${out}" PARENT_SCOPE)
endfunction()

# Two runs differing only in seed: same labels, slightly different
# numbers — exactly what `hnoc_inspect diff` is for. The first run also
# exercises the audit and progress instrumentation and the flit log.
run_step("cli seed 1" "${HNOC_CLI}"
    --layout Baseline --pattern uniform --rate 0.02 --seed 1
    --audit=500 --progress=5000
    --json "${WORK_DIR}/run_a.json"
    --flitlog "${WORK_DIR}/run_a.jsonl")
run_step("cli seed 2" "${HNOC_CLI}"
    --layout Baseline --pattern uniform --rate 0.02 --seed 2
    --json "${WORK_DIR}/run_b.json")

foreach(f run_a.json run_b.json run_a.jsonl)
    if(NOT EXISTS "${WORK_DIR}/${f}")
        message(FATAL_ERROR "inspect_e2e: expected ${f} was not written")
    endif()
endforeach()

run_step("inspect summary" "${HNOC_INSPECT}" summary "${WORK_DIR}/run_a.json")
if(NOT STEP_OUT MATCHES "hnoc-run-report-v1")
    message(FATAL_ERROR "inspect_e2e: summary lacks schema line:\n${STEP_OUT}")
endif()

run_step("inspect top" "${HNOC_INSPECT}" top "${WORK_DIR}/run_a.json" -k 5)
if(NOT STEP_OUT MATCHES "router")
    message(FATAL_ERROR "inspect_e2e: top lists no routers:\n${STEP_OUT}")
endif()

run_step("inspect heatmap"
    "${HNOC_INSPECT}" heatmap "${WORK_DIR}/run_a.json" -m buffer)
run_step("inspect flitlog" "${HNOC_INSPECT}" flitlog "${WORK_DIR}/run_a.jsonl")

# Seed-different runs must diff without error (exit 0 by default even
# when deltas exceed the threshold; --fail-over is the gating mode).
run_step("inspect diff" "${HNOC_INSPECT}" diff
    "${WORK_DIR}/run_a.json" "${WORK_DIR}/run_b.json" -t 0.0)
if(NOT STEP_OUT MATCHES "accepted")
    message(FATAL_ERROR "inspect_e2e: diff shows no metrics:\n${STEP_OUT}")
endif()

# Induce a watchdog trip: with a 2-cycle window the first deliveries
# (~50 cycles out) are "late", so the watchdog fires during warmup and
# dumps a postmortem — which hnoc_inspect must then load and render.
run_step("cli induced trip" "${HNOC_CLI}"
    --layout Baseline --pattern uniform --rate 0.02 --seed 1
    --watchdog=2 --postmortem "${WORK_DIR}/trip_postmortem.json")
if(NOT EXISTS "${WORK_DIR}/trip_postmortem.json")
    message(FATAL_ERROR "inspect_e2e: watchdog trip wrote no postmortem")
endif()

run_step("inspect postmortem"
    "${HNOC_INSPECT}" postmortem "${WORK_DIR}/trip_postmortem.json")
if(NOT STEP_OUT MATCHES "hnoc-postmortem-v1")
    message(FATAL_ERROR
        "inspect_e2e: postmortem output lacks schema:\n${STEP_OUT}")
endif()

# Blame pipeline: one run with --blame that also trips the watchdog,
# giving both a latency_blame report section and a flight-recorder
# postmortem — enough to exercise `hnoc_inspect blame` including the
# critical-path replay. In HNOC_TELEMETRY=OFF builds the report has no
# latency_blame section; the inspector must then fail cleanly (exit 1
# citing the missing section), which this step accepts.
run_step("cli blame" "${HNOC_CLI}"
    --layout Diagonal+BL --pattern uniform --rate 0.02 --seed 1
    --blame --watchdog=2
    --json "${WORK_DIR}/blame_run.json"
    --postmortem "${WORK_DIR}/blame_postmortem.json")
execute_process(
    COMMAND "${HNOC_INSPECT}" blame "${WORK_DIR}/blame_run.json"
        --events "${WORK_DIR}/blame_postmortem.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(rc EQUAL 0)
    if(NOT out MATCHES "latency blame")
        message(FATAL_ERROR "inspect_e2e: blame lacks summary:\n${out}")
    endif()
    if(NOT out MATCHES "percentile ladder")
        message(FATAL_ERROR "inspect_e2e: blame lacks ladder:\n${out}")
    endif()
    if(NOT out MATCHES "critical-path replay")
        message(FATAL_ERROR "inspect_e2e: blame lacks replay:\n${out}")
    endif()
elseif(NOT err MATCHES "no latency_blame")
    message(FATAL_ERROR
        "inspect_e2e: blame failed unexpectedly (exit ${rc}):\n${err}")
endif()

# A malformed document must be a clean, nonzero-exit error.
file(WRITE "${WORK_DIR}/broken.json" "{\"schema\": ")
execute_process(
    COMMAND "${HNOC_INSPECT}" summary "${WORK_DIR}/broken.json"
    RESULT_VARIABLE rc
    OUTPUT_QUIET
    ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "inspect_e2e: malformed JSON must not exit 0")
endif()
if(NOT err MATCHES "byte")
    message(FATAL_ERROR
        "inspect_e2e: parse error should cite a byte offset:\n${err}")
endif()

message(STATUS "inspect_e2e: all steps passed")
