file(REMOVE_RECURSE
  "libhnoc_noc.a"
)
