#include "noc/traffic.hh"

#include "common/geometry.hh"
#include "common/logging.hh"

namespace hnoc
{

namespace
{

// Bounded-Pareto on/off burst parameters (self-similar traffic).
constexpr double ON_ALPHA = 1.9;
constexpr double ON_MIN = 10.0;
constexpr double ON_MAX = 4000.0;
constexpr double OFF_ALPHA = 1.25;
constexpr double OFF_MIN = 20.0;
constexpr double OFF_MAX = 8000.0;

/** Mean of a bounded Pareto(alpha, lo, hi). */
double
boundedParetoMean(double alpha, double lo, double hi)
{
    double la = std::pow(lo, alpha);
    double ha = std::pow(hi, alpha);
    return la / (1.0 - la / ha) * alpha / (alpha - 1.0) *
           (1.0 / std::pow(lo, alpha - 1.0) -
            1.0 / std::pow(hi, alpha - 1.0));
}

} // namespace

std::string
trafficPatternName(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::UniformRandom:
        return "uniform-random";
      case TrafficPattern::NearestNeighbor:
        return "nearest-neighbor";
      case TrafficPattern::Transpose:
        return "transpose";
      case TrafficPattern::BitComplement:
        return "bit-complement";
      case TrafficPattern::SelfSimilar:
        return "self-similar";
    }
    return "unknown";
}

TrafficGenerator::TrafficGenerator(TrafficPattern pattern, int num_nodes,
                                   int grid_cols, std::uint64_t seed)
    : pattern_(pattern), numNodes_(num_nodes), gridCols_(grid_cols),
      rng_(seed)
{
    if (pattern_ == TrafficPattern::SelfSimilar) {
        burst_.resize(static_cast<std::size_t>(num_nodes));
        double mean_on = boundedParetoMean(ON_ALPHA, ON_MIN, ON_MAX);
        double mean_off = boundedParetoMean(OFF_ALPHA, OFF_MIN, OFF_MAX);
        onRateScale_ = (mean_on + mean_off) / mean_on;
    }
}

NodeId
TrafficGenerator::pickDest(NodeId src)
{
    switch (pattern_) {
      case TrafficPattern::UniformRandom:
      case TrafficPattern::SelfSimilar: {
        auto dst = static_cast<NodeId>(
            rng_.below(static_cast<std::uint64_t>(numNodes_ - 1)));
        if (dst >= src)
            ++dst;
        return dst;
      }
      case TrafficPattern::NearestNeighbor: {
        Coord c = idToCoord(src, gridCols_);
        int rows = numNodes_ / gridCols_;
        NodeId candidates[4];
        int n = 0;
        if (c.y > 0)
            candidates[n++] = coordToId({c.x, c.y - 1}, gridCols_);
        if (c.y < rows - 1)
            candidates[n++] = coordToId({c.x, c.y + 1}, gridCols_);
        if (c.x > 0)
            candidates[n++] = coordToId({c.x - 1, c.y}, gridCols_);
        if (c.x < gridCols_ - 1)
            candidates[n++] = coordToId({c.x + 1, c.y}, gridCols_);
        return candidates[rng_.below(static_cast<std::uint64_t>(n))];
      }
      case TrafficPattern::Transpose: {
        Coord c = idToCoord(src, gridCols_);
        NodeId dst = coordToId({c.y, c.x}, gridCols_);
        return dst == src ? INVALID_NODE : dst;
      }
      case TrafficPattern::BitComplement: {
        NodeId dst = (numNodes_ - 1) - src;
        return dst == src ? INVALID_NODE : dst;
      }
    }
    panic("pickDest: unknown pattern");
}

bool
TrafficGenerator::shouldInject(NodeId src, double rate, Cycle now)
{
    if (pattern_ != TrafficPattern::SelfSimilar)
        return rng_.uniform() < rate;

    BurstState &b = burst_[static_cast<std::size_t>(src)];
    if (now >= b.phaseEnd) {
        b.on = !b.on;
        double dur = b.on ? rng_.pareto(ON_ALPHA, ON_MIN, ON_MAX)
                          : rng_.pareto(OFF_ALPHA, OFF_MIN, OFF_MAX);
        b.phaseEnd = now + static_cast<Cycle>(dur);
    }
    if (!b.on)
        return false;
    // Scale the on-rate so the long-run average matches `rate`.
    return rng_.uniform() < std::min(1.0, rate * onRateScale_);
}

} // namespace hnoc
