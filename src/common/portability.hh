#pragma once

/**
 * @file portability.hh
 * Small shims over platform-specific process introspection so the
 * rest of the tree never includes OS headers directly.
 *
 * Policy: every probe has a portable fallback that compiles on any
 * hosted C++20 implementation and returns a well-defined "unknown"
 * value; callers must treat 0 as "probe unavailable", not as a
 * measurement.
 */

#include <cstdint>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#define HNOC_HAVE_RUSAGE 1
#include <sys/resource.h>
#else
#define HNOC_HAVE_RUSAGE 0
#endif

namespace hnoc
{

/** True when the build has a real getrusage()-backed RSS probe. */
inline constexpr bool kHasRusage = HNOC_HAVE_RUSAGE != 0;

namespace detail
{

/** Portable fallback used when no OS probe exists: 0 = unknown.
 *  Kept as a named function (rather than a literal at the call site)
 *  so the fallback path stays unit-testable on platforms where the
 *  real probe is compiled in. */
inline std::uint64_t
peakRssFallback()
{
    return 0;
}

} // namespace detail

/** Peak resident set size of this process in bytes; 0 if unknown.
 *  ru_maxrss is kilobytes on Linux and BSDs, bytes on macOS — both
 *  are monotone, and the health monitor only prints the value, so the
 *  kilobyte convention is applied uniformly (macOS then under-reports
 *  by 1024x, which still beats reporting nothing). */
inline std::uint64_t
peakRssBytes()
{
#if HNOC_HAVE_RUSAGE
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return detail::peakRssFallback();
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#else
    return detail::peakRssFallback();
#endif
}

} // namespace hnoc
