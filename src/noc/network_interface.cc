#include "noc/network_interface.hh"

#include "common/logging.hh"
#include "noc/network.hh"
#include "telemetry/blame.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{

void
NetworkInterface::stepInject(Cycle now)
{
    if (!inj_)
        return;
    int lanes = inj_->lanes();
    int sent = 0;
    int vcs = static_cast<int>(streams_.size());

    // The VC round-robin pointer used to advance by one every stepped
    // cycle from zero, i.e. it always equalled now % vcs; deriving it
    // from the cycle number keeps the rotation identical when idle
    // cycles are skipped.
    unsigned rr_vc =
        static_cast<unsigned>(now % static_cast<Cycle>(vcs));

    for (int k = 0; k < vcs && sent < lanes; ++k) {
        VcId vc = static_cast<VcId>((rr_vc + static_cast<unsigned>(k)) %
                                    static_cast<unsigned>(vcs));
        Stream &s = streams_[static_cast<std::size_t>(vc)];
        if (!s.pkt) {
            if (sourceQueue_.empty())
                continue;
            s.pkt = sourceQueue_.front();
            sourceQueue_.pop_front();
            s.nextSeq = 0;
            ++activeStreams_;
        }

        // A wide local channel (big-router node) can carry two flits
        // of the packet per cycle, mirroring in-network pairing.
        int per_vc = (lanes > 1 && intraPairing_) ? 2 : 1;
        for (int j = 0; j < per_vc && sent < lanes && s.pkt; ++j) {
            if (credits_[static_cast<std::size_t>(vc)] <= 0)
                break;
            Packet *pkt = s.pkt;
            Flit flit;
            flit.pkt = pkt;
            flit.seq = static_cast<std::uint16_t>(s.nextSeq);
            flit.vc = vc;
            if (pkt->numFlits == 1)
                flit.type = FlitType::HeadTail;
            else if (s.nextSeq == 0)
                flit.type = FlitType::Head;
            else if (s.nextSeq == pkt->numFlits - 1)
                flit.type = FlitType::Tail;
            else
                flit.type = FlitType::Body;

            if (s.nextSeq == 0) {
                pkt->injectedAt = now;
                // Zero-load head path starts with the injection link;
                // the per-hop terms accrue at each SA grant.
                if (kTelemetryEnabled && pkt->blame)
                    pkt->blame->minHeadCycles +=
                        static_cast<std::uint64_t>(inj_->flitDelay());
            }

            --credits_[static_cast<std::size_t>(vc)];
            inj_->sendFlit(flit, now);
            if (linkActivity_)
                linkActivity_->linkBitTraversals +=
                    inj_->widthBits() / inj_->lanes();
            ++sent;
            ++s.nextSeq;
            if (s.nextSeq >= pkt->numFlits) {
                s.pkt = nullptr;
                s.nextSeq = 0;
                --activeStreams_;
            }
        }
    }
    if (!busy())
        slot_.markIdle();
}

Packet *
NetworkInterface::receiveFlit(const Flit &flit, Cycle now)
{
    // Immediately return the credit: the sink always consumes.
    if (ej_)
        ej_->sendCredit(flit.vc, now);
    if (flit.isTail()) {
        flit.pkt->ejectedAt = now;
        return flit.pkt;
    }
    return nullptr;
}

} // namespace hnoc
