file(REMOVE_RECURSE
  "CMakeFiles/test_noc_watchdog.dir/noc/test_watchdog_ni.cc.o"
  "CMakeFiles/test_noc_watchdog.dir/noc/test_watchdog_ni.cc.o.d"
  "test_noc_watchdog"
  "test_noc_watchdog.pdb"
  "test_noc_watchdog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
