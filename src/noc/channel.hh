/**
 * @file
 * Unidirectional flit channel with a reverse credit path.
 *
 * A channel has a fixed width in bits; its lane count (width divided by
 * the network flit width) is the number of flits it can carry per cycle.
 * Wide 256 b channels in HeteroNoC carry two combined 128 b flits per
 * cycle (§3.2). Delivery is a simple constant-delay pipe.
 *
 * Both pipes are fixed-capacity ring buffers sized from the channel's
 * rate and latency: at most max(lanes, 2) entries enter per cycle and
 * every entry is drained within delay + 1 cycles of being sent (the
 * Network scans every non-idle channel every cycle), so
 * max(lanes, 2) * (delay + 2) slots can never overflow. The steady
 * state therefore allocates nothing.
 */

#ifndef HNOC_NOC_CHANNEL_HH
#define HNOC_NOC_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/hot_arena.hh"
#include "common/logging.hh"
#include "common/ring_buffer.hh"
#include "noc/active_set.hh"
#include "noc/flit.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{

/** Constant-latency flit pipe plus reverse credit pipe. */
class Channel
{
  public:
    /**
     * @param width_bits physical wire width
     * @param lanes flits transferable per cycle (width / flit width)
     * @param flit_delay cycles from send to delivery (includes the
     *        sender's switch-traversal stage)
     * @param credit_delay cycles for the reverse credit path
     */
    Channel(int id, int width_bits, int lanes, int flit_delay,
            int credit_delay)
        : id_(id), widthBits_(width_bits), lanes_(lanes),
          flitDelay_(flit_delay), creditDelay_(credit_delay),
          flitPipe_(pipeCapacity(lanes, flit_delay)),
          creditPipe_(pipeCapacity(lanes, credit_delay))
    {}

    int id() const { return id_; }
    int widthBits() const { return widthBits_; }
    int lanes() const { return lanes_; }
    int flitDelay() const { return flitDelay_; }

    /** Send a flit; it is delivered at now + flitDelay. */
    void
    sendFlit(const Flit &flit, Cycle now)
    {
        bool paired = false;
        if (now == lastSendCycle_) {
            ++sendsThisCycle_;
            if (sendsThisCycle_ > lanes_)
                panic("channel %d oversubscribed (%d lanes)", id_, lanes_);
            if (sendsThisCycle_ == 2) {
                ++pairedCycles_;
                paired = true;
            }
        } else {
            lastSendCycle_ = now;
            sendsThisCycle_ = 1;
            ++busyCycles_;
        }
        ++flitsSent_;
        if (kTelemetryEnabled && telemetry_) {
            telemetry_->add(Ctr::LinkFlits, telRouter_, telPort_);
            if (paired)
                telemetry_->add(Ctr::LinkPaired, telRouter_, telPort_);
        }
        flitPipe_.push_back(
            {now + static_cast<Cycle>(flitDelay_), flit});
        slot_.markBusy();
    }

    /** Send a credit for @p vc back to the channel's driver. */
    void
    sendCredit(VcId vc, Cycle now)
    {
        creditPipe_.push_back(
            {now + static_cast<Cycle>(creditDelay_), vc});
        slot_.markBusy();
    }

    /**
     * Deliver flits arriving at @p now straight to @p sink (called as
     * sink(const Flit &)). The hot credit/flit return path hands each
     * entry to the receiving router or NI without staging it in a
     * scratch vector. @return count delivered.
     */
    template <typename Sink>
    int
    deliverFlitsTo(Cycle now, Sink &&sink)
    {
        int n = 0;
        while (!flitPipe_.empty() && flitPipe_.front().at <= now) {
            sink(flitPipe_.front().flit);
            flitPipe_.pop_front();
            ++n;
        }
        if (idle())
            slot_.markIdle();
        return n;
    }

    /** Collect flits arriving at @p now. @return count delivered. */
    int
    deliverFlits(Cycle now, std::vector<Flit> &out)
    {
        return deliverFlitsTo(now,
                              [&](const Flit &f) { out.push_back(f); });
    }

    /** Deliver credits arriving at @p now straight to @p sink (called
     *  as sink(VcId)). @return count delivered. */
    template <typename Sink>
    int
    deliverCreditsTo(Cycle now, Sink &&sink)
    {
        int n = 0;
        while (!creditPipe_.empty() && creditPipe_.front().at <= now) {
            sink(creditPipe_.front().vc);
            creditPipe_.pop_front();
            ++n;
        }
        if (idle())
            slot_.markIdle();
        return n;
    }

    /** Collect credits arriving at @p now. @return count delivered. */
    int
    deliverCredits(Cycle now, std::vector<VcId> &out)
    {
        return deliverCreditsTo(now,
                                [&](VcId vc) { out.push_back(vc); });
    }

    bool
    idle() const
    {
        return flitPipe_.empty() && creditPipe_.empty();
    }

    /** Bytes moveToArena() will carve (each pipe 64-B aligned). */
    std::size_t
    arenaBytes() const
    {
        auto r64 = [](std::size_t b) { return (b + 63) / 64 * 64; };
        return r64(flitPipe_.capacity() * sizeof(TimedFlit)) +
               r64(creditPipe_.capacity() * sizeof(TimedCredit));
    }

    /** Relocate both pipes' storage into @p arena (§6g), preserving
     *  in-flight contents. Exhaustion keeps the self-owned storage —
     *  placement is a performance property only. */
    void
    moveToArena(HotArena &arena)
    {
        auto *nf = reinterpret_cast<TimedFlit *>(
            arena.alloc(flitPipe_.capacity() * sizeof(TimedFlit)));
        if (nf != nullptr)
            flitPipe_.moveStorageTo(nf);
        auto *nc = reinterpret_cast<TimedCredit *>(
            arena.alloc(creditPipe_.capacity() * sizeof(TimedCredit)));
        if (nc != nullptr)
            creditPipe_.moveStorageTo(nc);
    }

    /** Pull this channel's delivery state toward the cache one
     *  active-list entry ahead of its deliver call (§6g): the object
     *  header (pipe bookkeeping) and both pipes' front slots. */
    void
    prefetchDelivery() const
    {
        bitops::prefetch(this);
        flitPipe_.prefetchFront();
        creditPipe_.prefetchFront();
    }

    /** Register a dense active list woken (with @p id) on this
     *  channel's idle→busy transitions; a channel typically joins two
     *  lists (flit-delivery role and credit-delivery role). Call
     *  before bindActivitySlot. */
    void
    addActivityWake(ActiveList *list, std::uint32_t id)
    {
        slot_.addWakeHook(list, id);
    }

    /** Bind this channel's cell in the Network's active-set bitmap. */
    void
    bindActivitySlot(std::uint8_t *flag, std::size_t *count)
    {
        slot_.bind(flag, count);
        if (!idle())
            slot_.markBusy();
    }

    /** @name In-flight introspection (conservation audit) */
    ///@{
    /** Flits for @p vc currently in the forward pipe. */
    int
    pipeFlits(VcId vc) const
    {
        int n = 0;
        for (std::size_t i = 0; i < flitPipe_.size(); ++i)
            if (flitPipe_[i].flit.vc == vc)
                ++n;
        return n;
    }

    /** Credits for @p vc currently in the reverse pipe. */
    int
    pipeCredits(VcId vc) const
    {
        int n = 0;
        for (std::size_t i = 0; i < creditPipe_.size(); ++i)
            if (creditPipe_[i].vc == vc)
                ++n;
        return n;
    }
    ///@}

    /** @name Measurement counters (reset via resetStats). */
    ///@{
    std::uint64_t flitsSent() const { return flitsSent_; }
    std::uint64_t busyCycles() const { return busyCycles_; }
    std::uint64_t pairedCycles() const { return pairedCycles_; }

    void
    resetStats()
    {
        flitsSent_ = 0;
        busyCycles_ = 0;
        pairedCycles_ = 0;
    }

    /** Flit-lane utilization over @p cycles elapsed cycles. */
    double
    laneUtilization(std::uint64_t cycles) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(flitsSent_) /
               (static_cast<double>(lanes_) * static_cast<double>(cycles));
    }
    ///@}

    /** Steady-state memory footprint: both pipes plus the object.
     *  Pipe capacities are fixed at construction, so this is constant
     *  over a channel's lifetime. */
    std::uint64_t
    footprintBytes() const
    {
        return static_cast<std::uint64_t>(sizeof(*this)) +
               static_cast<std::uint64_t>(flitPipe_.capacity()) *
                   sizeof(TimedFlit) +
               static_cast<std::uint64_t>(creditPipe_.capacity()) *
                   sizeof(TimedCredit);
    }

    /**
     * Attach a metrics registry; link-flit counters are attributed to
     * the driving router's (router, out-port) pair. Pass nullptr to
     * detach.
     */
    void
    setTelemetry(MetricRegistry *reg, int driver_router, int driver_port)
    {
        telemetry_ = reg;
        telRouter_ = driver_router;
        telPort_ = driver_port;
    }

  private:
    struct TimedFlit
    {
        Cycle at = 0;
        Flit flit;
    };

    struct TimedCredit
    {
        Cycle at = 0;
        VcId vc = 0;
    };

    /** Occupancy bound: <= max(lanes, 2) sends per cycle, each drained
     *  within delay + 1 cycles (+1 slack for the same-cycle window). */
    static std::size_t
    pipeCapacity(int lanes, int delay)
    {
        int rate = lanes > 2 ? lanes : 2;
        return static_cast<std::size_t>(rate) *
               static_cast<std::size_t>(delay + 2);
    }

    // Hot-first member order (§6g): everything the per-cycle send /
    // deliver path touches sits at the front of the object; the
    // telemetry attachment trio trails as the cold tail.
    int id_;
    int widthBits_;
    int lanes_;
    int flitDelay_;
    int creditDelay_;

    RingBuffer<TimedFlit> flitPipe_;
    RingBuffer<TimedCredit> creditPipe_;
    ActivitySlot slot_;

    Cycle lastSendCycle_ = CYCLE_NEVER;
    int sendsThisCycle_ = 0;
    std::uint64_t flitsSent_ = 0;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t pairedCycles_ = 0;

    MetricRegistry *telemetry_ = nullptr;
    int telRouter_ = -1;
    int telPort_ = -1;
};

} // namespace hnoc

#endif // HNOC_NOC_CHANNEL_HH
