# Empty compiler generated dependencies file for fig12_ipc.
# This may be replaced when dependencies are built.
