file(REMOVE_RECURSE
  "CMakeFiles/test_integration_golden.dir/integration/test_golden.cc.o"
  "CMakeFiles/test_integration_golden.dir/integration/test_golden.cc.o.d"
  "test_integration_golden"
  "test_integration_golden.pdb"
  "test_integration_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
