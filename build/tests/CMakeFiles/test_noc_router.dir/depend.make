# Empty dependencies file for test_noc_router.
# This may be replaced when dependencies are built.
