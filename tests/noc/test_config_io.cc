/**
 * @file
 * Config serialization round-trip tests.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "heteronoc/layout.hh"
#include "noc/config_io.hh"
#include "noc/network.hh"
#include "noc/sim_control.hh"

namespace hnoc
{
namespace
{

void
expectConfigsEqual(const NetworkConfig &a, const NetworkConfig &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.topology, b.topology);
    EXPECT_EQ(a.radixX, b.radixX);
    EXPECT_EQ(a.radixY, b.radixY);
    EXPECT_EQ(a.concentration, b.concentration);
    EXPECT_EQ(a.flitWidthBits, b.flitWidthBits);
    EXPECT_EQ(a.dataPacketBits, b.dataPacketBits);
    EXPECT_EQ(a.bufferDepth, b.bufferDepth);
    EXPECT_EQ(a.defaultVcs, b.defaultVcs);
    EXPECT_EQ(a.defaultWidthBits, b.defaultWidthBits);
    EXPECT_EQ(a.routerVcs, b.routerVcs);
    EXPECT_EQ(a.routerWidthBits, b.routerWidthBits);
    EXPECT_EQ(a.linkWidthMode, b.linkWidthMode);
    EXPECT_EQ(a.uniformLinkBits, b.uniformLinkBits);
    EXPECT_EQ(a.bandWideLinks, b.bandWideLinks);
    EXPECT_EQ(a.routing, b.routing);
    EXPECT_EQ(a.tableRoutedNodes, b.tableRoutedNodes);
    EXPECT_EQ(a.escapeThreshold, b.escapeThreshold);
    EXPECT_EQ(a.intraPacketPairing, b.intraPacketPairing);
    EXPECT_EQ(a.saPolicy, b.saPolicy);
    EXPECT_EQ(a.alwaysStep, b.alwaysStep);
    EXPECT_EQ(a.blockTiles, b.blockTiles);
    EXPECT_EQ(a.pipelineStages, b.pipelineStages);
    EXPECT_EQ(a.linkLatency, b.linkLatency);
    EXPECT_DOUBLE_EQ(a.clockGHz, b.clockGHz);
}

TEST(ConfigIo, RoundTripBaseline)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    expectConfigsEqual(cfg, configFromString(configToString(cfg)));
}

TEST(ConfigIo, RoundTripHeterogeneous)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.routing = RoutingMode::TableXY;
    cfg.tableRoutedNodes = {0, 7, 56, 63};
    cfg.saPolicy = SaPolicy::OldestFirst;
    cfg.intraPacketPairing = false;
    cfg.alwaysStep = true;
    cfg.blockTiles = 16;
    expectConfigsEqual(cfg, configFromString(configToString(cfg)));
}

TEST(ConfigIo, RoundTripExoticModes)
{
    NetworkConfig cfg;
    cfg.name = "band";
    cfg.topology = TopologyType::Torus;
    cfg.flitWidthBits = 153;
    cfg.linkWidthMode = LinkWidthMode::CentralBand;
    cfg.bandWideLinks = 2;
    cfg.routing = RoutingMode::O1Turn;
    cfg.clockGHz = 1.5;
    expectConfigsEqual(cfg, configFromString(configToString(cfg)));
}

TEST(ConfigIo, FileRoundTrip)
{
    std::string path = "/tmp/hnoc_config_test.cfg";
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::CenterBL);
    ASSERT_TRUE(saveConfig(cfg, path));
    expectConfigsEqual(cfg, loadConfig(path));
    std::remove(path.c_str());
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored)
{
    NetworkConfig cfg =
        configFromString("# a comment\n\nname=test\nradix_x=4\n");
    EXPECT_EQ(cfg.name, "test");
    EXPECT_EQ(cfg.radixX, 4);
}

TEST(ConfigIo, UnknownKeyFatal)
{
    EXPECT_DEATH((void)configFromString("no_such_key=1\n"),
                 "unknown key");
}

void
expectSimOptionsEqual(const SimPointOptions &a, const SimPointOptions &b)
{
    EXPECT_DOUBLE_EQ(a.injectionRate, b.injectionRate);
    EXPECT_EQ(a.warmupCycles, b.warmupCycles);
    EXPECT_EQ(a.measureCycles, b.measureCycles);
    EXPECT_EQ(a.drainCycles, b.drainCycles);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_DOUBLE_EQ(a.controlFraction, b.controlFraction);
    EXPECT_EQ(a.collectMetrics, b.collectMetrics);
    EXPECT_EQ(a.telemetryEpoch, b.telemetryEpoch);
    EXPECT_EQ(a.control.mode, b.control.mode);
    EXPECT_EQ(a.control.minWarmupCycles, b.control.minWarmupCycles);
    EXPECT_EQ(a.control.warmupEpochs, b.control.warmupEpochs);
    EXPECT_DOUBLE_EQ(a.control.warmupTolerance,
                     b.control.warmupTolerance);
    EXPECT_DOUBLE_EQ(a.control.ciTarget, b.control.ciTarget);
    EXPECT_DOUBLE_EQ(a.control.ciConfidence, b.control.ciConfidence);
    EXPECT_EQ(a.control.minBatches, b.control.minBatches);
    EXPECT_EQ(a.control.epochsPerBatch, b.control.epochsPerBatch);
    EXPECT_EQ(a.control.minMeasureCycles, b.control.minMeasureCycles);
    EXPECT_EQ(a.control.satEpochs, b.control.satEpochs);
    EXPECT_DOUBLE_EQ(a.control.satDepthPerNode,
                     b.control.satDepthPerNode);
    EXPECT_DOUBLE_EQ(a.control.satGrowthPerNode,
                     b.control.satGrowthPerNode);
}

TEST(ConfigIo, SimOptionsRoundTripDefaults)
{
    SimPointOptions opts;
    expectSimOptionsEqual(
        opts, simOptionsFromString(simOptionsToString(opts)));
}

TEST(ConfigIo, SimOptionsRoundTripAdaptive)
{
    SimPointOptions opts;
    opts.injectionRate = 0.0365;
    opts.warmupCycles = 1234;
    opts.measureCycles = 56789;
    opts.drainCycles = 99999;
    opts.seed = 20260706;
    opts.controlFraction = 0.125;
    opts.collectMetrics = true;
    opts.telemetryEpoch = 500;
    opts.control.mode = SimControlMode::Adaptive;
    opts.control.minWarmupCycles = 3000;
    opts.control.warmupEpochs = 5;
    opts.control.warmupTolerance = 0.0725;
    opts.control.ciTarget = 0.015;
    opts.control.ciConfidence = 0.99;
    opts.control.minBatches = 12;
    opts.control.epochsPerBatch = 2;
    opts.control.minMeasureCycles = 8000;
    opts.control.satEpochs = 6;
    opts.control.satDepthPerNode = 4.5;
    opts.control.satGrowthPerNode = 0.75;
    expectSimOptionsEqual(
        opts, simOptionsFromString(simOptionsToString(opts)));
}

TEST(ConfigIo, SimOptionsUnknownKeyFatal)
{
    EXPECT_DEATH((void)simOptionsFromString("no_such_key=1\n"),
                 "unknown key");
}

TEST(ConfigIo, LoadedConfigSimulates)
{
    NetworkConfig cfg = configFromString(
        configToString(makeLayoutConfig(LayoutKind::DiagonalBL)));
    Network net(cfg);
    net.enqueuePacket(0, 63, cfg.dataPacketFlits());
    net.run(300);
    EXPECT_EQ(net.packetsDelivered(), 1u);
}

} // namespace
} // namespace hnoc
