/**
 * @file
 * Figure 9: the nearest-neighbor anomaly. With NN traffic all
 * communication is between adjacent routers, so the small routers'
 * reduced buffers/links hurt: HeteroNoC saturates earlier than the
 * baseline, average latency increases and the power win shrinks;
 * Center+BL beats Diagonal+BL under NN (big routers in the center aid
 * central neighbor pairs).
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main(int argc, char **argv)
{
    bool adaptive = parseAdaptiveFlag(argc, argv);
    printHeader("Figure 9",
                "nearest-neighbor traffic: the HeteroNoC anomaly");
    runSyntheticComparison(TrafficPattern::NearestNeighbor,
                           {0.0125, 0.025, 0.0375, 0.05, 0.0625, 0.075,
                            0.0875, 0.1, 0.1125},
                           "FIG09_report.json", adaptive);
    return 0;
}
