/**
 * @file
 * Light-weight statistics accumulators used across the simulator.
 */

#ifndef HNOC_COMMON_STATS_HH
#define HNOC_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hnoc
{

/**
 * Running scalar statistic: count, mean, variance (Welford), min, max.
 */
class RunningStat
{
  public:
    /** Reset to the empty state. */
    void reset();

    /** Accumulate one sample. */
    void add(double x);

    /** @return number of accumulated samples. */
    std::uint64_t count() const { return count_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** @return population variance (0 when < 2 samples). */
    double variance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return unbiased sample variance, m2/(n-1) (0 when < 2). */
    double sampleVariance() const;

    /** @return unbiased sample standard deviation. */
    double sampleStddev() const;

    /**
     * Relative half-width of the Student-t confidence interval of the
     * mean: tStatCI(count, sampleStddev, confidence) / |mean|. The
     * batch-means stopping rule compares this against its target.
     * @return +inf when < 2 samples or the mean is 0.
     */
    double relHalfWidth(double confidence = 0.95) const;

    /** @return true when no samples have been accumulated. */
    bool empty() const { return count_ == 0; }

    /**
     * @return smallest sample, or NaN when empty — a real 0.0 sample
     * is unambiguous from "no data" (check empty() before comparing).
     */
    double min() const;

    /** @return largest sample, or NaN when empty. */
    double max() const;

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [lo, hi) with out-of-range clamping,
 * supporting mean and arbitrary percentiles.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the first bucket
     * @param hi exclusive upper bound of the last bucket
     * @param buckets number of equal-width buckets (>= 1)
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Accumulate one sample (clamped into the extreme buckets). */
    void add(double x);

    /** Reset all buckets. */
    void reset();

    /** @return total number of samples. */
    std::uint64_t count() const { return total_; }

    /** @return exact running mean of the added samples. */
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

    /** @return approximate q-quantile (q in [0,1]) from bucket centers. */
    double percentile(double q) const;

    /** @return the raw bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** @return inclusive lower bound of the first bucket. */
    double lo() const { return lo_; }

    /** @return exclusive upper bound of the last bucket. */
    double hi() const { return hi_; }

    /**
     * Merge another histogram into this one (bucket-wise). The shapes
     * must match exactly (panics otherwise).
     */
    void merge(const Histogram &other);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * Utilization counter: busy-event accumulation against elapsed cycles,
 * with support for capacity > 1 (e.g. a router's total buffer slots).
 */
class UtilizationCounter
{
  public:
    /** @param capacity number of units that can be busy per cycle. */
    explicit UtilizationCounter(double capacity = 1.0)
        : capacity_(capacity)
    {}

    /** Record that @p busy_units units were busy this cycle. */
    void
    tick(double busy_units)
    {
        busy_ += busy_units;
        cycles_ += 1;
    }

    /** Record activity over a window without per-cycle calls. */
    void
    addWindow(double busy_units, std::uint64_t cycles)
    {
        busy_ += busy_units;
        cycles_ += cycles;
    }

    /** @return utilization in [0,1] relative to capacity. */
    double
    utilization() const
    {
        if (cycles_ == 0 || capacity_ <= 0.0)
            return 0.0;
        return busy_ / (capacity_ * static_cast<double>(cycles_));
    }

    /** @return total busy unit-cycles. */
    double busyUnits() const { return busy_; }

    /** @return observed cycles. */
    std::uint64_t cycles() const { return cycles_; }

    /** @return configured capacity. */
    double capacity() const { return capacity_; }

    /** Reset to empty (capacity preserved). */
    void
    reset()
    {
        busy_ = 0.0;
        cycles_ = 0;
    }

  private:
    double capacity_;
    double busy_ = 0.0;
    std::uint64_t cycles_ = 0;
};

/** Format a 2-D grid of values as an ASCII heat map (for Figs 1-2). */
std::string formatHeatMap(const std::vector<double> &values, int cols,
                          const std::string &title);

/** @name Confidence-interval / epoch-series helpers (sim_control,
 *  hnoc_inspect) */
///@{

/**
 * Two-sided Student-t critical value for @p confidence in {0.90,
 * 0.95, 0.99} at @p df degrees of freedom (>= 1). Table-driven with
 * 1/df interpolation beyond df 30 — deterministic across platforms.
 * Unsupported confidence levels are fatal.
 */
double tCriticalValue(double confidence, std::uint64_t df);

/**
 * Half-width of the confidence interval of a mean estimated from
 * @p n samples with sample standard deviation @p sample_stddev:
 * t(conf, n-1) * s / sqrt(n). @return +inf when n < 2.
 */
double tStatCI(std::uint64_t n, double sample_stddev,
               double confidence = 0.95);

/**
 * First index of @p series from which @p k consecutive values each
 * stay within relative tolerance @p tol of their predecessor (the
 * k-consecutive-epochs warmup rule applied offline to a recorded
 * epoch series). @return index of the first stable value, or -1 when
 * the series never stabilizes.
 */
int steadyEpochCutoff(const std::vector<double> &series, double tol,
                      int k);

/**
 * Batch-means summary of the tail of an epoch series: mean and
 * relative CI half-width of series[cutoff..] (cutoff from
 * steadyEpochCutoff; pass 0 to use the whole series).
 */
struct EpochSeriesCi
{
    std::uint64_t batches = 0;
    double mean = 0.0;
    double relHalfWidth = 0.0; ///< +inf when < 2 batches
};
EpochSeriesCi epochSeriesCi(const std::vector<double> &series,
                            std::size_t cutoff = 0,
                            double confidence = 0.95);
///@}

} // namespace hnoc

#endif // HNOC_COMMON_STATS_HH
