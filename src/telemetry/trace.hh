/**
 * @file
 * Flit/packet tracing: a NetworkObserver that records every flit event
 * and emits (1) Chrome-trace-format JSON loadable in chrome://tracing
 * or Perfetto, and (2) a compact JSONL flit log for scripted analysis.
 *
 * The Chrome trace maps routers to threads (tid = router id) of one
 * process; each head flit's residency at a router becomes a complete
 * ("X") slice, and each packet's network lifetime becomes an async
 * b/e span keyed by packet id. Timestamps are simulation cycles
 * written as microseconds (1 cycle = 1 us on the trace-viewer axis).
 *
 * On delivery the observer decomposes each packet's latency into
 *   queueing      source-queue wait (created -> injected),
 *   per-hop       head-flit residency at each router,
 *   serialization network time not spent buffered at routers
 *                 (wire traversal + tail serialization),
 * and attaches the breakdown to the packet's end event.
 */

#ifndef HNOC_TELEMETRY_TRACE_HH
#define HNOC_TELEMETRY_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "noc/flit.hh"
#include "noc/observer.hh"

namespace hnoc
{

/** Knobs for TraceObserver. */
struct TraceOptions
{
    bool hopSlices = true;   ///< per-hop "X" events (head flits)
    bool packetSpans = true; ///< async b/e span per packet
    bool flitLog = true;     ///< record the JSONL flit event log
    /** Hard cap on recorded flit-log events; exceeding events are
     *  dropped (counted in droppedEvents()). Bounds memory on long
     *  runs: ~40 B/event. */
    std::size_t maxEvents = 1u << 20;
    /** Hard cap on completed packet records kept for the trace. */
    std::size_t maxPackets = 1u << 18;
};

/** Records flit events and renders Chrome-trace JSON / JSONL logs. */
class TraceObserver : public NetworkObserver
{
  public:
    explicit TraceObserver(TraceOptions opts = {});

    /** @name NetworkObserver */
    ///@{
    void onPacketCreated(const Packet &pkt, Cycle now) override;
    void onFlitArrive(RouterId router, PortId port, const Flit &flit,
                      Cycle now) override;
    void onFlitDepart(RouterId router, PortId port, const Flit &flit,
                      Cycle now) override;
    void onPacketDelivered(const Packet &pkt, Cycle now) override;
    ///@}

    /** One router visit of a packet's head flit. */
    struct HopRecord
    {
        RouterId router = INVALID_ROUTER;
        PortId inPort = INVALID_PORT;
        VcId vc = INVALID_VC;
        Cycle arrive = 0;
        Cycle depart = CYCLE_NEVER;
    };

    /** Full journey of one delivered packet. */
    struct PacketRecord
    {
        PacketId id = 0;
        NodeId src = INVALID_NODE;
        NodeId dst = INVALID_NODE;
        int numFlits = 0;
        Cycle created = 0;
        Cycle injected = 0;
        Cycle ejected = 0;
        std::vector<HopRecord> hops;

        /** @name Latency decomposition (cycles) */
        ///@{
        Cycle queueing() const { return injected - created; }
        Cycle network() const { return ejected - injected; }
        Cycle hopSum() const;
        /** Network time not buffered at routers: wires + tail
         *  serialization behind the head. */
        Cycle serialization() const;
        ///@}
    };

    const std::vector<PacketRecord> &packets() const { return done_; }
    std::uint64_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return droppedEvents_; }
    std::uint64_t droppedPackets() const { return droppedPackets_; }

    /** Drop all recorded state (benchmark loops). */
    void reset();

    /** @name Export */
    ///@{
    /** The full trace as a Chrome-trace JSON document. */
    std::string chromeTraceJson() const;

    /** One JSON object per line: the compact flit event log. */
    std::string flitLogJsonl() const;

    bool writeChromeTrace(const std::string &path) const;
    bool writeFlitLog(const std::string &path) const;
    ///@}

  private:
    /** A single flit-log entry, 2 words packed. */
    struct Event
    {
        Cycle t;
        std::uint32_t pkt;  ///< truncated packet id (log readability)
        std::int16_t router;
        std::int8_t port;
        std::int8_t vc;
        std::uint16_t seq;
        std::uint8_t kind; ///< 0 = arrive, 1 = depart
        std::uint8_t isHead;
    };

    void record(std::uint8_t kind, RouterId router, PortId port,
                const Flit &flit, Cycle now);

    TraceOptions opts_;
    std::vector<Event> events_;
    std::unordered_map<PacketId, PacketRecord> live_;
    std::vector<PacketRecord> done_;
    std::uint64_t droppedEvents_ = 0;
    std::uint64_t droppedPackets_ = 0;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_TRACE_HH
