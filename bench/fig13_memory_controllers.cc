/**
 * @file
 * Figure 13 (case study I): co-design of memory-controller placement
 * (Abts et al.) with HeteroNoC. Three configurations over the
 * corner-MC homogeneous reference:
 *   Diamond_homoNoC   — diamond MCs, homogeneous network
 *   Diamond_heteroNoC — diamond MCs, Diagonal+BL network
 *   Diagonal_heteroNoC— diagonal MCs (on big routers), Diagonal+BL
 * (a) request-response latency reduction, UR closed loop + workloads;
 * (b) request latency vs its standard deviation (jitter).
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

namespace
{

struct Config
{
    const char *name;
    LayoutKind layout;
    McPlacement mc;
};

const Config REFERENCE = {"Corners_homoNoC", LayoutKind::Baseline,
                          McPlacement::Corners};
const Config CONFIGS[] = {
    {"Diamond_homoNoC", LayoutKind::Baseline, McPlacement::Diamond},
    {"Diamond_heteroNoC", LayoutKind::DiagonalBL, McPlacement::Diamond},
    {"Diagonal_heteroNoC", LayoutKind::DiagonalBL, McPlacement::Diagonal},
};

} // namespace

int
main()
{
    printHeader("Figure 13",
                "memory-controller placement co-design (case study I)");

    // --- (UR row): closed-loop memory requests, 16 MSHRs per node ---
    std::printf("\nUR closed loop (16 outstanding/node):\n");
    double ur_ref = 0.0;
    {
        auto stat = runClosedLoopMem(
            makeLayoutConfig(REFERENCE.layout),
            mcTiles(REFERENCE.mc, 8), 1);
        ur_ref = stat.mean();
        std::printf("%-20s round trip %7.1f ns (reference)\n",
                    REFERENCE.name, ur_ref);
    }
    for (const Config &c : CONFIGS) {
        auto stat = runClosedLoopMem(makeLayoutConfig(c.layout),
                                     mcTiles(c.mc, 8), 1);
        std::printf("%-20s round trip %7.1f ns  reduction %5.1f%%\n",
                    c.name, stat.mean(),
                    pctReduction(ur_ref, stat.mean()));
    }

    // --- workloads: full CMP with MC placements ------------------------
    std::printf("\n(a) Request-response latency reduction over "
                "Corners_homoNoC (%%):\n");
    std::printf("%-12s %18s %18s %18s\n", "workload", CONFIGS[0].name,
                CONFIGS[1].name, CONFIGS[2].name);

    std::printf("\n(b) request latency vs std-dev appears per row "
                "below as mean/std pairs\n");
    std::vector<RunningStat> avg_red(3);
    for (const WorkloadProfile &w : allWorkloads()) {
        if (w.name == "libquantum")
            continue;
        CmpConfig ref_cmp;
        ref_cmp.mcPlacement = REFERENCE.mc;
        CmpRunResult ref = runCmpExperiment(
            makeLayoutConfig(REFERENCE.layout), ref_cmp, w);

        std::printf("%-12s", w.name.c_str());
        for (int i = 0; i < 3; ++i) {
            CmpConfig cmp;
            cmp.mcPlacement = CONFIGS[i].mc;
            CmpRunResult r = runCmpExperiment(
                makeLayoutConfig(CONFIGS[i].layout), cmp, w);
            double red = pctReduction(ref.roundTripMean, r.roundTripMean);
            avg_red[static_cast<std::size_t>(i)].add(red);
            std::printf("  %5.1f%% (%4.0f/%4.0f)", red, r.roundTripMean,
                        r.roundTripStd);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "average");
    for (auto &s : avg_red)
        std::printf("  %5.1f%%            ", s.mean());
    std::printf("\n(paper: ~8%% / ~22%% / ~28%%; Diagonal_heteroNoC "
                "also lowest jitter)\n");
    return 0;
}
