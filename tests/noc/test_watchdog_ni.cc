/**
 * @file
 * Watchdog and network-interface behaviour tests, plus SA-policy
 * comparisons.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "heteronoc/layout.hh"
#include "noc/watchdog.hh"

namespace hnoc
{
namespace
{

TEST(Watchdog, QuietNetworkNeverTrips)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    ProgressWatchdog dog(100);
    for (int i = 0; i < 500; ++i) {
        net.step();
        EXPECT_TRUE(dog.check(net));
    }
}

TEST(Watchdog, TripsWhenDeliveryStops)
{
    // Simulate "stuck" by never stepping the network after injection:
    // in-flight stays > 0 and now() does not advance past the window
    // until we step. Step without progress is impossible in a healthy
    // network, so emulate by injecting into a network we keep stepping
    // while packets flow, then checking the watchdog math directly.
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    ProgressWatchdog dog(200); // comfortably above the ~52-cycle trip
    net.enqueuePacket(0, 63, 6);
    // Healthy run: no trip while the packet is delivered.
    bool ok = true;
    for (int i = 0; i < 200; ++i) {
        net.step();
        ok = ok && dog.check(net);
    }
    EXPECT_TRUE(ok);
    EXPECT_EQ(net.packetsInFlight(), 0u);

    // Now fabricate a stall: enqueue to a full-speed network but stop
    // consuming time progress checks against a stale watchdog window.
    Network net2(makeLayoutConfig(LayoutKind::Baseline));
    ProgressWatchdog dog2(10);
    net2.enqueuePacket(0, 63, 6);
    // Step only the cycle counter far enough without letting the
    // packet finish: use a tiny window so delivery at ~50 cycles is
    // "too late".
    bool tripped = false;
    for (int i = 0; i < 30 && !tripped; ++i) {
        net2.step();
        tripped = !dog2.check(net2);
    }
    EXPECT_TRUE(tripped) << "a 10-cycle window must trip before the "
                            "~50-cycle delivery";
}

TEST(Watchdog, OneWarningPerStalledWindow)
{
    // A persistent stall must warn once per elapsed window, not once
    // per check() call: the trip restarts the window.
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    ProgressWatchdog dog(10);
    net.enqueuePacket(0, 63, 6);

    std::vector<Cycle> trip_cycles;
    for (int i = 0; i < 45; ++i) {
        net.step();
        if (!dog.check(net))
            trip_cycles.push_back(net.now());
    }
    // ~45 cycles before delivery with a 10-cycle window: a re-warn
    // storm would produce tens of trips; windowed warning produces a
    // handful, each at least one full window apart.
    ASSERT_GE(trip_cycles.size(), 2u);
    EXPECT_LE(trip_cycles.size(), 5u);
    for (std::size_t i = 1; i < trip_cycles.size(); ++i)
        EXPECT_GT(trip_cycles[i] - trip_cycles[i - 1], 10u)
            << "trips " << i - 1 << " and " << i;
    EXPECT_EQ(dog.trips(), trip_cycles.size());
}

TEST(Watchdog, TripDiagnosticsIncludeTelemetrySummary)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    auto reg = net.makeMetricRegistry(1000);
    net.attachTelemetry(reg.get());

    ProgressWatchdog dog(10);
    net.enqueuePacket(0, 63, 6);
    bool tripped = false;
    for (int i = 0; i < 40 && !tripped; ++i) {
        net.step();
        tripped = !dog.check(net);
    }
    ASSERT_TRUE(tripped);
    EXPECT_EQ(dog.trips(), 1u);

    // The captured snapshot carries both the occupancy dump and the
    // registry's hot-spot summary.
    const std::string &diag = dog.lastDiagnostics();
    EXPECT_FALSE(diag.empty());
    EXPECT_NE(diag.find("telemetry:"), std::string::npos) << diag;
    EXPECT_NE(diag.find("hottest routers"), std::string::npos) << diag;

    net.detachTelemetry();
}

TEST(NetworkInterface, SourceQueueDrainsInOrder)
{
    // Two packets from the same node to the same destination must
    // arrive in creation order (same VC stream or ordered VCs).
    struct OrderCheck : NetworkClient
    {
        std::vector<PacketId> order;
        void
        onPacketDelivered(Network &, Packet &pkt, Cycle) override
        {
            order.push_back(pkt.id);
        }
    } check;

    Network net(makeLayoutConfig(LayoutKind::Baseline));
    net.setClient(&check);
    Packet *a = net.enqueuePacket(0, 63, 6);
    PacketId first = a->id;
    net.enqueuePacket(0, 63, 6);
    net.enqueuePacket(0, 63, 6);
    net.run(400);
    ASSERT_EQ(check.order.size(), 3u);
    EXPECT_EQ(check.order.front(), first);
}

TEST(NetworkInterface, QueueDepthVisible)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    for (int i = 0; i < 20; ++i)
        net.enqueuePacket(5, 60, 6);
    EXPECT_GT(net.totalSourceQueueDepth(), 0u);
    net.run(2000);
    EXPECT_EQ(net.totalSourceQueueDepth(), 0u);
}

TEST(SaPolicy, OldestFirstDeliversEverything)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.saPolicy = SaPolicy::OldestFirst;
    Network net(cfg);
    Rng rng(77);
    std::uint64_t injected = 0;
    for (Cycle t = 0; t < 3000; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (rng.uniform() < 0.03) {
                auto dst = static_cast<NodeId>(rng.below(63));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                ++injected;
            }
        }
        net.step();
    }
    Cycle guard = 60000;
    while (net.packetsInFlight() > 0 && guard-- > 0)
        net.step();
    EXPECT_EQ(net.packetsDelivered(), injected);
}

TEST(SaPolicy, OldestFirstImprovesTailAtSaturation)
{
    // Fairness property: under heavy load, age-based arbitration must
    // not produce a *worse* maximum packet latency than round-robin.
    auto max_latency = [](SaPolicy policy) {
        struct MaxLat : NetworkClient
        {
            Cycle worst = 0;
            void
            onPacketDelivered(Network &, Packet &pkt, Cycle) override
            {
                worst = std::max(worst, pkt.networkLatency());
            }
        } client;
        NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
        cfg.saPolicy = policy;
        Network net(cfg);
        net.setClient(&client);
        Rng rng(5);
        for (Cycle t = 0; t < 6000; ++t) {
            for (NodeId n = 0; n < 64; ++n) {
                if (rng.uniform() < 0.06) {
                    auto dst = static_cast<NodeId>(rng.below(63));
                    if (dst >= n)
                        ++dst;
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                }
            }
            net.step();
        }
        return client.worst;
    };
    Cycle rr = max_latency(SaPolicy::RoundRobin);
    Cycle oldest = max_latency(SaPolicy::OldestFirst);
    EXPECT_LE(oldest, rr + rr / 2) << "age-based SA should not degrade "
                                      "worst-case latency materially";
}

} // namespace
} // namespace hnoc
