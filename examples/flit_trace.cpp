/**
 * @file
 * Flit-level trace: follow one packet hop by hop through the
 * Diagonal+BL network (with background traffic), then print per-hop
 * residency statistics gathered by a NetworkObserver. Demonstrates the
 * observer API and the table-routing path shapes of Fig 14(a).
 *
 *   ./examples/flit_trace [src=0] [dst=55]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "heteronoc/layout.hh"
#include "noc/network.hh"

using namespace hnoc;

namespace
{

/** Prints the head flit's journey for one watched packet and collects
 *  per-hop residency for everything else. */
class TraceObserver : public NetworkObserver
{
  public:
    explicit TraceObserver(const std::vector<bool> &big_mask)
        : bigMask_(big_mask)
    {}

    void
    onFlitArrive(RouterId router, PortId port, const Flit &flit,
                 Cycle now) override
    {
        if (flit.pkt->id == watched && flit.isHead()) {
            std::printf("  cycle %5llu  arrive router %2d (%s) "
                        "port %d vc %d\n",
                        static_cast<unsigned long long>(now), router,
                        bigMask_[static_cast<std::size_t>(router)]
                            ? "BIG  "
                            : "small",
                        port, flit.vc);
            arrival_[router] = now;
        }
    }

    void
    onFlitDepart(RouterId router, PortId port, const Flit &flit,
                 Cycle now) override
    {
        if (flit.pkt->id == watched && flit.isHead()) {
            std::printf("  cycle %5llu  depart router %2d port %d\n",
                        static_cast<unsigned long long>(now), router,
                        port);
        }
        // Per-hop residency of every head flit.
        if (flit.isHead()) {
            hopResidency_.add(
                static_cast<double>(now - flit.arrivedAt));
        }
    }

    PacketId watched = 0;
    const RunningStat &hopResidency() const { return hopResidency_; }

  private:
    std::vector<bool> bigMask_;
    std::map<RouterId, Cycle> arrival_;
    RunningStat hopResidency_;
};

} // namespace

int
main(int argc, char **argv)
{
    NodeId src = argc > 1 ? std::atoi(argv[1]) : 0;
    NodeId dst = argc > 2 ? std::atoi(argv[2]) : 55;

    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    cfg.routing = RoutingMode::TableXY;
    cfg.tableRoutedNodes = {0, 7, 56, 63};

    Network net(cfg);
    TraceObserver obs(bigRouterMask(LayoutKind::DiagonalBL, 8));
    net.setObserver(&obs);

    // Background load so the trace shows real contention.
    Rng rng(42);
    for (Cycle t = 0; t < 500; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (rng.uniform() < 0.02) {
                auto d = static_cast<NodeId>(rng.below(63));
                if (d >= n)
                    ++d;
                net.enqueuePacket(n, d, cfg.dataPacketFlits());
            }
        }
        net.step();
    }

    std::printf("tracing a data packet %d -> %d (table routing; big "
                "routers on the diagonals):\n", src, dst);
    Packet *pkt = net.enqueuePacket(src, dst, cfg.dataPacketFlits());
    obs.watched = pkt->id;
    PacketId watched_id = pkt->id;
    Cycle start = net.now();
    net.run(500);
    (void)watched_id;

    std::printf("\npacket hops: the expected table path was:");
    for (RouterId r : net.routing().path(src, dst))
        std::printf(" %d", r);
    std::printf("\n(traced in %llu cycles)\n",
                static_cast<unsigned long long>(net.now() - start));

    std::printf("\nper-hop head-flit residency over all packets: "
                "mean %.1f cycles, p-max %.0f\n",
                obs.hopResidency().mean(), obs.hopResidency().max());
    return 0;
}
