/**
 * @file
 * Golden-value regression tests: a fixed seed must reproduce these
 * exact aggregate results. Any change to router timing, allocation,
 * traffic generation or power accounting will shift them — if a change
 * is intentional, regenerate the constants (the values are printed on
 * failure) and note the behavioral change in the commit.
 */

#include <gtest/gtest.h>

#include "heteronoc/layout.hh"
#include "noc/sim_harness.hh"

namespace hnoc
{
namespace
{

SimPointResult
goldenRun(LayoutKind kind)
{
    SimPointOptions opts;
    opts.injectionRate = 0.025;
    opts.warmupCycles = 2000;
    opts.measureCycles = 5000;
    opts.drainCycles = 10000;
    opts.seed = 20260706;
    return runOpenLoop(makeLayoutConfig(kind),
                       TrafficPattern::UniformRandom, opts);
}

TEST(Golden, BaselineUniformRandom)
{
    // HNOC_SIM_SCALE changes run lengths; goldens only hold at 1.
    if (std::getenv("HNOC_SIM_SCALE"))
        GTEST_SKIP() << "goldens require HNOC_SIM_SCALE unset";
    SimPointResult r = goldenRun(LayoutKind::Baseline);
    EXPECT_EQ(r.trackedCreated, 8129u);
    EXPECT_EQ(r.trackedDelivered, 8129u);
    EXPECT_NEAR(r.avgLatencyNs, 13.663763, 1e-4);
    EXPECT_NEAR(r.networkPowerW, 21.284006, 1e-4);
}

TEST(Golden, DiagonalBlUniformRandom)
{
    if (std::getenv("HNOC_SIM_SCALE"))
        GTEST_SKIP() << "goldens require HNOC_SIM_SCALE unset";
    SimPointResult r = goldenRun(LayoutKind::DiagonalBL);
    EXPECT_EQ(r.trackedCreated, 8129u);
    EXPECT_EQ(r.trackedDelivered, 8129u);
    EXPECT_NEAR(r.avgLatencyNs, 17.244992, 1e-4);
    EXPECT_NEAR(r.networkPowerW, 15.897139, 1e-4);
}

} // namespace
} // namespace hnoc
