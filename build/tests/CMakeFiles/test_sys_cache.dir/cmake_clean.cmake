file(REMOVE_RECURSE
  "CMakeFiles/test_sys_cache.dir/sys/test_cache.cc.o"
  "CMakeFiles/test_sys_cache.dir/sys/test_cache.cc.o.d"
  "test_sys_cache"
  "test_sys_cache.pdb"
  "test_sys_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
