/**
 * @file
 * Figure 8: latency breakdown (blocking / queuing / transfer) and
 * power breakdown (links / crossbar / arbiters+logic / buffers) under
 * uniform-random traffic at a moderate load, normalized to baseline.
 */

#include "bench_util.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main(int argc, char **argv)
{
    printHeader("Figure 8",
                "latency and power breakdowns, UR traffic @ 0.036 "
                "pkt/node/cycle");

    SimPointOptions opts;
    opts.injectionRate = 0.036;
    opts.warmupCycles = 6000;
    opts.measureCycles = 15000;
    opts.drainCycles = 30000;
    applyAdaptive(opts, parseAdaptiveFlag(argc, argv));

    struct Run
    {
        LayoutKind kind;
        SimPointResult res;
    };
    std::vector<LayoutKind> kinds = allLayouts();
    std::vector<SimPointResult> results =
        runLayoutPoints(kinds, TrafficPattern::UniformRandom, opts);
    std::vector<Run> runs;
    for (std::size_t i = 0; i < kinds.size(); ++i)
        runs.push_back({kinds[i], results[i]});

    const SimPointResult &base = runs.front().res;
    double base_total = base.avgLatencyNs;

    std::printf("\n(a) Latency breakdown (%% of baseline total):\n");
    std::printf("%-12s %10s %10s %10s %10s\n", "layout", "blocking",
                "queuing", "transfer", "total");
    for (const Run &r : runs) {
        std::printf("%-12s %10.1f %10.1f %10.1f %10.1f\n",
                    layoutName(r.kind).c_str(),
                    100.0 * r.res.avgBlockingNs / base_total,
                    100.0 * r.res.avgQueuingNs / base_total,
                    100.0 * r.res.avgTransferNs / base_total,
                    100.0 * r.res.avgLatencyNs / base_total);
    }

    double base_power = base.networkPowerW;
    std::printf("\n(b) Power breakdown (%% of baseline total):\n");
    std::printf("%-12s %10s %10s %12s %10s %10s\n", "layout", "links",
                "xbar", "arb+logic", "buffers", "total");
    for (const Run &r : runs) {
        if (r.kind != LayoutKind::Baseline &&
            !isBufferLinkLayout(r.kind))
            continue; // the paper plots baseline + the three +BL
        std::printf("%-12s %10.1f %10.1f %12.1f %10.1f %10.1f\n",
                    layoutName(r.kind).c_str(),
                    100.0 * r.res.power.links / base_power,
                    100.0 * r.res.power.crossbar / base_power,
                    100.0 * r.res.power.arbiters / base_power,
                    100.0 * r.res.power.buffers / base_power,
                    100.0 * r.res.networkPowerW / base_power);
    }
    std::printf("\ntotal simulated cycles: %llu\n",
                static_cast<unsigned long long>(
                    totalSimulatedCycles(results)));
    return 0;
}
