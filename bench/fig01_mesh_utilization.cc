/**
 * @file
 * Figure 1: buffer and link utilization heat maps of the homogeneous
 * 8x8 mesh under uniform-random traffic near saturation
 * (~0.06 packets/node/cycle, footnote 1). Expected shape: central
 * routers ~2x the utilization of peripheral ones; corners slightly
 * above their row/column peers.
 */

#include <cmath>

#include "bench_util.hh"
#include "common/report.hh"
#include "noc/sim_harness.hh"

using namespace hnoc;
using namespace hnoc::bench;

int
main()
{
    printHeader("Figure 1",
                "buffer/link utilization heat maps, 8x8 mesh, UR traffic");

    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    SimPointOptions opts;
    opts.injectionRate = 0.065; // near saturation, as in the paper
    opts.warmupCycles = 8000;
    opts.measureCycles = 30000;
    opts.drainCycles = 0;
    opts.collectMetrics = true;
    SimPointResult res =
        runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);

    // The heat maps come from the telemetry registry; the legacy
    // Network counters are kept as a cross-check (both paths measure
    // the same window and must agree).
    std::vector<double> buf_util = res.metrics->bufferUtilizationPercent();
    std::vector<double> link_util = res.metrics->linkUtilizationPercent();
    for (std::size_t i = 0; i < buf_util.size(); ++i) {
        if (std::fabs(buf_util[i] - res.bufferUtilPct[i]) > 0.05)
            std::printf("WARNING: registry buffer util diverges from "
                        "legacy at router %zu (%.3f vs %.3f)\n",
                        i, buf_util[i], res.bufferUtilPct[i]);
    }

    std::printf("%s\n",
                formatHeatMap(buf_util, 8,
                              "(a) Buffer utilization (%)").c_str());
    std::printf("%s\n",
                formatHeatMap(link_util, 8,
                              "(b) Link utilization (%)").c_str());

    writeHeatMapCsv("FIG01_buffer_util.csv", buf_util, 8);
    writeHeatMapCsv("FIG01_link_util.csv", link_util, 8);
    writeRunReport("FIG01_report.json",
                   "Figure 1: 8x8 mesh utilization heat maps",
                   {"baseline_ur_0.065"}, {res});

    // Paper-shape summary: center vs periphery.
    auto region_mean = [&](const std::vector<double> &v, bool center) {
        double sum = 0.0;
        int n = 0;
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
                bool is_center = x >= 2 && x <= 5 && y >= 2 && y <= 5;
                bool is_edge = x == 0 || x == 7 || y == 0 || y == 7;
                if ((center && is_center) || (!center && is_edge)) {
                    sum += v[static_cast<std::size_t>(y * 8 + x)];
                    ++n;
                }
            }
        }
        return sum / n;
    };

    double buf_center = region_mean(buf_util, true);
    double buf_edge = region_mean(buf_util, false);
    double link_center = region_mean(link_util, true);
    double link_edge = region_mean(link_util, false);
    std::printf("center/edge buffer utilization: %.1f%% / %.1f%% "
                "(ratio %.2fx; paper: ~75%% vs ~35%%, ~2x)\n",
                buf_center, buf_edge, buf_center / buf_edge);
    std::printf("center/edge link utilization:   %.1f%% / %.1f%% "
                "(ratio %.2fx)\n",
                link_center, link_edge, link_center / link_edge);
    return 0;
}
