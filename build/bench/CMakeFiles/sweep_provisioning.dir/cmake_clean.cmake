file(REMOVE_RECURSE
  "CMakeFiles/sweep_provisioning.dir/sweep_provisioning.cc.o"
  "CMakeFiles/sweep_provisioning.dir/sweep_provisioning.cc.o.d"
  "sweep_provisioning"
  "sweep_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
