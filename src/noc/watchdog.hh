/**
 * @file
 * Forward-progress watchdog: detects deadlock/livelock by checking
 * that a network with packets in flight keeps delivering. Used by
 * long-running harnesses and the property tests.
 */

#ifndef HNOC_NOC_WATCHDOG_HH
#define HNOC_NOC_WATCHDOG_HH

#include <string>

#include "common/logging.hh"
#include "noc/network.hh"

namespace hnoc
{

/**
 * Call check() periodically; it trips when the network has held
 * packets in flight for more than `window` cycles with no delivery.
 */
class ProgressWatchdog
{
  public:
    /**
     * @param window cycles without any delivery (while packets are in
     *        flight) before the watchdog trips
     * @param fatal_on_trip panic() on trip instead of returning false
     */
    explicit ProgressWatchdog(Cycle window = 50000,
                              bool fatal_on_trip = false)
        : window_(window), fatalOnTrip_(fatal_on_trip)
    {}

    /**
     * @return true while the network is making progress; false (or
     * panic) once no packet has been delivered for the whole window
     * despite packets being in flight. A trip warns exactly once and
     * restarts the window, so a persistent stall produces one warning
     * per stalled window rather than one per call.
     */
    bool
    check(const Network &net)
    {
        if (net.packetsInFlight() == 0) {
            lastProgress_ = net.now();
            lastDelivered_ = net.packetsDelivered();
            return true;
        }
        if (net.packetsDelivered() != lastDelivered_) {
            lastProgress_ = net.now();
            lastDelivered_ = net.packetsDelivered();
            return true;
        }
        if (net.now() - lastProgress_ <= window_)
            return true;
        Cycle stalled = net.now() - lastProgress_;
        ++trips_;
        lastDiagnostics_ = diagnostics(net);
        if (!postmortemPath_.empty())
            net.writePostmortem(postmortemPath_, "watchdog trip");
        // Restart the window before reporting: the next check() call
        // must not re-trip until another full window passes without
        // progress.
        lastProgress_ = net.now();
        if (fatalOnTrip_)
            panic("watchdog: no delivery for %llu cycles with %zu "
                  "packets in flight\n%s",
                  static_cast<unsigned long long>(stalled),
                  net.packetsInFlight(), lastDiagnostics_.c_str());
        warn("watchdog tripped: no delivery for %llu cycles with %zu "
             "packets in flight\n%s",
             static_cast<unsigned long long>(stalled),
             net.packetsInFlight(), lastDiagnostics_.c_str());
        return false;
    }

    /**
     * Trip-time snapshot: buffer-occupancy grid, stuck source queues
     * and in-flight count, plus the telemetry hot-spot summary when a
     * MetricRegistry is attached to the network.
     */
    std::string
    diagnostics(const Network &net) const
    {
        std::string out = net.dumpState();
        if (const MetricRegistry *reg = net.telemetry())
            out += reg->summary();
        return out;
    }

    /** Reset the progress window (e.g. after reconfiguration). */
    void
    reset(const Network &net)
    {
        lastProgress_ = net.now();
        lastDelivered_ = net.packetsDelivered();
    }

    /** Write an `hnoc-postmortem-v1` dump to @p path on every trip
     *  (empty disables; honors HNOC_JSON_DIR like run reports). */
    void
    setPostmortemPath(std::string path)
    {
        postmortemPath_ = std::move(path);
    }

    /** Times the watchdog has tripped (== warnings issued). */
    std::uint64_t trips() const { return trips_; }

    /** Diagnostics captured at the most recent trip. */
    const std::string &lastDiagnostics() const { return lastDiagnostics_; }

  private:
    Cycle window_;
    bool fatalOnTrip_;
    Cycle lastProgress_ = 0;
    std::uint64_t lastDelivered_ = 0;
    std::uint64_t trips_ = 0;
    std::string lastDiagnostics_;
    std::string postmortemPath_;
};

} // namespace hnoc

#endif // HNOC_NOC_WATCHDOG_HH
