#!/usr/bin/env python3
"""Compare one benchmark between two google-benchmark JSON files.

Used by CI to guard the telemetry hooks: the HNOC_TELEMETRY=ON build
(hooks compiled in, nothing attached) must not regress the network
hot loop versus the OFF build by more than the threshold.

    check_perf_regression.py baseline.json candidate.json \
        --benchmark BM_NetworkStepBaseline --max-regression-pct 2.0

Cross-benchmark mode compares two different series (possibly from the
same file), which is how CI gates the active-set scheduler against the
always-step escape hatch:

    # saturation: active-set must not regress past the threshold
    check_perf_regression.py on.json on.json \
        --benchmark 'stepLoad/mesh_sat_always' \
        --candidate-benchmark 'stepLoad/mesh_sat_active' \
        --max-regression-pct 2.0

    # low load: active-set must be at least 2x faster
    check_perf_regression.py on.json on.json \
        --benchmark 'stepLoad/mesh_low_always' \
        --candidate-benchmark 'stepLoad/mesh_low_active' \
        --min-speedup 2.0

Either input may also be an `hnoc-perf-trajectory-v1` snapshot (the
distilled file make_perf_trajectory.py writes), so a committed
BENCH_trajectory.json can serve as the recorded baseline.

Exit status: 0 within threshold, 1 regression, 2 usage/data error.
Run with --self-test (no other arguments) to exercise the parsing and
comparison logic without pytest; CTest invokes this.
"""

import argparse
import json
import os
import sys
import tempfile


class DataError(Exception):
    """A benchmark file is missing, malformed, or lacks the series."""


def best_time(path, name):
    """Smallest real_time of `name` in a --benchmark_out JSON file.

    The minimum across repetitions is the standard low-noise estimate
    for a CPU-bound loop: noise only ever adds time.

    Also accepts an `hnoc-perf-trajectory-v1` snapshot, whose
    benchmarks map already records the per-series minimum.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise DataError(
            f"cannot read {path}: {e} "
            f"(did the benchmark step run and write --benchmark_out?)"
        )
    except ValueError as e:
        raise DataError(
            f"{path} is not valid JSON: {e} "
            f"(truncated benchmark run? re-run with --benchmark_out)"
        )
    if (
        isinstance(doc, dict)
        and doc.get("schema") == "hnoc-perf-trajectory-v1"
    ):
        series = doc.get("benchmarks")
        if not isinstance(series, dict):
            raise DataError(
                f"{path}: trajectory snapshot has no 'benchmarks' map"
            )
        entry = series.get(name)
        if not isinstance(entry, dict) or not isinstance(
            entry.get("min_ns"), (int, float)
        ):
            known = ", ".join(sorted(series)) or "(none)"
            raise DataError(
                f"no '{name}' series in trajectory {path}; file "
                f"contains: {known}"
            )
        return entry["min_ns"]
    if not isinstance(doc, dict) or not isinstance(
        doc.get("benchmarks"), list
    ):
        raise DataError(
            f"{path}: expected a google-benchmark JSON object with a "
            f"'benchmarks' array (got {type(doc).__name__})"
        )
    times = []
    for b in doc["benchmarks"]:
        if not isinstance(b, dict):
            continue
        if b.get("run_name", b.get("name")) != name:
            continue
        if b.get("run_type", "iteration") == "aggregate":
            continue
        t = b.get("real_time")
        if not isinstance(t, (int, float)):
            raise DataError(
                f"{path}: benchmark '{name}' entry has no numeric "
                f"real_time field"
            )
        times.append(t)
    if not times:
        known = sorted(
            {
                b.get("run_name", b.get("name", "?"))
                for b in doc["benchmarks"]
                if isinstance(b, dict)
            }
        )
        raise DataError(
            f"no '{name}' runs in {path}; file contains: "
            f"{', '.join(known) if known else '(no benchmarks at all)'}"
        )
    return min(times)


def compare(
    baseline,
    candidate,
    benchmark,
    max_regression_pct,
    out=sys.stdout,
    candidate_benchmark=None,
    min_speedup=None,
):
    """Core comparison; returns the process exit code.

    With `candidate_benchmark`, the candidate file is read at that
    series instead of `benchmark` (cross-benchmark A/B). With
    `min_speedup`, the gate is baseline/candidate >= min_speedup
    instead of the regression-percentage bound.
    """
    cand_name = candidate_benchmark or benchmark
    base = best_time(baseline, benchmark)
    cand = best_time(candidate, cand_name)
    label = (
        benchmark
        if cand_name == benchmark
        else f"{benchmark} -> {cand_name}"
    )
    if min_speedup is not None:
        speedup = base / cand
        print(
            f"{label}: baseline {base:.1f} ns, candidate {cand:.1f} ns, "
            f"speedup {speedup:.2f}x (required >= {min_speedup:.2f}x)",
            file=out,
        )
        if speedup < min_speedup:
            print("FAIL: speedup below required minimum", file=sys.stderr)
            return 1
        print("OK", file=out)
        return 0
    delta_pct = (cand - base) / base * 100.0
    print(
        f"{label}: baseline {base:.1f} ns, "
        f"candidate {cand:.1f} ns, delta {delta_pct:+.2f}% "
        f"(limit +{max_regression_pct:.2f}%)",
        file=out,
    )
    if delta_pct > max_regression_pct:
        print("FAIL: hot-path regression over threshold", file=sys.stderr)
        return 1
    print("OK", file=out)
    return 0


# --------------------------------------------------------- self-test --


def self_test():
    """Pytest-free checks of the parsing and comparison logic."""
    checks = []

    def check(name, got, want):
        checks.append((name, got, want))
        status = "ok" if got == want else "FAIL"
        print(f"  {status}: {name} (got {got!r}, want {want!r})")

    def bench_file(tmpdir, fname, entries):
        path = os.path.join(tmpdir, fname)
        with open(path, "w") as f:
            json.dump({"benchmarks": entries}, f)
        return path

    def expect_data_error(name, fn, needle):
        try:
            fn()
        except DataError as e:
            check(name, needle in str(e), True)
        else:
            check(name, "no DataError raised", DataError)

    entry = lambda name, t, **kw: dict(
        {"name": name, "run_name": name, "real_time": t}, **kw
    )

    with tempfile.TemporaryDirectory() as tmp:
        devnull = open(os.devnull, "w")

        # Minimum across repetitions, aggregates ignored.
        path = bench_file(
            tmp,
            "a.json",
            [
                entry("BM_X", 120.0),
                entry("BM_X", 100.0),
                entry("BM_X", 999.0, run_type="aggregate"),
                entry("BM_Y", 5.0),
            ],
        )
        check("min over repetitions", best_time(path, "BM_X"), 100.0)

        # Within / over threshold.
        base = bench_file(tmp, "base.json", [entry("BM_X", 100.0)])
        ok = bench_file(tmp, "ok.json", [entry("BM_X", 101.0)])
        bad = bench_file(tmp, "bad.json", [entry("BM_X", 110.0)])
        fast = bench_file(tmp, "fast.json", [entry("BM_X", 90.0)])
        check(
            "within threshold passes",
            compare(base, ok, "BM_X", 2.0, out=devnull),
            0,
        )
        check(
            "regression fails",
            compare(base, bad, "BM_X", 2.0, out=devnull),
            1,
        )
        check(
            "improvement passes",
            compare(base, fast, "BM_X", 2.0, out=devnull),
            0,
        )

        # Cross-benchmark A/B within one file: candidate read at a
        # different series name.
        ab = bench_file(
            tmp,
            "ab.json",
            [entry("BM_Slow", 100.0), entry("BM_Fast", 40.0)],
        )
        check(
            "cross-benchmark improvement passes",
            compare(
                ab, ab, "BM_Slow", 2.0,
                out=devnull, candidate_benchmark="BM_Fast",
            ),
            0,
        )
        check(
            "cross-benchmark regression fails",
            compare(
                ab, ab, "BM_Fast", 2.0,
                out=devnull, candidate_benchmark="BM_Slow",
            ),
            1,
        )

        # Speedup gate: 100/40 = 2.5x.
        check(
            "speedup gate met",
            compare(
                ab, ab, "BM_Slow", 2.0,
                out=devnull, candidate_benchmark="BM_Fast",
                min_speedup=2.0,
            ),
            0,
        )
        check(
            "speedup gate missed",
            compare(
                ab, ab, "BM_Slow", 2.0,
                out=devnull, candidate_benchmark="BM_Fast",
                min_speedup=3.0,
            ),
            1,
        )

        # Trajectory-v1 snapshots as inputs (recorded baselines).
        traj = os.path.join(tmp, "traj.json")
        with open(traj, "w") as f:
            json.dump(
                {
                    "schema": "hnoc-perf-trajectory-v1",
                    "benchmarks": {
                        "BM_X": {
                            "median_ns": 105.0,
                            "min_ns": 100.0,
                            "repetitions": 7,
                        }
                    },
                },
                f,
            )
        check("trajectory min_ns read", best_time(traj, "BM_X"), 100.0)
        check(
            "trajectory baseline vs raw candidate",
            compare(traj, ok, "BM_X", 2.0, out=devnull),
            0,
        )
        expect_data_error(
            "trajectory unknown series lists known ones",
            lambda: best_time(traj, "BM_Missing"),
            "BM_X",
        )

        # Error paths: message must say what is wrong and where.
        missing = os.path.join(tmp, "missing.json")
        expect_data_error(
            "missing file named",
            lambda: best_time(missing, "BM_X"),
            "missing.json",
        )
        trunc = os.path.join(tmp, "trunc.json")
        with open(trunc, "w") as f:
            f.write('{"benchmarks": [')
        expect_data_error(
            "malformed JSON explained",
            lambda: best_time(trunc, "BM_X"),
            "not valid JSON",
        )
        not_bench = os.path.join(tmp, "notbench.json")
        with open(not_bench, "w") as f:
            json.dump([1, 2, 3], f)
        expect_data_error(
            "wrong shape explained",
            lambda: best_time(not_bench, "BM_X"),
            "'benchmarks' array",
        )
        expect_data_error(
            "unknown series lists known ones",
            lambda: best_time(base, "BM_Missing"),
            "BM_X",
        )
        no_time = bench_file(
            tmp, "notime.json", [{"name": "BM_X", "run_name": "BM_X"}]
        )
        expect_data_error(
            "missing real_time explained",
            lambda: best_time(no_time, "BM_X"),
            "real_time",
        )
        devnull.close()

    failed = [c for c in checks if c[1] != c[2]]
    print(f"self-test: {len(checks) - len(failed)}/{len(checks)} passed")
    return 1 if failed else 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="benchmark JSON of the reference build")
    ap.add_argument("candidate", help="benchmark JSON of the build under test")
    ap.add_argument("--benchmark", default="BM_NetworkStepBaseline")
    ap.add_argument(
        "--candidate-benchmark",
        help="series name to read from the candidate file when it "
        "differs from --benchmark (cross-benchmark A/B)",
    )
    ap.add_argument("--max-regression-pct", type=float, default=2.0)
    ap.add_argument(
        "--min-speedup",
        type=float,
        help="require baseline/candidate >= this factor instead of the "
        "regression bound (e.g. 2.0 for the active-set low-load gate)",
    )
    args = ap.parse_args()

    try:
        return compare(
            args.baseline,
            args.candidate,
            args.benchmark,
            args.max_regression_pct,
            candidate_benchmark=args.candidate_benchmark,
            min_speedup=args.min_speedup,
        )
    except DataError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
