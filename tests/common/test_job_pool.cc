/**
 * @file
 * JobPool unit tests: sizing, FIFO dispatch, ordered result
 * collection, exception propagation through futures, and saturation
 * with far more jobs than workers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/job_pool.hh"

namespace hnoc
{
namespace
{

TEST(JobPool, DefaultThreadCountReadsEnv)
{
    ::setenv("HNOC_THREADS", "3", 1);
    EXPECT_EQ(JobPool::defaultThreadCount(), 3);
    ::setenv("HNOC_THREADS", "0", 1); // invalid -> hardware fallback
    EXPECT_GE(JobPool::defaultThreadCount(), 1);
    ::unsetenv("HNOC_THREADS");
    EXPECT_GE(JobPool::defaultThreadCount(), 1);
}

TEST(JobPool, EnvSizedPoolHasOneWorker)
{
    ::setenv("HNOC_THREADS", "1", 1);
    JobPool pool; // sized from the environment
    EXPECT_EQ(pool.threadCount(), 1);
    ::unsetenv("HNOC_THREADS");
}

TEST(JobPool, ExplicitThreadCount)
{
    JobPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
}

TEST(JobPool, SubmitReturnsResult)
{
    JobPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(JobPool, SingleWorkerRunsJobsInSubmissionOrder)
{
    JobPool pool(1);
    std::vector<int> order;
    std::mutex m;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([&, i] {
            std::lock_guard<std::mutex> lock(m);
            order.push_back(i);
        }));
    for (auto &f : futs)
        f.get();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(JobPool, RunOrderedCollectsInInputOrder)
{
    JobPool pool(4);
    auto results = pool.runOrdered(
        100, [](std::size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(results.size(), 100u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], static_cast<int>(i) * 3);
}

TEST(JobPool, ExceptionPropagatesThroughFuture)
{
    JobPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The worker survives the exception and keeps serving jobs.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(JobPool, RunOrderedRethrowsFirstFailure)
{
    JobPool pool(2);
    EXPECT_THROW(pool.runOrdered(16,
                                 [](std::size_t i) -> int {
                                     if (i == 5)
                                         throw std::invalid_argument("x");
                                     return static_cast<int>(i);
                                 }),
                 std::invalid_argument);
}

TEST(JobPool, SaturationManyMoreJobsThanWorkers)
{
    JobPool pool(2);
    std::atomic<int> done{0};
    auto results = pool.runOrdered(500, [&](std::size_t i) {
        done.fetch_add(1, std::memory_order_relaxed);
        return static_cast<int>(i);
    });
    EXPECT_EQ(done.load(), 500);
    ASSERT_EQ(results.size(), 500u);
    EXPECT_EQ(results.front(), 0);
    EXPECT_EQ(results.back(), 499);
}

TEST(JobPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> done{0};
    {
        JobPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        // No get(): destruction must still run every queued job.
    }
    EXPECT_EQ(done.load(), 64);
}

} // namespace
} // namespace hnoc
