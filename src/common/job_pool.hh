/**
 * @file
 * Work-queue thread pool for the parallel experiment engine.
 *
 * A JobPool owns a fixed set of worker threads draining a FIFO of
 * type-erased jobs. submit() returns a std::future so exceptions thrown
 * inside a job propagate to the caller at get(); runOrdered() maps a
 * function over an index range and collects results in input order, so
 * independent deterministic sim points can fan out across cores while
 * the caller sees exactly the serial-loop result vector.
 *
 * Sizing: JobPool() uses HNOC_THREADS when set (>= 1), otherwise
 * std::thread::hardware_concurrency(). A pool of size 1 still runs jobs
 * on its single worker thread, which keeps the code path identical for
 * the determinism tests.
 */

#ifndef HNOC_COMMON_JOB_POOL_HH
#define HNOC_COMMON_JOB_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hnoc
{

/** Fixed-size work-queue thread pool with exception-propagating futures. */
class JobPool
{
  public:
    /** Create a pool with @p threads workers (0 = defaultThreadCount). */
    explicit JobPool(int threads = 0);

    /** Drains the queue, then joins all workers. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** @return number of worker threads. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Pool size implied by the environment: HNOC_THREADS when set to a
     * positive integer, else std::thread::hardware_concurrency()
     * (minimum 1).
     */
    static int defaultThreadCount();

    /**
     * Process-wide shared pool, created on first use with
     * defaultThreadCount() workers. Used by the sim-harness batch API
     * when no explicit pool is passed.
     */
    static JobPool &shared();

    /**
     * Enqueue @p fn; the returned future yields its result (or
     * rethrows its exception) at get().
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        // shared_ptr because std::function requires copyable callables
        // and packaged_task is move-only.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /**
     * Run fn(0) ... fn(n - 1) across the pool and return the results
     * in index order. Any job exception is rethrown (the first one, in
     * index order) after all jobs finish.
     */
    template <typename Fn>
    auto
    runOrdered(std::size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn, std::size_t>>
    {
        using R = std::invoke_result_t<Fn, std::size_t>;
        std::vector<std::future<R>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            futures.push_back(submit([fn, i] { return fn(i); }));
        std::vector<R> results;
        results.reserve(n);
        for (auto &f : futures)
            results.push_back(f.get());
        return results;
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace hnoc

#endif // HNOC_COMMON_JOB_POOL_HH
