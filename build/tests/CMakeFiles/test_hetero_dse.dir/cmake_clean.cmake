file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_dse.dir/heteronoc/test_design_space.cc.o"
  "CMakeFiles/test_hetero_dse.dir/heteronoc/test_design_space.cc.o.d"
  "test_hetero_dse"
  "test_hetero_dse.pdb"
  "test_hetero_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
