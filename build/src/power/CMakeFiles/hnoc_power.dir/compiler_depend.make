# Empty compiler generated dependencies file for hnoc_power.
# This may be replaced when dependencies are built.
