# Empty dependencies file for test_noc_config.
# This may be replaced when dependencies are built.
