/**
 * @file
 * TraceObserver tests: the Chrome-trace JSON round-trip (emit, then
 * parse with the strict telemetry JsonValue parser and validate the
 * event structure), the per-packet latency decomposition, the JSONL
 * flit log, and the event/packet caps. The parser accepts exactly the
 * JSON grammar (see tests/telemetry/test_json_reader.cc), so these
 * tests also pin down that the emitter never produces malformed
 * documents (trailing commas, bad escapes, NaN literals).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "noc/flit.hh"
#include "noc/network.hh"
#include "noc/sim_harness.hh"
#include "telemetry/json_reader.hh"
#include "telemetry/trace.hh"

namespace hnoc
{
namespace
{

using Jv = JsonValue;

// ------------------------------------------------ synthetic journey --

TEST(TraceObserver, SyntheticJourneyDecomposesLatency)
{
    TraceObserver obs;

    Packet pkt;
    pkt.id = 42;
    pkt.src = 0;
    pkt.dst = 9;
    pkt.numFlits = 4;
    pkt.createdAt = 5;
    pkt.injectedAt = 8;
    pkt.ejectedAt = 40;

    Flit head;
    head.pkt = &pkt;
    head.type = FlitType::Head;
    head.seq = 0;
    head.vc = 1;

    obs.onPacketCreated(pkt, 5);
    obs.onFlitArrive(2, 3, head, 10); // router 2: 4-cycle residency
    obs.onFlitDepart(2, 1, head, 14);
    obs.onFlitArrive(7, 0, head, 16); // router 7: 5-cycle residency
    obs.onFlitDepart(7, 2, head, 21);
    obs.onPacketDelivered(pkt, 40);

    ASSERT_EQ(obs.packets().size(), 1u);
    const TraceObserver::PacketRecord &rec = obs.packets()[0];
    EXPECT_EQ(rec.id, 42u);
    EXPECT_EQ(rec.queueing(), 3u);
    EXPECT_EQ(rec.network(), 32u);
    EXPECT_EQ(rec.hopSum(), 9u);
    EXPECT_EQ(rec.serialization(), 23u);
    ASSERT_EQ(rec.hops.size(), 2u);
    EXPECT_EQ(rec.hops[0].router, 2);
    EXPECT_EQ(rec.hops[1].router, 7);

    // Round-trip the Chrome trace and check the exact events.
    Jv doc;
    ASSERT_TRUE(parseJson(obs.chromeTraceJson(), doc));
    const Jv *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    int spans_b = 0;
    int spans_e = 0;
    int slices = 0;
    std::vector<std::string> thread_names;
    for (const Jv &ev : events->array) {
        std::string ph = ev.strAt("ph");
        if (ph == "M") {
            if (ev.strAt("name") == "thread_name")
                thread_names.push_back(
                    ev.find("args")->strAt("name"));
        } else if (ph == "b") {
            ++spans_b;
            EXPECT_EQ(ev.numAt("id"), 42.0);
            EXPECT_EQ(ev.numAt("ts"), 8.0);
            EXPECT_EQ(ev.find("args")->numAt("flits"), 4.0);
        } else if (ph == "e") {
            ++spans_e;
            EXPECT_EQ(ev.numAt("ts"), 40.0);
            const Jv *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->numAt("queueing_cycles"), 3.0);
            EXPECT_EQ(args->numAt("network_cycles"), 32.0);
            EXPECT_EQ(args->numAt("hop_cycles"), 9.0);
            EXPECT_EQ(args->numAt("serialization_cycles"), 23.0);
            EXPECT_EQ(args->numAt("hops"), 2.0);
        } else if (ph == "X") {
            ++slices;
            if (ev.numAt("tid") == 2.0)
                EXPECT_EQ(ev.numAt("dur"), 4.0);
            else
                EXPECT_EQ(ev.numAt("dur"), 5.0);
        }
    }
    EXPECT_EQ(spans_b, 1);
    EXPECT_EQ(spans_e, 1);
    EXPECT_EQ(slices, 2);
    ASSERT_EQ(thread_names.size(), 2u);
    EXPECT_EQ(thread_names[0], "router 2");
    EXPECT_EQ(thread_names[1], "router 7");
}

// ------------------------------------------------ end-to-end traces --

SimPointOptions
traceOptions()
{
    SimPointOptions opts;
    opts.injectionRate = 0.02;
    opts.warmupCycles = 200;
    opts.measureCycles = 800;
    opts.drainCycles = 2000;
    return opts;
}

TEST(TraceObserver, EndToEndChromeTraceRoundTrips)
{
    NetworkConfig cfg; // baseline 8x8
    SimPointOptions opts = traceOptions();
    TraceObserver obs;
    opts.observer = &obs;
    SimPointResult res =
        runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);
    (void)res;

    ASSERT_GT(obs.packets().size(), 0u);
    EXPECT_EQ(obs.droppedEvents(), 0u);
    EXPECT_EQ(obs.droppedPackets(), 0u);

    Jv doc;
    ASSERT_TRUE(parseJson(obs.chromeTraceJson(), doc));
    EXPECT_EQ(doc.find("otherData")->numAt("dropped_events"), 0.0);
    const Jv *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::size_t spans_b = 0;
    std::size_t spans_e = 0;
    std::size_t slices = 0;
    for (const Jv &ev : events->array) {
        std::string ph = ev.strAt("ph");
        EXPECT_NE(ev.find("pid"), nullptr);
        if (ph == "b")
            ++spans_b;
        else if (ph == "e")
            ++spans_e;
        else if (ph == "X") {
            EXPECT_GE(ev.numAt("dur"), 0.0);
            double tid = ev.numAt("tid");
            EXPECT_GE(tid, 0.0);
            EXPECT_LT(tid, 64.0);
        }
        if (ph == "X")
            ++slices;
    }
    // One b/e pair per delivered packet, at least one hop slice each.
    EXPECT_EQ(spans_b, obs.packets().size());
    EXPECT_EQ(spans_e, obs.packets().size());
    EXPECT_GE(slices, obs.packets().size());

    // Decomposition identity on every record: hop + serialization
    // reassemble the network latency exactly.
    for (const TraceObserver::PacketRecord &rec : obs.packets()) {
        EXPECT_GE(rec.hops.size(), 1u);
        EXPECT_EQ(rec.hopSum() + rec.serialization(), rec.network());
        EXPECT_GE(rec.ejected, rec.injected);
        EXPECT_GE(rec.injected, rec.created);
    }
}

TEST(TraceObserver, FlitLogLinesAreValidJson)
{
    NetworkConfig cfg;
    SimPointOptions opts = traceOptions();
    opts.measureCycles = 400;
    TraceObserver obs;
    opts.observer = &obs;
    runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);

    std::string log = obs.flitLogJsonl();
    ASSERT_FALSE(log.empty());
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < log.size()) {
        std::size_t nl = log.find('\n', start);
        ASSERT_NE(nl, std::string::npos) << "log must end in newline";
        Jv line;
        ASSERT_TRUE(parseJson(log.substr(start, nl - start), line))
            << "line " << lines;
        std::string ev = line.strAt("ev");
        EXPECT_TRUE(ev == "arr" || ev == "dep") << ev;
        EXPECT_NE(line.find("t"), nullptr);
        EXPECT_NE(line.find("r"), nullptr);
        EXPECT_NE(line.find("vc"), nullptr);
        EXPECT_NE(line.find("seq"), nullptr);
        ++lines;
        start = nl + 1;
    }
    EXPECT_EQ(lines, obs.eventCount());
}

TEST(TraceObserver, CapsBoundMemoryAndAreReported)
{
    NetworkConfig cfg;
    SimPointOptions opts = traceOptions();
    TraceOptions cap;
    cap.maxEvents = 64;
    cap.maxPackets = 3;
    TraceObserver obs(cap);
    opts.observer = &obs;
    runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);

    EXPECT_EQ(obs.eventCount(), 64u);
    EXPECT_GT(obs.droppedEvents(), 0u);
    EXPECT_LE(obs.packets().size(), 3u);
    EXPECT_GT(obs.droppedPackets(), 0u);

    // The truncated trace is still a valid document and reports the
    // drop counts so readers know it is partial.
    Jv doc;
    ASSERT_TRUE(parseJson(obs.chromeTraceJson(), doc));
    const Jv *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->numAt("dropped_events"),
              static_cast<double>(obs.droppedEvents()));
    EXPECT_EQ(other->numAt("dropped_packets"),
              static_cast<double>(obs.droppedPackets()));
}

TEST(TraceObserver, ResetClearsAllState)
{
    NetworkConfig cfg;
    SimPointOptions opts = traceOptions();
    opts.measureCycles = 400;
    TraceObserver obs;
    opts.observer = &obs;
    runOpenLoop(cfg, TrafficPattern::UniformRandom, opts);
    ASSERT_GT(obs.eventCount(), 0u);

    obs.reset();
    EXPECT_EQ(obs.eventCount(), 0u);
    EXPECT_EQ(obs.packets().size(), 0u);
    EXPECT_EQ(obs.droppedEvents(), 0u);
    EXPECT_TRUE(obs.flitLogJsonl().empty());
    Jv doc;
    ASSERT_TRUE(parseJson(obs.chromeTraceJson(), doc));
    // Only the process_name metadata event remains.
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    EXPECT_EQ(doc.find("traceEvents")->array.size(), 1u);
}

} // namespace
} // namespace hnoc
