/**
 * @file
 * Online health monitoring for long simulations: periodic probes that
 * turn raw telemetry into per-router stall breakdowns, detectors for
 * credit-starved and zero-progress ports, per-VC occupancy high-water
 * marks, and a live progress line (cycle, delivered, in-flight,
 * flits/sec, ETA) for multi-minute harness runs.
 *
 * The monitor consumes `HealthSample` snapshots — filled by
 * Network::healthSample() so the telemetry library never links against
 * the NoC — plus (optionally) the attached MetricRegistry, whose
 * counter deltas between probes drive the stall/starvation detectors.
 * The companion credit/buffer-conservation auditor walks live channel
 * state and therefore lives on the network side
 * (Network::auditCreditConservation); docs/OBSERVABILITY.md catalogs
 * all probes together.
 */

#ifndef HNOC_TELEMETRY_HEALTH_HH
#define HNOC_TELEMETRY_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hnoc
{

class MetricRegistry;

/** Point-in-time network state snapshot (Network::healthSample). */
struct HealthSample
{
    Cycle cycle = 0;
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsDelivered = 0;
    std::uint64_t flitsDelivered = 0;
    std::size_t packetsInFlight = 0;
    std::size_t sourceQueueDepth = 0;

    /** @name Dimensions of the flat vectors below */
    ///@{
    int routers = 0;
    int ports = 0;
    int vcs = 0;
    ///@}

    /** Buffered flits per router. */
    std::vector<int> bufferOccupancy;
    /** Buffered flits per input VC, index (r · ports + p) · vcs + v. */
    std::vector<int> vcOccupancy;

    int
    portOccupancy(int r, int p) const
    {
        int n = 0;
        for (int v = 0; v < vcs; ++v)
            n += vcOccupancy[static_cast<std::size_t>(
                (r * ports + p) * vcs + v)];
        return n;
    }
};

/** Per-router pipeline activity deltas over one probe interval. */
struct StallBreakdown
{
    std::uint64_t saGrants = 0;      ///< switch-allocator grants
    std::uint64_t bufferReads = 0;   ///< flits that left input buffers
    std::uint64_t creditStalls = 0;  ///< SA requests blocked on credits
    std::uint64_t vaConflicts = 0;   ///< failed VC allocations
    std::uint64_t occupancyFlitCycles = 0;
};

/** A port flagged by the progress detectors. */
struct PortIssue
{
    enum class Kind
    {
        CreditStarved, ///< credit stalls but zero grants all interval
        ZeroProgress,  ///< buffered flits, zero buffer reads all interval
    };

    Kind kind = Kind::ZeroProgress;
    int router = -1;
    int port = -1;
    int buffered = 0;                ///< flits waiting at the port now
    std::uint64_t creditStalls = 0;  ///< stall events this interval
};

/** Result of one HealthMonitor::probe(). */
struct HealthReport
{
    Cycle cycle = 0;
    Cycle intervalCycles = 0;
    std::uint64_t deliveredDelta = 0;
    std::uint64_t injectedDelta = 0;
    std::uint64_t flitsDelta = 0;
    std::size_t packetsInFlight = 0;
    std::size_t sourceQueueDepth = 0;

    /** True when a registry was attached for delta computation. */
    bool hasRegistryDeltas = false;
    /** Per-router breakdowns (empty without a registry). */
    std::vector<StallBreakdown> routers;
    /** Detector hits (empty without a registry or on first probe). */
    std::vector<PortIssue> issues;

    /** Multi-line human-readable rendering. */
    std::string text(int top_n = 4) const;
};

/** Knobs for HealthMonitor. */
struct HealthOptions
{
    /** Total cycles the run intends to simulate (ETA basis; 0 = no
     *  ETA on progress lines). */
    Cycle targetCycles = 0;
};

/**
 * Tracks probes over a run: registry counter deltas, per-VC occupancy
 * high-water marks, and wall-clock throughput for progress lines.
 * One monitor per network/run; not thread-safe.
 */
class HealthMonitor
{
  public:
    explicit HealthMonitor(HealthOptions opts = {});

    /**
     * Ingest a snapshot (and optionally the attached registry) and
     * compute deltas against the previous probe. The first probe
     * establishes the baseline and reports no issues.
     */
    const HealthReport &probe(const HealthSample &sample,
                              const MetricRegistry *reg = nullptr);

    const HealthReport &last() const { return report_; }
    std::uint64_t probes() const { return probes_; }

    /** Per-VC occupancy high-water marks seen across all probes,
     *  indexed like HealthSample::vcOccupancy. */
    const std::vector<int> &vcHighWater() const { return vcHighWater_; }

    /** Highest single-VC occupancy seen, with its location. */
    int maxVcHighWater(int *router = nullptr, int *port = nullptr,
                       int *vc = nullptr) const;

    /**
     * One-line live progress string:
     *   cycle 40000/100000 40% | delivered 12034 | in-flight 182 |
     *   2.31 Mflit/s | 1.18 Mcyc/s | ETA 51s
     * Rates come from wall-clock time between calls (monotonic
     * clock); the first call reports rates as 0.
     */
    std::string progressLine(const HealthSample &sample);

  private:
    HealthOptions opts_;
    HealthReport report_;
    std::uint64_t probes_ = 0;

    HealthSample prev_;
    bool havePrev_ = false;

    /** Registry counter snapshots at the previous probe. */
    std::vector<std::uint64_t> prevGrants_;      // per (r,p)
    std::vector<std::uint64_t> prevReads_;       // per (r,p)
    std::vector<std::uint64_t> prevStalls_;      // per (r,p)
    std::vector<std::uint64_t> prevVaConflicts_; // per router
    std::vector<std::uint64_t> prevOccupancy_;   // per router
    bool haveRegPrev_ = false;

    std::vector<int> vcHighWater_;

    /** Wall-clock anchors for progressLine(). */
    double startWall_ = -1.0;
    Cycle startCycle_ = 0;
    double lastWall_ = -1.0;
    Cycle lastCycle_ = 0;
    std::uint64_t lastFlits_ = 0;
};

} // namespace hnoc

#endif // HNOC_TELEMETRY_HEALTH_HH
