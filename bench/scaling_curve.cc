/**
 * @file
 * Simulator cost scaling curve: wall-clock ns per simulated cycle per
 * tile and simulator bytes per tile as the mesh grows 8x8 -> 16x16 ->
 * 32x32 -> 48x48, for the homogeneous baseline and the Diagonal+BL
 * heterogeneous layout, plus a 16x16 concentration-4 concentrated
 * mesh (1024 tiles on 256 routers — a different router/NI balance).
 * One google-benchmark per point, named `scaling/<layout>_<radix>`;
 * user counters carry the committed-trajectory inputs:
 *
 *   ns_per_cycle_per_tile  timed over an UNPROFILED mid-load run, so
 *                          the number is the simulator's real cost,
 *                          not the instrumented cost
 *   bytes_per_tile         end-of-run memory audit (grown capacities;
 *                          deterministic for a fixed seed)
 *   tiles                  radix * radix
 *   pct_*                  phase shares from a separate short PROFILED
 *                          run of an identically-loaded network (the
 *                          attribution question tolerates overhead;
 *                          the cost number must not pay it)
 *
 * tools/make_perf_trajectory.py distills these into the `scaling`
 * block of BENCH_trajectory.json, and tools/check_perf_regression.py
 * gates ns/cycle/tile growth from 8x8 to 16x16 in CI
 * (docs/REPRODUCING.md, "Scaling curve").
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "heteronoc/layout.hh"
#include "noc/network.hh"
#include "noc/traffic.hh"
#include "telemetry/profiler.hh"

namespace
{

using namespace hnoc;

// Mid-load operating point at radix 8: 0.2 flits/node/cycle on data
// packets. UR mesh bisection capacity per node falls as 1/radix while
// the per-node offered load is constant, so larger meshes are scaled
// by 8/radix to sit at the same fraction of saturation — otherwise a
// 16x16 point measures a saturated network doing categorically more
// work per tile and the curve stops being a scaling curve.
constexpr double kFlitLoadR8 = 0.2;

double
packetRate(const NetworkConfig &cfg, int radix)
{
    return kFlitLoadR8 * (8.0 / radix) / cfg.dataPacketFlits();
}

/** Drive @p net with UR traffic for @p cycles (shared by the timed
 *  and the profiled runs, so both see the same load shape). */
void
driveCycles(Network &net, TrafficGenerator &gen, const NetworkConfig &cfg,
            double pkt_rate, Cycle &now, Cycle cycles)
{
    int nodes = cfg.numNodes();
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (gen.shouldInject(n, pkt_rate, now)) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        ++now;
    }
}

int
gridCols(int nodes)
{
    int cols = 1;
    while (cols * cols < nodes)
        ++cols;
    return cols;
}

/** One scaling point over an arbitrary config; @p load_radix is the
 *  mesh radix used to normalise offered load to a constant fraction
 *  of bisection saturation (router-grid columns for the cmesh). */
void
scalingPoint(benchmark::State &state, const NetworkConfig &cfg,
             int load_radix)
{
    int nodes = cfg.numNodes();
    double pkt_rate = packetRate(cfg, load_radix);

    Network net(cfg);
    TrafficGenerator gen(TrafficPattern::UniformRandom, nodes,
                         gridCols(nodes), 7);
    Cycle now = 0;

    // Warm past the cold-start transient so the timed loop sees
    // steady-state occupancy and grown container capacities.
    driveCycles(net, gen, cfg, pkt_rate, now, 2000);

    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    std::uint64_t timed_cycles = 0;
    for (auto _ : state) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (gen.shouldInject(n, pkt_rate, now)) {
                NodeId dst = gen.pickDest(n);
                if (dst != INVALID_NODE)
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
        ++now;
        ++timed_cycles;
    }
    auto t1 = clock::now();
    benchmark::DoNotOptimize(net.packetsDelivered());
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());

    state.SetItemsProcessed(state.iterations());
    state.counters["tiles"] =
        benchmark::Counter(static_cast<double>(nodes));
    if (timed_cycles > 0)
        state.counters["ns_per_cycle_per_tile"] = benchmark::Counter(
            ns / static_cast<double>(timed_cycles) /
            static_cast<double>(nodes));

    MemoryAudit audit = net.memoryAudit();
    state.counters["bytes_per_tile"] =
        benchmark::Counter(audit.bytesPerTile());
    state.counters["total_bytes"] =
        benchmark::Counter(static_cast<double>(audit.totalBytes()));

    // Phase attribution from a short profiled replay on a fresh,
    // identically-configured network. In HNOC_TELEMETRY=OFF builds the
    // profiler collects nothing and the pct_* counters are omitted.
    Network pnet(cfg);
    Profiler prof;
    pnet.attachProfiler(&prof);
    TrafficGenerator pgen(TrafficPattern::UniformRandom, nodes,
                          gridCols(nodes), 7);
    Cycle pnow = 0;
    driveCycles(pnet, pgen, cfg, pkt_rate, pnow, 4000);
    if (prof.ns(ProfPhase::StepTotal) > 0) {
        double total =
            static_cast<double>(prof.ns(ProfPhase::StepTotal));
        auto pct = [&](ProfPhase ph) {
            return 100.0 * static_cast<double>(prof.ns(ph)) / total;
        };
        state.counters["pct_channel_delivery"] =
            benchmark::Counter(pct(ProfPhase::ChannelDelivery));
        state.counters["pct_ni"] = benchmark::Counter(
            pct(ProfPhase::NiEject) + pct(ProfPhase::NiInject));
        state.counters["pct_route_compute"] =
            benchmark::Counter(pct(ProfPhase::RouteCompute));
        state.counters["pct_vc_allocate"] =
            benchmark::Counter(pct(ProfPhase::VcAllocate));
        state.counters["pct_switch_allocate"] =
            benchmark::Counter(pct(ProfPhase::SwitchAllocate));
        state.counters["pct_scan_overhead"] = benchmark::Counter(
            100.0 * static_cast<double>(prof.unattributedNs()) / total);
        if (prof.numBlocks() > 0)
            state.counters["bytes_streamed_per_cycle"] =
                benchmark::Counter(prof.bytesStreamedPerCycle());
    }
}

void
scaling(benchmark::State &state, LayoutKind kind, int radix)
{
    scalingPoint(state, makeLayoutConfig(kind, radix), radix);
}

/** Concentrated-mesh point: @p radix x @p radix routers, each with
 *  @p concentration terminals (16x16 c4 = 1024 tiles on 256 routers —
 *  a different router/NI balance than any pure mesh point). */
void
scalingCmesh(benchmark::State &state, int radix, int concentration)
{
    NetworkConfig cfg;
    cfg.name = "scaling_cmesh";
    cfg.topology = TopologyType::ConcentratedMesh;
    cfg.radixX = radix;
    cfg.radixY = radix;
    cfg.concentration = concentration;
    scalingPoint(state, cfg, radix);
}

BENCHMARK_CAPTURE(scaling, mesh_8, LayoutKind::Baseline, 8);
BENCHMARK_CAPTURE(scaling, hetero_8, LayoutKind::DiagonalBL, 8);
BENCHMARK_CAPTURE(scaling, mesh_16, LayoutKind::Baseline, 16);
BENCHMARK_CAPTURE(scaling, hetero_16, LayoutKind::DiagonalBL, 16);
BENCHMARK_CAPTURE(scaling, mesh_32, LayoutKind::Baseline, 32);
BENCHMARK_CAPTURE(scaling, hetero_32, LayoutKind::DiagonalBL, 32);
BENCHMARK_CAPTURE(scalingCmesh, cmesh_16, 16, 4);
BENCHMARK_CAPTURE(scaling, mesh_48, LayoutKind::Baseline, 48);

} // namespace

// Flag-equivalent default repetitions: per-benchmark ->Repetitions()
// would rename every series to "<name>/repeats:N" and break the
// trajectory/CI series keys, so inject the flag instead when the
// caller did not pass one (explicit flags still win).
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    char default_reps[] = "--benchmark_repetitions=3";
    bool has_reps = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_repetitions",
                         sizeof("--benchmark_repetitions") - 1) == 0)
            has_reps = true;
    if (!has_reps)
        args.insert(args.begin() + 1, default_reps);
    int ac = static_cast<int>(args.size());
    benchmark::Initialize(&ac, args.data());
    if (benchmark::ReportUnrecognizedArguments(ac, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
