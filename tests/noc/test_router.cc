/**
 * @file
 * Channel and router micro-tests: delay pipes, lane accounting,
 * credit conservation and wide-link flit combining.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "heteronoc/layout.hh"
#include "noc/channel.hh"
#include "noc/network.hh"

namespace hnoc
{
namespace
{

TEST(Channel, DelayPipe)
{
    Channel ch(0, 192, 1, 2, 1);
    Packet pkt;
    Flit f;
    f.pkt = &pkt;
    ch.sendFlit(f, 10);

    std::vector<Flit> out;
    EXPECT_EQ(ch.deliverFlits(11, out), 0);
    EXPECT_EQ(ch.deliverFlits(12, out), 1);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_TRUE(ch.idle());
}

TEST(Channel, CreditDelay)
{
    Channel ch(0, 192, 1, 2, 1);
    ch.sendCredit(2, 5);
    std::vector<VcId> credits;
    EXPECT_EQ(ch.deliverCredits(5, credits), 0);
    EXPECT_EQ(ch.deliverCredits(6, credits), 1);
    EXPECT_EQ(credits[0], 2);
}

TEST(Channel, PairTrackingAndUtilization)
{
    Channel ch(0, 256, 2, 1, 1);
    Packet pkt;
    Flit f;
    f.pkt = &pkt;
    ch.sendFlit(f, 1);
    ch.sendFlit(f, 1); // paired
    ch.sendFlit(f, 2); // alone
    EXPECT_EQ(ch.flitsSent(), 3u);
    EXPECT_EQ(ch.busyCycles(), 2u);
    EXPECT_EQ(ch.pairedCycles(), 1u);
    EXPECT_NEAR(ch.laneUtilization(10), 3.0 / 20.0, 1e-12);
}

TEST(Channel, OversubscriptionPanics)
{
    Channel ch(0, 192, 1, 1, 1);
    Packet pkt;
    Flit f;
    f.pkt = &pkt;
    ch.sendFlit(f, 1);
    EXPECT_DEATH(ch.sendFlit(f, 1), "oversubscribed");
}

TEST(Router, CombiningOccursOnWideLinks)
{
    // In Diagonal+BL, drive heavy traffic through a diagonal (big)
    // router and verify wide channels carry pairs.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    Network net(cfg);
    Rng rng(5);
    for (Cycle t = 0; t < 4000; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (rng.uniform() < 0.04) {
                auto dst =
                    static_cast<NodeId>(rng.below(63));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
    }
    EXPECT_GT(net.combineRate(), 0.02);
}

TEST(Router, NoCombiningInBaseline)
{
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::Baseline);
    Network net(cfg);
    for (NodeId n = 0; n < 32; ++n)
        net.enqueuePacket(n, 63 - n, cfg.dataPacketFlits());
    net.run(1000);
    EXPECT_EQ(net.combineRate(), 0.0); // no wide channels exist
}

TEST(Router, BufferOccupancyBounded)
{
    // Credits must keep every VC FIFO within its 5-flit depth; the
    // receiveFlit overflow panic would fire otherwise. Stress at
    // saturation for a while.
    NetworkConfig cfg = makeLayoutConfig(LayoutKind::DiagonalBL);
    Network net(cfg);
    Rng rng(17);
    for (Cycle t = 0; t < 5000; ++t) {
        for (NodeId n = 0; n < 64; ++n) {
            if (rng.uniform() < 0.1) {
                auto dst = static_cast<NodeId>(rng.below(63));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, cfg.dataPacketFlits());
            }
        }
        net.step();
    }
    SUCCEED(); // no overflow panic under saturation stress
}

TEST(Router, IntraPacketPairingTogglable)
{
    // With pairing disabled, the combine rate should drop.
    NetworkConfig on = makeLayoutConfig(LayoutKind::DiagonalBL);
    NetworkConfig off = on;
    off.intraPacketPairing = false;

    auto run = [](const NetworkConfig &cfg) {
        Network net(cfg);
        Rng rng(9);
        for (Cycle t = 0; t < 4000; ++t) {
            for (NodeId n = 0; n < 64; ++n) {
                if (rng.uniform() < 0.05) {
                    auto dst = static_cast<NodeId>(rng.below(63));
                    if (dst >= n)
                        ++dst;
                    net.enqueuePacket(n, dst, cfg.dataPacketFlits());
                }
            }
            net.step();
        }
        return net.combineRate();
    };
    EXPECT_GT(run(on), run(off));
}

} // namespace
} // namespace hnoc
