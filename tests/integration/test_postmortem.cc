/**
 * @file
 * End-to-end postmortem tests: an induced stall trips the watchdog,
 * which writes an `hnoc-postmortem-v1` document; the strict telemetry
 * reader must parse it and find the pipeline snapshot, conservation
 * verdict, flight-recorder tail, and telemetry registry inside. Also
 * pins the HNOC_JSON_DIR redirect and the explicit-request path
 * (Network::postmortemJson without a watchdog).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "heteronoc/layout.hh"
#include "noc/watchdog.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/json_reader.hh"
#include "telemetry/metrics.hh"

namespace hnoc
{
namespace
{

/** Load the network until flits occupy router buffers. */
void
loadNetwork(Network &net, Cycle cycles, double rate, std::uint64_t seed)
{
    Rng rng(seed);
    int nodes = net.config().numNodes();
    for (Cycle t = 0; t < cycles; ++t) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (rng.uniform() < rate) {
                auto dst = static_cast<NodeId>(
                    rng.below(static_cast<std::uint64_t>(nodes - 1)));
                if (dst >= n)
                    ++dst;
                net.enqueuePacket(n, dst, net.dataPacketFlits());
            }
        }
        net.step();
    }
}

TEST(Postmortem, ExplicitDumpRoundTrips)
{
    if (!kTelemetryEnabled)
        GTEST_SKIP() << "flight-recorder hooks compiled out "
                        "(HNOC_TELEMETRY=OFF)";
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    FlightRecorder fr(1u << 12);
    net.attachFlightRecorder(&fr);
    auto reg = net.makeMetricRegistry(500);
    net.attachTelemetry(reg.get());

    loadNetwork(net, 250, 0.04, 41);
    ASSERT_GT(fr.totalRecorded(), 0u);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(net.postmortemJson("unit test"), doc, &err))
        << err;

    // Header.
    EXPECT_EQ(doc.strAt("schema"), "hnoc-postmortem-v1");
    EXPECT_EQ(doc.strAt("reason"), "unit test");
    EXPECT_DOUBLE_EQ(doc.numAt("cycle"),
                     static_cast<double>(net.now()));
    EXPECT_DOUBLE_EQ(doc.numAt("packets_injected"),
                     static_cast<double>(net.packetsInjected()));
    EXPECT_DOUBLE_EQ(doc.numAt("packets_in_flight"),
                     static_cast<double>(net.packetsInFlight()));

    // Config block.
    const JsonValue *cfg = doc.find("config");
    ASSERT_NE(cfg, nullptr);
    EXPECT_EQ(cfg->strAt("topology"), "mesh");
    EXPECT_DOUBLE_EQ(cfg->numAt("routers"), 64.0);
    EXPECT_DOUBLE_EQ(cfg->numAt("grid_cols"), 8.0);
    EXPECT_DOUBLE_EQ(cfg->numAt("buffer_depth"), 5.0);

    // Pipeline snapshot: one entry per router; occupancy in the
    // document must match the live network, and any listed input VC
    // must be occupied or active (idle VCs are elided).
    const std::vector<JsonValue> &routers = doc.arrayAt("routers");
    ASSERT_EQ(routers.size(), 64u);
    int listed_vcs = 0;
    for (const JsonValue &r : routers) {
        EXPECT_GE(r.numAt("occupancy"), 0.0);
        for (const JsonValue &vc : r.arrayAt("input_vcs")) {
            EXPECT_TRUE(vc.numAt("occupancy") > 0.0 ||
                        vc.boolAt("active"));
            ++listed_vcs;
        }
    }
    EXPECT_GT(listed_vcs, 0) << "a loaded network has non-idle VCs";

    // A healthy network's dump must carry a passing conservation audit.
    const JsonValue *conservation = doc.find("conservation");
    ASSERT_NE(conservation, nullptr);
    EXPECT_TRUE(conservation->boolAt("ok"));

    // Flight-recorder and telemetry sections are attached.
    const JsonValue *rec = doc.find("flight_recorder");
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->arrayAt("events").size(), 0u);
    EXPECT_DOUBLE_EQ(rec->numAt("recorded"),
                     static_cast<double>(fr.totalRecorded()));
    EXPECT_NE(doc.find("telemetry"), nullptr);

    net.detachTelemetry();
    net.attachFlightRecorder(nullptr);
}

TEST(Postmortem, WatchdogTripWritesParseableDump)
{
    if (!kTelemetryEnabled)
        GTEST_SKIP() << "flight-recorder hooks compiled out "
                        "(HNOC_TELEMETRY=OFF)";
    // A 10-cycle watchdog window trips long before the ~50-cycle
    // first delivery: the induced-stall path end to end.
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    FlightRecorder fr(1u << 10);
    net.attachFlightRecorder(&fr);

    std::string path = testing::TempDir() + "trip_postmortem.json";
    std::remove(path.c_str());

    ProgressWatchdog dog(10);
    dog.setPostmortemPath(path);
    net.enqueuePacket(0, 63, 6);
    bool tripped = false;
    for (int i = 0; i < 40 && !tripped; ++i) {
        net.step();
        tripped = !dog.check(net);
    }
    ASSERT_TRUE(tripped);
    EXPECT_EQ(dog.trips(), 1u);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJsonFile(path, doc, &err)) << err;
    EXPECT_EQ(doc.strAt("schema"), "hnoc-postmortem-v1");
    EXPECT_EQ(doc.strAt("reason"), "watchdog trip");
    EXPECT_GE(doc.numAt("packets_in_flight"), 1.0);
    const JsonValue *rec = doc.find("flight_recorder");
    ASSERT_NE(rec, nullptr);
    // The ring holds the packet's whole short history, starting with
    // its injection.
    const std::vector<JsonValue> &events = rec->arrayAt("events");
    ASSERT_GT(events.size(), 0u);
    EXPECT_EQ(events[0].strAt("ev"), "inject");

    std::remove(path.c_str());
    net.attachFlightRecorder(nullptr);
}

TEST(Postmortem, HonorsJsonDirRedirect)
{
    Network net(makeLayoutConfig(LayoutKind::Baseline));
    std::string dir = testing::TempDir();
    while (!dir.empty() && dir.back() == '/')
        dir.pop_back();
    ASSERT_EQ(setenv("HNOC_JSON_DIR", dir.c_str(), 1), 0);

    std::string redirected = dir + "/redirected_pm.json";
    std::remove(redirected.c_str());
    // Ask for a path in a directory that does not exist; the redirect
    // must strip it and land the file in HNOC_JSON_DIR.
    EXPECT_TRUE(net.writePostmortem("/nonexistent/redirected_pm.json",
                                    "redirect test"));
    unsetenv("HNOC_JSON_DIR");

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJsonFile(redirected, doc, &err)) << err;
    EXPECT_EQ(doc.strAt("reason"), "redirect test");
    std::remove(redirected.c_str());
}

} // namespace
} // namespace hnoc
