/**
 * @file
 * Observer hooks for flit-level events: packet injection/ejection and
 * per-router flit arrival/departure. Used for debugging, trace dumps
 * and per-hop latency analysis; costs nothing when unset.
 */

#ifndef HNOC_NOC_OBSERVER_HH
#define HNOC_NOC_OBSERVER_HH

#include "common/types.hh"
#include "noc/flit.hh"

namespace hnoc
{

/** Receive flit-level simulation events. All callbacks optional. */
class NetworkObserver
{
  public:
    virtual ~NetworkObserver() = default;

    /** A packet entered a source queue. */
    virtual void
    onPacketCreated(const Packet &pkt, Cycle now)
    {
        (void)pkt;
        (void)now;
    }

    /** A flit was written into a router input buffer. */
    virtual void
    onFlitArrive(RouterId router, PortId port, const Flit &flit,
                 Cycle now)
    {
        (void)router;
        (void)port;
        (void)flit;
        (void)now;
    }

    /** A flit won switch allocation and left through an output port. */
    virtual void
    onFlitDepart(RouterId router, PortId port, const Flit &flit,
                 Cycle now)
    {
        (void)router;
        (void)port;
        (void)flit;
        (void)now;
    }

    /** A packet's tail reached its destination interface. */
    virtual void
    onPacketDelivered(const Packet &pkt, Cycle now)
    {
        (void)pkt;
        (void)now;
    }
};

} // namespace hnoc

#endif // HNOC_NOC_OBSERVER_HH
