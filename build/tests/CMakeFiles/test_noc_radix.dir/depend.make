# Empty dependencies file for test_noc_radix.
# This may be replaced when dependencies are built.
