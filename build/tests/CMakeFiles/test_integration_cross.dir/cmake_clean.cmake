file(REMOVE_RECURSE
  "CMakeFiles/test_integration_cross.dir/integration/test_cross_features.cc.o"
  "CMakeFiles/test_integration_cross.dir/integration/test_cross_features.cc.o.d"
  "test_integration_cross"
  "test_integration_cross.pdb"
  "test_integration_cross[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
