#include "sys/mc_placement.hh"

#include "common/geometry.hh"
#include "common/logging.hh"

namespace hnoc
{

std::vector<NodeId>
mcTiles(McPlacement placement, int radix)
{
    std::vector<NodeId> tiles;
    switch (placement) {
      case McPlacement::Corners:
        tiles = {0, radix - 1, radix * (radix - 1), radix * radix - 1};
        break;
      case McPlacement::Diamond:
        // Rotated square: row y hosts controllers at columns
        // (radix/2 - 1 - y) mod radix and (radix/2 + y) mod radix,
        // giving two per row and two per column.
        for (int y = 0; y < radix; ++y) {
            int x1 = ((radix / 2 - 1 - y) % radix + radix) % radix;
            int x2 = (radix / 2 + y) % radix;
            tiles.push_back(coordToId({x1, y}, radix));
            if (x2 != x1)
                tiles.push_back(coordToId({x2, y}, radix));
        }
        break;
      case McPlacement::Diagonal:
        for (int i = 0; i < radix; ++i) {
            tiles.push_back(coordToId({i, i}, radix));
            if (radix - 1 - i != i)
                tiles.push_back(coordToId({radix - 1 - i, i}, radix));
        }
        break;
    }
    return tiles;
}

std::string
mcPlacementName(McPlacement placement)
{
    switch (placement) {
      case McPlacement::Corners:
        return "corners";
      case McPlacement::Diamond:
        return "diamond";
      case McPlacement::Diagonal:
        return "diagonal";
    }
    return "unknown";
}

NodeId
mcForBlock(Addr block_addr, int block_bytes, const std::vector<NodeId> &mcs)
{
    if (mcs.empty())
        fatal("mcForBlock: no memory controllers configured");
    Addr sel = block_addr / static_cast<Addr>(block_bytes);
    return mcs[static_cast<std::size_t>(sel % mcs.size())];
}

} // namespace hnoc
